file(REMOVE_RECURSE
  "CMakeFiles/yarn_test.dir/yarn_test.cc.o"
  "CMakeFiles/yarn_test.dir/yarn_test.cc.o.d"
  "yarn_test"
  "yarn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yarn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
