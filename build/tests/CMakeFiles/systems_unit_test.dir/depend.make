# Empty dependencies file for systems_unit_test.
# This may be replaced when dependencies are built.
