file(REMOVE_RECURSE
  "CMakeFiles/systems_unit_test.dir/systems_unit_test.cc.o"
  "CMakeFiles/systems_unit_test.dir/systems_unit_test.cc.o.d"
  "systems_unit_test"
  "systems_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systems_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
