# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(strings_test "/root/repo/build/tests/strings_test")
set_tests_properties(strings_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(event_loop_test "/root/repo/build/tests/event_loop_test")
set_tests_properties(event_loop_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(logging_test "/root/repo/build/tests/logging_test")
set_tests_properties(logging_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tracer_test "/root/repo/build/tests/tracer_test")
set_tests_properties(tracer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(yarn_test "/root/repo/build/tests/yarn_test")
set_tests_properties(yarn_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(systems_test "/root/repo/build/tests/systems_test")
set_tests_properties(systems_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(systems_unit_test "/root/repo/build/tests/systems_unit_test")
set_tests_properties(systems_unit_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;24;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;25;ct_add_test;/root/repo/tests/CMakeLists.txt;0;")
