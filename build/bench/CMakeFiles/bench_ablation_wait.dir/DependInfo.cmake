
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_wait.cc" "bench/CMakeFiles/bench_ablation_wait.dir/bench_ablation_wait.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_wait.dir/bench_ablation_wait.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ct_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ct_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ct_model.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ct_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/study/CMakeFiles/ct_study.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/yarn/CMakeFiles/ct_yarn.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/hdfs/CMakeFiles/ct_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/hbase/CMakeFiles/ct_hbase.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/zookeeper/CMakeFiles/ct_zookeeper.dir/DependInfo.cmake"
  "/root/repo/build/src/systems/cassandra/CMakeFiles/ct_cassandra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
