# Empty dependencies file for bench_ablation_wait.
# This may be replaced when dependencies are built.
