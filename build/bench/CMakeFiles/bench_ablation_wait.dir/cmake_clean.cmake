file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wait.dir/bench_ablation_wait.cc.o"
  "CMakeFiles/bench_ablation_wait.dir/bench_ablation_wait.cc.o.d"
  "bench_ablation_wait"
  "bench_ablation_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
