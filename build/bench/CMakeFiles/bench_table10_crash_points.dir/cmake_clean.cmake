file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_crash_points.dir/bench_table10_crash_points.cc.o"
  "CMakeFiles/bench_table10_crash_points.dir/bench_table10_crash_points.cc.o.d"
  "bench_table10_crash_points"
  "bench_table10_crash_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_crash_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
