# Empty compiler generated dependencies file for bench_table10_crash_points.
# This may be replaced when dependencies are built.
