# Empty dependencies file for bench_table7_random_injection.
# This may be replaced when dependencies are built.
