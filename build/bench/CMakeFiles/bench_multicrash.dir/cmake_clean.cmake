file(REMOVE_RECURSE
  "CMakeFiles/bench_multicrash.dir/bench_multicrash.cc.o"
  "CMakeFiles/bench_multicrash.dir/bench_multicrash.cc.o.d"
  "bench_multicrash"
  "bench_multicrash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multicrash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
