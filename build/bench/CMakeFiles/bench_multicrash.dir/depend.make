# Empty dependencies file for bench_multicrash.
# This may be replaced when dependencies are built.
