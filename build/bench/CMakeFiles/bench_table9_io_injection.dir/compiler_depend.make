# Empty compiler generated dependencies file for bench_table9_io_injection.
# This may be replaced when dependencies are built.
