file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_io_injection.dir/bench_table9_io_injection.cc.o"
  "CMakeFiles/bench_table9_io_injection.dir/bench_table9_io_injection.cc.o.d"
  "bench_table9_io_injection"
  "bench_table9_io_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_io_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
