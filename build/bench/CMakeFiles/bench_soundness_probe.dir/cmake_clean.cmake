file(REMOVE_RECURSE
  "CMakeFiles/bench_soundness_probe.dir/bench_soundness_probe.cc.o"
  "CMakeFiles/bench_soundness_probe.dir/bench_soundness_probe.cc.o.d"
  "bench_soundness_probe"
  "bench_soundness_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soundness_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
