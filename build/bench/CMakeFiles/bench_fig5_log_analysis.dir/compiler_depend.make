# Empty compiler generated dependencies file for bench_fig5_log_analysis.
# This may be replaced when dependencies are built.
