# Empty dependencies file for bench_table6_kubernetes.
# This may be replaced when dependencies are built.
