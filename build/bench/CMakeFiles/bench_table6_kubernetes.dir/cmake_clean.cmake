file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_kubernetes.dir/bench_table6_kubernetes.cc.o"
  "CMakeFiles/bench_table6_kubernetes.dir/bench_table6_kubernetes.cc.o.d"
  "bench_table6_kubernetes"
  "bench_table6_kubernetes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_kubernetes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
