file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_metainfo_types.dir/bench_table2_metainfo_types.cc.o"
  "CMakeFiles/bench_table2_metainfo_types.dir/bench_table2_metainfo_types.cc.o.d"
  "bench_table2_metainfo_types"
  "bench_table2_metainfo_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_metainfo_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
