# Empty dependencies file for yarn_5918_preread.
# This may be replaced when dependencies are built.
