file(REMOVE_RECURSE
  "CMakeFiles/yarn_5918_preread.dir/yarn_5918_preread.cpp.o"
  "CMakeFiles/yarn_5918_preread.dir/yarn_5918_preread.cpp.o.d"
  "yarn_5918_preread"
  "yarn_5918_preread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yarn_5918_preread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
