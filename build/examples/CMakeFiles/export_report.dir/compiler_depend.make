# Empty compiler generated dependencies file for export_report.
# This may be replaced when dependencies are built.
