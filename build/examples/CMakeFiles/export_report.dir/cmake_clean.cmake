file(REMOVE_RECURSE
  "CMakeFiles/export_report.dir/export_report.cpp.o"
  "CMakeFiles/export_report.dir/export_report.cpp.o.d"
  "export_report"
  "export_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
