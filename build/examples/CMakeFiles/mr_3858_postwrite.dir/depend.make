# Empty dependencies file for mr_3858_postwrite.
# This may be replaced when dependencies are built.
