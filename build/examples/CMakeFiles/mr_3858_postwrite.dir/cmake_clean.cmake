file(REMOVE_RECURSE
  "CMakeFiles/mr_3858_postwrite.dir/mr_3858_postwrite.cpp.o"
  "CMakeFiles/mr_3858_postwrite.dir/mr_3858_postwrite.cpp.o.d"
  "mr_3858_postwrite"
  "mr_3858_postwrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mr_3858_postwrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
