file(REMOVE_RECURSE
  "CMakeFiles/compare_approaches.dir/compare_approaches.cpp.o"
  "CMakeFiles/compare_approaches.dir/compare_approaches.cpp.o.d"
  "compare_approaches"
  "compare_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
