# Empty dependencies file for compare_approaches.
# This may be replaced when dependencies are built.
