# Empty dependencies file for ct_analysis.
# This may be replaced when dependencies are built.
