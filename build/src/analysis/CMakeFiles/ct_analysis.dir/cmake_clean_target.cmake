file(REMOVE_RECURSE
  "libct_analysis.a"
)
