file(REMOVE_RECURSE
  "CMakeFiles/ct_analysis.dir/crash_point_analysis.cc.o"
  "CMakeFiles/ct_analysis.dir/crash_point_analysis.cc.o.d"
  "CMakeFiles/ct_analysis.dir/log_analysis.cc.o"
  "CMakeFiles/ct_analysis.dir/log_analysis.cc.o.d"
  "CMakeFiles/ct_analysis.dir/metainfo_inference.cc.o"
  "CMakeFiles/ct_analysis.dir/metainfo_inference.cc.o.d"
  "libct_analysis.a"
  "libct_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
