
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/crash_point_analysis.cc" "src/analysis/CMakeFiles/ct_analysis.dir/crash_point_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/ct_analysis.dir/crash_point_analysis.cc.o.d"
  "/root/repo/src/analysis/log_analysis.cc" "src/analysis/CMakeFiles/ct_analysis.dir/log_analysis.cc.o" "gcc" "src/analysis/CMakeFiles/ct_analysis.dir/log_analysis.cc.o.d"
  "/root/repo/src/analysis/metainfo_inference.cc" "src/analysis/CMakeFiles/ct_analysis.dir/metainfo_inference.cc.o" "gcc" "src/analysis/CMakeFiles/ct_analysis.dir/metainfo_inference.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ct_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ct_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
