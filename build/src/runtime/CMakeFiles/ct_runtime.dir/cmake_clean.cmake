file(REMOVE_RECURSE
  "CMakeFiles/ct_runtime.dir/tracer.cc.o"
  "CMakeFiles/ct_runtime.dir/tracer.cc.o.d"
  "libct_runtime.a"
  "libct_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
