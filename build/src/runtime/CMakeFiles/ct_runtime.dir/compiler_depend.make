# Empty compiler generated dependencies file for ct_runtime.
# This may be replaced when dependencies are built.
