file(REMOVE_RECURSE
  "libct_runtime.a"
)
