# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("logging")
subdirs("model")
subdirs("runtime")
subdirs("analysis")
subdirs("core")
subdirs("study")
subdirs("systems/yarn")
subdirs("systems/hdfs")
subdirs("systems/hbase")
subdirs("systems/zookeeper")
subdirs("systems/cassandra")
