# Empty compiler generated dependencies file for ct_model.
# This may be replaced when dependencies are built.
