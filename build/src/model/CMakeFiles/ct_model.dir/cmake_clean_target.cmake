file(REMOVE_RECURSE
  "libct_model.a"
)
