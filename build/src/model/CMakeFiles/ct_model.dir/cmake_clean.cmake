file(REMOVE_RECURSE
  "CMakeFiles/ct_model.dir/catalog.cc.o"
  "CMakeFiles/ct_model.dir/catalog.cc.o.d"
  "CMakeFiles/ct_model.dir/program_model.cc.o"
  "CMakeFiles/ct_model.dir/program_model.cc.o.d"
  "libct_model.a"
  "libct_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
