# Empty dependencies file for ct_yarn.
# This may be replaced when dependencies are built.
