file(REMOVE_RECURSE
  "CMakeFiles/ct_yarn.dir/node_manager.cc.o"
  "CMakeFiles/ct_yarn.dir/node_manager.cc.o.d"
  "CMakeFiles/ct_yarn.dir/resource_manager.cc.o"
  "CMakeFiles/ct_yarn.dir/resource_manager.cc.o.d"
  "CMakeFiles/ct_yarn.dir/yarn_model.cc.o"
  "CMakeFiles/ct_yarn.dir/yarn_model.cc.o.d"
  "CMakeFiles/ct_yarn.dir/yarn_system.cc.o"
  "CMakeFiles/ct_yarn.dir/yarn_system.cc.o.d"
  "libct_yarn.a"
  "libct_yarn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_yarn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
