file(REMOVE_RECURSE
  "libct_yarn.a"
)
