file(REMOVE_RECURSE
  "CMakeFiles/ct_zookeeper.dir/zk_model.cc.o"
  "CMakeFiles/ct_zookeeper.dir/zk_model.cc.o.d"
  "CMakeFiles/ct_zookeeper.dir/zk_nodes.cc.o"
  "CMakeFiles/ct_zookeeper.dir/zk_nodes.cc.o.d"
  "CMakeFiles/ct_zookeeper.dir/zk_system.cc.o"
  "CMakeFiles/ct_zookeeper.dir/zk_system.cc.o.d"
  "libct_zookeeper.a"
  "libct_zookeeper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_zookeeper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
