file(REMOVE_RECURSE
  "libct_zookeeper.a"
)
