# Empty compiler generated dependencies file for ct_zookeeper.
# This may be replaced when dependencies are built.
