file(REMOVE_RECURSE
  "CMakeFiles/ct_cassandra.dir/cass_model.cc.o"
  "CMakeFiles/ct_cassandra.dir/cass_model.cc.o.d"
  "CMakeFiles/ct_cassandra.dir/cass_nodes.cc.o"
  "CMakeFiles/ct_cassandra.dir/cass_nodes.cc.o.d"
  "CMakeFiles/ct_cassandra.dir/cass_system.cc.o"
  "CMakeFiles/ct_cassandra.dir/cass_system.cc.o.d"
  "libct_cassandra.a"
  "libct_cassandra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_cassandra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
