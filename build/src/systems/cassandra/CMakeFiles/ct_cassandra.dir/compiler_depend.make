# Empty compiler generated dependencies file for ct_cassandra.
# This may be replaced when dependencies are built.
