file(REMOVE_RECURSE
  "libct_cassandra.a"
)
