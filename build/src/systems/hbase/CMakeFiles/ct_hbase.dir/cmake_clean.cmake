file(REMOVE_RECURSE
  "CMakeFiles/ct_hbase.dir/hbase_model.cc.o"
  "CMakeFiles/ct_hbase.dir/hbase_model.cc.o.d"
  "CMakeFiles/ct_hbase.dir/hbase_nodes.cc.o"
  "CMakeFiles/ct_hbase.dir/hbase_nodes.cc.o.d"
  "CMakeFiles/ct_hbase.dir/hbase_system.cc.o"
  "CMakeFiles/ct_hbase.dir/hbase_system.cc.o.d"
  "libct_hbase.a"
  "libct_hbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_hbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
