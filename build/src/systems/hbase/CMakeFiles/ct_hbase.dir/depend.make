# Empty dependencies file for ct_hbase.
# This may be replaced when dependencies are built.
