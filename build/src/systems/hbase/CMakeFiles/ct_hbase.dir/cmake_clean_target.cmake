file(REMOVE_RECURSE
  "libct_hbase.a"
)
