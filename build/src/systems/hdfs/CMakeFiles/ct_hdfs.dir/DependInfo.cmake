
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systems/hdfs/hdfs_model.cc" "src/systems/hdfs/CMakeFiles/ct_hdfs.dir/hdfs_model.cc.o" "gcc" "src/systems/hdfs/CMakeFiles/ct_hdfs.dir/hdfs_model.cc.o.d"
  "/root/repo/src/systems/hdfs/hdfs_nodes.cc" "src/systems/hdfs/CMakeFiles/ct_hdfs.dir/hdfs_nodes.cc.o" "gcc" "src/systems/hdfs/CMakeFiles/ct_hdfs.dir/hdfs_nodes.cc.o.d"
  "/root/repo/src/systems/hdfs/hdfs_system.cc" "src/systems/hdfs/CMakeFiles/ct_hdfs.dir/hdfs_system.cc.o" "gcc" "src/systems/hdfs/CMakeFiles/ct_hdfs.dir/hdfs_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ct_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ct_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ct_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ct_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ct_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
