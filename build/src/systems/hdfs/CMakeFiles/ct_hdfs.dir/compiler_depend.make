# Empty compiler generated dependencies file for ct_hdfs.
# This may be replaced when dependencies are built.
