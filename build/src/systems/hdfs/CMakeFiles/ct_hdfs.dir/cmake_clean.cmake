file(REMOVE_RECURSE
  "CMakeFiles/ct_hdfs.dir/hdfs_model.cc.o"
  "CMakeFiles/ct_hdfs.dir/hdfs_model.cc.o.d"
  "CMakeFiles/ct_hdfs.dir/hdfs_nodes.cc.o"
  "CMakeFiles/ct_hdfs.dir/hdfs_nodes.cc.o.d"
  "CMakeFiles/ct_hdfs.dir/hdfs_system.cc.o"
  "CMakeFiles/ct_hdfs.dir/hdfs_system.cc.o.d"
  "libct_hdfs.a"
  "libct_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
