file(REMOVE_RECURSE
  "libct_hdfs.a"
)
