# Empty dependencies file for ct_logging.
# This may be replaced when dependencies are built.
