file(REMOVE_RECURSE
  "CMakeFiles/ct_logging.dir/log_store.cc.o"
  "CMakeFiles/ct_logging.dir/log_store.cc.o.d"
  "CMakeFiles/ct_logging.dir/stash.cc.o"
  "CMakeFiles/ct_logging.dir/stash.cc.o.d"
  "CMakeFiles/ct_logging.dir/statement.cc.o"
  "CMakeFiles/ct_logging.dir/statement.cc.o.d"
  "libct_logging.a"
  "libct_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
