
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logging/log_store.cc" "src/logging/CMakeFiles/ct_logging.dir/log_store.cc.o" "gcc" "src/logging/CMakeFiles/ct_logging.dir/log_store.cc.o.d"
  "/root/repo/src/logging/stash.cc" "src/logging/CMakeFiles/ct_logging.dir/stash.cc.o" "gcc" "src/logging/CMakeFiles/ct_logging.dir/stash.cc.o.d"
  "/root/repo/src/logging/statement.cc" "src/logging/CMakeFiles/ct_logging.dir/statement.cc.o" "gcc" "src/logging/CMakeFiles/ct_logging.dir/statement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
