file(REMOVE_RECURSE
  "libct_logging.a"
)
