file(REMOVE_RECURSE
  "CMakeFiles/ct_core.dir/baselines.cc.o"
  "CMakeFiles/ct_core.dir/baselines.cc.o.d"
  "CMakeFiles/ct_core.dir/crashtuner.cc.o"
  "CMakeFiles/ct_core.dir/crashtuner.cc.o.d"
  "CMakeFiles/ct_core.dir/executor.cc.o"
  "CMakeFiles/ct_core.dir/executor.cc.o.d"
  "CMakeFiles/ct_core.dir/multi_crash.cc.o"
  "CMakeFiles/ct_core.dir/multi_crash.cc.o.d"
  "CMakeFiles/ct_core.dir/profiler.cc.o"
  "CMakeFiles/ct_core.dir/profiler.cc.o.d"
  "CMakeFiles/ct_core.dir/report_writer.cc.o"
  "CMakeFiles/ct_core.dir/report_writer.cc.o.d"
  "CMakeFiles/ct_core.dir/trigger.cc.o"
  "CMakeFiles/ct_core.dir/trigger.cc.o.d"
  "libct_core.a"
  "libct_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
