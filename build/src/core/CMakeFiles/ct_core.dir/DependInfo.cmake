
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cc" "src/core/CMakeFiles/ct_core.dir/baselines.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/baselines.cc.o.d"
  "/root/repo/src/core/crashtuner.cc" "src/core/CMakeFiles/ct_core.dir/crashtuner.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/crashtuner.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/core/CMakeFiles/ct_core.dir/executor.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/executor.cc.o.d"
  "/root/repo/src/core/multi_crash.cc" "src/core/CMakeFiles/ct_core.dir/multi_crash.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/multi_crash.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/core/CMakeFiles/ct_core.dir/profiler.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/profiler.cc.o.d"
  "/root/repo/src/core/report_writer.cc" "src/core/CMakeFiles/ct_core.dir/report_writer.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/report_writer.cc.o.d"
  "/root/repo/src/core/trigger.cc" "src/core/CMakeFiles/ct_core.dir/trigger.cc.o" "gcc" "src/core/CMakeFiles/ct_core.dir/trigger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ct_common.dir/DependInfo.cmake"
  "/root/repo/build/src/logging/CMakeFiles/ct_logging.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ct_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ct_model.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ct_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ct_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
