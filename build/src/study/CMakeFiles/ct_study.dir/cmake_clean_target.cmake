file(REMOVE_RECURSE
  "libct_study.a"
)
