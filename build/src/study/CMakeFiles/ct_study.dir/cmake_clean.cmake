file(REMOVE_RECURSE
  "CMakeFiles/ct_study.dir/bug_study.cc.o"
  "CMakeFiles/ct_study.dir/bug_study.cc.o.d"
  "libct_study.a"
  "libct_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
