# Empty dependencies file for ct_study.
# This may be replaced when dependencies are built.
