# Empty dependencies file for ct_common.
# This may be replaced when dependencies are built.
