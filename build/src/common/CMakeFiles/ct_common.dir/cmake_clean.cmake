file(REMOVE_RECURSE
  "CMakeFiles/ct_common.dir/strings.cc.o"
  "CMakeFiles/ct_common.dir/strings.cc.o.d"
  "libct_common.a"
  "libct_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
