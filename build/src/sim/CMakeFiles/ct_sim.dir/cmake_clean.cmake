file(REMOVE_RECURSE
  "CMakeFiles/ct_sim.dir/cluster.cc.o"
  "CMakeFiles/ct_sim.dir/cluster.cc.o.d"
  "CMakeFiles/ct_sim.dir/event_loop.cc.o"
  "CMakeFiles/ct_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/ct_sim.dir/failure_detector.cc.o"
  "CMakeFiles/ct_sim.dir/failure_detector.cc.o.d"
  "CMakeFiles/ct_sim.dir/node.cc.o"
  "CMakeFiles/ct_sim.dir/node.cc.o.d"
  "libct_sim.a"
  "libct_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ct_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
