// RQ2 in one binary: CrashTuner vs random crash injection vs IO fault
// injection on the same system under test (mini-YARN). Prints bugs found and
// cluster time spent by each approach — the paper's headline efficiency gap
// (one bug per 1.70 h for CrashTuner vs 17.03 h random vs 24.15 h IO).
#include <cstdio>

#include "src/core/baselines.h"
#include "src/core/crashtuner.h"
#include "src/systems/yarn/yarn_system.h"

int main(int argc, char** argv) {
  int random_trials = argc > 1 ? std::atoi(argv[1]) : 200;
  ctyarn::YarnSystem yarn;

  ctcore::CrashTunerDriver driver;
  ctcore::SystemReport crashtuner = driver.Run(yarn);

  ctcore::RandomCrashInjector random_injector;
  ctcore::BaselineReport random = random_injector.Run(yarn, random_trials, 99);

  ctcore::IoFaultInjector io_injector;
  ctcore::BaselineReport io = io_injector.Run(yarn, 99);

  auto print_row = [](const char* name, size_t runs, double hours, size_t bugs) {
    std::printf("%-14s %8zu runs %10.2f virt-h %6zu bugs %12.2f h/bug\n", name, runs, hours,
                bugs, bugs > 0 ? hours / static_cast<double>(bugs) : 0.0);
  };
  std::printf("Approach comparison on %s:\n\n", yarn.name().c_str());
  print_row("CrashTuner", crashtuner.injections.size(), crashtuner.test_virtual_hours,
            crashtuner.bugs.size());
  print_row("Random", static_cast<size_t>(random.trials), random.virtual_hours,
            random.bugs.size());
  print_row("IO-injection", static_cast<size_t>(io.trials), io.virtual_hours, io.bugs.size());

  std::printf("\nCrashTuner: ");
  for (const auto& bug : crashtuner.bugs) {
    std::printf("%s ", bug.bug_id.c_str());
  }
  std::printf("\nRandom    : ");
  for (const auto& bug : random.bugs) {
    std::printf("%s ", bug.bug_id.c_str());
  }
  std::printf("\nIO        : ");
  for (const auto& bug : io.bugs) {
    std::printf("%s ", bug.bug_id.c_str());
  }
  std::printf("\n\nEverything the baselines find, CrashTuner finds too — but not vice versa:\n"
              "most crash points are far from any IO point, and random timing almost never\n"
              "lands inside a millisecond-wide window (§4.2).\n");
  return 0;
}
