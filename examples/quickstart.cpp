// Quickstart: run the full CrashTuner pipeline against one system under test
// and print what it found.
//
//   $ ./build/examples/quickstart
//
// The pipeline (Fig. 4 of the paper): collect runtime logs -> offline log
// analysis discovers meta-info seed types -> the Definition 2 closure infers
// all meta-info types and fields -> static crash-point analysis (with the
// three pruning optimizations) -> profiling turns static points into
// <point, call-stack> dynamic points -> one fault-injection run per dynamic
// point, with online log analysis resolving the accessed value to the node
// to kill -> the oracle flags job failures, hangs and uncommon exceptions.
#include <cstdio>

#include "src/core/crashtuner.h"
#include "src/systems/yarn/yarn_system.h"

int main() {
  ctyarn::YarnSystem yarn;  // Hadoop2/Yarn, 1 RM + 3 NMs, WordCount+curl

  ctcore::CrashTunerDriver driver;
  ctcore::SystemReport report = driver.Run(yarn);

  std::printf("CrashTuner on %s (%s)\n", report.system.c_str(), yarn.version().c_str());
  std::printf("  program universe : %d types, %d fields, %d access points\n", report.total_types,
              report.total_fields, report.total_access_points);
  std::printf("  meta-info        : %d types, %d fields, %d access points\n",
              report.metainfo_types, report.metainfo_fields, report.metainfo_access_points);
  std::printf("  crash points     : %d static -> %d dynamic\n", report.static_crash_points,
              report.dynamic_crash_points);
  std::printf("  injection runs   : %zu (%.2f virtual hours of cluster time)\n",
              report.injections.size(), report.test_virtual_hours);
  std::printf("\nDetected crash-recovery bugs:\n");
  for (const auto& bug : report.bugs) {
    std::printf("  %-12s [%s, %s] %s\n", bug.bug_id.c_str(), bug.priority.c_str(),
                bug.scenario.c_str(), bug.symptom.c_str());
    std::printf("               crash point: %s\n", bug.location.c_str());
  }
  return 0;
}
