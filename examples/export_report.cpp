// Export example: run the pipeline on every system and write per-system
// markdown and JSON reports plus the Fig. 1 meta-info graph in Graphviz DOT.
//
//   $ ./build/examples/export_report /tmp/crashtuner-reports
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/analysis/log_analysis.h"
#include "src/core/crashtuner.h"
#include "src/core/report_writer.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

void Export(const ctcore::SystemUnderTest& system, const std::filesystem::path& directory) {
  ctcore::CrashTunerDriver driver;
  ctcore::SystemReport report = driver.Run(system);

  std::string stem = report.system;
  for (char& c : stem) {
    if (c == '/' || c == ' ') {
      c = '_';
    }
  }
  std::ofstream(directory / (stem + ".md")) << ctcore::ReportToMarkdown(report);
  std::ofstream(directory / (stem + ".json")) << ctcore::ReportToJson(report);
  std::ofstream(directory / (stem + ".dot"))
      << ctanalysis::MetaInfoGraphToDot(report.log_result.graph);
  std::printf("%-14s -> %s.{md,json,dot}  (%zu bugs)\n", report.system.c_str(),
              (directory / stem).c_str(), report.bugs.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path directory = argc > 1 ? argv[1] : "/tmp/crashtuner-reports";
  std::filesystem::create_directories(directory);

  Export(ctyarn::YarnSystem(), directory);
  Export(cthdfs::HdfsSystem(), directory);
  Export(cthbase::HBaseSystem(), directory);
  Export(ctzk::ZkSystem(), directory);
  Export(ctcass::CassSystem(), directory);
  return 0;
}
