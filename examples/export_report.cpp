// Export example: run the pipeline on every system and write per-system
// markdown and JSON reports plus the Fig. 1 meta-info graph in Graphviz DOT.
//
//   $ ./build/examples/export_report /tmp/crashtuner-reports
//
// Flags:
//   --representative           inject one crash point per static equivalence
//                              class instead of the full dynamic point set
//                              (reports gain an "equivalence" section);
//   --validate-representative  inject the full set, partition it, and assert
//                              per-class outcome equivalence (mismatch counts
//                              land in the report's equivalence section);
//   --static-only              enumerate contexts statically, no profiling;
//   --jobs N                   campaign worker threads (0 = hardware);
//   --scale N                  deployment scale multiplier: every system's
//                              replicated-role count and workload size grow
//                              N-fold (1 = the paper's deployment);
//   --fuzz N                   after the pipeline, run an N-run coverage-
//                              guided workload-fuzzing phase per system
//                              (reports gain a "fuzz" section);
//   --corpus-dir DIR           save each system's fuzz corpus under
//                              DIR/<system>/ (implies nothing without --fuzz);
//   --dossier-dir DIR          observe the campaigns and write one
//                              crashtuner-dossier-v1 JSON per failing run as
//                              DIR/<system>-slot<N>.json (src/obs/dossier.h).
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "src/analysis/log_analysis.h"
#include "src/core/crashtuner.h"
#include "src/core/report_writer.h"
#include "src/fuzz/fuzz_phase.h"
#include "src/obs/observer.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

void Export(const ctcore::SystemUnderTest& system, const ctcore::DriverOptions& base_options,
            const std::filesystem::path& directory, int fuzz_runs,
            const std::filesystem::path& corpus_dir,
            const std::filesystem::path& dossier_dir) {
  ctcore::CrashTunerDriver driver;
  ctcore::DriverOptions options = base_options;
  ctobs::CampaignObserver observer;
  if (!dossier_dir.empty()) {
    options.observer = &observer;
  }
  ctcore::SystemReport report = driver.Run(system, options);

  std::string stem = report.system;
  for (char& c : stem) {
    if (c == '/' || c == ' ') {
      c = '_';
    }
  }
  if (!dossier_dir.empty()) {
    for (const ctobs::Dossier& dossier : observer.dossiers()) {
      std::ofstream(dossier_dir / (stem + "-slot" + std::to_string(dossier.slot) + ".json"))
          << dossier.ToJson() << "\n";
    }
  }
  if (fuzz_runs > 0) {
    ctfuzz::FuzzPhaseOptions fuzz_options;
    fuzz_options.runs = fuzz_runs;
    fuzz_options.seed = options.seed;
    fuzz_options.jobs = options.jobs;
    fuzz_options.observer = options.observer;
    if (!corpus_dir.empty()) {
      fuzz_options.corpus_dir = (corpus_dir / stem).string();
    }
    ctfuzz::RunFuzzPhase(system, &report, fuzz_options);
  }
  std::ofstream(directory / (stem + ".md")) << ctcore::ReportToMarkdown(report);
  std::ofstream(directory / (stem + ".json")) << ctcore::ReportToJson(report);
  std::ofstream(directory / (stem + ".dot"))
      << ctanalysis::MetaInfoGraphToDot(report.log_result.graph);
  std::printf("%-14s -> %s.{md,json,dot}  (%zu bugs", report.system.c_str(),
              (directory / stem).c_str(), report.bugs.size());
  if (report.equivalence.active) {
    std::printf(", %d/%d points injected across %d classes", report.equivalence.injected,
                report.equivalence.members, report.equivalence.classes);
    if (report.equivalence.validation_mismatches > 0) {
      std::printf(", %d VALIDATION MISMATCH(ES)", report.equivalence.validation_mismatches);
    }
  }
  if (report.fuzz.active) {
    std::printf(", fuzz: %d runs, corpus %d, %d new pair(s)", report.fuzz.runs,
                report.fuzz.corpus_size, report.fuzz.new_pairs);
  }
  std::printf(")\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path directory = "/tmp/crashtuner-reports";
  ctcore::DriverOptions options;
  int scale = 1;
  int fuzz_runs = 0;
  std::filesystem::path corpus_dir;
  std::filesystem::path dossier_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--representative") {
      options.injection_selection = ctcore::InjectionSelection::kRepresentative;
    } else if (arg == "--validate-representative") {
      options.injection_selection = ctcore::InjectionSelection::kValidateRepresentative;
    } else if (arg == "--static-only") {
      options.context_mode = ctcore::ContextMode::kStaticOnly;
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = std::atoi(argv[++i]);
    } else if (arg == "--fuzz" && i + 1 < argc) {
      fuzz_runs = std::atoi(argv[++i]);
      if (fuzz_runs < 1) {
        std::fprintf(stderr, "--fuzz must be >= 1\n");
        return 2;
      }
    } else if (arg == "--corpus-dir" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg == "--dossier-dir" && i + 1 < argc) {
      dossier_dir = argv[++i];
    } else if (arg == "--scale" && i + 1 < argc) {
      scale = std::atoi(argv[++i]);
      if (scale < 1) {
        std::fprintf(stderr, "--scale must be >= 1\n");
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: export_report [DIR] [--representative | "
                   "--validate-representative] [--static-only] [--jobs N] [--scale N] "
                   "[--fuzz N] [--corpus-dir DIR] [--dossier-dir DIR]\n");
      return 2;
    } else {
      directory = arg;
    }
  }
  std::filesystem::create_directories(directory);
  if (!dossier_dir.empty()) {
    std::filesystem::create_directories(dossier_dir);
  }

  ctyarn::YarnSystem yarn;
  cthdfs::HdfsSystem hdfs;
  cthbase::HBaseSystem hbase;
  ctzk::ZkSystem zk;
  ctcass::CassSystem cass;
  for (ctcore::SystemUnderTest* system :
       std::initializer_list<ctcore::SystemUnderTest*>{&yarn, &hdfs, &hbase, &zk, &cass}) {
    system->set_scale(scale);
    Export(*system, options, directory, fuzz_runs, corpus_dir, dossier_dir);
  }
  return 0;
}
