// Fig. 3 walkthrough: MR-3858, the canonical post-write crash-recovery bug.
//
// The MapReduce commit protocol runs two RPCs: commitPending (the AM records
// the attempt allowed to commit) and doneCommit. If the task's node crashes
// in the window between them, the commit slot stays contaminated with the
// dead attempt; every re-attempt then flunks the commit check, is killed,
// and the job never finishes (a hang).
//
// CrashTuner finds this by crashing the node the *written* value resolves to
// right after the post-write crash point. Trunk clears the slot on node loss
// (the fix); the legacy build hangs.
#include <cstdio>

#include "src/core/crashtuner.h"
#include "src/systems/yarn/yarn_system.h"

static void ShowCommitInjection(ctyarn::YarnMode mode, const char* label) {
  ctyarn::YarnSystem yarn(mode);
  ctcore::CrashTunerDriver driver;
  ctcore::SystemReport report = driver.Run(yarn);
  std::printf("--- %s (%s) ---\n", label, yarn.version().c_str());
  for (const auto& injection : report.injections) {
    if (injection.location.find("TaskAttemptListener.commitPending") == std::string::npos) {
      continue;
    }
    std::printf("post-write point : %s\n", injection.location.c_str());
    std::printf("written value    : %s\n", injection.accessed_value.c_str());
    std::printf("crashed node     : %s (abrupt crash, no wait: Fig. 7's crash RPC)\n",
                injection.target_node.c_str());
    std::printf("outcome          : %s (run lasted %llu virtual s)\n",
                injection.outcome.PrimarySymptom().c_str(),
                static_cast<unsigned long long>(injection.outcome.virtual_duration_ms / 1000));
  }
  for (const auto& bug : report.bugs) {
    if (bug.bug_id == "MR-3858") {
      std::printf("triaged as       : MR-3858 — %s\n", bug.symptom.c_str());
    }
  }
  std::printf("\n");
}

int main() {
  std::printf("Fig. 3 — the MapReduce commit window\n\n");
  ShowCommitInjection(ctyarn::YarnMode::kLegacy, "legacy build: bug present");
  ShowCommitInjection(ctyarn::YarnMode::kTrunk, "trunk build: fixed, same injection tolerated");
  return 0;
}
