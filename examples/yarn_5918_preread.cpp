// Fig. 2 walkthrough: YARN-5918, the canonical pre-read crash-recovery bug.
//
// Two nodes matter: the ResourceManager on master:8030 and the NodeManager
// node1:42349. When node1 leaves, the recovery thread removes it from the
// shared node map; a job-path read that captured node1 earlier then
// dereferences the missing entry and dies with a NullPointerException.
//
// This example reproduces the bug the way CrashTuner does, on the *legacy*
// build (trunk carries the fix): it arms the pre-read crash point, lets the
// online stash resolve the accessed value to node1, shuts node1 down, waits
// out the recovery, and shows the resulting exception in the logs.
#include <cstdio>

#include "src/core/crashtuner.h"
#include "src/core/executor.h"
#include "src/core/trigger.h"
#include "src/systems/yarn/yarn_system.h"

int main() {
  ctyarn::YarnSystem legacy(ctyarn::YarnMode::kLegacy);
  ctcore::CrashTunerDriver driver;
  ctcore::SystemReport report = driver.Run(legacy);

  std::printf("Fig. 2 — YARN-5918 on mini-YARN %s\n\n", legacy.version().c_str());
  for (const auto& injection : report.injections) {
    if (injection.location.find("MRAppMaster.getNodeResource") == std::string::npos) {
      continue;
    }
    std::printf("armed crash point : %s\n", injection.location.c_str());
    std::printf("accessed value    : %s\n", injection.accessed_value.c_str());
    std::printf("stash resolved to : %s  -> graceful shutdown + 10 s wait\n",
                injection.target_node.c_str());
    std::printf("outcome           : %s\n", injection.outcome.PrimarySymptom().c_str());
    for (const auto& exception : injection.outcome.uncommon_exceptions) {
      std::printf("exception         : %s\n", exception.c_str());
    }
  }
  for (const auto& bug : report.bugs) {
    if (bug.bug_id == "YARN-5918") {
      std::printf("\ntriaged as        : %s (%s)\n", bug.bug_id.c_str(), bug.symptom.c_str());
    }
  }
  std::printf("\nOn trunk the read is sanity-checked (the fix), so the same point is pruned\n"
              "statically and the scenario is tolerated at runtime.\n");
  return 0;
}
