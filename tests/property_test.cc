// Property-based tests over randomized inputs: invariants of the inference
// closure, the crash-point analysis, the stash, and the simulator that must
// hold for *any* input, not just the curated fixtures.
#include <gtest/gtest.h>

#include <set>

#include "src/analysis/crash_point_analysis.h"
#include "src/analysis/metainfo_inference.h"
#include "src/common/rng.h"
#include "src/logging/stash.h"
#include "src/model/catalog.h"
#include "src/model/program_model.h"
#include "src/sim/cluster.h"

namespace {

using ctcommon::Rng;
using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::FieldDecl;
using ctmodel::ProgramModel;
using ctmodel::TypeDecl;

// Builds a random type universe: a forest of subtype chains, some collection
// types, fields, and access points.
struct RandomModel {
  ProgramModel model{"random"};
  std::vector<std::string> type_names;

  explicit RandomModel(uint64_t seed) {
    Rng rng(seed);
    ctmodel::AddBaseTypes(&model);
    int num_types = static_cast<int>(rng.Uniform(5, 40));
    for (int i = 0; i < num_types; ++i) {
      TypeDecl type;
      type.name = "T" + std::to_string(i);
      if (i > 0 && rng.Chance(0.4)) {
        type.supertype = "T" + std::to_string(rng.Index(i));
      }
      model.AddType(type);
      type_names.push_back(type.name);
    }
    int num_collections = static_cast<int>(rng.Uniform(1, 8));
    for (int i = 0; i < num_collections; ++i) {
      TypeDecl coll;
      coll.name = "Coll" + std::to_string(i);
      coll.element_types = {type_names[rng.Index(type_names.size())]};
      model.AddType(coll);
    }
    int num_fields = static_cast<int>(rng.Uniform(3, 30));
    for (int i = 0; i < num_fields; ++i) {
      FieldDecl field;
      field.clazz = type_names[rng.Index(type_names.size())];
      field.name = "f" + std::to_string(i);
      field.type = rng.Chance(0.2) ? "Coll" + std::to_string(rng.Index(num_collections))
                                   : type_names[rng.Index(type_names.size())];
      field.set_only_in_constructor = rng.Chance(0.3);
      model.AddField(field);

      int accesses = static_cast<int>(rng.Uniform(0, 4));
      for (int a = 0; a < accesses; ++a) {
        AccessPointDecl point;
        point.field_id = field.clazz + "." + field.name;
        point.kind = rng.Chance(0.5) ? AccessKind::kRead : AccessKind::kWrite;
        point.clazz = field.clazz;
        point.method = "m" + std::to_string(a);
        point.value_unused = rng.Chance(0.2);
        point.sanity_checked = rng.Chance(0.2);
        model.AddAccessPoint(point);
      }
    }
  }
};

class InferenceProperty : public ::testing::TestWithParam<int> {};

// Property: the closure is monotone — adding a seed never removes types.
TEST_P(InferenceProperty, SeedMonotonicity) {
  RandomModel random(GetParam());
  Rng rng(GetParam() * 31 + 1);
  ctanalysis::MetaInfoInference inference(&random.model);
  std::set<std::string> seeds{random.type_names[rng.Index(random.type_names.size())]};
  auto small = inference.Infer(seeds, {});
  seeds.insert(random.type_names[rng.Index(random.type_names.size())]);
  auto big = inference.Infer(seeds, {});
  for (const auto& [name, info] : small.types) {
    EXPECT_TRUE(big.IsMetaInfoType(name)) << name;
  }
  EXPECT_GE(big.NumFields(), small.NumFields());
}

// Property: the closure is idempotent — re-seeding with its own output adds
// nothing.
TEST_P(InferenceProperty, ClosureIdempotent) {
  RandomModel random(GetParam());
  Rng rng(GetParam() * 17 + 3);
  ctanalysis::MetaInfoInference inference(&random.model);
  std::set<std::string> seeds{random.type_names[rng.Index(random.type_names.size())]};
  auto once = inference.Infer(seeds, {});
  std::set<std::string> all_types;
  for (const auto& [name, info] : once.types) {
    all_types.insert(name);
  }
  auto twice = inference.Infer(all_types, {});
  EXPECT_EQ(once.NumTypes(), twice.NumTypes());
}

// Property: base types never enter the meta-info type set.
TEST_P(InferenceProperty, BaseTypesExcluded) {
  RandomModel random(GetParam());
  ctanalysis::MetaInfoInference inference(&random.model);
  std::set<std::string> seeds(random.type_names.begin(), random.type_names.end());
  seeds.insert("java.lang.String");
  seeds.insert("java.lang.Integer");
  auto result = inference.Infer(seeds, {});
  EXPECT_FALSE(result.IsMetaInfoType("java.lang.String"));
  EXPECT_FALSE(result.IsMetaInfoType("java.lang.Integer"));
}

// Property: subtype closure — every subtype of a meta-info type is one too.
TEST_P(InferenceProperty, SubtypesClosed) {
  RandomModel random(GetParam());
  Rng rng(GetParam() * 7 + 11);
  ctanalysis::MetaInfoInference inference(&random.model);
  std::set<std::string> seeds{random.type_names[rng.Index(random.type_names.size())]};
  auto result = inference.Infer(seeds, {});
  for (const auto& type : random.model.types()) {
    if (!type.supertype.empty() && result.IsMetaInfoType(type.supertype)) {
      EXPECT_TRUE(result.IsMetaInfoType(type.name)) << type.name;
    }
  }
}

// Property: every surviving crash point is on a meta-info field, and pruning
// options only ever shrink the set.
TEST_P(InferenceProperty, CrashPointsSubsetAndMonotone) {
  RandomModel random(GetParam());
  Rng rng(GetParam() * 13 + 7);
  ctanalysis::MetaInfoInference inference(&random.model);
  std::set<std::string> seeds{random.type_names[rng.Index(random.type_names.size())]};
  auto metainfo = inference.Infer(seeds, {});
  ctanalysis::CrashPointAnalysis analysis(&random.model, &metainfo);

  auto pruned = analysis.Identify();
  ctanalysis::CrashPointOptions no_prune;
  no_prune.prune_constructor_only = false;
  no_prune.prune_unused = false;
  no_prune.prune_sanity_checked = false;
  auto full = analysis.Identify(no_prune);

  EXPECT_LE(pruned.points.size(), full.points.size());
  std::set<int> full_ids = full.PointIds();
  for (const auto& point : pruned.points) {
    EXPECT_TRUE(metainfo.IsMetaInfoField(point.field_id)) << point.field_id;
    EXPECT_TRUE(full_ids.count(point.access_point_id));
  }
  // Accounting: candidates = survivors + pruned (promotion replaces 1:<n>).
  EXPECT_EQ(full.pruned_constructor + full.pruned_unused + full.pruned_sanity_checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InferenceProperty, ::testing::Range(1, 26));

class StashProperty : public ::testing::TestWithParam<int> {};

// Property: every association the stash ever reports points at a known node
// value, and lookups never invent values.
TEST_P(StashProperty, AssociationsAlwaysAnchorAtNodes) {
  Rng rng(GetParam());
  ctlog::OnlineFilter filter;
  filter.hosts = {"h1", "h2", "h3"};
  ctlog::CustomStash stash(filter);
  std::vector<std::string> pool;
  for (int i = 0; i < 30; ++i) {
    pool.push_back("value_" + std::to_string(i));
  }
  for (int round = 0; round < 200; ++round) {
    std::vector<std::string> instance;
    int n = static_cast<int>(rng.Uniform(1, 4));
    for (int k = 0; k < n; ++k) {
      if (rng.Chance(0.3)) {
        instance.push_back("h" + std::to_string(rng.Uniform(1, 3)) + ":" +
                           std::to_string(rng.Uniform(1000, 9999)));
      } else {
        instance.push_back(pool[rng.Index(pool.size())]);
      }
    }
    stash.Process(instance);
  }
  for (const auto& [value, node] : stash.value_to_node()) {
    EXPECT_TRUE(filter.IsNodeValue(node)) << value << " -> " << node;
    EXPECT_FALSE(filter.IsNodeValue(value)) << "node values are never map keys";
  }
  EXPECT_FALSE(stash.Lookup("never_seen_value").has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StashProperty, ::testing::Range(1, 16));

class SimProperty : public ::testing::TestWithParam<int> {};

class CountingNode : public ctsim::Node {
 public:
  CountingNode(ctsim::Cluster* cluster, std::string id) : Node(cluster, std::move(id)) {
    Handle("tick", [this](const ctsim::Message&) { ++received_; });
  }
  int received_ = 0;
};

// Property: messages are never delivered to dead nodes, and delivered +
// dropped equals sent.
TEST_P(SimProperty, ConservationOfMessages) {
  Rng rng(GetParam());
  ctsim::Cluster cluster(GetParam());
  std::vector<CountingNode*> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back(cluster.AddNode<CountingNode>("n" + std::to_string(i) + ":1"));
  }
  cluster.StartAll();
  int sent = 0;
  for (int i = 0; i < 150; ++i) {
    uint64_t when = rng.Uniform(0, 500);
    int from = static_cast<int>(rng.Index(4));
    int to = static_cast<int>(rng.Index(4));
    cluster.loop().ScheduleAt(when, [&, from, to] {
      if (nodes[from]->IsRunning()) {
        nodes[from]->Send(nodes[to]->id(), "tick");
        ++sent;
      }
    });
  }
  cluster.loop().ScheduleAt(rng.Uniform(100, 400),
                            [&] { cluster.Crash(nodes[rng.Index(4)]->id()); });
  cluster.loop().RunToCompletion();
  int received = 0;
  for (auto* node : nodes) {
    if (!node->IsRunning()) {
      EXPECT_GE(node->received_, 0);
    }
    received += node->received_;
  }
  EXPECT_EQ(static_cast<uint64_t>(sent),
            cluster.delivered_messages() + cluster.dropped_messages());
  EXPECT_EQ(static_cast<uint64_t>(received), cluster.delivered_messages());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty, ::testing::Range(1, 21));

}  // namespace
