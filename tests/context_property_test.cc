// Property/fuzz tests for the bounded context enumeration over random call
// graphs (seeded, deterministic). For each random shape and every depth the
// invariants are:
//   - depth bound respected, and every key is a real backward walk: each
//     (inner, outer) frame pair is a declared sync edge;
//   - complete strings (fewer frames than the bound) end at a context root;
//   - enumeration is stable: rebuilding the graph reproduces the same sets
//     (keys are held in ordered sets, so equality pins the order too);
//   - pruning is sound and exact: pruned ⊆ unpruned, and prune-then-enumerate
//     equals enumerate-then-filter through IsFeasibleKey;
//   - EnumerateAll agrees with EnumerateMethod on every reachable anchor and
//     accounts every string pruning removed.
// The last suite ties the enumeration to the fuzzer: on every shipped system
// a fixed-budget fuzz campaign's coverage is a *strict* superset of the fixed
// script's profiled pairs, and every fuzz-only pair is inside the static
// enumeration — Definition 1 soundness extends to workloads the script never
// runs.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/call_graph.h"
#include "src/analysis/context_enumeration.h"
#include "src/common/rng.h"
#include "src/core/crashtuner.h"
#include "src/fuzz/fuzz_phase.h"
#include "src/model/program_model.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctanalysis::CallGraph;
using ctanalysis::ContextEnumeration;
using ctanalysis::StaticContextResult;
using ctcommon::Rng;
using ctmodel::CallKind;
using ctmodel::ProgramModel;

std::vector<std::string> SplitFrames(const std::string& key) {
  std::vector<std::string> frames;
  std::string::size_type start = 0;
  while (true) {
    auto pos = key.find('<', start);
    if (pos == std::string::npos) {
      frames.push_back(key.substr(start));
      return frames;
    }
    frames.push_back(key.substr(start, pos - start));
    start = pos + 1;
  }
}

struct RandomGraph {
  ProgramModel model{"random"};
  std::vector<std::string> method_ids;
  std::set<std::pair<std::string, std::string>> sync_edges;  // (callee, caller)
};

// Random call-graph shape: 4..20 methods over a handful of classes, ~25%
// entry points (at least one), n..3n edges with ~15% async, self-loops and
// cycles allowed. Access points anchor at every method so EnumerateAll
// exercises each anchor.
RandomGraph MakeRandomGraph(uint64_t seed) {
  RandomGraph graph;
  Rng rng(seed);
  const int n = static_cast<int>(rng.Uniform(4, 20));
  for (int i = 0; i < n; ++i) {
    ctmodel::MethodDecl method;
    method.clazz = "C" + std::to_string(i % 5);
    method.name = "m" + std::to_string(i);
    method.entry_point = (i == 0) || rng.Chance(0.25);
    graph.model.AddMethod(method);
    graph.method_ids.push_back(method.clazz + "." + method.name);
  }
  ctmodel::FieldDecl field;
  field.id = "C0.state";
  field.clazz = "C0";
  field.name = "state";
  field.type = "C0";
  graph.model.AddField(field);

  const int num_edges = static_cast<int>(rng.Uniform(static_cast<uint64_t>(n),
                                                     static_cast<uint64_t>(3 * n)));
  for (int e = 0; e < num_edges; ++e) {
    const std::string& caller = graph.method_ids[rng.Index(graph.method_ids.size())];
    const std::string& callee = graph.method_ids[rng.Index(graph.method_ids.size())];
    const CallKind kind = rng.Chance(0.15) ? CallKind::kAsync : CallKind::kStatic;
    graph.model.AddCallEdge({caller, callee, kind});
    if (kind != CallKind::kAsync) {
      graph.sync_edges.insert({callee, caller});
    }
  }

  for (const std::string& id : graph.method_ids) {
    auto dot = id.rfind('.');
    ctmodel::AccessPointDecl point;
    point.field_id = "C0.state";
    point.clazz = id.substr(0, dot);
    point.method = id.substr(dot + 1);
    point.line = 1;
    point.executable = true;
    graph.model.AddAccessPoint(point);
  }
  return graph;
}

class ContextEnumerationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ContextEnumerationProperty, KeysAreBoundedValidWalks) {
  RandomGraph random = MakeRandomGraph(static_cast<uint64_t>(GetParam()));
  CallGraph graph(random.model);
  ContextEnumeration enumeration(&graph);
  for (int depth = 1; depth <= 5; ++depth) {
    for (const std::string& anchor : random.method_ids) {
      for (bool prune : {false, true}) {
        for (const std::string& key : enumeration.EnumerateMethod(anchor, depth, prune)) {
          std::vector<std::string> frames = SplitFrames(key);
          ASSERT_LE(static_cast<int>(frames.size()), depth) << key;
          EXPECT_EQ(frames.front(), anchor) << key;
          for (size_t i = 0; i + 1 < frames.size(); ++i) {
            EXPECT_EQ(random.sync_edges.count({frames[i], frames[i + 1]}), 1u)
                << "undeclared edge " << frames[i] << " <- " << frames[i + 1] << " in " << key;
          }
          if (static_cast<int>(frames.size()) < depth) {
            EXPECT_TRUE(graph.IsContextRoot(frames.back()))
                << "complete string not rooted: " << key;
          }
        }
      }
    }
  }
}

TEST_P(ContextEnumerationProperty, PruneEqualsEnumerateThenFilter) {
  RandomGraph random = MakeRandomGraph(static_cast<uint64_t>(GetParam()));
  CallGraph graph(random.model);
  ContextEnumeration enumeration(&graph);
  for (int depth = 1; depth <= 5; ++depth) {
    for (const std::string& anchor : random.method_ids) {
      std::set<std::string> unpruned = enumeration.EnumerateMethod(anchor, depth);
      std::set<std::string> pruned =
          enumeration.EnumerateMethod(anchor, depth, /*prune_infeasible=*/true);
      std::set<std::string> filtered;
      for (const std::string& key : unpruned) {
        if (enumeration.IsFeasibleKey(key, depth)) {
          filtered.insert(key);
        }
      }
      EXPECT_EQ(pruned, filtered) << anchor << " depth " << depth;
      for (const std::string& key : pruned) {
        EXPECT_EQ(unpruned.count(key), 1u) << "pruned set is not a subset at " << key;
      }
    }
  }
}

TEST_P(ContextEnumerationProperty, EnumerationIsStableAcrossRebuilds) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  RandomGraph first = MakeRandomGraph(seed);
  RandomGraph second = MakeRandomGraph(seed);
  CallGraph graph_a(first.model);
  CallGraph graph_b(second.model);
  ContextEnumeration enum_a(&graph_a);
  ContextEnumeration enum_b(&graph_b);
  for (int depth : {2, 5}) {
    for (bool prune : {false, true}) {
      StaticContextResult a = enum_a.EnumerateAll(depth, prune);
      StaticContextResult b = enum_b.EnumerateAll(depth, prune);
      EXPECT_EQ(a.contexts_by_point, b.contexts_by_point);
      EXPECT_EQ(a.unreachable_points, b.unreachable_points);
      EXPECT_EQ(a.infeasible_points, b.infeasible_points);
      EXPECT_EQ(a.pruned_call_strings, b.pruned_call_strings);
    }
  }
}

TEST_P(ContextEnumerationProperty, EnumerateAllMatchesPerAnchorAndAccounting) {
  RandomGraph random = MakeRandomGraph(static_cast<uint64_t>(GetParam()));
  CallGraph graph(random.model);
  ContextEnumeration enumeration(&graph);
  const int depth = 5;
  StaticContextResult pruned = enumeration.EnumerateAll(depth, /*prune_infeasible=*/true);
  StaticContextResult unpruned = enumeration.EnumerateAll(depth);
  int expected_pruned = 0;
  for (const auto& point : random.model.access_points()) {
    const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
    if (!graph.IsReachable(anchor)) {
      EXPECT_EQ(pruned.unreachable_points.count(point.id), 1u);
      continue;
    }
    std::set<std::string> direct =
        enumeration.EnumerateMethod(anchor, depth, /*prune_infeasible=*/true);
    auto it = pruned.contexts_by_point.find(point.id);
    if (direct.empty()) {
      EXPECT_EQ(it, pruned.contexts_by_point.end());
    } else {
      ASSERT_NE(it, pruned.contexts_by_point.end());
      EXPECT_EQ(it->second, direct);
    }
    expected_pruned +=
        static_cast<int>(enumeration.EnumerateMethod(anchor, depth).size() - direct.size());
  }
  EXPECT_EQ(pruned.pruned_call_strings, expected_pruned);
  EXPECT_EQ(unpruned.TotalContexts() - pruned.TotalContexts(), pruned.pruned_call_strings);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextEnumerationProperty, ::testing::Range(1, 26));

// --- Fuzz coverage vs the static enumeration ---------------------------------

TEST(FuzzCoverageProperty, FuzzPairsStrictlyExtendTheScriptWithinTheStaticSet) {
  std::vector<std::unique_ptr<ctcore::SystemUnderTest>> systems;
  systems.push_back(std::make_unique<ctyarn::YarnSystem>());
  systems.push_back(std::make_unique<cthdfs::HdfsSystem>());
  systems.push_back(std::make_unique<cthbase::HBaseSystem>());
  systems.push_back(std::make_unique<ctzk::ZkSystem>());
  systems.push_back(std::make_unique<ctcass::CassSystem>());

  for (const auto& system : systems) {
    ctcore::SystemReport report = ctcore::CrashTunerDriver().Run(*system);
    const std::set<ctrt::DynamicPoint> script_pairs = report.profile.dynamic_access_points;

    ctfuzz::FuzzPhaseOptions options;
    options.runs = 48;
    ctfuzz::FuzzResult result = ctfuzz::RunFuzzPhase(*system, &report, options);

    // Superset: the script's profiled pairs seed the coverage map, so none
    // may be lost; strictness: the budget must reach at least one pair the
    // fixed script cannot produce.
    for (const ctrt::DynamicPoint& pair : script_pairs) {
      EXPECT_TRUE(result.coverage.Contains({/*io=*/false, pair}))
          << system->name() << " lost scripted pair p" << pair.point_id;
    }
    ASSERT_FALSE(result.new_keys.empty())
        << system->name() << ": fuzzing discovered nothing beyond the fixed script";

    // Containment: every fuzz-only pair is a call string the bounded static
    // enumeration already predicts for that point (Definition 1 soundness,
    // now exercised off-script).
    CallGraph graph(system->model());
    ContextEnumeration enumeration(&graph);
    StaticContextResult enumerated =
        enumeration.EnumerateAll(/*depth=*/5, /*prune_infeasible=*/true);
    for (const ctfuzz::CoverageKey& key : result.new_keys) {
      if (key.io) {
        continue;  // io points have no call-string enumeration
      }
      auto it = enumerated.contexts_by_point.find(key.point.point_id);
      ASSERT_NE(it, enumerated.contexts_by_point.end())
          << system->name() << " fuzz-only pair at unenumerated point p"
          << key.point.point_id;
      EXPECT_EQ(it->second.count(key.point.stack_key), 1u)
          << system->name() << " fuzz-only pair p" << key.point.point_id << " key=["
          << key.point.stack_key << "] is outside the static enumeration";
    }
  }
}

}  // namespace
