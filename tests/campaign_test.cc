// Parallel injection-campaign engine: Map ordering/exception semantics, and
// the headline determinism guarantee — the full driver on mini-YARN produces
// a field-for-field identical SystemReport at jobs=1 and jobs=4.
#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "src/core/campaign.h"
#include "src/core/crashtuner.h"
#include "src/core/report_writer.h"
#include "src/obs/observer.h"
#include "src/obs/snapshot.h"
#include "src/runtime/run_context.h"
#include "src/systems/yarn/yarn_system.h"

namespace {

TEST(ResolveJobs, PositivePassesThroughZeroMeansHardware) {
  EXPECT_EQ(ctcore::ResolveJobs(1), 1);
  EXPECT_EQ(ctcore::ResolveJobs(7), 7);
  EXPECT_GE(ctcore::ResolveJobs(0), 1);
  EXPECT_GE(ctcore::ResolveJobs(-3), 1);
}

TEST(CampaignEngine, MapReturnsResultsInIndexOrder) {
  ctcore::CampaignEngine engine(4);
  std::vector<int> squares = engine.Map(100, [](int i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(squares[i], i * i);
  }
}

TEST(CampaignEngine, MapActuallyFansOut) {
  ctcore::CampaignEngine engine(4);
  std::mutex mu;
  std::set<std::thread::id> threads;
  engine.Map(64, [&](int i) {
    {
      std::lock_guard<std::mutex> lock(mu);
      threads.insert(std::this_thread::get_id());
    }
    // Hold the task long enough that one worker cannot drain the queue alone.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return i;
  });
  EXPECT_GT(threads.size(), 1u);
}

TEST(CampaignEngine, MapHandlesEmptyAndSingleTask) {
  ctcore::CampaignEngine engine(8);
  EXPECT_TRUE(engine.Map(0, [](int i) { return i; }).empty());
  std::vector<int> one = engine.Map(1, [](int i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41);
}

TEST(CampaignEngine, MapRethrowsTaskException) {
  ctcore::CampaignEngine engine(4);
  EXPECT_THROW(engine.Map(16,
                          [](int i) {
                            if (i == 7) {
                              throw std::runtime_error("task 7 failed");
                            }
                            return i;
                          }),
               std::runtime_error);
}

TEST(RunContextBinding, WorkerThreadsSeeTheirOwnTracer) {
  // Two threads each bind a context and record through Instance(): neither
  // observes the other's frames.
  ctrt::RunContext a;
  ctrt::RunContext b;
  std::atomic<bool> ok_a{false};
  std::atomic<bool> ok_b{false};
  auto probe = [](ctrt::RunContext& context, std::atomic<bool>* ok) {
    ctrt::ScopedRunContext bind(context);
    ctrt::AccessTracer& tracer = ctrt::AccessTracer::Instance();
    EXPECT_EQ(&tracer, &context.tracer());
    tracer.PushFrame("Worker.handle");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ok->store(tracer.CaptureStack().Key() == "Worker.handle");
    tracer.PopFrame();
  };
  std::thread ta(probe, std::ref(a), &ok_a);
  std::thread tb(probe, std::ref(b), &ok_b);
  ta.join();
  tb.join();
  EXPECT_TRUE(ok_a.load());
  EXPECT_TRUE(ok_b.load());
}

bool SameOutcome(const ctcore::RunOutcome& x, const ctcore::RunOutcome& y) {
  return x.finished == y.finished && x.failed == y.failed && x.hang == y.hang &&
         x.timeout_issue == y.timeout_issue && x.cluster_down == y.cluster_down &&
         x.uncommon_exceptions == y.uncommon_exceptions &&
         x.virtual_duration_ms == y.virtual_duration_ms;
}

TEST(ParallelDeterminism, YarnReportIdenticalAtJobs1AndJobs4) {
  ctyarn::YarnSystem yarn;
  ctcore::CrashTunerDriver driver;

  ctcore::DriverOptions sequential;
  sequential.jobs = 1;
  ctcore::SystemReport seq = driver.Run(yarn, sequential);

  ctcore::DriverOptions parallel;
  parallel.jobs = 4;
  ctcore::SystemReport par = driver.Run(yarn, parallel);

  // Injection outcomes field-for-field, in campaign order.
  ASSERT_EQ(seq.injections.size(), par.injections.size());
  for (size_t i = 0; i < seq.injections.size(); ++i) {
    const ctcore::InjectionResult& s = seq.injections[i];
    const ctcore::InjectionResult& p = par.injections[i];
    EXPECT_EQ(s.point.point_id, p.point.point_id) << "injection " << i;
    EXPECT_EQ(s.point.stack_key, p.point.stack_key) << "injection " << i;
    EXPECT_EQ(s.kind, p.kind) << "injection " << i;
    EXPECT_EQ(s.location, p.location) << "injection " << i;
    EXPECT_EQ(s.field_id, p.field_id) << "injection " << i;
    EXPECT_EQ(s.point_hit, p.point_hit) << "injection " << i;
    EXPECT_EQ(s.injected, p.injected) << "injection " << i;
    EXPECT_EQ(s.target_node, p.target_node) << "injection " << i;
    EXPECT_EQ(s.accessed_value, p.accessed_value) << "injection " << i;
    EXPECT_TRUE(SameOutcome(s.outcome, p.outcome)) << "injection " << i;
  }

  // Bug rows and counters.
  ASSERT_EQ(seq.bugs.size(), par.bugs.size());
  for (size_t i = 0; i < seq.bugs.size(); ++i) {
    EXPECT_EQ(seq.bugs[i].bug_id, par.bugs[i].bug_id);
    EXPECT_EQ(seq.bugs[i].exposing_points.size(), par.bugs[i].exposing_points.size());
  }
  EXPECT_EQ(seq.timeout_issues.size(), par.timeout_issues.size());
  EXPECT_EQ(seq.dynamic_crash_points, par.dynamic_crash_points);
  EXPECT_DOUBLE_EQ(seq.test_virtual_hours, par.test_virtual_hours);

  // Byte-identical serialized reports, modulo the wall-clock fields (the only
  // nondeterministic members by construction).
  seq.analysis_wall_seconds = par.analysis_wall_seconds = 0;
  seq.test_wall_seconds = par.test_wall_seconds = 0;
  EXPECT_EQ(ctcore::ReportToJson(seq), ctcore::ReportToJson(par));
}

TEST(ScaleDeterminism, YarnReportIdenticalAtJobs1AndJobs4AtScale8) {
  // The --scale knob multiplies the deployment (workers, tasks) but must not
  // cost determinism: the scaled campaign serializes byte-identically at any
  // worker count.
  ctyarn::YarnSystem yarn;
  yarn.set_scale(8);
  ASSERT_EQ(yarn.scale(), 8);
  ASSERT_EQ(yarn.default_workload_size(), 24);
  ctcore::CrashTunerDriver driver;

  ctcore::DriverOptions sequential;
  sequential.jobs = 1;
  ctcore::SystemReport seq = driver.Run(yarn, sequential);

  ctcore::DriverOptions parallel;
  parallel.jobs = 4;
  ctcore::SystemReport par = driver.Run(yarn, parallel);

  EXPECT_EQ(seq.trace_hash, par.trace_hash);
  seq.analysis_wall_seconds = par.analysis_wall_seconds = 0;
  seq.test_wall_seconds = par.test_wall_seconds = 0;
  EXPECT_EQ(ctcore::ReportToJson(seq), ctcore::ReportToJson(par));
}

TEST(ParallelDeterminism, ObservationIsPassiveAndSnapshotDeterministic) {
  ctyarn::YarnSystem yarn;
  ctcore::CrashTunerDriver driver;

  // Baseline: no observer.
  ctcore::SystemReport plain = driver.Run(yarn);

  // Observed at jobs=1 and jobs=4.
  ctobs::CampaignObserver obs_seq;
  ctcore::DriverOptions sequential;
  sequential.jobs = 1;
  sequential.observer = &obs_seq;
  ctcore::SystemReport seq = driver.Run(yarn, sequential);

  ctobs::CampaignObserver obs_par;
  ctcore::DriverOptions parallel;
  parallel.jobs = 4;
  parallel.observer = &obs_par;
  ctcore::SystemReport par = driver.Run(yarn, parallel);

  // Observation must not perturb the campaign: the report with metrics on is
  // byte-identical to the report with metrics off (wall fields zeroed).
  plain.analysis_wall_seconds = seq.analysis_wall_seconds = par.analysis_wall_seconds = 0;
  plain.test_wall_seconds = seq.test_wall_seconds = par.test_wall_seconds = 0;
  EXPECT_EQ(ctcore::ReportToJson(plain), ctcore::ReportToJson(seq));
  EXPECT_EQ(ctcore::ReportToJson(plain), ctcore::ReportToJson(par));

  // The deterministic half of the snapshot (everything outside "wall") is
  // byte-identical across thread counts; the wall sidecar records the jobs.
  ctobs::MetricsSnapshot snap_seq;
  snap_seq.systems.push_back(obs_seq.Finalize());
  ctobs::MetricsSnapshot snap_par;
  snap_par.systems.push_back(obs_par.Finalize());
  ASSERT_EQ(snap_seq.systems.size(), 1u);
  EXPECT_EQ(snap_seq.systems[0].jobs, 1);
  EXPECT_EQ(snap_par.systems[0].jobs, 4);
  EXPECT_GT(snap_seq.systems[0].runs, 0);
  EXPECT_EQ(snap_seq.ToJson(/*include_wall=*/false),
            snap_par.ToJson(/*include_wall=*/false));

  // The v2 additions actually recorded: a span hierarchy and causal flows.
  const ctobs::SystemMetrics& finalized = snap_seq.systems[0];
  EXPECT_FALSE(finalized.span_tree.empty());
  EXPECT_GT(finalized.flows.messages, 0u);
  EXPECT_GT(finalized.flows.span_resolved, 0u);
  for (size_t i = 0; i < finalized.span_tree.size(); ++i) {
    // Index-ordered merge: every parent precedes its children.
    EXPECT_LT(finalized.span_tree[i].parent, static_cast<long long>(i));
    EXPECT_GE(finalized.span_tree[i].parent, -1);
  }

  // Failure dossiers are part of the deterministic observation: the same
  // failing runs produce the same dossiers at any worker count.
  const std::vector<ctobs::Dossier> dossiers_seq = obs_seq.dossiers();
  const std::vector<ctobs::Dossier> dossiers_par = obs_par.dossiers();
  ASSERT_EQ(dossiers_seq.size(), dossiers_par.size());
  EXPECT_GT(dossiers_seq.size(), 0u);  // mini-YARN campaigns do find bugs
  for (size_t i = 0; i < dossiers_seq.size(); ++i) {
    EXPECT_EQ(dossiers_seq[i].ToJson(), dossiers_par[i].ToJson());
    // And each round-trips through the v1 reader.
    const std::string json = dossiers_seq[i].ToJson();
    EXPECT_EQ(ctobs::Dossier::FromJsonText(json).ToJson(), json);
  }
}

TEST(FlowDag, EveryDeliveredMessageResolvesToItsOriginatingSpan) {
  // Golden-run flow check on a real campaign: run mini-YARN observed, then
  // validate the flow DAG of each absorbed run via the finalized statistics —
  // parents always precede children (FlowRecorder depth relies on it), root
  // count is sane, and a majority of deliveries carry an originating span.
  ctyarn::YarnSystem yarn;
  ctcore::CrashTunerDriver driver;
  ctobs::CampaignObserver observer;
  ctcore::DriverOptions options;
  options.observer = &observer;
  (void)driver.Run(yarn, options);

  const ctobs::SystemMetrics metrics = observer.Finalize();
  ASSERT_GT(metrics.flows.messages, 0u);
  EXPECT_GT(metrics.flows.roots, 0u);
  EXPECT_LE(metrics.flows.roots, metrics.flows.messages);
  // Handlers send messages while handling deliveries, so chains must nest.
  EXPECT_GE(metrics.flows.max_depth, 2u);
  // Every injection run opens phase spans around its whole lifetime, so
  // every message posted from node code resolves to some span.
  EXPECT_EQ(metrics.flows.span_resolved, metrics.flows.messages);
  unsigned long long per_method_total = 0;
  for (const auto& [method, count] : metrics.flows.per_method) {
    EXPECT_FALSE(method.empty());
    per_method_total += count;
  }
  EXPECT_EQ(per_method_total, metrics.flows.messages);
}

}  // namespace
