// Tests for the extensions layered on the paper's pipeline: the driver
// options (pre-read wait window, manual annotations), the multi-crash
// tester, the report writers, and the DOT export.
#include <gtest/gtest.h>

#include <set>

#include "src/analysis/log_analysis.h"
#include "src/core/crashtuner.h"
#include "src/core/multi_crash.h"
#include "src/core/report_writer.h"
#include "src/systems/yarn/yarn_system.h"

namespace ctcore {
namespace {

const SystemReport& CachedReport() {
  static const SystemReport* report = [] {
    ctyarn::YarnSystem yarn;
    return new SystemReport(CrashTunerDriver().Run(yarn));
  }();
  return *report;
}

TEST(WaitWindowOption, ZeroWaitLosesPreReadBugs) {
  ctyarn::YarnSystem yarn;
  DriverOptions options;
  options.pre_read_wait_ms = 0;
  SystemReport report = CrashTunerDriver().Run(yarn, options);
  // Without the wait, recovery never races the interrupted read: the
  // wait-dependent pre-read bugs disappear. (YARN-9201 can still surface as
  // collateral damage — the dead node's *other* queued transitions hit the
  // KILLED state later in the run.)
  std::set<std::string> ids;
  for (const auto& bug : report.bugs) {
    ids.insert(bug.bug_id);
  }
  for (const char* lost : {"YARN-9238", "YARN-9164", "YARN-9194", "YARN-9248", "YARN-8649"}) {
    EXPECT_FALSE(ids.count(lost)) << lost << " needs the wait window";
  }
  EXPECT_LT(report.bugs.size(), CachedReport().bugs.size());
}

TEST(AnnotationOption, ExtraSeedsExpandMetaInfo) {
  ctyarn::YarnSystem yarn;
  DriverOptions options;
  // SchedulerNode values never appear in logs (the YARN-4502-class miss);
  // annotating the type pulls it — and its collections — into the set.
  options.annotated_seed_types.insert("yarn.server.scheduler.SchedulerNode");
  SystemReport annotated = CrashTunerDriver().Run(yarn, options);
  EXPECT_FALSE(CachedReport().metainfo.IsMetaInfoType("yarn.server.scheduler.SchedulerNode"));
  EXPECT_TRUE(annotated.metainfo.IsMetaInfoType("yarn.server.scheduler.SchedulerNode"));
  EXPECT_GE(annotated.metainfo_types, CachedReport().metainfo_types + 1);
}

TEST(MultiCrash, PairRunsChainTwoInjections) {
  ctyarn::YarnSystem yarn;
  const SystemReport& single = CachedReport();
  ctanalysis::LogAnalysis log_analysis(&yarn.model(), {"master", "node1", "node2", "node3"});
  ctlog::OnlineFilter filter = log_analysis.MakeOnlineFilter(single.log_result);
  MultiCrashTester tester(&yarn, &single.crash_points, filter, single.profile.baseline);

  // Pick two pre-read points that individually expose YARN-9164 and
  // YARN-8650; chained, both faults must land.
  ctrt::DynamicPoint first;
  ctrt::DynamicPoint second;
  for (const auto& injection : single.injections) {
    if (injection.location.find("completeContainer") != std::string::npos &&
        injection.injected) {
      first = injection.point;
    }
    if (injection.location.find("ContainerImpl.handle:120") != std::string::npos) {
      second = injection.point;
    }
  }
  ASSERT_GE(first.point_id, 0);
  ASSERT_GE(second.point_id, 0);
  PairInjectionResult result = tester.TestPair(second, first, 777);
  EXPECT_TRUE(result.first_injected);
  // The second point may or may not execute after the first fault; when it
  // does, a second node dies.
  if (result.second_injected) {
    EXPECT_NE(result.first_target, result.second_target);
  }
}

TEST(MultiCrash, ReportSeparatesMultiOnlyFailures) {
  ctyarn::YarnSystem yarn;
  const SystemReport& single = CachedReport();
  ctanalysis::LogAnalysis log_analysis(&yarn.model(), {"master", "node1", "node2", "node3"});
  ctlog::OnlineFilter filter = log_analysis.MakeOnlineFilter(single.log_result);
  MultiCrashTester tester(&yarn, &single.crash_points, filter, single.profile.baseline);
  MultiCrashReport report = tester.TestPairs(single.profile, single.injections, 6, 888);
  EXPECT_EQ(report.pairs_tested, 6);
  EXPECT_LE(report.multi_only.size(), report.failing.size());
  EXPECT_GT(report.virtual_hours, 0.0);
}

TEST(ReportWriter, MarkdownContainsBugsAndCounts) {
  std::string markdown = ReportToMarkdown(CachedReport());
  EXPECT_NE(markdown.find("# CrashTuner report — Hadoop2/Yarn"), std::string::npos);
  EXPECT_NE(markdown.find("YARN-9164"), std::string::npos);
  EXPECT_NE(markdown.find("Static crash points"), std::string::npos);
}

TEST(ReportWriter, JsonIsWellFormedEnough) {
  std::string json = ReportToJson(CachedReport());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"system\":\"Hadoop2/Yarn\""), std::string::npos);
  EXPECT_NE(json.find("\"bugs\":["), std::string::npos);
  // Balanced braces (no quotes inside our ids, so a plain count suffices).
  int depth = 0;
  for (char c : json) {
    depth += c == '{' ? 1 : 0;
    depth -= c == '}' ? 1 : 0;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(ReportWriter, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(DotExport, RendersNodesAndEdges) {
  ctanalysis::MetaInfoGraph graph;
  graph.node_values.insert("node1:42349");
  graph.value_to_node["container_1"] = "node1:42349";
  std::string dot = ctanalysis::MetaInfoGraphToDot(graph);
  EXPECT_NE(dot.find("digraph metainfo"), std::string::npos);
  EXPECT_NE(dot.find("\"node1:42349\" [shape=box"), std::string::npos);
  EXPECT_NE(dot.find("\"container_1\" -> \"node1:42349\""), std::string::npos);
}

TEST(StackDepthOption, DepthOneMergesContexts) {
  ctrt::AccessTracer::SetDefaultStackDepth(1);
  ctyarn::YarnSystem yarn;
  SystemReport shallow = CrashTunerDriver().Run(yarn);
  ctrt::AccessTracer::SetDefaultStackDepth(ctrt::CallStack::kMaxDepth);
  // Depth 1 cannot distinguish the two completeContainer contexts, so the
  // dynamic point count drops.
  EXPECT_LT(shallow.dynamic_crash_points, CachedReport().dynamic_crash_points);
}

}  // namespace
}  // namespace ctcore
