// Tests for the cluster simulator: node lifecycle, messaging, crash vs
// graceful shutdown, the failure detector, and exception boundaries.
#include <gtest/gtest.h>

#include "src/sim/cluster.h"
#include "src/sim/exception.h"
#include "src/sim/failure_detector.h"

namespace ctsim {
namespace {

class EchoNode : public Node {
 public:
  EchoNode(Cluster* cluster, std::string id) : Node(cluster, std::move(id)) {
    Handle("ping", [this](const Message& m) {
      ++pings_;
      Send(m.from, "pong", {});
    });
    Handle("pong", [this](const Message&) { ++pongs_; });
    Handle("boom", [this](const Message&) {
      throw SimException("NullPointerException", "boom");
    });
    Handle("crashsignal", [this](const Message&) {
      mid_handler_ = true;
      throw NodeCrashedSignal{};
    });
  }

  int pings_ = 0;
  int pongs_ = 0;
  bool mid_handler_ = false;
  bool shutdown_ran_ = false;

 protected:
  void OnShutdown() override { shutdown_ran_ = true; }
};

TEST(Cluster, DeliversMessagesWithLatency) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  auto* b = cluster.AddNode<EchoNode>("b:1");
  cluster.StartAll();
  a->Send("b:1", "ping");
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 1);
  EXPECT_EQ(a->pongs_, 1);
  EXPECT_EQ(cluster.delivered_messages(), 2u);
}

TEST(Cluster, MessagesToDeadNodesAreDropped) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  auto* b = cluster.AddNode<EchoNode>("b:1");
  cluster.StartAll();
  a->Send("b:1", "ping");
  cluster.Crash("b:1");  // dies before delivery
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 0);
  EXPECT_EQ(cluster.dropped_messages(), 1u);
}

TEST(Cluster, CrashIsAbruptShutdownIsGraceful) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  auto* b = cluster.AddNode<EchoNode>("b:1");
  cluster.StartAll();
  cluster.Crash("a:1");
  EXPECT_FALSE(a->shutdown_ran_);
  EXPECT_EQ(a->state(), NodeState::kCrashed);
  cluster.Shutdown("b:1");
  EXPECT_TRUE(b->shutdown_ran_);
  EXPECT_EQ(b->state(), NodeState::kShutdown);
  EXPECT_FALSE(cluster.IsAlive("a:1"));
  EXPECT_FALSE(cluster.IsAlive("b:1"));
}

TEST(Cluster, DeadNodeTimersNeverFire) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  cluster.StartAll();
  int fired = 0;
  a->After(100, [&] { ++fired; });
  cluster.loop().Schedule(50, [&] { cluster.Crash("a:1"); });
  cluster.loop().RunToCompletion();
  EXPECT_EQ(fired, 0);
}

TEST(Cluster, EveryRepeatsUntilDeath) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  cluster.StartAll();
  int ticks = 0;
  a->Every(10, [&] { ++ticks; });
  cluster.loop().Schedule(55, [&] { cluster.Crash("a:1"); });
  cluster.loop().RunUntil(200);
  EXPECT_EQ(ticks, 5);
}

TEST(Cluster, UnhandledExceptionAbortsNodeAndLogsIt) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  auto* b = cluster.AddNode<EchoNode>("b:1");
  cluster.StartAll();
  a->Send("b:1", "boom");
  cluster.loop().RunToCompletion();
  EXPECT_TRUE(b->aborted());
  EXPECT_FALSE(cluster.IsAlive("b:1"));
  EXPECT_FALSE(cluster.cluster_down());  // b is not critical
  bool logged = false;
  for (const auto& instance : cluster.logs().instances()) {
    logged = logged || instance.text.find("Uncommon exception NullPointerException") == 0;
  }
  EXPECT_TRUE(logged);
}

class CriticalNode : public EchoNode {
 public:
  CriticalNode(Cluster* cluster, std::string id) : EchoNode(cluster, std::move(id)) {
    SetCritical();
  }
};

TEST(Cluster, CriticalNodeAbortTakesClusterDown) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  cluster.AddNode<CriticalNode>("master:1");
  cluster.StartAll();
  a->Send("master:1", "boom");
  cluster.loop().RunToCompletion();
  EXPECT_TRUE(cluster.cluster_down());
  EXPECT_NE(cluster.cluster_down_reason().find("master:1"), std::string::npos);
}

TEST(Cluster, NodeCrashedSignalSilentlyEndsHandler) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  auto* b = cluster.AddNode<EchoNode>("b:1");
  cluster.StartAll();
  a->Send("b:1", "crashsignal");
  cluster.loop().RunToCompletion();
  EXPECT_TRUE(b->mid_handler_);
  EXPECT_FALSE(b->aborted());  // not an exception, just a killed process
}

TEST(Cluster, CurrentNodeTracksExecutingHandler) {
  Cluster cluster(1);
  auto* a = cluster.AddNode<EchoNode>("a:1");
  cluster.AddNode<EchoNode>("b:1");
  cluster.StartAll();
  std::string observed;
  a->After(10, [&] { observed = cluster.current_node(); });
  cluster.loop().RunToCompletion();
  EXPECT_EQ(observed, "a:1");
  EXPECT_EQ(cluster.current_node(), "");
}

TEST(Cluster, DeferredNodesStartExplicitly) {
  Cluster cluster(1);
  auto* late = cluster.AddNode<EchoNode>("late:1");
  late->set_defer_start(true);
  cluster.StartAll();
  EXPECT_EQ(late->state(), NodeState::kStopped);
  cluster.StartNode("late:1");
  EXPECT_TRUE(late->IsRunning());
}

TEST(Cluster, ConfigHostsDeduplicates) {
  Cluster cluster(1);
  cluster.AddNode<EchoNode>("host1:10");
  cluster.AddNode<EchoNode>("host1:20");
  cluster.AddNode<EchoNode>("host2:10");
  EXPECT_EQ(cluster.config_hosts(), (std::vector<std::string>{"host1", "host2"}));
}

class MonitorNode : public Node {
 public:
  MonitorNode(Cluster* cluster, std::string id) : Node(cluster, std::move(id)) {
    fd_ = std::make_unique<FailureDetector>(this, 100, 20,
                                            [this](const std::string& n) { lost_.push_back(n); });
  }
  void StartFd() { fd_->Start(); }
  std::unique_ptr<FailureDetector> fd_;
  std::vector<std::string> lost_;
};

TEST(FailureDetector, DeclaresSilentNodesLostAfterTimeout) {
  Cluster cluster(1);
  auto* monitor = cluster.AddNode<MonitorNode>("m:1");
  cluster.StartAll();
  monitor->StartFd();
  monitor->fd_->Heartbeat("w:1");
  cluster.loop().RunUntil(80);
  EXPECT_TRUE(monitor->lost_.empty());  // within timeout
  cluster.loop().RunUntil(300);
  ASSERT_EQ(monitor->lost_.size(), 1u);
  EXPECT_EQ(monitor->lost_[0], "w:1");
  EXPECT_FALSE(monitor->fd_->IsTracked("w:1"));
}

TEST(FailureDetector, HeartbeatsKeepNodesAlive) {
  Cluster cluster(1);
  auto* monitor = cluster.AddNode<MonitorNode>("m:1");
  cluster.StartAll();
  monitor->StartFd();
  for (int t = 0; t <= 500; t += 50) {
    cluster.loop().Schedule(t, [monitor] { monitor->fd_->Heartbeat("w:1"); });
  }
  cluster.loop().RunUntil(520);
  EXPECT_TRUE(monitor->lost_.empty());
  EXPECT_TRUE(monitor->fd_->IsTracked("w:1"));
}

TEST(FailureDetector, NotifyLeftIsImmediate) {
  // The graceful-shutdown fast path: no timeout wait.
  Cluster cluster(1);
  auto* monitor = cluster.AddNode<MonitorNode>("m:1");
  cluster.StartAll();
  monitor->StartFd();
  monitor->fd_->Heartbeat("w:1");
  monitor->fd_->NotifyLeft("w:1");
  EXPECT_EQ(monitor->lost_, (std::vector<std::string>{"w:1"}));
}

TEST(FailureDetector, ForgetSuppressesCallback) {
  Cluster cluster(1);
  auto* monitor = cluster.AddNode<MonitorNode>("m:1");
  cluster.StartAll();
  monitor->StartFd();
  monitor->fd_->Heartbeat("w:1");
  monitor->fd_->Forget("w:1");
  cluster.loop().RunUntil(500);
  EXPECT_TRUE(monitor->lost_.empty());
}

}  // namespace
}  // namespace ctsim
