// Golden-report regression suite.
//
// A fixed-seed SystemReport for each of the five systems is pinned as a
// checked-in JSON snapshot for both context modes, and each mode is
// additionally run at jobs=1 and jobs=4: the two thread counts must
// serialize byte-identically (the campaign's determinism guarantee), and the
// jobs=1 serialization must match the snapshot field-for-field. Any
// behavioural drift in the pipeline — analysis, enumeration, injection,
// triage, trace hashing — shows up as a diff here before it can silently
// change the reproduction's numbers.
//
// Regenerate after an intentional change with:
//   CRASHTUNER_UPDATE_GOLDEN=1 ./build/tests/golden_report_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/crashtuner.h"
#include "src/core/report_writer.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctcore::ContextMode;
using ctcore::CrashTunerDriver;
using ctcore::DriverOptions;
using ctcore::SystemReport;

#ifndef CRASHTUNER_SOURCE_DIR
#error "tests/CMakeLists.txt must define CRASHTUNER_SOURCE_DIR"
#endif

std::string GoldenPath(const std::string& name) {
  return std::string(CRASHTUNER_SOURCE_DIR) + "/tests/golden/" + name + ".json";
}

// Serializes with the wall-clock fields zeroed — the only nondeterministic
// members by construction; everything else must be stable across runs,
// thread counts, and machines (the simulation runs in virtual time).
std::string Serialize(SystemReport report) {
  report.analysis_wall_seconds = 0;
  report.test_wall_seconds = 0;
  return ctcore::ReportToJson(report);
}

// Splits a serialized report at top-level commas for a field-by-field diff:
// on mismatch the failing field is named instead of two whole-line blobs.
std::vector<std::string> Fields(const std::string& json) {
  std::vector<std::string> fields;
  int nesting = 0;
  std::string current;
  for (char c : json) {
    if (c == '{' || c == '[') {
      ++nesting;
    } else if (c == '}' || c == ']') {
      --nesting;
    }
    if (c == ',' && nesting == 1) {
      fields.push_back(current);
      current.clear();
      continue;
    }
    current += c;
  }
  if (!current.empty()) {
    fields.push_back(current);
  }
  return fields;
}

void CheckAgainstGolden(const std::string& name, const std::string& serialized) {
  const std::string path = GoldenPath(name);
  if (std::getenv("CRASHTUNER_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << serialized << "\n";
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with CRASHTUNER_UPDATE_GOLDEN=1 to create it";
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string golden = buffer.str();
  while (!golden.empty() && (golden.back() == '\n' || golden.back() == '\r')) {
    golden.pop_back();
  }
  if (golden == serialized) {
    return;
  }
  std::vector<std::string> want = Fields(golden);
  std::vector<std::string> got = Fields(serialized);
  for (size_t i = 0; i < want.size() && i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << name << ": field " << i << " drifted";
  }
  EXPECT_EQ(got.size(), want.size()) << name << ": field count drifted";
  EXPECT_EQ(serialized, golden) << name;
}

SystemReport RunSystem(const ctcore::SystemUnderTest& system, ContextMode mode, int jobs,
                       ctcore::InjectionSelection selection) {
  DriverOptions options;
  options.context_mode = mode;
  options.jobs = jobs;
  options.injection_selection = selection;
  return CrashTunerDriver().Run(system, options);
}

void CheckSystem(const ctcore::SystemUnderTest& system, ContextMode mode,
                 const std::string& golden_name,
                 ctcore::InjectionSelection selection = ctcore::InjectionSelection::kExhaustive) {
  std::string seq = Serialize(RunSystem(system, mode, 1, selection));
  std::string par = Serialize(RunSystem(system, mode, 4, selection));
  EXPECT_EQ(seq, par) << golden_name << " differs between jobs=1 and jobs=4";
  CheckAgainstGolden(golden_name, seq);
}

TEST(GoldenReport, YarnProfiled) {
  CheckSystem(ctyarn::YarnSystem(), ContextMode::kProfiled, "yarn_profiled");
}
TEST(GoldenReport, YarnStaticOnly) {
  CheckSystem(ctyarn::YarnSystem(), ContextMode::kStaticOnly, "yarn_static_only");
}
TEST(GoldenReport, HdfsProfiled) {
  CheckSystem(cthdfs::HdfsSystem(), ContextMode::kProfiled, "hdfs_profiled");
}
TEST(GoldenReport, HdfsStaticOnly) {
  CheckSystem(cthdfs::HdfsSystem(), ContextMode::kStaticOnly, "hdfs_static_only");
}
TEST(GoldenReport, HBaseProfiled) {
  CheckSystem(cthbase::HBaseSystem(), ContextMode::kProfiled, "hbase_profiled");
}
TEST(GoldenReport, HBaseStaticOnly) {
  CheckSystem(cthbase::HBaseSystem(), ContextMode::kStaticOnly, "hbase_static_only");
}
TEST(GoldenReport, ZooKeeperProfiled) {
  CheckSystem(ctzk::ZkSystem(), ContextMode::kProfiled, "zookeeper_profiled");
}
TEST(GoldenReport, ZooKeeperStaticOnly) {
  CheckSystem(ctzk::ZkSystem(), ContextMode::kStaticOnly, "zookeeper_static_only");
}
TEST(GoldenReport, CassandraProfiled) {
  CheckSystem(ctcass::CassSystem(), ContextMode::kProfiled, "cassandra_profiled");
}
TEST(GoldenReport, CassandraStaticOnly) {
  CheckSystem(ctcass::CassSystem(), ContextMode::kStaticOnly, "cassandra_static_only");
}

// Representative campaigns: the static-only pipeline injecting one point per
// equivalence class. These goldens pin the partition itself (the report's
// equivalence section: class count and sizes) along with the bug set the
// reduced campaign must keep.
TEST(GoldenReport, YarnRepresentative) {
  CheckSystem(ctyarn::YarnSystem(), ContextMode::kStaticOnly, "yarn_representative",
              ctcore::InjectionSelection::kRepresentative);
}
TEST(GoldenReport, HdfsRepresentative) {
  CheckSystem(cthdfs::HdfsSystem(), ContextMode::kStaticOnly, "hdfs_representative",
              ctcore::InjectionSelection::kRepresentative);
}
TEST(GoldenReport, HBaseRepresentative) {
  CheckSystem(cthbase::HBaseSystem(), ContextMode::kStaticOnly, "hbase_representative",
              ctcore::InjectionSelection::kRepresentative);
}
TEST(GoldenReport, ZooKeeperRepresentative) {
  CheckSystem(ctzk::ZkSystem(), ContextMode::kStaticOnly, "zookeeper_representative",
              ctcore::InjectionSelection::kRepresentative);
}
TEST(GoldenReport, CassandraRepresentative) {
  CheckSystem(ctcass::CassSystem(), ContextMode::kStaticOnly, "cassandra_representative",
              ctcore::InjectionSelection::kRepresentative);
}

}  // namespace
