// Integration tests for mini-HDFS, mini-HBase, mini-ZooKeeper and
// mini-Cassandra: fault-free behaviour plus the full pipeline per system
// (Table 5 detection, the ZooKeeper negative result, the HBase hang and
// timeout, the unresolvable lower-layer ZNode point).
#include <gtest/gtest.h>

#include "src/core/crashtuner.h"
#include "src/core/executor.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctcore::CrashTunerDriver;
using ctcore::Executor;
using ctcore::SystemReport;

template <typename System>
const SystemReport& ReportOf() {
  static const SystemReport* report = [] {
    System system;
    return new SystemReport(CrashTunerDriver().Run(system));
  }();
  return *report;
}

bool FoundBug(const SystemReport& report, const std::string& id) {
  for (const auto& bug : report.bugs) {
    if (bug.bug_id == id) {
      return true;
    }
  }
  return false;
}

// --- HDFS ---------------------------------------------------------------------

TEST(Hdfs, FaultFreeRunCompletes) {
  cthdfs::HdfsSystem hdfs;
  auto run = hdfs.NewRun(2, 11);
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
  EXPECT_FALSE(outcome.failed);
  EXPECT_TRUE(Executor::ExceptionsIn(run->cluster().logs()).empty());
}

TEST(Hdfs, DetectsHdfs14216OnBothPaths) {
  const SystemReport& report = ReportOf<cthdfs::HdfsSystem>();
  ASSERT_TRUE(FoundBug(report, "HDFS-14216"));
  for (const auto& bug : report.bugs) {
    if (bug.bug_id == "HDFS-14216") {
      // Two call paths (block placement + block locations) share the issue.
      EXPECT_GE(bug.exposing_points.size(), 2u);
      EXPECT_EQ(bug.scenario, "pre-read");
    }
  }
}

TEST(Hdfs, DetectsHdfs14372ShutdownBeforeRegister) {
  EXPECT_TRUE(FoundBug(ReportOf<cthdfs::HdfsSystem>(), "HDFS-14372"));
}

TEST(Hdfs, ReportsExactlyTheTwoTable5Bugs) {
  EXPECT_EQ(ReportOf<cthdfs::HdfsSystem>().bugs.size(), 2u);
}

TEST(Hdfs, StandbyToleratesTornEditLog) {
  // §4.2.2's narrative: crash the active NameNode mid-edit-log-write; the
  // standby replays, hits the corrupt record, and *handles* it.
  cthdfs::HdfsSystem hdfs;
  auto run = hdfs.NewRun(2, 17);
  run->cluster().loop().Schedule(3700, [&] { run->cluster().Crash("namenode1:9000"); });
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished) << "failover should keep the job alive";
  bool handled = false;
  for (const auto& instance : run->cluster().logs().instances()) {
    handled = handled || instance.text.find("LogHeaderCorruptException") != std::string::npos;
  }
  // The torn-record path only triggers if the crash landed mid-write; the
  // failover itself must always complete.
  bool promoted = false;
  for (const auto& instance : run->cluster().logs().instances()) {
    promoted = promoted || instance.text.find("transitioned to active") != std::string::npos;
  }
  EXPECT_TRUE(promoted);
}

// --- HBase ---------------------------------------------------------------------

TEST(HBase, FaultFreeRunCompletes) {
  cthbase::HBaseSystem hbase;
  auto run = hbase.NewRun(3, 23);
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
  EXPECT_TRUE(Executor::ExceptionsIn(run->cluster().logs()).empty());
}

class HBaseTable5Bug : public ::testing::TestWithParam<const char*> {};
TEST_P(HBaseTable5Bug, Detected) {
  EXPECT_TRUE(FoundBug(ReportOf<cthbase::HBaseSystem>(), GetParam())) << GetParam();
}
INSTANTIATE_TEST_SUITE_P(Table5, HBaseTable5Bug,
                         ::testing::Values("HBASE-22041", "HBASE-22017", "HBASE-21740",
                                           "HBASE-22050", "HBASE-22023"));

TEST(HBase, Hbase22041IsAStartupHang) {
  const SystemReport& report = ReportOf<cthbase::HBaseSystem>();
  for (const auto& bug : report.bugs) {
    if (bug.bug_id == "HBASE-22041") {
      EXPECT_TRUE(bug.sample_outcome.hang) << "Fig. 9: retry-forever startup hang";
      EXPECT_EQ(bug.scenario, "post-write");
    }
  }
}

TEST(HBase, ReportsTheStuckRegionTimeout) {
  // §4.1.3: the region stuck in OPENING makes the run finish far beyond the
  // timeout threshold without being a hard failure.
  EXPECT_GE(ReportOf<cthbase::HBaseSystem>().timeout_issues.size(), 1u);
}

TEST(HBase, LowerLayerZnodeValueIsUnresolvable) {
  // §4.1.1: HBASE-7111/5722/5635 cannot be reproduced because the accessed
  // meta-info lives in the lower-layer ZooKeeper; the trigger finds no
  // target node for it.
  const SystemReport& report = ReportOf<cthbase::HBaseSystem>();
  bool saw_unresolvable_znode_read = false;
  for (const auto& injection : report.injections) {
    if (injection.location.find("ReplicationZKWatcher") != std::string::npos) {
      saw_unresolvable_znode_read = true;
      EXPECT_TRUE(injection.point_hit);
      EXPECT_FALSE(injection.injected);
    }
  }
  EXPECT_TRUE(saw_unresolvable_znode_read);
}

TEST(HBase, MetricsTypeClassifiedViaContainingClassRule) {
  const auto& metainfo = ReportOf<cthbase::HBaseSystem>().metainfo;
  ASSERT_TRUE(metainfo.IsMetaInfoType("hbase.regionserver.MetricsRegionServer"));
  EXPECT_EQ(metainfo.types.at("hbase.regionserver.MetricsRegionServer").derived_via,
            "containing-class");
}

// --- ZooKeeper: the negative result ---------------------------------------------

TEST(ZooKeeper, FaultFreeRunCompletes) {
  ctzk::ZkSystem zk;
  auto run = zk.NewRun(4, 31);
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
}

TEST(ZooKeeper, HasCrashPointsButFindsNoBugs) {
  const SystemReport& report = ReportOf<ctzk::ZkSystem>();
  EXPECT_GT(report.dynamic_crash_points, 2);
  EXPECT_TRUE(report.bugs.empty()) << "full replication tolerates single crashes (§4.1.2)";
}

TEST(ZooKeeper, MetaInfoSurfaceIsSmall) {
  // Table 10's ZooKeeper row: few types, few fields — node identity is an
  // Integer the inference refuses to generalize.
  const SystemReport& report = ReportOf<ctzk::ZkSystem>();
  EXPECT_LE(report.metainfo_types, 6);
  EXPECT_FALSE(report.metainfo.IsMetaInfoType("java.lang.Integer"));
}

TEST(ZooKeeper, LeaderCrashTriggersHandledRecovery) {
  ctzk::ZkSystem zk;
  auto run = zk.NewRun(4, 37);
  run->cluster().loop().Schedule(2600, [&] { run->cluster().Crash("zkpeer3:2888"); });
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished) << "the quorum survives a leader crash";
  bool recovered = false;
  for (const auto& instance : run->cluster().logs().instances()) {
    recovered = recovered || instance.text.find("Recovering from snapshot") != std::string::npos;
  }
  EXPECT_TRUE(recovered);
}

// --- Cassandra ------------------------------------------------------------------

TEST(Cassandra, FaultFreeRunCompletes) {
  ctcass::CassSystem cass;
  auto run = cass.NewRun(4, 41);
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
  EXPECT_TRUE(Executor::ExceptionsIn(run->cluster().logs()).empty());
}

TEST(Cassandra, DetectsCa15131) {
  const SystemReport& report = ReportOf<ctcass::CassSystem>();
  ASSERT_TRUE(FoundBug(report, "CA-15131"));
  EXPECT_EQ(report.bugs.size(), 1u);
}

TEST(Cassandra, SingleMetaInfoSeedType) {
  // Table 10's Cassandra row: one logged meta-info type.
  const SystemReport& report = ReportOf<ctcass::CassSystem>();
  EXPECT_EQ(report.log_result.seed_types.size(), 1u);
  EXPECT_TRUE(report.log_result.seed_types.count("cassandra.locator.InetAddressAndPort"));
}

TEST(Cassandra, SurvivesSingleNodeCrash) {
  ctcass::CassSystem cass;
  auto run = cass.NewRun(4, 43);
  run->cluster().loop().Schedule(2000, [&] { run->cluster().Crash("cass2:7000"); });
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
}

}  // namespace
