// Tests for the core pipeline: executor verdicts, profiler fixpoint, trigger
// mechanics, triage, the baselines, and the study database.
#include <gtest/gtest.h>

#include "src/core/baselines.h"
#include "src/core/crashtuner.h"
#include "src/core/executor.h"
#include "src/core/profiler.h"
#include "src/study/bug_study.h"
#include "src/systems/yarn/yarn_system.h"

namespace ctcore {
namespace {

TEST(RunOutcome, PrimarySymptomPriorities) {
  RunOutcome outcome;
  EXPECT_EQ(outcome.PrimarySymptom(), "ok");
  outcome.timeout_issue = true;
  EXPECT_EQ(outcome.PrimarySymptom(), "timeout");
  outcome.uncommon_exceptions.push_back("X");
  EXPECT_EQ(outcome.PrimarySymptom(), "uncommon exception");
  outcome.failed = true;
  EXPECT_EQ(outcome.PrimarySymptom(), "job failure");
  outcome.hang = true;
  EXPECT_EQ(outcome.PrimarySymptom(), "system hang");
  outcome.cluster_down = true;
  EXPECT_EQ(outcome.PrimarySymptom(), "cluster down");
}

TEST(RunOutcome, IsBugCoversThePaperOracle) {
  RunOutcome outcome;
  EXPECT_FALSE(outcome.IsBug());
  outcome.timeout_issue = true;
  EXPECT_FALSE(outcome.IsBug()) << "timeout issues are reported separately (§4.1.3)";
  outcome.uncommon_exceptions.push_back("X");
  EXPECT_TRUE(outcome.IsBug());
}

TEST(Executor, BaselineWhitelistsCommonExceptions) {
  OracleBaseline baseline;
  baseline.common_exception_types.insert("KnownException");
  ctyarn::YarnSystem yarn;
  auto run = yarn.NewRun(2, 51);
  RunOutcome outcome = Executor::Execute(*run, &baseline);
  EXPECT_TRUE(outcome.uncommon_exceptions.empty());
}

TEST(Profiler, ConvergesWithinThreeIterations) {
  ctyarn::YarnSystem yarn;
  const auto& model = yarn.model();
  std::set<int> all_points;
  for (const auto& point : model.access_points()) {
    if (point.executable) {
      all_points.insert(point.id);
    }
  }
  Profiler profiler;
  ProfileResult result = profiler.Profile(yarn, all_points, {}, 61);
  EXPECT_LE(result.iterations, Profiler::kMaxIterations);
  EXPECT_GE(result.iterations, 2);
  EXPECT_FALSE(result.dynamic_access_points.empty());
  EXPECT_GT(result.normal_duration_ms, 0u);
  EXPECT_FALSE(result.default_run_logs.empty());
}

TEST(Profiler, SyntheticPointsNeverBecomeDynamic) {
  ctyarn::YarnSystem yarn;
  const auto& model = yarn.model();
  std::set<int> synthetic;
  for (const auto& point : model.access_points()) {
    if (point.synthetic) {
      synthetic.insert(point.id);
    }
  }
  Profiler profiler;
  ProfileResult result = profiler.Profile(yarn, synthetic, {}, 62);
  EXPECT_TRUE(result.dynamic_access_points.empty());
}

TEST(Triage, UnknownFailuresGetNewPrefix) {
  ctyarn::YarnSystem yarn;
  std::vector<InjectionResult> injections(1);
  injections[0].injected = true;
  injections[0].location = "Nowhere.method:1";
  injections[0].outcome.failed = true;
  auto bugs = TriageBugs(yarn, injections);
  ASSERT_EQ(bugs.size(), 1u);
  EXPECT_EQ(bugs[0].bug_id, "NEW-Nowhere.method:1");
}

TEST(Triage, LocationAndExceptionSelectKnownBug) {
  ctyarn::YarnSystem yarn;
  std::vector<InjectionResult> injections(1);
  injections[0].injected = true;
  injections[0].location = "AbstractYarnScheduler.completeContainer:5";
  injections[0].kind = ctanalysis::CrashPointKind::kPreRead;
  injections[0].outcome.cluster_down = true;
  injections[0].outcome.uncommon_exceptions.push_back(
      "NullPointerException: completeContainer on removed node node1:42349");
  auto bugs = TriageBugs(yarn, injections);
  ASSERT_EQ(bugs.size(), 1u);
  EXPECT_EQ(bugs[0].bug_id, "YARN-9164");
  EXPECT_EQ(bugs[0].priority, "Critical");
}

TEST(Triage, DeduplicatesByIssue) {
  ctyarn::YarnSystem yarn;
  std::vector<InjectionResult> injections(2);
  for (auto& injection : injections) {
    injection.injected = true;
    injection.location = "AbstractYarnScheduler.completeContainer:5";
    injection.outcome.cluster_down = true;
    injection.outcome.uncommon_exceptions.push_back(
        "NullPointerException: completeContainer on removed node nodeX");
  }
  injections[1].point.stack_key = "different-context";
  auto bugs = TriageBugs(yarn, injections);
  ASSERT_EQ(bugs.size(), 1u);
  EXPECT_EQ(bugs[0].exposing_points.size(), 2u);
}

TEST(Triage, BenignInjectionsProduceNoBugs) {
  ctyarn::YarnSystem yarn;
  std::vector<InjectionResult> injections(3);
  for (auto& injection : injections) {
    injection.injected = true;
    injection.location = "X.y:1";
  }
  EXPECT_TRUE(TriageBugs(yarn, injections).empty());
}

TEST(RandomBaseline, RunsRequestedTrials) {
  ctyarn::YarnSystem yarn;
  RandomCrashInjector injector;
  BaselineReport report = injector.Run(yarn, 20, 71);
  EXPECT_EQ(report.trials, 20);
  EXPECT_GT(report.virtual_hours, 0.0);
  // 20 random trials in a ~28 s run rarely hit a window; bugs ⊆ failing.
  EXPECT_LE(report.bugs.size(), report.failing_trials.size());
}

TEST(IoBaseline, CountsIoSurface) {
  ctyarn::YarnSystem yarn;
  IoFaultInjector injector;
  BaselineReport report = injector.Run(yarn, 73);
  EXPECT_GT(report.io_classes, 0);
  EXPECT_GT(report.io_methods, 0);
  EXPECT_GT(report.static_io_points, 0);
  EXPECT_GT(report.dynamic_io_points, 0);
  // Two trials per dynamic point: before and after.
  EXPECT_EQ(report.trials, report.dynamic_io_points * 2);
}

TEST(IoBaseline, FindsOnlyYarn9201OnTrunk) {
  // §4.2.2: IO fault injection triggers YARN-9201 and nothing else, because
  // the real crash points are far from IO points and IO faults are handled.
  ctyarn::YarnSystem yarn;
  IoFaultInjector injector;
  BaselineReport report = injector.Run(yarn, 74);
  for (const auto& bug : report.bugs) {
    EXPECT_EQ(bug.bug_id, "YARN-9201") << bug.bug_id;
  }
  ASSERT_EQ(report.bugs.size(), 1u);
}

// --- Study database -------------------------------------------------------------

TEST(Study, CountsMatchThePaper) {
  ctstudy::StudySummary summary = ctstudy::Summarize();
  EXPECT_EQ(summary.total, 66);
  EXPECT_EQ(summary.timing_sensitive, 52);
  EXPECT_EQ(summary.non_timing_sensitive, 14);
  EXPECT_EQ(summary.pre_read, 37);
  EXPECT_EQ(summary.post_write, 15);
  EXPECT_EQ(summary.reproduced_by_paper, 59);
}

TEST(Study, PerSystemBreakdownMatchesTable1) {
  ctstudy::StudySummary summary = ctstudy::Summarize();
  EXPECT_EQ(summary.per_system.at("Hadoop2"), 17);
  EXPECT_EQ(summary.per_system.at("HDFS"), 7);
  EXPECT_EQ(summary.per_system.at("HBase"), 27);
  EXPECT_EQ(summary.per_system.at("ZooKeeper"), 1);
}

TEST(Study, HRegionServerDominatesHBase) {
  ctstudy::StudySummary summary = ctstudy::Summarize();
  EXPECT_EQ(summary.per_metainfo.at("HRegionServer"), 15);
}

TEST(Study, SevenBugsNotReproducedWithReasons) {
  int not_reproduced = 0;
  for (const auto& bug : ctstudy::StudiedBugs()) {
    if (!bug.reproduced_by_paper) {
      ++not_reproduced;
      EXPECT_FALSE(bug.not_reproduced_reason.empty()) << bug.id;
    }
  }
  EXPECT_EQ(not_reproduced, 7);
}

TEST(Study, FixComplexityMatchesTable6) {
  const auto& rows = ctstudy::FixComplexity();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].dataset, "CREB bugs");
  EXPECT_DOUBLE_EQ(rows[0].days_to_fix, 92.0);
  EXPECT_DOUBLE_EQ(rows[1].days_to_fix, 16.8);
  EXPECT_LT(rows[1].comments, rows[0].comments);
}

TEST(Study, KubernetesTableHas14Bugs) {
  const auto& bugs = ctstudy::KubernetesBugs();
  EXPECT_EQ(bugs.size(), 14u);
  int node = 0;
  for (const auto& bug : bugs) {
    node += bug.metainfo == "Node" ? 1 : 0;
  }
  EXPECT_EQ(node, 8);
}

}  // namespace
}  // namespace ctcore
