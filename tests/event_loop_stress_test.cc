// Stress and property tests for the ladder-queue/slab event loop.
//
// The scheduler rewrite (interned owners, slab-allocated event nodes, wheel +
// far-heap ordering, O(1) cancel) must be observationally identical to the
// original std::priority_queue loop. SpecLoop below is that original
// ordering *specification* — a (when, seq) min-heap with lazy cancellation —
// reduced to its semantics (tokens instead of closures). The differential
// test drives both through the same million-operation script of mixed
// Schedule / ScheduleAt / Cancel / RunUntil and requires identical execution
// sequences and identical live-event accounting at every checkpoint.
//
// Also covered: same-tick FIFO ordering, nested RunUntil reentrancy with
// scheduling and cancellation from inside handlers, dead-owner skips at
// scale, the zero-copy guarantee for scheduled closures (the old loop copied
// every event out of priority_queue::top()), and exact pending_events()
// accounting across cancels (the old loop counted tombstones as pending).
#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <set>
#include <string>
#include <vector>

namespace ctsim {
namespace {

// The original loop's ordering semantics, as a token machine: events execute
// in (when, seq) order, cancellation is by id and no-ops once the event has
// fired, RunUntil(limit) runs everything with when <= limit then parks the
// clock at limit.
class SpecLoop {
 public:
  int Schedule(Time delay, int token) { return ScheduleAt(now_ + delay, token); }

  int ScheduleAt(Time when, int token) {
    const int id = static_cast<int>(events_.size());
    events_.push_back({when, next_seq_++, token, false, false});
    heap_.push({when, events_.back().seq, id});
    ++live_;
    return id;
  }

  // Returns true if the cancel landed (event existed, unfired, uncancelled).
  bool Cancel(int id) {
    Ev& ev = events_[static_cast<size_t>(id)];
    if (ev.fired || ev.cancelled) {
      return false;
    }
    ev.cancelled = true;
    --live_;
    return true;
  }

  void RunUntil(Time limit, std::vector<int>* out) {
    Drain(limit, /*has_limit=*/true, out);
    now_ = std::max(now_, limit);
  }

  void RunToCompletion(std::vector<int>* out) { Drain(0, /*has_limit=*/false, out); }

  Time Now() const { return now_; }
  size_t live() const { return live_; }

 private:
  struct Ev {
    Time when;
    uint64_t seq;
    int token;
    bool cancelled;
    bool fired;
  };
  struct Entry {
    Time when;
    uint64_t seq;
    int id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void Drain(Time limit, bool has_limit, std::vector<int>* out) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      if (has_limit && top.when > limit) {
        return;
      }
      heap_.pop();
      Ev& ev = events_[static_cast<size_t>(top.id)];
      if (ev.cancelled) {
        continue;
      }
      now_ = std::max(now_, ev.when);
      ev.fired = true;
      --live_;
      out->push_back(ev.token);
    }
  }

  std::vector<Ev> events_;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_ = 0;
};

uint32_t NextRand(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<uint32_t>(*state >> 33);
}

// Delay distribution chosen to exercise every queue region: mostly inside
// the 4096ms wheel, a fat band beyond it (far heap + rebase churn), and a
// thin tail far enough out to survive many rebases.
Time RandomDelay(uint64_t* state) {
  const uint32_t pick = NextRand(state) % 100;
  if (pick < 60) {
    return NextRand(state) % 3000;
  }
  if (pick < 90) {
    return 3000 + NextRand(state) % 17000;
  }
  return 20000 + NextRand(state) % (1u << 20);
}

TEST(EventLoopStress, MillionEventDifferentialAgainstOrderingSpec) {
  constexpr int kOps = 1'300'000;  // ~80% schedules => >1M scheduled events
  constexpr int kCheckpointEvery = 50'000;

  EventLoop loop;
  SpecLoop spec;
  std::vector<int> loop_executed;
  std::vector<int> spec_executed;
  loop_executed.reserve(kOps);
  spec_executed.reserve(kOps);

  // Per scheduled token: the real loop's id (for cancels).
  std::vector<EventId> real_ids;
  real_ids.reserve(kOps);
  uint64_t rng = 0x0dd5eed0f00dull;

  int scheduled = 0;
  int cancels_landed = 0;
  for (int op = 0; op < kOps; ++op) {
    const uint32_t pick = NextRand(&rng) % 100;
    if (pick < 70 || real_ids.empty()) {
      const Time delay = RandomDelay(&rng);
      const int token = scheduled++;
      real_ids.push_back(loop.Schedule(delay, [&loop_executed, token] {
        loop_executed.push_back(token);
      }));
      spec.ScheduleAt(spec.Now() + delay, token);
    } else if (pick < 80) {
      const Time when = loop.Now() + RandomDelay(&rng);
      const int token = scheduled++;
      real_ids.push_back(loop.ScheduleAt(when, [&loop_executed, token] {
        loop_executed.push_back(token);
      }));
      spec.ScheduleAt(when, token);
    } else {
      // Cancel any earlier token — possibly already fired or already
      // cancelled; both machines must agree it is then a no-op.
      const int target = static_cast<int>(NextRand(&rng) % real_ids.size());
      loop.Cancel(real_ids[static_cast<size_t>(target)]);
      cancels_landed += spec.Cancel(target) ? 1 : 0;
    }
    if ((op + 1) % kCheckpointEvery == 0) {
      const Time limit = loop.Now() + 1 + NextRand(&rng) % 8000;
      loop.RunUntil(limit);
      spec.RunUntil(limit, &spec_executed);
      ASSERT_EQ(loop.Now(), spec.Now()) << "clock diverged at op " << op;
      ASSERT_EQ(loop_executed.size(), spec_executed.size()) << "at op " << op;
      ASSERT_EQ(loop.pending_events(), spec.live()) << "live accounting at op " << op;
    }
  }
  loop.RunToCompletion();
  spec.RunToCompletion(&spec_executed);

  ASSERT_GE(scheduled, 1'000'000) << "stress must push at least a million events";
  EXPECT_EQ(loop_executed, spec_executed);
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_EQ(loop.scheduled_events(), static_cast<uint64_t>(scheduled));
  EXPECT_EQ(loop.cancelled_events(), static_cast<uint64_t>(cancels_landed));
  EXPECT_EQ(loop.executed_events(), static_cast<uint64_t>(scheduled - cancels_landed));
  EXPECT_GE(loop.peak_pending_events(), loop_executed.size() / 100);
}

TEST(EventLoopStress, SameTickEventsFireInSchedulingOrder) {
  EventLoop loop;
  uint64_t rng = 0xf1f0ull;
  std::vector<int> executed;
  std::vector<std::vector<int>> expected_per_tick(64);
  int token = 0;
  for (int round = 0; round < 20000; ++round) {
    const Time tick = 100 + (NextRand(&rng) % 64) * 97;  // 64 distinct ticks
    const int id = token++;
    EventId handle = loop.ScheduleAt(tick, [&executed, id] { executed.push_back(id); });
    if (NextRand(&rng) % 4 == 0) {
      loop.Cancel(handle);
    } else {
      expected_per_tick[(tick - 100) / 97].push_back(id);
    }
  }
  loop.RunToCompletion();
  // Flatten expectations in tick order; within a tick, scheduling order.
  std::vector<int> expected;
  for (const auto& tick : expected_per_tick) {
    expected.insert(expected.end(), tick.begin(), tick.end());
  }
  EXPECT_EQ(executed, expected);
}

TEST(EventLoopStress, NestedRunUntilWithSchedulingAndCancellationInside) {
  EventLoop loop;
  std::vector<std::string> order;
  // Depth-3 nesting: each level schedules a child inside its own drained
  // window, an escapee beyond it, and cancels a decoy.
  std::function<void(int)> enter = [&](int depth) {
    order.push_back("enter" + std::to_string(depth));
    EventId decoy = loop.Schedule(5, [&order] { order.push_back("decoy"); });
    if (depth < 3) {
      loop.Schedule(10, [&, depth] { enter(depth + 1); });
    }
    loop.Schedule(150, [&order, depth] { order.push_back("escapee" + std::to_string(depth)); });
    loop.Cancel(decoy);
    loop.RunFor(100);  // drains the child chain, not the escapees
    order.push_back("exit" + std::to_string(depth));
  };
  loop.Schedule(10, [&] { enter(1); });
  loop.RunToCompletion();
  // Level d enters at t = 10d and schedules its escapee at 10d + 150, so
  // escapees fire in entry order once the whole nest has unwound.
  EXPECT_EQ(order, (std::vector<std::string>{
                       "enter1", "enter2", "enter3", "exit3", "exit2", "exit1",
                       "escapee1", "escapee2", "escapee3"}));
}

TEST(EventLoopStress, DeadOwnerSkipsAtScale) {
  InternTable names;
  EventLoop loop;
  std::set<uint32_t> dead;
  loop.SetOwnerAliveCheck([&dead](NodeId owner) { return dead.count(owner.id()) == 0; });

  constexpr int kOwners = 100;
  constexpr int kEventsPerOwner = 1000;
  std::vector<NodeId> owners;
  for (int i = 0; i < kOwners; ++i) {
    owners.push_back(names.Intern("node" + std::to_string(i)));
  }
  uint64_t executed_for_dead = 0;
  uint64_t executed_total = 0;
  for (int i = 0; i < kOwners; ++i) {
    for (int j = 0; j < kEventsPerOwner; ++j) {
      loop.Schedule(1000 + static_cast<Time>(j), [&, i] {
        ++executed_total;
        executed_for_dead += dead.count(owners[static_cast<size_t>(i)].id());
      }, owners[static_cast<size_t>(i)]);
    }
  }
  // Half the owners die before any of their events fire.
  loop.Schedule(500, [&] {
    for (int i = 0; i < kOwners; i += 2) {
      dead.insert(owners[static_cast<size_t>(i)].id());
    }
  });
  loop.RunToCompletion();
  EXPECT_EQ(executed_for_dead, 0u);
  EXPECT_EQ(executed_total, static_cast<uint64_t>(kOwners / 2 * kEventsPerOwner));
  EXPECT_EQ(loop.skipped_dead_owner_events(),
            static_cast<uint64_t>(kOwners / 2 * kEventsPerOwner));
}

// Counts copies of a payload captured in a scheduled closure. The old loop
// copied the whole Event (closure included) out of priority_queue::top() on
// every pop; the slab loop must never copy a closure after Schedule accepts
// it — not on insert, not on far-to-wheel migration, not on pop.
struct CopyProbe {
  static int copies;
  int tag = 0;
  CopyProbe() = default;
  explicit CopyProbe(int t) : tag(t) {}
  CopyProbe(const CopyProbe& other) : tag(other.tag) { ++copies; }
  CopyProbe& operator=(const CopyProbe& other) {
    tag = other.tag;
    ++copies;
    return *this;
  }
  CopyProbe(CopyProbe&& other) noexcept : tag(other.tag) {}
  CopyProbe& operator=(CopyProbe&& other) noexcept {
    tag = other.tag;
    return *this;
  }
};
int CopyProbe::copies = 0;

TEST(EventLoopStress, ScheduledClosuresAreNeverCopied) {
  EventLoop loop;
  CopyProbe::copies = 0;
  int fired = 0;
  for (int i = 0; i < 2000; ++i) {
    CopyProbe probe(i);
    // Near events stay in the wheel; far ones migrate far-heap -> wheel on
    // rebase — the migration moves slot indices, never nodes.
    const Time delay = (i % 2 == 0) ? static_cast<Time>(i % 1000)
                                    : static_cast<Time>(10000 + i * 7);
    std::function<void()> fn = [probe = std::move(probe), &fired] {
      fired += probe.tag >= 0 ? 1 : 0;
    };
    EventId id = loop.Schedule(delay, std::move(fn));
    if (i % 5 == 0) {
      loop.Cancel(id);  // cancel path releases the closure without copying
    }
  }
  loop.RunToCompletion();
  EXPECT_EQ(fired, 1600);
  EXPECT_EQ(CopyProbe::copies, 0)
      << "the scheduler copied a scheduled closure; the slab/ladder pop path "
         "must move, not copy";
}

TEST(EventLoopStress, PendingCountDropsAtCancelTimeAndStaleCancelsNoOp) {
  EventLoop loop;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(loop.Schedule(10 + static_cast<Time>(i), [] {}));
  }
  ASSERT_EQ(loop.pending_events(), 100u);

  // Live count drops the moment Cancel lands — not when the tombstone is
  // eventually popped (the old loop reported those as still pending).
  for (int i = 0; i < 40; ++i) {
    loop.Cancel(ids[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(loop.pending_events(), 60u);
  EXPECT_EQ(loop.cancelled_events(), 40u);

  // Double-cancel is a no-op.
  loop.Cancel(ids[0]);
  EXPECT_EQ(loop.pending_events(), 60u);
  EXPECT_EQ(loop.cancelled_events(), 40u);

  // Cancel after execution is a no-op: the slot's generation was bumped.
  loop.RunToCompletion();
  EXPECT_EQ(loop.pending_events(), 0u);
  loop.Cancel(ids[99]);
  EXPECT_EQ(loop.cancelled_events(), 40u);
  EXPECT_EQ(loop.executed_events(), 60u);

  // Slots recycle: a fresh schedule may reuse a slot, and the stale id for
  // that slot must still be a no-op against the new occupant.
  EventId fresh = loop.Schedule(5, [] {});
  for (EventId stale : ids) {
    loop.Cancel(stale);
  }
  EXPECT_EQ(loop.pending_events(), 1u);
  loop.Cancel(fresh);
  EXPECT_EQ(loop.pending_events(), 0u);
  loop.RunToCompletion();
  EXPECT_EQ(loop.executed_events(), 60u);
}

}  // namespace
}  // namespace ctsim
