// Unit tests for the observability subsystem (src/obs/): histogram bucket
// edges and merge algebra, shard/registry aggregation order, span recording
// against a real event loop, snapshot serialization (wall segregation), the
// Chrome-trace writer, and the JSON reader that closes the loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/observer.h"
#include "src/obs/snapshot.h"
#include "src/obs/span.h"
#include "src/sim/event_loop.h"

namespace {

using ctobs::Histogram;
using ctobs::MetricsShard;

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram histogram({10, 20, 50});
  histogram.Observe(0);    // below the first bound -> bucket 0
  histogram.Observe(10);   // exactly on a bound lands in that bound's bucket
  histogram.Observe(11);   // just past it -> next bucket
  histogram.Observe(20);   // bucket 1
  histogram.Observe(50);   // bucket 2
  histogram.Observe(51);   // past the last bound -> overflow bucket
  ASSERT_EQ(histogram.bucket_counts().size(), 4u);
  EXPECT_EQ(histogram.bucket_counts()[0], 2u);  // 0, 10
  EXPECT_EQ(histogram.bucket_counts()[1], 2u);  // 11, 20
  EXPECT_EQ(histogram.bucket_counts()[2], 1u);  // 50
  EXPECT_EQ(histogram.bucket_counts()[3], 1u);  // 51
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_EQ(histogram.sum(), 0u + 10 + 11 + 20 + 50 + 51);
  EXPECT_EQ(histogram.max(), 51u);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  Histogram histogram({100});
  for (int i = 0; i < 100; ++i) {
    histogram.Observe(50);
  }
  // All mass in bucket [0,100]: p50 interpolates half-way up the bucket.
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(Histogram({100}).Percentile(50), 0.0);  // empty -> 0
}

TEST(HistogramTest, OverflowBucketUpperEdgeIsObservedMax) {
  Histogram histogram({10});
  histogram.Observe(1000);
  // The single sample sits in the overflow bucket whose upper edge is the
  // observed max, so every percentile interpolates toward 1000, not infinity.
  EXPECT_LE(histogram.Percentile(99), 1000.0);
  EXPECT_GT(histogram.Percentile(99), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 1000.0);
}

Histogram MakeHistogram(std::initializer_list<uint64_t> samples) {
  Histogram histogram({5, 10, 100});
  for (uint64_t sample : samples) {
    histogram.Observe(sample);
  }
  return histogram;
}

void ExpectSame(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.max(), b.max());
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  const Histogram a = MakeHistogram({1, 7, 300});
  const Histogram b = MakeHistogram({5, 5, 11});
  const Histogram c = MakeHistogram({99});

  Histogram ab = a;
  ab.Merge(b);
  Histogram ab_c = ab;
  ab_c.Merge(c);

  Histogram bc = b;
  bc.Merge(c);
  Histogram a_bc = a;
  a_bc.Merge(bc);

  Histogram ba = b;
  ba.Merge(a);

  ExpectSame(ab_c, a_bc);  // associative
  ExpectSame(ab, ba);      // commutative
}

TEST(HistogramTest, FromPartsRoundTripsSerializedState) {
  const Histogram original = MakeHistogram({2, 9, 10, 5000});
  const Histogram rebuilt = Histogram::FromParts(original.bounds(), original.bucket_counts(),
                                                 original.sum(), original.max());
  ExpectSame(original, rebuilt);
  EXPECT_DOUBLE_EQ(original.Percentile(95), rebuilt.Percentile(95));
}

// ---------------------------------------------------------------------------
// Shards and the registry

TEST(MetricsShardTest, MergeAddsCountersAndKeepsGaugeMaxima) {
  MetricsShard a;
  a.Add("runs");
  a.Add("runs");
  a.SetGauge("nodes", 4);
  a.Observe("latency", 7);

  MetricsShard b;
  b.Add("runs", 3);
  b.SetGauge("nodes", 3);
  b.Observe("latency", 12);

  a.Merge(b);
  EXPECT_EQ(a.counter("runs"), 5u);
  EXPECT_EQ(a.gauges().at("nodes"), 4);  // max, not last-writer
  EXPECT_EQ(a.histograms().at("latency").count(), 2u);
  EXPECT_EQ(a.histograms().at("latency").sum(), 19u);
}

TEST(MetricsRegistryTest, AggregateIsIndependentOfInsertionOrder) {
  // Slots filled out of order (as a jobs=N pool would) must aggregate to the
  // same shard as in-order filling — the registry walks slots ascending.
  ctobs::MetricsRegistry scrambled;
  ctobs::MetricsRegistry ordered;
  for (int slot : {3, 0, 2, 1}) {
    scrambled.shard(slot).Add("slot.hits", static_cast<uint64_t>(slot + 1));
    scrambled.shard(slot).Observe("virtual_ms", static_cast<uint64_t>(100 * slot));
  }
  for (int slot : {0, 1, 2, 3}) {
    ordered.shard(slot).Add("slot.hits", static_cast<uint64_t>(slot + 1));
    ordered.shard(slot).Observe("virtual_ms", static_cast<uint64_t>(100 * slot));
  }
  const MetricsShard a = scrambled.Aggregate();
  const MetricsShard b = ordered.Aggregate();
  EXPECT_EQ(a.counter("slot.hits"), 10u);
  EXPECT_EQ(a.counters(), b.counters());
  ExpectSame(a.histograms().at("virtual_ms"), b.histograms().at("virtual_ms"));
}

// ---------------------------------------------------------------------------
// Spans

TEST(SpanTest, ScopedSpanRecordsBothClocksFromTheEventLoop) {
  ctsim::EventLoop loop;
  loop.Schedule(250, [] {});
  ctobs::RunObserver observer;
  observer.Enable();
  {
    ctobs::ScopedSpan span(&observer, &loop, "workload", "phase");
    span.AddArg("point", "p1");
    loop.RunToCompletion();  // advances virtual time to 250
  }
  ASSERT_EQ(observer.spans().events().size(), 1u);
  const ctobs::SpanEvent& event = observer.spans().events()[0];
  EXPECT_EQ(event.name, "workload");
  EXPECT_EQ(event.category, "phase");
  EXPECT_EQ(event.sim_begin_ms, 0u);
  EXPECT_EQ(event.sim_end_ms, 250u);
  EXPECT_EQ(event.sim_duration_ms(), 250u);
  EXPECT_GE(event.wall_end_ns, event.wall_begin_ns);
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].first, "point");
}

TEST(SpanTest, DisabledOrNullObserverRecordsNothing) {
  ctsim::EventLoop loop;
  ctobs::RunObserver disabled;
  {
    ctobs::ScopedSpan span(&disabled, &loop, "boot", "phase");
    ctobs::ScopedSpan null_span(nullptr, &loop, "boot", "phase");
    null_span.AddArg("k", "v");  // must be a safe no-op
  }
  EXPECT_TRUE(disabled.spans().empty());
  EXPECT_TRUE(disabled.metrics().empty());
}

// ---------------------------------------------------------------------------
// Campaign observer + snapshot + trace

TEST(CampaignObserverTest, FinalizeFoldsSpansIntoPhaseHistograms) {
  ctsim::EventLoop loop;
  loop.Schedule(40, [] {});
  ctobs::CampaignObserver campaign;
  campaign.set_system("TestSys");

  ctobs::RunObserver run;
  run.Enable();
  {
    ctobs::ScopedSpan span(&run, &loop, "boot", "phase");
    loop.RunToCompletion();
  }
  {
    ctobs::ScopedSpan span(&run, &loop, "inject:rm.register-node", "injection");
  }
  run.metrics().Add("run.count");
  campaign.AbsorbRun(0, run);

  const ctobs::SystemMetrics metrics = campaign.Finalize();
  EXPECT_EQ(metrics.system, "TestSys");
  EXPECT_EQ(metrics.runs, 1);
  EXPECT_EQ(metrics.metrics.histograms().at("phase.boot").count(), 1u);
  EXPECT_EQ(metrics.metrics.histograms().at("phase.boot").sum(), 40u);
  // Injection spans fold into the shared injection phase histogram plus a
  // per-span counter carrying the model's span name.
  EXPECT_EQ(metrics.metrics.histograms().at("phase.injection").count(), 1u);
  EXPECT_EQ(metrics.metrics.counters().at("span.inject:rm.register-node"), 1u);
}

TEST(SnapshotTest, WallSectionIsSegregatedFromDeterministicFields) {
  ctobs::CampaignObserver campaign;
  campaign.set_system("TestSys");
  campaign.set_jobs(4);
  campaign.set_campaign_wall_seconds(1.5);
  ctobs::RunObserver run;
  run.Enable();
  run.metrics().Add("run.count");
  campaign.AbsorbRun(0, run);

  ctobs::MetricsSnapshot snapshot;
  snapshot.systems.push_back(campaign.Finalize());

  const std::string with_wall = snapshot.ToJson(/*include_wall=*/true);
  const std::string without_wall = snapshot.ToJson(/*include_wall=*/false);
  EXPECT_NE(with_wall.find("\"wall\""), std::string::npos);
  EXPECT_NE(with_wall.find("\"jobs\":4"), std::string::npos);
  EXPECT_EQ(without_wall.find("\"wall\""), std::string::npos);
  EXPECT_EQ(without_wall.find("jobs"), std::string::npos);

  // Both serializations parse, and the deterministic fields agree.
  const ctobs::JsonValue parsed = ctobs::ParseJson(with_wall);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.Find("schema")->string_value, ctobs::kSnapshotSchema);
  const ctobs::JsonValue& system = parsed.Find("systems")->array_items.at(0);
  EXPECT_EQ(system.Find("system")->string_value, "TestSys");
  EXPECT_EQ(system.Find("runs")->number_value, 1.0);
  EXPECT_EQ(ctobs::ParseJson(without_wall).Find("systems")->array_items.size(), 1u);
}

TEST(ChromeTraceTest, TraceJsonParsesAndCarriesSpans) {
  ctsim::EventLoop loop;
  loop.Schedule(10, [] {});
  ctobs::CampaignObserver campaign;
  ctobs::RunObserver run;
  run.Enable();
  {
    ctobs::ScopedSpan span(&run, &loop, "workload", "phase");
    loop.RunToCompletion();
  }
  campaign.AbsorbRun(0, run);

  ctobs::ChromeTraceWriter writer;
  campaign.AppendChromeTrace(&writer, /*pid=*/1, "TestSys");
  const ctobs::JsonValue trace = ctobs::ParseJson(writer.ToJson());
  ASSERT_TRUE(trace.is_object());
  const ctobs::JsonValue* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool found_span = false;
  for (const ctobs::JsonValue& event : events->array_items) {
    const ctobs::JsonValue* ph = event.Find("ph");
    if (ph != nullptr && ph->string_value == "X" &&
        event.Find("name")->string_value == "workload") {
      found_span = true;
      EXPECT_EQ(event.Find("dur")->number_value, 10000.0);  // 10 ms in µs
    }
  }
  EXPECT_TRUE(found_span);
}

// ---------------------------------------------------------------------------
// JSON reader

TEST(JsonTest, ParsesScalarsContainersAndEscapes) {
  const ctobs::JsonValue value =
      ctobs::ParseJson("{\"a\":[1,2.5,-3],\"b\":\"x\\ny\",\"c\":true,\"d\":null}");
  ASSERT_TRUE(value.is_object());
  const ctobs::JsonValue* a = value.Find("a");
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->array_items[1].number_value, 2.5);
  EXPECT_EQ(a->array_items[2].number_value, -3.0);
  EXPECT_EQ(value.Find("b")->string_value, "x\ny");
  EXPECT_TRUE(value.Find("c")->bool_value);
  EXPECT_EQ(value.Find("d")->kind, ctobs::JsonValue::Kind::kNull);
  EXPECT_EQ(value.Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(ctobs::ParseJson("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(ctobs::ParseJson("[1,2"), std::runtime_error);
  EXPECT_THROW(ctobs::ParseJson("{} trailing"), std::runtime_error);
  EXPECT_THROW(ctobs::ParseJson(""), std::runtime_error);
}

}  // namespace
