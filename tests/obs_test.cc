// Unit tests for the observability subsystem (src/obs/): histogram bucket
// edges and merge algebra, shard/registry aggregation order, span recording
// against a real event loop, snapshot serialization (wall segregation), the
// Chrome-trace writer, and the JSON reader that closes the loop.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/observer.h"
#include "src/obs/snapshot.h"
#include "src/obs/span.h"
#include "src/sim/event_loop.h"

namespace {

using ctobs::Histogram;
using ctobs::MetricsShard;

// ---------------------------------------------------------------------------
// Histogram

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram histogram({10, 20, 50});
  histogram.Observe(0);    // below the first bound -> bucket 0
  histogram.Observe(10);   // exactly on a bound lands in that bound's bucket
  histogram.Observe(11);   // just past it -> next bucket
  histogram.Observe(20);   // bucket 1
  histogram.Observe(50);   // bucket 2
  histogram.Observe(51);   // past the last bound -> overflow bucket
  ASSERT_EQ(histogram.bucket_counts().size(), 4u);
  EXPECT_EQ(histogram.bucket_counts()[0], 2u);  // 0, 10
  EXPECT_EQ(histogram.bucket_counts()[1], 2u);  // 11, 20
  EXPECT_EQ(histogram.bucket_counts()[2], 1u);  // 50
  EXPECT_EQ(histogram.bucket_counts()[3], 1u);  // 51
  EXPECT_EQ(histogram.count(), 6u);
  EXPECT_EQ(histogram.sum(), 0u + 10 + 11 + 20 + 50 + 51);
  EXPECT_EQ(histogram.max(), 51u);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  Histogram histogram({100});
  for (int i = 0; i < 100; ++i) {
    histogram.Observe(50);
  }
  // All mass in bucket [0,100]: p50 interpolates half-way up the bucket.
  EXPECT_DOUBLE_EQ(histogram.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(Histogram({100}).Percentile(50), 0.0);  // empty -> 0
}

TEST(HistogramTest, OverflowBucketUpperEdgeIsObservedMax) {
  Histogram histogram({10});
  histogram.Observe(1000);
  // The single sample sits in the overflow bucket whose upper edge is the
  // observed max, so every percentile interpolates toward 1000, not infinity.
  EXPECT_LE(histogram.Percentile(99), 1000.0);
  EXPECT_GT(histogram.Percentile(99), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Percentile(100), 1000.0);
}

Histogram MakeHistogram(std::initializer_list<uint64_t> samples) {
  Histogram histogram({5, 10, 100});
  for (uint64_t sample : samples) {
    histogram.Observe(sample);
  }
  return histogram;
}

void ExpectSame(const Histogram& a, const Histogram& b) {
  EXPECT_EQ(a.bucket_counts(), b.bucket_counts());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.max(), b.max());
}

TEST(HistogramTest, MergeIsAssociativeAndCommutative) {
  const Histogram a = MakeHistogram({1, 7, 300});
  const Histogram b = MakeHistogram({5, 5, 11});
  const Histogram c = MakeHistogram({99});

  Histogram ab = a;
  ab.Merge(b);
  Histogram ab_c = ab;
  ab_c.Merge(c);

  Histogram bc = b;
  bc.Merge(c);
  Histogram a_bc = a;
  a_bc.Merge(bc);

  Histogram ba = b;
  ba.Merge(a);

  ExpectSame(ab_c, a_bc);  // associative
  ExpectSame(ab, ba);      // commutative
}

TEST(HistogramTest, FromPartsRoundTripsSerializedState) {
  const Histogram original = MakeHistogram({2, 9, 10, 5000});
  const Histogram rebuilt = Histogram::FromParts(original.bounds(), original.bucket_counts(),
                                                 original.sum(), original.max());
  ExpectSame(original, rebuilt);
  EXPECT_DOUBLE_EQ(original.Percentile(95), rebuilt.Percentile(95));
}

// ---------------------------------------------------------------------------
// Shards and the registry

TEST(MetricsShardTest, MergeAddsCountersAndKeepsGaugeMaxima) {
  MetricsShard a;
  a.Add("runs");
  a.Add("runs");
  a.SetGauge("nodes", 4);
  a.Observe("latency", 7);

  MetricsShard b;
  b.Add("runs", 3);
  b.SetGauge("nodes", 3);
  b.Observe("latency", 12);

  a.Merge(b);
  EXPECT_EQ(a.counter("runs"), 5u);
  EXPECT_EQ(a.gauges().at("nodes"), 4);  // max, not last-writer
  EXPECT_EQ(a.histograms().at("latency").count(), 2u);
  EXPECT_EQ(a.histograms().at("latency").sum(), 19u);
}

TEST(MetricsRegistryTest, AggregateIsIndependentOfInsertionOrder) {
  // Slots filled out of order (as a jobs=N pool would) must aggregate to the
  // same shard as in-order filling — the registry walks slots ascending.
  ctobs::MetricsRegistry scrambled;
  ctobs::MetricsRegistry ordered;
  for (int slot : {3, 0, 2, 1}) {
    scrambled.shard(slot).Add("slot.hits", static_cast<uint64_t>(slot + 1));
    scrambled.shard(slot).Observe("virtual_ms", static_cast<uint64_t>(100 * slot));
  }
  for (int slot : {0, 1, 2, 3}) {
    ordered.shard(slot).Add("slot.hits", static_cast<uint64_t>(slot + 1));
    ordered.shard(slot).Observe("virtual_ms", static_cast<uint64_t>(100 * slot));
  }
  const MetricsShard a = scrambled.Aggregate();
  const MetricsShard b = ordered.Aggregate();
  EXPECT_EQ(a.counter("slot.hits"), 10u);
  EXPECT_EQ(a.counters(), b.counters());
  ExpectSame(a.histograms().at("virtual_ms"), b.histograms().at("virtual_ms"));
}

// ---------------------------------------------------------------------------
// Spans

TEST(SpanTest, ScopedSpanRecordsBothClocksFromTheEventLoop) {
  ctsim::EventLoop loop;
  loop.Schedule(250, [] {});
  ctobs::RunObserver observer;
  observer.Enable();
  {
    ctobs::ScopedSpan span(&observer, &loop, "workload", "phase");
    span.AddArg("point", "p1");
    loop.RunToCompletion();  // advances virtual time to 250
  }
  ASSERT_EQ(observer.spans().events().size(), 1u);
  const ctobs::SpanEvent& event = observer.spans().events()[0];
  EXPECT_EQ(event.name, "workload");
  EXPECT_EQ(event.category, "phase");
  EXPECT_EQ(event.sim_begin_ms, 0u);
  EXPECT_EQ(event.sim_end_ms, 250u);
  EXPECT_EQ(event.sim_duration_ms(), 250u);
  EXPECT_GE(event.wall_end_ns, event.wall_begin_ns);
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].first, "point");
}

TEST(SpanTest, DisabledOrNullObserverRecordsNothing) {
  ctsim::EventLoop loop;
  ctobs::RunObserver disabled;
  {
    ctobs::ScopedSpan span(&disabled, &loop, "boot", "phase");
    ctobs::ScopedSpan null_span(nullptr, &loop, "boot", "phase");
    null_span.AddArg("k", "v");  // must be a safe no-op
  }
  EXPECT_TRUE(disabled.spans().empty());
  EXPECT_TRUE(disabled.metrics().empty());
}

TEST(SpanTest, NestedSpansGetSequentialIdsAndParents) {
  ctsim::EventLoop loop;
  ctobs::RunObserver observer;
  observer.Enable();
  {
    ctobs::ScopedSpan outer(&observer, &loop, "workload", "phase");
    EXPECT_EQ(outer.id(), 1u);
    EXPECT_EQ(observer.current_span_id(), 1u);
    {
      ctobs::ScopedSpan inner(&observer, &loop, "quorum-broadcast", "component",
                              "QuorumPeer");
      EXPECT_EQ(inner.id(), 2u);
      EXPECT_EQ(observer.current_span_id(), 2u);
    }
    EXPECT_EQ(observer.current_span_id(), 1u);
  }
  EXPECT_EQ(observer.current_span_id(), 0u);
  // Inner closes first, so it is recorded first.
  ASSERT_EQ(observer.spans().events().size(), 2u);
  const ctobs::SpanEvent& inner = observer.spans().events()[0];
  const ctobs::SpanEvent& outer = observer.spans().events()[1];
  EXPECT_EQ(inner.name, "quorum-broadcast");
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(inner.component, "QuorumPeer");
  EXPECT_EQ(outer.parent_id, 0u);
  // The path-keyed aggregate tree carries the hierarchy exactly, with the
  // parent path lexicographically before the child's.
  ASSERT_EQ(observer.span_tree().size(), 2u);
  EXPECT_EQ(observer.span_tree().count("workload"), 1u);
  EXPECT_EQ(observer.span_tree().count("workload/quorum-broadcast"), 1u);
  EXPECT_EQ(observer.span_tree().at("workload/quorum-broadcast").component, "QuorumPeer");
}

TEST(SpanTest, ComponentSpansPartitionVirtualTimeIntoDwell) {
  ctsim::EventLoop loop;
  ctobs::RunObserver observer;
  observer.Enable();
  loop.Schedule(100, [] {});
  loop.RunToCompletion();  // now = 100
  {
    // Opening a component span charges the time since the last mark (run
    // start) to this sweep: 100 ms.
    ctobs::ScopedSpan sweep(&observer, &loop, "gossip-round", "component", "Gossiper");
  }
  loop.Schedule(150, [] {});
  loop.RunToCompletion();  // now = 250
  {
    ctobs::ScopedSpan sweep(&observer, &loop, "gossip-round", "component", "Gossiper");
  }
  EXPECT_EQ(observer.metrics().counter("component.gossip-round.dwell_ms"), 250u);
  EXPECT_EQ(observer.metrics().counter("component.gossip-round.events"), 2u);
}

TEST(SpanTest, RawEventCapDropsButAggregatesStayExact) {
  ctsim::EventLoop loop;
  ctobs::RunObserver observer;
  observer.Enable();
  const size_t total = ctobs::SpanRecorder::kMaxEvents + 10;
  for (size_t i = 0; i < total; ++i) {
    ctobs::ScopedSpan span(&observer, &loop, "tick", "component", "Ticker");
  }
  EXPECT_EQ(observer.spans().events().size(), ctobs::SpanRecorder::kMaxEvents);
  EXPECT_EQ(observer.spans().dropped(), 10u);
  EXPECT_EQ(observer.span_tree().at("tick").count, total);
  EXPECT_EQ(observer.metrics().counter("component.tick.events"), total);
}

// ---------------------------------------------------------------------------
// Flow recorder

ctobs::FlowRecord MakeFlow(uint64_t id, uint64_t parent, uint64_t origin_span,
                           const std::string& method) {
  ctobs::FlowRecord record;
  record.id = id;
  record.parent = parent;
  record.origin_span = origin_span;
  record.method = method;
  record.from = "a";
  record.to = "b";
  return record;
}

TEST(FlowRecorderTest, TracksDepthRootsAndSpanResolution) {
  ctobs::FlowRecorder flows;
  flows.Record(MakeFlow(1, 0, 5, "gossip"));    // root, from span 5
  flows.Record(MakeFlow(2, 1, 5, "writeRow"));  // caused by delivery 1
  flows.Record(MakeFlow(3, 2, 0, "rowAck"));    // caused by delivery 2, no span
  flows.Record(MakeFlow(4, 0, 0, "gossip"));    // independent root
  EXPECT_EQ(flows.messages(), 4u);
  EXPECT_EQ(flows.roots(), 2u);
  EXPECT_EQ(flows.span_resolved(), 2u);
  EXPECT_EQ(flows.max_depth(), 3u);
  EXPECT_EQ(flows.DepthOf(1), 1u);
  EXPECT_EQ(flows.DepthOf(3), 3u);
  EXPECT_EQ(flows.DepthOf(99), 0u);
  EXPECT_EQ(flows.per_method().at("gossip"), 2u);
  EXPECT_EQ(flows.records().size(), 4u);
  EXPECT_TRUE(flows.records()[0].is_root());
  EXPECT_FALSE(flows.records()[1].is_root());
}

TEST(FlowRecorderTest, RecordCapDropsRawRecordsButCountsExactly) {
  ctobs::FlowRecorder flows;
  const uint64_t total = ctobs::FlowRecorder::kMaxRecords + 7;
  for (uint64_t i = 1; i <= total; ++i) {
    flows.Record(MakeFlow(i, i - 1, 0, "tick"));  // one long causal chain
  }
  EXPECT_EQ(flows.records().size(), ctobs::FlowRecorder::kMaxRecords);
  EXPECT_EQ(flows.dropped(), 7u);
  EXPECT_EQ(flows.messages(), total);
  EXPECT_EQ(flows.max_depth(), total);  // depth tracking continues past the cap
  EXPECT_EQ(flows.per_method().at("tick"), total);
}

// ---------------------------------------------------------------------------
// Dossiers

ctobs::Dossier MakeDossier() {
  ctobs::Dossier dossier;
  dossier.system = "ZooKeeper";
  dossier.slot = 12;
  dossier.seed = 0xdeadbeefcafef00dull;
  dossier.failed_invariant = "cluster down";
  ctobs::DossierPoint point;
  point.point_id = 7;
  point.call_string = "QuorumPeer.lead/Leader.waitForEpochAck";
  point.target_node = "zk2";
  point.mode = "crash";
  dossier.injected_points.push_back(point);
  dossier.recovery_phase_span = "leader-election";
  dossier.trace_hash_prefix = "8f00ba42";
  dossier.fault_plan = "link-faults=1 partition-epochs=0 timer-skew=0";
  dossier.workload = "create/get znodes x12";
  return dossier;
}

TEST(DossierTest, RoundTripsThroughJsonReader) {
  const ctobs::Dossier original = MakeDossier();
  const std::string json = original.ToJson();
  EXPECT_NE(json.find(ctobs::kDossierSchema), std::string::npos);
  const ctobs::Dossier parsed = ctobs::Dossier::FromJsonText(json);
  EXPECT_EQ(parsed.system, original.system);
  EXPECT_EQ(parsed.slot, original.slot);
  EXPECT_EQ(parsed.seed, original.seed);  // full uint64, via the string field
  EXPECT_EQ(parsed.failed_invariant, original.failed_invariant);
  ASSERT_EQ(parsed.injected_points.size(), 1u);
  EXPECT_EQ(parsed.injected_points[0].point_id, 7);
  EXPECT_EQ(parsed.injected_points[0].call_string, original.injected_points[0].call_string);
  EXPECT_EQ(parsed.injected_points[0].mode, "crash");
  EXPECT_EQ(parsed.recovery_phase_span, original.recovery_phase_span);
  EXPECT_EQ(parsed.trace_hash_prefix, original.trace_hash_prefix);
  EXPECT_EQ(parsed.ToJson(), json);  // byte-stable round trip
}

TEST(DossierTest, RejectsWrongSchemaAndMissingFields) {
  std::string json = MakeDossier().ToJson();
  const std::string mangled = [&] {
    std::string copy = json;
    const size_t at = copy.find(ctobs::kDossierSchema);
    copy.replace(at, std::string(ctobs::kDossierSchema).size(), "crashtuner-dossier-v0");
    return copy;
  }();
  EXPECT_THROW(ctobs::Dossier::FromJsonText(mangled), std::runtime_error);
  EXPECT_THROW(ctobs::Dossier::FromJsonText("{\"schema\":\"crashtuner-dossier-v1\"}"),
               std::runtime_error);
  EXPECT_THROW(ctobs::Dossier::FromJsonText("not json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Campaign observer + snapshot + trace

TEST(CampaignObserverTest, FinalizeFoldsSpansIntoPhaseHistograms) {
  ctsim::EventLoop loop;
  loop.Schedule(40, [] {});
  ctobs::CampaignObserver campaign;
  campaign.set_system("TestSys");

  ctobs::RunObserver run;
  run.Enable();
  {
    ctobs::ScopedSpan span(&run, &loop, "boot", "phase");
    loop.RunToCompletion();
  }
  {
    ctobs::ScopedSpan span(&run, &loop, "inject:rm.register-node", "injection");
  }
  run.metrics().Add("run.count");
  campaign.AbsorbRun(0, run);

  const ctobs::SystemMetrics metrics = campaign.Finalize();
  EXPECT_EQ(metrics.system, "TestSys");
  EXPECT_EQ(metrics.runs, 1);
  EXPECT_EQ(metrics.metrics.histograms().at("phase.boot").count(), 1u);
  EXPECT_EQ(metrics.metrics.histograms().at("phase.boot").sum(), 40u);
  // Injection spans fold into the shared injection phase histogram plus a
  // per-span counter carrying the model's span name.
  EXPECT_EQ(metrics.metrics.histograms().at("phase.injection").count(), 1u);
  EXPECT_EQ(metrics.metrics.counters().at("span.inject:rm.register-node"), 1u);
}

TEST(SnapshotTest, WallSectionIsSegregatedFromDeterministicFields) {
  ctobs::CampaignObserver campaign;
  campaign.set_system("TestSys");
  campaign.set_jobs(4);
  campaign.set_campaign_wall_seconds(1.5);
  ctobs::RunObserver run;
  run.Enable();
  run.metrics().Add("run.count");
  campaign.AbsorbRun(0, run);

  ctobs::MetricsSnapshot snapshot;
  snapshot.systems.push_back(campaign.Finalize());

  const std::string with_wall = snapshot.ToJson(/*include_wall=*/true);
  const std::string without_wall = snapshot.ToJson(/*include_wall=*/false);
  EXPECT_NE(with_wall.find("\"wall\""), std::string::npos);
  EXPECT_NE(with_wall.find("\"jobs\":4"), std::string::npos);
  EXPECT_EQ(without_wall.find("\"wall\""), std::string::npos);
  EXPECT_EQ(without_wall.find("jobs"), std::string::npos);

  // Both serializations parse, and the deterministic fields agree.
  const ctobs::JsonValue parsed = ctobs::ParseJson(with_wall);
  ASSERT_TRUE(parsed.is_object());
  EXPECT_EQ(parsed.Find("schema")->string_value, ctobs::kSnapshotSchema);
  const ctobs::JsonValue& system = parsed.Find("systems")->array_items.at(0);
  EXPECT_EQ(system.Find("system")->string_value, "TestSys");
  EXPECT_EQ(system.Find("runs")->number_value, 1.0);
  EXPECT_EQ(ctobs::ParseJson(without_wall).Find("systems")->array_items.size(), 1u);
}

TEST(ChromeTraceTest, TraceJsonParsesAndCarriesSpans) {
  ctsim::EventLoop loop;
  loop.Schedule(10, [] {});
  ctobs::CampaignObserver campaign;
  ctobs::RunObserver run;
  run.Enable();
  {
    ctobs::ScopedSpan span(&run, &loop, "workload", "phase");
    loop.RunToCompletion();
  }
  campaign.AbsorbRun(0, run);

  ctobs::ChromeTraceWriter writer;
  campaign.AppendChromeTrace(&writer, /*pid=*/1, "TestSys");
  const ctobs::JsonValue trace = ctobs::ParseJson(writer.ToJson());
  ASSERT_TRUE(trace.is_object());
  const ctobs::JsonValue* events = trace.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool found_span = false;
  for (const ctobs::JsonValue& event : events->array_items) {
    const ctobs::JsonValue* ph = event.Find("ph");
    if (ph != nullptr && ph->string_value == "X" &&
        event.Find("name")->string_value == "workload") {
      found_span = true;
      EXPECT_EQ(event.Find("dur")->number_value, 10000.0);  // 10 ms in µs
    }
  }
  EXPECT_TRUE(found_span);
}

TEST(SnapshotTest, V2CarriesSpanTreeAndFlowsInDeterministicSection) {
  ctsim::EventLoop loop;
  loop.Schedule(30, [] {});
  ctobs::CampaignObserver campaign;
  campaign.set_system("TestSys");
  ctobs::RunObserver run;
  run.Enable();
  {
    ctobs::ScopedSpan outer(&run, &loop, "workload", "phase");
    ctobs::ScopedSpan inner(&run, &loop, "gossip-round", "component", "Gossiper");
    loop.RunToCompletion();
  }
  run.flows().Record(MakeFlow(1, 0, 1, "gossip"));
  run.flows().Record(MakeFlow(2, 1, 2, "gossip"));
  campaign.AbsorbRun(0, run);

  const ctobs::SystemMetrics metrics = campaign.Finalize();
  ASSERT_EQ(metrics.span_tree.size(), 2u);
  EXPECT_EQ(metrics.span_tree[0].path, "workload");
  EXPECT_EQ(metrics.span_tree[0].parent, -1);
  EXPECT_EQ(metrics.span_tree[1].path, "workload/gossip-round");
  EXPECT_EQ(metrics.span_tree[1].parent, 0);  // index of "workload"
  EXPECT_EQ(metrics.span_tree[1].component, "Gossiper");
  EXPECT_EQ(metrics.flows.messages, 2u);
  EXPECT_EQ(metrics.flows.roots, 1u);
  EXPECT_EQ(metrics.flows.max_depth, 2u);

  ctobs::MetricsSnapshot snapshot;
  snapshot.systems.push_back(metrics);
  // Both sections live in the deterministic half: present without wall.
  const std::string without_wall = snapshot.ToJson(/*include_wall=*/false);
  const ctobs::JsonValue parsed = ctobs::ParseJson(without_wall);
  EXPECT_EQ(parsed.Find("schema")->string_value, ctobs::kSnapshotSchema);
  const ctobs::JsonValue& system = parsed.Find("systems")->array_items.at(0);
  const ctobs::JsonValue* span_tree = system.Find("span_tree");
  ASSERT_NE(span_tree, nullptr);
  ASSERT_EQ(span_tree->array_items.size(), 2u);
  EXPECT_EQ(span_tree->array_items[1].Find("parent")->number_value, 0.0);
  const ctobs::JsonValue* flows = system.Find("flows");
  ASSERT_NE(flows, nullptr);
  EXPECT_EQ(flows->Find("messages")->number_value, 2.0);
  EXPECT_EQ(flows->Find("per_method")->Find("gossip")->number_value, 2.0);
}

TEST(ChromeTraceTest, FlowArrowsLinkParentAndChildDeliveries) {
  ctobs::CampaignObserver campaign;
  ctobs::RunObserver run;
  run.Enable();
  ctobs::FlowRecord parent = MakeFlow(1, 0, 0, "gossip");
  parent.sim_ms = 10;
  ctobs::FlowRecord child = MakeFlow(2, 1, 0, "writeRow");
  child.sim_ms = 25;
  run.flows().Record(parent);
  run.flows().Record(child);
  campaign.AbsorbRun(3, run);

  ctobs::ChromeTraceWriter writer;
  campaign.AppendChromeTrace(&writer, /*pid=*/1, "TestSys");
  const ctobs::JsonValue trace = ctobs::ParseJson(writer.ToJson());
  double start_id = -1;
  double finish_id = -2;
  for (const ctobs::JsonValue& event : trace.Find("traceEvents")->array_items) {
    const ctobs::JsonValue* ph = event.Find("ph");
    if (ph == nullptr) {
      continue;
    }
    if (ph->string_value == "s") {
      start_id = event.Find("id")->number_value;
      EXPECT_EQ(event.Find("ts")->number_value, 10000.0);  // parent delivery
    } else if (ph->string_value == "f") {
      finish_id = event.Find("id")->number_value;
      EXPECT_EQ(event.Find("ts")->number_value, 25000.0);  // child delivery
      EXPECT_EQ(event.Find("bp")->string_value, "e");
    }
  }
  // Exactly one arrow, its two halves sharing one flow id.
  EXPECT_GE(start_id, 0.0);
  EXPECT_EQ(start_id, finish_id);
}

// ---------------------------------------------------------------------------
// JSON reader

TEST(JsonTest, ParsesScalarsContainersAndEscapes) {
  const ctobs::JsonValue value =
      ctobs::ParseJson("{\"a\":[1,2.5,-3],\"b\":\"x\\ny\",\"c\":true,\"d\":null}");
  ASSERT_TRUE(value.is_object());
  const ctobs::JsonValue* a = value.Find("a");
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->array_items[1].number_value, 2.5);
  EXPECT_EQ(a->array_items[2].number_value, -3.0);
  EXPECT_EQ(value.Find("b")->string_value, "x\ny");
  EXPECT_TRUE(value.Find("c")->bool_value);
  EXPECT_EQ(value.Find("d")->kind, ctobs::JsonValue::Kind::kNull);
  EXPECT_EQ(value.Find("missing"), nullptr);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(ctobs::ParseJson("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(ctobs::ParseJson("[1,2"), std::runtime_error);
  EXPECT_THROW(ctobs::ParseJson("{} trailing"), std::runtime_error);
  EXPECT_THROW(ctobs::ParseJson(""), std::runtime_error);
}

}  // namespace
