// Differential suite: the static pipeline against the profiled oracle.
//
// Reproduction pipelines silently drift from the paper's behaviour without
// differential ground truth, so every system is pinned both ways:
//   - call strings: the static-only enumeration (with per-call-string
//     feasibility pruning on) must contain every profiler-observed string —
//     100% recall, pruning may only remove strings the workload never shows;
//   - pair sets: every multi-crash pair enumerable from the profiled point
//     set must be enumerable from the static point set (uncapped — a capped
//     comparison could pass vacuously);
//   - the static-only pipeline must run zero instrumented (profiling)
//     workloads while doing so;
//   - model-declared multi-crash pairs must name crash points the static
//     pipeline actually arms.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/analysis/call_graph.h"
#include "src/analysis/context_enumeration.h"
#include "src/core/crashtuner.h"
#include "src/core/multi_crash.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctcore::ContextMode;
using ctcore::CrashTunerDriver;
using ctcore::DriverOptions;
using ctcore::PairSetCrossCheck;
using ctcore::SystemReport;

struct Differential {
  SystemReport profiled;
  SystemReport static_only;
};

Differential RunBoth(const ctcore::SystemUnderTest& system) {
  CrashTunerDriver driver;
  Differential diff;
  diff.profiled = driver.Run(system);
  DriverOptions options;
  options.context_mode = ContextMode::kStaticOnly;
  options.prune_infeasible_contexts = true;
  diff.static_only = driver.Run(system, options);
  return diff;
}

void ExpectDifferentialInvariants(const ctcore::SystemUnderTest& system) {
  SCOPED_TRACE(system.name());
  Differential diff = RunBoth(system);

  // Zero profiling workloads in static-only mode.
  EXPECT_EQ(diff.static_only.profile.instrumented_runs, 0);
  EXPECT_GT(diff.profiled.profile.instrumented_runs, 0);

  // Call-string recall: static-only ⊇ profiled, with pruning on.
  const auto& static_points = diff.static_only.profile.dynamic_access_points;
  for (const auto& observed : diff.profiled.profile.dynamic_access_points) {
    EXPECT_EQ(static_points.count(observed), 1u)
        << "profiled point p" << observed.point_id << " key=[" << observed.stack_key
        << "] pruned or never enumerated";
  }

  // Per-call-string pruning never removes a profiler-observed string:
  // enumerate pruned and unpruned directly and check the removed strings
  // against the observed set.
  ctanalysis::CallGraph graph(system.model());
  ctanalysis::ContextEnumeration enumeration(&graph);
  const int depth = ctrt::CallStack::kMaxDepth;
  ctanalysis::StaticContextResult unpruned = enumeration.EnumerateAll(depth);
  ctanalysis::StaticContextResult pruned =
      enumeration.EnumerateAll(depth, /*prune_infeasible=*/true);
  for (const auto& observed : diff.profiled.profile.dynamic_access_points) {
    if (unpruned.Contains(observed.point_id, observed.stack_key)) {
      EXPECT_TRUE(pruned.Contains(observed.point_id, observed.stack_key))
          << "pruning removed observed string p" << observed.point_id << " ["
          << observed.stack_key << "]";
    }
  }
  EXPECT_GE(unpruned.TotalContexts(), pruned.TotalContexts());
  EXPECT_EQ(unpruned.TotalContexts() - pruned.TotalContexts(), pruned.pruned_call_strings);

  // Pair-set recall over the uncapped quadratic sets.
  PairSetCrossCheck pairs = ctcore::ComparePairSets(
      diff.profiled.profile.dynamic_access_points, static_points);
  EXPECT_DOUBLE_EQ(pairs.Recall(), 1.0) << pairs.missed.size() << " profiled pairs missed";
  EXPECT_TRUE(pairs.missed.empty());
  EXPECT_GE(pairs.enumerated, pairs.profiled);
  EXPECT_GT(pairs.Precision(), 0.0);

  // Model-declared multi-crash pairs: if both endpoints survived crash-point
  // analysis, both must be armable from the static point set.
  std::set<int> crash_ids;
  for (int id : diff.static_only.crash_points.PointIds()) {
    crash_ids.insert(id);
  }
  std::set<int> static_ids;
  for (const auto& point : static_points) {
    static_ids.insert(point.point_id);
  }
  for (const auto& pair : system.model().multi_crash_pairs()) {
    if (crash_ids.count(pair.first_point) > 0 && crash_ids.count(pair.second_point) > 0) {
      EXPECT_EQ(static_ids.count(pair.first_point), 1u)
          << "declared pair first point " << pair.first_point << " not statically armable";
      EXPECT_EQ(static_ids.count(pair.second_point), 1u)
          << "declared pair second point " << pair.second_point << " not statically armable";
    }
  }
}

TEST(StaticDifferential, Yarn) { ExpectDifferentialInvariants(ctyarn::YarnSystem()); }

TEST(StaticDifferential, Hdfs) { ExpectDifferentialInvariants(cthdfs::HdfsSystem()); }

TEST(StaticDifferential, HBase) { ExpectDifferentialInvariants(cthbase::HBaseSystem()); }

TEST(StaticDifferential, ZooKeeper) { ExpectDifferentialInvariants(ctzk::ZkSystem()); }

TEST(StaticDifferential, Cassandra) { ExpectDifferentialInvariants(ctcass::CassSystem()); }

// The static pair candidates are exactly what MultiCrashTester::TestPairs
// walks: the shared enumerator keeps the profiled and static campaigns on
// one deterministic order, and the capped list is a prefix of the uncapped.
TEST(StaticDifferential, PairEnumeratorIsSharedAndPrefixStable) {
  DriverOptions options;
  options.context_mode = ContextMode::kStaticOnly;
  SystemReport report = CrashTunerDriver().Run(ctzk::ZkSystem(), options);
  const auto& points = report.profile.dynamic_access_points;
  auto uncapped = ctcore::EnumerateCrashPairs(points, -1);
  const long long n = static_cast<long long>(points.size());
  EXPECT_EQ(static_cast<long long>(uncapped.size()), n * (n - 1) / 2);
  // The ordered walk is the pre-dedupe space: exactly both orders of every
  // unordered pair.
  auto ordered = ctcore::EnumerateOrderedCrashPairs(points, -1);
  EXPECT_EQ(static_cast<long long>(ordered.size()), n * (n - 1));
  std::set<ctcore::CrashPairCandidate> unordered_set;
  for (const auto& pair : ordered) {
    unordered_set.insert(pair.second < pair.first ? ctcore::CrashPairCandidate{pair.second,
                                                                               pair.first}
                                                  : pair);
  }
  EXPECT_EQ(unordered_set.size(), uncapped.size());
  auto capped = ctcore::EnumerateCrashPairs(points, 5);
  ASSERT_LE(capped.size(), 5u);
  for (size_t i = 0; i < capped.size(); ++i) {
    EXPECT_TRUE(capped[i] == uncapped[i]) << "cap changed the walk order at " << i;
  }
  EXPECT_TRUE(ctcore::EnumerateCrashPairs(points, 0).empty());
}

}  // namespace
