// Property: representative injection loses no bugs.
//
// For every shipped system, the representative campaign (one injection per
// static equivalence class) must triage exactly the bug-id set of the
// exhaustive campaign — in both context modes. This is the soundness claim
// behind BENCH_representative.json's 100% recall column, asserted as a test
// so a key refinement that silently over-merges classes fails CI rather than
// only denting a bench number.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/crashtuner.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctcore::ContextMode;
using ctcore::CrashTunerDriver;
using ctcore::DriverOptions;
using ctcore::InjectionSelection;
using ctcore::SystemReport;

std::set<std::string> BugIds(const SystemReport& report) {
  std::set<std::string> ids;
  for (const auto& bug : report.bugs) {
    ids.insert(bug.bug_id);
  }
  return ids;
}

void ExpectEqualRecall(const ctcore::SystemUnderTest& system, ContextMode mode) {
  SCOPED_TRACE(system.name());
  CrashTunerDriver driver;
  DriverOptions options;
  options.context_mode = mode;
  SystemReport exhaustive = driver.Run(system, options);
  options.injection_selection = InjectionSelection::kRepresentative;
  SystemReport representative = driver.Run(system, options);

  EXPECT_EQ(BugIds(representative), BugIds(exhaustive));
  EXPECT_TRUE(representative.equivalence.active);
  EXPECT_LE(representative.equivalence.classes, representative.equivalence.members);
  EXPECT_EQ(static_cast<int>(representative.injections.size()),
            representative.equivalence.classes);
  // Exhaustive stays exhaustive: no partition is applied or reported there.
  EXPECT_FALSE(exhaustive.equivalence.active);
  EXPECT_EQ(static_cast<int>(exhaustive.injections.size()),
            static_cast<int>(exhaustive.profile.dynamic_access_points.size()));
}

class RepresentativeRecall : public ::testing::TestWithParam<ContextMode> {};

TEST_P(RepresentativeRecall, Yarn) { ExpectEqualRecall(ctyarn::YarnSystem(), GetParam()); }
TEST_P(RepresentativeRecall, Hdfs) { ExpectEqualRecall(cthdfs::HdfsSystem(), GetParam()); }
TEST_P(RepresentativeRecall, HBase) { ExpectEqualRecall(cthbase::HBaseSystem(), GetParam()); }
TEST_P(RepresentativeRecall, ZooKeeper) { ExpectEqualRecall(ctzk::ZkSystem(), GetParam()); }
TEST_P(RepresentativeRecall, Cassandra) { ExpectEqualRecall(ctcass::CassSystem(), GetParam()); }

INSTANTIATE_TEST_SUITE_P(BothContextModes, RepresentativeRecall,
                         ::testing::Values(ContextMode::kStaticOnly, ContextMode::kProfiled),
                         [](const ::testing::TestParamInfo<ContextMode>& info) {
                           return info.param == ContextMode::kStaticOnly ? "StaticOnly"
                                                                         : "Profiled";
                         });

}  // namespace
