// Property tests for deterministic network-fault injection.
//
// Run-level: 25 seeded random fault plans are applied to each of the five
// systems; the same ⟨seed, plan⟩ must produce the same event trace hash on a
// second run (the determinism contract of fault_plan.h).
//
// Driver-level: a network-fault campaign recorded at jobs=1 replays at
// jobs=4 with a byte-identical SystemReport, the replayed campaign includes
// the system's declared message-race bug, and replaying a truncated or
// corrupted trace fails loudly with ctsim::TraceDivergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/crashtuner.h"
#include "src/core/executor.h"
#include "src/core/report_writer.h"
#include "src/sim/cluster.h"
#include "src/sim/fault_plan.h"
#include "src/sim/trace.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctcore::CrashTunerDriver;
using ctcore::DriverOptions;
using ctcore::SystemReport;
using ctsim::FaultPlan;

std::vector<std::unique_ptr<ctcore::SystemUnderTest>> AllSystems() {
  std::vector<std::unique_ptr<ctcore::SystemUnderTest>> systems;
  systems.push_back(std::make_unique<ctyarn::YarnSystem>());
  systems.push_back(std::make_unique<cthdfs::HdfsSystem>());
  systems.push_back(std::make_unique<cthbase::HBaseSystem>());
  systems.push_back(std::make_unique<ctzk::ZkSystem>());
  systems.push_back(std::make_unique<ctcass::CassSystem>());
  return systems;
}

// A random plan drawn from one Rng stream. The partition/skew victims are
// kept as indices — node ids differ per system — and materialized against
// the run's node list. Half the partitions are one-way and half the plans
// carry a timer-skewed node, so the determinism sweep covers both extended
// directives.
struct PlannedFaults {
  FaultPlan plan;
  uint64_t victim_index = 0;
  bool has_partition = false;
  bool one_way = false;
  uint64_t partition_start = 0;
  uint64_t partition_len = 0;
  bool has_skew = false;
  uint64_t skew_index = 0;
  int skew_permille = 1000;
};

PlannedFaults DrawPlan(ctcommon::Rng& rng) {
  PlannedFaults drawn;
  drawn.plan.default_link.drop_probability = static_cast<double>(rng.Uniform(0, 20)) / 100.0;
  drawn.plan.default_link.extra_delay_ms = rng.Uniform(0, 3);
  drawn.plan.default_link.duplicate_probability = static_cast<double>(rng.Uniform(0, 20)) / 100.0;
  drawn.plan.default_link.reorder_window_ms = rng.Uniform(0, 5);
  drawn.has_partition = rng.Chance(0.5);
  if (drawn.has_partition) {
    drawn.partition_start = rng.Uniform(0, 2000);
    drawn.partition_len = rng.Uniform(200, 3000);
    drawn.victim_index = rng.Uniform(0, 1 << 16);  // reduced per run
    drawn.one_way = rng.Chance(0.5);
  }
  drawn.has_skew = rng.Chance(0.5);
  if (drawn.has_skew) {
    drawn.skew_index = rng.Uniform(0, 1 << 16);
    drawn.skew_permille = static_cast<int>(rng.Uniform(500, 2500));
  }
  return drawn;
}

// One traced run of `system` under `drawn`; returns the trace hash.
uint64_t TracedRun(const ctcore::SystemUnderTest& system, const PlannedFaults& drawn,
                   uint64_t seed) {
  auto run = system.NewRun(system.default_workload_size(), seed);
  ctsim::Cluster& cluster = run->cluster();
  ctsim::TraceRecorder recorder;
  cluster.set_trace_recorder(&recorder);
  FaultPlan plan = drawn.plan;
  std::vector<std::string> eligible;
  for (ctsim::Node* node : cluster.nodes()) {
    if (!node->workload_driver()) {
      eligible.push_back(node->id());
    }
  }
  if (drawn.has_partition) {
    ctsim::PartitionDirective directive;
    directive.start_ms = drawn.partition_start;
    directive.heal_ms = drawn.partition_start + drawn.partition_len;
    directive.group = {eligible[drawn.victim_index % eligible.size()]};
    directive.one_way = drawn.one_way;
    plan.partitions.push_back(directive);
  }
  if (drawn.has_skew) {
    plan.timer_skew_permille[eligible[drawn.skew_index % eligible.size()]] = drawn.skew_permille;
  }
  cluster.InstallFaultPlan(plan);
  ctcore::Executor::Execute(*run, /*baseline=*/nullptr);
  return recorder.trace().Hash();
}

TEST(FaultPlanProperty, SameSeedAndPlanYieldTheSameTraceHash) {
  ctcommon::Rng rng(0xfa17);
  std::vector<PlannedFaults> plans;
  for (int i = 0; i < 25; ++i) {
    plans.push_back(DrawPlan(rng));
  }
  for (const auto& system : AllSystems()) {
    for (size_t p = 0; p < plans.size(); ++p) {
      const uint64_t seed = 4242 + 31ull * p;
      uint64_t first = TracedRun(*system, plans[p], seed);
      uint64_t second = TracedRun(*system, plans[p], seed);
      EXPECT_EQ(first, second)
          << system->name() << " plan#" << p << " diverged on an identical ⟨seed, plan⟩";
    }
  }
}

std::string Serialize(SystemReport report) {
  report.analysis_wall_seconds = 0;
  report.test_wall_seconds = 0;
  return ctcore::ReportToJson(report);
}

TEST(FaultPlanProperty, RecordedCampaignReplaysByteIdentically) {
  for (const auto& system : AllSystems()) {
    ctcore::TraceStore recorded;
    DriverOptions record;
    record.injection_mode = ctcore::InjectionMode::kNetworkFault;
    record.jobs = 1;
    record.record_traces = &recorded;
    SystemReport original = CrashTunerDriver().Run(*system, record);
    ASSERT_GT(recorded.size(), 0u) << system->name();

    DriverOptions replay;
    replay.injection_mode = ctcore::InjectionMode::kNetworkFault;
    replay.jobs = 4;
    replay.replay_traces = &recorded;
    SystemReport replayed = CrashTunerDriver().Run(*system, replay);

    EXPECT_EQ(Serialize(original), Serialize(replayed))
        << system->name() << ": replayed report differs from the recording";
    EXPECT_EQ(original.trace_hash, replayed.trace_hash);

    // The guided campaign must reproduce the system's declared race.
    bool found_race = false;
    for (const auto& bug : replayed.bugs) {
      found_race = found_race || bug.scenario == "message-race";
    }
    EXPECT_TRUE(found_race) << system->name()
                            << ": network-fault campaign found no message-race bug";
  }
}

TEST(FaultPlanProperty, TruncatedOrCorruptedTraceFailsLoudly) {
  ctzk::ZkSystem system;
  ctcore::TraceStore recorded;
  DriverOptions record;
  record.injection_mode = ctcore::InjectionMode::kNetworkFault;
  record.record_traces = &recorded;
  CrashTunerDriver().Run(system, record);
  ASSERT_GT(recorded.size(), 0u);

  // Truncation: the replay runs past the end of the recording.
  {
    ctcore::TraceStore truncated;
    for (const auto& [slot, trace] : recorded.traces()) {
      ctsim::Trace copy = trace;
      copy.Truncate(copy.size() / 2);
      truncated.Put(slot, copy);
    }
    DriverOptions replay;
    replay.injection_mode = ctcore::InjectionMode::kNetworkFault;
    replay.replay_traces = &truncated;
    EXPECT_THROW(CrashTunerDriver().Run(system, replay), ctsim::TraceDivergence);
  }

  // Corruption: the first event's detail no longer matches.
  {
    ctcore::TraceStore corrupted;
    for (const auto& [slot, trace] : recorded.traces()) {
      ctsim::Trace copy = trace;
      if (!copy.empty()) {
        copy.mutable_events()->front().detail += "-corrupted";
      }
      corrupted.Put(slot, copy);
    }
    DriverOptions replay;
    replay.injection_mode = ctcore::InjectionMode::kNetworkFault;
    replay.replay_traces = &corrupted;
    EXPECT_THROW(CrashTunerDriver().Run(system, replay), ctsim::TraceDivergence);
  }

  // A missing slot is as loud as a mismatching one.
  {
    ctcore::TraceStore empty;
    DriverOptions replay;
    replay.injection_mode = ctcore::InjectionMode::kNetworkFault;
    replay.replay_traces = &empty;
    EXPECT_THROW(CrashTunerDriver().Run(system, replay), ctsim::TraceDivergence);
  }
}

}  // namespace
