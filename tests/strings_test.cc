// Unit and property tests for the string utilities, with emphasis on the
// brace-template machinery log analysis depends on.
#include "src/common/strings.h"

#include <gtest/gtest.h>

#include "src/common/interner.h"
#include "src/common/rng.h"

namespace ctcommon {
namespace {

TEST(Split, KeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitSkipEmpty, DropsEmptyPieces) {
  EXPECT_EQ(SplitSkipEmpty("a,,b,", ','), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(SplitSkipEmpty(",,,", ',').empty());
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> pieces{"x", "yy", "zzz"};
  EXPECT_EQ(Split(Join(pieces, "|"), '|'), pieces);
}

TEST(Contains, Basics) {
  EXPECT_TRUE(Contains("NodeManager from host", "from"));
  EXPECT_FALSE(Contains("abc", "abcd"));
  EXPECT_TRUE(Contains("abc", ""));
}

TEST(ToLower, Ascii) { EXPECT_EQ(ToLower("GetScheNode"), "getschenode"); }

TEST(ReplaceAll, Basics) {
  EXPECT_EQ(ReplaceAll("a{}b{}", "{}", "(.*)"), "a(.*)b(.*)");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
}

TEST(FormatBraces, SubstitutesInOrder) {
  EXPECT_EQ(FormatBraces("Assigned container {} on host {}", {"c_1", "node1:42349"}),
            "Assigned container c_1 on host node1:42349");
}

TEST(FormatBraces, SurplusPlaceholdersKept) {
  EXPECT_EQ(FormatBraces("a {} b {}", {"x"}), "a x b {}");
}

TEST(FormatBraces, SurplusArgsIgnored) { EXPECT_EQ(FormatBraces("a {}", {"x", "y"}), "a x"); }

TEST(CountPlaceholders, Counts) {
  EXPECT_EQ(CountPlaceholders("no holes"), 0);
  EXPECT_EQ(CountPlaceholders("{}{}{}"), 3);
  EXPECT_EQ(CountPlaceholders("a {} b {} c"), 2);
}

TEST(TemplateFragments, SplitsAroundPlaceholders) {
  EXPECT_EQ(TemplateFragments("a {} b {} c"), (std::vector<std::string>{"a ", " b ", " c"}));
  EXPECT_EQ(TemplateFragments("{} tail"), (std::vector<std::string>{"", " tail"}));
  EXPECT_EQ(TemplateFragments("head {}"), (std::vector<std::string>{"head ", ""}));
}

TEST(MatchTemplate, RecoversValues) {
  std::vector<std::string> values;
  ASSERT_TRUE(MatchTemplate("NodeManager from {} registered as {}",
                            "NodeManager from node3 registered as node3:42349", &values));
  EXPECT_EQ(values, (std::vector<std::string>{"node3", "node3:42349"}));
}

TEST(MatchTemplate, RejectsDifferentLiteral) {
  std::vector<std::string> values;
  EXPECT_FALSE(MatchTemplate("Assigned container {} on host {}",
                             "Assigned block b1 on host node1", &values));
}

TEST(MatchTemplate, TrailingPlaceholderIsGreedy) {
  std::vector<std::string> values;
  // A final placeholder absorbs the rest of the line (log payloads may
  // contain spaces); a literal *after* the placeholder must still anchor.
  ASSERT_TRUE(MatchTemplate("done {}", "done x extra stuff", &values));
  EXPECT_EQ(values[0], "x extra stuff");
  EXPECT_FALSE(MatchTemplate("done {} end", "done x", &values));
}

TEST(MatchTemplate, FinalLiteralAnchorsAtEnd) {
  std::vector<std::string> values;
  ASSERT_TRUE(MatchTemplate("JVM with ID: {} given task: {}",
                            "JVM with ID: jvm_1_m_4 given task: attempt_1_m_4_0", &values));
  EXPECT_EQ(values[0], "jvm_1_m_4");
  EXPECT_EQ(values[1], "attempt_1_m_4_0");
}

TEST(MatchTemplate, EmptyTemplateMatchesEmpty) {
  std::vector<std::string> values;
  EXPECT_TRUE(MatchTemplate("", "", &values));
  EXPECT_FALSE(MatchTemplate("", "x", &values));
}

// Property: FormatBraces followed by MatchTemplate recovers the arguments for
// templates whose literals do not appear inside values.
class FormatMatchRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(FormatMatchRoundTrip, RoundTrips) {
  Rng rng(GetParam());
  static const char* kTemplates[] = {
      "Assigned container {} on host {}",
      "NodeManager from {} registered as {}",
      "JVM with ID: {} given task: {}",
      "Submitted application {}",
      "Region {} assigned to {}",
      "Block pool {} on datanode {} registered",
  };
  const std::string tmpl = kTemplates[rng.Index(std::size(kTemplates))];
  int n = CountPlaceholders(tmpl);
  std::vector<std::string> args;
  for (int i = 0; i < n; ++i) {
    args.push_back("v" + std::to_string(rng.Uniform(0, 999)) + "_" + std::to_string(i));
  }
  std::string instance = FormatBraces(tmpl, args);
  std::vector<std::string> recovered;
  ASSERT_TRUE(MatchTemplate(tmpl, instance, &recovered)) << instance;
  EXPECT_EQ(recovered, args) << instance;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatMatchRoundTrip, ::testing::Range(1, 41));

TEST(ToString, Basics) {
  EXPECT_EQ(ToString(std::string("s")), "s");
  EXPECT_EQ(ToString(42), "42");
  EXPECT_EQ(ToString(static_cast<uint64_t>(7)), "7");
}

TEST(InternTable, InternIsIdempotentAndIdsAreDense) {
  InternTable table;
  const Symbol a = table.Intern("alpha");
  const Symbol b = table.Intern("beta");
  EXPECT_EQ(table.Intern("alpha").id(), a.id());
  EXPECT_NE(a.id(), b.id());
  // Id 0 is the empty string, always present.
  EXPECT_EQ(table.Intern("").id(), 0u);
  EXPECT_TRUE(table.Intern("").empty());
  EXPECT_EQ(table.size(), 3u);
}

TEST(InternTable, FindDoesNotCreate) {
  InternTable table;
  EXPECT_TRUE(table.Find("missing").empty());
  EXPECT_EQ(table.size(), 1u);  // only ""
  table.Intern("present");
  EXPECT_EQ(table.Find("present").str(), "present");
}

TEST(InternTable, SymbolsSurviveTableGrowth) {
  InternTable table;
  const Symbol first = table.Intern("first");
  const std::string* address = &first.str();
  for (int i = 0; i < 10000; ++i) {
    table.Intern("filler" + std::to_string(i));
  }
  // Storage is address-stable: the symbol's text never reallocates.
  EXPECT_EQ(&first.str(), address);
  EXPECT_EQ(table.At(first.id()).str(), "first");
}

TEST(Symbol, ComparesByIdButOrdersByText) {
  InternTable table;
  const Symbol z = table.Intern("zebra");  // lower id
  const Symbol a = table.Intern("ant");    // higher id
  EXPECT_TRUE(z == z);
  EXPECT_TRUE(z != a);
  EXPECT_TRUE(a < z);  // lexicographic, not id order
  EXPECT_TRUE(z == "zebra");
  EXPECT_TRUE(z == std::string("zebra"));
  EXPECT_EQ(z + "!", "zebra!");
  EXPECT_EQ("<" + std::string(z), "<zebra");
  EXPECT_EQ(SymbolIdHash{}(a), a.id());
}

}  // namespace
}  // namespace ctcommon
