// Tests for the logging substrate: statement registry, log store, Logstash
// agent filtering, and the custom stash of Fig. 6.
#include <gtest/gtest.h>

#include "src/logging/log_store.h"
#include "src/logging/stash.h"
#include "src/logging/statement.h"

namespace ctlog {
namespace {

TEST(StatementRegistry, RegistrationIsIdempotent) {
  auto& registry = StatementRegistry::Instance();
  int a = registry.Register(Level::kInfo, "unit test stmt {}", "Here.there");
  int b = registry.Register(Level::kInfo, "unit test stmt {}", "Here.there");
  EXPECT_EQ(a, b);
  int c = registry.Register(Level::kWarn, "unit test stmt {}", "Here.there");
  EXPECT_NE(a, c);  // level participates in identity
}

TEST(StatementRegistry, CountsPlaceholders) {
  auto& registry = StatementRegistry::Instance();
  int id = registry.Register(Level::kInfo, "x {} y {} z {}", "T.m");
  EXPECT_EQ(registry.Get(id).num_args, 3);
}

TEST(LogStore, AppendAndQuery) {
  LogStore store;
  Logger logger(&store, "node1:42349", [] { return 123u; });
  logger.Info("hello {}", {"world"});
  logger.Error("bad {}", {"thing"});
  ASSERT_EQ(store.instances().size(), 2u);
  EXPECT_EQ(store.instances()[0].text, "hello world");
  EXPECT_EQ(store.instances()[0].time_ms, 123u);
  EXPECT_EQ(store.instances()[0].node, "node1:42349");
  EXPECT_EQ(store.AtLeast(Level::kError).size(), 1u);
  EXPECT_EQ(store.ForNode("node1:42349").size(), 2u);
  EXPECT_TRUE(store.ForNode("other").empty());
}

TEST(LogStore, SubscribersSeeEachInstance) {
  LogStore store;
  int seen = 0;
  store.Subscribe([&](const Instance&) { ++seen; });
  Logger logger(&store, "n", [] { return 0u; });
  logger.Info("a");
  logger.Info("b");
  EXPECT_EQ(seen, 2);
}

TEST(OnlineFilter, RecognizesNodeValues) {
  OnlineFilter filter;
  filter.hosts = {"node1", "node2"};
  EXPECT_TRUE(filter.IsNodeValue("node1:42349"));
  EXPECT_TRUE(filter.IsNodeValue("node1"));
  EXPECT_FALSE(filter.IsNodeValue("node3:42349"));
  EXPECT_FALSE(filter.IsNodeValue("node1:notaport"));
  EXPECT_FALSE(filter.IsNodeValue("container_1_2_3"));
  EXPECT_FALSE(filter.IsNodeValue("node1:"));
}

OnlineFilter TwoHostFilter() {
  OnlineFilter filter;
  filter.hosts = {"node3", "node4"};
  return filter;
}

// The running example of Fig. 5(c)/Fig. 6.
TEST(CustomStash, BuildsFig6Structures) {
  CustomStash stash(TwoHostFilter());
  stash.Process({"node3", "node3:42349"});
  stash.Process({"node4", "node4:42349"});
  stash.Process({"container_3", "node3:42349"});
  stash.Process({"attempt_3", "container_3"});
  stash.Process({"container_4", "node4:42349"});
  stash.Process({"attempt_4", "container_4"});
  stash.Process({"jvm_m_4", "attempt_4"});

  EXPECT_EQ(stash.nodes().size(), 4u);  // bare hosts + host:port forms
  EXPECT_EQ(stash.Lookup("container_3").value(), "node3:42349");
  EXPECT_EQ(stash.Lookup("attempt_3").value(), "node3:42349");
  EXPECT_EQ(stash.Lookup("attempt_4").value(), "node4:42349");
  EXPECT_EQ(stash.Lookup("jvm_m_4").value(), "node4:42349");
}

TEST(CustomStash, NodeValuesResolveToThemselves) {
  CustomStash stash(TwoHostFilter());
  // Identity resolution needs no prior log line: "host:port" self-identifies.
  EXPECT_EQ(stash.Lookup("node3:42349").value(), "node3:42349");
  EXPECT_FALSE(stash.Lookup("node9:1").has_value());
}

TEST(CustomStash, UnassociatedValuesAreDiscarded) {
  CustomStash stash(TwoHostFilter());
  stash.Process({"container_9", "attempt_9"});  // neither resolves to a node
  EXPECT_FALSE(stash.Lookup("container_9").has_value());
  EXPECT_TRUE(stash.value_to_node().empty());
}

TEST(CustomStash, FifoOrderMatters) {
  // Unlike the offline analysis, the stash is single-pass: a value whose
  // association arrives later stays unresolved at its first mention.
  CustomStash stash(TwoHostFilter());
  stash.Process({"attempt_1", "container_1"});  // too early: discarded
  stash.Process({"container_1", "node3:42349"});
  EXPECT_TRUE(stash.Lookup("container_1").has_value());
  EXPECT_FALSE(stash.Lookup("attempt_1").has_value());
}

TEST(CustomStash, ReassociatesOnNewAnchor) {
  // A recovered component re-registering on another node re-anchors its
  // values (the attempt_2-on-node2 case).
  CustomStash stash(TwoHostFilter());
  stash.Process({"app_1", "node3:42349"});
  EXPECT_EQ(stash.Lookup("app_1").value(), "node3:42349");
  stash.Process({"app_1", "node4:42349"});
  EXPECT_EQ(stash.Lookup("app_1").value(), "node4:42349");
}

TEST(LogstashAgent, ForwardsOnlyFilteredArgsOfOwnNode) {
  OnlineFilter filter = TwoHostFilter();
  int stmt = StatementRegistry::Instance().Register(ctlog::Level::kInfo,
                                                    "Assigned thing {} on host {}", "T.assign");
  filter.metainfo_args[stmt] = {0, 1};
  CustomStash stash(filter);
  LogstashAgent agent("node3:42349", &stash);

  LogStore store;
  store.Subscribe([&](const Instance& instance) { agent.OnInstance(instance); });
  Logger mine(&store, "node3:42349", [] { return 0u; });
  Logger other(&store, "node4:42349", [] { return 0u; });

  mine.Log(stmt, {"thing_1", "node3:42349"});
  other.Log(stmt, {"thing_2", "node4:42349"});  // different node: ignored
  mine.Info("unfiltered {}", {"thing_3"});      // statement not in filter

  EXPECT_EQ(agent.forwarded_value_count(), 2);
  EXPECT_EQ(stash.Lookup("thing_1").value(), "node3:42349");
  EXPECT_FALSE(stash.Lookup("thing_2").has_value());
  EXPECT_FALSE(stash.Lookup("thing_3").has_value());
}

}  // namespace
}  // namespace ctlog
