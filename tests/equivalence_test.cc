// Static equivalence-class partitioning (src/analysis/equivalence.h).
//
// Covers the canonicalization algebra (loop-index normalization and
// context-suffix truncation), the unordered symmetry of pair class keys, the
// determinism and structure of partitions over real dynamic point sets, the
// driver's representative and validation injection modes, and the model
// linter's equivalent-crash-point-duplicate check on a synthetic model with
// dead declarations.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/equivalence.h"
#include "src/analysis/model_lint.h"
#include "src/core/crashtuner.h"
#include "src/core/multi_crash.h"
#include "src/core/report_writer.h"
#include "src/model/program_model.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctanalysis::EquivalenceAnalysis;
using ctanalysis::EquivalencePartition;
using ctcore::ContextMode;
using ctcore::CrashTunerDriver;
using ctcore::DriverOptions;
using ctcore::InjectionSelection;
using ctcore::SystemReport;
using ctrt::DynamicPoint;

// --- Canonicalization algebra ----------------------------------------------

TEST(Canonicalization, TrailingDigitsCollapseToHash) {
  EXPECT_EQ(EquivalenceAnalysis::CanonicalFrame("Scheduler.nodeUpdate17"),
            "Scheduler.nodeUpdate#");
  EXPECT_EQ(EquivalenceAnalysis::CanonicalFrame("Scheduler.nodeUpdate"),
            "Scheduler.nodeUpdate");
  // Digits-only frames stay untouched: there is no stem to normalize onto.
  EXPECT_EQ(EquivalenceAnalysis::CanonicalFrame("123"), "123");
  EXPECT_EQ(EquivalenceAnalysis::CanonicalFrame(""), "");
}

TEST(Canonicalization, IsIdempotent) {
  for (const std::string frame : {"A.b12", "A.b", "A.b#", "7", "x9y8"}) {
    const std::string once = EquivalenceAnalysis::CanonicalFrame(frame);
    EXPECT_EQ(EquivalenceAnalysis::CanonicalFrame(once), once) << frame;
  }
}

TEST(Canonicalization, StackKeyKeepsInnermostSuffixOnly) {
  // Innermost kContextSuffixFrames frames survive, each loop-normalized;
  // outer callers (how the workload reached recovery) are dropped.
  ASSERT_EQ(EquivalenceAnalysis::kContextSuffixFrames, 2);
  EXPECT_EQ(EquivalenceAnalysis::CanonicalizeStackKey("A.b3<C.d<E.f<G.h"), "A.b#<C.d");
  EXPECT_EQ(EquivalenceAnalysis::CanonicalizeStackKey("A.b<C.d9"), "A.b<C.d#");
  EXPECT_EQ(EquivalenceAnalysis::CanonicalizeStackKey("A.b"), "A.b");
  EXPECT_EQ(EquivalenceAnalysis::CanonicalizeStackKey(""), "");
}

// --- Class keys over a real model ------------------------------------------

SystemReport StaticRun(const ctcore::SystemUnderTest& system) {
  DriverOptions options;
  options.context_mode = ContextMode::kStaticOnly;
  return CrashTunerDriver().Run(system, options);
}

TEST(ClassKeys, PairKeyIsSymmetric) {
  ctzk::ZkSystem system;
  SystemReport report = StaticRun(system);
  EquivalenceAnalysis analysis(&system.model(), &report.metainfo);
  const auto& points = report.profile.dynamic_access_points;
  for (const auto& a : points) {
    for (const auto& b : points) {
      EXPECT_EQ(analysis.PairClassKey(a, b), analysis.PairClassKey(b, a));
    }
  }
}

TEST(ClassKeys, LoopIndexVariantsMergeAndDistinctSitesNever) {
  ctyarn::YarnSystem system;
  SystemReport report = StaticRun(system);
  EquivalenceAnalysis analysis(&system.model(), &report.metainfo);
  // Same static point under call strings differing only by a loop index:
  // one class.
  DynamicPoint loop_a{5, "CapacityScheduler.nodeUpdate3<Dispatcher.dispatch"};
  DynamicPoint loop_b{5, "CapacityScheduler.nodeUpdate11<Dispatcher.dispatch"};
  EXPECT_EQ(analysis.PointClassKey(loop_a), analysis.PointClassKey(loop_b));
  // Two static points at different lines never merge, even with identical
  // anchor method, field type, and context — different event arms of one
  // dispatch method are behaviorally distinct (the site is in the key).
  const auto& model = system.model();
  const std::string shared_key = loop_a.stack_key;
  std::vector<std::pair<int, std::string>> keys;  // (line, class key) per point
  for (const auto& point : model.access_points()) {
    if (point.executable) {
      keys.emplace_back(point.line, analysis.PointClassKey({point.id, shared_key}));
    }
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = i + 1; j < keys.size(); ++j) {
      if (keys[i].first != keys[j].first) {
        EXPECT_NE(keys[i].second, keys[j].second);
      }
    }
  }
}

TEST(Partition, IsDeterministicAndCoversInput) {
  ctyarn::YarnSystem system;
  SystemReport report = StaticRun(system);
  EquivalenceAnalysis analysis(&system.model(), &report.metainfo);
  const auto& points = report.profile.dynamic_access_points;
  EquivalencePartition first = analysis.PartitionPoints(points);
  EquivalencePartition second = analysis.PartitionPoints(points);

  ASSERT_EQ(first.NumClasses(), second.NumClasses());
  std::set<DynamicPoint> covered;
  for (int i = 0; i < first.NumClasses(); ++i) {
    const auto& cls = first.classes[static_cast<size_t>(i)];
    EXPECT_EQ(cls.key, second.classes[static_cast<size_t>(i)].key);
    EXPECT_EQ(cls.members, second.classes[static_cast<size_t>(i)].members);
    ASSERT_FALSE(cls.members.empty());
    // The representative is the lowest member, members arrive sorted, and
    // every member maps back to its own class key.
    EXPECT_EQ(cls.representative(), cls.members.front());
    for (size_t m = 0; m < cls.members.size(); ++m) {
      if (m > 0) {
        EXPECT_TRUE(cls.members[m - 1] < cls.members[m]);
      }
      EXPECT_EQ(analysis.PointClassKey(cls.members[m]), cls.key);
      EXPECT_TRUE(covered.insert(cls.members[m]).second);
    }
  }
  EXPECT_EQ(covered, points);
  EXPECT_EQ(first.TotalMembers(), static_cast<int>(points.size()));
  EXPECT_EQ(static_cast<int>(first.Representatives().size()), first.NumClasses());
}

TEST(Partition, PairPartitionCollapsesExactlyTheOrderedSlack) {
  ctzk::ZkSystem system;
  SystemReport report = StaticRun(system);
  EquivalenceAnalysis analysis(&system.model(), &report.metainfo);
  const auto& points = report.profile.dynamic_access_points;
  // ZooKeeper's point classes are singletons, so partitioning the ordered
  // walk halves it exactly (pure (A,B)/(B,A) symmetry) and partitioning the
  // unordered enumeration is the identity.
  auto ordered = ctcore::EnumerateOrderedCrashPairs(points, -1);
  auto unordered = ctcore::EnumerateCrashPairs(points, -1);
  EXPECT_EQ(ordered.size(), unordered.size() * 2);
  EXPECT_EQ(ctcore::PartitionCrashPairs(ordered, analysis).NumClasses(),
            static_cast<int>(unordered.size()));
  ctcore::PairPartition partition = ctcore::PartitionCrashPairs(unordered, analysis);
  EXPECT_EQ(partition.NumClasses(), static_cast<int>(unordered.size()));
  EXPECT_EQ(partition.TotalPairs(), static_cast<int>(unordered.size()));
}

// --- Driver modes -----------------------------------------------------------

std::string SerializeNoWall(SystemReport report) {
  report.analysis_wall_seconds = 0;
  report.test_wall_seconds = 0;
  return ctcore::ReportToJson(report);
}

TEST(DriverModes, RepresentativeIsDeterministicAcrossJobs) {
  ctyarn::YarnSystem system;
  DriverOptions options;
  options.context_mode = ContextMode::kStaticOnly;
  options.injection_selection = InjectionSelection::kRepresentative;
  options.jobs = 1;
  SystemReport seq = CrashTunerDriver().Run(system, options);
  options.jobs = 4;
  SystemReport par = CrashTunerDriver().Run(system, options);
  EXPECT_EQ(SerializeNoWall(seq), SerializeNoWall(par));

  EXPECT_TRUE(seq.equivalence.active);
  EXPECT_EQ(seq.equivalence.injected, seq.equivalence.classes);
  EXPECT_LE(seq.equivalence.classes, seq.equivalence.members);
  EXPECT_EQ(static_cast<int>(seq.injections.size()), seq.equivalence.classes);
  int size_sum = 0;
  for (int size : seq.equivalence.class_sizes) {
    EXPECT_GE(size, 1);
    size_sum += size;
  }
  EXPECT_EQ(size_sum, seq.equivalence.members);
}

TEST(DriverModes, ValidationFindsNoMismatchedClasses) {
  ctyarn::YarnSystem system;
  DriverOptions options;
  options.context_mode = ContextMode::kStaticOnly;
  options.injection_selection = InjectionSelection::kValidateRepresentative;
  SystemReport report = CrashTunerDriver().Run(system, options);
  EXPECT_TRUE(report.equivalence.active);
  // Validation injects the full set and checks every class member reports
  // the same bug signature as its representative.
  EXPECT_EQ(report.equivalence.injected, report.equivalence.members);
  EXPECT_EQ(report.equivalence.validation_mismatches, 0)
      << "class(es) with members reporting differently than their representative: "
      << (report.equivalence.mismatched_class_keys.empty()
              ? ""
              : report.equivalence.mismatched_class_keys.front());
  EXPECT_TRUE(report.equivalence.mismatched_class_keys.empty());
}

TEST(DriverModes, ExhaustiveReportsCarryNoEquivalenceSection) {
  ctzk::ZkSystem system;
  SystemReport report = StaticRun(system);
  EXPECT_FALSE(report.equivalence.active);
  EXPECT_EQ(ctcore::ReportToJson(report).find("\"equivalence\""), std::string::npos);
}

// --- Linter: equivalent-crash-point-duplicate -------------------------------

// A minimal well-formed model: one entry method, one field, and knobs to add
// duplicate and non-duplicate declarations.
ctmodel::ProgramModel LintModelBase() {
  ctmodel::ProgramModel model("lint");
  ctmodel::TypeDecl node_id;
  node_id.name = "NodeId";
  model.AddType(node_id);
  ctmodel::FieldDecl field;
  field.id = "Holder.node";
  field.clazz = "Holder";
  field.name = "node";
  field.type = "NodeId";
  model.AddField(field);
  ctmodel::MethodDecl method;
  method.clazz = "Server";
  method.name = "rpc";
  method.entry_point = true;
  model.AddMethod(method);
  return model;
}

ctmodel::AccessPointDecl LintPoint(int line) {
  ctmodel::AccessPointDecl point;
  point.field_id = "Holder.node";
  point.kind = ctmodel::AccessKind::kRead;
  point.clazz = "Server";
  point.method = "rpc";
  point.line = line;
  point.executable = true;
  return point;
}

TEST(Lint, FlagsEquivalentDuplicatePointsAndPairs) {
  ctmodel::ProgramModel model = LintModelBase();
  model.AddAccessPoint(LintPoint(10));
  model.AddAccessPoint(LintPoint(20));  // distinct site: not a duplicate
  model.AddAccessPoint(LintPoint(10));  // same class key as the first: dead
  // Unordered pair symmetry: declaring both orders is one dead declaration.
  model.AddMultiCrashPair({0, 1, "window"});
  model.AddMultiCrashPair({1, 0, "window, reversed"});
  ctanalysis::LintResult result = ctanalysis::LintModel(model);
  EXPECT_EQ(result.CountOf("equivalent-crash-point-duplicate"), 2);
}

TEST(Lint, CleanModelHasNoDuplicates) {
  ctmodel::ProgramModel model = LintModelBase();
  model.AddAccessPoint(LintPoint(10));
  model.AddAccessPoint(LintPoint(20));
  model.AddMultiCrashPair({0, 1, "window"});
  ctanalysis::LintResult result = ctanalysis::LintModel(model);
  EXPECT_EQ(result.CountOf("equivalent-crash-point-duplicate"), 0);
}

TEST(Lint, ShippedModelsHaveNoDuplicates) {
  EXPECT_EQ(ctanalysis::LintModel(ctyarn::YarnSystem().model())
                .CountOf("equivalent-crash-point-duplicate"),
            0);
  EXPECT_EQ(ctanalysis::LintModel(ctzk::ZkSystem().model())
                .CountOf("equivalent-crash-point-duplicate"),
            0);
}

}  // namespace
