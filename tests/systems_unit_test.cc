// White-box unit tests for the mini systems: protocol state, recovery
// behaviour under manually scheduled faults, and model/runtime consistency
// (every executable access point declared in a model is actually exercised
// by a profiled run, and vice versa).
#include <gtest/gtest.h>

#include <set>

#include "src/core/executor.h"
#include "src/core/profiler.h"
#include "src/runtime/tracer.h"
#include "src/systems/cassandra/cass_nodes.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_nodes.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_nodes.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/resource_manager.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_nodes.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctcore::Executor;

// --- YARN protocol state ---------------------------------------------------

TEST(YarnProtocol, SchedulerStateConsistentAfterCleanRun) {
  ctyarn::YarnSystem yarn;
  auto run = yarn.NewRun(3, 91);
  Executor::Execute(*run, nullptr);
  auto* rm = dynamic_cast<ctyarn::ResourceManager*>(run->cluster().Find("master:8030"));
  ASSERT_NE(rm, nullptr);
  // All containers resolved, no leaked usage.
  for (const auto& [cid, container] : rm->containers()) {
    EXPECT_TRUE(container.state == "COMPLETED" || container.state == "RELEASED" ||
                container.state == "RUNNING")
        << cid << " in " << container.state;
  }
  for (const auto& [node_id, scheduler_node] : rm->scheduler_nodes()) {
    EXPECT_GE(scheduler_node.used, 0) << node_id;
  }
  // App finished.
  ASSERT_EQ(rm->apps().size(), 1u);
  EXPECT_EQ(rm->apps().begin()->second.state, "FINISHED");
}

TEST(YarnProtocol, WorkerCrashReschedulesTasks) {
  ctyarn::YarnSystem yarn;
  auto run = yarn.NewRun(3, 92);
  // Kill a worker mid-run (tasks running); the job must still finish via
  // rescheduling on the survivors.
  run->cluster().loop().Schedule(21000, [&] { run->cluster().Crash("node2:42349"); });
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
  EXPECT_FALSE(outcome.failed);
}

TEST(YarnProtocol, AmNodeCrashStartsNewAttempt) {
  ctyarn::YarnSystem yarn;
  auto run = yarn.NewRun(2, 93);
  run->cluster().loop().Schedule(17000, [&] {
    auto* rm = dynamic_cast<ctyarn::ResourceManager*>(run->cluster().Find("master:8030"));
    ASSERT_NE(rm, nullptr);
    // Crash whichever node hosts the current attempt's AM.
    const auto& app = rm->apps().begin()->second;
    run->cluster().Crash(rm->attempts().at(app.current_attempt).node);
  });
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
  auto* rm = dynamic_cast<ctyarn::ResourceManager*>(run->cluster().Find("master:8030"));
  EXPECT_GE(rm->apps().begin()->second.attempt_count, 2);
}

TEST(YarnProtocol, AttemptsExhaustedFailsTheJob) {
  ctyarn::YarnConfig config;
  config.max_app_attempts = 1;
  ctyarn::YarnSystem yarn(ctyarn::YarnMode::kTrunk, config);
  auto run = yarn.NewRun(2, 94);
  run->cluster().loop().Schedule(17000, [&] {
    auto* rm = dynamic_cast<ctyarn::ResourceManager*>(run->cluster().Find("master:8030"));
    const auto& app = rm->apps().begin()->second;
    run->cluster().Crash(rm->attempts().at(app.current_attempt).node);
  });
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.failed);
}

// --- HDFS protocol state -----------------------------------------------------

TEST(HdfsProtocol, DataNodesRegisterWithDelay) {
  cthdfs::HdfsSystem hdfs;
  auto run = hdfs.NewRun(1, 95);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().RunUntil(1000);
  auto* dn = dynamic_cast<cthdfs::DataNode*>(run->cluster().Find("dnode1:50010"));
  ASSERT_NE(dn, nullptr);
  EXPECT_FALSE(dn->registered()) << "ack is delayed by the namesystem lock";
  run->cluster().loop().RunUntil(4000);
  EXPECT_TRUE(dn->registered());
}

TEST(HdfsProtocol, ActiveNameNodeTracksLiveDataNodes) {
  cthdfs::HdfsSystem hdfs;
  auto run = hdfs.NewRun(1, 96);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().RunUntil(2000);
  auto* nn = dynamic_cast<cthdfs::NameNode*>(run->cluster().Find("namenode1:9000"));
  ASSERT_NE(nn, nullptr);
  EXPECT_EQ(nn->datanodes().size(), 3u);
  run->cluster().Shutdown("dnode2:50010");  // graceful: unregister is immediate
  run->cluster().loop().RunFor(100);
  EXPECT_EQ(nn->datanodes().size(), 2u);
}

TEST(HdfsProtocol, StandbyPromotesOnActiveCrash) {
  cthdfs::HdfsSystem hdfs;
  auto run = hdfs.NewRun(1, 97);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().RunUntil(2000);
  auto* standby = dynamic_cast<cthdfs::NameNode*>(run->cluster().Find("namenode2:9000"));
  ASSERT_NE(standby, nullptr);
  EXPECT_FALSE(standby->active());
  run->cluster().Crash("namenode1:9000");
  run->cluster().loop().RunUntil(6000);
  EXPECT_TRUE(standby->active());
}

// --- HBase protocol state -----------------------------------------------------

TEST(HBaseProtocol, MasterActivatesAndAssignsAllRegions) {
  cthbase::HBaseSystem hbase;
  auto run = hbase.NewRun(2, 98);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().RunUntil(6000);
  auto* master = dynamic_cast<cthbase::HMaster*>(run->cluster().Find("hmaster:16000"));
  ASSERT_NE(master, nullptr);
  EXPECT_TRUE(master->active());
  EXPECT_EQ(master->regions().size(), static_cast<size_t>(hbase.config().num_regions));
  for (const auto& [region, state] : master->regions()) {
    EXPECT_EQ(state.state, "OPEN") << region;
  }
}

TEST(HBaseProtocol, ZkBlindCrashIsInvisible) {
  // A RegionServer crashed before its ZooKeeper registration never expires:
  // the master keeps it among online servers (the Fig. 9 substrate).
  cthbase::HBaseSystem hbase;
  auto run = hbase.NewRun(2, 99);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().Schedule(1000, [&] { run->cluster().Crash("rserver1:16020"); });
  run->cluster().loop().RunUntil(12000);
  auto* master = dynamic_cast<cthbase::HMaster*>(run->cluster().Find("hmaster:16000"));
  ASSERT_NE(master, nullptr);
  EXPECT_TRUE(master->online_servers().count("rserver1:16020"))
      << "no znode, no expiry, no removal";
  EXPECT_FALSE(master->active()) << "startup blocks on the dead server's info";
}

TEST(HBaseProtocol, ZkRegisteredCrashExpiresAndRecovers) {
  cthbase::HBaseSystem hbase;
  auto run = hbase.NewRun(2, 100);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().Schedule(7000, [&] { run->cluster().Crash("rserver1:16020"); });
  run->cluster().loop().RunUntil(13000);
  auto* master = dynamic_cast<cthbase::HMaster*>(run->cluster().Find("hmaster:16000"));
  EXPECT_FALSE(master->online_servers().count("rserver1:16020"));
  // Dead server's regions first sit in RECOVERING (WAL split), then move.
  for (const auto& [region, state] : master->regions()) {
    if (state.server == "rserver1:16020") {
      EXPECT_EQ(state.state, "RECOVERING") << region;
    }
  }
  run->cluster().loop().RunUntil(28000);
  for (const auto& [region, state] : master->regions()) {
    EXPECT_NE(state.server, "rserver1:16020") << region << " still on the dead server";
  }
}

// --- ZooKeeper / Cassandra ------------------------------------------------------

TEST(ZkProtocol, HighestAliveIdLeads) {
  ctzk::ZkSystem zk;
  auto run = zk.NewRun(2, 101);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().RunUntil(1500);
  auto* peer1 = dynamic_cast<ctzk::ZkPeer*>(run->cluster().Find("zkpeer1:2888"));
  auto* peer3 = dynamic_cast<ctzk::ZkPeer*>(run->cluster().Find("zkpeer3:2888"));
  EXPECT_FALSE(peer1->IsLeader());
  EXPECT_TRUE(peer3->IsLeader());
  run->cluster().Crash("zkpeer3:2888");
  run->cluster().loop().RunFor(3000);
  auto* peer2 = dynamic_cast<ctzk::ZkPeer*>(run->cluster().Find("zkpeer2:2888"));
  EXPECT_TRUE(peer2->IsLeader());
}

TEST(ZkProtocol, WritesReplicateToAllPeers) {
  ctzk::ZkSystem zk;
  auto run = zk.NewRun(2, 102);
  Executor::Execute(*run, nullptr);
  auto* peer1 = dynamic_cast<ctzk::ZkPeer*>(run->cluster().Find("zkpeer1:2888"));
  auto* peer2 = dynamic_cast<ctzk::ZkPeer*>(run->cluster().Find("zkpeer2:2888"));
  auto* peer3 = dynamic_cast<ctzk::ZkPeer*>(run->cluster().Find("zkpeer3:2888"));
  EXPECT_EQ(peer1->znodes().size(), 4u);
  EXPECT_EQ(peer1->znodes(), peer2->znodes());
  EXPECT_EQ(peer2->znodes(), peer3->znodes());
}

TEST(CassandraProtocol, GossipRemovesDeadPeerFromRing) {
  ctcass::CassSystem cass;
  auto run = cass.NewRun(2, 103);
  run->cluster().StartAll();
  run->Start();
  run->cluster().loop().RunUntil(1400);
  auto* node = dynamic_cast<ctcass::CassNode*>(run->cluster().Find("cass1:7000"));
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->ring().size(), 3u);
  run->cluster().Crash("cass2:7000");
  run->cluster().loop().RunFor(3000);
  EXPECT_EQ(node->ring().size(), 2u);
}

TEST(CassandraProtocol, ReplicationStoresRowsOnTwoNodes) {
  ctcass::CassSystem cass;
  auto run = cass.NewRun(2, 104);
  Executor::Execute(*run, nullptr);
  int total_rows = 0;
  for (const char* id : {"cass1:7000", "cass2:7000", "cass3:7000"}) {
    total_rows +=
        static_cast<int>(dynamic_cast<ctcass::CassNode*>(run->cluster().Find(id))->data().size());
  }
  EXPECT_EQ(total_rows, 2 * 5 * 2);  // ops x replication factor
}

// --- Model/runtime consistency ---------------------------------------------------

template <typename System>
void CheckExecutablePointsAreProfiled(int min_expected) {
  System system;
  std::set<int> executable;
  for (const auto& point : system.model().access_points()) {
    if (point.executable) {
      executable.insert(point.id);
    }
  }
  ctcore::Profiler profiler;
  ctcore::ProfileResult profile = profiler.Profile(system, executable, {}, 105);
  std::set<int> hit;
  for (const auto& dynamic_point : profile.dynamic_access_points) {
    hit.insert(dynamic_point.point_id);
    EXPECT_TRUE(executable.count(dynamic_point.point_id));
  }
  EXPECT_GE(static_cast<int>(hit.size()), min_expected);
}

TEST(ModelConsistency, YarnExecutablePointsFire) {
  CheckExecutablePointsAreProfiled<ctyarn::YarnSystem>(15);
}
TEST(ModelConsistency, HdfsExecutablePointsFire) {
  CheckExecutablePointsAreProfiled<cthdfs::HdfsSystem>(5);
}
TEST(ModelConsistency, HBaseExecutablePointsFire) {
  CheckExecutablePointsAreProfiled<cthbase::HBaseSystem>(7);
}
TEST(ModelConsistency, ZooKeeperExecutablePointsFire) {
  CheckExecutablePointsAreProfiled<ctzk::ZkSystem>(3);
}
TEST(ModelConsistency, CassandraExecutablePointsFire) {
  CheckExecutablePointsAreProfiled<ctcass::CassSystem>(2);
}

template <typename System>
void CheckDeclaredFieldsExist() {
  System system;
  for (const auto& point : system.model().access_points()) {
    EXPECT_NE(system.model().FindField(point.field_id), nullptr) << point.field_id;
  }
  for (const auto& field : system.model().fields()) {
    EXPECT_NE(system.model().FindType(field.type), nullptr)
        << field.id << " has unknown type " << field.type;
  }
}

TEST(ModelConsistency, YarnFieldsAndTypesResolve) { CheckDeclaredFieldsExist<ctyarn::YarnSystem>(); }
TEST(ModelConsistency, HdfsFieldsAndTypesResolve) { CheckDeclaredFieldsExist<cthdfs::HdfsSystem>(); }
TEST(ModelConsistency, HBaseFieldsAndTypesResolve) {
  CheckDeclaredFieldsExist<cthbase::HBaseSystem>();
}
TEST(ModelConsistency, ZooKeeperFieldsAndTypesResolve) {
  CheckDeclaredFieldsExist<ctzk::ZkSystem>();
}
TEST(ModelConsistency, CassandraFieldsAndTypesResolve) {
  CheckDeclaredFieldsExist<ctcass::CassSystem>();
}

}  // namespace
