// Static call-graph analysis, bounded context enumeration, model linting and
// the keyword/promotion edge cases of the crash-point analysis.
//
// The load-bearing assertion is per-system 100% recall: every ⟨point,
// context⟩ pair the profiler observes must be statically enumerable at the
// tracer's stack depth. Precision may be < 1 (the enumeration is an
// over-approximation) but recall < 1 means the declared call structure and
// the executable mini system have drifted apart.
#include <gtest/gtest.h>

#include "src/analysis/call_graph.h"
#include "src/analysis/context_enumeration.h"
#include "src/analysis/crash_point_analysis.h"
#include "src/analysis/model_lint.h"
#include "src/core/crashtuner.h"
#include "src/logging/statement.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctanalysis::CallGraph;
using ctanalysis::ContextCrossCheck;
using ctanalysis::ContextEnumeration;
using ctanalysis::IsCollectionReadOp;
using ctanalysis::IsCollectionWriteOp;
using ctanalysis::LintModel;
using ctanalysis::LintResult;
using ctanalysis::StaticContextResult;
using ctcore::ContextMode;
using ctcore::CrashTunerDriver;
using ctcore::DriverOptions;
using ctcore::SystemReport;
using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::CallKind;
using ctmodel::MethodDecl;
using ctmodel::ProgramModel;

// --- Small hand-built model -------------------------------------------------

void DeclareMethod(ProgramModel* model, const std::string& clazz, const std::string& name,
                   bool entry = false) {
  MethodDecl method;
  method.clazz = clazz;
  method.name = name;
  method.entry_point = entry;
  model->AddMethod(method);
}

// rpc (entry) -> helper -> leaf; rpc -async-> worker; virtual dispatch from
// rpc through Base.visit to Derived.visit.
ProgramModel TinyModel() {
  ProgramModel model("tiny");
  ctmodel::TypeDecl base;
  base.name = "Base";
  model.AddType(base);
  ctmodel::TypeDecl derived;
  derived.name = "Derived";
  derived.supertype = "Base";
  model.AddType(derived);

  DeclareMethod(&model, "Server", "rpc", /*entry=*/true);
  DeclareMethod(&model, "Server", "helper");
  DeclareMethod(&model, "Server", "leaf");
  DeclareMethod(&model, "Server", "worker");
  DeclareMethod(&model, "Derived", "visit");
  model.AddCallEdge({"Server.rpc", "Server.helper", CallKind::kStatic});
  model.AddCallEdge({"Server.helper", "Server.leaf", CallKind::kStatic});
  model.AddCallEdge({"Server.rpc", "Server.worker", CallKind::kAsync});
  model.AddCallEdge({"Server.rpc", "Base.visit", CallKind::kVirtual});
  return model;
}

TEST(CallGraph, ResolvesVirtualDispatchThroughSubtypes) {
  ProgramModel model = TinyModel();
  CallGraph graph(model);
  bool found = false;
  for (const auto& edge : graph.edges()) {
    if (edge.caller == "Server.rpc" && edge.callee == "Derived.visit") {
      found = true;
      EXPECT_EQ(edge.kind, CallKind::kVirtual);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(graph.IsReachable("Derived.visit"));
}

TEST(CallGraph, AsyncCalleesAreContextRootsAndReachable) {
  ProgramModel model = TinyModel();
  CallGraph graph(model);
  EXPECT_TRUE(graph.IsContextRoot("Server.rpc"));     // entry point
  EXPECT_TRUE(graph.IsContextRoot("Server.worker"));  // async callee
  EXPECT_FALSE(graph.IsContextRoot("Server.helper"));
  EXPECT_TRUE(graph.IsReachable("Server.leaf"));
  EXPECT_TRUE(graph.IsReachable("Server.worker"));
}

TEST(CallGraph, UndeclaredMethodIsUnreachable) {
  ProgramModel model = TinyModel();
  CallGraph graph(model);
  EXPECT_FALSE(graph.IsReachable("Server.nonexistent"));
  EXPECT_TRUE(graph.SyncCallersOf("Server.nonexistent").empty());
}

TEST(ContextEnumeration, CompleteStringsEndAtContextRoots) {
  ProgramModel model = TinyModel();
  CallGraph graph(model);
  ContextEnumeration enumeration(&graph);
  std::set<std::string> keys = enumeration.EnumerateMethod("Server.leaf", 5);
  // The only complete stack: leaf under helper under the rpc entry.
  EXPECT_EQ(keys, (std::set<std::string>{"Server.leaf<Server.helper<Server.rpc"}));
  // The async worker starts its own stack.
  EXPECT_EQ(enumeration.EnumerateMethod("Server.worker", 5),
            (std::set<std::string>{"Server.worker"}));
}

TEST(ContextEnumeration, DepthBoundAdmitsTruncatedStrings) {
  ProgramModel model = TinyModel();
  CallGraph graph(model);
  ContextEnumeration enumeration(&graph);
  // At depth 2 the full leaf<helper<rpc string does not fit; the 2-frame
  // truncation leaf<helper is what a depth-2 tracer stack would show.
  EXPECT_EQ(enumeration.EnumerateMethod("Server.leaf", 2),
            (std::set<std::string>{"Server.leaf<Server.helper"}));
  // At depth 1 every method truncates to itself.
  EXPECT_EQ(enumeration.EnumerateMethod("Server.leaf", 1),
            (std::set<std::string>{"Server.leaf"}));
  EXPECT_TRUE(enumeration.EnumerateMethod("Server.leaf", 0).empty());
}

TEST(CallGraph, FeasibleRootsRequireReachability) {
  // An async edge from an unreachable scheduler makes its callee a context
  // root, but no workload can ever give birth to a stack there.
  ProgramModel model = TinyModel();
  DeclareMethod(&model, "Server", "orphanScheduler");  // no entry, no callers
  DeclareMethod(&model, "Server", "orphanWorker");
  model.AddCallEdge({"Server.orphanScheduler", "Server.orphanWorker", CallKind::kAsync});
  CallGraph graph(model);
  EXPECT_TRUE(graph.IsContextRoot("Server.orphanWorker"));
  EXPECT_FALSE(graph.IsFeasibleRoot("Server.orphanWorker"));
  EXPECT_TRUE(graph.IsFeasibleRoot("Server.rpc"));
  EXPECT_TRUE(graph.IsFeasibleRoot("Server.worker"));
  // The sync closure descends from feasible roots only.
  EXPECT_TRUE(graph.IsSyncReachableFromFeasibleRoot("Server.leaf"));
  EXPECT_FALSE(graph.IsSyncReachableFromFeasibleRoot("Server.orphanWorker"));
}

TEST(ContextEnumeration, PruneDropsStringsRootedAtInfeasibleRoots) {
  ProgramModel model = TinyModel();
  DeclareMethod(&model, "Server", "orphanScheduler");
  DeclareMethod(&model, "Server", "orphanWorker");
  model.AddCallEdge({"Server.orphanScheduler", "Server.orphanWorker", CallKind::kAsync});
  // The orphan worker also calls leaf synchronously: leaf now has a second
  // caller chain, but one no workload can realize.
  model.AddCallEdge({"Server.orphanWorker", "Server.leaf", CallKind::kStatic});
  CallGraph graph(model);
  ContextEnumeration enumeration(&graph);
  std::set<std::string> unpruned = enumeration.EnumerateMethod("Server.leaf", 5);
  EXPECT_EQ(unpruned.count("Server.leaf<Server.orphanWorker"), 1u);
  std::set<std::string> pruned =
      enumeration.EnumerateMethod("Server.leaf", 5, /*prune_infeasible=*/true);
  EXPECT_EQ(pruned.count("Server.leaf<Server.orphanWorker"), 0u);
  // The realizable string survives the prune untouched.
  EXPECT_EQ(pruned.count("Server.leaf<Server.helper<Server.rpc"), 1u);
  EXPECT_FALSE(enumeration.IsFeasibleKey("Server.leaf<Server.orphanWorker", 5));
  EXPECT_TRUE(enumeration.IsFeasibleKey("Server.leaf<Server.helper<Server.rpc", 5));
}

TEST(ContextEnumeration, TruncatedStringsPrunedOutsideSyncClosure) {
  // A 5-deep chain hanging off an infeasible root: its depth-truncated
  // strings end at methods outside the feasible sync closure and are pruned.
  ProgramModel model("truncation");
  DeclareMethod(&model, "S", "entry", /*entry=*/true);
  for (const char* name : {"a", "b", "c", "d", "e", "f"}) {
    DeclareMethod(&model, "S", name);
  }
  // entry -> a; dead root chain f -> b -> c -> d -> e -> a (f unreachable).
  model.AddCallEdge({"S.entry", "S.a", CallKind::kStatic});
  model.AddCallEdge({"S.f", "S.b", CallKind::kStatic});
  model.AddCallEdge({"S.b", "S.c", CallKind::kStatic});
  model.AddCallEdge({"S.c", "S.d", CallKind::kStatic});
  model.AddCallEdge({"S.d", "S.e", CallKind::kStatic});
  model.AddCallEdge({"S.e", "S.a", CallKind::kStatic});
  CallGraph graph(model);
  ContextEnumeration enumeration(&graph);
  std::set<std::string> unpruned = enumeration.EnumerateMethod("S.a", 5);
  // Truncated 5-frame window through the dead chain is admitted unpruned...
  EXPECT_EQ(unpruned.count("S.a<S.e<S.d<S.c<S.b"), 1u);
  // ...but pruned: S.b is not in the sync closure of any feasible root.
  std::set<std::string> pruned = enumeration.EnumerateMethod("S.a", 5, true);
  EXPECT_EQ(pruned, (std::set<std::string>{"S.a<S.entry"}));
}

TEST(ContextEnumeration, ContextMethodOverridesDeclaredAnchor) {
  ProgramModel model = TinyModel();
  ctmodel::FieldDecl field;
  field.clazz = "Server";
  field.name = "state";
  field.type = "java.lang.String";
  model.AddField(field);
  AccessPointDecl point;
  point.field_id = "Server.state";
  point.kind = AccessKind::kRead;
  point.clazz = "Server";
  point.method = "leaf";
  point.context_method = "Server.helper";  // hook fires before leaf's frame
  point.executable = true;
  int id = model.AddAccessPoint(point);

  CallGraph graph(model);
  StaticContextResult result = ContextEnumeration(&graph).EnumerateAll(5);
  ASSERT_EQ(result.contexts_by_point.count(id), 1u);
  EXPECT_EQ(result.contexts_by_point.at(id),
            (std::set<std::string>{"Server.helper<Server.rpc"}));
}

// --- Per-system recall (the tentpole invariant) -----------------------------

template <typename System>
void ExpectFullRecall(const System& system) {
  DriverOptions options;
  options.context_mode = ContextMode::kStaticSeeded;
  SystemReport report = CrashTunerDriver().Run(system, options);
  const ContextCrossCheck& check = report.context_check;
  EXPECT_GT(check.observed, 0) << report.system;
  for (const auto& [point_id, key] : check.missed) {
    ADD_FAILURE() << report.system << ": observed context not enumerated: p" << point_id
                  << " key=[" << key << "]";
  }
  EXPECT_DOUBLE_EQ(check.Recall(), 1.0) << report.system;
  EXPECT_LE(check.Precision(), 1.0) << report.system;
  // The static set replaces the profiled one and is at least as large.
  EXPECT_GE(report.dynamic_crash_points, check.observed) << report.system;
  EXPECT_EQ(report.dynamic_crash_points, report.static_contexts) << report.system;
}

TEST(StaticContextRecall, Yarn) { ExpectFullRecall(ctyarn::YarnSystem()); }
TEST(StaticContextRecall, YarnLegacy) {
  ExpectFullRecall(ctyarn::YarnSystem(ctyarn::YarnMode::kLegacy));
}
TEST(StaticContextRecall, Hdfs) { ExpectFullRecall(cthdfs::HdfsSystem()); }
TEST(StaticContextRecall, HBase) { ExpectFullRecall(cthbase::HBaseSystem()); }
TEST(StaticContextRecall, ZooKeeper) { ExpectFullRecall(ctzk::ZkSystem()); }
TEST(StaticContextRecall, Cassandra) { ExpectFullRecall(ctcass::CassSystem()); }

TEST(StaticContextModes, StaticOnlySkipsInstrumentedRuns) {
  DriverOptions options;
  options.context_mode = ContextMode::kStaticOnly;
  SystemReport report = CrashTunerDriver().Run(ctzk::ZkSystem(), options);
  EXPECT_EQ(report.profile.iterations, 1);
  EXPECT_EQ(report.context_check.observed, 0);  // nothing was instrumented
  EXPECT_GT(report.static_contexts, 0);
  EXPECT_EQ(report.dynamic_crash_points, report.static_contexts);
  EXPECT_GT(report.profile.normal_duration_ms, 0);
}

TEST(StaticContextModes, StaticSetContainsEveryProfiledPair) {
  // Definition 1 soundness end to end: run the default profiled pipeline and
  // the static pipeline, then check set containment on the actual pairs.
  SystemReport profiled = CrashTunerDriver().Run(cthdfs::HdfsSystem());
  DriverOptions options;
  options.context_mode = ContextMode::kStaticOnly;
  SystemReport enumerated = CrashTunerDriver().Run(cthdfs::HdfsSystem(), options);
  for (const auto& pair : profiled.profile.dynamic_access_points) {
    EXPECT_EQ(enumerated.profile.dynamic_access_points.count(pair), 1u)
        << "p" << pair.point_id << " key=[" << pair.stack_key << "]";
  }
}

// --- Model linter ------------------------------------------------------------

TEST(ModelLint, ShippedModelsAreClean) {
  EXPECT_TRUE(LintModel(ctyarn::GetYarnArtifacts(ctyarn::YarnMode::kTrunk).model).ok());
  EXPECT_TRUE(LintModel(ctyarn::GetYarnArtifacts(ctyarn::YarnMode::kLegacy).model).ok());
  EXPECT_TRUE(LintModel(cthdfs::GetHdfsArtifacts().model).ok());
  EXPECT_TRUE(LintModel(cthbase::GetHBaseArtifacts().model).ok());
  EXPECT_TRUE(LintModel(ctzk::GetZkArtifacts().model).ok());
  EXPECT_TRUE(LintModel(ctcass::GetCassArtifacts().model).ok());
}

TEST(ModelLint, FlagsDeliberatelyBrokenModel) {
  ProgramModel model = TinyModel();
  ctmodel::FieldDecl field;
  field.clazz = "Server";
  field.name = "state";
  field.type = "java.lang.String";
  model.AddField(field);

  AccessPointDecl dangling;
  dangling.field_id = "Server.removedField";  // never declared
  dangling.kind = AccessKind::kRead;
  dangling.clazz = "Server";
  dangling.method = "leaf";
  dangling.collection_op = "iterate";  // matches neither Table 3 list
  model.AddAccessPoint(dangling);

  AccessPointDecl orphan;
  orphan.field_id = "Server.state";
  orphan.kind = AccessKind::kRead;
  orphan.clazz = "Ghost";  // class with no declared methods
  orphan.method = "spook";
  orphan.executable = true;  // and its anchor is unreachable
  orphan.promoted_sites = {99};  // out of range, and not returned_directly
  model.AddAccessPoint(orphan);

  model.AddCallEdge({"Server.rpc", "Server.deleted", CallKind::kStatic});

  LintResult result = LintModel(model);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.CountOf("dangling-field"), 1);
  EXPECT_EQ(result.CountOf("unknown-op"), 1);
  EXPECT_GE(result.CountOf("dangling-promotion"), 2);  // no flag + bad site id
  EXPECT_EQ(result.CountOf("method-less-class"), 1);
  EXPECT_EQ(result.CountOf("dangling-edge"), 1);
  EXPECT_EQ(result.CountOf("unreachable-point"), 1);
}

TEST(ModelLint, FlagsUnarmableMultiCrashPairs) {
  ProgramModel model = TinyModel();
  ctmodel::FieldDecl field;
  field.clazz = "Server";
  field.name = "state";
  field.type = "java.lang.String";
  model.AddField(field);

  AccessPointDecl reachable;
  reachable.field_id = "Server.state";
  reachable.kind = AccessKind::kRead;
  reachable.clazz = "Server";
  reachable.method = "leaf";
  reachable.executable = true;
  int reachable_id = model.AddAccessPoint(reachable);

  DeclareMethod(&model, "Server", "deadPath");  // no entry point reaches it
  AccessPointDecl unreachable = reachable;
  unreachable.method = "deadPath";
  int unreachable_id = model.AddAccessPoint(unreachable);

  AccessPointDecl catalog_only = reachable;
  catalog_only.executable = false;
  catalog_only.synthetic = true;
  int catalog_id = model.AddAccessPoint(catalog_only);

  model.AddMultiCrashPair({reachable_id, reachable_id, "armable both ways"});
  model.AddMultiCrashPair({reachable_id, unreachable_id, "second point unreachable"});
  model.AddMultiCrashPair({reachable_id, catalog_id, "second point not executable"});
  model.AddMultiCrashPair({reachable_id, 99, "second point id out of range"});

  LintResult result = LintModel(model);
  EXPECT_EQ(result.CountOf("static-pair-unreachable"), 3);
  ProgramModel clean = TinyModel();
  EXPECT_EQ(LintModel(clean).CountOf("static-pair-unreachable"), 0);
}

TEST(ModelLint, FlagsDeclsEmbeddingConcreteNodeIndices) {
  // Synthetic offenders: decls pinned to one member of one deployment stop
  // matching anything past the first replica once --scale stamps out more.
  ProgramModel model = TinyModel();

  ctmodel::AccessPointDecl indexed_class;
  indexed_class.field_id = "Server.state";  // undeclared; not this check's concern
  indexed_class.clazz = "RServer3";         // role stem + concrete index
  indexed_class.method = "open";
  model.AddAccessPoint(indexed_class);

  ctmodel::AccessPointDecl indexed_context;
  indexed_context.clazz = "Server";
  indexed_context.method = "rpc";
  indexed_context.context_method = "Server.handleNode12";  // index hides in the anchor
  model.AddAccessPoint(indexed_context);

  ctmodel::AccessPointDecl host_port;
  host_port.clazz = "Server";
  host_port.method = "connect_namenode1:9000";  // host:port instance
  model.AddAccessPoint(host_port);

  model.AddSpan({"rm.register-zkpeer2", "Server.rpc", "indexed span name"});
  model.AddSpan({"rm.register-node", "Server.rpc", "clean; note may say node1 freely"});

  LintResult result = LintModel(model);
  EXPECT_EQ(result.CountOf("scale-invariant-decl"), 4);

  // Role names without a trailing index never trip the check.
  ProgramModel clean = TinyModel();
  ctmodel::AccessPointDecl role;
  role.clazz = "NodeManager";
  role.method = "registerWithRM";
  clean.AddAccessPoint(role);
  EXPECT_EQ(LintModel(clean).CountOf("scale-invariant-decl"), 0);
}

TEST(ModelLint, FlagsGrammarOpsWithUnknownTargets) {
  // Synthetic offenders: grammar ops pointing at nothing the model declares
  // would generate messages no node handles (or kills of no role), quietly
  // starving every fuzz campaign of that op's coverage.
  ProgramModel model = TinyModel();

  ctmodel::GrammarOpDecl good;
  good.name = "tiny.rpc";
  good.kind = ctmodel::GrammarOpKind::kRpc;
  good.target_method = "Server.rpc";
  good.target_prefix = "srv";
  model.AddGrammarOp(good);

  ctmodel::GrammarOpDecl bad_method = good;
  bad_method.name = "tiny.ghost-rpc";
  bad_method.target_method = "Server.removedRpc";  // never declared
  model.AddGrammarOp(bad_method);

  ctmodel::GrammarOpDecl bad_class = good;
  bad_class.name = "tiny.kill";
  bad_class.kind = ctmodel::GrammarOpKind::kCrash;
  bad_class.target_class = "Ghost";  // declares no methods
  model.AddGrammarOp(bad_class);

  ctmodel::GrammarOpDecl malformed = good;
  malformed.name = "tiny.rpc";  // duplicate name
  malformed.target_prefix = "";  // nothing to draw a victim from
  malformed.weight = 0;          // never drawable
  malformed.min_time_ms = 5000;  // empty firing window
  malformed.max_time_ms = 5000;
  model.AddGrammarOp(malformed);

  LintResult result = LintModel(model);
  EXPECT_EQ(result.CountOf("grammar-op-unknown-target"), 6);

  // A model with only the well-formed op stays clean.
  ProgramModel clean = TinyModel();
  clean.AddGrammarOp(good);
  EXPECT_EQ(LintModel(clean).CountOf("grammar-op-unknown-target"), 0);
}

TEST(ModelLint, FlagsPhantomComponentsAndUnspannedKilledRoles) {
  // Synthetic offenders for the two directions of component grounding: a span
  // charging dwell to a class that declares no methods, and a fuzz kill op for
  // a role no component span covers (its recovery sweeps would be invisible
  // to ctstat --top).
  ProgramModel model = TinyModel();
  model.AddSpan({"ghost-sweep", "Server.rpc", "component names nothing", "Ghost"});

  ctmodel::GrammarOpDecl kill;
  kill.name = "tiny.kill-server";
  kill.kind = ctmodel::GrammarOpKind::kCrash;
  kill.target_class = "Server";
  kill.target_prefix = "srv";
  model.AddGrammarOp(kill);

  LintResult result = LintModel(model);
  EXPECT_EQ(result.CountOf("component-without-span"), 2);

  // Once a span names the killed role's declared class, both findings clear.
  ProgramModel clean = TinyModel();
  clean.AddSpan({"server-sweep", "Server.rpc", "covers the killed role", "Server"});
  clean.AddGrammarOp(kill);
  EXPECT_EQ(LintModel(clean).CountOf("component-without-span"), 0);
}

TEST(ModelLint, VirtualEdgeWithNoDispatchTargetIsDangling) {
  ProgramModel model = TinyModel();
  model.AddCallEdge({"Server.rpc", "Base.render", CallKind::kVirtual});
  LintResult result = LintModel(model);
  EXPECT_EQ(result.CountOf("dangling-edge"), 1);
}

TEST(ModelLint, FlagsLogBindingAgainstUndeclaredLocation) {
  // The template uses nonsense tokens so the shared registry entry can never
  // shadow a real statement in the pattern matcher.
  ProgramModel model = TinyModel();
  auto& registry = ctlog::StatementRegistry::Instance();

  ctmodel::LogBinding bad;
  bad.statement_id = registry.Register(ctlog::Level::kInfo, "lintcheck qqz {}",
                                       "Server.vanished");  // not a declared method
  model.BindLog(bad);

  ctmodel::LogBinding good;
  good.statement_id =
      registry.Register(ctlog::Level::kInfo, "lintcheck qqy {}", "Server.helper");
  model.BindLog(good);

  ctmodel::LogBinding unregistered;
  unregistered.statement_id = registry.size() + 1000;
  model.BindLog(unregistered);

  LintResult result = LintModel(model);
  EXPECT_EQ(result.CountOf("dangling-log-location"), 2);
}

TEST(ModelLint, FlagsInconsistentIoPoints) {
  ProgramModel model = TinyModel();
  model.AddIoMethod({"fs.Stream", "write"});

  ctmodel::IoPointDecl ok;
  ok.io_class = "fs.Stream";
  ok.io_method = "write";
  ok.callsite = "Server.leaf";  // declared and reachable from Server.rpc
  ok.executable = true;
  model.AddIoPoint(ok);

  ctmodel::IoPointDecl undeclared_method = ok;
  undeclared_method.io_method = "fsync";  // no such IoMethodDecl
  model.AddIoPoint(undeclared_method);

  ctmodel::IoPointDecl dangling_callsite = ok;
  dangling_callsite.callsite = "Server.vanished";
  model.AddIoPoint(dangling_callsite);

  DeclareMethod(&model, "Server", "island");  // declared, but no edges reach it
  ctmodel::IoPointDecl unreachable = ok;
  unreachable.callsite = "Server.island";
  model.AddIoPoint(unreachable);

  // A non-executable point only needs its method pair declared, like the
  // catalog-only access points.
  ctmodel::IoPointDecl catalog_only = ok;
  catalog_only.callsite = "Server.vanished";
  catalog_only.executable = false;
  model.AddIoPoint(catalog_only);

  LintResult result = LintModel(model);
  EXPECT_EQ(result.CountOf("dangling-io-method"), 1);
  EXPECT_EQ(result.CountOf("dangling-io-callsite"), 1);
  EXPECT_EQ(result.CountOf("unreachable-io-point"), 1);
}

// --- Table 3 keyword edge cases ---------------------------------------------

TEST(CollectionKeywords, PrefixMatchingIsCaseInsensitive) {
  EXPECT_TRUE(IsCollectionReadOp("get"));
  EXPECT_TRUE(IsCollectionReadOp("getOrDefault"));
  EXPECT_TRUE(IsCollectionReadOp("GET"));
  EXPECT_TRUE(IsCollectionReadOp("isEmpty"));
  EXPECT_TRUE(IsCollectionReadOp("containsKey"));
  EXPECT_TRUE(IsCollectionReadOp("toArray"));
  EXPECT_TRUE(IsCollectionWriteOp("putIfAbsent"));
  EXPECT_TRUE(IsCollectionWriteOp("removeAll"));
  EXPECT_TRUE(IsCollectionWriteOp("setValue"));
}

TEST(CollectionKeywords, NonAccessOpsMatchNeitherList) {
  for (const char* op : {"iterator", "stream", "forEach", "size", "hash", ""}) {
    EXPECT_FALSE(IsCollectionReadOp(op)) << op;
    EXPECT_FALSE(IsCollectionWriteOp(op)) << op;
  }
  // Keyword is a *prefix* match, so "at" also claims "attach" — the paper's
  // keyword table has the same quirk; the linter exists to catch misuse.
  EXPECT_TRUE(IsCollectionReadOp("attach"));
}

TEST(CollectionKeywords, ReadAndWriteListsAreDisjointOnCommonOps) {
  for (const char* op : {"get", "peek", "poll", "values", "contain"}) {
    EXPECT_TRUE(IsCollectionReadOp(op)) << op;
    EXPECT_FALSE(IsCollectionWriteOp(op)) << op;
  }
  for (const char* op : {"put", "add", "clear", "offer", "push"}) {
    EXPECT_TRUE(IsCollectionWriteOp(op)) << op;
    EXPECT_FALSE(IsCollectionReadOp(op)) << op;
  }
}

// --- Return-site promotion edge cases ---------------------------------------

ProgramModel PromotionModel(std::vector<int> promoted_sites, bool returned = true) {
  ProgramModel model("promo");
  ctmodel::TypeDecl type;
  type.name = "meta.Type";
  model.AddType(type);
  ctmodel::FieldDecl field;
  field.clazz = "Holder";
  field.name = "map";
  field.type = "meta.Type";
  model.AddField(field);
  AccessPointDecl read;
  read.field_id = "Holder.map";
  read.kind = AccessKind::kRead;
  read.clazz = "Holder";
  read.method = "getThing";
  read.returned_directly = returned;
  read.promoted_sites = std::move(promoted_sites);
  model.AddAccessPoint(read);
  return model;
}

ctanalysis::MetaInfoResult AllMetaInfo(const ProgramModel& model) {
  ctanalysis::MetaInfoInference inference(&model);
  return inference.Infer({"meta.Type"}, {});
}

TEST(ReturnPromotion, EmptyPromotedSitesPromotesToNothing) {
  ProgramModel model = PromotionModel({});
  ctanalysis::MetaInfoResult metainfo = AllMetaInfo(model);
  ctanalysis::CrashPointAnalysis analysis(&model, &metainfo);
  ctanalysis::CrashPointResult result = analysis.Identify();
  // The returned-directly read is expanded away; with no call sites the
  // candidate vanishes entirely rather than surviving as itself.
  EXPECT_EQ(result.promoted_points, 1);
  EXPECT_EQ(result.promotion_sites, 0);
  EXPECT_TRUE(result.points.empty());
}

TEST(ReturnPromotion, DisabledPromotionKeepsTheReadItself) {
  ProgramModel model = PromotionModel({});
  ctanalysis::MetaInfoResult metainfo = AllMetaInfo(model);
  ctanalysis::CrashPointAnalysis analysis(&model, &metainfo);
  ctanalysis::CrashPointOptions options;
  options.promote_returns = false;
  ctanalysis::CrashPointResult result = analysis.Identify(options);
  EXPECT_EQ(result.promoted_points, 0);
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_EQ(result.points[0].field_id, "Holder.map");
}

TEST(ReturnPromotion, SitesWithoutReturnedFlagAreLintedNotPromoted) {
  // promoted_sites on a point that is not returned_directly is a model bug:
  // the analysis ignores the sites, and the linter reports it.
  ProgramModel model = PromotionModel({0}, /*returned=*/false);
  ctanalysis::MetaInfoResult metainfo = AllMetaInfo(model);
  ctanalysis::CrashPointAnalysis analysis(&model, &metainfo);
  ctanalysis::CrashPointResult result = analysis.Identify();
  EXPECT_EQ(result.promoted_points, 0);
  EXPECT_GE(LintModel(model).CountOf("dangling-promotion"), 1);
}

// --- Unreachable pruning (opt-in) -------------------------------------------

TEST(UnreachablePruning, DropsCandidatesWithUnreachableAnchors) {
  ProgramModel model = TinyModel();
  ctmodel::FieldDecl field;
  field.clazz = "Server";
  field.name = "peers";
  field.type = "meta.Type";
  model.AddField(field);
  ctmodel::TypeDecl type;
  type.name = "meta.Type";
  model.AddType(type);

  AccessPointDecl live;
  live.field_id = "Server.peers";
  live.kind = AccessKind::kRead;
  live.clazz = "Server";
  live.method = "leaf";
  model.AddAccessPoint(live);
  AccessPointDecl dead;
  dead.field_id = "Server.peers";
  dead.kind = AccessKind::kRead;
  dead.clazz = "Server";
  dead.method = "orphan";  // declared nowhere, reached from nowhere
  model.AddAccessPoint(dead);

  ctanalysis::MetaInfoResult metainfo = AllMetaInfo(model);
  ctanalysis::CrashPointAnalysis analysis(&model, &metainfo);
  ctanalysis::CrashPointResult defaults = analysis.Identify();
  EXPECT_EQ(defaults.points.size(), 2u);
  EXPECT_EQ(defaults.pruned_unreachable, 0);

  ctanalysis::CrashPointOptions options;
  options.prune_statically_unreachable = true;
  ctanalysis::CrashPointResult pruned = analysis.Identify(options);
  ASSERT_EQ(pruned.points.size(), 1u);
  EXPECT_EQ(pruned.points[0].location.rfind("Server.leaf", 0), 0u);
  EXPECT_EQ(pruned.pruned_unreachable, 1);
}

}  // namespace
