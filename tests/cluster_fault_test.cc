// Unit tests for the cluster's network-fault semantics: link-fault draws
// (drop/delay/duplicate/reorder), partition directives, the separation of
// the drop counters, and the trace record/replay primitives they feed.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sim/cluster.h"
#include "src/sim/fault_plan.h"
#include "src/sim/trace.h"

namespace ctsim {
namespace {

class ProbeNode : public Node {
 public:
  ProbeNode(Cluster* cluster, std::string id) : Node(cluster, std::move(id)) {
    Handle("ping", [this](const Message&) {
      ++pings_;
      arrival_times_.push_back(this->cluster().loop().Now());
    });
  }

  int pings_ = 0;
  std::vector<Time> arrival_times_;
};

TEST(ClusterFaults, DuplicationDeliversTwiceToLiveNode) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.default_link.duplicate_probability = 1.0;
  cluster.InstallFaultPlan(plan);
  a->Send("b:1", "ping");
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 2);
  EXPECT_EQ(cluster.duplicated_messages(), 1u);
  EXPECT_EQ(cluster.plan_dropped_messages(), 0u);
  EXPECT_EQ(cluster.dropped_messages(), 0u);
}

TEST(ClusterFaults, DuplicationNeverResurrectsMessageToDeadNode) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.default_link.duplicate_probability = 1.0;
  plan.default_link.extra_delay_ms = 5;
  cluster.InstallFaultPlan(plan);
  a->Send("b:1", "ping");
  cluster.Crash("b:1");  // dies before either copy arrives
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 0);
  // Both the original and the duplicate count as dead-node drops — dying
  // before delivery beats any fault-plan scheduling.
  EXPECT_EQ(cluster.duplicated_messages(), 1u);
  EXPECT_EQ(cluster.dropped_messages(), 2u);
  EXPECT_EQ(cluster.plan_dropped_messages(), 0u);
}

TEST(ClusterFaults, ReorderingRespectsTheDeclaredBound) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.default_link.reorder_window_ms = 10;
  cluster.InstallFaultPlan(plan);
  const int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    a->Send("b:1", "ping");
  }
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, kMessages);
  // Every delivery lands inside [latency, latency + bound]; a bound of 10
  // with 50 draws virtually guarantees at least one actual displacement.
  for (Time at : b->arrival_times_) {
    EXPECT_GE(at, cluster.latency_ms());
    EXPECT_LE(at, cluster.latency_ms() + 10);
  }
  EXPECT_GT(*std::max_element(b->arrival_times_.begin(), b->arrival_times_.end()),
            cluster.latency_ms());
}

TEST(ClusterFaults, FlowStampsSurviveDuplicationAndReordering) {
  // Flow stamps are written at post time, before any fault draw, so a
  // duplicated message's copy inherits the originating span and a reordered
  // delivery keeps it — the flow DAG stays exact under an active FaultPlan.
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.default_link.duplicate_probability = 1.0;
  plan.default_link.reorder_window_ms = 10;
  cluster.InstallFaultPlan(plan);

  struct Delivered {
    uint64_t flow;
    uint64_t parent;
    uint64_t origin;
  };
  std::vector<Delivered> deliveries;
  cluster.SetFlowHooks(
      [] { return uint64_t{42}; },
      [&](uint64_t flow_id, uint64_t parent_flow, uint64_t origin_span, const Message&) {
        deliveries.push_back({flow_id, parent_flow, origin_span});
      });
  const int kMessages = 20;
  for (int i = 0; i < kMessages; ++i) {
    a->Send("b:1", "ping");
  }
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 2 * kMessages);  // every message duplicated
  ASSERT_EQ(deliveries.size(), static_cast<size_t>(2 * kMessages));
  std::vector<uint64_t> seen_ids;
  for (const Delivered& delivery : deliveries) {
    EXPECT_EQ(delivery.origin, 42u);  // both copies carry the post-time span
    EXPECT_EQ(delivery.parent, 0u);   // posted outside any delivery: DAG roots
    seen_ids.push_back(delivery.flow);
  }
  std::sort(seen_ids.begin(), seen_ids.end());
  EXPECT_EQ(std::unique(seen_ids.begin(), seen_ids.end()), seen_ids.end());
}

TEST(ClusterFaults, LinkDropsCountSeparatelyFromDeadNodeDrops) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  auto* c = cluster.AddNode<ProbeNode>("c:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.links[{"a:1", "b:1"}] = {/*drop_probability=*/1.0};
  cluster.InstallFaultPlan(plan);
  a->Send("b:1", "ping");  // plan-induced drop
  a->Send("c:1", "ping");  // delivered: only the a->b link is faulty
  cluster.Crash("c:1");
  a->Send("c:1", "ping");  // dead-node drop
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 0);
  EXPECT_EQ(c->pings_, 0);
  EXPECT_EQ(cluster.plan_dropped_messages(), 1u);
  EXPECT_EQ(cluster.dropped_messages(), 2u);  // the pre-crash send also dies in flight
}

TEST(ClusterFaults, PartitionHealRoundTrip) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  auto* c = cluster.AddNode<ProbeNode>("c:1");
  cluster.StartAll();
  cluster.PartitionNodes({"b:1"}, 100);
  EXPECT_TRUE(cluster.LinkCut("a:1", "b:1"));
  EXPECT_TRUE(cluster.LinkCut("b:1", "a:1"));  // cuts are symmetric
  EXPECT_FALSE(cluster.LinkCut("a:1", "c:1"));
  a->Send("b:1", "ping");                      // dropped: inside the window
  b->Send("a:1", "ping");                      // dropped: other direction
  a->Send("c:1", "ping");                      // unaffected link
  cluster.loop().Schedule(200, [&] {
    EXPECT_FALSE(cluster.LinkCut("a:1", "b:1"));  // healed
    a->Send("b:1", "ping");
  });
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 1);  // only the post-heal send
  EXPECT_EQ(a->pings_, 0);
  EXPECT_EQ(c->pings_, 1);
  EXPECT_EQ(cluster.plan_dropped_messages(), 2u);
  EXPECT_EQ(cluster.dropped_messages(), 0u);
}

TEST(ClusterFaults, OneWayPartitionCutsOnlyOutboundTraffic) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  PartitionDirective half_open;
  half_open.start_ms = 0;
  half_open.heal_ms = 100;
  half_open.group = {"b:1"};
  half_open.one_way = true;
  plan.partitions.push_back(half_open);
  cluster.InstallFaultPlan(plan);
  EXPECT_TRUE(cluster.LinkCut("b:1", "a:1"));   // outbound from the group: cut
  EXPECT_FALSE(cluster.LinkCut("a:1", "b:1"));  // inbound still flows
  b->Send("a:1", "ping");  // dropped: b can hear but not answer
  a->Send("b:1", "ping");  // delivered
  cluster.loop().Schedule(150, [&] { b->Send("a:1", "ping"); });  // healed
  cluster.loop().RunToCompletion();
  EXPECT_EQ(a->pings_, 1);
  EXPECT_EQ(b->pings_, 1);
  EXPECT_EQ(cluster.plan_dropped_messages(), 1u);
}

TEST(ClusterFaults, TimerSkewStretchesOnlyTheSkewedNodesClock) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.timer_skew_permille["b:1"] = 2000;  // b's clock runs at half speed
  cluster.InstallFaultPlan(plan);
  std::vector<Time> a_fired, b_fired;
  a->After(100, [&] { a_fired.push_back(cluster.loop().Now()); });
  b->After(100, [&] { b_fired.push_back(cluster.loop().Now()); });
  cluster.loop().RunToCompletion();
  ASSERT_EQ(a_fired.size(), 1u);
  ASSERT_EQ(b_fired.size(), 1u);
  EXPECT_EQ(a_fired[0], 100u);  // honest clock: fires on time
  EXPECT_EQ(b_fired[0], 200u);  // skewed: the same request lands twice as late
}

TEST(ClusterFaults, TimerSkewCompoundsAcrossEveryRearms) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.timer_skew_permille["b:1"] = 2000;
  cluster.InstallFaultPlan(plan);
  std::vector<Time> a_ticks, b_ticks;
  a->Every(50, [&] { a_ticks.push_back(cluster.loop().Now()); });
  b->Every(50, [&] { b_ticks.push_back(cluster.loop().Now()); });
  cluster.loop().RunFor(400);
  // Each re-arm re-applies the skew, so the drift accumulates round after
  // round instead of staying a constant offset.
  EXPECT_EQ(a_ticks, (std::vector<Time>{50, 100, 150, 200, 250, 300, 350, 400}));
  EXPECT_EQ(b_ticks, (std::vector<Time>{100, 200, 300, 400}));
}

TEST(ClusterFaults, PlanPartitionDirectivesApplyAtTheDeclaredTimes) {
  Cluster cluster(7);
  auto* a = cluster.AddNode<ProbeNode>("a:1");
  auto* b = cluster.AddNode<ProbeNode>("b:1");
  cluster.StartAll();
  FaultPlan plan;
  plan.partitions.push_back({/*start_ms=*/50, /*heal_ms=*/150, {"b:1"}});
  cluster.InstallFaultPlan(plan);
  a->Send("b:1", "ping");                            // before the cut
  cluster.loop().Schedule(100, [&] { a->Send("b:1", "ping"); });  // inside
  cluster.loop().Schedule(150, [&] { a->Send("b:1", "ping"); });  // heal is exclusive
  cluster.loop().RunToCompletion();
  EXPECT_EQ(b->pings_, 2);
  EXPECT_EQ(cluster.plan_dropped_messages(), 1u);
}

TEST(ClusterFaults, FaultDrawsDoNotPerturbTheWorkloadRng) {
  // Two identically-seeded clusters, one with heavy link faults: the
  // workload-visible RNG stream must not shift (faults draw from their own
  // generator), so the fault-free cluster's draws match a third plain run.
  Cluster plain_a(99), plain_b(99), faulty(99);
  std::vector<uint64_t> draws_a, draws_b, draws_faulty;
  for (int i = 0; i < 8; ++i) {
    draws_a.push_back(plain_a.rng().Uniform(0, 1000));
    draws_b.push_back(plain_b.rng().Uniform(0, 1000));
  }
  FaultPlan plan;
  plan.default_link.drop_probability = 0.5;
  plan.default_link.reorder_window_ms = 7;
  plan.default_link.duplicate_probability = 0.5;
  faulty.InstallFaultPlan(plan);
  auto* a = faulty.AddNode<ProbeNode>("a:1");
  faulty.AddNode<ProbeNode>("b:1");
  faulty.StartAll();
  for (int i = 0; i < 20; ++i) {
    a->Send("b:1", "ping");
  }
  faulty.loop().RunToCompletion();
  for (int i = 0; i < 8; ++i) {
    draws_faulty.push_back(faulty.rng().Uniform(0, 1000));
  }
  EXPECT_EQ(draws_a, draws_b);
  EXPECT_EQ(draws_faulty, draws_a);
}

TEST(Trace, SerializeParseRoundTripPreservesHash) {
  Trace trace;
  trace.Append({1, "deliver", "a:1>b:1 ping"});
  trace.Append({2, "timer", "b:1"});
  trace.Append({5, "crash", "b:1"});
  Trace parsed = Trace::Parse(trace.Serialize());
  EXPECT_EQ(parsed.size(), trace.size());
  EXPECT_EQ(parsed.Hash(), trace.Hash());
}

TEST(Trace, ReplayOfIdenticalRunSucceedsAndDivergenceThrows) {
  Trace recording;
  recording.Append({1, "deliver", "a:1>b:1 ping"});
  recording.Append({2, "timer", "b:1"});

  TraceRecorder replay(&recording);
  replay.Record(1, "deliver", "a:1>b:1 ping");
  replay.Record(2, "timer", "b:1");
  EXPECT_NO_THROW(replay.FinishReplay());

  TraceRecorder diverging(&recording);
  EXPECT_THROW(diverging.Record(1, "deliver", "a:1>c:1 ping"), TraceDivergence);

  TraceRecorder incomplete(&recording);
  incomplete.Record(1, "deliver", "a:1>b:1 ping");
  EXPECT_THROW(incomplete.FinishReplay(), TraceDivergence);
}

}  // namespace
}  // namespace ctsim
