// Tests for the deterministic event loop: total ordering, cancellation,
// owner-liveness filtering, reentrant draining, and determinism.
#include "src/sim/event_loop.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace ctsim {
namespace {

TEST(EventLoop, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(30, [&] { order.push_back(3); });
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(20, [&] { order.push_back(2); });
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.Now(), 30u);
}

TEST(EventLoop, TiesBreakBySchedulingOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.Schedule(10, [&order, i] { order.push_back(i); });
  }
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  EventId id = loop.Schedule(10, [&] { ran = true; });
  loop.Cancel(id);
  loop.RunToCompletion();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, DeadOwnerEventsAreSkipped) {
  InternTable names;
  EventLoop loop;
  bool alive_ran = false;
  bool dead_ran = false;
  const NodeId alive = names.Intern("alive");
  loop.SetOwnerAliveCheck([alive](NodeId owner) { return owner == alive; });
  loop.Schedule(5, [&] { alive_ran = true; }, alive);
  loop.Schedule(5, [&] { dead_ran = true; }, names.Intern("dead"));
  loop.RunToCompletion();
  EXPECT_TRUE(alive_ran);
  EXPECT_FALSE(dead_ran);
  EXPECT_EQ(loop.skipped_dead_owner_events(), 1u);
}

TEST(EventLoop, OwnerCheckedAtFireTimeNotScheduleTime) {
  InternTable names;
  EventLoop loop;
  bool node_alive = true;
  bool ran = false;
  loop.SetOwnerAliveCheck([&](NodeId) { return node_alive; });
  loop.Schedule(10, [&] { ran = true; }, names.Intern("node"));
  loop.Schedule(5, [&] { node_alive = false; });  // crash before the timer fires
  loop.RunToCompletion();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, RunUntilAdvancesClockWithoutEvents) {
  EventLoop loop;
  loop.RunUntil(500);
  EXPECT_EQ(loop.Now(), 500u);
}

TEST(EventLoop, RunUntilStopsAtBoundary) {
  EventLoop loop;
  std::vector<int> order;
  loop.Schedule(10, [&] { order.push_back(1); });
  loop.Schedule(100, [&] { order.push_back(2); });
  loop.RunUntil(50);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(loop.Now(), 50u);
  loop.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, ReentrantRunUntilDrainsNestedWindow) {
  // This is the pre-read trigger's wait: an event handler drains a window of
  // future events before resuming.
  EventLoop loop;
  std::vector<std::string> order;
  loop.Schedule(10, [&] {
    order.push_back("outer-begin");
    loop.Schedule(5, [&] { order.push_back("nested"); });
    loop.RunFor(20);  // processes events up to t=30
    order.push_back("outer-end");
  });
  loop.Schedule(100, [&] { order.push_back("tail"); });
  loop.RunToCompletion();
  EXPECT_EQ(order,
            (std::vector<std::string>{"outer-begin", "nested", "outer-end", "tail"}));
}

TEST(EventLoop, SchedulingInsidehandlersWorks) {
  EventLoop loop;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) {
      loop.Schedule(10, step);
    }
  };
  loop.Schedule(10, step);
  loop.RunToCompletion();
  EXPECT_EQ(chain, 5);
  EXPECT_EQ(loop.Now(), 50u);
}

TEST(EventLoop, DeterministicAcrossRuns) {
  auto run = [] {
    EventLoop loop;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      loop.Schedule((i * 7) % 13, [&order, i] { order.push_back(i); });
    }
    loop.RunToCompletion();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(EventLoop, CountsExecutedEvents) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) {
    loop.Schedule(i, [] {});
  }
  loop.RunToCompletion();
  EXPECT_EQ(loop.executed_events(), 7u);
  EXPECT_EQ(loop.pending_events(), 0u);
}

}  // namespace
}  // namespace ctsim
