// Property tests for the coverage-guided workload fuzzer (src/fuzz/).
//
// Determinism: the fuzz phase is part of the campaign's reproducibility
// contract, so the same ⟨seed, budget⟩ must yield a byte-identical corpus,
// coverage set, and SystemReport at jobs=1 and jobs=4 on all five systems.
//
// Replay: a corpus saved to disk reloads bit-exactly, and re-executing each
// entry reproduces the trace hash recorded at admission time.
//
// Fail-loud: a truncated, corrupted, or missing corpus entry makes LoadFrom
// throw an error naming the offending file — a silently different corpus
// would poison every later mutation draw.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/core/crashtuner.h"
#include "src/core/report_writer.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/fuzz_phase.h"
#include "src/fuzz/fuzzer.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace {

using ctcore::CrashTunerDriver;
using ctcore::DriverOptions;
using ctcore::SystemReport;
using ctfuzz::Corpus;
using ctfuzz::FuzzPhaseOptions;
using ctfuzz::FuzzResult;

// Enough for every system to reach at least one pair beyond the fixed script
// (HDFS is the straggler: its replay-divergence pair needs a kill landing in
// a narrow editlog window).
constexpr int kBudget = 48;

std::vector<std::unique_ptr<ctcore::SystemUnderTest>> AllSystems() {
  std::vector<std::unique_ptr<ctcore::SystemUnderTest>> systems;
  systems.push_back(std::make_unique<ctyarn::YarnSystem>());
  systems.push_back(std::make_unique<cthdfs::HdfsSystem>());
  systems.push_back(std::make_unique<cthbase::HBaseSystem>());
  systems.push_back(std::make_unique<ctzk::ZkSystem>());
  systems.push_back(std::make_unique<ctcass::CassSystem>());
  return systems;
}

std::string Serialize(SystemReport report) {
  report.analysis_wall_seconds = 0;
  report.test_wall_seconds = 0;
  return ctcore::ReportToJson(report);
}

// Full pipeline + fuzz phase at the given jobs level.
FuzzResult PipelineWithFuzz(const ctcore::SystemUnderTest& system, int jobs,
                            SystemReport* report, const std::string& corpus_dir = "") {
  DriverOptions options;
  options.jobs = jobs;
  *report = CrashTunerDriver().Run(system, options);
  FuzzPhaseOptions fuzz;
  fuzz.runs = kBudget;
  fuzz.jobs = jobs;
  fuzz.corpus_dir = corpus_dir;
  return ctfuzz::RunFuzzPhase(system, report, fuzz);
}

void ExpectSameCorpus(const Corpus& a, const Corpus& b, const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (size_t i = 0; i < a.size(); ++i) {
    // Byte-identical op sequences, not just equal hashes: the serialized
    // wire form is what mutation draws and disk storage consume.
    EXPECT_EQ(a[i].workload.Serialize(), b[i].workload.Serialize()) << label << " entry " << i;
    EXPECT_EQ(a[i].trace_hash, b[i].trace_hash) << label << " entry " << i;
    EXPECT_EQ(a[i].run_index, b[i].run_index) << label << " entry " << i;
    EXPECT_EQ(a[i].new_keys, b[i].new_keys) << label << " entry " << i;
  }
}

TEST(FuzzProperty, SameSeedIsByteIdenticalAcrossJobsLevels) {
  for (const auto& system : AllSystems()) {
    SystemReport serial_report, parallel_report;
    FuzzResult serial = PipelineWithFuzz(*system, /*jobs=*/1, &serial_report);
    FuzzResult parallel = PipelineWithFuzz(*system, /*jobs=*/4, &parallel_report);

    ExpectSameCorpus(serial.corpus, parallel.corpus, system->name());
    EXPECT_EQ(serial.coverage.keys(), parallel.coverage.keys()) << system->name();
    EXPECT_EQ(serial.new_keys, parallel.new_keys) << system->name();
    EXPECT_EQ(serial.trace_hash, parallel.trace_hash) << system->name();
    EXPECT_EQ(serial.runs, parallel.runs) << system->name();
    EXPECT_EQ(serial.new_coverage_runs, parallel.new_coverage_runs) << system->name();
    EXPECT_EQ(serial.bug_runs, parallel.bug_runs) << system->name();
    EXPECT_EQ(Serialize(serial_report), Serialize(parallel_report))
        << system->name() << ": fuzzed report differs between jobs=1 and jobs=4";
  }
}

TEST(FuzzProperty, SavedCorpusReloadsAndReplaysExactly) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "ct_fuzz_corpus_test";
  std::filesystem::remove_all(root);
  for (const auto& system : AllSystems()) {
    std::string stem = system->name();
    for (char& c : stem) {
      if (c == '/' || c == ' ') {
        c = '_';
      }
    }
    const std::string dir = (root / stem).string();
    SystemReport report;
    FuzzResult result = PipelineWithFuzz(*system, /*jobs=*/1, &report, dir);
    ASSERT_FALSE(result.corpus.empty()) << system->name() << ": nothing reached new coverage";

    Corpus loaded = Corpus::LoadFrom(dir);
    ExpectSameCorpus(result.corpus, loaded, system->name() + " (reloaded)");

    // Re-execute every entry from disk: the trace hash recorded at admission
    // must reproduce, proving the corpus alone pins the whole run.
    EXPECT_NO_THROW(ctfuzz::WorkloadFuzzer().ReplayCorpus(
        *system, report.crash_points.PointIds(), /*io_points=*/{}, loaded))
        << system->name();
  }
  std::filesystem::remove_all(root);
}

TEST(FuzzProperty, TruncatedOrCorruptedCorpusFailsLoudly) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ct_fuzz_corrupt_test";
  std::filesystem::remove_all(dir);
  ctzk::ZkSystem system;
  SystemReport report;
  FuzzResult result = PipelineWithFuzz(system, /*jobs=*/1, &report, dir.string());
  ASSERT_FALSE(result.corpus.empty());

  // Baseline: the untouched corpus loads.
  ASSERT_NO_THROW(Corpus::LoadFrom(dir.string()));

  const std::filesystem::path entry = dir / "entry-0000.txt";
  ASSERT_TRUE(std::filesystem::exists(entry));
  std::string original;
  {
    std::ifstream in(entry);
    original.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }

  // Truncation: drop the second half of the entry (checksum line included).
  {
    std::ofstream out(entry, std::ios::trunc);
    out << original.substr(0, original.size() / 2);
  }
  EXPECT_THROW(Corpus::LoadFrom(dir.string()), std::runtime_error);

  // Corruption: full length, one op byte flipped — the checksum must catch it.
  {
    std::string corrupted = original;
    const auto pos = corrupted.find("op ");
    ASSERT_NE(pos, std::string::npos);
    corrupted[pos + 3] = corrupted[pos + 3] == '1' ? '2' : '1';
    std::ofstream out(entry, std::ios::trunc);
    out << corrupted;
  }
  EXPECT_THROW(Corpus::LoadFrom(dir.string()), std::runtime_error);

  // A manifest-listed entry that is gone entirely is as loud.
  {
    std::ofstream out(entry, std::ios::trunc);
    out << original;  // restore first, then remove the file
  }
  std::filesystem::remove(entry);
  EXPECT_THROW(Corpus::LoadFrom(dir.string()), std::runtime_error);

  std::filesystem::remove_all(dir);
}

}  // namespace
