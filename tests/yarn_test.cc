// Mini-YARN tests: fault-free behaviour, the full CrashTuner pipeline on the
// trunk and legacy builds, and per-bug detection checks (Table 5's YARN rows
// plus the Fig. 2 / Fig. 3 legacy reproductions).
#include <gtest/gtest.h>

#include "src/core/crashtuner.h"
#include "src/core/executor.h"
#include "src/systems/yarn/yarn_system.h"

namespace ctyarn {
namespace {

using ctcore::CrashTunerDriver;
using ctcore::Executor;
using ctcore::SystemReport;

const SystemReport& TrunkReport() {
  static const SystemReport* report = [] {
    YarnSystem yarn(YarnMode::kTrunk);
    return new SystemReport(CrashTunerDriver().Run(yarn));
  }();
  return *report;
}

const SystemReport& LegacyReport() {
  static const SystemReport* report = [] {
    YarnSystem yarn(YarnMode::kLegacy);
    return new SystemReport(CrashTunerDriver().Run(yarn));
  }();
  return *report;
}

bool FoundBug(const SystemReport& report, const std::string& id) {
  for (const auto& bug : report.bugs) {
    if (bug.bug_id == id) {
      return true;
    }
  }
  return false;
}

const ctcore::DetectedBug* GetBug(const SystemReport& report, const std::string& id) {
  for (const auto& bug : report.bugs) {
    if (bug.bug_id == id) {
      return &bug;
    }
  }
  return nullptr;
}

TEST(YarnFaultFree, JobCompletesWithoutFaults) {
  YarnSystem yarn;
  auto run = yarn.NewRun(3, 42);
  ctcore::RunOutcome outcome = Executor::Execute(*run, nullptr);
  EXPECT_TRUE(outcome.finished);
  EXPECT_FALSE(outcome.failed);
  EXPECT_FALSE(outcome.hang);
  EXPECT_FALSE(run->cluster().cluster_down());
}

TEST(YarnFaultFree, NoExceptionsInCleanRun) {
  YarnSystem yarn;
  auto run = yarn.NewRun(3, 43);
  Executor::Execute(*run, nullptr);
  EXPECT_TRUE(Executor::ExceptionsIn(run->cluster().logs()).empty());
}

TEST(YarnFaultFree, DeterministicForSameSeed) {
  YarnSystem yarn;
  auto run_once = [&](uint64_t seed) {
    auto run = yarn.NewRun(3, seed);
    Executor::Execute(*run, nullptr);
    std::vector<std::string> lines;
    for (const auto& instance : run->cluster().logs().instances()) {
      lines.push_back(std::to_string(instance.time_ms) + "|" + instance.text);
    }
    return lines;
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

TEST(YarnFaultFree, ScalesWithWorkloadSize) {
  YarnSystem yarn;
  auto small = yarn.NewRun(2, 5);
  auto big = yarn.NewRun(8, 5);
  ctcore::RunOutcome small_outcome = Executor::Execute(*small, nullptr);
  ctcore::RunOutcome big_outcome = Executor::Execute(*big, nullptr);
  EXPECT_TRUE(small_outcome.finished);
  EXPECT_TRUE(big_outcome.finished);
  EXPECT_GT(big->cluster().logs().instances().size(),
            small->cluster().logs().instances().size());
}

TEST(YarnPipeline, LogAnalysisMatchesEveryInstance) {
  const SystemReport& report = TrunkReport();
  EXPECT_EQ(report.log_result.instances_matched, report.log_result.instances_total);
  EXPECT_EQ(report.log_result.instances_mismatched, 0);
}

TEST(YarnPipeline, SeedTypesCoverTable2Stars) {
  const auto& seeds = TrunkReport().log_result.seed_types;
  EXPECT_TRUE(seeds.count("yarn.api.records.NodeId"));
  EXPECT_TRUE(seeds.count("yarn.api.records.ContainerId"));
  EXPECT_TRUE(seeds.count("yarn.api.records.ApplicationId"));
  EXPECT_TRUE(seeds.count("yarn.api.records.ApplicationAttemptId"));
  EXPECT_TRUE(seeds.count("mapreduce.v2.api.records.TaskAttemptId"));
}

TEST(YarnPipeline, InferenceDerivesTable2Groups) {
  const auto& metainfo = TrunkReport().metainfo;
  // Derived, not logged: PB impls via subtyping, state machines via the
  // collection / containing-class rules.
  EXPECT_TRUE(metainfo.IsMetaInfoType("yarn.api.records.impl.pb.NodeIdPBImpl"));
  EXPECT_TRUE(metainfo.IsMetaInfoType("HashMap<NodeId,SchedulerNode>"));
  EXPECT_TRUE(metainfo.IsMetaInfoType("yarn.server.resourcemanager.rmcontainer.RMContainerImpl"));
  EXPECT_FALSE(metainfo.IsMetaInfoType("java.lang.String"));
  EXPECT_FALSE(metainfo.IsMetaInfoType("yarn.server.scheduler.SchedulerNode"));
}

TEST(YarnPipeline, Table10ShapeHolds) {
  const SystemReport& report = TrunkReport();
  // Meta-info is a small fraction of the universe; crash points are a small
  // fraction of meta-info accesses; dynamic points are smaller still.
  EXPECT_GT(report.total_types, 500);
  EXPECT_LT(report.metainfo_types, report.total_types / 10);
  EXPECT_LT(report.metainfo_access_points, report.total_access_points / 20);
  EXPECT_LT(report.static_crash_points, report.metainfo_access_points);
  EXPECT_LT(report.dynamic_crash_points, report.static_crash_points);
  EXPECT_GT(report.dynamic_crash_points, 10);
}

TEST(YarnPipeline, OptimizationsPruneSomething) {
  const SystemReport& report = TrunkReport();
  EXPECT_GT(report.pruned_unused, 0);
  EXPECT_GT(report.pruned_sanity_checked, 0);
  EXPECT_GT(report.crash_points.promotion_sites, 40);  // the 43-site structure
}

TEST(YarnPipeline, EveryDynamicPointGetsOneInjectionRun) {
  const SystemReport& report = TrunkReport();
  EXPECT_EQ(report.injections.size(),
            static_cast<size_t>(report.dynamic_crash_points));
  for (const auto& injection : report.injections) {
    EXPECT_TRUE(injection.point_hit) << injection.location;
  }
}

// Per-bug detection: the ten Table 5 YARN/MR rows, trunk build.
class YarnTrunkBug : public ::testing::TestWithParam<const char*> {};
TEST_P(YarnTrunkBug, DetectedAndTriaged) {
  EXPECT_TRUE(FoundBug(TrunkReport(), GetParam())) << GetParam();
}
INSTANTIATE_TEST_SUITE_P(Table5, YarnTrunkBug,
                         ::testing::Values("YARN-9238", "YARN-9165", "YARN-9193", "YARN-9164",
                                           "YARN-9201", "YARN-9194", "YARN-8650", "YARN-9248",
                                           "YARN-8649", "MR-7178"));

TEST(YarnBugDetails, Yarn9164IsClusterDown) {
  const ctcore::DetectedBug* bug = GetBug(TrunkReport(), "YARN-9164");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->scenario, "pre-read");
  EXPECT_TRUE(bug->sample_outcome.cluster_down);
  // The "(2)" of Table 5: two dynamic contexts expose the same root cause.
  EXPECT_GE(bug->exposing_points.size(), 2u);
}

TEST(YarnBugDetails, Yarn8650GroupsTwoPoints) {
  const ctcore::DetectedBug* bug = GetBug(TrunkReport(), "YARN-8650");
  ASSERT_NE(bug, nullptr);
  EXPECT_GE(bug->exposing_points.size(), 2u);
}

TEST(YarnBugDetails, Mr7178IsPostWrite) {
  const ctcore::DetectedBug* bug = GetBug(TrunkReport(), "MR-7178");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->scenario, "post-write");
}

TEST(YarnBugDetails, TrunkDoesNotReportFixedLegacyBugs) {
  EXPECT_FALSE(FoundBug(TrunkReport(), "YARN-5918"));
  EXPECT_FALSE(FoundBug(TrunkReport(), "MR-3858"));
}

TEST(YarnLegacy, ReproducesYarn5918AndMr3858) {
  // §4.1.1: reproducing the studied bugs on the releases that contained them.
  EXPECT_TRUE(FoundBug(LegacyReport(), "YARN-5918"));
  EXPECT_TRUE(FoundBug(LegacyReport(), "MR-3858"));
}

TEST(YarnLegacy, Mr3858IsTheFig3Hang) {
  const ctcore::DetectedBug* bug = GetBug(LegacyReport(), "MR-3858");
  ASSERT_NE(bug, nullptr);
  EXPECT_EQ(bug->scenario, "post-write");
  EXPECT_TRUE(bug->sample_outcome.hang);
}

TEST(YarnLegacy, StillFindsAllTrunkBugs) {
  for (const char* id : {"YARN-9238", "YARN-9164", "YARN-9201", "MR-7178"}) {
    EXPECT_TRUE(FoundBug(LegacyReport(), id)) << id;
  }
}

TEST(YarnInjections, SomePointsAreBenign) {
  // Not every crash point exposes an error (§4.1.2's non-exposing dynamic
  // point): the curl paths and several writes must stay clean.
  int benign = 0;
  for (const auto& injection : TrunkReport().injections) {
    if (injection.injected && !injection.outcome.IsBug() &&
        !injection.outcome.timeout_issue) {
      ++benign;
    }
  }
  EXPECT_GE(benign, 3);
}

TEST(YarnInjections, SomeValuesAreUnresolvable) {
  // The jvm-record write fires before any log line mentions the value: the
  // stash cannot resolve it and no fault is injected (§3.2.2's "simply
  // returns" path).
  int unresolved = 0;
  for (const auto& injection : TrunkReport().injections) {
    if (injection.point_hit && !injection.injected) {
      ++unresolved;
    }
  }
  EXPECT_GE(unresolved, 1);
}

}  // namespace
}  // namespace ctyarn
