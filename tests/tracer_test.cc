// Tests for the runtime tracer: call-stack capture, profile recording,
// trigger-once semantics, and the IO hooks.
#include "src/runtime/tracer.h"

#include <gtest/gtest.h>

namespace ctrt {
namespace {

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { AccessTracer::Instance().Reset(TraceMode::kOff); }
  void TearDown() override { AccessTracer::Instance().Reset(TraceMode::kOff); }
};

TEST_F(TracerTest, OffModeIgnoresHooks) {
  auto& tracer = AccessTracer::Instance();
  tracer.PreRead(1, "v");
  tracer.PostWrite(2, "w");
  EXPECT_TRUE(tracer.dynamic_access_points().empty());
}

TEST_F(TracerTest, StackCaptureIsBounded) {
  auto& tracer = AccessTracer::Instance();
  ScopedFrame f1("m1");
  ScopedFrame f2("m2");
  ScopedFrame f3("m3");
  ScopedFrame f4("m4");
  ScopedFrame f5("m5");
  ScopedFrame f6("m6");
  ScopedFrame f7("m7");
  CallStack stack = tracer.CaptureStack();
  ASSERT_EQ(stack.frames.size(), static_cast<size_t>(CallStack::kMaxDepth));
  // Innermost first, then callers.
  EXPECT_EQ(stack.frames.front(), "m7");
  EXPECT_EQ(stack.Key(), "m7<m6<m5<m4<m3");
}

TEST_F(TracerTest, ScopedFramePopsOnScopeExit) {
  auto& tracer = AccessTracer::Instance();
  {
    ScopedFrame f("outer");
    {
      ScopedFrame g("inner");
      EXPECT_EQ(tracer.CaptureStack().Key(), "inner<outer");
    }
    EXPECT_EQ(tracer.CaptureStack().Key(), "outer");
  }
  EXPECT_EQ(tracer.CaptureStack().Key(), "");
}

TEST_F(TracerTest, ProfileRecordsOnlyArmedPoints) {
  auto& tracer = AccessTracer::Instance();
  tracer.Reset(TraceMode::kProfile);
  tracer.SetProfiledPoints({7}, {});
  ScopedFrame f("method");
  tracer.PreRead(7, "a");
  tracer.PreRead(7, "b");  // same dynamic point, counted twice
  tracer.PreRead(8, "c");  // not armed
  ASSERT_EQ(tracer.dynamic_access_points().size(), 1u);
  const auto& [point, hits] = *tracer.dynamic_access_points().begin();
  EXPECT_EQ(point.point_id, 7);
  EXPECT_EQ(point.stack_key, "method");
  EXPECT_EQ(hits, 2);
}

TEST_F(TracerTest, DistinctStacksYieldDistinctDynamicPoints) {
  auto& tracer = AccessTracer::Instance();
  tracer.Reset(TraceMode::kProfile);
  tracer.SetProfiledPoints({7}, {});
  {
    ScopedFrame f("caller_a");
    tracer.PreRead(7, "v");
  }
  {
    ScopedFrame f("caller_b");
    tracer.PreRead(7, "v");
  }
  EXPECT_EQ(tracer.dynamic_access_points().size(), 2u);
}

TEST_F(TracerTest, TriggerFiresOnceAtMatchingPointAndStack) {
  auto& tracer = AccessTracer::Instance();
  tracer.Reset(TraceMode::kTrigger);
  int fired = 0;
  std::string value;
  tracer.ArmAccessTrigger({7, "target"}, [&](const AccessEvent& event) {
    ++fired;
    value = event.value;
  });
  {
    ScopedFrame f("other");
    tracer.PreRead(7, "wrong-stack");
  }
  EXPECT_EQ(fired, 0);
  {
    ScopedFrame f("target");
    tracer.PreRead(7, "v1");
    tracer.PreRead(7, "v2");  // second hit ignored: one injection per run
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(value, "v1");
  EXPECT_TRUE(tracer.trigger_fired());
  ASSERT_TRUE(tracer.fired_event().has_value());
  EXPECT_EQ(tracer.fired_event()->point_id, 7);
}

TEST_F(TracerTest, IoProfileRecordsBeginSideOnly) {
  auto& tracer = AccessTracer::Instance();
  tracer.Reset(TraceMode::kProfile);
  tracer.SetProfiledPoints({}, {3});
  ScopedFrame f("io_site");
  tracer.IoBegin(3);
  tracer.IoEnd(3);
  ASSERT_EQ(tracer.dynamic_io_points().size(), 1u);
  EXPECT_EQ(tracer.dynamic_io_points().begin()->second, 1);
}

TEST_F(TracerTest, IoTriggerSelectsBeforeOrAfterSide) {
  auto& tracer = AccessTracer::Instance();
  tracer.Reset(TraceMode::kTrigger);
  int fired_before = 0;
  tracer.ArmIoTrigger({3, "io_site"}, /*before=*/true,
                      [&](const AccessEvent&) { ++fired_before; });
  {
    ScopedFrame f("io_site");
    tracer.IoEnd(3);  // wrong side
    EXPECT_EQ(fired_before, 0);
    tracer.IoBegin(3);
    EXPECT_EQ(fired_before, 1);
  }

  tracer.Reset(TraceMode::kTrigger);
  int fired_after = 0;
  tracer.ArmIoTrigger({3, "io_site"}, /*before=*/false,
                      [&](const AccessEvent&) { ++fired_after; });
  {
    ScopedFrame f("io_site");
    tracer.IoBegin(3);
    EXPECT_EQ(fired_after, 0);
    tracer.IoEnd(3);
    EXPECT_EQ(fired_after, 1);
  }
}

TEST_F(TracerTest, ResetClearsEverything) {
  auto& tracer = AccessTracer::Instance();
  tracer.Reset(TraceMode::kProfile);
  tracer.SetProfiledPoints({1}, {});
  tracer.PreRead(1, "v");
  EXPECT_FALSE(tracer.dynamic_access_points().empty());
  tracer.Reset(TraceMode::kOff);
  EXPECT_TRUE(tracer.dynamic_access_points().empty());
  EXPECT_FALSE(tracer.trigger_fired());
  EXPECT_EQ(tracer.hook_firings(), 0u);
}

}  // namespace
}  // namespace ctrt
