// Tests for the program model and the catalog synthesizer.
#include <gtest/gtest.h>

#include "src/model/catalog.h"
#include "src/model/program_model.h"

namespace ctmodel {
namespace {

ProgramModel SmallModel() {
  ProgramModel model("test");
  AddBaseTypes(&model);
  TypeDecl base;
  base.name = "A";
  model.AddType(base);
  TypeDecl sub;
  sub.name = "B";
  sub.supertype = "A";
  model.AddType(sub);
  TypeDecl subsub;
  subsub.name = "C";
  subsub.supertype = "B";
  model.AddType(subsub);
  TypeDecl coll;
  coll.name = "List<A>";
  coll.element_types = {"A"};
  model.AddType(coll);
  FieldDecl field;
  field.clazz = "Holder";
  field.name = "a";
  field.type = "A";
  model.AddField(field);
  return model;
}

TEST(ProgramModel, SubtypeTransitivity) {
  ProgramModel model = SmallModel();
  EXPECT_TRUE(model.IsSubtypeOf("C", "A"));
  EXPECT_TRUE(model.IsSubtypeOf("B", "A"));
  EXPECT_TRUE(model.IsSubtypeOf("A", "A"));
  EXPECT_FALSE(model.IsSubtypeOf("A", "B"));
}

TEST(ProgramModel, SubtypesAndCollections) {
  ProgramModel model = SmallModel();
  EXPECT_EQ(model.SubtypesOf("A"), (std::vector<std::string>{"B"}));
  EXPECT_EQ(model.CollectionsOf("A"), (std::vector<std::string>{"List<A>"}));
  EXPECT_TRUE(model.CollectionsOf("C").empty());
}

TEST(ProgramModel, FieldIdDerivedFromClassAndName) {
  ProgramModel model = SmallModel();
  const FieldDecl* field = model.FindField("Holder.a");
  ASSERT_NE(field, nullptr);
  EXPECT_EQ(field->type, "A");
  EXPECT_EQ(model.FieldsOf("Holder").size(), 1u);
}

TEST(ProgramModel, AccessPointIdsAreSequential) {
  ProgramModel model = SmallModel();
  AccessPointDecl point;
  point.field_id = "Holder.a";
  point.kind = AccessKind::kRead;
  int first = model.AddAccessPoint(point);
  int second = model.AddAccessPoint(point);
  EXPECT_EQ(second, first + 1);
  EXPECT_EQ(model.PointsOn("Holder.a").size(), 2u);
  EXPECT_EQ(model.access_point(first).field_id, "Holder.a");
}

TEST(ProgramModel, IoCounts) {
  ProgramModel model = SmallModel();
  TypeDecl stream;
  stream.name = "Stream";
  stream.closeable = true;
  model.AddType(stream);
  model.AddIoMethod({"Stream", "write"});
  IoPointDecl point;
  point.io_class = "Stream";
  point.io_method = "write";
  point.callsite = "X.y";
  model.AddIoPoint(point);
  EXPECT_EQ(model.NumIoClasses(), 1);
  EXPECT_EQ(model.NumIoMethods(), 1);
  EXPECT_EQ(model.NumIoPoints(), 1);
}

CatalogSpec TestSpec() {
  CatalogSpec spec;
  spec.packages = {"p.q", "r.s"};
  spec.stems = {"Foo", "Bar"};
  spec.suffixes = {"Impl", "Service"};
  spec.num_classes = 50;
  spec.metainfo_field_types = {"A"};
  spec.holders_per_metainfo_type = 3;
  spec.seed = 99;
  return spec;
}

TEST(Catalog, DeterministicForSameSeed) {
  ProgramModel a("a");
  TypeDecl meta;
  meta.name = "A";
  a.AddType(meta);
  PopulateCatalog(&a, TestSpec());

  ProgramModel b("b");
  b.AddType(meta);
  PopulateCatalog(&b, TestSpec());

  ASSERT_EQ(a.NumTypes(), b.NumTypes());
  ASSERT_EQ(a.NumAccessPoints(), b.NumAccessPoints());
  for (int i = 0; i < a.NumTypes(); ++i) {
    EXPECT_EQ(a.types()[i].name, b.types()[i].name);
  }
}

TEST(Catalog, ProducesHoldersWithMetaInfoFields) {
  ProgramModel model("m");
  TypeDecl meta;
  meta.name = "A";
  model.AddType(meta);
  PopulateCatalog(&model, TestSpec());
  int holders = 0;
  for (const auto& field : model.fields()) {
    if (field.type == "A") {
      ++holders;
    }
  }
  EXPECT_EQ(holders, 3);
}

TEST(Catalog, EntriesAreSyntheticAndCarryPruningAttributes) {
  ProgramModel model("m");
  TypeDecl meta;
  meta.name = "A";
  model.AddType(meta);
  PopulateCatalog(&model, TestSpec());
  int synthetic = 0;
  int unused = 0;
  int sanity = 0;
  for (const auto& point : model.access_points()) {
    EXPECT_TRUE(point.synthetic);
    EXPECT_FALSE(point.executable);
    ++synthetic;
    unused += point.value_unused ? 1 : 0;
    sanity += point.sanity_checked ? 1 : 0;
  }
  EXPECT_GT(synthetic, 50);
  EXPECT_GT(unused, 0);
  EXPECT_GT(sanity, 0);
}

TEST(Catalog, SomeClassesAreCloseable) {
  ProgramModel model("m");
  TypeDecl meta;
  meta.name = "A";
  model.AddType(meta);
  CatalogSpec spec = TestSpec();
  spec.num_classes = 200;
  PopulateCatalog(&model, spec);
  EXPECT_GT(model.NumIoClasses(), 0);
  EXPECT_GT(model.NumIoPoints(), 0);
}

TEST(Catalog, BaseTypesAreMarked) {
  ProgramModel model("m");
  AddBaseTypes(&model);
  const TypeDecl* str = model.FindType("java.lang.String");
  ASSERT_NE(str, nullptr);
  EXPECT_TRUE(str->is_base);
  const TypeDecl* file = model.FindType("java.io.File");
  ASSERT_NE(file, nullptr);
  EXPECT_TRUE(file->is_base);
}

}  // namespace
}  // namespace ctmodel
