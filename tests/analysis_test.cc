// Tests for the offline analyses: pattern matching, the Fig. 5 log-analysis
// walkthrough, the Definition 2 type closure, and crash-point identification
// with the Table 3 keyword table and the three pruning optimizations.
#include <gtest/gtest.h>

#include "src/analysis/crash_point_analysis.h"
#include "src/analysis/log_analysis.h"
#include "src/analysis/metainfo_inference.h"
#include "src/logging/statement.h"
#include "src/common/strings.h"
#include "src/model/catalog.h"

namespace ctanalysis {
namespace {

using ctlog::Level;
using ctlog::StatementRegistry;
using ctmodel::AccessKind;
using ctmodel::AccessPointDecl;
using ctmodel::FieldDecl;
using ctmodel::LogArg;
using ctmodel::LogBinding;
using ctmodel::ProgramModel;
using ctmodel::TypeDecl;

// --- PatternMatcher -----------------------------------------------------------

TEST(PatternMatcher, MatchesInstanceToItsStatement) {
  auto& registry = StatementRegistry::Instance();
  int id = registry.Register(Level::kInfo, "Matcher test alpha {} beta {}", "M.a");
  registry.Register(Level::kInfo, "Matcher test alpha only {}", "M.b");
  PatternMatcher matcher;
  auto match = matcher.MatchInstance("Matcher test alpha v1 beta v2");
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->statement_id, id);
  EXPECT_EQ(match->values, (std::vector<std::string>{"v1", "v2"}));
}

TEST(PatternMatcher, PrefersMoreSpecificPatternOnTies) {
  auto& registry = StatementRegistry::Instance();
  registry.Register(Level::kInfo, "Specifc ties {}", "M.generic");
  int specific = registry.Register(Level::kInfo, "Specifc ties exact form {}", "M.specific");
  PatternMatcher matcher;
  auto match = matcher.MatchInstance("Specifc ties exact form payload");
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->statement_id, specific);
}

TEST(PatternMatcher, ReturnsNulloptForUnknownLine) {
  PatternMatcher matcher;
  EXPECT_FALSE(matcher.MatchInstance("complete gibberish zxcvbn qwerty 999").has_value());
}

// --- LogAnalysis: the Fig. 5 walkthrough ---------------------------------------

struct Fig5Fixture {
  ProgramModel model{"fig5"};
  int nm_registered;
  int assigned_host;
  int assigned_attempt;
  int jvm_task;
  std::vector<ctlog::Instance> instances;

  Fig5Fixture() {
    ctmodel::AddBaseTypes(&model);
    TypeDecl node;
    node.name = "NodeId";
    model.AddType(node);
    TypeDecl container;
    container.name = "ContainerId";
    model.AddType(container);
    TypeDecl attempt;
    attempt.name = "TaskAttemptId";
    model.AddType(attempt);
    TypeDecl jvm;
    jvm.name = "JVMId";
    model.AddType(jvm);
    FieldDecl host_field;
    host_field.clazz = "NMContext";
    host_field.name = "hostName";
    host_field.type = "java.lang.String";
    model.AddField(host_field);

    auto& registry = StatementRegistry::Instance();
    nm_registered = registry.Register(Level::kInfo, "NodeManager from {} registered as {}",
                                      "Fig5.register");
    assigned_host =
        registry.Register(Level::kInfo, "Assigned container {} on host {}", "Fig5.assignHost");
    assigned_attempt =
        registry.Register(Level::kInfo, "Assigned container {} to {}", "Fig5.assignAttempt");
    jvm_task =
        registry.Register(Level::kInfo, "JVM with ID: {} given task: {}", "Fig5.jvm");
    model.BindLog(
        {nm_registered, {{"java.lang.String", "NMContext.hostName"}, {"NodeId", ""}}});
    model.BindLog({assigned_host, {{"ContainerId", ""}, {"NodeId", ""}}});
    model.BindLog({assigned_attempt, {{"ContainerId", ""}, {"TaskAttemptId", ""}}});
    model.BindLog({jvm_task, {{"JVMId", ""}, {"TaskAttemptId", ""}}});

    auto add = [&](int stmt, std::vector<std::string> args) {
      ctlog::Instance instance;
      instance.statement_id = stmt;
      instance.level = Level::kInfo;
      instance.args = args;
      instance.text = ctcommon::FormatBraces(StatementRegistry::Instance().Get(stmt).tmpl, args);
      instance.node = "node3:42349";
      instances.push_back(instance);
    };
    // The eight lines of Fig. 5(c).
    add(nm_registered, {"node3", "node3:42349"});
    add(nm_registered, {"node4", "node4:42349"});
    add(assigned_host, {"container_3", "node3:42349"});
    add(assigned_attempt, {"container_3", "attempt_3"});
    add(assigned_host, {"container_4", "node4:42349"});
    add(assigned_attempt, {"container_4", "attempt_4"});
    add(jvm_task, {"jvm_m_4", "attempt_4"});
    add(jvm_task, {"jvm_m_4", "attempt_4"});
  }
};

TEST(LogAnalysis, Fig5DiscoversSeedTypesAndGraph) {
  Fig5Fixture fig;
  LogAnalysis analysis(&fig.model, {"node3", "node4"});
  LogAnalysisResult result = analysis.Analyze(fig.instances);

  EXPECT_EQ(result.instances_matched, 8);
  EXPECT_EQ(result.instances_mismatched, 0);
  // The * types of Table 2 for this example.
  EXPECT_TRUE(result.seed_types.count("NodeId"));
  EXPECT_TRUE(result.seed_types.count("ContainerId"));
  EXPECT_TRUE(result.seed_types.count("TaskAttemptId"));
  EXPECT_TRUE(result.seed_types.count("JVMId"));
  // The base-typed host variable becomes a field-level seed, not a type.
  EXPECT_FALSE(result.seed_types.count("java.lang.String"));
  EXPECT_TRUE(result.seed_fields.count("NMContext.hostName"));

  // Value association (Fig. 5d): everything chains back to its node.
  const auto& graph = result.graph;
  EXPECT_TRUE(graph.node_values.count("node3:42349"));
  EXPECT_EQ(graph.value_to_node.at("container_3"), "node3:42349");
  EXPECT_EQ(graph.value_to_node.at("attempt_3"), "node3:42349");
  EXPECT_EQ(graph.value_to_node.at("attempt_4"), "node4:42349");
  EXPECT_EQ(graph.value_to_node.at("jvm_m_4"), "node4:42349");
}

TEST(LogAnalysis, FixpointResolvesForwardReferences) {
  // Offline analysis revisits instances, so an early line whose association
  // only appears later is still resolved (unlike the FIFO stash).
  Fig5Fixture fig;
  std::reverse(fig.instances.begin(), fig.instances.end());
  LogAnalysis analysis(&fig.model, {"node3", "node4"});
  LogAnalysisResult result = analysis.Analyze(fig.instances);
  EXPECT_EQ(result.graph.value_to_node.at("jvm_m_4"), "node4:42349");
  EXPECT_EQ(result.graph.value_to_node.at("attempt_3"), "node3:42349");
}

TEST(LogAnalysis, OnlineFilterCoversMetaInfoArgs) {
  Fig5Fixture fig;
  LogAnalysis analysis(&fig.model, {"node3", "node4"});
  LogAnalysisResult result = analysis.Analyze(fig.instances);
  ctlog::OnlineFilter filter = analysis.MakeOnlineFilter(result);
  EXPECT_EQ(filter.hosts.count("node3"), 1u);
  ASSERT_TRUE(filter.metainfo_args.count(fig.assigned_attempt));
  EXPECT_EQ(filter.metainfo_args.at(fig.assigned_attempt), (std::vector<int>{0, 1}));
}

// --- MetaInfoInference: Definition 2 -------------------------------------------

ProgramModel Def2Model() {
  ProgramModel model("def2");
  ctmodel::AddBaseTypes(&model);
  for (const char* name : {"NodeId", "NodeIdPBImpl", "SchedulerNode"}) {
    TypeDecl type;
    type.name = name;
    if (std::string(name) == "NodeIdPBImpl") {
      type.supertype = "NodeId";
    }
    model.AddType(type);
  }
  TypeDecl coll;
  coll.name = "HashMap<NodeId,SchedulerNode>";
  coll.element_types = {"NodeId", "SchedulerNode"};
  model.AddType(coll);
  TypeDecl container;
  container.name = "RMContainerImpl";
  model.AddType(container);
  TypeDecl container_id;
  container_id.name = "ContainerId";
  model.AddType(container_id);
  // RMContainerImpl is uniquely indexed by its ctor-only ContainerId field —
  // the paper's own example for the containing-class rule.
  FieldDecl indexed;
  indexed.clazz = "RMContainerImpl";
  indexed.name = "containerId";
  indexed.type = "ContainerId";
  indexed.set_only_in_constructor = true;
  model.AddField(indexed);
  // Same shape but NOT ctor-only: must not promote the containing class.
  TypeDecl other;
  other.name = "ContainerCache";
  model.AddType(other);
  FieldDecl mutable_field;
  mutable_field.clazz = "ContainerCache";
  mutable_field.name = "last";
  mutable_field.type = "ContainerId";
  model.AddField(mutable_field);
  // A String field: base types are never generalized.
  TypeDecl holder;
  holder.name = "HostHolder";
  model.AddType(holder);
  FieldDecl str;
  str.clazz = "HostHolder";
  str.name = "host";
  str.type = "java.lang.String";
  str.set_only_in_constructor = true;
  model.AddField(str);
  return model;
}

TEST(MetaInfoInference, SubtypeAndCollectionRules) {
  ProgramModel model = Def2Model();
  MetaInfoInference inference(&model);
  MetaInfoResult result = inference.Infer({"NodeId"}, {});
  EXPECT_TRUE(result.IsMetaInfoType("NodeId"));
  EXPECT_TRUE(result.IsMetaInfoType("NodeIdPBImpl"));
  EXPECT_TRUE(result.IsMetaInfoType("HashMap<NodeId,SchedulerNode>"));
  EXPECT_FALSE(result.IsMetaInfoType("SchedulerNode"));  // value type, not element-seeded
  EXPECT_EQ(result.types.at("NodeIdPBImpl").group, "NodeId");
  EXPECT_FALSE(result.types.at("NodeIdPBImpl").from_log);
  EXPECT_TRUE(result.types.at("NodeId").from_log);
}

TEST(MetaInfoInference, ContainingClassRuleRequiresCtorOnly) {
  ProgramModel model = Def2Model();
  MetaInfoInference inference(&model);
  MetaInfoResult result = inference.Infer({"ContainerId"}, {});
  EXPECT_TRUE(result.IsMetaInfoType("RMContainerImpl"));   // ctor-only field
  EXPECT_FALSE(result.IsMetaInfoType("ContainerCache"));   // mutable field
  // Fields of meta-info type are meta-info fields either way.
  EXPECT_TRUE(result.IsMetaInfoField("RMContainerImpl.containerId"));
  EXPECT_TRUE(result.IsMetaInfoField("ContainerCache.last"));
}

TEST(MetaInfoInference, BaseTypesAreNeverGeneralized) {
  ProgramModel model = Def2Model();
  MetaInfoInference inference(&model);
  // Even seeded directly, a base type never joins the set...
  MetaInfoResult result = inference.Infer({"java.lang.String"}, {});
  EXPECT_FALSE(result.IsMetaInfoType("java.lang.String"));
  EXPECT_EQ(result.NumFields(), 0);
  // ...but a log-identified base-typed *field* is meta-info and promotes its
  // containing class.
  result = inference.Infer({}, {"HostHolder.host"});
  EXPECT_TRUE(result.IsMetaInfoField("HostHolder.host"));
  EXPECT_TRUE(result.IsMetaInfoType("HostHolder"));
}

TEST(MetaInfoInference, ByGroupPutsLogIdentifiedFirst) {
  ProgramModel model = Def2Model();
  MetaInfoInference inference(&model);
  MetaInfoResult result = inference.Infer({"NodeId"}, {});
  auto groups = result.ByGroup();
  ASSERT_TRUE(groups.count("NodeId"));
  EXPECT_TRUE(groups["NodeId"].front().from_log);
}

// --- CrashPointAnalysis --------------------------------------------------------

// Table 3 keyword classification, parameterized over the full keyword lists.
class CollectionReadKeyword : public ::testing::TestWithParam<const char*> {};
TEST_P(CollectionReadKeyword, Classifies) {
  EXPECT_TRUE(IsCollectionReadOp(GetParam()));
  EXPECT_TRUE(IsCollectionReadOp(std::string(GetParam()) + "Something"));
}
INSTANTIATE_TEST_SUITE_P(Table3Read, CollectionReadKeyword,
                         ::testing::Values("get", "peek", "poll", "clone", "at", "element",
                                           "index", "toArray", "sub", "contain", "isEmpty",
                                           "exist", "values"));

class CollectionWriteKeyword : public ::testing::TestWithParam<const char*> {};
TEST_P(CollectionWriteKeyword, Classifies) {
  EXPECT_TRUE(IsCollectionWriteOp(GetParam()));
  EXPECT_TRUE(IsCollectionWriteOp(std::string(GetParam()) + "All"));
}
INSTANTIATE_TEST_SUITE_P(Table3Write, CollectionWriteKeyword,
                         ::testing::Values("add", "clear", "remove", "retain", "put", "insert",
                                           "set", "replace", "offer", "push", "pop", "copyInto"));

TEST(CollectionKeywords, NonAccessOpsMatchNeither) {
  for (const char* op : {"iterator", "stream", "size", "forEach", "hashCode"}) {
    EXPECT_FALSE(IsCollectionReadOp(op)) << op;
    EXPECT_FALSE(IsCollectionWriteOp(op)) << op;
  }
}

struct CrashPointFixture {
  ProgramModel model{"cp"};
  MetaInfoResult metainfo;
  int plain_read;
  int plain_write;
  int unused_read;
  int sanity_read;
  int ctor_field_read;
  int collection_get;
  int collection_iterator;
  int promoted_read;
  std::vector<int> sites;

  CrashPointFixture() {
    ctmodel::AddBaseTypes(&model);
    TypeDecl meta;
    meta.name = "NodeId";
    model.AddType(meta);
    TypeDecl other;
    other.name = "Plain";
    model.AddType(other);
    auto add_field = [&](const std::string& clazz, const std::string& name,
                         const std::string& type, bool ctor_only = false) {
      FieldDecl field;
      field.clazz = clazz;
      field.name = name;
      field.type = type;
      field.set_only_in_constructor = ctor_only;
      model.AddField(field);
    };
    add_field("A", "node", "NodeId");
    add_field("A", "fixed", "NodeId", /*ctor_only=*/true);
    add_field("A", "other", "Plain");

    auto add_point = [&](const std::string& field, AccessKind kind, const std::string& op = "",
                         bool unused = false, bool sanity = false, bool returned = false,
                         std::vector<int> promoted = {}) {
      AccessPointDecl point;
      point.field_id = field;
      point.kind = kind;
      point.clazz = "A";
      point.method = "m";
      point.collection_op = op;
      point.value_unused = unused;
      point.sanity_checked = sanity;
      point.returned_directly = returned;
      point.promoted_sites = promoted;
      return model.AddAccessPoint(point);
    };
    plain_read = add_point("A.node", AccessKind::kRead);
    plain_write = add_point("A.node", AccessKind::kWrite);
    unused_read = add_point("A.node", AccessKind::kRead, "", /*unused=*/true);
    sanity_read = add_point("A.node", AccessKind::kRead, "", false, /*sanity=*/true);
    ctor_field_read = add_point("A.fixed", AccessKind::kRead);
    collection_get = add_point("A.node", AccessKind::kRead, "get");
    collection_iterator = add_point("A.node", AccessKind::kRead, "iterator");
    // Promotion: a returned-directly read with 3 call sites (one unused).
    sites.push_back(add_point("A.node", AccessKind::kRead));
    sites.push_back(add_point("A.node", AccessKind::kRead, "", /*unused=*/true));
    sites.push_back(add_point("A.node", AccessKind::kRead));
    promoted_read =
        add_point("A.node", AccessKind::kRead, "", false, false, /*returned=*/true, sites);
    // Non-meta point: never a candidate.
    add_point("A.other", AccessKind::kRead);

    MetaInfoInference inference(&model);
    metainfo = inference.Infer({"NodeId"}, {});
  }
};

TEST(CrashPointAnalysis, IdentifiesAndPrunes) {
  CrashPointFixture fixture;
  CrashPointAnalysis analysis(&fixture.model, &fixture.metainfo);
  CrashPointResult result = analysis.Identify();

  std::set<int> ids = result.PointIds();
  EXPECT_TRUE(ids.count(fixture.plain_read));
  EXPECT_TRUE(ids.count(fixture.plain_write));
  EXPECT_TRUE(ids.count(fixture.collection_get));
  EXPECT_FALSE(ids.count(fixture.unused_read));
  EXPECT_FALSE(ids.count(fixture.sanity_read));
  EXPECT_FALSE(ids.count(fixture.ctor_field_read));
  EXPECT_FALSE(ids.count(fixture.collection_iterator));  // not an access op
  EXPECT_FALSE(ids.count(fixture.promoted_read));        // replaced by sites
  EXPECT_TRUE(ids.count(fixture.sites[0]));
  EXPECT_FALSE(ids.count(fixture.sites[1]));  // unused site pruned
  EXPECT_TRUE(ids.count(fixture.sites[2]));

  EXPECT_EQ(result.pruned_constructor, 1);
  EXPECT_EQ(result.pruned_unused, 2);  // standalone + promoted site
  EXPECT_EQ(result.pruned_sanity_checked, 1);
  EXPECT_EQ(result.promoted_points, 1);
  EXPECT_EQ(result.promotion_sites, 3);
  EXPECT_EQ(result.discarded_non_access_collection_ops, 1);
  EXPECT_EQ(result.NumPostWrite(), 1);
}

TEST(CrashPointAnalysis, OptimizationsCanBeDisabled) {
  CrashPointFixture fixture;
  CrashPointAnalysis analysis(&fixture.model, &fixture.metainfo);
  CrashPointOptions options;
  options.prune_unused = false;
  options.prune_sanity_checked = false;
  options.prune_constructor_only = false;
  CrashPointResult result = analysis.Identify(options);
  std::set<int> ids = result.PointIds();
  EXPECT_TRUE(ids.count(fixture.unused_read));
  EXPECT_TRUE(ids.count(fixture.sanity_read));
  EXPECT_TRUE(ids.count(fixture.ctor_field_read));
  EXPECT_EQ(result.pruned_unused, 0);
  EXPECT_EQ(result.pruned_sanity_checked, 0);
  EXPECT_EQ(result.pruned_constructor, 0);
}

TEST(CrashPointAnalysis, PromotionCanBeDisabled) {
  CrashPointFixture fixture;
  CrashPointAnalysis analysis(&fixture.model, &fixture.metainfo);
  CrashPointOptions options;
  options.promote_returns = false;
  CrashPointResult result = analysis.Identify(options);
  std::set<int> ids = result.PointIds();
  EXPECT_TRUE(ids.count(fixture.promoted_read));
  EXPECT_FALSE(ids.count(fixture.sites[0]));  // sites only reachable via promotion
}

}  // namespace
}  // namespace ctanalysis
