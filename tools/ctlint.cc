// ctlint: model-consistency linter for the shipped program models.
//
// Runs every check of ctanalysis::LintModel over the five mini systems (and
// the legacy YARN variant) and prints one line per issue. Exit status is the
// number of models with findings, so CI fails the build the moment a model
// and its executable system drift apart.
//
// Usage: ctlint [--summary]
//   --summary   print per-model method/edge/reachability statistics too
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/analysis/call_graph.h"
#include "src/analysis/context_enumeration.h"
#include "src/analysis/model_lint.h"
#include "src/systems/cassandra/cass_defs.h"
#include "src/systems/hbase/hbase_defs.h"
#include "src/systems/hdfs/hdfs_defs.h"
#include "src/systems/yarn/yarn_defs.h"
#include "src/systems/zookeeper/zk_defs.h"

namespace {

int LintOne(const ctmodel::ProgramModel& model, bool summary) {
  ctanalysis::LintResult result = ctanalysis::LintModel(model);
  if (result.ok()) {
    std::printf("%-22s OK\n", model.system_name().c_str());
  } else {
    std::printf("%-22s %zu issue(s)\n", model.system_name().c_str(), result.issues.size());
    for (const auto& issue : result.issues) {
      std::printf("  [%s] %s: %s\n", issue.check.c_str(), issue.subject.c_str(),
                  issue.message.c_str());
    }
  }
  if (summary) {
    ctanalysis::CallGraph graph(model);
    ctanalysis::ContextEnumeration enumeration(&graph);
    ctanalysis::StaticContextResult contexts = enumeration.EnumerateAll(5);
    ctanalysis::StaticContextResult feasible =
        enumeration.EnumerateAll(5, /*prune_infeasible=*/true);
    int component_spans = 0;
    for (const auto& span : model.spans()) {
      if (!span.component.empty()) {
        ++component_spans;
      }
    }
    std::printf("  methods=%d edges=%d(resolved %d) reachable=%zu "
                "contexts@5=%d unreachable-points=%zu "
                "feasible@5=%d cs-pruned=%d multi-crash-pairs=%d net-windows=%d "
                "grammar-ops=%d component-spans=%d\n",
                model.NumMethods(), model.NumCallEdges(), graph.num_resolved_edges(),
                graph.reachable().size(), contexts.TotalContexts(),
                contexts.unreachable_points.size(), feasible.TotalContexts(),
                feasible.pruned_call_strings, model.NumMultiCrashPairs(),
                model.NumNetworkFaultWindows(), model.NumGrammarOps(), component_spans);
  }
  return result.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool summary = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--summary") == 0) {
      summary = true;
    } else {
      std::fprintf(stderr, "usage: ctlint [--summary]\n");
      return 2;
    }
  }

  int failing_models = 0;
  failing_models += LintOne(ctyarn::GetYarnArtifacts(ctyarn::YarnMode::kTrunk).model, summary);
  failing_models += LintOne(ctyarn::GetYarnArtifacts(ctyarn::YarnMode::kLegacy).model, summary);
  failing_models += LintOne(cthdfs::GetHdfsArtifacts().model, summary);
  failing_models += LintOne(cthbase::GetHBaseArtifacts().model, summary);
  failing_models += LintOne(ctzk::GetZkArtifacts().model, summary);
  failing_models += LintOne(ctcass::GetCassArtifacts().model, summary);
  return failing_models;
}
