#!/usr/bin/env bash
# Repository CI: warnings-as-errors build, tier-1 tests, model lint, a
# jobs=1-vs-jobs=hw smoke of the parallel injection campaign, then ASan+UBSan
# and TSan builds of the same tree (the two sanitizers cannot share a build).
# Run from the repository root:
#   tools/ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitizers=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) skip_sanitizers=1 ;;
    *) echo "usage: tools/ci.sh [--skip-sanitizers]" >&2; exit 2 ;;
  esac
done

echo "== stage 1: build (-Wall -Wextra -Werror) =="
cmake -B build -S . -DCRASHTUNER_WERROR=ON
cmake --build build -j "$jobs"

echo "== stage 2: tests =="
# Includes the static/profiled differential suite, the context-enumeration
# property tests, and the golden-report regression (and again under both
# sanitizer builds in stages 5-6).
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== stage 3: model lint =="
./build/tools/ctlint --summary

echo "== stage 4: parallel campaign smoke (jobs=1 vs jobs=hw) =="
# Times the Phase-2 campaign sequentially and at hardware concurrency and
# leaves the measurement in BENCH_parallel.json. The determinism guarantee
# itself (identical report at any thread count) is covered by campaign_test;
# this smoke only has to prove the parallel path runs outside the tests.
./build/bench/bench_table5_new_bugs --speedup --jobs 0 --json build/BENCH_parallel.json \
  | tail -n 12

echo "== stage 4b: static multi-crash smoke (pair-set precision/recall) =="
# Cross-checks the statically enumerated multi-crash pair set against the
# profiled pair set on every system and leaves the per-system precision/recall
# table in BENCH_static_multicrash.json. The differential test suite enforces
# 100% recall; this smoke records the numbers and proves the static-only
# pipeline runs zero instrumented workloads outside the tests.
./build/bench/bench_multicrash --static-only --json build/BENCH_static_multicrash.json \
  | tail -n 10

echo "== stage 4c: network-fault smoke (guided windows vs random partitions) =="
# One guided network-fault campaign per system against a short blind-partition
# baseline; leaves trials, bug counts, first-race trial indices, and wall time
# in BENCH_network_faults.json. The per-system guided races themselves are
# asserted by fault_plan_property_test; this smoke records the comparison.
./build/bench/bench_table7_random_injection 40 --jobs 0 \
  --json build/BENCH_network_faults.json | tail -n 12

echo "== stage 4d: campaign observability (metrics snapshot + Chrome trace) =="
# Runs the five-system campaign at jobs=4 with the metrics registry and span
# recorder on, then validates the snapshot with ctstat --check and leaves the
# throughput/phase-share summary in BENCH_observability.json. Passivity
# (identical SystemReport with observation on or off) and snapshot
# determinism across thread counts are asserted by campaign_test; this stage
# proves the exporters and the ctstat reader against a real campaign.
./build/bench/bench_table5_new_bugs --jobs 4 \
  --metrics-out build/metrics_snapshot.json \
  --trace-out build/campaign.trace.json > /dev/null
./build/tools/ctstat build/metrics_snapshot.json --check \
  --json build/BENCH_observability.json | tail -n 3

echo "== stage 4e: representative injection smoke (equivalence classes vs exhaustive) =="
# Partitions crash points and pairs into static equivalence classes on every
# system and runs the representative campaign against the exhaustive one,
# leaving classes / reduction / recall / wall numbers in
# BENCH_representative.json. The bench exits nonzero if any system falls
# below 100% recall or the 2x multi-crash reduction; per-class equivalence
# itself is asserted by equivalence_test and representative_property_test.
./build/bench/bench_representative --jobs 0 --json build/BENCH_representative.json \
  | tail -n 12

echo "== stage 4f: scale-out scheduler smoke (ladder queue vs legacy, --scale sweep) =="
# Microbenches the ladder-queue/slab event loop against the embedded legacy
# priority-queue baseline (>=10x events/sec bar), then sweeps replicated
# fault-free campaigns over small and medium --scale levels at jobs=1 and
# jobs=4, cross-checking per-task event counts so a scheduling-order
# divergence between thread counts fails the stage. Leaves throughput, peak
# queue depth, and the jobs-4 speedup at the largest level in
# BENCH_scale.json (the >=2x speedup bar is enforced only on >=4-hardware-
# thread machines; single-core CI records the number without failing).
# Byte-identical reports at --scale 8 across jobs=1/jobs=4 are asserted by
# campaign_test's ScaleDeterminism suite in stage 2. Multi-core CI lanes can
# export CRASHTUNER_ENFORCE_SPEEDUP=1 to pin the bar on regardless of what
# hardware detection reports (and =0 to silence it on a loaded box).
./build/bench/bench_scale --json build/BENCH_scale.json 1 2 8 | tail -n 14

echo "== stage 4g: fuzz smoke (coverage-guided grammar fuzzing, jobs=1 vs jobs=4) =="
# Short fuzz campaign per system: every system must discover at least one
# ⟨access point, call string⟩ pair the fixed workload script never produces,
# the corpus and trace hash must agree between jobs=1 and jobs=4 (the full
# byte-identity contract is fuzz_property_test in stage 2), and on >= 4
# hardware threads jobs=4 must be >= 2x faster. Corpus size, new-coverage
# count, and runs/sec land in BENCH_fuzz.json.
./build/bench/bench_fuzz --json build/BENCH_fuzz.json | tail -n 12

echo "== stage 4h: flow tracing + dwell profile at scale (jobs=4, ZooKeeper) =="
# Scale-8 ZooKeeper campaign twice — observation off, then spans + causal
# flows + dossiers on — asserting report passivity, >= 50% of virtual time
# attributed to the quorum-broadcast component, flow-DAG health, dossier
# round trips, and <= 10% tracing wall overhead (enforced on >= 4 hardware
# threads, CRASHTUNER_ENFORCE_SPEEDUP overrides). The profiler views then
# run against the snapshot it wrote: ctstat --top (per-component dwell) and
# --flows --check (delivery table + v2 schema validation).
./build/bench/bench_obs_flows --json build/BENCH_obs_flows.json \
  --metrics-out build/obs_flows_snapshot.json \
  --dossier-dir build/dossiers 8 | tail -n 7
./build/tools/ctstat build/obs_flows_snapshot.json --top | tail -n 6
./build/tools/ctstat build/obs_flows_snapshot.json --flows --check | tail -n 10

if [[ "$skip_sanitizers" == 1 ]]; then
  echo "== stages 5-6: sanitizers skipped =="
  exit 0
fi

# Sanitized test runs are the slow half of CI: run the cheap unit label first
# so a plain breakage fails the stage in seconds, then the long-tail suites
# (property / differential / golden) in one sweep.
echo "== stage 5: ASan+UBSan build + tests =="
cmake -B build-asan -S . -DCRASHTUNER_SANITIZE=address,undefined
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs" -L unit
ctest --test-dir build-asan --output-on-failure -j "$jobs" -L "property|differential|golden"
./build-asan/tools/ctlint

echo "== stage 6: TSan build + tests =="
cmake -B build-tsan -S . -DCRASHTUNER_SANITIZE=thread
cmake --build build-tsan -j "$jobs"
ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L unit
ctest --test-dir build-tsan --output-on-failure -j "$jobs" -L "property|differential|golden"

echo "CI green."
