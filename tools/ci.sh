#!/usr/bin/env bash
# Repository CI: warnings-as-errors build, tier-1 tests, model lint, then an
# ASan+UBSan build of the same tree. Run from the repository root:
#   tools/ci.sh [--skip-sanitizers]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="$(nproc 2>/dev/null || echo 4)"
skip_sanitizers=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) skip_sanitizers=1 ;;
    *) echo "usage: tools/ci.sh [--skip-sanitizers]" >&2; exit 2 ;;
  esac
done

echo "== stage 1: build (-Wall -Wextra -Werror) =="
cmake -B build -S . -DCRASHTUNER_WERROR=ON
cmake --build build -j "$jobs"

echo "== stage 2: tests =="
ctest --test-dir build --output-on-failure -j "$jobs"

echo "== stage 3: model lint =="
./build/tools/ctlint --summary

if [[ "$skip_sanitizers" == 1 ]]; then
  echo "== stage 4: sanitizers skipped =="
  exit 0
fi

echo "== stage 4: ASan+UBSan build + tests =="
cmake -B build-asan -S . -DCRASHTUNER_SANITIZE=address,undefined
cmake --build build-asan -j "$jobs"
ctest --test-dir build-asan --output-on-failure -j "$jobs"
./build-asan/tools/ctlint

echo "CI green."
