// ctstat — render and validate campaign metrics snapshots.
//
//   ctstat <snapshot.json> [--check] [--top] [--flows] [--json FILE]
//
// Reads a MetricsSnapshot written by --metrics-out (src/obs/snapshot.h) and
// prints, per campaign: the phase latency table (count, sim-time p50/p95/p99
// from the fixed-bucket histograms, wall-clock share of the campaign), the
// injection/outcome counters, and the runs-per-second throughput line.
//
// --top answers "where does the virtual time go?": the per-component dwell
// table built from the component.<span>.dwell_ms counters, each row's share
// of the campaign's total virtual time (the run.virtual_ms histogram sum).
//
// --flows prints the causal message-flow statistics: delivered messages,
// root sends, span-resolution rate, maximum causal chain depth, and the
// per-method delivery table.
//
// --check validates the file instead of merely rendering it: schema tag
// (crashtuner-metrics-v2; a v1 file is rejected with a versioned error),
// non-empty system list, histogram shape (ascending bounds, counts ==
// bounds+overflow, bucket counts summing to `count`), span-tree shape
// (parents precede children, indices in range), flow-section shape, and
// wall-section consistency. Exit code 0 only when every check passes — CI
// runs this on the snapshot the observability stage produces.
//
// --json FILE emits the BENCH_observability.json summary (runs/sec and
// per-phase wall shares per campaign) the CI stage archives.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/snapshot.h"

namespace {

struct ParsedHistogram {
  std::string name;
  ctobs::Histogram histogram = ctobs::Histogram();
};

struct ParsedSpanNode {
  std::string path;
  std::string name;
  std::string component;
  long long parent = -1;
  unsigned long long count = 0;
  unsigned long long sim_ms = 0;
};

struct ParsedFlows {
  unsigned long long messages = 0;
  unsigned long long roots = 0;
  unsigned long long span_resolved = 0;
  unsigned long long max_depth = 0;
  unsigned long long records_dropped = 0;
  std::map<std::string, unsigned long long> per_method;
};

struct ParsedSystem {
  std::string system;
  long long runs = 0;
  std::vector<std::pair<std::string, unsigned long long>> counters;
  std::vector<std::pair<std::string, long long>> gauges;
  std::vector<ParsedHistogram> histograms;
  std::vector<ParsedSpanNode> span_tree;
  ParsedFlows flows;
  bool has_wall = false;
  int jobs = 0;
  double campaign_seconds = 0;
  double runs_per_second = 0;
  std::map<std::string, double> phase_wall_seconds;
  std::map<std::string, double> driver_wall_seconds;
};

struct ParsedSnapshot {
  std::string schema;
  std::vector<ParsedSystem> systems;
};

// Collects validation failures; rendering keeps going so one bad histogram
// does not hide the rest of the report.
struct Checker {
  std::vector<std::string> failures;

  void Fail(const std::string& where, const std::string& what) {
    failures.push_back(where + ": " + what);
  }
};

const ctobs::JsonValue* Require(const ctobs::JsonValue& object, const std::string& key,
                                const std::string& where, Checker* checker) {
  const ctobs::JsonValue* value = object.Find(key);
  if (value == nullptr) {
    checker->Fail(where, "missing \"" + key + "\"");
  }
  return value;
}

bool LoadHistogram(const std::string& name, const ctobs::JsonValue& json,
                   const std::string& where, Checker* checker, ParsedHistogram* out) {
  if (!json.is_object()) {
    checker->Fail(where, "histogram is not an object");
    return false;
  }
  const ctobs::JsonValue* bounds_json = Require(json, "bounds", where, checker);
  const ctobs::JsonValue* counts_json = Require(json, "counts", where, checker);
  const ctobs::JsonValue* count_json = Require(json, "count", where, checker);
  const ctobs::JsonValue* sum_json = Require(json, "sum", where, checker);
  const ctobs::JsonValue* max_json = Require(json, "max", where, checker);
  if (bounds_json == nullptr || counts_json == nullptr || count_json == nullptr ||
      sum_json == nullptr || max_json == nullptr || !bounds_json->is_array() ||
      !counts_json->is_array()) {
    return false;
  }
  std::vector<uint64_t> bounds;
  for (const auto& item : bounds_json->array_items) {
    bounds.push_back(static_cast<uint64_t>(item.number_value));
  }
  if (bounds.empty()) {
    checker->Fail(where, "empty bounds");
    return false;
  }
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i - 1] >= bounds[i]) {
      checker->Fail(where, "bounds not strictly ascending");
      return false;
    }
  }
  std::vector<uint64_t> counts;
  uint64_t total = 0;
  for (const auto& item : counts_json->array_items) {
    counts.push_back(static_cast<uint64_t>(item.number_value));
    total += counts.back();
  }
  if (counts.size() != bounds.size() + 1) {
    checker->Fail(where, "counts must have one entry per bound plus overflow");
    return false;
  }
  if (total != static_cast<uint64_t>(count_json->number_value)) {
    checker->Fail(where, "bucket counts do not sum to \"count\"");
    return false;
  }
  out->name = name;
  out->histogram = ctobs::Histogram::FromParts(
      std::move(bounds), std::move(counts), static_cast<uint64_t>(sum_json->number_value),
      static_cast<uint64_t>(max_json->number_value));
  if (out->histogram.count() > 0 && out->histogram.sum() < out->histogram.max()) {
    checker->Fail(where, "sum below max");
  }
  return true;
}

void LoadWallMap(const ctobs::JsonValue& json, std::map<std::string, double>* out) {
  for (const auto& [name, value] : json.object_items) {
    (*out)[name] = value.number_value;
  }
}

ParsedSnapshot LoadSnapshot(const ctobs::JsonValue& root, Checker* checker) {
  ParsedSnapshot snapshot;
  if (!root.is_object()) {
    checker->Fail("root", "not a JSON object");
    return snapshot;
  }
  const ctobs::JsonValue* schema = Require(root, "schema", "root", checker);
  if (schema != nullptr) {
    snapshot.schema = schema->string_value;
    if (snapshot.schema == ctobs::kSnapshotSchemaV1) {
      checker->Fail("root", "schema is \"" + snapshot.schema +
                                "\" — a v1 snapshot from an older build; this ctstat "
                                "reads \"" +
                                ctobs::kSnapshotSchema +
                                "\" (span_tree + flows). Regenerate the snapshot with "
                                "the current --metrics-out writer.");
    } else if (snapshot.schema != ctobs::kSnapshotSchema) {
      checker->Fail("root", "schema is \"" + snapshot.schema + "\", expected \"" +
                                ctobs::kSnapshotSchema + "\"");
    }
  }
  const ctobs::JsonValue* systems = Require(root, "systems", "root", checker);
  if (systems == nullptr || !systems->is_array()) {
    if (systems != nullptr) {
      checker->Fail("root", "\"systems\" is not an array");
    }
    return snapshot;
  }
  if (systems->array_items.empty()) {
    checker->Fail("root", "no systems recorded");
  }
  for (size_t i = 0; i < systems->array_items.size(); ++i) {
    const ctobs::JsonValue& json = systems->array_items[i];
    ParsedSystem system;
    const std::string where = "systems[" + std::to_string(i) + "]";
    if (!json.is_object()) {
      checker->Fail(where, "not an object");
      continue;
    }
    const ctobs::JsonValue* name = Require(json, "system", where, checker);
    if (name != nullptr) {
      system.system = name->string_value;
      if (system.system.empty()) {
        checker->Fail(where, "empty system name");
      }
    }
    const ctobs::JsonValue* runs = Require(json, "runs", where, checker);
    if (runs != nullptr) {
      system.runs = static_cast<long long>(runs->number_value);
      if (system.runs < 0) {
        checker->Fail(where, "negative run count");
      }
    }
    if (const ctobs::JsonValue* counters = json.Find("counters")) {
      for (const auto& [counter, value] : counters->object_items) {
        system.counters.emplace_back(counter,
                                     static_cast<unsigned long long>(value.number_value));
      }
    }
    if (const ctobs::JsonValue* gauges = json.Find("gauges")) {
      for (const auto& [gauge, value] : gauges->object_items) {
        system.gauges.emplace_back(gauge, static_cast<long long>(value.number_value));
      }
    }
    if (const ctobs::JsonValue* histograms = json.Find("histograms")) {
      for (const auto& [histogram_name, value] : histograms->object_items) {
        ParsedHistogram parsed;
        if (LoadHistogram(histogram_name, value, where + "." + histogram_name, checker,
                          &parsed)) {
          system.histograms.push_back(std::move(parsed));
        }
      }
    }
    const ctobs::JsonValue* span_tree = Require(json, "span_tree", where, checker);
    if (span_tree != nullptr) {
      if (!span_tree->is_array()) {
        checker->Fail(where, "\"span_tree\" is not an array");
      } else {
        for (size_t n = 0; n < span_tree->array_items.size(); ++n) {
          const ctobs::JsonValue& node_json = span_tree->array_items[n];
          const std::string node_where = where + ".span_tree[" + std::to_string(n) + "]";
          if (!node_json.is_object()) {
            checker->Fail(node_where, "not an object");
            continue;
          }
          ParsedSpanNode node;
          if (const ctobs::JsonValue* path = Require(node_json, "path", node_where, checker)) {
            node.path = path->string_value;
          }
          if (const ctobs::JsonValue* nm = Require(node_json, "name", node_where, checker)) {
            node.name = nm->string_value;
          }
          if (const ctobs::JsonValue* component = node_json.Find("component")) {
            node.component = component->string_value;
          }
          if (const ctobs::JsonValue* parent =
                  Require(node_json, "parent", node_where, checker)) {
            node.parent = static_cast<long long>(parent->number_value);
          }
          if (const ctobs::JsonValue* count = Require(node_json, "count", node_where, checker)) {
            node.count = static_cast<unsigned long long>(count->number_value);
          }
          if (const ctobs::JsonValue* sim = Require(node_json, "sim_ms", node_where, checker)) {
            node.sim_ms = static_cast<unsigned long long>(sim->number_value);
          }
          if (node.path.empty() || node.name.empty()) {
            checker->Fail(node_where, "empty span path or name");
          }
          // Parents are emitted before their children, so a parent index must
          // point strictly earlier in the array (or be -1 for a root).
          if (node.parent < -1 || node.parent >= static_cast<long long>(n)) {
            checker->Fail(node_where, "parent index " + std::to_string(node.parent) +
                                          " does not precede node " + std::to_string(n));
          }
          system.span_tree.push_back(std::move(node));
        }
      }
    }
    const ctobs::JsonValue* flows = Require(json, "flows", where, checker);
    if (flows != nullptr) {
      if (!flows->is_object()) {
        checker->Fail(where, "\"flows\" is not an object");
      } else {
        const std::string flow_where = where + ".flows";
        auto load_flow_count = [&](const char* key, unsigned long long* out) {
          if (const ctobs::JsonValue* value = Require(*flows, key, flow_where, checker)) {
            if (value->number_value < 0) {
              checker->Fail(flow_where, std::string("negative \"") + key + "\"");
            }
            *out = static_cast<unsigned long long>(value->number_value);
          }
        };
        load_flow_count("messages", &system.flows.messages);
        load_flow_count("roots", &system.flows.roots);
        load_flow_count("span_resolved", &system.flows.span_resolved);
        load_flow_count("max_depth", &system.flows.max_depth);
        load_flow_count("records_dropped", &system.flows.records_dropped);
        if (system.flows.roots > system.flows.messages ||
            system.flows.span_resolved > system.flows.messages) {
          checker->Fail(flow_where, "roots/span_resolved exceed total messages");
        }
        if (const ctobs::JsonValue* per_method =
                Require(*flows, "per_method", flow_where, checker)) {
          unsigned long long method_total = 0;
          for (const auto& [method, count] : per_method->object_items) {
            system.flows.per_method[method] =
                static_cast<unsigned long long>(count.number_value);
            method_total += system.flows.per_method[method];
          }
          if (method_total != system.flows.messages) {
            checker->Fail(flow_where, "per_method counts do not sum to \"messages\"");
          }
        }
      }
    }
    if (const ctobs::JsonValue* wall = json.Find("wall")) {
      system.has_wall = true;
      if (const ctobs::JsonValue* jobs = wall->Find("jobs")) {
        system.jobs = static_cast<int>(jobs->number_value);
        if (system.jobs < 1) {
          checker->Fail(where, "wall.jobs below 1");
        }
      }
      if (const ctobs::JsonValue* seconds = wall->Find("campaign_seconds")) {
        system.campaign_seconds = seconds->number_value;
        if (system.campaign_seconds < 0) {
          checker->Fail(where, "negative campaign_seconds");
        }
      }
      if (const ctobs::JsonValue* rate = wall->Find("runs_per_second")) {
        system.runs_per_second = rate->number_value;
      }
      if (const ctobs::JsonValue* phases = wall->Find("phases")) {
        LoadWallMap(*phases, &system.phase_wall_seconds);
      }
      if (const ctobs::JsonValue* driver = wall->Find("driver")) {
        LoadWallMap(*driver, &system.driver_wall_seconds);
      }
    }
    snapshot.systems.push_back(std::move(system));
  }
  return snapshot;
}

// "phase.boot" -> "boot"; anything else renders under its metric name.
std::string PhaseLabel(const std::string& metric) {
  const std::string prefix = "phase.";
  if (metric.compare(0, prefix.size(), prefix) == 0) {
    return metric.substr(prefix.size());
  }
  return metric;
}

void PrintSystem(const ParsedSystem& system) {
  std::printf("\n%s\n", system.system.c_str());
  for (size_t i = 0; i < system.system.size(); ++i) {
    std::printf("=");
  }
  std::printf("\n");
  if (system.has_wall) {
    std::printf("runs %lld | jobs %d | campaign %.3fs | %.1f runs/s\n", system.runs,
                system.jobs, system.campaign_seconds, system.runs_per_second);
  } else {
    std::printf("runs %lld (deterministic fields only, no wall section)\n", system.runs);
  }

  const double wall_total = system.campaign_seconds;
  std::printf("  %-28s %8s %10s %10s %10s %11s %7s\n", "phase", "count", "p50(ms)",
              "p95(ms)", "p99(ms)", "sim-sum(ms)", "wall%");
  for (const ParsedHistogram& parsed : system.histograms) {
    const std::string label = PhaseLabel(parsed.name);
    const ctobs::Histogram& histogram = parsed.histogram;
    auto wall = system.phase_wall_seconds.find(label);
    char wall_cell[16];
    if (wall != system.phase_wall_seconds.end() && wall_total > 0) {
      std::snprintf(wall_cell, sizeof(wall_cell), "%6.1f%%",
                    100.0 * wall->second / wall_total);
    } else {
      std::snprintf(wall_cell, sizeof(wall_cell), "%7s", "-");
    }
    std::printf("  %-28s %8llu %10.1f %10.1f %10.1f %11llu %7s\n", label.c_str(),
                static_cast<unsigned long long>(histogram.count()), histogram.Percentile(50),
                histogram.Percentile(95), histogram.Percentile(99),
                static_cast<unsigned long long>(histogram.sum()), wall_cell);
  }

  if (!system.counters.empty()) {
    std::printf("  counters:\n");
    for (const auto& [name, value] : system.counters) {
      std::printf("    %-40s %12llu\n", name.c_str(), value);
    }
  }
  if (!system.gauges.empty()) {
    std::printf("  gauges:\n");
    for (const auto& [name, value] : system.gauges) {
      std::printf("    %-40s %12lld\n", name.c_str(), value);
    }
  }
  if (!system.driver_wall_seconds.empty()) {
    std::printf("  driver phases (wall):");
    for (const auto& [name, seconds] : system.driver_wall_seconds) {
      std::printf("  %s=%.3fs", name.c_str(), seconds);
    }
    std::printf("\n");
  }
}

// --top: the virtual-time profiler view. Every component-span open charges
// the millis since the previous component mark to component.<span>.dwell_ms,
// so the counters partition each run's virtual time across the declared
// component sweeps; the share column divides by the campaign's total virtual
// time (run.virtual_ms histogram sum).
void PrintTop(const ParsedSystem& system) {
  std::printf("\n%s — where does the virtual time go?\n", system.system.c_str());
  unsigned long long total_virtual_ms = 0;
  for (const ParsedHistogram& parsed : system.histograms) {
    if (parsed.name == "run.virtual_ms") {
      total_virtual_ms = parsed.histogram.sum();
    }
  }
  struct TopRow {
    std::string component;
    unsigned long long dwell_ms = 0;
    unsigned long long events = 0;
  };
  std::map<std::string, TopRow> rows;
  const std::string prefix = "component.";
  const std::string dwell_suffix = ".dwell_ms";
  const std::string events_suffix = ".events";
  for (const auto& [name, value] : system.counters) {
    if (name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    if (name.size() > dwell_suffix.size() &&
        name.compare(name.size() - dwell_suffix.size(), dwell_suffix.size(), dwell_suffix) ==
            0) {
      const std::string span =
          name.substr(prefix.size(), name.size() - prefix.size() - dwell_suffix.size());
      rows[span].dwell_ms = value;
    } else if (name.size() > events_suffix.size() &&
               name.compare(name.size() - events_suffix.size(), events_suffix.size(),
                            events_suffix) == 0) {
      const std::string span =
          name.substr(prefix.size(), name.size() - prefix.size() - events_suffix.size());
      rows[span].events = value;
    }
  }
  // The span tree knows which role class each component span covers.
  for (auto& [span, row] : rows) {
    for (const ParsedSpanNode& node : system.span_tree) {
      if (node.name == span && !node.component.empty()) {
        row.component = node.component;
        break;
      }
    }
  }
  if (rows.empty()) {
    std::printf("  (no component spans recorded — run with observation on)\n");
    return;
  }
  std::vector<std::pair<std::string, TopRow>> sorted(rows.begin(), rows.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second.dwell_ms != b.second.dwell_ms) {
      return a.second.dwell_ms > b.second.dwell_ms;
    }
    return a.first < b.first;
  });
  std::printf("  total virtual time %llu ms across %lld runs\n", total_virtual_ms,
              system.runs);
  std::printf("  %-28s %-22s %12s %10s %8s\n", "component span", "role class", "dwell(ms)",
              "events", "share");
  for (const auto& [span, row] : sorted) {
    char share_cell[16];
    if (total_virtual_ms > 0) {
      std::snprintf(share_cell, sizeof(share_cell), "%6.1f%%",
                    100.0 * static_cast<double>(row.dwell_ms) /
                        static_cast<double>(total_virtual_ms));
    } else {
      std::snprintf(share_cell, sizeof(share_cell), "%7s", "-");
    }
    std::printf("  %-28s %-22s %12llu %10llu %8s\n", span.c_str(), row.component.c_str(),
                row.dwell_ms, row.events, share_cell);
  }
}

// --flows: the causal message-flow summary reconstructed at delivery time.
void PrintFlows(const ParsedSystem& system) {
  std::printf("\n%s — causal message flows\n", system.system.c_str());
  const ParsedFlows& flows = system.flows;
  if (flows.messages == 0) {
    std::printf("  (no flow records — run with observation on)\n");
    return;
  }
  const double resolved_share =
      100.0 * static_cast<double>(flows.span_resolved) / static_cast<double>(flows.messages);
  std::printf("  deliveries %llu | roots %llu | span-resolved %llu (%.1f%%) | "
              "max depth %llu | records dropped %llu\n",
              flows.messages, flows.roots, flows.span_resolved, resolved_share,
              flows.max_depth, flows.records_dropped);
  std::vector<std::pair<std::string, unsigned long long>> methods(flows.per_method.begin(),
                                                                  flows.per_method.end());
  std::sort(methods.begin(), methods.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return a.first < b.first;
  });
  std::printf("  %-40s %12s %8s\n", "method", "deliveries", "share");
  for (const auto& [method, count] : methods) {
    std::printf("  %-40s %12llu %7.1f%%\n", method.c_str(), count,
                100.0 * static_cast<double>(count) / static_cast<double>(flows.messages));
  }
}

bool WriteSummaryJson(const ParsedSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << "{\"bench\":\"observability\",\"systems\":[";
  for (size_t i = 0; i < snapshot.systems.size(); ++i) {
    const ParsedSystem& system = snapshot.systems[i];
    if (i > 0) {
      out << ",";
    }
    out << "\n  {\"system\":\"" << system.system << "\",\"runs\":" << system.runs
        << ",\"jobs\":" << system.jobs << ",\"campaign_seconds\":" << system.campaign_seconds
        << ",\"runs_per_second\":" << system.runs_per_second << ",\"phase_wall_share\":{";
    bool first = true;
    for (const auto& [name, seconds] : system.phase_wall_seconds) {
      const double share =
          system.campaign_seconds > 0 ? seconds / system.campaign_seconds : 0.0;
      out << (first ? "" : ",") << "\"" << name << "\":" << share;
      first = false;
    }
    out << "}}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_path;
  std::string json_path;
  bool check = false;
  bool top = false;
  bool show_flows = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--top") {
      top = true;
    } else if (arg == "--flows") {
      show_flows = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: ctstat <snapshot.json> [--check] [--top] [--flows] [--json FILE]\n");
      return 2;
    } else {
      snapshot_path = arg;
    }
  }
  if (snapshot_path.empty()) {
    std::fprintf(stderr,
                 "usage: ctstat <snapshot.json> [--check] [--top] [--flows] [--json FILE]\n");
    return 2;
  }

  std::ifstream in(snapshot_path);
  if (!in) {
    std::fprintf(stderr, "ctstat: cannot read %s\n", snapshot_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  Checker checker;
  ParsedSnapshot snapshot;
  try {
    snapshot = LoadSnapshot(ctobs::ParseJson(buffer.str()), &checker);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "ctstat: %s: %s\n", snapshot_path.c_str(), error.what());
    return 2;
  }

  for (const ParsedSystem& system : snapshot.systems) {
    if (top || show_flows) {
      // Focused profiler views replace the full report.
      if (top) {
        PrintTop(system);
      }
      if (show_flows) {
        PrintFlows(system);
      }
    } else {
      PrintSystem(system);
    }
  }

  if (!json_path.empty()) {
    if (!WriteSummaryJson(snapshot, json_path)) {
      std::fprintf(stderr, "ctstat: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (check) {
    if (checker.failures.empty()) {
      std::printf("\ncheck: OK (%zu campaigns)\n", snapshot.systems.size());
    } else {
      std::printf("\ncheck: %zu failure(s)\n", checker.failures.size());
      for (const std::string& failure : checker.failures) {
        std::printf("  %s\n", failure.c_str());
      }
      return 1;
    }
  }
  return 0;
}
