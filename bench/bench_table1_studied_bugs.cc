// Table 1: the studied timing-sensitive crash-recovery bugs, grouped by
// meta-info, plus the study's headline counts (§2) and this repository's
// reproduction status (legacy-mode mini systems).
#include <map>

#include "bench/bench_util.h"
#include "src/core/crashtuner.h"
#include "src/study/bug_study.h"
#include "src/systems/yarn/yarn_system.h"

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader("Table 1 — studied timing-sensitive bugs by meta-info");

  std::map<std::string, std::map<std::string, std::vector<std::string>>> grouped;
  for (const auto& bug : ctstudy::StudiedBugs()) {
    if (bug.scenario == ctstudy::Scenario::kNotTimingSensitive) {
      continue;
    }
    grouped[bug.system][bug.metainfo].push_back(bug.id);
  }
  for (const char* system : {"Hadoop2", "HDFS", "HBase", "ZooKeeper"}) {
    std::printf("%s\n", system);
    for (const auto& [metainfo, ids] : grouped[system]) {
      std::printf("  %-18s", metainfo.c_str());
      for (const auto& id : ids) {
        std::printf(" %s", id.c_str());
      }
      std::printf("\n");
    }
  }

  ctbench::PrintRule();
  ctstudy::StudySummary summary = ctstudy::Summarize();
  std::printf("paper: 116 studied -> 66 single-crash -> 52 timing-sensitive\n");
  std::printf("data : %d single-crash, %d timing-sensitive (%d pre-read / %d post-write), "
              "%d non-timing\n",
              summary.total, summary.timing_sensitive, summary.pre_read, summary.post_write,
              summary.non_timing_sensitive);
  std::printf("paper: 59/66 reproduced; data: %d/%d flagged reproduced-by-paper\n",
              summary.reproduced_by_paper, summary.total);

  ctbench::PrintRule();
  std::printf("Reproduction on this repository's legacy mini-YARN build (§4.1.1 sample):\n");
  ctyarn::YarnSystem legacy(ctyarn::YarnMode::kLegacy);
  ctcore::DriverOptions options;
  options.observer = observation.ObserverFor("yarn-legacy");
  ctcore::SystemReport report = ctcore::CrashTunerDriver().Run(legacy, options);
  for (const char* id : {"YARN-5918", "MR-3858"}) {
    bool found = false;
    for (const auto& bug : report.bugs) {
      found = found || bug.bug_id == id;
    }
    std::printf("  %-10s %s\n", id, found ? "REPRODUCED" : "not reproduced");
  }
  std::printf("  (the remaining Table 1 entries are carried as study data; the seven the\n"
              "   paper could not reproduce are annotated with its reasons)\n");

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
