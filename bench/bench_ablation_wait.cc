// Ablation beyond the paper: the pre-read wait window (§3.2.2). After the
// shutdown RPC, the trigger waits (10 s default) so failure handling and
// recovery run *before* the interrupted read resumes. Without the wait the
// read executes against pre-recovery state and most pre-read bugs vanish;
// with a window shorter than failure-detection-plus-recovery they reappear
// only partially.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader("Ablation — pre-read wait window vs bugs detected (mini-YARN)");
  std::printf("%10s %8s %14s\n", "wait (ms)", "bugs", "test virt h");
  for (ctsim::Time wait_ms : {0ull, 100ull, 1000ull, 5000ull, 10000ull, 20000ull}) {
    ctyarn::YarnSystem yarn;
    ctcore::DriverOptions options;
    options.pre_read_wait_ms = wait_ms;
    options.observer = observation.ObserverFor("yarn/wait" + std::to_string(wait_ms));
    ctcore::CrashTunerDriver driver;
    ctcore::SystemReport report = driver.Run(yarn, options);
    std::printf("%10llu %8zu %14.2f%s\n", static_cast<unsigned long long>(wait_ms),
                report.bugs.size(), report.test_virtual_hours,
                wait_ms == 10000 ? "   <- paper's default" : "");
  }
  ctbench::PrintRule();
  std::printf("The wait must outlast graceful-leave processing and the recovery actions\n"
              "that invalidate the read (remove the node, fail the attempt, kill the\n"
              "container); post-write bugs are crash-immediate and survive wait=0.\n");

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
