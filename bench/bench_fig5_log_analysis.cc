// Figures 1, 5 and 6: the meta-info view. Runs the mini-YARN workload, shows
// the logging statements and their extracted patterns (Fig. 5a/5b), a sample
// of runtime instances with recovered values (Fig. 5c), the offline
// meta-info graph (Fig. 5d / Fig. 1), and the online stash's HashSet +
// HashMap (Fig. 6) built by replaying the same logs through per-node
// Logstash agents.
#include "bench/bench_util.h"
#include "src/analysis/log_analysis.h"
#include "src/common/strings.h"
#include "src/core/executor.h"
#include "src/logging/stash.h"
#include "src/runtime/tracer.h"

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctyarn::YarnSystem yarn;
  ctrt::AccessTracer::Instance().Reset(ctrt::TraceMode::kOff);
  auto run = yarn.NewRun(3, 2019);
  // This bench drives the Executor directly (no campaign driver), so the
  // run observer is enabled and absorbed by hand.
  ctobs::CampaignObserver* observer = observation.ObserverFor("yarn/fig5-workload");
  if (observer != nullptr) {
    run->context().observer().Enable();
  }
  ctcore::Executor::Execute(*run, nullptr);
  if (observer != nullptr) {
    observer->AbsorbRun(0, run->context().observer());
  }
  const auto& instances = run->cluster().logs().instances();

  ctbench::PrintHeader("Fig. 5(a)/(b) — logging statements and extracted patterns");
  const auto& registry = ctlog::StatementRegistry::Instance();
  std::set<int> used;
  for (const auto& instance : instances) {
    used.insert(instance.statement_id);
  }
  for (int id : used) {
    const auto& stmt = registry.Get(id);
    std::printf("  %-58s => %s\n", stmt.tmpl.c_str(),
                ctcommon::ReplaceAll(stmt.tmpl, "{}", "(.*)").c_str());
  }

  ctbench::PrintHeader("Fig. 5(c) — runtime log instances (first 12)");
  int shown = 0;
  for (const auto& instance : instances) {
    if (++shown > 12) {
      break;
    }
    std::printf("  %6llu %-14s %s\n", static_cast<unsigned long long>(instance.time_ms),
                instance.node.c_str(), instance.text.c_str());
  }

  ctanalysis::LogAnalysis analysis(&yarn.model(), run->cluster().config_hosts());
  ctanalysis::LogAnalysisResult result = analysis.Analyze(instances);

  ctbench::PrintHeader("Fig. 5(d) / Fig. 1 — derived runtime meta-info view");
  std::printf("node values: ");
  for (const auto& node : result.graph.node_values) {
    std::printf("%s ", node.c_str());
  }
  std::printf("\nvalue -> node:\n");
  for (const auto& [value, node] : result.graph.value_to_node) {
    std::printf("  %-42s -> %s\n", value.c_str(), node.c_str());
  }
  std::printf("match rate: %d/%d (mismatched %d)\n", result.instances_matched,
              result.instances_total, result.instances_mismatched);

  ctbench::PrintHeader("Fig. 6 — online stash (HashSet + HashMap) via Logstash agents");
  ctlog::CustomStash stash(analysis.MakeOnlineFilter(result));
  std::vector<std::unique_ptr<ctlog::LogstashAgent>> agents;
  for (const auto& node : run->cluster().node_ids()) {
    agents.push_back(std::make_unique<ctlog::LogstashAgent>(node, &stash));
  }
  for (const auto& instance : instances) {
    for (auto& agent : agents) {
      agent->OnInstance(instance);
    }
  }
  std::printf("HashSet  : %zu node values\n", stash.nodes().size());
  std::printf("HashMap  : %zu value->node entries\n", stash.value_to_node().size());
  int printed = 0;
  for (const auto& [value, node] : stash.value_to_node()) {
    if (++printed > 10) {
      break;
    }
    std::printf("  %-42s -> %s\n", value.c_str(), node.c_str());
  }

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
