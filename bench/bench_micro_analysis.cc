// Microbenchmarks (google-benchmark) for the analysis building blocks: the
// reverse-index pattern matcher, the Definition 2 inference fixpoint, the
// crash-point scan, and the online stash. These are the components the paper
// claims are cheap enough for online monitoring (§3.3 / Table 11's sub-5-min
// analysis column); the microbenchmarks quantify that on this substrate.
#include <benchmark/benchmark.h>

#include "src/analysis/crash_point_analysis.h"
#include "src/analysis/log_analysis.h"
#include "src/analysis/metainfo_inference.h"
#include "src/common/strings.h"
#include "src/logging/stash.h"
#include "src/systems/yarn/yarn_defs.h"

namespace {

const ctyarn::YarnArtifacts& Artifacts() {
  return ctyarn::GetYarnArtifacts(ctyarn::YarnMode::kTrunk);
}

void BM_PatternMatch(benchmark::State& state) {
  ctanalysis::PatternMatcher matcher;
  const std::string line = "Assigned container container_1550060164_1001_1_3 on host node2:42349";
  for (auto _ : state) {
    auto match = matcher.MatchInstance(line);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_PatternMatch);

void BM_PatternMatchMiss(benchmark::State& state) {
  ctanalysis::PatternMatcher matcher;
  const std::string line = "totally unrelated log line with no matching pattern at all";
  for (auto _ : state) {
    auto match = matcher.MatchInstance(line);
    benchmark::DoNotOptimize(match);
  }
}
BENCHMARK(BM_PatternMatchMiss);

void BM_TemplateFormatAndRecover(benchmark::State& state) {
  const std::string tmpl = "JVM with ID: {} given task: {}";
  std::vector<std::string> values;
  for (auto _ : state) {
    std::string instance = ctcommon::FormatBraces(tmpl, {"jvm_1_m_3", "attempt_1_m_3_0"});
    bool ok = ctcommon::MatchTemplate(tmpl, instance, &values);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_TemplateFormatAndRecover);

void BM_MetaInfoInference(benchmark::State& state) {
  const auto& model = Artifacts().model;
  ctanalysis::MetaInfoInference inference(&model);
  std::set<std::string> seeds = {
      "yarn.api.records.NodeId", "yarn.api.records.ContainerId",
      "yarn.api.records.ApplicationId", "yarn.api.records.ApplicationAttemptId",
      "mapreduce.v2.api.records.TaskAttemptId"};
  for (auto _ : state) {
    auto result = inference.Infer(seeds, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(model.NumTypes()) + " types / " +
                 std::to_string(model.NumFields()) + " fields");
}
BENCHMARK(BM_MetaInfoInference);

void BM_CrashPointScan(benchmark::State& state) {
  const auto& model = Artifacts().model;
  ctanalysis::MetaInfoInference inference(&model);
  auto metainfo = inference.Infer({"yarn.api.records.NodeId", "yarn.api.records.ContainerId"}, {});
  ctanalysis::CrashPointAnalysis analysis(&model, &metainfo);
  for (auto _ : state) {
    auto result = analysis.Identify();
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(std::to_string(model.NumAccessPoints()) + " access points");
}
BENCHMARK(BM_CrashPointScan);

void BM_StashProcess(benchmark::State& state) {
  ctlog::OnlineFilter filter;
  filter.hosts = {"node1", "node2", "node3", "master"};
  int64_t i = 0;
  ctlog::CustomStash stash(filter);
  for (auto _ : state) {
    std::string container = "container_" + std::to_string(i++ % 4096);
    stash.Process({container, "node1:42349"});
    auto target = stash.Lookup(container);
    benchmark::DoNotOptimize(target);
  }
}
BENCHMARK(BM_StashProcess);

}  // namespace

BENCHMARK_MAIN();
