// Observability-at-scale bench (CI stage 4h): causal flow tracing, the
// component dwell profile, and failure dossiers on a scaled-out ZooKeeper
// campaign.
//
// Runs the full CrashTuner driver over mini-ZooKeeper at --scale (default 8)
// twice — observation off, then observation on (jobs=4 both times) — and
// checks:
//
//   1. Passivity: the two SystemReports serialize byte-identically and carry
//      the same campaign trace hash. Flow stamping, span recording and
//      dossier capture must not perturb a single event.
//   2. Dwell attribution: the quorum-broadcast component span absorbs >= 50%
//      of the campaign's virtual time (ZooKeeper's only component sweep is
//      the peer-heartbeat fan-out, and scaled quorums spend their lives
//      gossiping — ROADMAP item 1b's superlinear chatter made visible).
//   3. Flows: deliveries were recorded, a majority resolve to an originating
//      span, and causal chains actually nest (max depth >= 2).
//   4. Dossiers: a mini-YARN campaign (ZooKeeper's recovers cleanly — Table 5
//      lists no new ZooKeeper bugs) must emit one dossier per bug-verdict
//      injection, each round-tripping through the crashtuner-dossier-v1
//      reader unchanged.
//   5. Overhead: the observed campaign's wall time stays within 10% of the
//      unobserved one. Like the other wall-clock bars this is enforced only
//      on >= 4 hardware threads (CRASHTUNER_ENFORCE_SPEEDUP=1/0 overrides).
//
//   bench_obs_flows [--jobs N] [--json FILE] [--metrics-out FILE]
//                   [--trace-out FILE] [--dossier-dir DIR] [SCALE]
//
// Writes BENCH_obs_flows.json (or --json FILE). Exit status is the number of
// violated criteria.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/campaign.h"
#include "src/core/report_writer.h"
#include "src/obs/dossier.h"

namespace {

double Wall(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  int scale = 8;
  for (const std::string& arg : flags.positional) {
    const int level = std::atoi(arg.c_str());
    if (level >= 1) {
      scale = level;
    }
  }
  const int jobs = flags.jobs > 1 ? flags.jobs : 4;
  const std::string json_path =
      flags.json_path.empty() ? "BENCH_obs_flows.json" : flags.json_path;

  ctbench::PrintHeader("Observability at scale: flows, dwell profile, dossiers");
  std::printf("zookeeper @ scale %d, jobs=%d\n", scale, jobs);

  // Pass 1: observation off. This is the baseline both for passivity (the
  // report must not change) and for the tracing-overhead bar.
  ctzk::ZkSystem baseline_system;
  baseline_system.set_scale(scale);
  (void)baseline_system.model();
  ctcore::DriverOptions off_options;
  off_options.jobs = jobs;
  const auto off_start = std::chrono::steady_clock::now();
  const ctcore::SystemReport report_off =
      ctcore::CrashTunerDriver().Run(baseline_system, off_options);
  const double off_wall = Wall(off_start);

  // Pass 2: observation on — spans, flows, and dossiers all recording.
  ctzk::ZkSystem observed_system;
  observed_system.set_scale(scale);
  ctbench::BenchObservation observation(flags);
  ctobs::CampaignObserver local_observer;
  ctcore::DriverOptions on_options;
  on_options.jobs = jobs;
  ctobs::CampaignObserver* observer = observation.enabled()
                                          ? observation.ObserverFor("zookeeper-obs")
                                          : &local_observer;
  on_options.observer = observer;
  const auto on_start = std::chrono::steady_clock::now();
  const ctcore::SystemReport report_on =
      ctcore::CrashTunerDriver().Run(observed_system, on_options);
  const double on_wall = Wall(on_start);

  int failures = 0;

  // 1. Passivity. Wall-clock timings are the one legitimately nondeterministic
  // part of a report; zero them before the byte comparison like the
  // determinism tests do.
  ctcore::SystemReport off_copy = report_off;
  ctcore::SystemReport on_copy = report_on;
  off_copy.analysis_wall_seconds = on_copy.analysis_wall_seconds = 0;
  off_copy.test_wall_seconds = on_copy.test_wall_seconds = 0;
  const bool reports_identical =
      ctcore::ReportToJson(off_copy) == ctcore::ReportToJson(on_copy) &&
      report_off.trace_hash == report_on.trace_hash;
  std::printf("passivity: reports %s (trace hash %016llx vs %016llx)\n",
              reports_identical ? "byte-identical" : "DIVERGED",
              static_cast<unsigned long long>(report_off.trace_hash),
              static_cast<unsigned long long>(report_on.trace_hash));
  failures += reports_identical ? 0 : 1;

  // Finalize() the observer copy we keep for assertions. BenchObservation
  // owns the observer when file output was requested; Finalize is const-safe
  // to call once more here either way.
  const ctobs::SystemMetrics metrics = observer->Finalize();

  // 2. Dwell attribution.
  unsigned long long total_virtual_ms = 0;
  if (auto it = metrics.metrics.histograms().find("run.virtual_ms");
      it != metrics.metrics.histograms().end()) {
    total_virtual_ms = it->second.sum();
  }
  unsigned long long broadcast_dwell_ms = 0;
  if (auto it = metrics.metrics.counters().find("component.quorum-broadcast.dwell_ms");
      it != metrics.metrics.counters().end()) {
    broadcast_dwell_ms = it->second;
  }
  const double dwell_share =
      total_virtual_ms > 0
          ? static_cast<double>(broadcast_dwell_ms) / static_cast<double>(total_virtual_ms)
          : 0.0;
  std::printf("dwell: quorum-broadcast %llu ms of %llu virtual ms (%.1f%%, bar >= 50%%)\n",
              broadcast_dwell_ms, total_virtual_ms, 100.0 * dwell_share);
  failures += dwell_share >= 0.5 ? 0 : 1;

  // 3. Flows.
  const ctobs::FlowStats& flows = metrics.flows;
  const bool flows_ok = flows.messages > 0 && flows.span_resolved * 2 >= flows.messages &&
                        flows.max_depth >= 2;
  std::printf("flows: %llu deliveries, %llu roots, %llu span-resolved, max depth %llu — %s\n",
              static_cast<unsigned long long>(flows.messages),
              static_cast<unsigned long long>(flows.roots),
              static_cast<unsigned long long>(flows.span_resolved),
              static_cast<unsigned long long>(flows.max_depth), flows_ok ? "ok" : "FAIL");
  failures += flows_ok ? 0 : 1;

  // 4. Dossiers. ZooKeeper's campaign recovers cleanly (Table 5 finds no new
  // ZooKeeper bugs, so no injection earns a bug verdict), so the dossier
  // contract is proved on a mini-YARN campaign in the same process: every
  // bug-verdict injection must have produced one crashtuner-dossier-v1 and
  // each must survive the reader round trip.
  ctyarn::YarnSystem dossier_system;
  ctobs::CampaignObserver local_dossier_observer;
  ctobs::CampaignObserver* dossier_observer = observation.enabled()
                                                  ? observation.ObserverFor("yarn-dossiers")
                                                  : &local_dossier_observer;
  ctcore::DriverOptions dossier_options;
  dossier_options.jobs = jobs;
  dossier_options.observer = dossier_observer;
  const ctcore::SystemReport dossier_report =
      ctcore::CrashTunerDriver().Run(dossier_system, dossier_options);
  int bug_runs = 0;
  for (const ctcore::InjectionResult& injection : dossier_report.injections) {
    bug_runs += injection.outcome.IsBug() ? 1 : 0;
  }
  const std::vector<ctobs::Dossier> dossiers = dossier_observer->dossiers();
  int roundtrip_failures = 0;
  for (const ctobs::Dossier& dossier : dossiers) {
    try {
      const std::string json = dossier.ToJson();
      if (ctobs::Dossier::FromJsonText(json).ToJson() != json) {
        ++roundtrip_failures;
      }
    } catch (const std::exception& error) {
      std::printf("  dossier slot %d failed to parse back: %s\n", dossier.slot, error.what());
      ++roundtrip_failures;
    }
  }
  const bool dossiers_ok = static_cast<int>(dossiers.size()) == bug_runs &&
                           bug_runs > 0 && roundtrip_failures == 0;
  std::printf(
      "dossiers (yarn @ scale 1): %zu emitted for %d bug runs, %d round-trip failure(s) — %s\n",
      dossiers.size(), bug_runs, roundtrip_failures, dossiers_ok ? "ok" : "FAIL");
  failures += dossiers_ok ? 0 : 1;

  // 5. Overhead.
  const double overhead = off_wall > 0 ? (on_wall - off_wall) / off_wall : 0.0;
  const int hardware_threads = ctcore::ResolveJobs(0);
  const bool enforce_overhead = ctbench::EnforceSpeedupBar(hardware_threads);
  std::printf("overhead: %.3fs observed vs %.3fs baseline (%+.1f%%, bar <= 10%%, %s on %d "
              "hardware thread(s))\n",
              on_wall, off_wall, 100.0 * overhead,
              enforce_overhead ? "enforced" : "not enforced", hardware_threads);
  failures += enforce_overhead && overhead > 0.10 ? 1 : 0;

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace/dossier output\n");
    ++failures;
  }

  std::ofstream json(json_path);
  json << "{\n  \"schema\": \"crashtuner-bench-obs-flows-v1\",\n";
  json << "  \"system\": \"zookeeper\",\n";
  json << "  \"scale\": " << scale << ",\n  \"jobs\": " << jobs << ",\n";
  json << "  \"baseline_wall_seconds\": " << off_wall << ",\n";
  json << "  \"observed_wall_seconds\": " << on_wall << ",\n";
  json << "  \"overhead\": " << overhead << ",\n";
  json << "  \"overhead_bar_enforced\": " << (enforce_overhead ? "true" : "false") << ",\n";
  json << "  \"reports_identical\": " << (reports_identical ? "true" : "false") << ",\n";
  json << "  \"total_virtual_ms\": " << total_virtual_ms << ",\n";
  json << "  \"quorum_broadcast_dwell_ms\": " << broadcast_dwell_ms << ",\n";
  json << "  \"quorum_broadcast_dwell_share\": " << dwell_share << ",\n";
  json << "  \"flow_messages\": " << flows.messages << ",\n";
  json << "  \"flow_roots\": " << flows.roots << ",\n";
  json << "  \"flow_span_resolved\": " << flows.span_resolved << ",\n";
  json << "  \"flow_max_depth\": " << flows.max_depth << ",\n";
  json << "  \"dossier_system\": \"yarn\",\n";
  json << "  \"bug_runs\": " << bug_runs << ",\n";
  json << "  \"dossiers\": " << dossiers.size() << ",\n";
  json << "  \"pass\": " << (failures == 0 ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  return failures;
}
