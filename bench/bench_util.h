// Shared helpers for the experiment benches: cached per-system CrashTuner
// reports (each bench binary reruns the pipeline it needs) and tabular
// printing that mirrors the paper's table layout.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/baselines.h"
#include "src/core/crashtuner.h"
#include "src/core/system_under_test.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace ctbench {

// The five systems of Table 4, in paper order.
inline std::vector<std::unique_ptr<ctcore::SystemUnderTest>> AllSystems() {
  std::vector<std::unique_ptr<ctcore::SystemUnderTest>> systems;
  systems.push_back(std::make_unique<ctyarn::YarnSystem>());
  systems.push_back(std::make_unique<cthdfs::HdfsSystem>());
  systems.push_back(std::make_unique<cthbase::HBaseSystem>());
  systems.push_back(std::make_unique<ctzk::ZkSystem>());
  systems.push_back(std::make_unique<ctcass::CassSystem>());
  return systems;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

}  // namespace ctbench

#endif  // BENCH_BENCH_UTIL_H_
