// Shared helpers for the experiment benches: cached per-system CrashTuner
// reports (each bench binary reruns the pipeline it needs) and tabular
// printing that mirrors the paper's table layout.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/core/baselines.h"
#include "src/core/crashtuner.h"
#include "src/core/system_under_test.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace ctbench {

// The five systems of Table 4, in paper order.
inline std::vector<std::unique_ptr<ctcore::SystemUnderTest>> AllSystems() {
  std::vector<std::unique_ptr<ctcore::SystemUnderTest>> systems;
  systems.push_back(std::make_unique<ctyarn::YarnSystem>());
  systems.push_back(std::make_unique<cthdfs::HdfsSystem>());
  systems.push_back(std::make_unique<cthbase::HBaseSystem>());
  systems.push_back(std::make_unique<ctzk::ZkSystem>());
  systems.push_back(std::make_unique<ctcass::CassSystem>());
  return systems;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// Flags shared by the bench binaries: `--jobs N` (campaign worker threads,
// 0 = hardware concurrency), `--speedup` (time the campaign sequential vs
// parallel), `--json FILE` (machine-readable results for CI). Anything else
// stays positional for the bench's own arguments.
struct BenchFlags {
  int jobs = 1;
  bool speedup = false;
  std::string json_path;
  std::vector<std::string> positional;
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      flags.jobs = std::atoi(argv[++i]);
    } else if (arg == "--speedup") {
      flags.speedup = true;
    } else if (arg == "--json" && i + 1 < argc) {
      flags.json_path = argv[++i];
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

}  // namespace ctbench

#endif  // BENCH_BENCH_UTIL_H_
