// Shared helpers for the experiment benches: cached per-system CrashTuner
// reports (each bench binary reruns the pipeline it needs) and tabular
// printing that mirrors the paper's table layout.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/baselines.h"
#include "src/core/crashtuner.h"
#include "src/core/system_under_test.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/observer.h"
#include "src/obs/snapshot.h"
#include "src/systems/cassandra/cass_system.h"
#include "src/systems/hbase/hbase_system.h"
#include "src/systems/hdfs/hdfs_system.h"
#include "src/systems/yarn/yarn_system.h"
#include "src/systems/zookeeper/zk_system.h"

namespace ctbench {

// The five systems of Table 4, in paper order.
inline std::vector<std::unique_ptr<ctcore::SystemUnderTest>> AllSystems() {
  std::vector<std::unique_ptr<ctcore::SystemUnderTest>> systems;
  systems.push_back(std::make_unique<ctyarn::YarnSystem>());
  systems.push_back(std::make_unique<cthdfs::HdfsSystem>());
  systems.push_back(std::make_unique<cthbase::HBaseSystem>());
  systems.push_back(std::make_unique<ctzk::ZkSystem>());
  systems.push_back(std::make_unique<ctcass::CassSystem>());
  return systems;
}

// Whether a bench should fail (not merely report) a missed parallel-speedup
// or overhead bar. Auto-detected from hardware concurrency — a 1-core CI
// runner cannot demonstrate a 2x jobs=4 speedup, so the bar is advisory
// there — with a CRASHTUNER_ENFORCE_SPEEDUP env override: "1" forces the
// bar on (the multi-core CI lane sets this so the bar cannot silently relax
// if hardware detection misfires), "0" forces it off (local debugging on a
// loaded laptop).
inline bool EnforceSpeedupBar(int hardware_threads) {
  const char* env = std::getenv("CRASHTUNER_ENFORCE_SPEEDUP");
  if (env != nullptr && env[0] == '1') {
    return true;
  }
  if (env != nullptr && env[0] == '0') {
    return false;
  }
  return hardware_threads >= 4;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// Flags shared by the bench binaries: `--jobs N` (campaign worker threads,
// 0 = hardware concurrency), `--speedup` (time the campaign sequential vs
// parallel), `--json FILE` (machine-readable results for CI),
// `--metrics-out FILE` (campaign metrics snapshot, see src/obs/snapshot.h),
// `--trace-out FILE` (Chrome-trace export for Perfetto) and
// `--dossier-dir DIR` (one crashtuner-dossier-v1 JSON per failing run, see
// src/obs/dossier.h). The observability flags also accept `--flag=value`
// form. Anything else stays positional for the bench's own arguments.
struct BenchFlags {
  int jobs = 1;
  bool speedup = false;
  std::string json_path;
  std::string metrics_out;
  std::string trace_out;
  std::string dossier_dir;
  std::vector<std::string> positional;
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  auto starts_with = [](const std::string& text, const std::string& prefix) {
    return text.compare(0, prefix.size(), prefix) == 0;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      flags.jobs = std::atoi(argv[++i]);
    } else if (arg == "--speedup") {
      flags.speedup = true;
    } else if (arg == "--json" && i + 1 < argc) {
      flags.json_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      flags.metrics_out = argv[++i];
    } else if (starts_with(arg, "--metrics-out=")) {
      flags.metrics_out = arg.substr(std::string("--metrics-out=").size());
    } else if (arg == "--trace-out" && i + 1 < argc) {
      flags.trace_out = argv[++i];
    } else if (starts_with(arg, "--trace-out=")) {
      flags.trace_out = arg.substr(std::string("--trace-out=").size());
    } else if (arg == "--dossier-dir" && i + 1 < argc) {
      flags.dossier_dir = argv[++i];
    } else if (starts_with(arg, "--dossier-dir=")) {
      flags.dossier_dir = arg.substr(std::string("--dossier-dir=").size());
    } else {
      flags.positional.push_back(arg);
    }
  }
  return flags;
}

// Bench-side observability plumbing for --metrics-out / --trace-out. A bench
// asks for one observer per campaign it runs (ObserverFor returns null when
// neither flag was given, and DriverOptions::observer accepts null, so
// unobserved invocations cost nothing), then calls Write() once at the end
// to emit the snapshot and/or Chrome trace covering every campaign.
class BenchObservation {
 public:
  explicit BenchObservation(const BenchFlags& flags)
      : metrics_out_(flags.metrics_out), trace_out_(flags.trace_out),
        dossier_dir_(flags.dossier_dir) {}

  bool enabled() const {
    return !metrics_out_.empty() || !trace_out_.empty() || !dossier_dir_.empty();
  }

  // A fresh observer labeled `name` (duplicates get "#2", "#3", ... so
  // benches that run the same system twice keep both campaigns). Null when
  // observability is off.
  ctobs::CampaignObserver* ObserverFor(const std::string& name) {
    if (!enabled()) {
      return nullptr;
    }
    int uses = ++name_uses_[name];
    std::string label = uses == 1 ? name : name + "#" + std::to_string(uses);
    observers_.emplace_back(label, std::make_unique<ctobs::CampaignObserver>());
    return observers_.back().second.get();
  }

  // Emits the requested files. Returns false if any write failed.
  bool Write() const {
    bool ok = true;
    if (!metrics_out_.empty()) {
      ctobs::MetricsSnapshot snapshot;
      for (const auto& [label, observer] : observers_) {
        ctobs::SystemMetrics system = observer->Finalize();
        system.system = label;  // the bench's label, not the driver's
        snapshot.systems.push_back(std::move(system));
      }
      ok = snapshot.WriteFile(metrics_out_) && ok;
    }
    if (!trace_out_.empty()) {
      ctobs::ChromeTraceWriter writer;
      int pid = 1;
      for (const auto& [label, observer] : observers_) {
        observer->AppendChromeTrace(&writer, pid++, label);
      }
      ok = writer.WriteFile(trace_out_) && ok;
    }
    if (!dossier_dir_.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(dossier_dir_, ec);
      if (ec) {
        return false;
      }
      for (const auto& [label, observer] : observers_) {
        for (const ctobs::Dossier& dossier : observer->dossiers()) {
          const std::filesystem::path path =
              std::filesystem::path(dossier_dir_) /
              (label + "-slot" + std::to_string(dossier.slot) + ".json");
          std::ofstream out(path);
          if (!out) {
            ok = false;
            continue;
          }
          out << dossier.ToJson() << "\n";
          ok = static_cast<bool>(out) && ok;
        }
      }
    }
    return ok;
  }

 private:
  std::string metrics_out_;
  std::string trace_out_;
  std::string dossier_dir_;
  std::map<std::string, int> name_uses_;
  std::vector<std::pair<std::string, std::unique_ptr<ctobs::CampaignObserver>>> observers_;
};

}  // namespace ctbench

#endif  // BENCH_BENCH_UTIL_H_
