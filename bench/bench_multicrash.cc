// Extension bench (§6 future work): pairwise multi-crash injection on
// mini-YARN. First runs the standard single-crash pipeline, then chains a
// second injection onto each run and reports which failures only appear
// under two crashes.
//
// --static-only draws the pair candidates from statically enumerated
// contexts (ContextMode::kStaticOnly) instead of profiled runs — the
// quadratic phase then needs zero profiling workloads. --json FILE
// additionally runs the profiled and static pipelines on all five systems
// and writes the pair-set precision/recall cross-check per system.
#include <chrono>
#include <fstream>

#include "bench/bench_util.h"
#include "src/analysis/log_analysis.h"
#include "src/core/campaign.h"
#include "src/core/executor.h"
#include "src/core/multi_crash.h"

namespace {

// Uncapped pair-set cross-check for one system: profiled pipeline vs
// static-only pipeline over the same seed.
struct PairCrossRow {
  std::string system;
  ctcore::PairSetCrossCheck check;
  int static_points = 0;
  int profiled_points = 0;
  int instrumented_runs = 0;  // of the static pipeline; must be 0
};

PairCrossRow CrossCheckSystem(const ctcore::SystemUnderTest& system) {
  ctcore::CrashTunerDriver driver;
  ctcore::SystemReport profiled = driver.Run(system);
  ctcore::DriverOptions options;
  options.context_mode = ctcore::ContextMode::kStaticOnly;
  ctcore::SystemReport enumerated = driver.Run(system, options);
  PairCrossRow row;
  row.system = system.name();
  row.check = ctcore::ComparePairSets(profiled.profile.dynamic_access_points,
                                      enumerated.profile.dynamic_access_points);
  row.static_points = static_cast<int>(enumerated.profile.dynamic_access_points.size());
  row.profiled_points = static_cast<int>(profiled.profile.dynamic_access_points.size());
  row.instrumented_runs = enumerated.profile.instrumented_runs;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  bool static_only = false;
  int max_pairs = 60;
  for (const std::string& arg : flags.positional) {
    if (arg == "--static-only") {
      static_only = true;
    } else {
      max_pairs = std::atoi(arg.c_str());
    }
  }
  ctbench::PrintHeader(static_only
                           ? "Extension — multi-crash injection on mini-YARN (static contexts)"
                           : "Extension — multi-crash (pairwise) injection on mini-YARN");

  ctbench::BenchObservation observation(flags);
  ctyarn::YarnSystem yarn;
  ctcore::CrashTunerDriver driver;
  ctcore::DriverOptions options;
  if (static_only) {
    options.context_mode = ctcore::ContextMode::kStaticOnly;
  }
  options.observer = observation.ObserverFor(yarn.name() + "/single");
  ctcore::SystemReport single = driver.Run(yarn, options);
  std::printf("contexts    : %s, %d dynamic points, %d instrumented (profiling) runs\n",
              static_only ? "statically enumerated" : "profiled",
              single.dynamic_crash_points, single.profile.instrumented_runs);

  ctanalysis::LogAnalysis log_analysis(&yarn.model(), {"master", "node1", "node2", "node3"});
  ctlog::OnlineFilter filter = log_analysis.MakeOnlineFilter(single.log_result);
  ctcore::MultiCrashTester tester(&yarn, &single.crash_points, filter, single.profile.baseline);
  auto seq_start = std::chrono::steady_clock::now();
  ctcore::MultiCrashReport report =
      tester.TestPairs(single.profile, single.injections, max_pairs, 424242);
  double seq_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - seq_start).count();

  std::printf("single-crash: %zu runs, %zu issues\n", single.injections.size(),
              single.bugs.size());
  std::printf("pairwise    : %d runs (%.2f virt h), %zu failing, %zu with failure signatures\n"
              "              unreachable by any single crash\n",
              report.pairs_tested, report.virtual_hours, report.failing.size(),
              report.multi_only.size());
  for (const auto& pair : report.multi_only) {
    std::printf("  multi-only: %s + %s -> %s\n", pair.first_location.c_str(),
                pair.second_location.c_str(), pair.outcome.PrimarySymptom().c_str());
    for (const auto& exception : pair.outcome.uncommon_exceptions) {
      std::printf("      exc: %s\n", exception.c_str());
    }
  }
  ctbench::PrintRule();
  std::printf("The quadratic pair space is why the paper scopes CrashTuner to single\n"
              "crashes: %d pairs already cost %.1fx the single-crash testing time.\n",
              report.pairs_tested,
              single.test_virtual_hours > 0 ? report.virtual_hours / single.test_virtual_hours
                                            : 0.0);

  // Pair runs are independent, so the quadratic space is also the best place
  // to spend worker threads; --jobs N times the same campaign in parallel.
  const int jobs = ctcore::ResolveJobs(flags.jobs);
  if (jobs > 1) {
    auto par_start = std::chrono::steady_clock::now();
    ctcore::MultiCrashReport parallel =
        tester.TestPairs(single.profile, single.injections, max_pairs, 424242, jobs);
    double par_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - par_start).count();
    std::printf("parallel    : jobs=%d, %.3fs wall vs %.3fs sequential (%.2fx), report %s\n",
                jobs, par_wall, seq_wall, par_wall > 0 ? seq_wall / par_wall : 0.0,
                parallel.pairs_tested == report.pairs_tested &&
                        parallel.failing.size() == report.failing.size() &&
                        parallel.multi_only.size() == report.multi_only.size()
                    ? "identical"
                    : "DIVERGED");
  }

  if (!flags.json_path.empty()) {
    ctbench::PrintRule();
    std::printf("pair-set cross-check (uncapped): static-only vs profiled per system\n");
    std::printf("%-16s %8s %8s %8s %8s %10s %6s\n", "system", "prof-pts", "stat-pts",
                "prof-prs", "stat-prs", "recall", "prec");
    std::ofstream json(flags.json_path);
    json << "[";
    bool first = true;
    for (const auto& system : ctbench::AllSystems()) {
      PairCrossRow row = CrossCheckSystem(*system);
      std::printf("%-16s %8d %8d %8lld %8lld %9.1f%% %5.3f\n", row.system.c_str(),
                  row.profiled_points, row.static_points, row.check.profiled,
                  row.check.enumerated, 100.0 * row.check.Recall(), row.check.Precision());
      if (!first) {
        json << ",";
      }
      first = false;
      json << "\n  {\"system\":\"" << row.system << "\",\"profiled_points\":"
           << row.profiled_points << ",\"static_points\":" << row.static_points
           << ",\"profiled_pairs\":" << row.check.profiled
           << ",\"static_pairs\":" << row.check.enumerated
           << ",\"matched_pairs\":" << row.check.matched << ",\"recall\":" << row.check.Recall()
           << ",\"precision\":" << row.check.Precision()
           << ",\"static_instrumented_runs\":" << row.instrumented_runs << "}";
    }
    json << "\n]\n";
    std::printf("wrote %s\n", flags.json_path.c_str());
  }

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
