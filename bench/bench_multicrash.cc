// Extension bench (§6 future work): pairwise multi-crash injection on
// mini-YARN. First runs the standard single-crash pipeline, then chains a
// second injection onto each run and reports which failures only appear
// under two crashes.
#include <chrono>

#include "bench/bench_util.h"
#include "src/analysis/log_analysis.h"
#include "src/core/campaign.h"
#include "src/core/executor.h"
#include "src/core/multi_crash.h"

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  int max_pairs =
      flags.positional.empty() ? 60 : std::atoi(flags.positional.front().c_str());
  ctbench::PrintHeader("Extension — multi-crash (pairwise) injection on mini-YARN");

  ctyarn::YarnSystem yarn;
  ctcore::CrashTunerDriver driver;
  ctcore::SystemReport single = driver.Run(yarn);

  ctanalysis::LogAnalysis log_analysis(&yarn.model(), {"master", "node1", "node2", "node3"});
  ctlog::OnlineFilter filter = log_analysis.MakeOnlineFilter(single.log_result);
  ctcore::MultiCrashTester tester(&yarn, &single.crash_points, filter, single.profile.baseline);
  auto seq_start = std::chrono::steady_clock::now();
  ctcore::MultiCrashReport report =
      tester.TestPairs(single.profile, single.injections, max_pairs, 424242);
  double seq_wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - seq_start).count();

  std::printf("single-crash: %zu runs, %zu issues\n", single.injections.size(),
              single.bugs.size());
  std::printf("pairwise    : %d runs (%.2f virt h), %zu failing, %zu with failure signatures\n"
              "              unreachable by any single crash\n",
              report.pairs_tested, report.virtual_hours, report.failing.size(),
              report.multi_only.size());
  for (const auto& pair : report.multi_only) {
    std::printf("  multi-only: %s + %s -> %s\n", pair.first_location.c_str(),
                pair.second_location.c_str(), pair.outcome.PrimarySymptom().c_str());
    for (const auto& exception : pair.outcome.uncommon_exceptions) {
      std::printf("      exc: %s\n", exception.c_str());
    }
  }
  ctbench::PrintRule();
  std::printf("The quadratic pair space is why the paper scopes CrashTuner to single\n"
              "crashes: %d pairs already cost %.1fx the single-crash testing time.\n",
              report.pairs_tested,
              single.test_virtual_hours > 0 ? report.virtual_hours / single.test_virtual_hours
                                            : 0.0);

  // Pair runs are independent, so the quadratic space is also the best place
  // to spend worker threads; --jobs N times the same campaign in parallel.
  const int jobs = ctcore::ResolveJobs(flags.jobs);
  if (jobs > 1) {
    auto par_start = std::chrono::steady_clock::now();
    ctcore::MultiCrashReport parallel =
        tester.TestPairs(single.profile, single.injections, max_pairs, 424242, jobs);
    double par_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - par_start).count();
    std::printf("parallel    : jobs=%d, %.3fs wall vs %.3fs sequential (%.2fx), report %s\n",
                jobs, par_wall, seq_wall, par_wall > 0 ? seq_wall / par_wall : 0.0,
                parallel.pairs_tested == report.pairs_tested &&
                        parallel.failing.size() == report.failing.size() &&
                        parallel.multi_only.size() == report.multi_only.size()
                    ? "identical"
                    : "DIVERGED");
  }
  return 0;
}
