// Ablation beyond the paper: the call-string bound of Definition 1. The
// paper fixes context depth at 5; this bench sweeps the bound and reports
// how many dynamic crash points (and detected bugs) each depth yields.
// Depth 1 merges contexts (losing e.g. the second YARN-9164 exposure);
// deeper bounds split them at the cost of more injection runs.
#include "bench/bench_util.h"
#include "src/runtime/tracer.h"

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader("Ablation — call-stack depth bound vs dynamic crash points (mini-YARN)");
  std::printf("%5s %16s %10s %14s\n", "depth", "dynamic points", "bugs", "test virt h");
  for (int depth = 1; depth <= 6; ++depth) {
    // Every per-run tracer the driver creates inherits the swept default.
    ctrt::AccessTracer::SetDefaultStackDepth(depth);
    ctyarn::YarnSystem yarn;
    ctcore::CrashTunerDriver driver;
    ctcore::DriverOptions options;
    options.observer = observation.ObserverFor("yarn/depth" + std::to_string(depth));
    ctcore::SystemReport report = driver.Run(yarn, options);
    std::printf("%5d %16d %10zu %14.2f%s\n", depth, report.dynamic_crash_points,
                report.bugs.size(), report.test_virtual_hours,
                depth == ctrt::CallStack::kMaxDepth ? "   <- paper's bound" : "");
  }
  ctrt::AccessTracer::SetDefaultStackDepth(ctrt::CallStack::kMaxDepth);

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
