// Scale-out simulator bench (CI stage 4f): quantifies the ladder-queue /
// slab-allocated event loop against the original std::priority_queue loop,
// and sweeps full-system campaigns across deployment scales and worker
// counts.
//
// Part 1 — scheduler microbench. LegacyEventLoop below is the pre-ladder
// implementation, embedded verbatim (string owners, Event copies out of the
// priority queue, a cancelled-id list scanned linearly on every pop). Both
// loops run the identical self-sustaining schedule/cancel/pop workload: a
// live population of `window` events, each firing event scheduling a
// successor at a pseudorandom delay, with `cancel_pct`% of scheduled events
// cancelled immediately (and replaced, keeping the population constant).
// The acceptance bar is ladder >= 10x legacy events/sec.
//
// Part 2 — campaign sweep. For each --scale level and jobs in {1, 4}, runs
// a fixed batch of fault-free deployments of all five systems (seeds vary
// per replicate) through CampaignEngine, reporting runs/sec, events/sec and
// peak pending-event depth. Per-run event counts must be identical across
// jobs counts (determinism), and jobs=4 must be >= 2x jobs=1 at the largest
// level.
//
//   bench_scale [--json FILE] [SCALE...]        (default levels: 1 2 8)
//
// Writes BENCH_scale.json (or --json FILE). Exit status is the number of
// violated criteria.
#include <chrono>
#include <fstream>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/campaign.h"
#include "src/sim/event_loop.h"

namespace {

// ---------------------------------------------------------------------------
// The event loop this PR replaced, kept as the microbench baseline. This is
// the original implementation (trace/alive hooks dropped — the workload uses
// neither), not a simplification: per-pop costs are the Event copy out of
// priority_queue::top() and the linear cancelled_ scan.
class LegacyEventLoop {
 public:
  using Time = ctsim::Time;
  using EventId = ctsim::EventId;

  Time Now() const { return now_; }

  EventId Schedule(Time delay, std::function<void()> fn, std::string owner = "") {
    return ScheduleAt(now_ + delay, std::move(fn), std::move(owner));
  }

  EventId ScheduleAt(Time when, std::function<void()> fn, std::string owner = "") {
    Event event;
    event.when = when;
    event.seq = next_seq_++;
    event.id = next_id_++;
    event.owner = std::move(owner);
    event.fn = std::move(fn);
    EventId id = event.id;
    queue_.push(std::move(event));
    return id;
  }

  void Cancel(EventId id) { cancelled_.push_back(id); }

  void RunToCompletion() {
    while (PopAndRun()) {
    }
  }

  uint64_t executed_events() const { return executed_events_; }

 private:
  struct Event {
    Time when = 0;
    uint64_t seq = 0;
    EventId id = 0;
    std::string owner;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  bool PopAndRun() {
    while (!queue_.empty()) {
      Event event = queue_.top();  // the copy the ladder loop eliminates
      queue_.pop();
      if (std::find(cancelled_.begin(), cancelled_.end(), event.id) != cancelled_.end()) {
        std::erase(cancelled_, event.id);
        continue;
      }
      now_ = std::max(now_, event.when);
      ++executed_events_;
      event.fn();
      return true;
    }
    return false;
  }

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t executed_events_ = 0;
};

double Wall(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct MicroResult {
  uint64_t schedule_ops = 0;
  uint64_t fired = 0;
  double wall_seconds = 0;
  double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(schedule_ops) / wall_seconds : 0;
  }
};

// Identical workload for both loop types: `window` live events, each firing
// event schedules one successor, `cancel_pct`% of schedules are immediately
// cancelled and replaced. Deterministic LCG, same stream for both loops.
template <typename Loop>
MicroResult RunMicro(long long total_events, int window, int cancel_pct) {
  Loop loop;
  uint64_t lcg = 0x9e3779b97f4a7c15ull;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<uint32_t>(lcg >> 33);
  };
  MicroResult result;
  long long remaining = total_events;
  std::function<void()> tick;
  auto schedule_one = [&] {
    while (remaining > 0) {
      --remaining;
      ++result.schedule_ops;
      const ctsim::Time delay = 1 + next() % 2048;
      const ctsim::EventId id = loop.Schedule(delay, tick);
      if (static_cast<int>(next() % 100) < cancel_pct) {
        loop.Cancel(id);
        continue;  // replace the cancelled event; population stays at window
      }
      break;
    }
  };
  tick = [&] {
    ++result.fired;
    schedule_one();
  };
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < window; ++i) {
    schedule_one();
  }
  loop.RunToCompletion();
  result.wall_seconds = Wall(start);
  return result;
}

// ---------------------------------------------------------------------------
// Campaign sweep: replicated fault-free deployments through CampaignEngine.

struct RunStats {
  uint64_t executed = 0;
  uint64_t scheduled = 0;
  uint64_t peak_pending = 0;
};

struct CellResult {
  int scale = 0;
  int jobs = 0;
  int runs = 0;
  double wall_seconds = 0;
  uint64_t events = 0;
  uint64_t peak_pending = 0;
  std::vector<uint64_t> per_task_events;  // determinism fingerprint
  double runs_per_sec() const {
    return wall_seconds > 0 ? runs / wall_seconds : 0;
  }
  double events_per_sec() const {
    return wall_seconds > 0 ? static_cast<double>(events) / wall_seconds : 0;
  }
};

constexpr int kReplicates = 8;

RunStats ExecuteFaultFree(const ctcore::SystemUnderTest& system, uint64_t seed) {
  std::unique_ptr<ctcore::WorkloadRun> run =
      system.NewRun(system.default_workload_size(), seed);
  ctrt::ScopedRunContext bind(run->context());
  run->cluster().StartAll();
  run->Start();
  ctsim::EventLoop& loop = run->cluster().loop();
  loop.RunUntil(run->ExpectedDurationMs() * 2);
  RunStats stats;
  stats.executed = loop.executed_events();
  stats.scheduled = loop.scheduled_events();
  stats.peak_pending = loop.peak_pending_events();
  return stats;
}

CellResult SweepCell(const std::vector<std::unique_ptr<ctcore::SystemUnderTest>>& systems,
                     int scale, int jobs) {
  ctcore::CampaignEngine engine(jobs);
  const int tasks = static_cast<int>(systems.size()) * kReplicates;
  const auto start = std::chrono::steady_clock::now();
  std::vector<RunStats> stats = engine.Map(tasks, [&](int i) {
    const auto& system = systems[static_cast<size_t>(i) % systems.size()];
    const uint64_t replicate = static_cast<uint64_t>(i) / systems.size();
    return ExecuteFaultFree(*system, 0x5eedull + replicate);
  });
  CellResult cell;
  cell.scale = scale;
  cell.jobs = jobs;
  cell.runs = tasks;
  cell.wall_seconds = Wall(start);
  for (const RunStats& s : stats) {
    cell.events += s.executed;
    cell.peak_pending = std::max(cell.peak_pending, s.peak_pending);
    cell.per_task_events.push_back(s.scheduled);
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  std::vector<int> levels;
  for (const std::string& arg : flags.positional) {
    const int level = std::atoi(arg.c_str());
    if (level >= 1) {
      levels.push_back(level);
    }
  }
  if (levels.empty()) {
    levels = {1, 2, 8};
  }
  const std::string json_path = flags.json_path.empty() ? "BENCH_scale.json" : flags.json_path;

  ctbench::PrintHeader("Scale-out simulator core: scheduler + campaign sweep");

  // Part 1: microbench.
  const long long kMicroEvents = 400000;
  const int kWindow = 10000;
  const int kCancelPct = 30;
  MicroResult legacy = RunMicro<LegacyEventLoop>(kMicroEvents, kWindow, kCancelPct);
  MicroResult ladder = RunMicro<ctsim::EventLoop>(kMicroEvents, kWindow, kCancelPct);
  const double ratio =
      legacy.events_per_sec() > 0 ? ladder.events_per_sec() / legacy.events_per_sec() : 0;
  std::printf("scheduler microbench (%lld events, %d live, %d%% cancels)\n", kMicroEvents,
              kWindow, kCancelPct);
  std::printf("  legacy priority_queue : %12.0f events/sec  (%.2fs)\n",
              legacy.events_per_sec(), legacy.wall_seconds);
  std::printf("  ladder + slab         : %12.0f events/sec  (%.2fs)\n",
              ladder.events_per_sec(), ladder.wall_seconds);
  std::printf("  speedup               : %11.1fx  (bar: >= 10x)\n", ratio);
  if (legacy.fired != ladder.fired) {
    std::printf("  WARNING: fired-event counts differ (legacy %llu vs ladder %llu)\n",
                static_cast<unsigned long long>(legacy.fired),
                static_cast<unsigned long long>(ladder.fired));
  }

  // Part 2: campaign sweep.
  ctbench::PrintRule();
  std::printf("%-7s %-5s %6s %10s %12s %14s %12s\n", "scale", "jobs", "runs", "wall_s",
              "runs/sec", "events/sec", "peak_pend");
  std::vector<CellResult> cells;
  bool deterministic = true;
  for (int scale : levels) {
    auto systems = ctbench::AllSystems();
    for (auto& system : systems) {
      system->set_scale(scale);
      (void)system->model();  // warm the per-system artifact singletons
    }
    CellResult sequential = SweepCell(systems, scale, 1);
    CellResult parallel = SweepCell(systems, scale, 4);
    deterministic = deterministic && sequential.per_task_events == parallel.per_task_events;
    for (const CellResult& cell : {sequential, parallel}) {
      std::printf("%-7d %-5d %6d %10.3f %12.1f %14.0f %12llu\n", cell.scale, cell.jobs,
                  cell.runs, cell.wall_seconds, cell.runs_per_sec(), cell.events_per_sec(),
                  static_cast<unsigned long long>(cell.peak_pending));
    }
    cells.push_back(sequential);
    cells.push_back(parallel);
  }
  const CellResult& last_seq = cells[cells.size() - 2];
  const CellResult& last_par = cells[cells.size() - 1];
  const double jobs4_speedup =
      last_par.wall_seconds > 0 ? last_seq.wall_seconds / last_par.wall_seconds : 0;
  // The speedup bar only means something when 4 workers have 4 cores to run
  // on; on smaller machines (single-core CI containers) the number is
  // reported but not enforced, same as the stage-4 parallel smoke.
  // CRASHTUNER_ENFORCE_SPEEDUP=1/0 overrides the auto-detection either way.
  const int hardware_threads = ctcore::ResolveJobs(0);
  const bool enforce_speedup = ctbench::EnforceSpeedupBar(hardware_threads);
  std::printf("jobs=4 speedup at scale %d: %.2fx  (bar: >= 2x, %s on %d hardware thread(s))\n",
              last_seq.scale, jobs4_speedup, enforce_speedup ? "enforced" : "not enforced",
              hardware_threads);
  std::printf("per-run event counts identical across jobs: %s\n", deterministic ? "yes" : "NO");

  int failures = 0;
  failures += ratio < 10.0 ? 1 : 0;
  failures += enforce_speedup && jobs4_speedup < 2.0 ? 1 : 0;
  failures += deterministic ? 0 : 1;

  std::ofstream json(json_path);
  json << "{\n  \"schema\": \"crashtuner-bench-scale-v1\",\n";
  json << "  \"microbench\": {\n";
  json << "    \"events\": " << kMicroEvents << ",\n";
  json << "    \"live_window\": " << kWindow << ",\n";
  json << "    \"cancel_pct\": " << kCancelPct << ",\n";
  json << "    \"legacy_events_per_sec\": " << legacy.events_per_sec() << ",\n";
  json << "    \"ladder_events_per_sec\": " << ladder.events_per_sec() << ",\n";
  json << "    \"ratio\": " << ratio << "\n  },\n";
  json << "  \"campaigns\": [\n";
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    json << "    {\"scale\": " << cell.scale << ", \"jobs\": " << cell.jobs
         << ", \"runs\": " << cell.runs << ", \"wall_seconds\": " << cell.wall_seconds
         << ", \"runs_per_sec\": " << cell.runs_per_sec()
         << ", \"events_per_sec\": " << cell.events_per_sec()
         << ", \"peak_pending\": " << cell.peak_pending << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"largest_scale\": " << last_seq.scale << ",\n";
  json << "  \"jobs4_speedup_at_largest\": " << jobs4_speedup << ",\n";
  json << "  \"hardware_threads\": " << hardware_threads << ",\n";
  json << "  \"speedup_bar_enforced\": " << (enforce_speedup ? "true" : "false") << ",\n";
  json << "  \"deterministic\": " << (deterministic ? "true" : "false") << ",\n";
  json << "  \"pass\": " << (failures == 0 ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  return failures;
}
