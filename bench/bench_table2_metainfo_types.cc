// Table 2: meta-info types inferred for the Fig. 3 Yarn example — the
// log-identified (*) seeds and the statically derived members, grouped by
// the kind of meta-info they refer to. Also prints the Table 3 keyword
// table the collection classification uses.
#include "bench/bench_util.h"
#include "src/analysis/crash_point_analysis.h"
#include "src/core/crashtuner.h"
#include "src/systems/yarn/yarn_system.h"

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader("Table 2 — meta-info types for the Hadoop2/Yarn example");
  ctyarn::YarnSystem yarn;
  ctcore::DriverOptions options;
  options.observer = observation.ObserverFor(yarn.name());
  ctcore::SystemReport report = ctcore::CrashTunerDriver().Run(yarn, options);

  for (const auto& [group, members] : report.metainfo.ByGroup()) {
    std::printf("%s\n", group.c_str());
    for (const auto& info : members) {
      std::printf("  %-62s %s\n", info.name.c_str(),
                  info.from_log ? "*" : info.derived_via.c_str());
    }
  }
  ctbench::PrintRule();
  std::printf("log-identified seeds: %zu   derived: %zu   total meta-info types: %d\n",
              report.log_result.seed_types.size(),
              report.metainfo.types.size() - report.log_result.seed_types.size(),
              report.metainfo.NumTypes());

  ctbench::PrintHeader("Table 3 — collection read/write keywords (classification check)");
  const char* reads[] = {"get",     "peek",  "poll",    "clone",   "at",     "element", "index",
                         "toArray", "sub",   "contain", "isEmpty", "exist",  "values"};
  const char* writes[] = {"add",     "clear", "remove", "retain", "put",      "insert",
                          "set",     "replace", "offer", "push",   "pop",      "copyInto"};
  std::printf("read : ");
  for (const char* keyword : reads) {
    std::printf("%s%s ", keyword, ctanalysis::IsCollectionReadOp(keyword) ? "" : "(!)");
  }
  std::printf("\nwrite: ");
  for (const char* keyword : writes) {
    std::printf("%s%s ", keyword, ctanalysis::IsCollectionWriteOp(keyword) ? "" : "(!)");
  }
  std::printf("\n");

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
