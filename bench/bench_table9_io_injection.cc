// Tables 8 and 9: the IO-fault-injection baseline (§4.2.2). Table 8 counts
// the IO surface (Closeable classes, read/write/flush/close methods, static
// and dynamic IO call sites); Table 9 injects a crash of the executing node
// before and after every dynamic IO point. The shape to check: IO faults are
// overwhelmingly tolerated (exception handlers exist for IO), and the only
// bug within reach is YARN-9201, whose window happens to contain an IO call.
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  // The IO baseline drives runs through IoFaultInjector, not the campaign
  // driver, so --metrics-out/--trace-out produce empty (but well-formed)
  // outputs; the flags are still accepted for CI uniformity.
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader("Table 8 — IO classes, methods and IO points");
  std::printf("%-14s %10s %11s %10s %11s\n", "System", "IOclasses", "IOmethods", "StaticIO",
              "DynamicIO");
  ctbench::PrintRule();

  std::vector<ctcore::BaselineReport> reports;
  for (const auto& system : ctbench::AllSystems()) {
    ctcore::IoFaultInjector injector;
    reports.push_back(injector.Run(*system, 20191027));
    const auto& report = reports.back();
    std::printf("%-14s %10d %11d %10d %11d\n", system->name().c_str(), report.io_classes,
                report.io_methods, report.static_io_points, report.dynamic_io_points);
  }

  ctbench::PrintHeader("Table 9 — results of IO fault injection");
  std::printf("%-14s %10s %8s %12s %6s %s\n", "System", "Virt(h)", "Trials", "FailingRuns",
              "Bugs", "Ids");
  ctbench::PrintRule();
  auto systems = ctbench::AllSystems();
  int total_bugs = 0;
  for (size_t i = 0; i < systems.size(); ++i) {
    const auto& report = reports[i];
    total_bugs += static_cast<int>(report.bugs.size());
    std::printf("%-14s %10.2f %8d %12zu %6zu ", systems[i]->name().c_str(), report.virtual_hours,
                report.trials, report.failing_trials.size(), report.bugs.size());
    for (const auto& bug : report.bugs) {
      std::printf("%s ", bug.bug_id.c_str());
    }
    std::printf("\n");
  }
  ctbench::PrintRule();
  std::printf("measured: %d issues total\n", total_bugs);
  std::printf("paper   : 1 bug (YARN-9201, 6 times); IO exceptions elsewhere are handled\n"
              "          (e.g. the HDFS LogHeaderCorruptException the standby truncates)\n");

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
