// Table 7: random fault injection over all five systems, in both fault
// modes. The paper runs 3000 random-crash trials per system; the bench
// default is smaller for wall-clock sanity and scalable via the first
// positional argument. The shape to check: random needs orders of magnitude
// more runs per bug than CrashTuner, and only finds the bugs with windows
// that are seconds wide (node-startup windows — YARN-9194-like, HBASE-21740,
// MR-7178).
//
// The network-random column is the same comparison for the seeded message
// races: the guided driver (InjectionMode::kNetworkFault) arms a partition
// in each meta-info window and reproduces every declared race in one pass
// per dynamic point, while blind partition trials have to get victim, cut
// time, and window length right at once. `--json FILE` emits the comparison
// (BENCH_network_faults.json in CI).
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench/bench_util.h"

namespace {

struct NetworkRow {
  std::string system;
  int guided_injections = 0;
  int guided_race_hits = 0;  // injections exposing the declared race
  bool guided_race_found = false;
  int random_trials = 0;
  int random_failing = 0;
  int random_bugs = 0;        // dedup'd triaged issues
  int first_race_trial = -1;  // -1: no random trial reproduced the race
  double wall_seconds = 0;
};

// Index (in trial order) of the first random trial whose failure triages to
// a message-race known bug; -1 when none does.
int FirstRaceTrial(const ctcore::SystemUnderTest& system,
                   const ctcore::BaselineReport& report) {
  for (const auto& trial : report.failing_trials) {
    for (const auto& bug : ctcore::TriageBaselineBugs(system, {trial})) {
      if (bug.scenario == "message-race") {
        return trial.trial_index;
      }
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  int trials = flags.positional.empty() ? 300 : std::atoi(flags.positional[0].c_str());

  ctbench::PrintHeader("Table 7 — random crash injection (" + std::to_string(trials) +
                       " trials/system; paper used 3000)");
  std::printf("%-14s %10s %12s %10s %s\n", "System", "Virt(h)", "FailingRuns", "Bugs", "Ids");
  ctbench::PrintRule();

  int total_bugs = 0;
  double total_hours = 0;
  for (const auto& system : ctbench::AllSystems()) {
    ctcore::RandomCrashInjector injector;
    ctcore::BaselineReport report = injector.Run(*system, trials, 20190427, flags.jobs);
    total_hours += report.virtual_hours;
    total_bugs += static_cast<int>(report.bugs.size());
    std::printf("%-14s %10.2f %12zu %10zu ", system->name().c_str(), report.virtual_hours,
                report.failing_trials.size(), report.bugs.size());
    for (const auto& bug : report.bugs) {
      std::printf("%s ", bug.bug_id.c_str());
    }
    std::printf("\n");
  }
  ctbench::PrintRule();
  std::printf("measured: %d distinct issues in %.1f virtual hours across %d trials/system\n",
              total_bugs, total_hours, trials);
  std::printf("paper   : 3 bugs (YARN-9194, HBASE-21740, MR-7178) in 3000 trials/system —\n"
              "          one bug per 17.03 h vs CrashTuner's one per 1.70 h\n");

  ctbench::PrintHeader("Network faults — guided windows vs random partitions (" +
                       std::to_string(trials) + " random trials/system)");
  std::printf("%-14s %8s %9s %12s %10s %14s\n", "System", "Guided", "RaceHits", "RandFailing",
              "RandBugs", "FirstRaceTrial");
  ctbench::PrintRule();

  std::vector<NetworkRow> rows;
  double wall_total = 0;
  for (const auto& system : ctbench::AllSystems()) {
    auto wall_start = std::chrono::steady_clock::now();
    NetworkRow row;
    row.system = system->name();

    ctcore::DriverOptions options;
    options.injection_mode = ctcore::InjectionMode::kNetworkFault;
    options.jobs = flags.jobs;
    options.observer = observation.ObserverFor(system->name() + "/netfault");
    ctcore::SystemReport guided = ctcore::CrashTunerDriver().Run(*system, options);
    row.guided_injections = static_cast<int>(guided.injections.size());
    for (const auto& bug : guided.bugs) {
      if (bug.scenario == "message-race") {
        row.guided_race_found = true;
        row.guided_race_hits += static_cast<int>(bug.exposing_points.size());
      }
    }

    ctcore::NetworkRandomInjector injector;
    ctcore::BaselineReport random = injector.Run(*system, trials, 20190427, flags.jobs);
    row.random_trials = random.trials;
    row.random_failing = static_cast<int>(random.failing_trials.size());
    row.random_bugs = static_cast<int>(random.bugs.size());
    row.first_race_trial = FirstRaceTrial(*system, random);
    row.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    wall_total += row.wall_seconds;

    std::printf("%-14s %8d %9d %12d %10d %14d\n", row.system.c_str(), row.guided_injections,
                row.guided_race_hits, row.random_failing, row.random_bugs, row.first_race_trial);
    rows.push_back(row);
  }
  ctbench::PrintRule();
  std::printf("guided mode reproduces each declared race within one campaign "
              "(<= dynamic-point count);\nrandom partitions need the victim, cut time, and "
              "window drawn right at once (-1: never in %d trials)\n",
              trials);

  if (!flags.json_path.empty()) {
    std::ostringstream json;
    json << "{\"bench\":\"network_faults\",\"trials\":" << trials
         << ",\"wall_seconds\":" << wall_total << ",\"systems\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      const NetworkRow& row = rows[i];
      if (i > 0) {
        json << ",";
      }
      json << "{\"system\":\"" << row.system << "\""
           << ",\"guided_injections\":" << row.guided_injections
           << ",\"guided_race_found\":" << (row.guided_race_found ? "true" : "false")
           << ",\"guided_race_hits\":" << row.guided_race_hits
           << ",\"random_trials\":" << row.random_trials
           << ",\"random_failing\":" << row.random_failing
           << ",\"random_dedup_bugs\":" << row.random_bugs
           << ",\"random_first_race_trial\":" << row.first_race_trial
           << ",\"wall_seconds\":" << row.wall_seconds << "}";
    }
    json << "]}";
    std::ofstream out(flags.json_path);
    out << json.str() << "\n";
    std::printf("wrote %s\n", flags.json_path.c_str());
  }

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
