// Table 7: random crash injection over all five systems. The paper runs 3000
// trials per system; the bench default is smaller for wall-clock sanity and
// scalable via argv[1]. The shape to check: random needs orders of magnitude
// more runs per bug than CrashTuner, and only finds the bugs with windows
// that are seconds wide (node-startup windows — YARN-9194-like, HBASE-21740,
// MR-7178).
#include <cstdlib>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  int trials = argc > 1 ? std::atoi(argv[1]) : 300;
  ctbench::PrintHeader("Table 7 — random crash injection (" + std::to_string(trials) +
                       " trials/system; paper used 3000)");
  std::printf("%-14s %10s %12s %10s %s\n", "System", "Virt(h)", "FailingRuns", "Bugs", "Ids");
  ctbench::PrintRule();

  int total_bugs = 0;
  double total_hours = 0;
  for (const auto& system : ctbench::AllSystems()) {
    ctcore::RandomCrashInjector injector;
    ctcore::BaselineReport report = injector.Run(*system, trials, 20190427);
    total_hours += report.virtual_hours;
    total_bugs += static_cast<int>(report.bugs.size());
    std::printf("%-14s %10.2f %12zu %10zu ", system->name().c_str(), report.virtual_hours,
                report.failing_trials.size(), report.bugs.size());
    for (const auto& bug : report.bugs) {
      std::printf("%s ", bug.bug_id.c_str());
    }
    std::printf("\n");
  }
  ctbench::PrintRule();
  std::printf("measured: %d distinct issues in %.1f virtual hours across %d trials/system\n",
              total_bugs, total_hours, trials);
  std::printf("paper   : 3 bugs (YARN-9194, HBASE-21740, MR-7178) in 3000 trials/system —\n"
              "          one bug per 17.03 h vs CrashTuner's one per 1.70 h\n");
  return 0;
}
