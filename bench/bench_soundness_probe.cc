// §4.3.1 soundness probe + optimization ablation. The paper fault-injects
// 3000 optimized-out crash points and 3000 non-meta-info access points and
// finds no new bugs. Here we disable the three pruning optimizations (so
// every previously pruned, executable point is armed and tested) and run the
// full pipeline: the bug set must not grow, only the testing effort.
#include "bench/bench_util.h"

static ctcore::SystemReport RunWith(const ctcore::DriverOptions& options) {
  ctyarn::YarnSystem yarn;
  ctcore::CrashTunerDriver driver;
  return driver.Run(yarn, options);
}

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader("§4.3.1 — soundness probe / optimization ablation (mini-YARN)");

  ctcore::DriverOptions baseline;
  baseline.observer = observation.ObserverFor("yarn/with-opts");
  ctcore::SystemReport with_opts = RunWith(baseline);

  ctcore::DriverOptions no_opts;
  no_opts.crash_point_options.prune_constructor_only = false;
  no_opts.crash_point_options.prune_unused = false;
  no_opts.crash_point_options.prune_sanity_checked = false;
  no_opts.observer = observation.ObserverFor("yarn/no-opts");
  ctcore::SystemReport without_opts = RunWith(no_opts);

  std::printf("%-28s %10s %10s\n", "", "with-opts", "no-opts");
  std::printf("%-28s %10d %10d\n", "static crash points", with_opts.static_crash_points,
              without_opts.static_crash_points);
  std::printf("%-28s %10d %10d\n", "dynamic crash points", with_opts.dynamic_crash_points,
              without_opts.dynamic_crash_points);
  std::printf("%-28s %10zu %10zu\n", "injection runs", with_opts.injections.size(),
              without_opts.injections.size());
  std::printf("%-28s %10.2f %10.2f\n", "test virtual hours", with_opts.test_virtual_hours,
              without_opts.test_virtual_hours);
  std::printf("%-28s %10zu %10zu\n", "bugs found", with_opts.bugs.size(),
              without_opts.bugs.size());

  // The probe's claim: optimized-out points expose nothing new.
  std::set<std::string> base_ids;
  for (const auto& bug : with_opts.bugs) {
    base_ids.insert(bug.bug_id);
  }
  int new_from_pruned = 0;
  for (const auto& bug : without_opts.bugs) {
    if (base_ids.count(bug.bug_id) == 0) {
      ++new_from_pruned;
      std::printf("  UNEXPECTED new bug from pruned point: %s @ %s\n", bug.bug_id.c_str(),
                  bug.location.c_str());
    }
  }
  ctbench::PrintRule();
  std::printf("new bugs from previously-pruned points: %d (paper: 0 from 3000 sampled)\n",
              new_from_pruned);
  std::printf("pruning buys %.1f%% fewer injection runs at zero detection loss\n",
              100.0 * (1.0 - static_cast<double>(with_opts.injections.size()) /
                                 static_cast<double>(without_opts.injections.size())));

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
