// Tables 10, 11 and 12: the efficiency numbers — meta-info and crash-point
// counts against the program universe (Table 10), analysis / profiling /
// testing times (Table 11), and the per-optimization pruning counts
// (Table 12) for all five systems.
#include <chrono>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  struct Row {
    std::string system;
    ctcore::SystemReport report;
    double wall_seconds;
    double parallel_test_wall;  // Phase-2 campaign at jobs=8
  };
  const int parallel_jobs = 8;
  std::vector<Row> rows;
  for (const auto& system : ctbench::AllSystems()) {
    auto start = std::chrono::steady_clock::now();
    ctcore::CrashTunerDriver driver;
    ctcore::DriverOptions serial;
    serial.observer = observation.ObserverFor(system->name());
    ctcore::SystemReport report = driver.Run(*system, serial);
    double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    // Same pipeline with the campaign fanned across workers; only the wall
    // clocks may differ between the two reports.
    ctcore::DriverOptions parallel;
    parallel.jobs = parallel_jobs;
    parallel.observer = observation.ObserverFor(system->name() + "/jobs8");
    ctcore::SystemReport par_report = driver.Run(*system, parallel);
    rows.push_back({system->name(), std::move(report), wall, par_report.test_wall_seconds});
  }

  ctbench::PrintHeader("Table 10 — types / fields / access points vs meta-info vs crash points");
  std::printf("%-14s | %6s %7s %7s | %5s %6s %6s | %6s %7s\n", "System", "Types", "Fields",
              "Access", "MetaT", "MetaF", "MetaA", "Static", "Dynamic");
  ctbench::PrintRule();
  long total_access = 0;
  long total_meta_access = 0;
  long total_static = 0;
  long total_dynamic = 0;
  for (const auto& row : rows) {
    const auto& r = row.report;
    std::printf("%-14s | %6d %7d %7d | %5d %6d %6d | %6d %7d\n", row.system.c_str(),
                r.total_types, r.total_fields, r.total_access_points, r.metainfo_types,
                r.metainfo_fields, r.metainfo_access_points, r.static_crash_points,
                r.dynamic_crash_points);
    total_access += r.total_access_points;
    total_meta_access += r.metainfo_access_points;
    total_static += r.static_crash_points;
    total_dynamic += r.dynamic_crash_points;
  }
  ctbench::PrintRule();
  std::printf("meta-info access / total access: %.2f%% (paper 1.97%%)\n",
              100.0 * total_meta_access / total_access);
  std::printf("static crash points / total:     %.2f%% (paper 0.53%%)\n",
              100.0 * total_static / total_access);
  std::printf("dynamic crash points / total:    %.2f%% (paper 0.18%%)\n",
              100.0 * total_dynamic / total_access);

  ctbench::PrintHeader("Table 11 — analysis and testing times");
  std::printf("%-14s %14s %16s %14s %12s %13s %13s\n", "System", "Analysis(s)",
              "Profile(virt s)", "Test(virt h)", "Wall(s)", "Test wall(s)", "Par wall(s)");
  for (const auto& row : rows) {
    std::printf("%-14s %14.3f %16.1f %14.2f %12.2f %13.4f %13.4f\n", row.system.c_str(),
                row.report.analysis_wall_seconds, row.report.profile_virtual_seconds,
                row.report.test_virtual_hours, row.wall_seconds, row.report.test_wall_seconds,
                row.parallel_test_wall);
  }
  std::printf("(paper: analysis < 5 min/system; testing 0.25 h (ZooKeeper) .. 17.22 h (Yarn);\n"
              " the shape — testing dominates, Yarn largest, ZooKeeper smallest — is checked.\n"
              " Par wall = the same campaign at jobs=%d, identical report by construction)\n",
              parallel_jobs);

  ctbench::PrintHeader("Table 12 — crash points pruned by each optimization");
  std::printf("%-14s %13s %8s %13s\n", "System", "Constructor", "Unused", "Sanity check");
  for (const auto& row : rows) {
    std::printf("%-14s %13d %8d %13d\n", row.system.c_str(), row.report.pruned_constructor,
                row.report.pruned_unused, row.report.pruned_sanity_checked);
  }
  ctbench::PrintRule();
  for (const auto& row : rows) {
    const auto& r = row.report;
    int pruned = r.pruned_constructor + r.pruned_unused + r.pruned_sanity_checked;
    double factor = r.static_crash_points > 0
                        ? static_cast<double>(pruned + r.static_crash_points) /
                              r.static_crash_points
                        : 0.0;
    std::printf("%-14s reduction factor %.2fx\n", row.system.c_str(), factor);
  }
  std::printf("(paper: 3.76x overall)\n");

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
