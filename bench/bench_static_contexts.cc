// Static vs profiled dynamic crash points.
//
// Column 1 of the comparison: the profiled pipeline (workload-doubling
// fixpoint, §3.1.3) against the static pipeline (bounded call-string
// enumeration over the declared call graph) on every system — dynamic-point
// counts, recall/precision of the enumeration against the profiled set, and
// end-to-end phase-1 wall time. Then a depth ablation: enumerated contexts
// and unreachable-point prunes at call-string bounds 1..6.
#include <chrono>

#include "bench/bench_util.h"
#include "src/analysis/call_graph.h"
#include "src/analysis/context_enumeration.h"

namespace {

double WallSeconds(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader(
      "Static call-string enumeration vs profiling (dynamic crash points)");
  std::printf("%-14s | %8s %6s | %8s %6s %8s | %7s %9s | %8s %8s\n", "System", "Profiled",
              "iters", "Static", "prune", "cs-prune", "Recall", "Precision", "t_prof",
              "t_static");
  ctbench::PrintRule();
  for (const auto& system : ctbench::AllSystems()) {
    ctcore::CrashTunerDriver driver;

    ctcore::DriverOptions profiled_options;
    profiled_options.observer = observation.ObserverFor(system->name() + "/profiled");
    ctcore::SystemReport profiled;
    double t_profiled = WallSeconds([&] { profiled = driver.Run(*system, profiled_options); });

    ctcore::DriverOptions options;
    options.context_mode = ctcore::ContextMode::kStaticSeeded;
    options.observer = observation.ObserverFor(system->name() + "/static");
    ctcore::SystemReport seeded;
    double t_static = WallSeconds([&] { seeded = driver.Run(*system, options); });

    std::printf("%-14s | %8d %6d | %8d %6d %8d | %6.1f%% %8.1f%% | %7.2fs %7.2fs\n",
                system->name().c_str(), profiled.dynamic_crash_points,
                profiled.profile.iterations, seeded.static_contexts,
                seeded.static_unreachable_points, seeded.static_pruned_call_strings,
                100.0 * seeded.context_check.Recall(),
                100.0 * seeded.context_check.Precision(), t_profiled, t_static);
  }
  std::printf("Recall: profiled pairs the enumeration reproduces (must be 100%%).\n");
  std::printf("Precision: enumerated pairs over profiled points the workload exercised.\n");
  std::printf("prune: executable candidates dropped for unreachable anchors.\n");
  std::printf("cs-prune: individual call strings dropped by per-string feasibility.\n");

  ctbench::PrintHeader("Depth ablation — enumerated contexts at call-string bounds 1..6");
  std::printf("Each cell: feasible contexts (strings removed by per-string pruning).\n");
  std::printf("%-14s |", "System");
  for (int depth = 1; depth <= 6; ++depth) {
    std::printf(" %11s", ("d=" + std::to_string(depth)).c_str());
  }
  std::printf(" | %9s\n", "unreach");
  ctbench::PrintRule();
  for (const auto& system : ctbench::AllSystems()) {
    ctanalysis::CallGraph graph(system->model());
    ctanalysis::ContextEnumeration enumeration(&graph);
    std::printf("%-14s |", system->name().c_str());
    size_t unreachable = 0;
    for (int depth = 1; depth <= 6; ++depth) {
      ctanalysis::StaticContextResult result =
          enumeration.EnumerateAll(depth, /*prune_infeasible=*/true);
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%d(-%d)", result.TotalContexts(),
                    result.pruned_call_strings);
      std::printf(" %11s", cell);
      unreachable = result.unreachable_points.size();
    }
    std::printf(" | %9zu\n", unreachable);
  }
  std::printf("Counts cover every modelled access point (catalog included); the\n");
  std::printf("unreach column is the access points whose anchor no entry reaches.\n");

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
