// Table 4 (systems under test) and Table 5 (new bugs detected): the headline
// experiment — a full CrashTuner run over all five systems, printing the
// detected bugs with priority, scenario, status, symptom and meta-info, plus
// the §4.1.3 timeout issues.
#include "bench/bench_util.h"

int main() {
  ctbench::PrintHeader("Table 4 — systems under test");
  std::printf("%-14s %-22s %s\n", "System", "Version", "Workload");
  for (const auto& system : ctbench::AllSystems()) {
    std::printf("%-14s %-22s %s\n", system->name().c_str(), system->version().c_str(),
                system->workload_name().c_str());
  }

  ctbench::PrintHeader("Table 5 — new bugs detected (paper: 21 bugs, 8 critical, all confirmed)");
  std::printf("%-13s %-9s %-11s %-12s %-55s %s\n", "Bug ID", "Priority", "Scenario", "Status",
              "Symptom", "Meta-info");
  ctbench::PrintRule();

  int total_bug_rows = 0;
  int critical = 0;
  int grouped_points = 0;
  int timeout_issues = 0;
  double total_test_hours = 0;
  for (const auto& system : ctbench::AllSystems()) {
    ctcore::CrashTunerDriver driver;
    ctcore::SystemReport report = driver.Run(*system);
    total_test_hours += report.test_virtual_hours;
    timeout_issues += static_cast<int>(report.timeout_issues.size());
    for (const auto& bug : report.bugs) {
      ++total_bug_rows;
      grouped_points += static_cast<int>(bug.exposing_points.size());
      if (bug.priority == "Critical") {
        ++critical;
      }
      std::string id = bug.bug_id;
      if (bug.exposing_points.size() > 1) {
        id += "(" + std::to_string(bug.exposing_points.size()) + ")";
      }
      std::printf("%-13s %-9s %-11s %-12s %-55s %s\n", id.c_str(), bug.priority.c_str(),
                  bug.scenario.c_str(), bug.status.c_str(), bug.symptom.c_str(),
                  bug.metainfo.c_str());
    }
  }
  ctbench::PrintRule();
  std::printf("measured: %d issues (%d exposing dynamic points), %d critical\n", total_bug_rows,
              grouped_points, critical);
  std::printf("paper   : 18 issue rows / 21 bugs counting the (2) groupings, 8 critical\n");
  std::printf("timeout issues (§4.1.3): measured %d, paper 4 (3 Yarn + 1 HBase)\n",
              timeout_issues);
  std::printf("total testing time: %.2f virtual hours (paper: 17.39 h max per system on a real "
              "3-node cluster)\n",
              total_test_hours);
  return 0;
}
