// Table 4 (systems under test) and Table 5 (new bugs detected): the headline
// experiment — a full CrashTuner run over all five systems, printing the
// detected bugs with priority, scenario, status, symptom and meta-info, plus
// the §4.1.3 timeout issues.
//
// With `--speedup [--jobs N] [--json FILE]` the bench also times the Phase-2
// injection campaign sequentially and at N worker threads. A single campaign
// is only ~40 simulated runs, so the timing repeats the campaign for enough
// rounds to get wall-clock numbers above scheduler noise.
#include <chrono>

#include "bench/bench_util.h"
#include "src/analysis/log_analysis.h"
#include "src/core/campaign.h"
#include "src/core/executor.h"
#include "src/core/trigger.h"

namespace {

double TimeCampaignRounds(ctcore::FaultInjectionTester& tester,
                          const ctcore::ProfileResult& profile, int rounds, int jobs) {
  auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    tester.TestAll(profile, 1000 + static_cast<uint64_t>(round), jobs);
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);

  ctbench::PrintHeader("Table 4 — systems under test");
  std::printf("%-14s %-22s %s\n", "System", "Version", "Workload");
  for (const auto& system : ctbench::AllSystems()) {
    std::printf("%-14s %-22s %s\n", system->name().c_str(), system->version().c_str(),
                system->workload_name().c_str());
  }

  ctbench::PrintHeader("Table 5 — new bugs detected (paper: 21 bugs, 8 critical, all confirmed)");
  std::printf("%-13s %-9s %-11s %-12s %-55s %s\n", "Bug ID", "Priority", "Scenario", "Status",
              "Symptom", "Meta-info");
  ctbench::PrintRule();

  auto systems = ctbench::AllSystems();
  ctbench::BenchObservation observation(flags);
  std::vector<ctcore::SystemReport> reports;
  int total_bug_rows = 0;
  int critical = 0;
  int grouped_points = 0;
  int timeout_issues = 0;
  double total_test_hours = 0;
  for (const auto& system : systems) {
    ctcore::CrashTunerDriver driver;
    ctcore::DriverOptions options;
    options.jobs = flags.jobs;
    options.observer = observation.ObserverFor(system->name());
    reports.push_back(driver.Run(*system, options));
    const ctcore::SystemReport& report = reports.back();
    total_test_hours += report.test_virtual_hours;
    timeout_issues += static_cast<int>(report.timeout_issues.size());
    for (const auto& bug : report.bugs) {
      ++total_bug_rows;
      grouped_points += static_cast<int>(bug.exposing_points.size());
      if (bug.priority == "Critical") {
        ++critical;
      }
      std::string id = bug.bug_id;
      if (bug.exposing_points.size() > 1) {
        id += "(" + std::to_string(bug.exposing_points.size()) + ")";
      }
      std::printf("%-13s %-9s %-11s %-12s %-55s %s\n", id.c_str(), bug.priority.c_str(),
                  bug.scenario.c_str(), bug.status.c_str(), bug.symptom.c_str(),
                  bug.metainfo.c_str());
    }
  }
  ctbench::PrintRule();
  std::printf("measured: %d issues (%d exposing dynamic points), %d critical\n", total_bug_rows,
              grouped_points, critical);
  std::printf("paper   : 18 issue rows / 21 bugs counting the (2) groupings, 8 critical\n");
  std::printf("timeout issues (§4.1.3): measured %d, paper 4 (3 Yarn + 1 HBase)\n",
              timeout_issues);
  std::printf("total testing time: %.2f virtual hours (paper: 17.39 h max per system on a real "
              "3-node cluster)\n",
              total_test_hours);

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }

  if (!flags.speedup) {
    return 0;
  }

  // Without an explicit --jobs the comparison runs against the hardware.
  const int jobs = flags.jobs > 1 ? flags.jobs : ctcore::ResolveJobs(0);
  const int rounds = 10;
  ctbench::PrintHeader("Parallel campaign — injection runs fanned across worker threads");
  std::printf("jobs=%d, %d campaign rounds per system, %d hardware thread(s)\n", jobs, rounds,
              ctcore::ResolveJobs(0));
  std::printf("%-14s %10s %12s %12s %9s\n", "System", "runs/round", "seq wall(s)", "par wall(s)",
              "speedup");
  ctbench::PrintRule();

  struct SpeedupRow {
    std::string system;
    int runs_per_round = 0;
    double sequential_s = 0;
    double parallel_s = 0;
  };
  std::vector<SpeedupRow> speedups;
  double total_seq = 0;
  double total_par = 0;
  for (size_t i = 0; i < systems.size(); ++i) {
    const ctcore::SystemUnderTest& system = *systems[i];
    const ctcore::SystemReport& report = reports[i];

    // Rebuild the Phase-2 tester from the report: a probe run supplies the
    // cluster's configured hosts, the log result the online filter.
    auto probe = system.NewRun(system.default_workload_size(), /*seed=*/1);
    ctcore::Executor::Execute(*probe, /*baseline=*/nullptr);
    ctanalysis::LogAnalysis log_analysis(&system.model(), probe->cluster().config_hosts());
    ctlog::OnlineFilter filter = log_analysis.MakeOnlineFilter(report.log_result);
    probe.reset();
    ctcore::FaultInjectionTester tester(&system, &report.crash_points, filter,
                                        report.profile.baseline,
                                        report.profile.normal_duration_ms);

    SpeedupRow row;
    row.system = system.name();
    row.runs_per_round = static_cast<int>(report.injections.size());
    row.sequential_s = TimeCampaignRounds(tester, report.profile, rounds, /*jobs=*/1);
    row.parallel_s = TimeCampaignRounds(tester, report.profile, rounds, jobs);
    std::printf("%-14s %10d %12.3f %12.3f %8.2fx\n", row.system.c_str(), row.runs_per_round,
                row.sequential_s, row.parallel_s,
                row.parallel_s > 0 ? row.sequential_s / row.parallel_s : 0.0);
    total_seq += row.sequential_s;
    total_par += row.parallel_s;
    speedups.push_back(row);
  }
  ctbench::PrintRule();
  const double total_speedup = total_par > 0 ? total_seq / total_par : 0.0;
  std::printf("%-14s %10s %12.3f %12.3f %8.2fx\n", "total", "", total_seq, total_par,
              total_speedup);
  std::printf("(runs are independent discrete-event simulations; the residual gap to %dx is\n"
              " per-round worker spawn plus the tail of the longest run in each wave)\n",
              jobs);

  if (!flags.json_path.empty()) {
    std::FILE* out = std::fopen(flags.json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", flags.json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\"bench\":\"parallel_campaign\",\"jobs\":%d,\"rounds\":%d,"
                 "\"hardware_threads\":%d,\"systems\":[",
                 jobs, rounds, ctcore::ResolveJobs(0));
    for (size_t i = 0; i < speedups.size(); ++i) {
      const SpeedupRow& row = speedups[i];
      std::fprintf(out,
                   "%s{\"system\":\"%s\",\"runs_per_round\":%d,\"sequential_s\":%.6f,"
                   "\"parallel_s\":%.6f,\"speedup\":%.3f}",
                   i == 0 ? "" : ",", row.system.c_str(), row.runs_per_round, row.sequential_s,
                   row.parallel_s, row.parallel_s > 0 ? row.sequential_s / row.parallel_s : 0.0);
    }
    std::fprintf(out,
                 "],\"total\":{\"sequential_s\":%.6f,\"parallel_s\":%.6f,\"speedup\":%.3f}}\n",
                 total_seq, total_par, total_speedup);
    std::fclose(out);
    std::printf("wrote %s\n", flags.json_path.c_str());
  }
  return 0;
}
