// Tables 6 and 13: the fix-complexity comparison and the Kubernetes study.
#include "bench/bench_util.h"
#include "src/study/bug_study.h"

int main(int argc, char** argv) {
  // Study tables only — no campaign runs here, so --metrics-out/--trace-out
  // produce empty (but well-formed) outputs.
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  ctbench::BenchObservation observation(flags);
  ctbench::PrintHeader("Table 6 — complexity of fixing new bugs vs CREB bugs");
  std::printf("%-12s %14s %14s %14s %12s\n", "", "LOC/patch", "patches/bug", "days-to-fix",
              "comments");
  for (const auto& row : ctstudy::FixComplexity()) {
    std::printf("%-12s %14.1f %14.1f %14.1f %12.1f\n", row.dataset.c_str(), row.loc_per_patch,
                row.patches_per_bug, row.days_to_fix, row.comments);
  }
  std::printf("(same patch complexity, ~5.5x faster fixes, ~3x fewer comments: reproduction\n"
              " instructions shipped with each report do the work)\n");

  ctbench::PrintHeader("Table 13 — studied Kubernetes crash-recovery bugs");
  std::printf("Node: ");
  for (const auto& bug : ctstudy::KubernetesBugs()) {
    if (bug.metainfo == "Node") {
      std::printf("%s ", bug.pr.c_str());
    }
  }
  std::printf("\nPod : ");
  for (const auto& bug : ctstudy::KubernetesBugs()) {
    if (bug.metainfo == "Pod") {
      std::printf("%s ", bug.pr.c_str());
    }
  }
  std::printf("\nAll %zu bugs are triggered at meta-info access points (§4.4): the\n"
              "meta-info abstraction transfers beyond the JVM ecosystem.\n",
              ctstudy::KubernetesBugs().size());

  if (observation.enabled() && !observation.Write()) {
    std::fprintf(stderr, "cannot write metrics/trace output\n");
    return 1;
  }
  return 0;
}
