// Representative crash injection vs exhaustive injection (equivalence.h).
//
// For each of the five systems, runs the static-only pipeline both ways:
//   * single-crash phase: the full campaign vs one representative per
//     behavioral equivalence class (DriverOptions::injection_selection);
//     recall is measured on the triaged bug-id sets, and the representative
//     report is checked byte-identical at jobs=1 and jobs=4;
//   * multi-crash phase: three spaces. The ordered pair walk (both orders of
//     every pair) is what the campaign injected before symmetric windows were
//     deduped at enumeration time — it is the cost baseline for the reduction
//     ratio and the wall-clock speedup. The unordered enumeration is the
//     exhaustive campaign as shipped (TestPairs): both orientations of a
//     crash window realize the same unordered scenario, so this set is the
//     recall ground truth. The representative campaign injects one pair per
//     equivalence class; recall is measured on the failing and multi-only
//     failure-signature sets against the unordered campaign.
// Pair seeds derive from pair content (TestPairList), so a pair runs the same
// simulation in either campaign and the comparison is run-for-run.
//
// --json FILE writes the per-system classes / reduction / recall / wall
// numbers (BENCH_representative.json in CI stage 4e). Exit status is the
// number of systems violating 100% recall or the 2x multi-crash reduction.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <set>

#include "bench/bench_util.h"
#include "src/analysis/equivalence.h"
#include "src/analysis/log_analysis.h"
#include "src/core/campaign.h"
#include "src/core/multi_crash.h"
#include "src/core/report_writer.h"

namespace {

double Wall(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::set<std::string> BugIds(const ctcore::SystemReport& report) {
  std::set<std::string> ids;
  for (const auto& bug : report.bugs) {
    ids.insert(bug.bug_id);
  }
  return ids;
}

// Failure signatures of a multi-crash report, at the granularity the single
// phase dedups on: primary symptom + first uncommon exception.
std::set<std::string> PairSignatures(const ctcore::MultiCrashReport& report) {
  std::set<std::string> signatures;
  for (const auto& pair : report.failing) {
    const std::string exception = pair.outcome.uncommon_exceptions.empty()
                                      ? ""
                                      : pair.outcome.uncommon_exceptions.front();
    signatures.insert(pair.outcome.PrimarySymptom() + "|" + exception);
  }
  return signatures;
}

double Recall(const std::set<std::string>& exhaustive, const std::set<std::string>& got) {
  if (exhaustive.empty()) {
    return 1.0;
  }
  int matched = 0;
  for (const auto& entry : exhaustive) {
    matched += got.count(entry) > 0 ? 1 : 0;
  }
  return static_cast<double>(matched) / static_cast<double>(exhaustive.size());
}

std::string SerializeNoWall(ctcore::SystemReport report) {
  report.analysis_wall_seconds = 0;
  report.test_wall_seconds = 0;
  return ctcore::ReportToJson(report);
}

struct Row {
  std::string system;
  int points = 0;
  int point_classes = 0;
  int single_exhaustive = 0;
  int single_representative = 0;
  double single_recall = 0;
  bool deterministic = false;
  long long pairs_ordered = 0;
  long long pairs_unordered = 0;
  int pair_classes = 0;
  double pair_recall = 0;
  double multi_only_recall = 0;
  double reduction = 0;
  double wall_exhaustive = 0;
  double wall_representative = 0;

  bool ok() const {
    return single_recall == 1.0 && pair_recall == 1.0 && multi_only_recall == 1.0 &&
           reduction >= 2.0 && deterministic;
  }
};

Row BenchSystem(const ctcore::SystemUnderTest& system, int jobs) {
  ctcore::CrashTunerDriver driver;
  ctcore::DriverOptions options;
  options.context_mode = ctcore::ContextMode::kStaticOnly;
  options.jobs = jobs;
  ctcore::SystemReport exhaustive = driver.Run(system, options);

  options.injection_selection = ctcore::InjectionSelection::kRepresentative;
  ctcore::SystemReport representative = driver.Run(system, options);
  ctcore::DriverOptions par = options;
  par.jobs = jobs == 4 ? 1 : 4;
  ctcore::SystemReport representative_par = driver.Run(system, par);

  Row row;
  row.system = system.name();
  row.points = static_cast<int>(exhaustive.profile.dynamic_access_points.size());
  row.point_classes = representative.equivalence.classes;
  row.single_exhaustive = static_cast<int>(exhaustive.injections.size());
  row.single_representative = static_cast<int>(representative.injections.size());
  row.single_recall = Recall(BugIds(exhaustive), BugIds(representative));
  row.deterministic = SerializeNoWall(representative) == SerializeNoWall(representative_par);

  // Multi-crash phase.
  ctanalysis::EquivalenceAnalysis analysis(&system.model(), &exhaustive.metainfo);
  const auto& points = exhaustive.profile.dynamic_access_points;
  std::vector<ctcore::CrashPairCandidate> ordered =
      ctcore::EnumerateOrderedCrashPairs(points, -1);
  std::vector<ctcore::CrashPairCandidate> unordered = ctcore::EnumerateCrashPairs(points, -1);
  ctcore::PairPartition partition = ctcore::PartitionCrashPairs(unordered, analysis);

  auto hosts_run = system.NewRun(system.default_workload_size(), options.seed);
  std::vector<std::string> hosts = hosts_run->cluster().config_hosts();
  hosts_run.reset();
  ctanalysis::LogAnalysis log_analysis(&system.model(), hosts);
  ctlog::OnlineFilter filter = log_analysis.MakeOnlineFilter(exhaustive.log_result);
  ctcore::MultiCrashTester tester(&system, &exhaustive.crash_points, filter,
                                  exhaustive.profile.baseline);

  // Wall baseline: the ordered walk is what an exhaustive campaign cost
  // before symmetric dedupe + partitioning; its report is discarded (the
  // unordered campaign below is the recall ground truth).
  auto start = std::chrono::steady_clock::now();
  tester.TestPairList(ordered, exhaustive.injections, options.seed + 31, jobs);
  row.wall_exhaustive = Wall(start);
  ctcore::MultiCrashReport full =
      tester.TestPairList(unordered, exhaustive.injections, options.seed + 31, jobs);
  start = std::chrono::steady_clock::now();
  ctcore::MultiCrashReport reduced = tester.TestPairList(
      partition.Representatives(), exhaustive.injections, options.seed + 31, jobs);
  row.wall_representative = Wall(start);

  row.pairs_ordered = static_cast<long long>(ordered.size());
  row.pairs_unordered = static_cast<long long>(unordered.size());
  row.pair_classes = partition.NumClasses();
  row.reduction = row.pair_classes > 0
                      ? static_cast<double>(row.pairs_ordered) / row.pair_classes
                      : 1.0;
  row.pair_recall = Recall(PairSignatures(full), PairSignatures(reduced));
  std::set<std::string> full_multi;
  for (const auto& pair : full.multi_only) {
    const std::string exception = pair.outcome.uncommon_exceptions.empty()
                                      ? ""
                                      : pair.outcome.uncommon_exceptions.front();
    full_multi.insert(pair.outcome.PrimarySymptom() + "|" + exception);
  }
  std::set<std::string> reduced_multi;
  for (const auto& pair : reduced.multi_only) {
    const std::string exception = pair.outcome.uncommon_exceptions.empty()
                                      ? ""
                                      : pair.outcome.uncommon_exceptions.front();
    reduced_multi.insert(pair.outcome.PrimarySymptom() + "|" + exception);
  }
  row.multi_only_recall = Recall(full_multi, reduced_multi);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  const int jobs = ctcore::ResolveJobs(flags.jobs);
  ctbench::PrintHeader("Representative crash injection — equivalence classes vs exhaustive");

  std::printf("%-16s %6s %6s %8s %8s %8s %8s %7s %7s %7s %8s\n", "system", "points", "p-cls",
              "prs-ord", "prs-uno", "prs-rep", "reduce", "recall", "m-only", "determ",
              "speedup");
  std::vector<Row> rows;
  int violations = 0;
  for (const auto& system : ctbench::AllSystems()) {
    Row row = BenchSystem(*system, jobs);
    std::printf("%-16s %6d %6d %8lld %8lld %8d %7.2fx %6.1f%% %6.1f%% %7s %7.2fx\n",
                row.system.c_str(), row.points, row.point_classes, row.pairs_ordered,
                row.pairs_unordered, row.pair_classes, row.reduction, 100.0 * row.pair_recall,
                100.0 * row.multi_only_recall, row.deterministic ? "yes" : "NO",
                row.wall_representative > 0 ? row.wall_exhaustive / row.wall_representative
                                            : 0.0);
    if (!row.ok()) {
      ++violations;
    }
    rows.push_back(row);
  }
  ctbench::PrintRule();
  std::printf("single-crash phase: representative campaign keeps the full bug set per system\n"
              "(recall on triaged bug ids); multi-crash phase: >=2x fewer injected runs than\n"
              "the ordered walk with 100%% recall on failing and multi-only failure\n"
              "signatures of the exhaustive (unordered) campaign.\n");

  if (!flags.json_path.empty()) {
    std::ofstream json(flags.json_path);
    json << "[";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      if (i > 0) {
        json << ",";
      }
      json << "\n  {\"system\":\"" << row.system << "\",\"points\":" << row.points
           << ",\"point_classes\":" << row.point_classes
           << ",\"single_runs_exhaustive\":" << row.single_exhaustive
           << ",\"single_runs_representative\":" << row.single_representative
           << ",\"single_recall\":" << row.single_recall
           << ",\"pairs_ordered\":" << row.pairs_ordered
           << ",\"pairs_unordered\":" << row.pairs_unordered
           << ",\"pair_classes\":" << row.pair_classes
           << ",\"reduction\":" << row.reduction << ",\"pair_recall\":" << row.pair_recall
           << ",\"multi_only_recall\":" << row.multi_only_recall
           << ",\"deterministic\":" << (row.deterministic ? "true" : "false")
           << ",\"wall_exhaustive_s\":" << row.wall_exhaustive
           << ",\"wall_representative_s\":" << row.wall_representative
           << ",\"speedup\":"
           << (row.wall_representative > 0 ? row.wall_exhaustive / row.wall_representative : 0.0)
           << "}";
    }
    json << "\n]\n";
    std::printf("wrote %s\n", flags.json_path.c_str());
  }
  if (violations > 0) {
    std::printf("VIOLATIONS: %d system(s) below 100%% recall / 2x reduction\n", violations);
  }
  return violations;
}
