// Fuzz smoke: a short coverage-guided fuzz campaign on every system.
//
// For each of the five minis the full pipeline runs once, then the fuzz
// phase explores `budget` grammar-op workloads at jobs=1 and jobs=4. The
// bench fails (nonzero exit) if any system discovers no ⟨point, call-string⟩
// pair beyond the fixed script, if the two jobs levels disagree on corpus or
// trace hash (the determinism contract fuzz_property_test pins in CI's
// stage 2 — here cross-checked against a live campaign), or — on machines
// with >= 4 hardware threads — if jobs=4 is not >= 2x faster overall.
// Results land in BENCH_fuzz.json.
//
// Usage: bench_fuzz [budget] [--jobs N] [--json FILE]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/campaign.h"
#include "src/fuzz/fuzz_phase.h"

namespace {

struct SystemRow {
  std::string name;
  int runs = 0;
  int corpus_size = 0;
  int baseline_pairs = 0;
  int new_pairs = 0;
  int bug_runs = 0;
  double serial_seconds = 0;
  double parallel_seconds = 0;
  bool deterministic = true;

  double runs_per_sec() const { return serial_seconds > 0 ? runs / serial_seconds : 0; }
};

double Wall(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  ctbench::BenchFlags flags = ctbench::ParseFlags(argc, argv);
  int budget = 48;
  if (!flags.positional.empty()) {
    budget = std::atoi(flags.positional.front().c_str());
    if (budget < 1) {
      std::fprintf(stderr, "usage: bench_fuzz [budget] [--jobs N] [--json FILE]\n");
      return 2;
    }
  }
  const std::string json_path = flags.json_path.empty() ? "BENCH_fuzz.json" : flags.json_path;

  ctbench::PrintHeader("Coverage-guided workload fuzzing: " + std::to_string(budget) +
                       "-run smoke per system");
  std::printf("%-22s %6s %8s %10s %10s %8s %10s %10s\n", "system", "runs", "corpus",
              "baseline", "new_pairs", "bugs", "wall_s(1)", "runs/sec");

  auto systems = ctbench::AllSystems();
  std::vector<SystemRow> rows;
  double serial_total = 0, parallel_total = 0;
  for (const auto& system : systems) {
    SystemRow row;
    row.name = system->name();

    ctcore::SystemReport serial_report = ctcore::CrashTunerDriver().Run(*system);
    ctcore::SystemReport parallel_report = serial_report;

    ctfuzz::FuzzPhaseOptions serial_options;
    serial_options.runs = budget;
    serial_options.jobs = 1;
    const auto serial_start = std::chrono::steady_clock::now();
    ctfuzz::FuzzResult serial = ctfuzz::RunFuzzPhase(*system, &serial_report, serial_options);
    row.serial_seconds = Wall(serial_start);

    ctfuzz::FuzzPhaseOptions parallel_options = serial_options;
    parallel_options.jobs = 4;
    const auto parallel_start = std::chrono::steady_clock::now();
    ctfuzz::FuzzResult parallel =
        ctfuzz::RunFuzzPhase(*system, &parallel_report, parallel_options);
    row.parallel_seconds = Wall(parallel_start);

    row.runs = serial.runs;
    row.corpus_size = static_cast<int>(serial.corpus.size());
    row.baseline_pairs = serial_report.fuzz.baseline_pairs;
    row.new_pairs = static_cast<int>(serial.new_keys.size());
    row.bug_runs = serial.bug_runs;
    row.deterministic = serial.trace_hash == parallel.trace_hash &&
                        serial.corpus.size() == parallel.corpus.size() &&
                        serial.new_keys == parallel.new_keys;
    serial_total += row.serial_seconds;
    parallel_total += row.parallel_seconds;

    std::printf("%-22s %6d %8d %10d %10d %8d %10.3f %10.1f\n", row.name.c_str(), row.runs,
                row.corpus_size, row.baseline_pairs, row.new_pairs, row.bug_runs,
                row.serial_seconds, row.runs_per_sec());
    rows.push_back(row);
  }

  ctbench::PrintRule();
  const double speedup = parallel_total > 0 ? serial_total / parallel_total : 0;
  const int hardware_threads = ctcore::ResolveJobs(0);
  const bool enforce_speedup = ctbench::EnforceSpeedupBar(hardware_threads);
  std::printf("jobs=4 speedup over all systems: %.2fx  (bar: >= 2x, %s on %d hardware "
              "thread(s))\n",
              speedup, enforce_speedup ? "enforced" : "not enforced", hardware_threads);

  int failures = 0;
  for (const SystemRow& row : rows) {
    if (row.new_pairs < 1) {
      std::printf("FAIL: %s discovered no pair beyond the fixed script\n", row.name.c_str());
      ++failures;
    }
    if (!row.deterministic) {
      std::printf("FAIL: %s diverged between jobs=1 and jobs=4\n", row.name.c_str());
      ++failures;
    }
  }
  failures += enforce_speedup && speedup < 2.0 ? 1 : 0;

  std::ofstream json(json_path);
  json << "{\n  \"schema\": \"crashtuner-bench-fuzz-v1\",\n";
  json << "  \"budget_per_system\": " << budget << ",\n";
  json << "  \"systems\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SystemRow& row = rows[i];
    json << "    {\"system\": \"" << row.name << "\", \"runs\": " << row.runs
         << ", \"corpus_size\": " << row.corpus_size
         << ", \"baseline_pairs\": " << row.baseline_pairs
         << ", \"new_pairs\": " << row.new_pairs << ", \"bug_runs\": " << row.bug_runs
         << ", \"serial_seconds\": " << row.serial_seconds
         << ", \"parallel_seconds\": " << row.parallel_seconds
         << ", \"runs_per_sec\": " << row.runs_per_sec()
         << ", \"deterministic\": " << (row.deterministic ? "true" : "false") << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"jobs4_speedup\": " << speedup << ",\n";
  json << "  \"hardware_threads\": " << hardware_threads << ",\n";
  json << "  \"speedup_bar_enforced\": " << (enforce_speedup ? "true" : "false") << ",\n";
  json << "  \"pass\": " << (failures == 0 ? "true" : "false") << "\n}\n";
  std::printf("wrote %s\n", json_path.c_str());

  return failures;
}
