// Program model: the static view of a system under test.
//
// The original CrashTuner reads this information out of Java bytecode with
// WALA: the class hierarchy, collection types, instance fields, every
// getField/putField and collection-API call site, logging statements, and IO
// call sites. Our mini systems declare the same structure here when they
// build their model. The declared structure and the executable code are kept
// consistent by construction: every traced access in a mini system fires the
// AccessPointDecl id it declares.
//
// Models also carry *synthetic* entries — classes, fields and access points
// taken from catalogs of real Hadoop-ecosystem names that exist in the
// program but are never executed by the test workload. They give the static
// analysis a realistically large and noisy universe (the Table 10 totals are
// dominated by such code in the real systems too); the profiler naturally
// discards them because they never produce a dynamic hit.
#ifndef SRC_MODEL_PROGRAM_MODEL_H_
#define SRC_MODEL_PROGRAM_MODEL_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace ctmodel {

// A class/type in the system under test.
struct TypeDecl {
  std::string name;                        // e.g. "yarn.api.records.NodeId"
  std::string supertype;                   // "" if none modelled
  std::vector<std::string> element_types;  // non-empty → collection of those
  bool is_base = false;                    // Integer, String, Enum, byte[], File
  bool closeable = false;                  // implements java.io.Closeable (Table 8)
};

// An instance field.
struct FieldDecl {
  std::string id;     // "Class.field"
  std::string clazz;  // containing class
  std::string name;
  std::string type;  // declared type name
  bool set_only_in_constructor = false;
};

// A method in the system under test. The id is "Class.method", matching the
// frame strings ScopedFrame pushes at runtime. Entry points are the roots the
// call-graph reachability starts from: RPC/event handlers invoked directly by
// the workload, plus methods scheduled from timers or lambdas the model does
// not represent as callers.
struct MethodDecl {
  std::string id;     // "Class.method"; derived from clazz+name if empty
  std::string clazz;  // declaring class
  std::string name;
  bool entry_point = false;  // call-graph root (handler / timer / main)
  bool synthetic = false;    // catalog entry, never executed
};

// How a call site binds to its target (WALA dispatch kinds, §2 of the paper's
// background). Virtual calls name the static receiver type's method; dispatch
// resolution fans them out to every subtype override that exists in the model.
// Async edges (executor submits, timer schedules) propagate reachability but
// start a fresh call string: the callee runs on another thread with an empty
// stack, exactly as ScopedFrame observes it.
enum class CallKind { kStatic, kVirtual, kAsync };

struct CallEdgeDecl {
  std::string caller;  // MethodDecl id
  std::string callee;  // MethodDecl id (for kVirtual: the static target)
  CallKind kind = CallKind::kStatic;
};

enum class AccessKind { kRead, kWrite };

// One program point that reads or writes a field (directly or through a
// collection API call).
struct AccessPointDecl {
  int id = -1;
  std::string field_id;
  AccessKind kind = AccessKind::kRead;
  std::string clazz;   // class containing the access
  std::string method;  // method containing the access
  int line = 0;
  std::string collection_op;  // e.g. "get", "put"; empty for plain field access
  // Read-only attributes the optimizations key on (§3.1.2).
  bool value_unused = false;       // result unused or logging/toString-only
  bool sanity_checked = false;     // result null-checked before use
  bool returned_directly = false;  // result only used in a return statement
  // Promotion targets: ids of the call-site access points this point expands
  // to when returned_directly is set (the YARN-9164 43-call-site case).
  std::vector<int> promoted_sites;
  bool executable = false;  // wired to a runtime hook in the mini system
  bool synthetic = false;   // catalog entry, never executed
  // Method whose frame is innermost when the runtime hook fires, when that
  // differs from clazz.method: some hooks sit before their own frame push or
  // in a callee inlined into the caller's frame. Empty → clazz.method.
  std::string context_method;
};

// Per-placeholder description of a logging statement's arguments.
struct LogArg {
  std::string type;      // static type of the logged expression
  std::string field_id;  // originating field, if the expression reads one
};

struct LogBinding {
  int statement_id = -1;
  std::vector<LogArg> args;
};

// An IO method (public method of a Closeable class whose name starts with
// read/write/flush/close) and a call site of one (§4.2.2, Table 8).
struct IoMethodDecl {
  std::string clazz;
  std::string method;
};

struct IoPointDecl {
  int id = -1;
  std::string io_class;
  std::string io_method;
  std::string callsite;  // "Class.method" performing the call
  bool executable = false;
};

// A model-declared multi-crash scenario: crash at the first access point,
// then re-arm and crash at the second during the recovery it started. These
// are hypotheses the system authors consider worth the quadratic search;
// ctlint's static-pair-unreachable check verifies both points are actually
// armable (executable, with statically reachable anchors).
struct MultiCrashPairDecl {
  int first_point = -1;
  int second_point = -1;
  std::string note;  // the recovery window the pair targets
};

// A model-declared network-fault bug window: when the anchor access point
// fires in network-fault mode, the resolved node is partitioned from the
// cluster for `partition_ms` (long enough for the failure detector to expire
// it) and then healed — the message-race variant of crash-on-appearance.
// `bug_id` names the seeded message-race bug the window is expected to
// expose; ctlint's network-window-unreachable check verifies the anchor is
// armable and the window well-formed.
struct NetworkFaultWindowDecl {
  int point = -1;            // anchor access point (armed like a crash point)
  uint64_t partition_ms = 0; // isolation window before the heal
  std::string bug_id;        // expected message-race bug (known-bug table id)
  std::string note;          // the race the window targets
};

// A model-declared observability span: a stable human-readable name for the
// injection phase anchored at `method` (the ContextMethodOf an access point).
// The campaign observer labels each injection span "inject:<name>" so traces
// read in the system's vocabulary instead of raw frame strings. ctlint's
// window-without-span-anchor check requires every multi-crash pair point and
// network-fault window anchor to resolve to a declared span. A span may also
// name the `component` (a declared role class, e.g. "QuorumPeer") whose hot
// path it covers: component spans are what the virtual-time profiler
// attributes dwell to, and ctlint's component-without-span check requires
// the class to exist and every fuzz-killable role to have one.
struct SpanDecl {
  SpanDecl() = default;
  SpanDecl(std::string name, std::string method, std::string note,
           std::string component = "")
      : name(std::move(name)), method(std::move(method)), note(std::move(note)),
        component(std::move(component)) {}
  std::string name;       // e.g. "rm.register-node"
  std::string method;     // anchor frame, "Class.method"
  std::string note;       // what the phase covers (docs only)
  std::string component;  // role class whose hot path this span covers ("")
};

// How a fuzz-grammar op acts on the running cluster.
enum class GrammarOpKind {
  kRpc,       // post a message to a node drawn from target_prefix
  kCrash,     // fail-stop a node drawn from target_prefix
  kShutdown,  // graceful decommission of a node drawn from target_prefix
};

// One production of the per-system workload-fuzzing grammar (submit / kill /
// decommission / flush / leader-churn / ...). The generator draws ops by
// weight, picks a firing time inside [min_time_ms, max_time_ms], and resolves
// the victim node by ordinal among the live nodes whose id starts with
// target_prefix — so an op is meaningful at any --scale level. For kRpc the
// verb is the method-name part of target_method, which must be a declared
// handler (ctlint's grammar-op-unknown-target check); for node ops
// target_class names the role being killed, which must be a declared class.
struct GrammarOpDecl {
  std::string name;           // e.g. "yarn.kill-worker"; unique per model
  GrammarOpKind kind = GrammarOpKind::kRpc;
  std::string target_method;  // kRpc: handler MethodDecl id ("Class.method")
  std::string rpc_verb;       // kRpc: wire verb; method-name part if empty
  std::string target_class;   // kCrash/kShutdown: role class of the victim
  std::string target_prefix;  // node-id prefix the op picks its target from
  // kRpc payload template; "%NODE%" substitutes the node id drawn from
  // arg_prefix (target_prefix if empty), "%MAG%" the drawn magnitude.
  std::vector<std::pair<std::string, std::string>> args;
  std::string arg_prefix;
  int weight = 1;              // relative draw weight within the grammar
  uint64_t min_time_ms = 500;  // firing window in virtual ms after Start()
  uint64_t max_time_ms = 15000;
  int max_magnitude = 1;  // %MAG% drawn uniformly from [1, max_magnitude]
  std::string note;       // what the op exercises (docs only)
};

class ProgramModel {
 public:
  explicit ProgramModel(std::string system_name) : system_name_(std::move(system_name)) {}

  const std::string& system_name() const { return system_name_; }

  // --- Construction -------------------------------------------------------
  void AddType(TypeDecl type);
  void AddField(FieldDecl field);
  void AddMethod(MethodDecl method);
  void AddCallEdge(CallEdgeDecl edge);
  // Assigns and returns the access-point id.
  int AddAccessPoint(AccessPointDecl point);
  void BindLog(LogBinding binding);
  void AddIoMethod(IoMethodDecl method);
  int AddIoPoint(IoPointDecl point);
  void AddMultiCrashPair(MultiCrashPairDecl pair);
  void AddNetworkFaultWindow(NetworkFaultWindowDecl window);
  void AddSpan(SpanDecl span);
  void AddGrammarOp(GrammarOpDecl op);

  // --- Queries -------------------------------------------------------------
  const TypeDecl* FindType(const std::string& name) const;
  const FieldDecl* FindField(const std::string& id) const;
  const MethodDecl* FindMethod(const std::string& id) const;
  const AccessPointDecl& access_point(int id) const;
  const IoPointDecl& io_point(int id) const;

  // Innermost runtime frame for an access point: context_method if set,
  // otherwise "clazz.method".
  static std::string ContextMethodOf(const AccessPointDecl& point);

  // First span declared for `method`, or null.
  const SpanDecl* FindSpanForMethod(const std::string& method) const;

  // Grammar op by name, or null.
  const GrammarOpDecl* FindGrammarOp(const std::string& name) const;

  // True if `name` equals `ancestor` or transitively extends it.
  bool IsSubtypeOf(const std::string& name, const std::string& ancestor) const;
  // Direct subtypes of `name`.
  std::vector<std::string> SubtypesOf(const std::string& name) const;
  // Collection types having `name` among their element types.
  std::vector<std::string> CollectionsOf(const std::string& name) const;
  // Fields declared by class `clazz`.
  std::vector<const FieldDecl*> FieldsOf(const std::string& clazz) const;
  // Methods declared by class `clazz`.
  std::vector<const MethodDecl*> MethodsOf(const std::string& clazz) const;
  // All access points touching `field_id`.
  std::vector<const AccessPointDecl*> PointsOn(const std::string& field_id) const;

  const std::vector<TypeDecl>& types() const { return types_; }
  const std::vector<FieldDecl>& fields() const { return fields_; }
  const std::vector<MethodDecl>& methods() const { return methods_; }
  const std::vector<CallEdgeDecl>& call_edges() const { return call_edges_; }
  const std::vector<AccessPointDecl>& access_points() const { return access_points_; }
  const std::vector<LogBinding>& log_bindings() const { return log_bindings_; }
  const std::vector<IoMethodDecl>& io_methods() const { return io_methods_; }
  const std::vector<IoPointDecl>& io_points() const { return io_points_; }
  const std::vector<MultiCrashPairDecl>& multi_crash_pairs() const { return multi_crash_pairs_; }
  const std::vector<NetworkFaultWindowDecl>& network_fault_windows() const {
    return network_fault_windows_;
  }
  const std::vector<SpanDecl>& spans() const { return spans_; }
  const std::vector<GrammarOpDecl>& grammar_ops() const { return grammar_ops_; }

  // Table 10 / Table 8 totals.
  int NumTypes() const { return static_cast<int>(types_.size()); }
  int NumFields() const { return static_cast<int>(fields_.size()); }
  int NumMethods() const { return static_cast<int>(methods_.size()); }
  int NumCallEdges() const { return static_cast<int>(call_edges_.size()); }
  int NumAccessPoints() const { return static_cast<int>(access_points_.size()); }
  int NumIoClasses() const;
  int NumIoMethods() const { return static_cast<int>(io_methods_.size()); }
  int NumIoPoints() const { return static_cast<int>(io_points_.size()); }
  int NumMultiCrashPairs() const { return static_cast<int>(multi_crash_pairs_.size()); }
  int NumNetworkFaultWindows() const { return static_cast<int>(network_fault_windows_.size()); }
  int NumSpans() const { return static_cast<int>(spans_.size()); }
  int NumGrammarOps() const { return static_cast<int>(grammar_ops_.size()); }

 private:
  std::string system_name_;
  std::vector<TypeDecl> types_;
  std::map<std::string, int> type_index_;
  std::vector<FieldDecl> fields_;
  std::map<std::string, int> field_index_;
  std::vector<MethodDecl> methods_;
  std::map<std::string, int> method_index_;
  std::vector<CallEdgeDecl> call_edges_;
  std::vector<AccessPointDecl> access_points_;
  std::vector<LogBinding> log_bindings_;
  std::vector<IoMethodDecl> io_methods_;
  std::vector<IoPointDecl> io_points_;
  std::vector<MultiCrashPairDecl> multi_crash_pairs_;
  std::vector<NetworkFaultWindowDecl> network_fault_windows_;
  std::vector<SpanDecl> spans_;
  std::vector<GrammarOpDecl> grammar_ops_;
};

}  // namespace ctmodel

#endif  // SRC_MODEL_PROGRAM_MODEL_H_
