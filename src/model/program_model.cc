#include "src/model/program_model.h"

#include <set>

#include "src/common/check.h"

namespace ctmodel {

void ProgramModel::AddType(TypeDecl type) {
  CT_CHECK_MSG(type_index_.find(type.name) == type_index_.end(), type.name.c_str());
  type_index_[type.name] = static_cast<int>(types_.size());
  types_.push_back(std::move(type));
}

void ProgramModel::AddField(FieldDecl field) {
  if (field.id.empty()) {
    field.id = field.clazz + "." + field.name;
  }
  CT_CHECK_MSG(field_index_.find(field.id) == field_index_.end(), field.id.c_str());
  field_index_[field.id] = static_cast<int>(fields_.size());
  fields_.push_back(std::move(field));
}

void ProgramModel::AddMethod(MethodDecl method) {
  if (method.id.empty()) {
    method.id = method.clazz + "." + method.name;
  }
  CT_CHECK_MSG(method_index_.find(method.id) == method_index_.end(), method.id.c_str());
  method_index_[method.id] = static_cast<int>(methods_.size());
  methods_.push_back(std::move(method));
}

void ProgramModel::AddCallEdge(CallEdgeDecl edge) { call_edges_.push_back(std::move(edge)); }

int ProgramModel::AddAccessPoint(AccessPointDecl point) {
  point.id = static_cast<int>(access_points_.size());
  access_points_.push_back(std::move(point));
  return access_points_.back().id;
}

void ProgramModel::BindLog(LogBinding binding) { log_bindings_.push_back(std::move(binding)); }

void ProgramModel::AddIoMethod(IoMethodDecl method) { io_methods_.push_back(std::move(method)); }

int ProgramModel::AddIoPoint(IoPointDecl point) {
  point.id = static_cast<int>(io_points_.size());
  io_points_.push_back(std::move(point));
  return io_points_.back().id;
}

void ProgramModel::AddMultiCrashPair(MultiCrashPairDecl pair) {
  multi_crash_pairs_.push_back(std::move(pair));
}

void ProgramModel::AddNetworkFaultWindow(NetworkFaultWindowDecl window) {
  network_fault_windows_.push_back(std::move(window));
}

void ProgramModel::AddSpan(SpanDecl span) { spans_.push_back(std::move(span)); }

void ProgramModel::AddGrammarOp(GrammarOpDecl op) { grammar_ops_.push_back(std::move(op)); }

const GrammarOpDecl* ProgramModel::FindGrammarOp(const std::string& name) const {
  for (const auto& op : grammar_ops_) {
    if (op.name == name) {
      return &op;
    }
  }
  return nullptr;
}

const SpanDecl* ProgramModel::FindSpanForMethod(const std::string& method) const {
  for (const auto& span : spans_) {
    if (span.method == method) {
      return &span;
    }
  }
  return nullptr;
}

const TypeDecl* ProgramModel::FindType(const std::string& name) const {
  auto it = type_index_.find(name);
  return it == type_index_.end() ? nullptr : &types_[it->second];
}

const FieldDecl* ProgramModel::FindField(const std::string& id) const {
  auto it = field_index_.find(id);
  return it == field_index_.end() ? nullptr : &fields_[it->second];
}

const MethodDecl* ProgramModel::FindMethod(const std::string& id) const {
  auto it = method_index_.find(id);
  return it == method_index_.end() ? nullptr : &methods_[it->second];
}

std::string ProgramModel::ContextMethodOf(const AccessPointDecl& point) {
  if (!point.context_method.empty()) {
    return point.context_method;
  }
  return point.clazz + "." + point.method;
}

const AccessPointDecl& ProgramModel::access_point(int id) const {
  CT_CHECK(id >= 0 && id < static_cast<int>(access_points_.size()));
  return access_points_[id];
}

const IoPointDecl& ProgramModel::io_point(int id) const {
  CT_CHECK(id >= 0 && id < static_cast<int>(io_points_.size()));
  return io_points_[id];
}

bool ProgramModel::IsSubtypeOf(const std::string& name, const std::string& ancestor) const {
  std::string current = name;
  // Walks the supertype chain; models are acyclic by construction but we
  // bound the walk defensively.
  for (int hops = 0; hops < 64; ++hops) {
    if (current == ancestor) {
      return true;
    }
    const TypeDecl* type = FindType(current);
    if (type == nullptr || type->supertype.empty()) {
      return false;
    }
    current = type->supertype;
  }
  return false;
}

std::vector<std::string> ProgramModel::SubtypesOf(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& type : types_) {
    if (type.supertype == name) {
      out.push_back(type.name);
    }
  }
  return out;
}

std::vector<std::string> ProgramModel::CollectionsOf(const std::string& name) const {
  std::vector<std::string> out;
  for (const auto& type : types_) {
    for (const auto& element : type.element_types) {
      if (element == name) {
        out.push_back(type.name);
        break;
      }
    }
  }
  return out;
}

std::vector<const FieldDecl*> ProgramModel::FieldsOf(const std::string& clazz) const {
  std::vector<const FieldDecl*> out;
  for (const auto& field : fields_) {
    if (field.clazz == clazz) {
      out.push_back(&field);
    }
  }
  return out;
}

std::vector<const MethodDecl*> ProgramModel::MethodsOf(const std::string& clazz) const {
  std::vector<const MethodDecl*> out;
  for (const auto& method : methods_) {
    if (method.clazz == clazz) {
      out.push_back(&method);
    }
  }
  return out;
}

std::vector<const AccessPointDecl*> ProgramModel::PointsOn(const std::string& field_id) const {
  std::vector<const AccessPointDecl*> out;
  for (const auto& point : access_points_) {
    if (point.field_id == field_id) {
      out.push_back(&point);
    }
  }
  return out;
}

int ProgramModel::NumIoClasses() const {
  int count = 0;
  for (const auto& type : types_) {
    if (type.closeable) {
      ++count;
    }
  }
  return count;
}

}  // namespace ctmodel
