#include "src/model/catalog.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace ctmodel {

namespace {

// IO method name prefixes the paper's scan keys on (§4.2.2).
const char* kIoMethodNames[] = {"read", "write", "flush", "close"};

// Plain value types used for catalog fields that are not meta-info holders.
const char* kPlainFieldTypes[] = {"java.lang.String",  "java.lang.Integer", "java.lang.Long",
                                  "java.lang.Boolean", "byte[]",            "java.io.File",
                                  "java.lang.Enum"};

}  // namespace

void AddBaseTypes(ProgramModel* model) {
  for (const char* name :
       {"java.lang.String", "java.lang.Integer", "java.lang.Long", "java.lang.Boolean",
        "java.lang.Enum", "byte[]", "java.io.File"}) {
    if (model->FindType(name) == nullptr) {
      TypeDecl type;
      type.name = name;
      type.is_base = true;
      model->AddType(type);
    }
  }
}

void PopulateCatalog(ProgramModel* model, const CatalogSpec& spec) {
  ctcommon::Rng rng(spec.seed);
  AddBaseTypes(model);

  // Classes and the point methods they used, in creation order; consumed by
  // the call-structure pass below without touching `rng`'s draw sequence.
  std::vector<std::pair<std::string, std::set<std::string>>> class_methods;

  int counter = 0;
  auto next_class_name = [&]() {
    const std::string& pkg = spec.packages[counter % spec.packages.size()];
    const std::string& stem = spec.stems[(counter / spec.packages.size()) % spec.stems.size()];
    const std::string& suffix = spec.suffixes[counter % spec.suffixes.size()];
    std::string name = pkg + "." + stem + suffix;
    if (model->FindType(name) != nullptr) {
      name += std::to_string(counter);
    }
    ++counter;
    return name;
  };

  // Meta-info holder classes first: each holds one field of a meta-info type
  // (set outside the constructor, so the holder itself is *not* pulled into
  // the meta-info type set by Definition 2, but its accesses are crash-point
  // candidates).
  for (const auto& metainfo_type : spec.metainfo_field_types) {
    for (int h = 0; h < spec.holders_per_metainfo_type; ++h) {
      std::string clazz = next_class_name();
      TypeDecl type;
      type.name = clazz;
      model->AddType(type);

      FieldDecl field;
      field.clazz = clazz;
      field.name = "tracked" + std::to_string(h);
      field.type = metainfo_type;
      model->AddField(field);
      std::string field_id = clazz + "." + field.name;
      class_methods.emplace_back(clazz, std::set<std::string>{});

      int accesses = static_cast<int>(
          rng.Uniform(spec.min_accesses_per_field, spec.max_accesses_per_field));
      for (int a = 0; a < accesses; ++a) {
        AccessPointDecl point;
        point.field_id = field_id;
        point.kind = rng.Chance(0.7) ? AccessKind::kRead : AccessKind::kWrite;
        point.clazz = clazz;
        point.method = rng.Chance(0.5) ? "handle" : "process";
        point.line = 20 + a * 7;
        point.synthetic = true;
        class_methods.back().second.insert(point.method);
        if (point.kind == AccessKind::kRead) {
          point.value_unused = rng.Chance(spec.unused_read_fraction);
          if (!point.value_unused) {
            point.sanity_checked = rng.Chance(spec.sanity_checked_fraction);
          }
        }
        model->AddAccessPoint(point);
      }
    }
  }

  // Bulk non-meta classes.
  for (int c = 0; c < spec.num_classes; ++c) {
    std::string clazz = next_class_name();
    TypeDecl type;
    type.name = clazz;
    type.closeable = rng.Chance(spec.closeable_fraction);
    model->AddType(type);
    class_methods.emplace_back(clazz, std::set<std::string>{});

    if (type.closeable) {
      int io_methods = static_cast<int>(rng.Uniform(1, 3));
      for (int m = 0; m < io_methods; ++m) {
        IoMethodDecl io;
        io.clazz = clazz;
        io.method = std::string(kIoMethodNames[rng.Index(4)]) + "Internal" + std::to_string(m);
        model->AddIoMethod(io);
        for (int s = 0; s < spec.io_points_per_method; ++s) {
          IoPointDecl point;
          point.io_class = clazz;
          point.io_method = io.method;
          point.callsite = clazz + ".run";
          model->AddIoPoint(point);
        }
      }
    }

    int num_fields =
        static_cast<int>(rng.Uniform(spec.min_fields_per_class, spec.max_fields_per_class));
    for (int f = 0; f < num_fields; ++f) {
      FieldDecl field;
      field.clazz = clazz;
      field.name = "state" + std::to_string(f);
      field.type = kPlainFieldTypes[rng.Index(std::size(kPlainFieldTypes))];
      field.set_only_in_constructor = rng.Chance(spec.ctor_only_field_fraction);
      model->AddField(field);
      std::string field_id = clazz + "." + field.name;

      int accesses = static_cast<int>(
          rng.Uniform(spec.min_accesses_per_field, spec.max_accesses_per_field));
      for (int a = 0; a < accesses; ++a) {
        AccessPointDecl point;
        point.field_id = field_id;
        point.kind = rng.Chance(0.65) ? AccessKind::kRead : AccessKind::kWrite;
        point.clazz = clazz;
        point.method = "serve" + std::to_string(a % 3);
        point.line = 30 + a * 11;
        point.synthetic = true;
        class_methods.back().second.insert(point.method);
        if (point.kind == AccessKind::kRead) {
          point.value_unused = rng.Chance(spec.unused_read_fraction);
          if (!point.value_unused) {
            point.sanity_checked = rng.Chance(spec.sanity_checked_fraction);
          }
        }
        model->AddAccessPoint(point);
      }
    }
  }

  // Synthetic call structure over the catalog classes. A separate generator
  // (fixed derived seed) keeps the draw sequence of the loops above — and
  // with it every already-generated artifact — byte-identical.
  ctcommon::Rng call_rng(spec.seed ^ 0x9e3779b97f4a7c15ull);
  for (const auto& [clazz, methods] : class_methods) {
    MethodDecl run;
    run.clazz = clazz;
    run.name = "run";
    run.entry_point = call_rng.Chance(spec.entry_point_fraction);
    run.synthetic = true;
    model->AddMethod(run);
    for (const auto& name : methods) {
      MethodDecl method;
      method.clazz = clazz;
      method.name = name;
      method.synthetic = true;
      model->AddMethod(method);
      model->AddCallEdge({clazz + ".run", clazz + "." + name, CallKind::kStatic});
    }
  }
  for (size_t c = 1; c < class_methods.size(); ++c) {
    if (call_rng.Chance(spec.call_chain_fraction)) {
      CallKind kind = call_rng.Chance(0.2) ? CallKind::kAsync : CallKind::kStatic;
      model->AddCallEdge(
          {class_methods[c - 1].first + ".run", class_methods[c].first + ".run", kind});
    }
  }
}

}  // namespace ctmodel
