// Auxiliary catalog synthesis.
//
// Real Hadoop-scale systems contain thousands of classes that the analysis
// must wade through even though the test workload never executes them; the
// Table 10 denominators (types / fields / access points) are dominated by
// this code. Each mini system's model is therefore populated with a
// deterministic catalog of static-only classes built from real package and
// class-name stems of its upstream project. Catalog entries are full
// citizens of the static analysis (type inference sees them, the pruning
// optimizations fire on them, some are Closeable IO classes) but carry no
// runtime hooks, so profiling discards whatever of them survives pruning —
// exactly the fate of unexecuted code in the original tool.
#ifndef SRC_MODEL_CATALOG_H_
#define SRC_MODEL_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/program_model.h"

namespace ctmodel {

struct CatalogSpec {
  // Real package prefixes of the upstream project, e.g.
  // "org.apache.hadoop.yarn.server.resourcemanager".
  std::vector<std::string> packages;
  // Class-name stems, e.g. "Scheduler", "Allocator", "Tracker".
  std::vector<std::string> stems;
  // Suffixes composed with the stems, e.g. "Impl", "Service", "Context".
  std::vector<std::string> suffixes;
  int num_classes = 200;
  int min_fields_per_class = 1;
  int max_fields_per_class = 5;
  int min_accesses_per_field = 1;
  int max_accesses_per_field = 6;
  // Fractions of read points carrying each pruning attribute.
  double ctor_only_field_fraction = 0.12;
  double unused_read_fraction = 0.18;
  double sanity_checked_fraction = 0.15;
  // Fraction of catalog classes that implement Closeable and contribute IO
  // methods / call sites (Table 8).
  double closeable_fraction = 0.08;
  int io_points_per_method = 2;
  // Holder classes: catalog classes given one field of a (future) meta-info
  // type, creating realistic meta-info access points outside the executed
  // core. Names must match types the executable model declares.
  std::vector<std::string> metainfo_field_types;
  int holders_per_metainfo_type = 3;
  // Synthetic call structure: every catalog class gets a `run` driver method
  // calling the class's access-point methods; `run` is an entry point with
  // this probability, and consecutive classes chain their drivers with this
  // probability (giving the static context enumeration multi-frame strings
  // and genuinely unreachable regions to prune).
  double entry_point_fraction = 0.35;
  double call_chain_fraction = 0.25;
  uint64_t seed = 1;
};

// Populates `model` with the synthetic catalog described by `spec`.
// Idempotent naming: class names embed a deterministic counter so repeated
// builds of the same system model produce identical catalogs.
void PopulateCatalog(ProgramModel* model, const CatalogSpec& spec);

// Plain non-meta types every model shares (String, Integer, ...; §3.1.2 lists
// the base types excluded from generalization).
void AddBaseTypes(ProgramModel* model);

}  // namespace ctmodel

#endif  // SRC_MODEL_CATALOG_H_
