// Static crash-point identification (§3.1.2).
//
// Crash points are program points before a read of (pre-read) or after a
// write to (post-write) a meta-info field. Collection-mediated accesses are
// classified by the API-name keyword table (Table 3); points that match
// neither keyword list are not accesses at all. Three pruning optimizations
// (constructor-only fields, unused reads, sanity-checked reads) and the
// return-site promotion reduce the candidate set; per-optimization counters
// feed Table 12 and the ablation benches.
#ifndef SRC_ANALYSIS_CRASH_POINT_ANALYSIS_H_
#define SRC_ANALYSIS_CRASH_POINT_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/metainfo_inference.h"
#include "src/model/program_model.h"

namespace ctanalysis {

// Read/write keyword lists of Table 3.
bool IsCollectionReadOp(const std::string& op);
bool IsCollectionWriteOp(const std::string& op);

enum class CrashPointKind { kPreRead, kPostWrite };

struct StaticCrashPoint {
  int access_point_id = -1;
  CrashPointKind kind = CrashPointKind::kPreRead;
  std::string field_id;
  std::string location;  // "Class.method:line"
};

struct CrashPointOptions {
  bool prune_constructor_only = true;
  bool prune_unused = true;
  bool prune_sanity_checked = true;
  bool promote_returns = true;
  // Drop candidates whose anchor method the declared call graph cannot reach
  // from any entry point. Off by default (Table 10/12 counts predate the call
  // graph); the static-context driver modes switch it on.
  bool prune_statically_unreachable = false;
};

struct CrashPointResult {
  std::vector<StaticCrashPoint> points;
  // Counters (Tables 10 & 12).
  int metainfo_access_points = 0;  // candidates before pruning
  int pruned_constructor = 0;
  int pruned_unused = 0;
  int pruned_sanity_checked = 0;
  int promoted_points = 0;    // returned-directly reads expanded away
  int promotion_sites = 0;    // call sites considered during promotion
  int discarded_non_access_collection_ops = 0;
  int pruned_unreachable = 0;  // prune_statically_unreachable only

  std::set<int> PointIds() const;
  int NumPreRead() const;
  int NumPostWrite() const;
};

class CrashPointAnalysis {
 public:
  CrashPointAnalysis(const ctmodel::ProgramModel* model, const MetaInfoResult* metainfo)
      : model_(model), metainfo_(metainfo) {}

  CrashPointResult Identify(const CrashPointOptions& options = CrashPointOptions()) const;

 private:
  // Emits `point` (or its promoted call sites) into `result` subject to the
  // read-side pruning rules.
  void EmitPoint(const ctmodel::AccessPointDecl& point, const CrashPointOptions& options,
                 bool via_promotion, CrashPointResult* result) const;

  const ctmodel::ProgramModel* model_;
  const MetaInfoResult* metainfo_;
};

}  // namespace ctanalysis

#endif  // SRC_ANALYSIS_CRASH_POINT_ANALYSIS_H_
