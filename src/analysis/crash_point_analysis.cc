#include "src/analysis/crash_point_analysis.h"

#include <memory>

#include "src/analysis/call_graph.h"
#include "src/common/strings.h"

namespace ctanalysis {

namespace {

// Table 3 keyword lists. A collection API call is a read/write access if its
// method name starts with one of these keywords (case-insensitive).
const char* kReadKeywords[] = {"get",     "peek", "poll",    "clone",   "at",
                               "element", "index", "toarray", "sub",     "contain",
                               "isempty", "exist", "values"};
const char* kWriteKeywords[] = {"add",     "clear", "remove", "retain", "put",     "insert",
                                "set",     "replace", "offer", "push",   "pop",     "copyinto"};

bool MatchesKeyword(const std::string& op, const char* const* keywords, size_t count) {
  std::string lower = ctcommon::ToLower(op);
  for (size_t i = 0; i < count; ++i) {
    if (lower.rfind(keywords[i], 0) == 0) {
      return true;
    }
  }
  return false;
}

std::string Location(const ctmodel::AccessPointDecl& point) {
  return point.clazz + "." + point.method + ":" + std::to_string(point.line);
}

}  // namespace

bool IsCollectionReadOp(const std::string& op) {
  return MatchesKeyword(op, kReadKeywords, std::size(kReadKeywords));
}

bool IsCollectionWriteOp(const std::string& op) {
  return MatchesKeyword(op, kWriteKeywords, std::size(kWriteKeywords));
}

std::set<int> CrashPointResult::PointIds() const {
  std::set<int> ids;
  for (const auto& point : points) {
    ids.insert(point.access_point_id);
  }
  return ids;
}

int CrashPointResult::NumPreRead() const {
  int count = 0;
  for (const auto& point : points) {
    if (point.kind == CrashPointKind::kPreRead) {
      ++count;
    }
  }
  return count;
}

int CrashPointResult::NumPostWrite() const {
  return static_cast<int>(points.size()) - NumPreRead();
}

void CrashPointAnalysis::EmitPoint(const ctmodel::AccessPointDecl& point,
                                   const CrashPointOptions& options, bool via_promotion,
                                   CrashPointResult* result) const {
  // Determine the effective access kind; collection ops are classified by
  // keyword, everything else by the declared kind.
  ctmodel::AccessKind kind = point.kind;
  if (!point.collection_op.empty()) {
    if (IsCollectionReadOp(point.collection_op)) {
      kind = ctmodel::AccessKind::kRead;
    } else if (IsCollectionWriteOp(point.collection_op)) {
      kind = ctmodel::AccessKind::kWrite;
    } else {
      ++result->discarded_non_access_collection_ops;
      return;
    }
  }

  if (kind == ctmodel::AccessKind::kRead) {
    if (options.promote_returns && point.returned_directly && !via_promotion) {
      // Replace the read with its call sites (§3.1.2 "promotion").
      ++result->promoted_points;
      for (int site_id : point.promoted_sites) {
        ++result->promotion_sites;
        EmitPoint(model_->access_point(site_id), options, /*via_promotion=*/true, result);
      }
      return;
    }
    if (options.prune_unused && point.value_unused) {
      ++result->pruned_unused;
      return;
    }
    if (options.prune_sanity_checked && point.sanity_checked) {
      ++result->pruned_sanity_checked;
      return;
    }
  }

  StaticCrashPoint out;
  out.access_point_id = point.id;
  out.kind = kind == ctmodel::AccessKind::kRead ? CrashPointKind::kPreRead
                                                : CrashPointKind::kPostWrite;
  out.field_id = point.field_id;
  out.location = Location(point);
  result->points.push_back(out);
}

CrashPointResult CrashPointAnalysis::Identify(const CrashPointOptions& options) const {
  CrashPointResult result;
  std::unique_ptr<CallGraph> graph;
  if (options.prune_statically_unreachable) {
    graph = std::make_unique<CallGraph>(*model_);
  }
  // Promotion sites are only reachable through their promoting read; they are
  // not independent candidates.
  std::set<int> promotion_site_ids;
  for (const auto& point : model_->access_points()) {
    promotion_site_ids.insert(point.promoted_sites.begin(), point.promoted_sites.end());
  }
  for (const auto& point : model_->access_points()) {
    if (!metainfo_->IsMetaInfoField(point.field_id)) {
      continue;
    }
    if (promotion_site_ids.count(point.id) > 0) {
      continue;
    }
    ++result.metainfo_access_points;

    if (graph != nullptr &&
        !graph->IsReachable(ctmodel::ProgramModel::ContextMethodOf(point))) {
      ++result.pruned_unreachable;
      continue;
    }

    const ctmodel::FieldDecl* field = model_->FindField(point.field_id);
    if (options.prune_constructor_only && field != nullptr && field->set_only_in_constructor) {
      // The containing class is itself a meta-info type (Definition 2), so
      // later references to the field are redundant crash points.
      ++result.pruned_constructor;
      continue;
    }
    EmitPoint(point, options, /*via_promotion=*/false, &result);
  }
  return result;
}

}  // namespace ctanalysis
