// Type-based meta-info inference (Definition 2, §3.1.2).
//
// Starting from the seed types/fields the log analysis discovered, computes
// the closure:
//   * subtypes of a meta-info type are meta-info types;
//   * collection types over a meta-info type are meta-info types;
//   * a class C with an instance field C.f of meta-info type that is only
//     assigned in C's constructors is a meta-info type (the "uniquely indexed
//     by" pattern, e.g. RMContainerImpl ~ ContainerId);
//   * base types (Integer, String, Enum, byte[], File) are never generalized
//     from — their meta-info fields come individually from log analysis and
//     promote only their containing classes.
//
// Each inferred type carries provenance (log-identified vs derived) and a
// group label naming the kind of meta-info it refers to, reproducing the
// row structure of Table 2.
#ifndef SRC_ANALYSIS_METAINFO_INFERENCE_H_
#define SRC_ANALYSIS_METAINFO_INFERENCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/model/program_model.h"

namespace ctanalysis {

struct MetaInfoTypeInfo {
  std::string name;
  bool from_log = false;  // the * annotation in Table 2
  std::string group;      // seed type this one traces back to
  std::string derived_via;  // "log" | "subtype" | "collection" | "containing-class"
};

struct MetaInfoResult {
  std::map<std::string, MetaInfoTypeInfo> types;
  std::set<std::string> fields;  // meta-info field ids (type-based + log seeds)

  bool IsMetaInfoType(const std::string& name) const { return types.count(name) > 0; }
  bool IsMetaInfoField(const std::string& id) const { return fields.count(id) > 0; }
  int NumTypes() const { return static_cast<int>(types.size()); }
  int NumFields() const { return static_cast<int>(fields.size()); }
  // Table 2 view: group → member types, log-identified first.
  std::map<std::string, std::vector<MetaInfoTypeInfo>> ByGroup() const;
};

class MetaInfoInference {
 public:
  explicit MetaInfoInference(const ctmodel::ProgramModel* model) : model_(model) {}

  MetaInfoResult Infer(const std::set<std::string>& seed_types,
                       const std::set<std::string>& seed_fields) const;

 private:
  const ctmodel::ProgramModel* model_;
};

}  // namespace ctanalysis

#endif  // SRC_ANALYSIS_METAINFO_INFERENCE_H_
