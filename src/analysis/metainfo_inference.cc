#include "src/analysis/metainfo_inference.h"

#include <algorithm>
#include <deque>

namespace ctanalysis {

std::map<std::string, std::vector<MetaInfoTypeInfo>> MetaInfoResult::ByGroup() const {
  std::map<std::string, std::vector<MetaInfoTypeInfo>> out;
  for (const auto& [name, info] : types) {
    out[info.group].push_back(info);
  }
  for (auto& [group, members] : out) {
    std::stable_sort(members.begin(), members.end(),
                     [](const MetaInfoTypeInfo& a, const MetaInfoTypeInfo& b) {
                       if (a.from_log != b.from_log) {
                         return a.from_log;
                       }
                       return a.name < b.name;
                     });
  }
  return out;
}

MetaInfoResult MetaInfoInference::Infer(const std::set<std::string>& seed_types,
                                        const std::set<std::string>& seed_fields) const {
  MetaInfoResult result;
  std::deque<std::string> worklist;

  auto add_type = [&](const std::string& name, bool from_log, const std::string& group,
                      const std::string& via) {
    const ctmodel::TypeDecl* type = model_->FindType(name);
    if (type == nullptr || type->is_base) {
      return;  // Base types are never meta-info types themselves.
    }
    auto it = result.types.find(name);
    if (it != result.types.end()) {
      // Upgrade provenance if the type is also directly logged.
      if (from_log && !it->second.from_log) {
        it->second.from_log = true;
        it->second.derived_via = "log";
      }
      return;
    }
    MetaInfoTypeInfo info;
    info.name = name;
    info.from_log = from_log;
    info.group = group.empty() ? name : group;
    info.derived_via = via;
    result.types[name] = info;
    worklist.push_back(name);
  };

  for (const auto& seed : seed_types) {
    add_type(seed, /*from_log=*/true, seed, "log");
  }
  // Log-identified base-typed fields: the field is meta-info and its
  // containing class becomes a meta-info type (§3.1.2).
  for (const auto& field_id : seed_fields) {
    const ctmodel::FieldDecl* field = model_->FindField(field_id);
    if (field == nullptr) {
      continue;
    }
    result.fields.insert(field_id);
    add_type(field->clazz, /*from_log=*/false, field->clazz, "containing-class");
  }

  while (!worklist.empty()) {
    std::string current = worklist.front();
    worklist.pop_front();
    const std::string group = result.types[current].group;

    for (const auto& subtype : model_->SubtypesOf(current)) {
      add_type(subtype, /*from_log=*/false, group, "subtype");
    }
    for (const auto& collection : model_->CollectionsOf(current)) {
      add_type(collection, /*from_log=*/false, group, "collection");
    }
    // Containing-class rule: C.f of meta-info type, set only in constructors.
    for (const auto& field : model_->fields()) {
      if (field.type == current && field.set_only_in_constructor) {
        add_type(field.clazz, /*from_log=*/false, group, "containing-class");
      }
    }
  }

  // Meta-info fields: every field whose declared type is a meta-info type,
  // plus the log-identified base-typed seeds already inserted.
  for (const auto& field : model_->fields()) {
    if (result.IsMetaInfoType(field.type)) {
      result.fields.insert(field.id);
    }
  }
  return result;
}

}  // namespace ctanalysis
