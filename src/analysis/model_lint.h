// Model-consistency linter.
//
// The mini systems keep their declared ProgramModel and their executable code
// consistent by construction — but nothing used to *check* that, so a refactor
// could silently desynchronize them (an access point left pointing at a
// removed field, a collection op misspelled out of the Table 3 keyword lists,
// a method renamed without updating its call edges). LintModel performs the
// static checks a model must pass before the pipeline's results mean
// anything:
//
//   dangling-field       access point, log binding or field-index reference
//                        to a field id the model never declared
//   dangling-promotion   promoted_sites entry that is no valid access-point
//                        id, or promotion on a point without returned_directly
//   unknown-op           non-empty collection_op matching neither Table 3
//                        keyword list (the analysis would silently discard it)
//   method-less-class    executable access point whose class declares no
//                        methods (its frame could never be on a stack)
//   dangling-edge        call edge whose endpoints are undeclared (virtual
//                        edges must resolve to at least one dispatch target)
//   unreachable-point    executable access point whose anchor method the call
//                        graph cannot reach from any entry point
//   dangling-log-location log binding whose statement id is unregistered, or
//                        whose registered location names no declared method
//   dangling-io-method   IO point naming an (io_class, io_method) pair the
//                        model never declared as an IoMethodDecl
//   dangling-io-callsite executable IO point whose callsite is no declared
//                        method (its frame could never be on a stack)
//   unreachable-io-point executable IO point whose callsite the call graph
//                        cannot reach from any entry point
//   static-pair-unreachable
//                        model-declared multi-crash pair whose points cannot
//                        both be armed: an out-of-range or non-executable
//                        point, or (chiefly) a second point whose anchor the
//                        call graph cannot reach — the re-armed trigger would
//                        never fire and the declared scenario is untestable
//   network-window-invalid
//                        model-declared network-fault window that cannot
//                        trigger: an out-of-range, non-executable, or
//                        unreachable anchor point; a zero partition window
//                        (the heal coincides with the cut and nothing is ever
//                        dropped); or an empty bug id (the window would have
//                        no ground truth to assert against)
//   equivalent-crash-point-duplicate
//                        executable access point, multi-crash pair, or
//                        network-fault window whose static equivalence class
//                        (equivalence.h, model facts only) repeats an earlier
//                        declaration's — the duplicate can never contribute a
//                        run distinct from the first and is a dead decl; pairs
//                        compare unordered, so a (B,A) decl of a declared
//                        (A,B) scenario is flagged
//   grammar-op-unknown-target
//                        fuzz-grammar op whose RPC target is no declared
//                        method, or whose crash/shutdown target class declares
//                        no methods — the generated op would be unroutable;
//                        also malformed shape (duplicate/empty name, missing
//                        victim prefix, non-positive weight, empty window)
//   window-without-span-anchor
//                        malformed span declaration (empty or duplicate name,
//                        undeclared method), or a declared fault window —
//                        either point of a multi-crash pair, or a
//                        network-fault window's anchor — whose armable anchor
//                        method has no SpanDecl: its injection phase would
//                        render in campaign traces under a raw frame string
//                        instead of the model's vocabulary
//   component-without-span
//                        span declaring a component that names no declared
//                        class with methods (the profiler would attribute
//                        dwell to a role that cannot appear on any stack), or
//                        a replicated role the fuzz grammar kills/shuts down
//                        (a crash/shutdown op's target_class) with no
//                        component span at all — its recovery sweeps would be
//                        invisible to `ctstat --top`
//
// `tools/ctlint` runs this over all five shipped models in CI.
#ifndef SRC_ANALYSIS_MODEL_LINT_H_
#define SRC_ANALYSIS_MODEL_LINT_H_

#include <string>
#include <vector>

#include "src/model/program_model.h"

namespace ctanalysis {

struct LintIssue {
  std::string check;    // stable identifier, e.g. "dangling-field"
  std::string subject;  // what it is about, e.g. "point#12" or a method id
  std::string message;
};

struct LintResult {
  std::vector<LintIssue> issues;
  bool ok() const { return issues.empty(); }
  // Issues of one check kind; convenience for tests.
  int CountOf(const std::string& check) const;
};

LintResult LintModel(const ctmodel::ProgramModel& model);

}  // namespace ctanalysis

#endif  // SRC_ANALYSIS_MODEL_LINT_H_
