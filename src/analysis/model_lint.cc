#include "src/analysis/model_lint.h"

#include <cctype>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "src/analysis/call_graph.h"
#include "src/analysis/crash_point_analysis.h"
#include "src/analysis/equivalence.h"
#include "src/common/strings.h"
#include "src/logging/statement.h"

namespace ctanalysis {

namespace {

std::string PointSubject(const ctmodel::AccessPointDecl& point) {
  return "point#" + std::to_string(point.id) + " (" + point.clazz + "." + point.method + ":" +
         std::to_string(point.line) + ")";
}

std::string IoPointSubject(const ctmodel::IoPointDecl& point) {
  return "io#" + std::to_string(point.id) + " (" + point.io_class + "." + point.io_method +
         " @ " + point.callsite + ")";
}

// A decl token embeds a concrete node index when a node-role stem is followed
// immediately by a digit run ("node3", "rserver12"), or when it names a
// host:port instance ("node1:42349"). Model declarations describe *roles* in
// the target program — under --scale the deployment is stamped out N times,
// and a decl pinned to one member of one deployment silently stops matching
// everything beyond the first replica. Deliberately handwritten (the two
// shapes are trivial) so the linter stays regex-free.
bool EmbedsConcreteNodeIndex(const std::string& text) {
  const std::string lower = ctcommon::ToLower(text);
  static const char* kStems[] = {"node", "dnode", "rserver", "zkpeer", "cass", "namenode"};
  for (const char* stem : kStems) {
    const size_t stem_len = std::strlen(stem);
    for (size_t pos = lower.find(stem); pos != std::string::npos;
         pos = lower.find(stem, pos + 1)) {
      const size_t after = pos + stem_len;
      if (after < lower.size() && std::isdigit(static_cast<unsigned char>(lower[after]))) {
        return true;
      }
    }
  }
  // host:port — a letter, a digit run, ':', a digit: "host7:9000".
  for (size_t i = 1; i + 1 < lower.size(); ++i) {
    if (lower[i] != ':' || !std::isdigit(static_cast<unsigned char>(lower[i + 1]))) {
      continue;
    }
    size_t digits = i;
    while (digits > 0 && std::isdigit(static_cast<unsigned char>(lower[digits - 1]))) {
      --digits;
    }
    if (digits < i && digits > 0 &&
        std::isalpha(static_cast<unsigned char>(lower[digits - 1]))) {
      return true;
    }
  }
  return false;
}

}  // namespace

int LintResult::CountOf(const std::string& check) const {
  int count = 0;
  for (const auto& issue : issues) {
    if (issue.check == check) {
      ++count;
    }
  }
  return count;
}

LintResult LintModel(const ctmodel::ProgramModel& model) {
  LintResult result;
  auto report = [&](std::string check, std::string subject, std::string message) {
    result.issues.push_back({std::move(check), std::move(subject), std::move(message)});
  };

  const int num_points = model.NumAccessPoints();
  for (const auto& point : model.access_points()) {
    if (model.FindField(point.field_id) == nullptr) {
      report("dangling-field", PointSubject(point),
             "references undeclared field '" + point.field_id + "'");
    }
    if (!point.collection_op.empty() && !IsCollectionReadOp(point.collection_op) &&
        !IsCollectionWriteOp(point.collection_op)) {
      report("unknown-op", PointSubject(point),
             "collection op '" + point.collection_op +
                 "' matches neither Table 3 keyword list");
    }
    if (!point.promoted_sites.empty() && !point.returned_directly) {
      report("dangling-promotion", PointSubject(point),
             "has promoted_sites but is not returned_directly");
    }
    for (int site : point.promoted_sites) {
      if (site < 0 || site >= num_points) {
        report("dangling-promotion", PointSubject(point),
               "promoted site id " + std::to_string(site) + " is out of range");
      } else if (site == point.id) {
        report("dangling-promotion", PointSubject(point), "promotes to itself");
      }
    }
    if (point.executable && model.MethodsOf(point.clazz).empty()) {
      report("method-less-class", PointSubject(point),
             "executable point in class '" + point.clazz + "' which declares no methods");
    }
  }

  const ctlog::StatementRegistry& registry = ctlog::StatementRegistry::Instance();
  for (const auto& binding : model.log_bindings()) {
    const std::string subject = "log#" + std::to_string(binding.statement_id);
    for (const auto& arg : binding.args) {
      if (!arg.field_id.empty() && model.FindField(arg.field_id) == nullptr) {
        report("dangling-field", subject,
               "log binding references undeclared field '" + arg.field_id + "'");
      }
    }
    // Cross-check the registered statement location against the declared
    // methods: a bound statement claims to live in a Class.method, and that
    // method must exist for the claim to mean anything.
    if (binding.statement_id < 0 || binding.statement_id >= registry.size()) {
      report("dangling-log-location", subject, "statement id is not registered");
      continue;
    }
    const std::string& location = registry.Get(binding.statement_id).location;
    if (!location.empty() && model.FindMethod(location) == nullptr) {
      report("dangling-log-location", subject,
             "statement location '" + location + "' is not a declared method");
    }
  }

  // Call-edge and reachability checks share one graph build.
  CallGraph graph(model);
  for (const auto& edge : model.call_edges()) {
    const std::string subject = edge.caller + " -> " + edge.callee;
    if (model.FindMethod(edge.caller) == nullptr) {
      report("dangling-edge", subject, "caller is not a declared method");
    }
    if (edge.kind == ctmodel::CallKind::kVirtual) {
      // Virtual targets may be abstract declarations or overrides; require
      // that dispatch resolves to at least one declared method.
      const auto dot = edge.callee.rfind('.');
      const std::string receiver = dot == std::string::npos ? "" : edge.callee.substr(0, dot);
      const std::string name = dot == std::string::npos ? edge.callee : edge.callee.substr(dot + 1);
      bool resolved = false;
      for (const auto& method : model.methods()) {
        if (method.name == name && model.IsSubtypeOf(method.clazz, receiver)) {
          resolved = true;
          break;
        }
      }
      if (!resolved) {
        report("dangling-edge", subject, "virtual call resolves to no declared method");
      }
    } else if (model.FindMethod(edge.callee) == nullptr) {
      report("dangling-edge", subject, "callee is not a declared method");
    }
  }

  for (const auto& point : model.access_points()) {
    if (!point.executable) {
      continue;
    }
    const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
    if (!graph.IsReachable(anchor)) {
      report("unreachable-point", PointSubject(point),
             "anchor method '" + anchor + "' is unreachable from every entry point");
    }
  }

  // Declared multi-crash pairs must be armable end to end: both points in
  // range and executable (a trigger needs a runtime hook), and both anchors
  // statically reachable — above all the second, whose trigger is re-armed
  // mid-recovery and silently never fires if no workload path reaches it.
  for (size_t i = 0; i < model.multi_crash_pairs().size(); ++i) {
    const ctmodel::MultiCrashPairDecl& pair = model.multi_crash_pairs()[i];
    const std::string subject = "pair#" + std::to_string(i) + " (" +
                                std::to_string(pair.first_point) + " -> " +
                                std::to_string(pair.second_point) + ")";
    bool in_range = true;
    for (const auto& [role, id] : {std::pair<const char*, int>{"first", pair.first_point},
                                   {"second", pair.second_point}}) {
      if (id < 0 || id >= num_points) {
        report("static-pair-unreachable", subject,
               std::string(role) + " point id is out of range");
        in_range = false;
      }
    }
    if (!in_range) {
      continue;
    }
    for (const auto& [role, id] : {std::pair<const char*, int>{"first", pair.first_point},
                                   {"second", pair.second_point}}) {
      const ctmodel::AccessPointDecl& point = model.access_point(id);
      if (!point.executable) {
        report("static-pair-unreachable", subject,
               std::string(role) + " point " + PointSubject(point) +
                   " is not executable — no runtime hook to arm");
        continue;
      }
      const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
      if (!graph.IsReachable(anchor)) {
        report("static-pair-unreachable", subject,
               std::string(role) + " point anchor '" + anchor +
                   "' is unreachable from every entry point");
      }
    }
  }

  // Declared network-fault windows must be triggerable: an armable anchor
  // point (in range, executable, statically reachable), a positive partition
  // window, and a bug id giving the window its ground truth.
  for (size_t i = 0; i < model.network_fault_windows().size(); ++i) {
    const ctmodel::NetworkFaultWindowDecl& window = model.network_fault_windows()[i];
    const std::string subject =
        "netwindow#" + std::to_string(i) + " (point " + std::to_string(window.point) + ")";
    if (window.partition_ms == 0) {
      report("network-window-invalid", subject,
             "partition window is zero — the heal coincides with the cut");
    }
    if (window.bug_id.empty()) {
      report("network-window-invalid", subject,
             "no bug id — the window declares no ground truth to assert");
    }
    if (window.point < 0 || window.point >= num_points) {
      report("network-window-invalid", subject, "anchor point id is out of range");
      continue;
    }
    const ctmodel::AccessPointDecl& point = model.access_point(window.point);
    if (!point.executable) {
      report("network-window-invalid", subject,
             "anchor point " + PointSubject(point) + " is not executable — no runtime hook to arm");
      continue;
    }
    const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
    if (!graph.IsReachable(anchor)) {
      report("network-window-invalid", subject,
             "anchor '" + anchor + "' is unreachable from every entry point");
    }
  }

  // Span declarations must be well-formed, and every fault window the model
  // declares — both points of each multi-crash pair and each network-fault
  // window's anchor — must map to a declared observability span, so campaign
  // traces render those injections under a stable human-readable name rather
  // than a raw frame string.
  std::set<std::string> span_names;
  for (size_t i = 0; i < model.spans().size(); ++i) {
    const ctmodel::SpanDecl& span = model.spans()[i];
    const std::string subject = "span#" + std::to_string(i) + " ('" + span.name + "')";
    if (span.name.empty()) {
      report("window-without-span-anchor", subject, "span has an empty name");
    } else if (!span_names.insert(span.name).second) {
      report("window-without-span-anchor", subject,
             "span name '" + span.name + "' is declared more than once");
    }
    if (model.FindMethod(span.method) == nullptr) {
      report("window-without-span-anchor", subject,
             "span method '" + span.method + "' is not a declared method");
    }
  }
  auto require_span = [&](const std::string& subject, int point_id) {
    if (point_id < 0 || point_id >= num_points) {
      return;  // the range violation is already reported by the window checks
    }
    const ctmodel::AccessPointDecl& point = model.access_point(point_id);
    if (!point.executable) {
      return;  // ditto: un-armable windows are someone else's finding
    }
    const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
    if (model.FindSpanForMethod(anchor) == nullptr) {
      report("window-without-span-anchor", subject,
             "anchor method '" + anchor + "' has no declared span (AddSpan)");
    }
  };
  for (size_t i = 0; i < model.multi_crash_pairs().size(); ++i) {
    const ctmodel::MultiCrashPairDecl& pair = model.multi_crash_pairs()[i];
    const std::string subject = "pair#" + std::to_string(i) + " (" +
                                std::to_string(pair.first_point) + " -> " +
                                std::to_string(pair.second_point) + ")";
    require_span(subject, pair.first_point);
    require_span(subject, pair.second_point);
  }
  for (size_t i = 0; i < model.network_fault_windows().size(); ++i) {
    const ctmodel::NetworkFaultWindowDecl& window = model.network_fault_windows()[i];
    require_span("netwindow#" + std::to_string(i) + " (point " +
                     std::to_string(window.point) + ")",
                 window.point);
  }

  // Component attribution must be grounded both ways: a span's component must
  // name a class that can actually appear on a stack (otherwise `ctstat --top`
  // charges dwell to a phantom role), and every replicated role the fuzz
  // grammar kills or shuts down must own at least one component span
  // (otherwise its recovery sweeps are invisible to the profiler).
  std::set<std::string> span_components;
  for (size_t i = 0; i < model.spans().size(); ++i) {
    const ctmodel::SpanDecl& span = model.spans()[i];
    if (span.component.empty()) {
      continue;
    }
    span_components.insert(span.component);
    if (model.MethodsOf(span.component).empty()) {
      report("component-without-span",
             "span#" + std::to_string(i) + " ('" + span.name + "')",
             "component '" + span.component + "' names no declared class with "
             "methods — dwell would be attributed to a role that cannot appear "
             "on any stack");
    }
  }
  for (const auto& op : model.grammar_ops()) {
    if (op.kind != ctmodel::GrammarOpKind::kCrash &&
        op.kind != ctmodel::GrammarOpKind::kShutdown) {
      continue;
    }
    if (op.target_class.empty() || span_components.count(op.target_class) > 0) {
      continue;
    }
    report("component-without-span", "grammar-op '" + op.name + "'",
           "killed role '" + op.target_class + "' has no component span — its "
           "recovery sweeps would be invisible to ctstat --top");
  }

  // Scale invariance: declarations must not embed concrete node indices or
  // host:port instances. The --scale knob multiplies replicated roles, so a
  // decl naming one concrete member ("rserver3.open") matches only the first
  // replica of a scaled deployment and quietly under-counts the rest. Span
  // notes are exempt: they are prose for humans, not matched against runtime
  // state.
  for (const auto& point : model.access_points()) {
    for (const std::string* token : {&point.clazz, &point.method, &point.context_method}) {
      if (EmbedsConcreteNodeIndex(*token)) {
        report("scale-invariant-decl", PointSubject(point),
               "'" + *token + "' embeds a concrete node index — declare the role, "
               "not one deployment member");
        break;  // one finding per point is enough to act on
      }
    }
  }
  for (size_t i = 0; i < model.spans().size(); ++i) {
    const ctmodel::SpanDecl& span = model.spans()[i];
    for (const std::string* token : {&span.name, &span.method}) {
      if (EmbedsConcreteNodeIndex(*token)) {
        report("scale-invariant-decl",
               "span#" + std::to_string(i) + " ('" + span.name + "')",
               "'" + *token + "' embeds a concrete node index — declare the role, "
               "not one deployment member");
        break;
      }
    }
  }

  // Equivalence-class duplicates: a decl whose static class key (equivalence.h
  // over model facts alone — no inference result) repeats an earlier decl's can
  // never contribute an injection run distinct from the first, so it is dead
  // weight the model should drop. Pairs compare unordered: declaring both
  // (A,B) and (B,A) is the classic instance.
  const EquivalenceAnalysis equivalence(&model, /*metainfo=*/nullptr);
  std::map<std::string, std::string> first_by_key;
  auto flag_duplicate = [&](const std::string& key, const std::string& subject) {
    auto [it, inserted] = first_by_key.emplace(key, subject);
    if (!inserted) {
      report("equivalent-crash-point-duplicate", subject,
             "same equivalence class as " + it->second + " — a dead declaration");
    }
  };
  for (const auto& point : model.access_points()) {
    if (point.executable) {
      flag_duplicate("point|" + equivalence.DeclClassKey(point), PointSubject(point));
    }
  }
  for (size_t i = 0; i < model.multi_crash_pairs().size(); ++i) {
    const ctmodel::MultiCrashPairDecl& pair = model.multi_crash_pairs()[i];
    if (pair.first_point < 0 || pair.first_point >= num_points || pair.second_point < 0 ||
        pair.second_point >= num_points) {
      continue;  // static-pair-unreachable already reports the range violation
    }
    std::string ka = equivalence.DeclClassKey(model.access_point(pair.first_point));
    std::string kb = equivalence.DeclClassKey(model.access_point(pair.second_point));
    if (kb < ka) {
      std::swap(ka, kb);
    }
    flag_duplicate("pair|" + ka + "&&" + kb,
                   "pair#" + std::to_string(i) + " (" + std::to_string(pair.first_point) +
                       " -> " + std::to_string(pair.second_point) + ")");
  }
  for (size_t i = 0; i < model.network_fault_windows().size(); ++i) {
    const ctmodel::NetworkFaultWindowDecl& window = model.network_fault_windows()[i];
    if (window.point < 0 || window.point >= num_points) {
      continue;  // network-window-invalid already reports the range violation
    }
    // The window's identity (partition length + bug id) is part of its anchor
    // point's class key, so two windows collide only when both the anchor
    // class and the declared fault coincide.
    flag_duplicate("netwindow|" + equivalence.DeclClassKey(model.access_point(window.point)),
                   "netwindow#" + std::to_string(i) + " (point " +
                       std::to_string(window.point) + ")");
  }

  // Grammar ops must target the declared program model: an RPC op's
  // target_method anchors the generated message in a declared handler (a typo
  // yields an op no node ever handles, silently weakening every fuzz
  // campaign), and a crash/shutdown op's target_class names the role being
  // killed, which must declare methods. Malformed shape — duplicate or empty
  // names, no victim prefix, a non-positive weight, an empty firing window —
  // is reported under the same check: each makes the op undrawable or
  // untargetable.
  std::set<std::string> grammar_op_names;
  for (const auto& op : model.grammar_ops()) {
    const std::string subject = "grammar-op '" + op.name + "'";
    if (op.name.empty()) {
      report("grammar-op-unknown-target", subject, "op has an empty name");
    } else if (!grammar_op_names.insert(op.name).second) {
      report("grammar-op-unknown-target", subject, "op name is declared more than once");
    }
    if (op.target_prefix.empty()) {
      report("grammar-op-unknown-target", subject,
             "no target_prefix to draw a victim node from");
    }
    if (op.weight < 1) {
      report("grammar-op-unknown-target", subject,
             "weight " + std::to_string(op.weight) + " can never be drawn");
    }
    if (op.max_time_ms <= op.min_time_ms) {
      report("grammar-op-unknown-target", subject,
             "firing window [" + std::to_string(op.min_time_ms) + ", " +
                 std::to_string(op.max_time_ms) + ") is empty");
    }
    if (op.kind == ctmodel::GrammarOpKind::kRpc) {
      if (model.FindMethod(op.target_method) == nullptr) {
        report("grammar-op-unknown-target", subject,
               "target method '" + op.target_method + "' is not a declared method");
      }
    } else if (model.MethodsOf(op.target_class).empty()) {
      report("grammar-op-unknown-target", subject,
             "target class '" + op.target_class + "' declares no methods — not a role "
             "the grammar can kill");
    }
  }

  // IO points get the same treatment as access points: their method pair must
  // be declared, and executable callsites must be declared, reachable methods.
  std::set<std::pair<std::string, std::string>> declared_io_methods;
  for (const auto& io_method : model.io_methods()) {
    declared_io_methods.insert({io_method.clazz, io_method.method});
  }
  for (const auto& point : model.io_points()) {
    if (declared_io_methods.count({point.io_class, point.io_method}) == 0) {
      report("dangling-io-method", IoPointSubject(point),
             "IO method '" + point.io_class + "." + point.io_method +
                 "' is not a declared IoMethodDecl");
    }
    if (!point.executable) {
      continue;
    }
    if (model.FindMethod(point.callsite) == nullptr) {
      report("dangling-io-callsite", IoPointSubject(point),
             "callsite '" + point.callsite + "' is not a declared method");
    } else if (!graph.IsReachable(point.callsite)) {
      report("unreachable-io-point", IoPointSubject(point),
             "callsite '" + point.callsite + "' is unreachable from every entry point");
    }
  }

  return result;
}

}  // namespace ctanalysis
