// Bounded call-string enumeration (the static half of Definition 1).
//
// For every access point the enumeration walks the call graph backwards from
// the point's anchor method (the frame that is innermost when its runtime
// hook fires) and produces each call string the bounded runtime stack could
// show: strings of fewer than `depth` frames must begin at a context root
// (the stack was born there), while strings of exactly `depth` frames are
// also admitted as truncations of deeper stacks — mirroring how the tracer
// caps CallStack at its stack depth. Keys use the tracer's canonical
// "inner<outer<..." encoding, so a statically enumerated context and a
// profiler-observed DynamicPoint compare by string equality.
//
// The enumeration is an over-approximation: every context the profiler can
// observe is enumerated (100% recall is a checked invariant), while paths the
// workload never takes make precision < 1. CompareWithProfile reports both.
//
// Per-call-string feasibility (`prune_infeasible`) tightens the set without
// touching recall: a complete string is realizable only if its outermost
// frame is a *feasible* root (reachable from an entry point — the stack can
// actually be born there), and a truncated string only if its outermost frame
// lies in the sync-edge closure of the feasible roots (some realizable stack
// extends below the visible window). Profiler-observed strings always satisfy
// both — real stacks are born at executed roots — so pruning removes
// individual impossible strings instead of dropping whole crash points.
// Prune-then-enumerate is exactly enumerate-then-filter by IsFeasibleKey (a
// property-tested invariant).
#ifndef SRC_ANALYSIS_CONTEXT_ENUMERATION_H_
#define SRC_ANALYSIS_CONTEXT_ENUMERATION_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/call_graph.h"
#include "src/model/program_model.h"

namespace ctanalysis {

struct StaticContextResult {
  int depth = 0;
  // Access-point id → statically possible stack keys. Points whose anchor is
  // statically unreachable (or undeclared) get no entry.
  std::map<int, std::set<std::string>> contexts_by_point;
  // Access points whose anchor method is not reachable from any entry point.
  std::set<int> unreachable_points;
  // Reachable points whose every enumerated call string was pruned as
  // infeasible (only populated when pruning is on); they get no entry in
  // contexts_by_point.
  std::set<int> infeasible_points;
  // Point-level count of call strings removed by per-call-string pruning:
  // sum over points of |unpruned contexts| - |feasible contexts|.
  int pruned_call_strings = 0;

  int TotalContexts() const;
  bool Contains(int point_id, const std::string& stack_key) const;
};

class ContextEnumeration {
 public:
  explicit ContextEnumeration(const CallGraph* graph) : graph_(graph) {}

  // Enumerates contexts for every access point in the model (synthetic and
  // executable alike — the static analysis cannot tell them apart).
  // `depth` matches the tracer's stack depth, 1..6 in the ablation. With
  // `prune_infeasible` each enumerated call string is additionally checked
  // against IsFeasibleKey and dropped if no workload entry can realize it.
  StaticContextResult EnumerateAll(int depth, bool prune_infeasible = false) const;

  // Call strings for one anchor method; exposed for tests and ctlint.
  std::set<std::string> EnumerateMethod(const std::string& method_id, int depth,
                                        bool prune_infeasible = false) const;

  // The per-call-string feasibility predicate, on a canonical
  // "inner<outer<..." key: a complete string (< depth frames) must begin at a
  // feasible root; a truncated string (exactly depth frames) must begin in
  // the sync closure of the feasible roots. Filtering an unpruned enumeration
  // through this predicate equals enumerating with prune_infeasible=true.
  bool IsFeasibleKey(const std::string& stack_key, int depth) const;

 private:
  const CallGraph* graph_;
};

// Static-vs-profiled cross-check. `observed` are profiler dynamic points.
struct ContextCrossCheck {
  int observed = 0;            // distinct profiled ⟨point, context⟩ pairs
  int matched = 0;             // of those, statically enumerated
  int enumerated = 0;          // static pairs over the *profiled* point set
  std::vector<std::pair<int, std::string>> missed;  // observed but not enumerated

  // The paper's soundness direction: every observed context must be
  // enumerated. 1.0 when `missed` is empty.
  double Recall() const;
  // Fraction of enumerated contexts the workload actually exercised.
  double Precision() const;
};

template <typename DynamicPointSet>
ContextCrossCheck CompareWithProfile(const StaticContextResult& result,
                                     const DynamicPointSet& observed) {
  ContextCrossCheck check;
  std::set<int> profiled_points;
  for (const auto& dynamic_point : observed) {
    ++check.observed;
    profiled_points.insert(dynamic_point.point_id);
    if (result.Contains(dynamic_point.point_id, dynamic_point.stack_key)) {
      ++check.matched;
    } else {
      check.missed.emplace_back(dynamic_point.point_id, dynamic_point.stack_key);
    }
  }
  for (int point_id : profiled_points) {
    auto it = result.contexts_by_point.find(point_id);
    if (it != result.contexts_by_point.end()) {
      check.enumerated += static_cast<int>(it->second.size());
    }
  }
  return check;
}

}  // namespace ctanalysis

#endif  // SRC_ANALYSIS_CONTEXT_ENUMERATION_H_
