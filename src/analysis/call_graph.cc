#include "src/analysis/call_graph.h"

#include <deque>

namespace ctanalysis {

namespace {

// Splits "Class.method" into its class part. Method names carry no dots, so
// the last dot is the separator (class names may be package-qualified).
std::string ClassOf(const std::string& method_id) {
  auto pos = method_id.rfind('.');
  return pos == std::string::npos ? std::string() : method_id.substr(0, pos);
}

std::string NameOf(const std::string& method_id) {
  auto pos = method_id.rfind('.');
  return pos == std::string::npos ? method_id : method_id.substr(pos + 1);
}

}  // namespace

CallGraph::CallGraph(const ctmodel::ProgramModel& model) : model_(&model) {
  // 1. Dispatch resolution. A virtual edge to T.m targets T.m itself (if
  // declared — abstract declarations are methods too) plus every declared
  // override S.m on a subtype of T.
  for (const auto& edge : model.call_edges()) {
    if (edge.kind != ctmodel::CallKind::kVirtual) {
      edges_.push_back({edge.caller, edge.callee, edge.kind});
      continue;
    }
    const std::string receiver = ClassOf(edge.callee);
    const std::string name = NameOf(edge.callee);
    bool resolved_static_target = false;
    for (const auto& method : model.methods()) {
      if (method.name != name || !model.IsSubtypeOf(method.clazz, receiver)) {
        continue;
      }
      edges_.push_back({edge.caller, method.id, ctmodel::CallKind::kVirtual});
      if (method.clazz == receiver) {
        resolved_static_target = true;
      } else {
        ++dispatch_expansions_;
      }
    }
    if (!resolved_static_target) {
      // Keep the static target even if undeclared so reachability (and
      // ctlint) can see the dangling edge instead of silently dropping it.
      edges_.push_back({edge.caller, edge.callee, ctmodel::CallKind::kVirtual});
    }
  }

  // 2. Reverse adjacency for call-string enumeration (sync edges only).
  for (const auto& edge : edges_) {
    if (edge.kind != ctmodel::CallKind::kAsync) {
      sync_callers_[edge.callee].push_back(edge.caller);
    }
  }

  // 3. Context roots: entry points plus async-entered methods.
  for (const auto& method : model.methods()) {
    if (method.entry_point) {
      context_roots_.insert(method.id);
    }
  }
  for (const auto& edge : edges_) {
    if (edge.kind == ctmodel::CallKind::kAsync) {
      context_roots_.insert(edge.callee);
    }
  }

  // 4. Forward reachability from entry points over all edges.
  std::map<std::string, std::vector<std::string>> callees;
  for (const auto& edge : edges_) {
    callees[edge.caller].push_back(edge.callee);
  }
  std::deque<std::string> frontier;
  for (const auto& method : model.methods()) {
    if (method.entry_point) {
      reachable_.insert(method.id);
      frontier.push_back(method.id);
    }
  }
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    auto it = callees.find(current);
    if (it == callees.end()) {
      continue;
    }
    for (const auto& callee : it->second) {
      if (reachable_.insert(callee).second) {
        frontier.push_back(callee);
      }
    }
  }

  // 5. Feasible roots (context roots that are reachable — a stack can really
  // be born there) and their forward closure over sync edges, which bounds
  // where a depth-truncated stack window may end.
  std::map<std::string, std::vector<std::string>> sync_callees;
  for (const auto& edge : edges_) {
    if (edge.kind != ctmodel::CallKind::kAsync) {
      sync_callees[edge.caller].push_back(edge.callee);
    }
  }
  for (const auto& root : context_roots_) {
    if (reachable_.count(root) > 0) {
      feasible_roots_.insert(root);
      if (sync_closure_of_feasible_roots_.insert(root).second) {
        frontier.push_back(root);
      }
    }
  }
  while (!frontier.empty()) {
    std::string current = frontier.front();
    frontier.pop_front();
    auto it = sync_callees.find(current);
    if (it == sync_callees.end()) {
      continue;
    }
    for (const auto& callee : it->second) {
      if (sync_closure_of_feasible_roots_.insert(callee).second) {
        frontier.push_back(callee);
      }
    }
  }
}

const std::vector<std::string>& CallGraph::SyncCallersOf(const std::string& method_id) const {
  static const std::vector<std::string> kEmpty;
  auto it = sync_callers_.find(method_id);
  return it == sync_callers_.end() ? kEmpty : it->second;
}

bool CallGraph::IsReachable(const std::string& method_id) const {
  return reachable_.count(method_id) > 0;
}

bool CallGraph::IsContextRoot(const std::string& method_id) const {
  return context_roots_.count(method_id) > 0;
}

bool CallGraph::IsFeasibleRoot(const std::string& method_id) const {
  return feasible_roots_.count(method_id) > 0;
}

bool CallGraph::IsSyncReachableFromFeasibleRoot(const std::string& method_id) const {
  return sync_closure_of_feasible_roots_.count(method_id) > 0;
}

}  // namespace ctanalysis
