// Static equivalence-class partitioning for representative crash injection.
//
// Exhaustive injection spends most of its runs on dynamic crash points that
// are provably equivalent before any run launches: same call string modulo a
// loop index, same meta-info value class, same declared fault window, same
// recovery phase. Following representative-testing ideas from
// crash-consistency literature, this pass partitions a dynamic crash-point
// set into behavioral equivalence classes using *static facts only* — the
// program model and the call-graph enumeration output — so a campaign can
// inject one representative per class and a validation campaign can check
// that the members of each class really report the same bugs.
//
// The class key of a dynamic point ⟨static point, call string⟩ is built from:
//   * crash-point kind     pre-read / post-write (AccessKind of the decl);
//   * crash site           the declared clazz.method:line, verbatim — line
//                          numbers are static decl facts, not loop indices;
//                          two points on different event arms of one method
//                          must never merge, so only call-string variants of
//                          the same static point can land in one class;
//   * meta-info type       the declared type of the accessed field;
//   * value class          the meta-info group that type traces back to
//                          (Table 2's row label; the type itself when the
//                          inference result is absent or does not cover it);
//   * fault window         the declared network-fault window anchored at the
//                          point (partition_ms + bug id), or "-";
//   * recovery-phase span  the SpanDecl name for the point's anchor method,
//                          falling back to the canonicalized anchor frame;
//   * canonical context    the call string after loop-index normalization
//                          (trailing digits of each frame collapse to '#')
//                          and context-suffix truncation (only the innermost
//                          kContextSuffixFrames frames are kept — outer
//                          callers select *how recovery was entered*, not
//                          what the injected crash interrupts).
//
// Pair keys (multi-crash phase) are the unordered combination of the two
// point keys, so the symmetric orders (A,B) and (B,A) — and any two pairs
// whose endpoints collapse pointwise — land in one class.
//
// Everything here is deterministic: keys are canonical strings, classes are
// ordered by key, members are ordered by dynamic-point order, and the
// representative of a class is its lowest member. A partition computed at
// any thread count is therefore identical.
#ifndef SRC_ANALYSIS_EQUIVALENCE_H_
#define SRC_ANALYSIS_EQUIVALENCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/metainfo_inference.h"
#include "src/model/program_model.h"
#include "src/runtime/tracer.h"

namespace ctanalysis {

// One behavioral equivalence class of dynamic crash points.
struct EquivalenceClass {
  std::string key;                          // canonical class key
  std::vector<ctrt::DynamicPoint> members;  // in dynamic-point order

  // Deterministic choice: the lowest member of the class.
  const ctrt::DynamicPoint& representative() const { return members.front(); }
};

struct EquivalencePartition {
  std::vector<EquivalenceClass> classes;  // ordered by class key

  int NumClasses() const { return static_cast<int>(classes.size()); }
  int TotalMembers() const;
  // The injection set of a representative campaign: one point per class.
  std::set<ctrt::DynamicPoint> Representatives() const;
  // Class key of `point`, or "" if the point is in no class.
  const EquivalenceClass* ClassOf(const ctrt::DynamicPoint& point) const;
};

class EquivalenceAnalysis {
 public:
  // How many innermost frames of a call string the class key keeps. Two is
  // the crash site plus its immediate caller; deeper callers only vary how
  // the workload reached the recovery window.
  static constexpr int kContextSuffixFrames = 2;

  // `metainfo` may be null (ctlint runs on the model alone); the value-class
  // component then degrades to the declared field type.
  EquivalenceAnalysis(const ctmodel::ProgramModel* model, const MetaInfoResult* metainfo)
      : model_(model), metainfo_(metainfo) {}

  // Loop-index normalization: trailing decimal digits of a frame collapse to
  // '#' ("CapacityScheduler.nodeUpdate17" → "CapacityScheduler.nodeUpdate#").
  static std::string CanonicalFrame(const std::string& frame);
  // Canonical call string: per-frame loop-index normalization, then only the
  // innermost kContextSuffixFrames frames of the "inner<outer<..." key.
  static std::string CanonicalizeStackKey(const std::string& stack_key);

  // Class key of one dynamic point.
  std::string PointClassKey(const ctrt::DynamicPoint& point) const;
  // Class key of a bare access-point decl (no call string — the context
  // component is the canonicalized anchor frame). Used by the model linter.
  std::string DeclClassKey(const ctmodel::AccessPointDecl& point) const;
  // Unordered pair class key: the two point keys in sorted order.
  std::string PairClassKey(const ctrt::DynamicPoint& a, const ctrt::DynamicPoint& b) const;

  // Partitions a dynamic point set into equivalence classes (deterministic:
  // classes by key, members by dynamic-point order).
  EquivalencePartition PartitionPoints(const std::set<ctrt::DynamicPoint>& points) const;

 private:
  // The key components shared by PointClassKey and DeclClassKey: everything
  // except the context suffix.
  std::string DeclComponents(const ctmodel::AccessPointDecl& point) const;

  const ctmodel::ProgramModel* model_;
  const MetaInfoResult* metainfo_;  // may be null
};

}  // namespace ctanalysis

#endif  // SRC_ANALYSIS_EQUIVALENCE_H_
