#include "src/analysis/equivalence.h"

#include <algorithm>
#include <cctype>

namespace ctanalysis {

int EquivalencePartition::TotalMembers() const {
  int total = 0;
  for (const auto& cls : classes) {
    total += static_cast<int>(cls.members.size());
  }
  return total;
}

std::set<ctrt::DynamicPoint> EquivalencePartition::Representatives() const {
  std::set<ctrt::DynamicPoint> points;
  for (const auto& cls : classes) {
    points.insert(cls.representative());
  }
  return points;
}

const EquivalenceClass* EquivalencePartition::ClassOf(const ctrt::DynamicPoint& point) const {
  for (const auto& cls : classes) {
    if (std::binary_search(cls.members.begin(), cls.members.end(), point)) {
      return &cls;
    }
  }
  return nullptr;
}

std::string EquivalenceAnalysis::CanonicalFrame(const std::string& frame) {
  size_t end = frame.size();
  while (end > 0 && std::isdigit(static_cast<unsigned char>(frame[end - 1]))) {
    --end;
  }
  if (end == frame.size() || end == 0) {
    return frame;  // no trailing digits, or digits-only (leave untouched)
  }
  return frame.substr(0, end) + "#";
}

std::string EquivalenceAnalysis::CanonicalizeStackKey(const std::string& stack_key) {
  std::string out;
  int kept = 0;
  size_t start = 0;
  while (start <= stack_key.size() && kept < kContextSuffixFrames) {
    size_t sep = stack_key.find('<', start);
    const std::string frame = sep == std::string::npos
                                  ? stack_key.substr(start)
                                  : stack_key.substr(start, sep - start);
    if (!frame.empty()) {
      if (!out.empty()) {
        out += '<';
      }
      out += CanonicalFrame(frame);
      ++kept;
    }
    if (sep == std::string::npos) {
      break;
    }
    start = sep + 1;
  }
  return out;
}

std::string EquivalenceAnalysis::DeclComponents(const ctmodel::AccessPointDecl& point) const {
  std::string key = point.kind == ctmodel::AccessKind::kRead ? "pre-read" : "post-write";

  // Declared crash site. Line numbers are static decl facts — two access
  // points at different lines of one method can sit on different event arms
  // (ContainerImpl.handle dispatches PROGRESS at one line and FINISHING at
  // another), so the site stays verbatim and only call-string variants of the
  // same static point can merge.
  key += "|" + point.clazz + "." + point.method + ":" + std::to_string(point.line);

  // Meta-info type of the accessed variable, and the value class (group) it
  // traces back to. Without an inference result the type stands in for its
  // own group: the partition is then coarser only where inference would have
  // merged types, never finer.
  const ctmodel::FieldDecl* field = model_->FindField(point.field_id);
  const std::string type = field != nullptr ? field->type : point.field_id;
  std::string group = type;
  if (metainfo_ != nullptr) {
    auto it = metainfo_->types.find(type);
    if (it != metainfo_->types.end() && !it->second.group.empty()) {
      group = it->second.group;
    }
  }
  key += "|" + type + "|" + group;

  // Declared fault-window identity: a point anchoring a network-fault window
  // is behaviorally distinct from one that does not (its injection partitions
  // instead of crashing, for the declared window and bug).
  std::string window = "-";
  for (const auto& decl : model_->network_fault_windows()) {
    if (decl.point == point.id) {
      window = "w" + std::to_string(decl.partition_ms) + ":" + decl.bug_id;
      break;
    }
  }
  key += "|" + window;

  // Recovery-phase span anchor: the model's name for the phase the injection
  // interrupts, falling back to the canonical anchor frame. Keeping the span
  // distinct from the context suffix guards loop-index normalization: two
  // digit-normalized anchors only merge when the model names them alike.
  const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
  const ctmodel::SpanDecl* span = model_->FindSpanForMethod(anchor);
  key += "|" + (span != nullptr ? span->name : CanonicalFrame(anchor));
  return key;
}

std::string EquivalenceAnalysis::PointClassKey(const ctrt::DynamicPoint& point) const {
  const ctmodel::AccessPointDecl& decl = model_->access_point(point.point_id);
  return DeclComponents(decl) + "|" + CanonicalizeStackKey(point.stack_key);
}

std::string EquivalenceAnalysis::DeclClassKey(const ctmodel::AccessPointDecl& point) const {
  return DeclComponents(point) + "|" +
         CanonicalFrame(ctmodel::ProgramModel::ContextMethodOf(point));
}

std::string EquivalenceAnalysis::PairClassKey(const ctrt::DynamicPoint& a,
                                              const ctrt::DynamicPoint& b) const {
  std::string ka = PointClassKey(a);
  std::string kb = PointClassKey(b);
  if (kb < ka) {
    std::swap(ka, kb);
  }
  return ka + "&&" + kb;
}

EquivalencePartition EquivalenceAnalysis::PartitionPoints(
    const std::set<ctrt::DynamicPoint>& points) const {
  std::map<std::string, std::vector<ctrt::DynamicPoint>> by_key;
  for (const ctrt::DynamicPoint& point : points) {
    // std::set iteration is ordered, so members arrive in dynamic-point order.
    by_key[PointClassKey(point)].push_back(point);
  }
  EquivalencePartition partition;
  partition.classes.reserve(by_key.size());
  for (auto& [key, members] : by_key) {
    partition.classes.push_back({key, std::move(members)});
  }
  return partition;
}

}  // namespace ctanalysis
