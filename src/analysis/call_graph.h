// Static call graph over a ProgramModel (the WALA substitute).
//
// The original CrashTuner builds a WALA call graph to bound Definition 1's
// call-string contexts and to know which static crash points the workload can
// reach at all. Our models declare the same structure explicitly: MethodDecls
// ("Class.method", matching the ScopedFrame strings the runtime pushes) and
// CallEdgeDecls. Construction resolves virtual dispatch against the model's
// subtype edges — an edge whose static target is T.m fans out to every
// declared override S.m with S <: T — and computes reachability from the
// declared entry points.
//
// Async edges (executor submits, timer schedules, failure-detector callbacks)
// are part of reachability but *not* of call strings: the callee runs on a
// fresh stack, so it starts a new context exactly as the runtime tracer
// observes it. Such methods, along with entry points, are the graph's
// "context roots" — the only methods a bounded call string may begin at.
#ifndef SRC_ANALYSIS_CALL_GRAPH_H_
#define SRC_ANALYSIS_CALL_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/model/program_model.h"

namespace ctanalysis {

// One dispatch-resolved call. kVirtual declarations appear here once per
// concrete target; kStatic/kAsync pass through unchanged.
struct ResolvedCall {
  std::string caller;
  std::string callee;
  ctmodel::CallKind kind = ctmodel::CallKind::kStatic;
};

class CallGraph {
 public:
  explicit CallGraph(const ctmodel::ProgramModel& model);

  const ctmodel::ProgramModel& model() const { return *model_; }

  // All post-dispatch edges.
  const std::vector<ResolvedCall>& edges() const { return edges_; }

  // Synchronous callers of `method_id` (async edges excluded — an async
  // callee never sees its scheduler on the stack).
  const std::vector<std::string>& SyncCallersOf(const std::string& method_id) const;

  // Reachability from entry points, over sync and async edges alike.
  bool IsReachable(const std::string& method_id) const;
  const std::set<std::string>& reachable() const { return reachable_; }

  // True if a runtime call string can begin at `method_id`: a declared entry
  // point or the target of an async edge.
  bool IsContextRoot(const std::string& method_id) const;

  // A feasible root is a context root some workload can actually give birth
  // to a stack at: entry points are feasible by definition, async callees
  // only if their scheduling site is itself reachable. Complete call strings
  // (fewer frames than the depth bound) are realizable iff their outermost
  // frame is a feasible root.
  bool IsFeasibleRoot(const std::string& method_id) const;
  const std::set<std::string>& feasible_roots() const { return feasible_roots_; }

  // Forward closure of the feasible roots over sync edges only. A method in
  // this set can sit at the *bottom of a visible stack window*: either it is
  // a feasible root itself, or some realizable stack extends below it and the
  // tracer's depth cap truncated the frames underneath. Truncated call
  // strings (exactly `depth` frames) are realizable iff their outermost frame
  // is in this closure.
  bool IsSyncReachableFromFeasibleRoot(const std::string& method_id) const;

  int num_methods() const { return model_->NumMethods(); }
  int num_declared_edges() const { return model_->NumCallEdges(); }
  int num_resolved_edges() const { return static_cast<int>(edges_.size()); }
  // Extra concrete targets minted by virtual-dispatch resolution.
  int num_dispatch_expansions() const { return dispatch_expansions_; }

 private:
  const ctmodel::ProgramModel* model_;
  std::vector<ResolvedCall> edges_;
  std::map<std::string, std::vector<std::string>> sync_callers_;
  std::set<std::string> reachable_;
  std::set<std::string> context_roots_;
  std::set<std::string> feasible_roots_;
  std::set<std::string> sync_closure_of_feasible_roots_;
  int dispatch_expansions_ = 0;
};

}  // namespace ctanalysis

#endif  // SRC_ANALYSIS_CALL_GRAPH_H_
