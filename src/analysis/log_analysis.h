// Offline log analysis (§3.1.1, §3.3; Fig. 5).
//
// Mines the runtime logs of a profiling run to discover meta-info variables:
//   1. every instance is matched against the program's log patterns using a
//      reverse-index scoring scheme (top-10 candidates, exact parse confirms;
//      the approach of Xu et al. the paper adopts), recovering the runtime
//      values of the logged variables;
//   2. values shaped "host:port" for a configured host are node-referencing;
//   3. values co-occurring with a node-associated value in one instance
//      become associated with that node;
//   4. the static types (and originating fields) of the associated logged
//      expressions become the meta-info seeds handed to the type inference.
//
// The matcher deliberately ignores the statement id our structured log store
// carries — it re-derives it from text, as the original must; the id serves
// as ground truth in tests.
#ifndef SRC_ANALYSIS_LOG_ANALYSIS_H_
#define SRC_ANALYSIS_LOG_ANALYSIS_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/logging/log_store.h"
#include "src/logging/stash.h"
#include "src/model/program_model.h"

namespace ctanalysis {

// Reverse-index pattern matcher over the registered logging statements.
class PatternMatcher {
 public:
  // Builds the index over every statement currently registered.
  PatternMatcher();

  struct Match {
    int statement_id = -1;
    std::vector<std::string> values;  // recovered placeholder values
  };

  // Matches one log line; nullopt when no pattern parses it exactly.
  std::optional<Match> MatchInstance(const std::string& text) const;

  static constexpr int kTopCandidates = 10;

 private:
  std::vector<int> TopCandidates(const std::string& text) const;

  std::map<std::string, std::vector<int>> token_index_;  // token → statement ids
  std::vector<int> literal_length_;                      // statement id → literal chars
};

// The runtime meta-info view of Fig. 5(d): values as vertices, co-occurrence
// edges, and the node each value resolved to.
struct MetaInfoGraph {
  std::set<std::string> node_values;
  std::map<std::string, std::string> value_to_node;
  std::vector<std::pair<std::string, std::string>> edges;
};

struct LogAnalysisResult {
  // Types of logged meta-info variables (the *-annotated rows of Table 2).
  std::set<std::string> seed_types;
  // Base-typed fields identified as meta-info directly from logs.
  std::set<std::string> seed_fields;
  // Statement → placeholder indices carrying meta-info values: this is the
  // filter the online log analysis ships to the Logstash agents (§3.3).
  std::map<int, std::vector<int>> metainfo_args;
  MetaInfoGraph graph;
  // Matching statistics.
  int instances_total = 0;
  int instances_matched = 0;
  int instances_mismatched = 0;  // matched a wrong pattern (ground-truth check)
};

// Renders the meta-info graph as Graphviz DOT (Fig. 1 / Fig. 5d): node
// values as boxes, associated values as ovals pointing at their node.
std::string MetaInfoGraphToDot(const MetaInfoGraph& graph);

class LogAnalysis {
 public:
  // `hosts` is the cluster configuration's host list.
  LogAnalysis(const ctmodel::ProgramModel* model, std::vector<std::string> hosts);

  LogAnalysisResult Analyze(const std::vector<ctlog::Instance>& instances) const;

  // Builds the online filter for the testing phase from an analysis result.
  ctlog::OnlineFilter MakeOnlineFilter(const LogAnalysisResult& result) const;

 private:
  const ctmodel::ProgramModel* model_;
  std::set<std::string> hosts_;
  PatternMatcher matcher_;
  std::map<int, const ctmodel::LogBinding*> bindings_;
};

}  // namespace ctanalysis

#endif  // SRC_ANALYSIS_LOG_ANALYSIS_H_
