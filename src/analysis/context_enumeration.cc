#include "src/analysis/context_enumeration.h"

#include <functional>

namespace ctanalysis {

int StaticContextResult::TotalContexts() const {
  int total = 0;
  for (const auto& [point_id, contexts] : contexts_by_point) {
    total += static_cast<int>(contexts.size());
  }
  return total;
}

bool StaticContextResult::Contains(int point_id, const std::string& stack_key) const {
  auto it = contexts_by_point.find(point_id);
  return it != contexts_by_point.end() && it->second.count(stack_key) > 0;
}

std::set<std::string> ContextEnumeration::EnumerateMethod(const std::string& method_id,
                                                          int depth) const {
  std::set<std::string> keys;
  if (depth <= 0 || graph_->model().FindMethod(method_id) == nullptr) {
    return keys;
  }
  // Backward DFS over sync call edges. A string shorter than `depth` is a
  // complete stack and must end (outermost) at a context root; a string of
  // exactly `depth` frames may also be a truncation of a deeper stack, so it
  // is admitted regardless of where it stops. Cycles are naturally bounded by
  // the depth cap.
  std::vector<std::string> path{method_id};
  std::string key = method_id;
  std::function<void()> extend = [&] {
    if (graph_->IsContextRoot(path.back()) ||
        static_cast<int>(path.size()) == depth) {
      keys.insert(key);
    }
    if (static_cast<int>(path.size()) == depth) {
      return;
    }
    for (const std::string& caller : graph_->SyncCallersOf(path.back())) {
      path.push_back(caller);
      std::string saved = key;
      key += "<" + caller;
      extend();
      key = std::move(saved);
      path.pop_back();
    }
  };
  extend();
  return keys;
}

StaticContextResult ContextEnumeration::EnumerateAll(int depth) const {
  StaticContextResult result;
  result.depth = depth;
  const ctmodel::ProgramModel& model = graph_->model();
  // Anchors repeat across points (several points in one method), so memoize.
  std::map<std::string, std::set<std::string>> by_anchor;
  for (const auto& point : model.access_points()) {
    const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
    if (!graph_->IsReachable(anchor)) {
      result.unreachable_points.insert(point.id);
      continue;
    }
    auto it = by_anchor.find(anchor);
    if (it == by_anchor.end()) {
      it = by_anchor.emplace(anchor, EnumerateMethod(anchor, depth)).first;
    }
    if (!it->second.empty()) {
      result.contexts_by_point[point.id] = it->second;
    }
  }
  return result;
}

double ContextCrossCheck::Recall() const {
  return observed == 0 ? 1.0 : static_cast<double>(matched) / observed;
}

double ContextCrossCheck::Precision() const {
  return enumerated == 0 ? 1.0 : static_cast<double>(matched) / enumerated;
}

}  // namespace ctanalysis
