#include "src/analysis/context_enumeration.h"

#include <functional>

namespace ctanalysis {

int StaticContextResult::TotalContexts() const {
  int total = 0;
  for (const auto& [point_id, contexts] : contexts_by_point) {
    total += static_cast<int>(contexts.size());
  }
  return total;
}

bool StaticContextResult::Contains(int point_id, const std::string& stack_key) const {
  auto it = contexts_by_point.find(point_id);
  return it != contexts_by_point.end() && it->second.count(stack_key) > 0;
}

std::set<std::string> ContextEnumeration::EnumerateMethod(const std::string& method_id,
                                                          int depth,
                                                          bool prune_infeasible) const {
  std::set<std::string> keys;
  if (depth <= 0 || graph_->model().FindMethod(method_id) == nullptr) {
    return keys;
  }
  // Backward DFS over sync call edges. A string shorter than `depth` is a
  // complete stack and must end (outermost) at a context root; a string of
  // exactly `depth` frames may also be a truncation of a deeper stack, so it
  // is admitted regardless of where it stops. Cycles are naturally bounded by
  // the depth cap. With pruning the same admission happens against the
  // feasibility predicate instead (kept string-for-string equivalent to
  // filtering the unpruned set through IsFeasibleKey).
  std::vector<std::string> path{method_id};
  std::string key = method_id;
  std::function<void()> extend = [&] {
    const bool at_depth = static_cast<int>(path.size()) == depth;
    const bool admit =
        prune_infeasible
            ? (at_depth ? graph_->IsSyncReachableFromFeasibleRoot(path.back())
                        : graph_->IsFeasibleRoot(path.back()))
            : (graph_->IsContextRoot(path.back()) || at_depth);
    if (admit) {
      keys.insert(key);
    }
    if (at_depth) {
      return;
    }
    for (const std::string& caller : graph_->SyncCallersOf(path.back())) {
      path.push_back(caller);
      std::string saved = key;
      key += "<" + caller;
      extend();
      key = std::move(saved);
      path.pop_back();
    }
  };
  extend();
  return keys;
}

bool ContextEnumeration::IsFeasibleKey(const std::string& stack_key, int depth) const {
  if (stack_key.empty() || depth <= 0) {
    return false;
  }
  int frames = 1;
  std::string::size_type pos = 0;
  std::string::size_type last = 0;
  while ((pos = stack_key.find('<', pos)) != std::string::npos) {
    ++frames;
    ++pos;
    last = pos;
  }
  if (frames > depth) {
    return false;
  }
  const std::string outermost = stack_key.substr(last);
  return frames == depth ? graph_->IsSyncReachableFromFeasibleRoot(outermost)
                         : graph_->IsFeasibleRoot(outermost);
}

StaticContextResult ContextEnumeration::EnumerateAll(int depth, bool prune_infeasible) const {
  StaticContextResult result;
  result.depth = depth;
  const ctmodel::ProgramModel& model = graph_->model();
  // Anchors repeat across points (several points in one method), so memoize.
  // With pruning we also keep the unpruned size per anchor to account, per
  // point, for how many strings feasibility removed.
  std::map<std::string, std::pair<std::set<std::string>, int>> by_anchor;
  for (const auto& point : model.access_points()) {
    const std::string anchor = ctmodel::ProgramModel::ContextMethodOf(point);
    if (!graph_->IsReachable(anchor)) {
      result.unreachable_points.insert(point.id);
      continue;
    }
    auto it = by_anchor.find(anchor);
    if (it == by_anchor.end()) {
      std::set<std::string> keys = EnumerateMethod(anchor, depth, prune_infeasible);
      int unpruned = prune_infeasible
                         ? static_cast<int>(EnumerateMethod(anchor, depth, false).size())
                         : static_cast<int>(keys.size());
      it = by_anchor.emplace(anchor, std::make_pair(std::move(keys), unpruned)).first;
    }
    const auto& [keys, unpruned] = it->second;
    result.pruned_call_strings += unpruned - static_cast<int>(keys.size());
    if (!keys.empty()) {
      result.contexts_by_point[point.id] = keys;
    } else if (prune_infeasible && unpruned > 0) {
      result.infeasible_points.insert(point.id);
    }
  }
  return result;
}

double ContextCrossCheck::Recall() const {
  return observed == 0 ? 1.0 : static_cast<double>(matched) / observed;
}

double ContextCrossCheck::Precision() const {
  return enumerated == 0 ? 1.0 : static_cast<double>(matched) / enumerated;
}

}  // namespace ctanalysis
