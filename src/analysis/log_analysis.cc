#include "src/analysis/log_analysis.h"

#include <algorithm>

#include "src/common/strings.h"

namespace ctanalysis {

namespace {

// Tokenizes literal text for the reverse index: whitespace-separated words of
// length >= 3 (short tokens like "to" appear in almost every pattern and only
// add noise to the scores).
std::vector<std::string> Tokens(const std::string& text) {
  std::vector<std::string> out;
  for (const auto& word : ctcommon::SplitSkipEmpty(text, ' ')) {
    if (word.size() >= 3 && word != "{}") {
      out.push_back(word);
    }
  }
  return out;
}

bool IsNodeShapedValue(const std::set<std::string>& hosts, const std::string& value) {
  if (hosts.count(value) > 0) {
    return true;
  }
  size_t colon = value.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  std::string host = value.substr(0, colon);
  std::string port = value.substr(colon + 1);
  if (port.empty() || hosts.count(host) == 0) {
    return false;
  }
  return std::all_of(port.begin(), port.end(), [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

PatternMatcher::PatternMatcher() {
  const auto& statements = ctlog::StatementRegistry::Instance().statements();
  literal_length_.resize(statements.size(), 0);
  for (const auto& stmt : statements) {
    int literal = 0;
    for (const auto& fragment : ctcommon::TemplateFragments(stmt.tmpl)) {
      literal += static_cast<int>(fragment.size());
      for (const auto& token : Tokens(fragment)) {
        token_index_[token].push_back(stmt.id);
      }
    }
    literal_length_[stmt.id] = literal;
  }
}

std::vector<int> PatternMatcher::TopCandidates(const std::string& text) const {
  std::map<int, int> scores;
  for (const auto& token : Tokens(text)) {
    auto it = token_index_.find(token);
    if (it == token_index_.end()) {
      continue;
    }
    for (int id : it->second) {
      ++scores[id];
    }
  }
  std::vector<std::pair<int, int>> ranked(scores.begin(), scores.end());
  // Higher score first; ties broken toward the more specific (more literal
  // characters) pattern so a catch-all "{}" template cannot shadow an exact
  // one.
  std::sort(ranked.begin(), ranked.end(), [this](const auto& a, const auto& b) {
    if (a.second != b.second) {
      return a.second > b.second;
    }
    return literal_length_[a.first] > literal_length_[b.first];
  });
  std::vector<int> out;
  for (const auto& [id, score] : ranked) {
    out.push_back(id);
    if (static_cast<int>(out.size()) >= kTopCandidates) {
      break;
    }
  }
  return out;
}

std::optional<PatternMatcher::Match> PatternMatcher::MatchInstance(const std::string& text) const {
  std::vector<std::string> values;
  for (int id : TopCandidates(text)) {
    const auto& stmt = ctlog::StatementRegistry::Instance().Get(id);
    if (ctcommon::MatchTemplate(stmt.tmpl, text, &values)) {
      Match match;
      match.statement_id = id;
      match.values = values;
      return match;
    }
  }
  return std::nullopt;
}

std::string MetaInfoGraphToDot(const MetaInfoGraph& graph) {
  std::string out = "digraph metainfo {\n  rankdir=LR;\n";
  for (const auto& node : graph.node_values) {
    out += "  \"" + node + "\" [shape=box,style=bold];\n";
  }
  for (const auto& [value, node] : graph.value_to_node) {
    out += "  \"" + value + "\" -> \"" + node + "\";\n";
  }
  out += "}\n";
  return out;
}

LogAnalysis::LogAnalysis(const ctmodel::ProgramModel* model, std::vector<std::string> hosts)
    : model_(model) {
  hosts_.insert(hosts.begin(), hosts.end());
  for (const auto& binding : model_->log_bindings()) {
    bindings_[binding.statement_id] = &binding;
  }
}

LogAnalysisResult LogAnalysis::Analyze(const std::vector<ctlog::Instance>& instances) const {
  LogAnalysisResult result;
  result.instances_total = static_cast<int>(instances.size());

  struct Parsed {
    int statement_id;
    std::vector<std::string> values;
  };
  std::vector<Parsed> parsed;
  for (const auto& instance : instances) {
    auto match = matcher_.MatchInstance(instance.text);
    if (!match.has_value()) {
      continue;
    }
    ++result.instances_matched;
    if (match->statement_id != instance.statement_id) {
      ++result.instances_mismatched;
    }
    parsed.push_back(Parsed{match->statement_id, std::move(match->values)});
  }

  // Association fixpoint: node values seed the map; any value co-occurring
  // with an associated value becomes associated. Instances are revisited
  // because an early line can mention a value whose node link only appears in
  // a later line (the offline pass, unlike the FIFO stash, can afford this).
  auto& graph = result.graph;
  for (const auto& p : parsed) {
    for (const auto& value : p.values) {
      if (IsNodeShapedValue(hosts_, value)) {
        graph.node_values.insert(value);
      }
    }
    for (size_t i = 0; i + 1 < p.values.size(); ++i) {
      for (size_t j = i + 1; j < p.values.size(); ++j) {
        graph.edges.emplace_back(p.values[i], p.values[j]);
      }
    }
  }
  auto lookup_node = [&](const std::string& value) -> std::optional<std::string> {
    if (graph.node_values.count(value) > 0) {
      return value;
    }
    auto it = graph.value_to_node.find(value);
    if (it != graph.value_to_node.end()) {
      return it->second;
    }
    return std::nullopt;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& p : parsed) {
      std::optional<std::string> anchor;
      for (const auto& value : p.values) {
        anchor = lookup_node(value);
        if (anchor.has_value()) {
          break;
        }
      }
      if (!anchor.has_value()) {
        continue;
      }
      for (const auto& value : p.values) {
        if (value.empty() || graph.node_values.count(value) > 0) {
          continue;
        }
        auto [it, inserted] = graph.value_to_node.emplace(value, *anchor);
        changed = changed || inserted;
      }
    }
  }

  // Classify statement arguments: an argument index is meta-info if any of
  // its observed runtime values is node-associated.
  std::map<int, std::set<int>> metainfo_arg_sets;
  for (const auto& p : parsed) {
    for (size_t i = 0; i < p.values.size(); ++i) {
      if (lookup_node(p.values[i]).has_value()) {
        metainfo_arg_sets[p.statement_id].insert(static_cast<int>(i));
      }
    }
  }
  for (const auto& [stmt, indices] : metainfo_arg_sets) {
    result.metainfo_args[stmt] = std::vector<int>(indices.begin(), indices.end());
  }

  // Lift to static types / fields using the model's log bindings.
  for (const auto& [stmt, indices] : metainfo_arg_sets) {
    auto it = bindings_.find(stmt);
    if (it == bindings_.end()) {
      continue;  // Ad-hoc statement without a modelled binding.
    }
    const ctmodel::LogBinding& binding = *it->second;
    for (int index : indices) {
      if (index >= static_cast<int>(binding.args.size())) {
        continue;
      }
      const ctmodel::LogArg& arg = binding.args[index];
      const ctmodel::TypeDecl* type = model_->FindType(arg.type);
      if (type != nullptr && type->is_base) {
        // Base types are not generalized (§3.1.2); the specific field is the
        // meta-info seed instead.
        if (!arg.field_id.empty()) {
          result.seed_fields.insert(arg.field_id);
        }
      } else if (!arg.type.empty()) {
        result.seed_types.insert(arg.type);
      }
    }
  }
  return result;
}

ctlog::OnlineFilter LogAnalysis::MakeOnlineFilter(const LogAnalysisResult& result) const {
  ctlog::OnlineFilter filter;
  filter.hosts = hosts_;
  filter.metainfo_args = result.metainfo_args;
  return filter;
}

}  // namespace ctanalysis
