// Per-run runtime state.
//
// The tracer used to be a process-wide singleton that every run Reset() by
// convention — which serialized the whole Phase-2 injection campaign and let a
// forgotten reset leak an armed trigger into the next run. A RunContext owns
// the mutable runtime state of exactly one WorkloadRun (today: its
// AccessTracer); the run owns the context, so trigger state cannot outlive the
// run it was armed for.
//
// Hooks in mini-system code still call AccessTracer::Instance() (through the
// CT_* macros), which now resolves to the context bound to the calling thread.
// Executor::Execute binds the run's context for the duration of the run, so a
// worker thread executing run A and a worker executing run B each see their
// own tracer. Threads with no bound context fall back to a per-thread default
// context (mode kOff), which keeps direct tracer use in tests and tools
// working unchanged.
#ifndef SRC_RUNTIME_RUN_CONTEXT_H_
#define SRC_RUNTIME_RUN_CONTEXT_H_

#include "src/obs/observer.h"
#include "src/runtime/tracer.h"

namespace ctrt {

class RunContext {
 public:
  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  AccessTracer& tracer() { return tracer_; }
  const AccessTracer& tracer() const { return tracer_; }

  // Per-run observation state (metrics shard + span recorder); disabled by
  // default so unobserved runs pay nothing. Lives here for the same reason
  // the tracer does: it must not outlive or leak across runs.
  ctobs::RunObserver& observer() { return observer_; }
  const ctobs::RunObserver& observer() const { return observer_; }

  // The context bound to the calling thread, or the thread's default context
  // if none is bound. Never null.
  static RunContext& Current();

 private:
  AccessTracer tracer_;
  ctobs::RunObserver observer_;
};

// RAII binder: makes `context` the calling thread's current context for the
// enclosing scope, restoring the previous binding on exit. Executor::Execute
// is the canonical user; SystemUnderTest::NewRun binds during construction so
// hooks fired while the deployment is being built land in the run's tracer.
class ScopedRunContext {
 public:
  explicit ScopedRunContext(RunContext& context);
  ~ScopedRunContext();
  ScopedRunContext(const ScopedRunContext&) = delete;
  ScopedRunContext& operator=(const ScopedRunContext&) = delete;

 private:
  RunContext* previous_;
};

}  // namespace ctrt

#endif  // SRC_RUNTIME_RUN_CONTEXT_H_
