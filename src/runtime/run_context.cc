#include "src/runtime/run_context.h"

namespace ctrt {

namespace {

thread_local RunContext* g_current_context = nullptr;

}  // namespace

RunContext& RunContext::Current() {
  if (g_current_context != nullptr) {
    return *g_current_context;
  }
  // Per-thread fallback for code running outside any run (tests, benches,
  // offline analyses). Distinct per thread so unbound threads never share
  // mutable tracer state.
  static thread_local RunContext default_context;
  return default_context;
}

ScopedRunContext::ScopedRunContext(RunContext& context) : previous_(g_current_context) {
  g_current_context = &context;
}

ScopedRunContext::~ScopedRunContext() { g_current_context = previous_; }

}  // namespace ctrt
