// Runtime instrumentation: the Javassist substitute.
//
// Mini-system code paths are compiled with explicit hooks at every modelled
// access point (CT_PRE_READ before a meta-info-candidate read, CT_POST_WRITE
// after a write, CT_IO_BEGIN/END around IO calls) plus ScopedFrame markers
// that maintain the bounded call stack of Definition 1. The AccessTracer
// routes hook firings to whichever phase is active:
//   kOff      — hooks are no-ops (plain workload runs, baselines' timing runs)
//   kProfile  — records ⟨static point, call stack⟩ dynamic points (§3.1.3)
//   kTrigger  — fires the installed callback the first time one armed dynamic
//               point is hit (§3.2.2); the callback performs the crash or
//               shutdown and may abort the current handler by throwing
//               ctsim::NodeCrashedSignal.
//
// The hooks are free calls in system code (like the injected RPCs in the
// paper), so Instance() routes them to the AccessTracer of the RunContext
// bound to the calling thread (see run_context.h). Each WorkloadRun owns its
// own tracer, which is what lets the injection campaign run one simulation per
// worker thread without the runs stepping on each other's trigger state.
#ifndef SRC_RUNTIME_TRACER_H_
#define SRC_RUNTIME_TRACER_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/model/program_model.h"

namespace ctrt {

// Bounded call stack: frame strings from the innermost method outward, depth
// capped at kMaxDepth (the paper bounds call strings to 5; §3.1.3).
struct CallStack {
  static constexpr int kMaxDepth = 5;
  std::vector<std::string> frames;

  // Canonical key "inner<outer<..." used to identify dynamic points.
  std::string Key() const;
};

// A dynamic program point: ⟨static point id, calling context⟩ (Definition 1).
struct DynamicPoint {
  int point_id = -1;
  std::string stack_key;

  bool operator<(const DynamicPoint& other) const {
    if (point_id != other.point_id) {
      return point_id < other.point_id;
    }
    return stack_key < other.stack_key;
  }
  bool operator==(const DynamicPoint& other) const {
    return point_id == other.point_id && stack_key == other.stack_key;
  }
};

// Everything a trigger callback needs about the hook that fired.
struct AccessEvent {
  int point_id = -1;
  ctmodel::AccessKind kind = ctmodel::AccessKind::kRead;
  std::string value;  // runtime meta-info value being accessed
  std::string stack_key;
};

enum class TraceMode { kOff, kProfile, kTrigger };

class AccessTracer {
 public:
  AccessTracer();
  AccessTracer(const AccessTracer&) = delete;
  AccessTracer& operator=(const AccessTracer&) = delete;

  // The tracer of the calling thread's current RunContext (a per-thread
  // default context when no run is bound). Hook macros go through this.
  static AccessTracer& Instance();

  // Clears all per-run state and switches mode.
  void Reset(TraceMode mode);
  TraceMode mode() const { return mode_; }

  // --- Profile phase -------------------------------------------------------
  // Restricts recording to the given static crash points (output of the
  // static analysis); hits elsewhere are ignored, mirroring the fact that the
  // paper only instruments static crash points.
  void SetProfiledPoints(std::set<int> access_points, std::set<int> io_points);
  const std::map<DynamicPoint, int>& dynamic_access_points() const { return dynamic_access_; }
  const std::map<DynamicPoint, int>& dynamic_io_points() const { return dynamic_io_; }

  // --- Trigger phase -------------------------------------------------------
  using TriggerFn = std::function<void(const AccessEvent&)>;
  // Arms one dynamic access point. The callback runs at the first hit only.
  void ArmAccessTrigger(DynamicPoint point, TriggerFn fn);
  // Re-arms a new point after a trigger fired — the multi-crash extension
  // chains a second injection onto the same run. Safe to call from inside a
  // trigger callback.
  void RearmAccessTrigger(DynamicPoint point, TriggerFn fn);
  // Arms one dynamic IO point; `before` selects the begin or end hook.
  void ArmIoTrigger(DynamicPoint point, bool before, TriggerFn fn);
  bool trigger_fired() const { return trigger_fired_; }
  const std::optional<AccessEvent>& fired_event() const { return fired_event_; }

  // --- Hooks (called from instrumented system code) -------------------------
  void PreRead(int point_id, const std::string& value);
  void PostWrite(int point_id, const std::string& value);
  void IoBegin(int point_id);
  void IoEnd(int point_id);

  // --- Call-stack maintenance ----------------------------------------------
  void PushFrame(const char* frame);
  void PopFrame();
  CallStack CaptureStack() const;
  // Override for the depth ablation. Deliberately survives Reset() so a
  // whole driver run (which resets per phase) can be measured at one depth;
  // callers restore kMaxDepth afterwards.
  void set_stack_depth(int depth) { stack_depth_ = depth; }
  int stack_depth() const { return stack_depth_; }

  // Process-wide default depth newly constructed tracers start from. The depth
  // ablation sets this before a driver run so every per-run tracer the run
  // creates inherits the swept bound; callers restore kMaxDepth afterwards.
  static void SetDefaultStackDepth(int depth);
  static int DefaultStackDepth();

  // Counters.
  uint64_t hook_firings() const { return hook_firings_; }

 private:
  void OnAccess(int point_id, ctmodel::AccessKind kind, const std::string& value);
  void OnIo(int point_id, bool before);

  TraceMode mode_ = TraceMode::kOff;
  std::vector<std::string> stack_;
  std::set<int> profiled_access_points_;
  std::set<int> profiled_io_points_;
  std::map<DynamicPoint, int> dynamic_access_;
  std::map<DynamicPoint, int> dynamic_io_;

  std::optional<DynamicPoint> armed_access_;
  std::optional<DynamicPoint> armed_io_;
  bool armed_io_before_ = true;
  TriggerFn trigger_fn_;
  bool trigger_fired_ = false;
  std::optional<AccessEvent> fired_event_;
  uint64_t hook_firings_ = 0;
  int stack_depth_;
};

// RAII frame marker used at method entry in mini-system code. The tracer is
// resolved once at construction and cached so push and pop always hit the
// same tracer even if the thread's context binding changes mid-scope.
class ScopedFrame {
 public:
  explicit ScopedFrame(const char* frame) : tracer_(&AccessTracer::Instance()) {
    tracer_->PushFrame(frame);
  }
  ~ScopedFrame() { tracer_->PopFrame(); }
  ScopedFrame(const ScopedFrame&) = delete;
  ScopedFrame& operator=(const ScopedFrame&) = delete;

 private:
  AccessTracer* tracer_;
};

}  // namespace ctrt

// Hook macros keep call sites terse and greppable in the mini systems.
#define CT_FRAME(name) ctrt::ScopedFrame ct_scoped_frame_(name)
#define CT_PRE_READ(point, value) ctrt::AccessTracer::Instance().PreRead((point), (value))
#define CT_POST_WRITE(point, value) ctrt::AccessTracer::Instance().PostWrite((point), (value))
#define CT_IO_BEGIN(point) ctrt::AccessTracer::Instance().IoBegin(point)
#define CT_IO_END(point) ctrt::AccessTracer::Instance().IoEnd(point)

#endif  // SRC_RUNTIME_TRACER_H_
