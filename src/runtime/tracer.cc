#include "src/runtime/tracer.h"

#include <atomic>

#include "src/common/check.h"
#include "src/runtime/run_context.h"

namespace ctrt {

namespace {

std::atomic<int> g_default_stack_depth{CallStack::kMaxDepth};

}  // namespace

std::string CallStack::Key() const {
  std::string key;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) {
      key += "<";
    }
    key += frames[i];
  }
  return key;
}

AccessTracer::AccessTracer() : stack_depth_(DefaultStackDepth()) {}

AccessTracer& AccessTracer::Instance() { return RunContext::Current().tracer(); }

void AccessTracer::SetDefaultStackDepth(int depth) {
  g_default_stack_depth.store(depth, std::memory_order_relaxed);
}

int AccessTracer::DefaultStackDepth() {
  return g_default_stack_depth.load(std::memory_order_relaxed);
}

void AccessTracer::Reset(TraceMode mode) {
  mode_ = mode;
  stack_.clear();
  profiled_access_points_.clear();
  profiled_io_points_.clear();
  dynamic_access_.clear();
  dynamic_io_.clear();
  armed_access_.reset();
  armed_io_.reset();
  armed_io_before_ = true;
  trigger_fn_ = nullptr;
  trigger_fired_ = false;
  fired_event_.reset();
  hook_firings_ = 0;
}

void AccessTracer::SetProfiledPoints(std::set<int> access_points, std::set<int> io_points) {
  profiled_access_points_ = std::move(access_points);
  profiled_io_points_ = std::move(io_points);
}

void AccessTracer::ArmAccessTrigger(DynamicPoint point, TriggerFn fn) {
  CT_CHECK(mode_ == TraceMode::kTrigger);
  armed_access_ = std::move(point);
  trigger_fn_ = std::move(fn);
}

void AccessTracer::RearmAccessTrigger(DynamicPoint point, TriggerFn fn) {
  CT_CHECK(mode_ == TraceMode::kTrigger);
  armed_access_ = std::move(point);
  trigger_fn_ = std::move(fn);
  trigger_fired_ = false;
}

void AccessTracer::ArmIoTrigger(DynamicPoint point, bool before, TriggerFn fn) {
  CT_CHECK(mode_ == TraceMode::kTrigger);
  armed_io_ = std::move(point);
  armed_io_before_ = before;
  trigger_fn_ = std::move(fn);
}

void AccessTracer::PreRead(int point_id, const std::string& value) {
  OnAccess(point_id, ctmodel::AccessKind::kRead, value);
}

void AccessTracer::PostWrite(int point_id, const std::string& value) {
  OnAccess(point_id, ctmodel::AccessKind::kWrite, value);
}

void AccessTracer::OnAccess(int point_id, ctmodel::AccessKind kind, const std::string& value) {
  if (mode_ == TraceMode::kOff) {
    return;
  }
  ++hook_firings_;
  std::string stack_key = CaptureStack().Key();
  if (mode_ == TraceMode::kProfile) {
    if (profiled_access_points_.count(point_id) > 0) {
      ++dynamic_access_[DynamicPoint{point_id, stack_key}];
    }
    return;
  }
  // Trigger mode: fire once at the armed dynamic point.
  if (trigger_fired_ || !armed_access_.has_value()) {
    return;
  }
  if (armed_access_->point_id != point_id || armed_access_->stack_key != stack_key) {
    return;
  }
  trigger_fired_ = true;
  AccessEvent event;
  event.point_id = point_id;
  event.kind = kind;
  event.value = value;
  event.stack_key = stack_key;
  fired_event_ = event;
  // Detach the callback before running it: it may Rearm (installing a new
  // callback) from inside, which must not clobber the executing closure.
  TriggerFn fn = std::move(trigger_fn_);
  trigger_fn_ = nullptr;
  if (fn) {
    fn(event);
  }
}

void AccessTracer::IoBegin(int point_id) { OnIo(point_id, /*before=*/true); }

void AccessTracer::IoEnd(int point_id) { OnIo(point_id, /*before=*/false); }

void AccessTracer::OnIo(int point_id, bool before) {
  if (mode_ == TraceMode::kOff) {
    return;
  }
  ++hook_firings_;
  std::string stack_key = CaptureStack().Key();
  if (mode_ == TraceMode::kProfile) {
    if (before && profiled_io_points_.count(point_id) > 0) {
      ++dynamic_io_[DynamicPoint{point_id, stack_key}];
    }
    return;
  }
  if (trigger_fired_ || !armed_io_.has_value() || armed_io_before_ != before) {
    return;
  }
  if (armed_io_->point_id != point_id || armed_io_->stack_key != stack_key) {
    return;
  }
  trigger_fired_ = true;
  AccessEvent event;
  event.point_id = point_id;
  event.kind = before ? ctmodel::AccessKind::kRead : ctmodel::AccessKind::kWrite;
  event.stack_key = stack_key;
  fired_event_ = event;
  TriggerFn fn = std::move(trigger_fn_);
  trigger_fn_ = nullptr;
  if (fn) {
    fn(event);
  }
}

void AccessTracer::PushFrame(const char* frame) { stack_.emplace_back(frame); }

void AccessTracer::PopFrame() {
  CT_CHECK(!stack_.empty());
  stack_.pop_back();
}

CallStack AccessTracer::CaptureStack() const {
  CallStack stack;
  // Innermost first, bounded (paper: "starting from the method of the crash
  // point to its callers", depth 5).
  int count = 0;
  for (auto it = stack_.rbegin(); it != stack_.rend() && count < stack_depth_; ++it, ++count) {
    stack.frames.push_back(*it);
  }
  return stack;
}

}  // namespace ctrt
