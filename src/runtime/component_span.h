// Component spans for mini-system node code.
//
// A ComponentSpan marks one sweep of a component hot path — a quorum
// broadcast round, a block-report handling, an RM node-list refresh — as a
// span nested under whatever phase span is open, tagged with the model role
// class doing the work. The observer comes off the thread-bound RunContext
// (the executor binds it for the duration of the run), so node code needs no
// plumbing and unobserved runs pay one thread-local read plus two branches.
//
// Usage, inside a node handler or timer body:
//   ctrt::ComponentSpan span(&loop(), "quorum-broadcast", "QuorumPeer");
#ifndef SRC_RUNTIME_COMPONENT_SPAN_H_
#define SRC_RUNTIME_COMPONENT_SPAN_H_

#include <string>

#include "src/obs/span.h"
#include "src/runtime/run_context.h"

namespace ctrt {

class ComponentSpan {
 public:
  ComponentSpan(const ctsim::EventLoop* loop, std::string name, std::string component)
      : span_(&RunContext::Current().observer(), loop, std::move(name), "component",
              std::move(component)) {}

  void AddArg(std::string key, std::string value) {
    span_.AddArg(std::move(key), std::move(value));
  }

 private:
  ctobs::ScopedSpan span_;
};

}  // namespace ctrt

#endif  // SRC_RUNTIME_COMPONENT_SPAN_H_
