#include "src/sim/node.h"

#include "src/common/check.h"
#include "src/sim/cluster.h"

namespace ctsim {

const char* NodeStateName(NodeState state) {
  switch (state) {
    case NodeState::kStopped:
      return "STOPPED";
    case NodeState::kRunning:
      return "RUNNING";
    case NodeState::kCrashed:
      return "CRASHED";
    case NodeState::kShutdown:
      return "SHUTDOWN";
  }
  return "?";
}

Node::Node(Cluster* cluster, std::string id) : cluster_(cluster), id_(std::move(id)) {
  sym_ = cluster_->Intern(id_);
  logger_ = std::make_unique<ctlog::Logger>(&cluster_->logs(), id_,
                                            [this] { return cluster_->loop().Now(); });
}

Node::~Node() = default;

std::string Node::host() const {
  size_t colon = id_.rfind(':');
  return colon == std::string::npos ? id_ : id_.substr(0, colon);
}

void Node::Start() {
  CT_CHECK(state_ == NodeState::kStopped);
  state_ = NodeState::kRunning;
  OnStart();
}

void Node::MarkCrashed() { state_ = NodeState::kCrashed; }

void Node::MarkShutdown() { state_ = NodeState::kShutdown; }

void Node::Dispatch(const Message& message) {
  if (!IsRunning()) {
    return;
  }
  auto it = handlers_.find(message.method.id());
  if (it == handlers_.end()) {
    log().Warn("No handler for RPC {}", {message.method}, "Node.dispatch");
    return;
  }
  RunGuarded(message.method, [&] { it->second(message); });
}

void Node::RunGuarded(const std::string& context, const std::function<void()>& fn) {
  // Timer and async events execute in this node's context; the trigger reads
  // cluster().current_node() to know which process a hook fired on.
  const NodeId previous = cluster_->current_node_;
  cluster_->current_node_ = sym_;
  struct Restore {
    Cluster* cluster;
    NodeId previous;
    ~Restore() { cluster->current_node_ = previous; }
  } restore{cluster_, previous};
  try {
    fn();
  } catch (const SimException& e) {
    log().Error("Uncommon exception {} : {}", {e.type, e.message}, "Node.dispatch");
    OnHandlerException(context, e);
  } catch (const NodeCrashedSignal&) {
    // The node died mid-handler (post-write crash injection); the remainder
    // of the handler is simply gone, like the rest of a killed JVM.
  }
}

void Node::Handle(const std::string& method, std::function<void(const Message&)> handler) {
  handlers_[cluster_->Intern(method).id()] = std::move(handler);
}

void Node::Send(const std::string& to, const std::string& method, KvList args) {
  Send(cluster_->Intern(to), method, std::move(args));
}

void Node::Send(NodeId to, const std::string& method, KvList args) {
  Message message;
  message.from = sym_;
  message.to = to;
  message.method = cluster_->Intern(method);
  for (auto& kv : args) {
    message.args.Set(cluster_->Intern(kv.first), std::move(kv.second));
  }
  message.sent_at = cluster_->loop().Now();
  cluster_->Post(std::move(message));
}

void Node::After(Time delay, std::function<void()> fn) {
  // A timer firing is a causal root: even when the loop drains it inside
  // another handler's nested RunFor, its sends must not inherit that
  // delivery's flow.
  cluster_->loop().Schedule(
      cluster_->SkewedDelay(id_, delay),
      [this, fn = std::move(fn)] {
        Cluster::FlowRootScope flow_root(cluster_);
        RunGuarded("timer", fn);
      },
      sym_);
}

void Node::Every(Time period, std::function<void()> fn) {
  auto shared = std::make_shared<std::function<void()>>(std::move(fn));
  // The repeating event re-arms itself; owner tagging stops it at death.
  // Each re-arm re-applies the fault plan's clock skew, so a slow node's
  // period drifts cumulatively, round after round.
  std::function<void()> tick = [this, period, shared]() {
    Cluster::FlowRootScope flow_root(cluster_);
    RunGuarded("timer", *shared);
    if (IsRunning()) {
      Every(period, *shared);
    }
  };
  cluster_->loop().Schedule(cluster_->SkewedDelay(id_, period), std::move(tick), sym_);
}

void Node::OnHandlerException(const std::string& context, const SimException& e) {
  Abort(e.type + " in " + context + ": " + e.message);
}

void Node::Abort(const std::string& reason) {
  if (aborted_) {
    return;
  }
  aborted_ = true;
  log().Fatal("Aborting node {} : {}", {id_, reason}, "Node.abort");
  state_ = NodeState::kCrashed;
  if (critical_) {
    cluster_->MarkClusterDown(id_ + " aborted: " + reason);
  }
}

}  // namespace ctsim
