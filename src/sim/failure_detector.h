// Heartbeat-based failure detection (the liveMonitor of Fig. 2).
//
// Masters in the mini systems run one of these: worker nodes report
// heartbeats; a periodic sweep declares any node silent for longer than the
// timeout LOST and fires the owner's recovery callback. Graceful shutdowns
// bypass the timeout by calling NotifyLeft directly from the worker's
// unregister RPC — the same effect as the paper's use of shutdown scripts to
// "let the node leave the cluster pro-actively, without waiting".
#ifndef SRC_SIM_FAILURE_DETECTOR_H_
#define SRC_SIM_FAILURE_DETECTOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/node.h"

namespace ctsim {

class FailureDetector {
 public:
  // `owner` is the master node hosting the monitor; `on_lost` runs in the
  // owner's context when a tracked node is declared dead.
  FailureDetector(Node* owner, Time timeout_ms, Time check_period_ms,
                  std::function<void(const std::string&)> on_lost)
      : owner_(owner),
        timeout_ms_(timeout_ms),
        check_period_ms_(check_period_ms),
        on_lost_(std::move(on_lost)) {}

  // Begins the periodic sweep.
  void Start();

  // Registers or refreshes a tracked node.
  void Heartbeat(const std::string& node_id);

  // Stops tracking without firing on_lost (node deregistered cleanly and the
  // caller already ran its leave path).
  void Forget(const std::string& node_id);

  // Graceful-leave fast path: fires on_lost immediately.
  void NotifyLeft(const std::string& node_id);

  bool IsTracked(const std::string& node_id) const;
  std::vector<std::string> tracked() const;
  int lost_count() const { return lost_count_; }

 private:
  void Sweep();

  Node* owner_;
  Time timeout_ms_;
  Time check_period_ms_;
  std::function<void(const std::string&)> on_lost_;
  std::map<std::string, Time> last_heartbeat_;
  int lost_count_ = 0;
};

}  // namespace ctsim

#endif  // SRC_SIM_FAILURE_DETECTOR_H_
