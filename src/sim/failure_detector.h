// Heartbeat-based failure detection (the liveMonitor of Fig. 2).
//
// Masters in the mini systems run one of these: worker nodes report
// heartbeats; a periodic sweep declares any node silent for longer than the
// timeout LOST and fires the owner's recovery callback. Graceful shutdowns
// bypass the timeout by calling NotifyLeft directly from the worker's
// unregister RPC — the same effect as the paper's use of shutdown scripts to
// "let the node leave the cluster pro-actively, without waiting".
//
// Peers are tracked by interned NodeId (integer map operations on the
// heartbeat hot path); everywhere ordering is observable — the sweep's
// on_lost firing order, tracked() — ids are sorted by their string form,
// matching the std::map<std::string, ...> this replaced byte for byte.
#ifndef SRC_SIM_FAILURE_DETECTOR_H_
#define SRC_SIM_FAILURE_DETECTOR_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/node.h"
#include "src/sim/symbol.h"

namespace ctsim {

class FailureDetector {
 public:
  // `owner` is the master node hosting the monitor; `on_lost` runs in the
  // owner's context when a tracked node is declared dead.
  FailureDetector(Node* owner, Time timeout_ms, Time check_period_ms,
                  std::function<void(const std::string&)> on_lost)
      : owner_(owner),
        timeout_ms_(timeout_ms),
        check_period_ms_(check_period_ms),
        on_lost_(std::move(on_lost)) {}

  // Begins the periodic sweep.
  void Start();

  // Registers or refreshes a tracked node.
  void Heartbeat(NodeId node_id);
  void Heartbeat(const std::string& node_id);

  // Stops tracking without firing on_lost (node deregistered cleanly and the
  // caller already ran its leave path).
  void Forget(NodeId node_id);
  void Forget(const std::string& node_id);

  // Graceful-leave fast path: fires on_lost immediately.
  void NotifyLeft(NodeId node_id);
  void NotifyLeft(const std::string& node_id);

  bool IsTracked(NodeId node_id) const;
  bool IsTracked(const std::string& node_id) const;
  std::vector<std::string> tracked() const;
  int lost_count() const { return lost_count_; }

 private:
  struct Entry {
    NodeId id;
    Time last = 0;
  };

  void Sweep();
  NodeId Lookup(const std::string& node_id) const;

  Node* owner_;
  Time timeout_ms_;
  Time check_period_ms_;
  std::function<void(const std::string&)> on_lost_;
  std::unordered_map<uint32_t, Entry> last_heartbeat_;
  int lost_count_ = 0;
};

}  // namespace ctsim

#endif  // SRC_SIM_FAILURE_DETECTOR_H_
