#include "src/sim/cluster.h"

#include <algorithm>

#include "src/common/check.h"

namespace ctsim {

Cluster::Cluster(uint64_t seed)
    // The network gets its own stream: fault-plan draws must not shift the
    // workload RNG, or installing a plan would change the run it perturbs.
    : rng_(seed), net_rng_(seed ^ 0x6e65742d666c7400ull) {
  loop_.SetOwnerAliveCheck([this](NodeId owner) { return IsAlive(owner); });
  loop_.SetTraceHook([this](Time at, NodeId owner) {
    if (trace_ != nullptr) {
      trace_->Record(at, "timer", owner);
    }
  });
  loop_.SetDrainHook([this](Time limit, bool has_limit) {
    if (in_progress_batches_.empty()) {
      return false;
    }
    DeliveryBatch* batch = in_progress_batches_.back();
    if (batch->next >= batch->messages.size() || (has_limit && batch->when > limit)) {
      return false;
    }
    DeliverNow(batch->messages[batch->next++]);
    return true;
  });
}

Cluster::~Cluster() = default;

void Cluster::RegisterNode(std::unique_ptr<Node> node) {
  const NodeId id = node->sym();
  CT_CHECK_MSG(Find(id) == nullptr, "duplicate node id");
  if (id.id() >= route_.size()) {
    route_.resize(id.id() + 1, nullptr);
  }
  route_[id.id()] = node.get();
  insertion_order_.push_back(id);
  owned_nodes_.push_back(std::move(node));
}

Node* Cluster::Find(const std::string& id) const {
  return Find(interner_.Find(id));
}

std::vector<Node*> Cluster::nodes() const {
  std::vector<Node*> out;
  out.reserve(insertion_order_.size());
  for (const NodeId id : insertion_order_) {
    out.push_back(Find(id));
  }
  return out;
}

std::vector<std::string> Cluster::node_ids() const {
  std::vector<std::string> out;
  out.reserve(insertion_order_.size());
  for (const NodeId id : insertion_order_) {
    out.push_back(id.str());
  }
  return out;
}

std::vector<std::string> Cluster::config_hosts() const {
  std::vector<std::string> hosts;
  for (const NodeId id : insertion_order_) {
    std::string host = Find(id)->host();
    if (std::find(hosts.begin(), hosts.end(), host) == hosts.end()) {
      hosts.push_back(host);
    }
  }
  return hosts;
}

void Cluster::StartAll() {
  for (const NodeId id : insertion_order_) {
    Node* node = Find(id);
    if (node->state() == NodeState::kStopped && !node->defer_start()) {
      StartNode(id.str());
    }
  }
}

void Cluster::StartNode(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || node->state() != NodeState::kStopped) {
    return;
  }
  TraceRecord("start", id);
  const NodeId previous = current_node_;
  current_node_ = node->sym();
  // Lifecycle sends are causal roots, even when the start happens inside
  // another node's handler (a mid-run join).
  FlowRootScope flow_root(this);
  node->Start();
  current_node_ = previous;
}

bool Cluster::IsAlive(const std::string& id) const {
  Node* node = Find(id);
  return node != nullptr && node->IsRunning();
}

void Cluster::Crash(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || !node->IsRunning()) {
    return;
  }
  ++crash_count_;
  TraceRecord("crash", id);
  node->MarkCrashed();
}

void Cluster::Shutdown(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || !node->IsRunning()) {
    return;
  }
  ++shutdown_count_;
  TraceRecord("shutdown", id);
  // The shutdown hook runs inside the node's exception boundary: stop-time
  // code can itself raise the exceptions crash-recovery bugs are made of
  // (HDFS-14372's "shutdown before register" abort). Its leave
  // notifications are causal roots, not children of whatever delivery the
  // trigger interrupted.
  FlowRootScope flow_root(this);
  node->RunGuarded("shutdown", [node] { node->OnShutdown(); });
  node->MarkShutdown();
}

bool Cluster::IsHeartbeatMethod(Symbol method) {
  if (method.id() >= heartbeat_class_.size()) {
    heartbeat_class_.resize(interner_.size(), 0);
  }
  uint8_t& cls = heartbeat_class_[method.id()];
  if (cls == 0) {
    const std::string& name = method.str();
    cls = (name.find("Heartbeat") != std::string::npos || name == "gossip") ? 1 : 2;
  }
  return cls == 1;
}

void Cluster::Post(Message message) {
  // Heartbeat traffic is tallied at post time, before fault decisions, so the
  // count reflects what the system *tried* to send under faults.
  if (IsHeartbeatMethod(message.method)) {
    ++heartbeat_messages_;
  }
  // Causal stamps, before any fault decision: a duplicate copies the whole
  // message, so both deliveries carry the same parent flow and origin span.
  if (flow_delivery_hook_) {
    message.flow = current_flow_;
    message.origin_span = flow_origin_hook_ ? flow_origin_hook_() : 0;
  }
  // Fault-plan decisions happen here, at schedule time, against the sender's
  // clock: a message launched into an active partition is lost even if the
  // partition would heal before the link latency elapses.
  if (!partitions_.empty() && LinkCut(message.from, message.to)) {
    ++plan_dropped_messages_;
    if (trace_ != nullptr) {
      TraceRecord("drop.partition", message.from + ">" + message.to + " " + message.method);
    }
    return;
  }
  Time delay = latency_ms_;
  if (has_link_faults_) {
    const LinkFault& fault = plan_.LinkFor(message.from, message.to);
    if (fault.drop_probability > 0.0 && net_rng_.Chance(fault.drop_probability)) {
      ++plan_dropped_messages_;
      if (trace_ != nullptr) {
        TraceRecord("drop.link", message.from + ">" + message.to + " " + message.method);
      }
      return;
    }
    delay += fault.extra_delay_ms;
    if (fault.reorder_window_ms > 0) {
      // Bounded reordering: an extra uniform delay in [0, window] lets later
      // sends overtake this one by at most the window.
      delay += net_rng_.Uniform(0, fault.reorder_window_ms);
    }
    if (fault.extra_delay_ms > 0 || fault.reorder_window_ms > 0) {
      ++delayed_messages_;
    }
    if (fault.duplicate_probability > 0.0 && net_rng_.Chance(fault.duplicate_probability)) {
      Time dup_delay = latency_ms_ + fault.extra_delay_ms;
      if (fault.reorder_window_ms > 0) {
        dup_delay += net_rng_.Uniform(0, fault.reorder_window_ms);
      }
      ++duplicated_messages_;
      if (trace_ != nullptr) {
        TraceRecord("dup", message.from + ">" + message.to + " " + message.method);
      }
      ScheduleDelivery(message, dup_delay);
    }
  }
  ScheduleDelivery(std::move(message), delay);
}

void Cluster::Post(const std::string& from, const std::string& to, const std::string& method,
                   std::vector<std::pair<std::string, std::string>> args) {
  Message message;
  message.from = Intern(from);
  message.to = Intern(to);
  message.method = Intern(method);
  for (auto& kv : args) {
    message.args.Set(Intern(kv.first), std::move(kv.second));
  }
  message.sent_at = loop_.Now();
  Post(std::move(message));
}

void Cluster::ScheduleDelivery(Message message, Time delay) {
  const Time when = loop_.Now() + delay;
  // Coalesce with the open batch when that is provably order-preserving:
  // same destination, same delivery tick, and nothing else scheduled behind
  // the batch event (so this message's own event would have been seq-adjacent
  // to it anyway).
  if (open_batch_ != nullptr && open_batch_->to == message.to && open_batch_->when == when &&
      loop_.next_seq() == open_batch_->seq_mark) {
    open_batch_->messages.push_back(std::move(message));
    return;
  }
  auto batch = std::make_shared<DeliveryBatch>();
  DeliveryBatch* raw = batch.get();
  raw->to = message.to;
  raw->when = when;
  raw->messages.push_back(std::move(message));
  loop_.Schedule(delay, [this, batch = std::move(batch)]() { RunBatch(batch.get()); });
  raw->seq_mark = loop_.next_seq();
  open_batch_ = raw;
}

void Cluster::RunBatch(DeliveryBatch* batch) {
  if (open_batch_ == batch) {
    open_batch_ = nullptr;  // no appends once delivery has begun
  }
  in_progress_batches_.push_back(batch);
  // A handler that re-enters the loop drains the rest of this batch through
  // the hook; the cursor is shared, so nothing delivers twice.
  while (batch->next < batch->messages.size()) {
    DeliverNow(batch->messages[batch->next++]);
  }
  in_progress_batches_.pop_back();
}

void Cluster::DeliverNow(const Message& message) {
  Node* target = Find(message.to);
  if (target == nullptr || !target->IsRunning()) {
    // A duplicate is subject to the same check, so duplication can never
    // resurrect a message for a node that died before delivery.
    ++dropped_messages_;
    if (trace_ != nullptr) {
      TraceRecord("drop.dead", message.from + ">" + message.to + " " + message.method);
    }
    return;
  }
  ++delivered_messages_;
  if (trace_ != nullptr) {
    TraceRecord("deliver", message.from + ">" + message.to + " " + message.method);
  }
  const NodeId previous = current_node_;
  current_node_ = message.to;
  if (flow_delivery_hook_) {
    // Allocate the delivery's flow id on the deterministic delivery order,
    // report the causal edge, and make this delivery the parent of anything
    // its handler posts.
    const uint64_t flow_id = ++next_flow_id_;
    flow_delivery_hook_(flow_id, message.flow, message.origin_span, message);
    const uint64_t previous_flow = current_flow_;
    current_flow_ = flow_id;
    target->Dispatch(message);
    current_flow_ = previous_flow;
  } else {
    target->Dispatch(message);
  }
  current_node_ = previous;
}

void Cluster::InstallFaultPlan(FaultPlan plan) {
  plan_ = std::move(plan);
  has_link_faults_ = !plan_.default_link.Inert() || !plan_.links.empty();
  for (const auto& directive : plan_.partitions) {
    ++partition_epochs_;
    partitions_.push_back(directive);
    std::string members;
    for (const auto& id : directive.group) {
      members += (members.empty() ? "" : ",") + id;
    }
    TraceRecord(directive.one_way ? "partition.oneway" : "partition",
                std::to_string(directive.start_ms) + ".." +
                    std::to_string(directive.heal_ms) + " " + members);
  }
  for (const auto& [node, permille] : plan_.timer_skew_permille) {
    TraceRecord("timer-skew", node + " " + std::to_string(permille));
  }
}

void Cluster::PartitionNodes(const std::vector<std::string>& group, Time duration_ms) {
  PartitionDirective directive;
  directive.start_ms = loop_.Now();
  directive.heal_ms = loop_.Now() + duration_ms;
  directive.group = group;
  std::string members;
  for (const auto& id : group) {
    members += (members.empty() ? "" : ",") + id;
  }
  TraceRecord("partition", std::to_string(directive.start_ms) + ".." +
                               std::to_string(directive.heal_ms) + " " + members);
  ++partition_epochs_;
  partitions_.push_back(std::move(directive));
}

bool Cluster::LinkCut(const std::string& from, const std::string& to) const {
  for (const auto& directive : partitions_) {
    if (directive.ActiveAt(loop_.Now()) && directive.Cuts(from, to)) {
      return true;
    }
  }
  return false;
}

Time Cluster::SkewedDelay(const std::string& owner, Time delay) const {
  if (plan_.timer_skew_permille.empty()) {
    return delay;
  }
  auto it = plan_.timer_skew_permille.find(owner);
  if (it == plan_.timer_skew_permille.end() || it->second == 1000) {
    return delay;
  }
  return delay * static_cast<Time>(it->second) / 1000;
}

void Cluster::TraceRecord(const char* kind, std::string detail) {
  if (trace_ != nullptr) {
    trace_->Record(loop_.Now(), kind, std::move(detail));
  }
}

void Cluster::MarkClusterDown(const std::string& reason) {
  if (cluster_down_) {
    return;
  }
  cluster_down_ = true;
  cluster_down_reason_ = reason;
  TraceRecord("cluster-down", reason);
}

}  // namespace ctsim
