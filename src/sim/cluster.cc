#include "src/sim/cluster.h"

#include <algorithm>

#include "src/common/check.h"

namespace ctsim {

Cluster::Cluster(uint64_t seed) : rng_(seed) {
  loop_.SetOwnerAliveCheck([this](const std::string& owner) { return IsAlive(owner); });
}

Cluster::~Cluster() = default;

void Cluster::RegisterNode(std::unique_ptr<Node> node) {
  const std::string& id = node->id();
  CT_CHECK_MSG(nodes_.find(id) == nodes_.end(), "duplicate node id");
  insertion_order_.push_back(id);
  nodes_[id] = std::move(node);
}

Node* Cluster::Find(const std::string& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<Node*> Cluster::nodes() const {
  std::vector<Node*> out;
  out.reserve(insertion_order_.size());
  for (const auto& id : insertion_order_) {
    out.push_back(nodes_.at(id).get());
  }
  return out;
}

std::vector<std::string> Cluster::node_ids() const { return insertion_order_; }

std::vector<std::string> Cluster::config_hosts() const {
  std::vector<std::string> hosts;
  for (const auto& id : insertion_order_) {
    std::string host = nodes_.at(id)->host();
    if (std::find(hosts.begin(), hosts.end(), host) == hosts.end()) {
      hosts.push_back(host);
    }
  }
  return hosts;
}

void Cluster::StartAll() {
  for (const auto& id : insertion_order_) {
    Node* node = nodes_.at(id).get();
    if (node->state() == NodeState::kStopped && !node->defer_start()) {
      StartNode(id);
    }
  }
}

void Cluster::StartNode(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || node->state() != NodeState::kStopped) {
    return;
  }
  std::string previous = current_node_;
  current_node_ = id;
  node->Start();
  current_node_ = previous;
}

bool Cluster::IsAlive(const std::string& id) const {
  Node* node = Find(id);
  return node != nullptr && node->IsRunning();
}

void Cluster::Crash(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || !node->IsRunning()) {
    return;
  }
  ++crash_count_;
  node->MarkCrashed();
}

void Cluster::Shutdown(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || !node->IsRunning()) {
    return;
  }
  ++shutdown_count_;
  // The shutdown hook runs inside the node's exception boundary: stop-time
  // code can itself raise the exceptions crash-recovery bugs are made of
  // (HDFS-14372's "shutdown before register" abort).
  node->RunGuarded("shutdown", [node] { node->OnShutdown(); });
  node->MarkShutdown();
}

void Cluster::Post(Message message) {
  loop_.Schedule(latency_ms_, [this, message = std::move(message)]() {
    Node* target = Find(message.to);
    if (target == nullptr || !target->IsRunning()) {
      ++dropped_messages_;
      return;
    }
    ++delivered_messages_;
    std::string previous = current_node_;
    current_node_ = message.to;
    target->Dispatch(message);
    current_node_ = previous;
  });
}

void Cluster::MarkClusterDown(const std::string& reason) {
  if (cluster_down_) {
    return;
  }
  cluster_down_ = true;
  cluster_down_reason_ = reason;
}

}  // namespace ctsim
