#include "src/sim/cluster.h"

#include <algorithm>

#include "src/common/check.h"

namespace ctsim {

Cluster::Cluster(uint64_t seed)
    // The network gets its own stream: fault-plan draws must not shift the
    // workload RNG, or installing a plan would change the run it perturbs.
    : rng_(seed), net_rng_(seed ^ 0x6e65742d666c7400ull) {
  loop_.SetOwnerAliveCheck([this](const std::string& owner) { return IsAlive(owner); });
  loop_.SetTraceHook([this](Time at, const std::string& owner) {
    if (trace_ != nullptr) {
      trace_->Record(at, "timer", owner);
    }
  });
}

Cluster::~Cluster() = default;

void Cluster::RegisterNode(std::unique_ptr<Node> node) {
  const std::string& id = node->id();
  CT_CHECK_MSG(nodes_.find(id) == nodes_.end(), "duplicate node id");
  insertion_order_.push_back(id);
  nodes_[id] = std::move(node);
}

Node* Cluster::Find(const std::string& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<Node*> Cluster::nodes() const {
  std::vector<Node*> out;
  out.reserve(insertion_order_.size());
  for (const auto& id : insertion_order_) {
    out.push_back(nodes_.at(id).get());
  }
  return out;
}

std::vector<std::string> Cluster::node_ids() const { return insertion_order_; }

std::vector<std::string> Cluster::config_hosts() const {
  std::vector<std::string> hosts;
  for (const auto& id : insertion_order_) {
    std::string host = nodes_.at(id)->host();
    if (std::find(hosts.begin(), hosts.end(), host) == hosts.end()) {
      hosts.push_back(host);
    }
  }
  return hosts;
}

void Cluster::StartAll() {
  for (const auto& id : insertion_order_) {
    Node* node = nodes_.at(id).get();
    if (node->state() == NodeState::kStopped && !node->defer_start()) {
      StartNode(id);
    }
  }
}

void Cluster::StartNode(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || node->state() != NodeState::kStopped) {
    return;
  }
  TraceRecord("start", id);
  std::string previous = current_node_;
  current_node_ = id;
  node->Start();
  current_node_ = previous;
}

bool Cluster::IsAlive(const std::string& id) const {
  Node* node = Find(id);
  return node != nullptr && node->IsRunning();
}

void Cluster::Crash(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || !node->IsRunning()) {
    return;
  }
  ++crash_count_;
  TraceRecord("crash", id);
  node->MarkCrashed();
}

void Cluster::Shutdown(const std::string& id) {
  Node* node = Find(id);
  if (node == nullptr || !node->IsRunning()) {
    return;
  }
  ++shutdown_count_;
  TraceRecord("shutdown", id);
  // The shutdown hook runs inside the node's exception boundary: stop-time
  // code can itself raise the exceptions crash-recovery bugs are made of
  // (HDFS-14372's "shutdown before register" abort).
  node->RunGuarded("shutdown", [node] { node->OnShutdown(); });
  node->MarkShutdown();
}

void Cluster::Post(Message message) {
  // Heartbeat traffic is tallied at post time, before fault decisions, so the
  // count reflects what the system *tried* to send under faults.
  if (message.method.find("Heartbeat") != std::string::npos || message.method == "gossip") {
    ++heartbeat_messages_;
  }
  // Fault-plan decisions happen here, at schedule time, against the sender's
  // clock: a message launched into an active partition is lost even if the
  // partition would heal before the link latency elapses.
  if (!partitions_.empty() && LinkCut(message.from, message.to)) {
    ++plan_dropped_messages_;
    TraceRecord("drop.partition", message.from + ">" + message.to + " " + message.method);
    return;
  }
  Time delay = latency_ms_;
  if (has_link_faults_) {
    const LinkFault& fault = plan_.LinkFor(message.from, message.to);
    if (fault.drop_probability > 0.0 && net_rng_.Chance(fault.drop_probability)) {
      ++plan_dropped_messages_;
      TraceRecord("drop.link", message.from + ">" + message.to + " " + message.method);
      return;
    }
    delay += fault.extra_delay_ms;
    if (fault.reorder_window_ms > 0) {
      // Bounded reordering: an extra uniform delay in [0, window] lets later
      // sends overtake this one by at most the window.
      delay += net_rng_.Uniform(0, fault.reorder_window_ms);
    }
    if (fault.extra_delay_ms > 0 || fault.reorder_window_ms > 0) {
      ++delayed_messages_;
    }
    if (fault.duplicate_probability > 0.0 && net_rng_.Chance(fault.duplicate_probability)) {
      Time dup_delay = latency_ms_ + fault.extra_delay_ms;
      if (fault.reorder_window_ms > 0) {
        dup_delay += net_rng_.Uniform(0, fault.reorder_window_ms);
      }
      ++duplicated_messages_;
      TraceRecord("dup", message.from + ">" + message.to + " " + message.method);
      ScheduleDelivery(message, dup_delay);
    }
  }
  ScheduleDelivery(std::move(message), delay);
}

void Cluster::ScheduleDelivery(Message message, Time delay) {
  loop_.Schedule(delay, [this, message = std::move(message)]() {
    Node* target = Find(message.to);
    if (target == nullptr || !target->IsRunning()) {
      // A duplicate is subject to the same check, so duplication can never
      // resurrect a message for a node that died before delivery.
      ++dropped_messages_;
      TraceRecord("drop.dead", message.from + ">" + message.to + " " + message.method);
      return;
    }
    ++delivered_messages_;
    TraceRecord("deliver", message.from + ">" + message.to + " " + message.method);
    std::string previous = current_node_;
    current_node_ = message.to;
    target->Dispatch(message);
    current_node_ = previous;
  });
}

void Cluster::InstallFaultPlan(FaultPlan plan) {
  plan_ = std::move(plan);
  has_link_faults_ = !plan_.default_link.Inert() || !plan_.links.empty();
  for (const auto& directive : plan_.partitions) {
    ++partition_epochs_;
    partitions_.push_back(directive);
    std::string members;
    for (const auto& id : directive.group) {
      members += (members.empty() ? "" : ",") + id;
    }
    TraceRecord("partition", std::to_string(directive.start_ms) + ".." +
                                 std::to_string(directive.heal_ms) + " " + members);
  }
}

void Cluster::PartitionNodes(const std::vector<std::string>& group, Time duration_ms) {
  PartitionDirective directive;
  directive.start_ms = loop_.Now();
  directive.heal_ms = loop_.Now() + duration_ms;
  directive.group = group;
  std::string members;
  for (const auto& id : group) {
    members += (members.empty() ? "" : ",") + id;
  }
  TraceRecord("partition", std::to_string(directive.start_ms) + ".." +
                               std::to_string(directive.heal_ms) + " " + members);
  ++partition_epochs_;
  partitions_.push_back(std::move(directive));
}

bool Cluster::LinkCut(const std::string& from, const std::string& to) const {
  for (const auto& directive : partitions_) {
    if (directive.ActiveAt(loop_.Now()) && directive.Separates(from, to)) {
      return true;
    }
  }
  return false;
}

void Cluster::TraceRecord(const char* kind, std::string detail) {
  if (trace_ != nullptr) {
    trace_->Record(loop_.Now(), kind, std::move(detail));
  }
}

void Cluster::MarkClusterDown(const std::string& reason) {
  if (cluster_down_) {
    return;
  }
  cluster_down_ = true;
  cluster_down_reason_ = reason;
  TraceRecord("cluster-down", reason);
}

}  // namespace ctsim
