// Base class for simulated cluster nodes (JVM processes in the paper's terms).
//
// A node has an id of the form "host:port", a lifecycle
// (stopped → running → crashed/shutdown), a logger, registered RPC handlers,
// and timer helpers whose events die with the node. Message dispatch is the
// exception boundary: SimExceptions raised while handling a message are
// logged and passed to OnException, whose default policy aborts the node —
// and, for critical nodes, the whole cluster (the YARN-9164 "master aborts,
// cluster down" failure mode).
#ifndef SRC_SIM_NODE_H_
#define SRC_SIM_NODE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/logging/log_store.h"
#include "src/sim/event_loop.h"
#include "src/sim/exception.h"
#include "src/sim/message.h"
#include "src/sim/symbol.h"

namespace ctsim {

class Cluster;

enum class NodeState { kStopped, kRunning, kCrashed, kShutdown };

const char* NodeStateName(NodeState state);

// Payload fields for Send; brace-init lists of {"key", "value"} pairs.
using KvList = std::vector<std::pair<std::string, std::string>>;

class Node {
 public:
  Node(Cluster* cluster, std::string id);
  virtual ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& id() const { return id_; }
  // Interned identity within the owning cluster.
  NodeId sym() const { return sym_; }
  // Host part of "host:port".
  std::string host() const;
  NodeState state() const { return state_; }
  bool IsRunning() const { return state_ == NodeState::kRunning; }

  ctlog::Logger& log() { return *logger_; }
  Cluster& cluster() { return *cluster_; }

  // Lifecycle, driven by the cluster.
  void Start();
  void MarkCrashed();
  void MarkShutdown();

  // Delivers a message: runs the registered handler inside the exception
  // boundary. Silently drops the message if the node is not running.
  void Dispatch(const Message& message);

  // Runs `fn` inside the same exception boundary Dispatch uses; `context`
  // names the executing component for the exception policy (timer callbacks
  // and async-dispatcher events go through here).
  void RunGuarded(const std::string& context, const std::function<void()>& fn);

  // RPC handler registration.
  void Handle(const std::string& method, std::function<void(const Message&)> handler);

  // Sends an RPC to another node via the cluster network.
  void Send(const std::string& to, const std::string& method, KvList args = {});
  void Send(NodeId to, const std::string& method, KvList args = {});

  // Timers owned by this node; they do not fire once the node is dead.
  void After(Time delay, std::function<void()> fn);
  // Fires every `period` ms until the node dies.
  void Every(Time period, std::function<void()> fn);

  // True once an unhandled exception aborted this node.
  bool aborted() const { return aborted_; }

  // Deferred nodes are skipped by Cluster::StartAll and started explicitly
  // (machines that join the cluster mid-run).
  void set_defer_start(bool defer) { defer_start_ = defer; }
  bool defer_start() const { return defer_start_; }

  // Workload-driver nodes (clients) model the off-cluster test harness; the
  // random-injection baseline never crashes them.
  void set_workload_driver(bool driver) { workload_driver_ = driver; }
  bool workload_driver() const { return workload_driver_; }

 protected:
  // Subclass hooks.
  virtual void OnStart() {}
  // Runs during *graceful* shutdown, before the node is marked dead; the
  // place to send leave/unregister notifications (the paper's shutdown-script
  // path that lets the cluster skip the failure-detection timeout).
  virtual void OnShutdown() {}
  // Unhandled-SimException policy; `context` is the RPC method or timer
  // context that raised it. Default: abort this node, as a JVM does when a
  // critical thread dies. Subclasses refine per component (a master may
  // tolerate state-machine exceptions but die on NullPointerException).
  virtual void OnHandlerException(const std::string& context, const SimException& e);

  // Aborts the node as a JVM would on an uncaught exception in a critical
  // thread.
  void Abort(const std::string& reason);

  // Marked by masters whose death takes the cluster down.
  void SetCritical() { critical_ = true; }
  bool critical() const { return critical_; }

 private:
  friend class Cluster;

  Cluster* cluster_;
  std::string id_;
  NodeId sym_;
  NodeState state_ = NodeState::kStopped;
  bool aborted_ = false;
  bool defer_start_ = false;
  bool workload_driver_ = false;
  bool critical_ = false;
  std::unique_ptr<ctlog::Logger> logger_;
  // Keyed by interned method id: dispatch is one integer hash away.
  std::unordered_map<uint32_t, std::function<void(const Message&)>> handlers_;
};

}  // namespace ctsim

#endif  // SRC_SIM_NODE_H_
