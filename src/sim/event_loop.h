// Deterministic discrete-event loop driving all cluster activity.
//
// Everything that happens "concurrently" in the systems under test —
// heartbeats, RPC deliveries, monitor ticks, workload steps — is an event in
// one totally ordered queue keyed by (virtual time, sequence number). Virtual
// time makes each interleaving reproducible, which is what lets a reported
// bug be replayed from its ⟨crash point, seed⟩ alone.
//
// The loop supports bounded *nested* draining: the pre-read trigger (§3.2.2)
// issues a shutdown RPC and then waits a timeout window so the recovery
// machinery runs before the instrumented read proceeds. In a real deployment
// other threads run during that wait; here the hook re-enters the loop for
// the window's worth of events and then returns to the interrupted handler.
//
// Storage and ordering are built for scaled campaigns (10⁶+ pending events):
//
//  - Events live in a slab of fixed-size chunks; nodes never move, slots are
//    recycled through a free list, and an EventId encodes (generation, slot)
//    so Cancel is an O(1) tag set — stale ids (already executed or already
//    cancelled) are no-ops, exactly like the old tombstone list, minus its
//    linear scan on every pop.
//  - Ready ordering is a ladder queue: a wheel of kWheelSize one-millisecond
//    buckets starting at wheel_base_, each an intrusive FIFO (append keeps
//    seq order, and a bucket is a single timestamp, so FIFO *is* (when, seq)
//    order), plus an overflow min-heap for events beyond the wheel horizon.
//    Inserts and pops are O(1) in the common case; the heap is touched only
//    when an event is far in the future and once more when the wheel drains
//    down to it and rebases.
//  - The (when, seq) total order and the reentrancy contract (RunUntil from
//    inside a callback) are bit-for-bit those of the original
//    std::priority_queue loop; goldens and trace hashes do not move.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/symbol.h"

namespace ctsim {

using Time = uint64_t;  // virtual milliseconds
using EventId = uint64_t;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time Now() const { return now_; }

  // Schedules `fn` to run `delay` ms from now. If `owner` is non-empty the
  // event is skipped when the owner is no longer alive at fire time (a dead
  // node's timers and in-flight work die with it).
  EventId Schedule(Time delay, std::function<void()> fn, NodeId owner = NodeId());
  EventId ScheduleAt(Time when, std::function<void()> fn, NodeId owner = NodeId());

  // O(1). Ids of events that already ran (or were already cancelled) are
  // no-ops: the slot's generation was bumped when it was recycled.
  void Cancel(EventId id);

  // Installed by the cluster; decides whether `owner` is still alive.
  void SetOwnerAliveCheck(std::function<bool(NodeId)> check) {
    alive_check_ = std::move(check);
  }

  // Installed by the cluster; called just before an *owned* event fires
  // (node timers — deliveries are ownerless and traced by the cluster with
  // richer detail). Used for trace record/replay.
  void SetTraceHook(std::function<void(Time, NodeId)> hook) {
    trace_hook_ = std::move(hook);
  }

  // Installed by the cluster. Consulted before every pop: if the hook has
  // out-of-queue work due at or before `limit` (when bounded), it performs
  // one unit and returns true, and the loop counts that as the iteration's
  // event. This is how a partially delivered message batch stays ahead of
  // queued events when a handler re-enters the loop mid-batch — the
  // remaining batch members are seq-adjacent to the executing event, so
  // they are by construction next in the (when, seq) total order.
  void SetDrainHook(std::function<bool(Time, bool)> hook) {
    drain_hook_ = std::move(hook);
  }

  // Runs a single event if one is pending; advances the clock to it.
  bool RunOne();

  // Runs until the queue empties.
  void RunToCompletion();

  // Runs every event with fire time <= `when`, then advances the clock to
  // `when`. Reentrant: may be called from inside an event callback (this is
  // how the pre-read trigger's wait is realized).
  void RunUntil(Time when);
  void RunFor(Time duration) { RunUntil(Now() + duration); }

  // Diagnostics / scheduler counters.
  uint64_t executed_events() const { return executed_events_; }
  uint64_t skipped_dead_owner_events() const { return skipped_dead_owner_events_; }
  // Live (scheduled, not yet executed, not cancelled) events only.
  size_t pending_events() const { return live_events_; }
  uint64_t scheduled_events() const { return scheduled_events_; }
  uint64_t cancelled_events() const { return cancelled_events_; }
  size_t peak_pending_events() const { return peak_pending_; }
  // Sequence number the next scheduled event will receive. Lets the cluster
  // detect "nothing was scheduled in between" when batching deliveries.
  uint64_t next_seq() const { return next_seq_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint32_t kWheelSize = 4096;  // 1ms buckets => ~4s horizon
  static constexpr uint32_t kWheelWords = kWheelSize / 64;
  static constexpr uint32_t kChunkShift = 8;
  static constexpr uint32_t kChunkNodes = 1u << kChunkShift;
  static constexpr uint32_t kChunkMask = kChunkNodes - 1;

  struct EventNode {
    Time when = 0;
    uint64_t seq = 0;
    uint32_t gen = 0;    // bumped when the slot is recycled; validates ids
    uint32_t next = kNil;  // bucket chain when queued, free list when free
    bool cancelled = false;
    NodeId owner;
    std::function<void()> fn;
  };
  struct Bucket {
    uint32_t head = kNil;
    uint32_t tail = kNil;
  };
  struct FarEntry {
    Time when = 0;
    uint64_t seq = 0;
    uint32_t slot = kNil;
  };
  struct FarLater {
    bool operator()(const FarEntry& a, const FarEntry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  EventNode& NodeAt(uint32_t slot) { return chunks_[slot >> kChunkShift][slot & kChunkMask]; }
  uint32_t AllocSlot();
  void FreeSlot(uint32_t slot);
  void PushBucket(uint32_t bucket, uint32_t slot);
  uint32_t PopBucketHead(uint32_t bucket);
  void InsertNode(uint32_t slot);
  void RebaseAndDrain(Time new_base);
  void PurgeDeadStorage();
  bool PopAndRun(Time limit, bool has_limit);

  // Slab.
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  uint32_t free_head_ = kNil;
  uint32_t slot_capacity_ = 0;

  // Ladder: wheel over [wheel_base_, wheel_base_ + kWheelSize) plus the far
  // heap for everything at or beyond the horizon. Invariants: buckets before
  // now_ are empty whenever user code runs, and every far entry satisfies
  // when >= wheel_base_ + kWheelSize, so a wheel candidate always precedes
  // every far event.
  std::array<Bucket, kWheelSize> wheel_{};
  std::array<uint64_t, kWheelWords> occupied_{};
  Time wheel_base_ = 0;
  uint32_t wheel_count_ = 0;  // nodes linked into buckets (incl. cancelled)
  uint32_t scan_word_hint_ = 0;  // no occupied bucket in words before this
  std::priority_queue<FarEntry, std::vector<FarEntry>, FarLater> far_;

  Time now_ = 0;
  uint64_t next_seq_ = 0;
  size_t live_events_ = 0;
  size_t peak_pending_ = 0;
  uint64_t scheduled_events_ = 0;
  uint64_t cancelled_events_ = 0;
  uint64_t executed_events_ = 0;
  uint64_t skipped_dead_owner_events_ = 0;
  std::function<bool(NodeId)> alive_check_;
  std::function<void(Time, NodeId)> trace_hook_;
  std::function<bool(Time, bool)> drain_hook_;
};

}  // namespace ctsim

#endif  // SRC_SIM_EVENT_LOOP_H_
