// Deterministic discrete-event loop driving all cluster activity.
//
// Everything that happens "concurrently" in the systems under test —
// heartbeats, RPC deliveries, monitor ticks, workload steps — is an event in
// one totally ordered queue keyed by (virtual time, sequence number). Virtual
// time makes each interleaving reproducible, which is what lets a reported
// bug be replayed from its ⟨crash point, seed⟩ alone.
//
// The loop supports bounded *nested* draining: the pre-read trigger (§3.2.2)
// issues a shutdown RPC and then waits a timeout window so the recovery
// machinery runs before the instrumented read proceeds. In a real deployment
// other threads run during that wait; here the hook re-enters the loop for
// the window's worth of events and then returns to the interrupted handler.
#ifndef SRC_SIM_EVENT_LOOP_H_
#define SRC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace ctsim {

using Time = uint64_t;  // virtual milliseconds
using EventId = uint64_t;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time Now() const { return now_; }

  // Schedules `fn` to run `delay` ms from now. If `owner` is non-empty the
  // event is skipped when the owner is no longer alive at fire time (a dead
  // node's timers and in-flight work die with it).
  EventId Schedule(Time delay, std::function<void()> fn, std::string owner = "");
  EventId ScheduleAt(Time when, std::function<void()> fn, std::string owner = "");

  void Cancel(EventId id);

  // Installed by the cluster; decides whether `owner` is still alive.
  void SetOwnerAliveCheck(std::function<bool(const std::string&)> check) {
    alive_check_ = std::move(check);
  }

  // Installed by the cluster; called just before an *owned* event fires
  // (node timers — deliveries are ownerless and traced by the cluster with
  // richer detail). Used for trace record/replay.
  void SetTraceHook(std::function<void(Time, const std::string&)> hook) {
    trace_hook_ = std::move(hook);
  }

  // Runs a single event if one is pending; advances the clock to it.
  bool RunOne();

  // Runs until the queue empties.
  void RunToCompletion();

  // Runs every event with fire time <= `when`, then advances the clock to
  // `when`. Reentrant: may be called from inside an event callback (this is
  // how the pre-read trigger's wait is realized).
  void RunUntil(Time when);
  void RunFor(Time duration) { RunUntil(Now() + duration); }

  // Diagnostics.
  uint64_t executed_events() const { return executed_events_; }
  uint64_t skipped_dead_owner_events() const { return skipped_dead_owner_events_; }
  size_t pending_events() const;

 private:
  struct Event {
    Time when = 0;
    uint64_t seq = 0;
    EventId id = 0;
    std::string owner;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  bool PopAndRun(Time limit, bool has_limit);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<EventId> cancelled_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t executed_events_ = 0;
  uint64_t skipped_dead_owner_events_ = 0;
  std::function<bool(const std::string&)> alive_check_;
  std::function<void(Time, const std::string&)> trace_hook_;
};

}  // namespace ctsim

#endif  // SRC_SIM_EVENT_LOOP_H_
