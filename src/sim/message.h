// RPC-style message passed between simulated nodes.
#ifndef SRC_SIM_MESSAGE_H_
#define SRC_SIM_MESSAGE_H_

#include <map>
#include <string>

#include "src/sim/event_loop.h"

namespace ctsim {

struct Message {
  std::string from;
  std::string to;
  std::string method;                       // RPC name, e.g. "commitPending"
  std::map<std::string, std::string> args;  // named payload fields
  Time sent_at = 0;

  // Reads a payload field, or empty string if missing.
  const std::string& Arg(const std::string& key) const {
    static const std::string kEmpty;
    auto it = args.find(key);
    return it == args.end() ? kEmpty : it->second;
  }
};

}  // namespace ctsim

#endif  // SRC_SIM_MESSAGE_H_
