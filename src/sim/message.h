// RPC-style message passed between simulated nodes.
//
// Identities (from/to/method) are interned symbols from the owning cluster's
// table, so routing and handler dispatch compare integers. The payload is a
// small inline vector of ⟨interned key, value⟩ pairs — messages carry at most
// a handful of fields, and the old per-message std::map cost a node
// allocation per field on the hottest path in the simulator.
#ifndef SRC_SIM_MESSAGE_H_
#define SRC_SIM_MESSAGE_H_

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/symbol.h"

namespace ctsim {

// Insertion-ordered flat map with inline storage for the common case.
class ArgVec {
 public:
  struct Entry {
    Symbol key;
    std::string value;
  };

  void Set(Symbol key, std::string value) {
    for (uint32_t i = 0; i < count_; ++i) {
      Entry& entry = At(i);
      if (entry.key == key) {
        entry.value = std::move(value);
        return;
      }
    }
    if (count_ < kInline) {
      inline_[count_] = Entry{key, std::move(value)};
    } else {
      spill_.push_back(Entry{key, std::move(value)});
    }
    ++count_;
  }

  const std::string& Find(Symbol key) const {
    for (uint32_t i = 0; i < count_; ++i) {
      const Entry& entry = At(i);
      if (entry.key == key) {
        return entry.value;
      }
    }
    return Empty();
  }

  // Text lookup for call sites that pass a plain string key.
  const std::string& Find(const std::string& key) const {
    for (uint32_t i = 0; i < count_; ++i) {
      const Entry& entry = At(i);
      if (entry.key.str() == key) {
        return entry.value;
      }
    }
    return Empty();
  }

  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  static constexpr uint32_t kInline = 4;

  Entry& At(uint32_t i) { return i < kInline ? inline_[i] : spill_[i - kInline]; }
  const Entry& At(uint32_t i) const { return i < kInline ? inline_[i] : spill_[i - kInline]; }
  static const std::string& Empty() {
    static const std::string kEmpty;
    return kEmpty;
  }

  uint32_t count_ = 0;
  std::array<Entry, kInline> inline_;
  std::vector<Entry> spill_;
};

struct Message {
  Symbol from;
  Symbol to;
  Symbol method;  // RPC name, e.g. "commitPending"
  ArgVec args;    // named payload fields
  Time sent_at = 0;

  // Causal-flow stamps, written by the cluster only while flow observation
  // is on (zero otherwise; never hashed or traced). `flow` is the flow id of
  // the delivery whose handler posted this message (0 = root send from a
  // timer, node start, or the workload driver); `origin_span` is the
  // observer span open at post time. FaultPlan duplication copies the whole
  // Message, so duplicated/reordered deliveries keep their causal stamps.
  uint64_t flow = 0;
  uint64_t origin_span = 0;

  // Reads a payload field, or empty string if missing.
  const std::string& Arg(const std::string& key) const { return args.Find(key); }
  const std::string& Arg(Symbol key) const { return args.Find(key); }
};

}  // namespace ctsim

#endif  // SRC_SIM_MESSAGE_H_
