#include "src/sim/event_loop.h"

#include <algorithm>
#include <bit>

#include "src/common/check.h"

namespace ctsim {

uint32_t EventLoop::AllocSlot() {
  if (free_head_ == kNil) {
    chunks_.push_back(std::make_unique<EventNode[]>(kChunkNodes));
    const uint32_t base = slot_capacity_;
    slot_capacity_ += kChunkNodes;
    EventNode* chunk = chunks_.back().get();
    for (uint32_t i = kChunkNodes; i-- > 0;) {
      chunk[i].next = free_head_;
      free_head_ = base + i;
    }
  }
  const uint32_t slot = free_head_;
  free_head_ = NodeAt(slot).next;
  return slot;
}

void EventLoop::FreeSlot(uint32_t slot) {
  EventNode& node = NodeAt(slot);
  node.fn = nullptr;
  node.owner = NodeId();
  node.cancelled = false;
  ++node.gen;  // invalidates every id handed out for this slot so far
  node.next = free_head_;
  free_head_ = slot;
}

void EventLoop::PushBucket(uint32_t bucket, uint32_t slot) {
  NodeAt(slot).next = kNil;
  Bucket& b = wheel_[bucket];
  if (b.head == kNil) {
    b.head = b.tail = slot;
    occupied_[bucket >> 6] |= uint64_t{1} << (bucket & 63);
    scan_word_hint_ = std::min(scan_word_hint_, bucket >> 6);
  } else {
    NodeAt(b.tail).next = slot;
    b.tail = slot;
  }
  ++wheel_count_;
}

uint32_t EventLoop::PopBucketHead(uint32_t bucket) {
  Bucket& b = wheel_[bucket];
  const uint32_t slot = b.head;
  b.head = NodeAt(slot).next;
  if (b.head == kNil) {
    b.tail = kNil;
    occupied_[bucket >> 6] &= ~(uint64_t{1} << (bucket & 63));
  }
  --wheel_count_;
  return slot;
}

// Wheel must be empty. Repoints the horizon at `new_base` and pulls every far
// event inside it into the buckets. Heap pops come out in (when, seq) order,
// so per-bucket FIFO order is seq order — the same order inserts produce.
void EventLoop::RebaseAndDrain(Time new_base) {
  wheel_base_ = new_base;
  scan_word_hint_ = 0;
  while (!far_.empty() && far_.top().when - new_base < kWheelSize) {
    const FarEntry entry = far_.top();
    far_.pop();
    if (NodeAt(entry.slot).cancelled) {
      FreeSlot(entry.slot);
      continue;
    }
    PushBucket(static_cast<uint32_t>(entry.when - new_base), entry.slot);
  }
}

void EventLoop::InsertNode(uint32_t slot) {
  const Time when = NodeAt(slot).when;
  if (wheel_count_ == 0 && far_.empty()) {
    // Queue fully empty: park the wheel at the clock for locality.
    wheel_base_ = now_;
    scan_word_hint_ = 0;
  } else if (now_ >= wheel_base_ + kWheelSize) {
    // The whole wheel is in the past, hence provably empty; slide it to now
    // and bring near-future far events along.
    RebaseAndDrain(now_);
  }
  if (when - wheel_base_ < kWheelSize) {
    PushBucket(static_cast<uint32_t>(when - wheel_base_), slot);
  } else {
    far_.push(FarEntry{when, NodeAt(slot).seq, slot});
  }
}

EventId EventLoop::Schedule(Time delay, std::function<void()> fn, NodeId owner) {
  return ScheduleAt(now_ + delay, std::move(fn), owner);
}

EventId EventLoop::ScheduleAt(Time when, std::function<void()> fn, NodeId owner) {
  CT_CHECK(when >= now_);
  const uint32_t slot = AllocSlot();
  EventNode& node = NodeAt(slot);
  node.when = when;
  node.seq = next_seq_++;
  node.cancelled = false;
  node.owner = owner;
  node.fn = std::move(fn);
  ++scheduled_events_;
  ++live_events_;
  peak_pending_ = std::max(peak_pending_, live_events_);
  InsertNode(slot);
  return (uint64_t{node.gen} << 32) | (slot + 1);
}

void EventLoop::Cancel(EventId id) {
  if (id == 0) {
    return;
  }
  const uint32_t slot = static_cast<uint32_t>(id & 0xffffffffu) - 1;
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (slot >= slot_capacity_) {
    return;
  }
  EventNode& node = NodeAt(slot);
  if (node.gen != gen || node.cancelled) {
    return;  // already executed, recycled, or cancelled
  }
  node.cancelled = true;
  node.fn = nullptr;  // release captured state eagerly
  node.owner = NodeId();
  ++cancelled_events_;
  --live_events_;
  if (live_events_ == 0) {
    // Nothing left that will ever run; reclaim tombstones the scan would
    // otherwise only reach when the clock catches up to them.
    PurgeDeadStorage();
  }
}

void EventLoop::PurgeDeadStorage() {
  for (uint32_t word = 0; word < kWheelWords; ++word) {
    while (occupied_[word] != 0) {
      const uint32_t bucket =
          word * 64 + static_cast<uint32_t>(std::countr_zero(occupied_[word]));
      while (wheel_[bucket].head != kNil) {
        FreeSlot(PopBucketHead(bucket));
      }
    }
  }
  while (!far_.empty()) {
    FreeSlot(far_.top().slot);
    far_.pop();
  }
}

bool EventLoop::PopAndRun(Time limit, bool has_limit) {
  for (;;) {
    // Out-of-queue work (a partially delivered batch) precedes every queued
    // event; see SetDrainHook.
    if (drain_hook_ && drain_hook_(limit, has_limit)) {
      return true;
    }
    // Earliest candidate: first live head in the first occupied bucket,
    // freeing cancelled tombstones as the scan passes them.
    uint32_t slot = kNil;
    uint32_t bucket = 0;
    uint32_t word = scan_word_hint_;
    while (word < kWheelWords) {
      const uint64_t bits = occupied_[word];
      if (bits == 0) {
        scan_word_hint_ = ++word;
        continue;
      }
      const uint32_t b = word * 64 + static_cast<uint32_t>(std::countr_zero(bits));
      if (NodeAt(wheel_[b].head).cancelled) {
        FreeSlot(PopBucketHead(b));
        continue;  // re-read the word; the bucket may just have emptied
      }
      slot = wheel_[b].head;
      bucket = b;
      break;
    }

    if (slot == kNil) {
      // Wheel exhausted; the next event (if any) lives in the far heap.
      while (!far_.empty() && NodeAt(far_.top().slot).cancelled) {
        FreeSlot(far_.top().slot);
        far_.pop();
      }
      if (far_.empty()) {
        return false;
      }
      if (has_limit && far_.top().when > limit) {
        return false;  // leave the horizon alone; rebase when we get there
      }
      RebaseAndDrain(far_.top().when);
      continue;
    }

    EventNode& node = NodeAt(slot);
    if (has_limit && node.when > limit) {
      return false;
    }
    PopBucketHead(bucket);
    now_ = std::max(now_, node.when);
    // Move the closure out and recycle the slot *before* running it: the
    // callback may schedule, cancel, or re-enter RunUntil, and none of that
    // may touch the executing node. Nothing is copied on this path.
    const NodeId owner = node.owner;
    std::function<void()> fn = std::move(node.fn);
    --live_events_;
    FreeSlot(slot);
    if (!owner.empty() && alive_check_ && !alive_check_(owner)) {
      ++skipped_dead_owner_events_;
      continue;
    }
    if (!owner.empty() && trace_hook_) {
      trace_hook_(now_, owner);
    }
    ++executed_events_;
    fn();
    return true;
  }
}

bool EventLoop::RunOne() { return PopAndRun(0, /*has_limit=*/false); }

void EventLoop::RunToCompletion() {
  while (PopAndRun(0, /*has_limit=*/false)) {
  }
}

void EventLoop::RunUntil(Time when) {
  while (PopAndRun(when, /*has_limit=*/true)) {
  }
  now_ = std::max(now_, when);
}

}  // namespace ctsim
