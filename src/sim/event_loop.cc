#include "src/sim/event_loop.h"

#include <algorithm>

#include "src/common/check.h"

namespace ctsim {

EventId EventLoop::Schedule(Time delay, std::function<void()> fn, std::string owner) {
  return ScheduleAt(now_ + delay, std::move(fn), std::move(owner));
}

EventId EventLoop::ScheduleAt(Time when, std::function<void()> fn, std::string owner) {
  CT_CHECK(when >= now_);
  Event event;
  event.when = when;
  event.seq = next_seq_++;
  event.id = next_id_++;
  event.owner = std::move(owner);
  event.fn = std::move(fn);
  EventId id = event.id;
  queue_.push(std::move(event));
  return id;
}

void EventLoop::Cancel(EventId id) { cancelled_.push_back(id); }

bool EventLoop::PopAndRun(Time limit, bool has_limit) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (has_limit && top.when > limit) {
      return false;
    }
    Event event = top;
    queue_.pop();
    if (std::find(cancelled_.begin(), cancelled_.end(), event.id) != cancelled_.end()) {
      std::erase(cancelled_, event.id);
      continue;
    }
    now_ = std::max(now_, event.when);
    if (!event.owner.empty() && alive_check_ && !alive_check_(event.owner)) {
      ++skipped_dead_owner_events_;
      continue;
    }
    if (!event.owner.empty() && trace_hook_) {
      trace_hook_(now_, event.owner);
    }
    ++executed_events_;
    event.fn();
    return true;
  }
  return false;
}

bool EventLoop::RunOne() { return PopAndRun(0, /*has_limit=*/false); }

void EventLoop::RunToCompletion() {
  while (PopAndRun(0, /*has_limit=*/false)) {
  }
}

void EventLoop::RunUntil(Time when) {
  while (PopAndRun(when, /*has_limit=*/true)) {
  }
  now_ = std::max(now_, when);
}

size_t EventLoop::pending_events() const { return queue_.size(); }

}  // namespace ctsim
