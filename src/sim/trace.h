// Event-trace record/replay.
//
// A Trace is the totally ordered list of everything the scheduler did during
// one run: message deliveries and drops, timer firings, crashes, shutdowns,
// and fault directives. Because the simulation is deterministic per seed, a
// recorded trace is a complete reproduction recipe — and replaying a run
// against its own trace is a strong oracle: the TraceRecorder in replay mode
// verifies every emitted event against the recorded one and throws
// TraceDivergence the moment execution departs from the recording (including
// when the recording is truncated or corrupted), instead of silently
// producing a different run.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ctsim {

struct TraceEvent {
  uint64_t at = 0;     // virtual ms
  std::string kind;    // "deliver", "timer", "crash", "partition", ...
  std::string detail;  // kind-specific, e.g. "node1>master nodeHeartbeat"

  bool operator==(const TraceEvent& other) const {
    return at == other.at && kind == other.kind && detail == other.detail;
  }
};

class Trace {
 public:
  void Append(TraceEvent event) { events_.push_back(std::move(event)); }
  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void Truncate(size_t n);

  // One line per event: "<at> <kind> <detail>\n".
  std::string Serialize() const;
  static Trace Parse(const std::string& text);

  // FNV-1a 64 over the serialized form.
  uint64_t Hash() const;

  std::vector<TraceEvent>* mutable_events() { return &events_; }

 private:
  std::vector<TraceEvent> events_;
};

// Thrown by replay-mode verification; never caught by the simulation's
// exception machinery (which only handles SimException), so a divergence
// always surfaces to the caller.
class TraceDivergence : public std::runtime_error {
 public:
  explicit TraceDivergence(const std::string& what) : std::runtime_error(what) {}
};

class TraceRecorder {
 public:
  // Record mode: accumulate events.
  TraceRecorder() = default;
  // Replay mode: verify each emitted event against `expected` (which must
  // outlive the recorder). Events still accumulate, so trace() is usable in
  // both modes.
  explicit TraceRecorder(const Trace* expected) : expected_(expected) {}

  bool replaying() const { return expected_ != nullptr; }
  const Trace& trace() const { return trace_; }

  void Record(uint64_t at, const char* kind, std::string detail);

  // Replay mode: throws TraceDivergence if the recording has events the run
  // never produced (a longer recording means the run diverged or the
  // recording belongs to a different run).
  void FinishReplay() const;

 private:
  Trace trace_;
  const Trace* expected_ = nullptr;
};

}  // namespace ctsim

#endif  // SRC_SIM_TRACE_H_
