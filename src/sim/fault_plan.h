// Deterministic network-fault plans.
//
// A FaultPlan describes how the simulated network misbehaves during one run:
// per-link message-drop probability, extra delivery delay, duplication,
// bounded reordering, and timed partition/heal directives. The cluster
// applies the plan at message-*schedule* time (inside Cluster::Post) using a
// dedicated RNG stream derived from the run seed, so the same ⟨seed, plan⟩
// always yields the same schedule — a network fault is as replayable as a
// crash point.
#ifndef SRC_SIM_FAULT_PLAN_H_
#define SRC_SIM_FAULT_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ctsim {

// Stochastic faults on one directed link (or, via FaultPlan::default_link,
// on every link at once).
struct LinkFault {
  double drop_probability = 0.0;       // message lost at schedule time
  uint64_t extra_delay_ms = 0;         // added to the base link latency
  double duplicate_probability = 0.0;  // a second copy is also delivered
  uint64_t reorder_window_ms = 0;      // extra uniform delay in [0, window]

  bool Inert() const {
    return drop_probability <= 0.0 && extra_delay_ms == 0 && duplicate_probability <= 0.0 &&
           reorder_window_ms == 0;
  }
};

// Isolates `group` from every node outside it during [start_ms, heal_ms):
// messages crossing the boundary in either direction are dropped. A heal is
// simply the directive expiring; nothing needs to be scheduled. With
// `one_way` set the cut is half-open: only messages *from* the group to the
// outside are dropped, while inbound traffic still arrives — the asymmetric
// failure mode where a node can hear the cluster but not answer it (its
// heartbeats vanish, so detectors declare it dead while it still acts on
// everything it receives).
struct PartitionDirective {
  uint64_t start_ms = 0;
  uint64_t heal_ms = 0;  // exclusive; heal_ms <= start_ms means "never active"
  std::vector<std::string> group;
  bool one_way = false;

  bool ActiveAt(uint64_t now) const { return now >= start_ms && now < heal_ms; }
  bool Separates(const std::string& a, const std::string& b) const {
    bool a_in = std::find(group.begin(), group.end(), a) != group.end();
    bool b_in = std::find(group.begin(), group.end(), b) != group.end();
    return a_in != b_in;
  }
  // Whether a message from → to is dropped while the directive is active.
  bool Cuts(const std::string& from, const std::string& to) const {
    bool from_in = std::find(group.begin(), group.end(), from) != group.end();
    bool to_in = std::find(group.begin(), group.end(), to) != group.end();
    return one_way ? (from_in && !to_in) : (from_in != to_in);
  }
};

struct FaultPlan {
  LinkFault default_link;
  // Directed (from, to) overrides; a listed link uses its override alone.
  std::map<std::pair<std::string, std::string>, LinkFault> links;
  std::vector<PartitionDirective> partitions;
  // Per-node timer rate in permille of nominal: 1000 is an honest clock,
  // 2000 fires every Node::After/Every timer at twice the requested delay,
  // 500 at half. A slow clock starves heartbeats and lease renewals without
  // touching the network — the "alive but declared dead" recovery trigger.
  std::map<std::string, int> timer_skew_permille;

  const LinkFault& LinkFor(const std::string& from, const std::string& to) const {
    auto it = links.find({from, to});
    return it == links.end() ? default_link : it->second;
  }

  bool Empty() const {
    return default_link.Inert() && links.empty() && partitions.empty() &&
           timer_skew_permille.empty();
  }
};

}  // namespace ctsim

#endif  // SRC_SIM_FAULT_PLAN_H_
