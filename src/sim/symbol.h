// Simulator-facing aliases for the interning layer.
//
// A NodeId names a node ("node1:42349"); a Symbol names any other interned
// identity (RPC methods, payload keys). Both are the same 4-byte token type;
// the distinct names document intent at call sites.
#ifndef SRC_SIM_SYMBOL_H_
#define SRC_SIM_SYMBOL_H_

#include "src/common/interner.h"

namespace ctsim {

using Symbol = ctcommon::Symbol;
using NodeId = ctcommon::Symbol;
using ctcommon::InternTable;
using ctcommon::SymbolIdEq;
using ctcommon::SymbolIdHash;

}  // namespace ctsim

#endif  // SRC_SIM_SYMBOL_H_
