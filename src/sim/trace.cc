#include "src/sim/trace.h"

#include <utility>

namespace ctsim {

namespace {

std::string EventLine(const TraceEvent& event) {
  return std::to_string(event.at) + " " + event.kind + " " + event.detail + "\n";
}

}  // namespace

void Trace::Truncate(size_t n) {
  if (n < events_.size()) {
    events_.resize(n);
  }
}

std::string Trace::Serialize() const {
  std::string out;
  for (const auto& event : events_) {
    out += EventLine(event);
  }
  return out;
}

Trace Trace::Parse(const std::string& text) {
  Trace trace;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) {
      eol = text.size();
    }
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) {
      continue;
    }
    size_t s1 = line.find(' ');
    if (s1 == std::string::npos) {
      throw TraceDivergence("trace parse error: malformed line \"" + line + "\"");
    }
    size_t s2 = line.find(' ', s1 + 1);
    TraceEvent event;
    event.at = std::stoull(line.substr(0, s1));
    if (s2 == std::string::npos) {
      event.kind = line.substr(s1 + 1);
    } else {
      event.kind = line.substr(s1 + 1, s2 - s1 - 1);
      event.detail = line.substr(s2 + 1);
    }
    trace.Append(std::move(event));
  }
  return trace;
}

uint64_t Trace::Hash() const {
  // FNV-1a 64-bit over the serialized form.
  uint64_t hash = 1469598103934665603ull;
  for (char c : Serialize()) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

void TraceRecorder::Record(uint64_t at, const char* kind, std::string detail) {
  TraceEvent event;
  event.at = at;
  event.kind = kind;
  event.detail = std::move(detail);
  if (expected_ != nullptr) {
    size_t index = trace_.size();
    if (index >= expected_->size()) {
      throw TraceDivergence("replay diverged at event " + std::to_string(index) +
                            ": recording exhausted (truncated trace?), run produced \"" +
                            EventLine(event) + "\"");
    }
    const TraceEvent& want = expected_->events()[index];
    if (!(want == event)) {
      throw TraceDivergence("replay diverged at event " + std::to_string(index) +
                            ": recorded \"" + EventLine(want) + "\" but run produced \"" +
                            EventLine(event) + "\"");
    }
  }
  trace_.Append(std::move(event));
}

void TraceRecorder::FinishReplay() const {
  if (expected_ != nullptr && trace_.size() < expected_->size()) {
    throw TraceDivergence("replay ended after " + std::to_string(trace_.size()) +
                          " events but the recording has " + std::to_string(expected_->size()));
  }
}

}  // namespace ctsim
