// Simulated cluster: nodes + network + shared event loop + log store.
//
// The cluster is the unit of one test run. It owns the deterministic event
// loop, delivers RPCs with fixed latency (dropping traffic to dead nodes),
// and exposes the two fault primitives the paper's trigger uses: Crash
// (abrupt kill, like the crash RPC of Fig. 7) and Shutdown (graceful leave
// via the system's shutdown script, used for pre-read points so the cluster
// learns about the departure without waiting out the failure detector).
#ifndef SRC_SIM_CLUSTER_H_
#define SRC_SIM_CLUSTER_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/logging/log_store.h"
#include "src/sim/event_loop.h"
#include "src/sim/message.h"
#include "src/sim/node.h"

namespace ctsim {

class Cluster {
 public:
  explicit Cluster(uint64_t seed);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  EventLoop& loop() { return loop_; }
  ctlog::LogStore& logs() { return logs_; }
  ctcommon::Rng& rng() { return rng_; }

  // Constructs and registers a node. T must derive from Node and take
  // (Cluster*, ...) constructor arguments.
  template <typename T, typename... Args>
  T* AddNode(Args&&... args) {
    auto node = std::make_unique<T>(this, std::forward<Args>(args)...);
    T* raw = node.get();
    RegisterNode(std::move(node));
    return raw;
  }

  Node* Find(const std::string& id) const;
  std::vector<Node*> nodes() const;
  std::vector<std::string> node_ids() const;
  // Hosts listed in the cluster "configuration file" — what log analysis uses
  // to recognize node-referencing values.
  std::vector<std::string> config_hosts() const;

  // Starts every non-deferred stopped node.
  void StartAll();
  // Starts one node (used for nodes that join the cluster mid-run).
  void StartNode(const std::string& id);

  bool IsAlive(const std::string& id) const;

  // Abrupt kill: no notifications; in-flight messages to the node are lost;
  // its timers never fire again.
  void Crash(const std::string& id);

  // Graceful stop: OnShutdown runs (sending leave notifications), then the
  // node is marked dead.
  void Shutdown(const std::string& id);

  // Network: schedules delivery after the link latency; messages to nodes
  // that are dead *at delivery time* are dropped.
  void Post(Message message);
  Time latency_ms() const { return latency_ms_; }
  void set_latency_ms(Time latency) { latency_ms_ = latency; }

  // Whole-cluster failure flag (e.g. the master aborted).
  void MarkClusterDown(const std::string& reason);
  bool cluster_down() const { return cluster_down_; }
  const std::string& cluster_down_reason() const { return cluster_down_reason_; }

  // Node whose handler is currently executing ("" between events). The
  // trigger needs this to kill the right process when the crash target is the
  // currently running node.
  const std::string& current_node() const { return current_node_; }

  // Counters for tests and reports.
  uint64_t delivered_messages() const { return delivered_messages_; }
  uint64_t dropped_messages() const { return dropped_messages_; }
  int crash_count() const { return crash_count_; }
  int shutdown_count() const { return shutdown_count_; }

 private:
  friend class Node;

  void RegisterNode(std::unique_ptr<Node> node);

  EventLoop loop_;
  ctlog::LogStore logs_;
  ctcommon::Rng rng_;
  std::map<std::string, std::unique_ptr<Node>> nodes_;
  std::vector<std::string> insertion_order_;
  Time latency_ms_ = 1;
  bool cluster_down_ = false;
  std::string cluster_down_reason_;
  std::string current_node_;
  uint64_t delivered_messages_ = 0;
  uint64_t dropped_messages_ = 0;
  int crash_count_ = 0;
  int shutdown_count_ = 0;
};

}  // namespace ctsim

#endif  // SRC_SIM_CLUSTER_H_
