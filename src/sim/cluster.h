// Simulated cluster: nodes + network + shared event loop + log store.
//
// The cluster is the unit of one test run. It owns the deterministic event
// loop, delivers RPCs with fixed latency (dropping traffic to dead nodes),
// and exposes the two fault primitives the paper's trigger uses: Crash
// (abrupt kill, like the crash RPC of Fig. 7) and Shutdown (graceful leave
// via the system's shutdown script, used for pre-read points so the cluster
// learns about the departure without waiting out the failure detector).
//
// The cluster also owns the run's intern table: every node id and RPC method
// becomes a Symbol at registration/send time, so routing, the alive check,
// and handler dispatch are integer lookups. Strings survive only at the
// model/report boundary (logs, traces, reports), byte-identical to before.
#ifndef SRC_SIM_CLUSTER_H_
#define SRC_SIM_CLUSTER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/logging/log_store.h"
#include "src/sim/event_loop.h"
#include "src/sim/fault_plan.h"
#include "src/sim/message.h"
#include "src/sim/node.h"
#include "src/sim/symbol.h"
#include "src/sim/trace.h"

namespace ctsim {

class Cluster {
 public:
  explicit Cluster(uint64_t seed);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  EventLoop& loop() { return loop_; }
  ctlog::LogStore& logs() { return logs_; }
  ctcommon::Rng& rng() { return rng_; }

  // The run's intern table. Symbols from one cluster must not be mixed with
  // another cluster's.
  Symbol Intern(const std::string& text) { return interner_.Intern(text); }
  InternTable& interner() { return interner_; }

  // Constructs and registers a node. T must derive from Node and take
  // (Cluster*, ...) constructor arguments.
  template <typename T, typename... Args>
  T* AddNode(Args&&... args) {
    auto node = std::make_unique<T>(this, std::forward<Args>(args)...);
    T* raw = node.get();
    RegisterNode(std::move(node));
    return raw;
  }

  Node* Find(const std::string& id) const;
  Node* Find(NodeId id) const {
    return id.id() < route_.size() ? route_[id.id()] : nullptr;
  }
  std::vector<Node*> nodes() const;
  std::vector<std::string> node_ids() const;
  // Hosts listed in the cluster "configuration file" — what log analysis uses
  // to recognize node-referencing values.
  std::vector<std::string> config_hosts() const;

  // Starts every non-deferred stopped node.
  void StartAll();
  // Starts one node (used for nodes that join the cluster mid-run).
  void StartNode(const std::string& id);

  bool IsAlive(const std::string& id) const;
  bool IsAlive(NodeId id) const {
    Node* node = Find(id);
    return node != nullptr && node->IsRunning();
  }

  // Abrupt kill: no notifications; in-flight messages to the node are lost;
  // its timers never fire again.
  void Crash(const std::string& id);

  // Graceful stop: OnShutdown runs (sending leave notifications), then the
  // node is marked dead.
  void Shutdown(const std::string& id);

  // Network: schedules delivery after the link latency; messages to nodes
  // that are dead *at delivery time* are dropped. Same-destination messages
  // posted back-to-back onto the same delivery tick share one loop event.
  void Post(Message message);
  // Convenience for senders outside any node (workload kick-off scripts).
  void Post(const std::string& from, const std::string& to, const std::string& method,
            std::vector<std::pair<std::string, std::string>> args = {});
  Time latency_ms() const { return latency_ms_; }
  void set_latency_ms(Time latency) { latency_ms_ = latency; }

  // Network faults. The plan's stochastic link faults and partition windows
  // are applied at message-schedule time in Post, drawing from a dedicated
  // RNG stream forked off the run seed — the workload RNG sees no extra
  // draws, so installing a plan perturbs nothing but the network.
  void InstallFaultPlan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }
  // Dynamically isolates `group` from the rest of the cluster for
  // `duration_ms` starting now (the trigger's fault-on-appearance primitive).
  // The heal is the directive expiring; no event is scheduled for it.
  void PartitionNodes(const std::vector<std::string>& group, Time duration_ms);
  // True while an active partition directive cuts traffic from → to
  // (one-way directives cut only the outbound half of the boundary).
  bool LinkCut(const std::string& from, const std::string& to) const;
  // Timer-skew: stretches (or shrinks) a delay by the plan's per-node clock
  // rate. Node::After/Every route every timer through this, so a skewed
  // node's heartbeats and sweeps drift without any network fault.
  Time SkewedDelay(const std::string& owner, Time delay) const;

  // Causal-flow observation. When a delivery hook is installed (the executor
  // does this for observed runs only), every posted message is stamped with
  // the flow id of the delivery being handled and the observer span id from
  // the origin hook, and every delivery allocates the next flow id and
  // reports ⟨id, parent flow, origin span, message⟩ to the hook. The hooks
  // must be passive: flow ids advance with deliveries on the deterministic
  // event loop, nothing here draws RNG or schedules events, and the stamps
  // stay out of every hash and trace record — so observed and unobserved
  // runs are byte-identical everywhere it counts.
  using FlowOriginHook = std::function<uint64_t()>;
  using FlowDeliveryHook =
      std::function<void(uint64_t flow_id, uint64_t parent_flow, uint64_t origin_span,
                         const Message& message)>;
  void SetFlowHooks(FlowOriginHook origin, FlowDeliveryHook delivery) {
    flow_origin_hook_ = std::move(origin);
    flow_delivery_hook_ = std::move(delivery);
  }
  bool flow_observed() const { return static_cast<bool>(flow_delivery_hook_); }
  // Flow id of the delivery currently being handled (0 between deliveries
  // or when a root context — timer, node start, shutdown — is executing).
  uint64_t current_flow() const { return current_flow_; }

  // Opens a root flow context for the duration of a scope: sends inside it
  // are causal roots, not children of whatever delivery happens to be on the
  // call stack. Node timers and lifecycle callbacks wrap themselves in one,
  // because a timer firing inside a handler's nested RunFor must not inherit
  // that handler's flow.
  class FlowRootScope {
   public:
    explicit FlowRootScope(Cluster* cluster)
        : cluster_(cluster), saved_(cluster->current_flow_) {
      cluster_->current_flow_ = 0;
    }
    ~FlowRootScope() { cluster_->current_flow_ = saved_; }
    FlowRootScope(const FlowRootScope&) = delete;
    FlowRootScope& operator=(const FlowRootScope&) = delete;

   private:
    Cluster* cluster_;
    uint64_t saved_;
  };

  // Trace record/replay. When set, every delivery, drop, timer firing, crash,
  // shutdown, start, and fault directive is recorded (or verified, in replay
  // mode). The recorder must outlive the run.
  void set_trace_recorder(TraceRecorder* recorder) { trace_ = recorder; }
  TraceRecorder* trace_recorder() const { return trace_; }

  // Whole-cluster failure flag (e.g. the master aborted).
  void MarkClusterDown(const std::string& reason);
  bool cluster_down() const { return cluster_down_; }
  const std::string& cluster_down_reason() const { return cluster_down_reason_; }

  // Node whose handler is currently executing ("" between events). The
  // trigger needs this to kill the right process when the crash target is the
  // currently running node.
  const std::string& current_node() const { return current_node_.str(); }

  // Counters for tests and reports. dropped_messages() counts only
  // dead-at-delivery drops; plan-induced drops (link faults and partitions)
  // are tallied separately in plan_dropped_messages().
  uint64_t delivered_messages() const { return delivered_messages_; }
  uint64_t dropped_messages() const { return dropped_messages_; }
  uint64_t plan_dropped_messages() const { return plan_dropped_messages_; }
  uint64_t duplicated_messages() const { return duplicated_messages_; }
  // Messages whose schedule-time delay was stretched by a link fault
  // (extra latency and/or a reorder-window draw).
  uint64_t delayed_messages() const { return delayed_messages_; }
  // Heartbeat-class messages posted (counted before any drop decision):
  // *Heartbeat RPC methods plus Cassandra's gossip round.
  uint64_t heartbeat_messages() const { return heartbeat_messages_; }
  // Partition directives installed, whether from a fault plan or dynamically
  // via PartitionNodes.
  int partition_epochs() const { return partition_epochs_; }
  int crash_count() const { return crash_count_; }
  int shutdown_count() const { return shutdown_count_; }

 private:
  friend class Node;

  // Same-link same-tick messages coalesced into one loop event. The batch is
  // owned by its delivery closure; open_batch_ is a non-owning view that is
  // severed the moment the closure starts (or the link/tick changes).
  struct DeliveryBatch {
    NodeId to;
    Time when = 0;
    uint64_t seq_mark = 0;  // loop seq right after the batch event: appending
                            // is order-safe only while nothing else was
                            // scheduled behind the batch
    size_t next = 0;        // delivery cursor (shared with the drain hook)
    std::vector<Message> messages;
  };

  void RegisterNode(std::unique_ptr<Node> node);
  void ScheduleDelivery(Message message, Time delay);
  void RunBatch(DeliveryBatch* batch);
  void DeliverNow(const Message& message);
  void TraceRecord(const char* kind, std::string detail);
  bool IsHeartbeatMethod(Symbol method);

  ctcommon::InternTable interner_;
  EventLoop loop_;
  ctlog::LogStore logs_;
  ctcommon::Rng rng_;
  ctcommon::Rng net_rng_;
  std::vector<std::unique_ptr<Node>> owned_nodes_;
  std::vector<Node*> route_;  // indexed by NodeId symbol id; nullptr gaps
  std::vector<NodeId> insertion_order_;
  // Per-method heartbeat classification, memoized by symbol id
  // (0 = unknown, 1 = heartbeat-class, 2 = not).
  std::vector<uint8_t> heartbeat_class_;
  DeliveryBatch* open_batch_ = nullptr;
  // Batches whose delivery loop is currently on the call stack (outermost
  // first). When a handler re-enters the event loop mid-batch, the loop's
  // drain hook serves the innermost batch's remaining messages before any
  // queued event, preserving the pre-batching delivery order.
  std::vector<DeliveryBatch*> in_progress_batches_;
  Time latency_ms_ = 1;
  bool cluster_down_ = false;
  std::string cluster_down_reason_;
  NodeId current_node_;
  FaultPlan plan_;
  bool has_link_faults_ = false;
  // Active partition windows: the plan's timed directives plus any installed
  // dynamically via PartitionNodes.
  std::vector<PartitionDirective> partitions_;
  TraceRecorder* trace_ = nullptr;
  FlowOriginHook flow_origin_hook_;
  FlowDeliveryHook flow_delivery_hook_;
  uint64_t current_flow_ = 0;
  uint64_t next_flow_id_ = 0;
  uint64_t delivered_messages_ = 0;
  uint64_t dropped_messages_ = 0;
  uint64_t plan_dropped_messages_ = 0;
  uint64_t duplicated_messages_ = 0;
  uint64_t delayed_messages_ = 0;
  uint64_t heartbeat_messages_ = 0;
  int partition_epochs_ = 0;
  int crash_count_ = 0;
  int shutdown_count_ = 0;
};

}  // namespace ctsim

#endif  // SRC_SIM_CLUSTER_H_
