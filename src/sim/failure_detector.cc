#include "src/sim/failure_detector.h"

#include <algorithm>

#include "src/sim/cluster.h"

namespace ctsim {

void FailureDetector::Start() {
  owner_->Every(check_period_ms_, [this] { Sweep(); });
}

NodeId FailureDetector::Lookup(const std::string& node_id) const {
  // Non-creating: a never-interned id cannot be tracked.
  return owner_->cluster().interner().Find(node_id);
}

void FailureDetector::Heartbeat(NodeId node_id) {
  last_heartbeat_[node_id.id()] = Entry{node_id, owner_->cluster().loop().Now()};
}

void FailureDetector::Heartbeat(const std::string& node_id) {
  Heartbeat(owner_->cluster().Intern(node_id));
}

void FailureDetector::Forget(NodeId node_id) { last_heartbeat_.erase(node_id.id()); }

void FailureDetector::Forget(const std::string& node_id) { Forget(Lookup(node_id)); }

void FailureDetector::NotifyLeft(NodeId node_id) {
  if (last_heartbeat_.erase(node_id.id()) > 0) {
    ++lost_count_;
    on_lost_(node_id);
  }
}

void FailureDetector::NotifyLeft(const std::string& node_id) { NotifyLeft(Lookup(node_id)); }

bool FailureDetector::IsTracked(NodeId node_id) const {
  return last_heartbeat_.count(node_id.id()) > 0;
}

bool FailureDetector::IsTracked(const std::string& node_id) const {
  return IsTracked(Lookup(node_id));
}

std::vector<std::string> FailureDetector::tracked() const {
  std::vector<std::string> out;
  out.reserve(last_heartbeat_.size());
  for (const auto& [_, entry] : last_heartbeat_) {
    out.push_back(entry.id.str());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FailureDetector::Sweep() {
  Time now = owner_->cluster().loop().Now();
  std::vector<NodeId> lost;
  for (const auto& [_, entry] : last_heartbeat_) {
    if (now - entry.last > timeout_ms_) {
      lost.push_back(entry.id);
    }
  }
  // Declare losses in string order — the iteration order of the ordered map
  // this detector used to keep, so recovery callbacks fire identically.
  std::sort(lost.begin(), lost.end());
  for (const NodeId id : lost) {
    last_heartbeat_.erase(id.id());
    ++lost_count_;
    on_lost_(id);
  }
}

}  // namespace ctsim
