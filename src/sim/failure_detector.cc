#include "src/sim/failure_detector.h"

#include "src/sim/cluster.h"

namespace ctsim {

void FailureDetector::Start() {
  owner_->Every(check_period_ms_, [this] { Sweep(); });
}

void FailureDetector::Heartbeat(const std::string& node_id) {
  last_heartbeat_[node_id] = owner_->cluster().loop().Now();
}

void FailureDetector::Forget(const std::string& node_id) { last_heartbeat_.erase(node_id); }

void FailureDetector::NotifyLeft(const std::string& node_id) {
  if (last_heartbeat_.erase(node_id) > 0) {
    ++lost_count_;
    on_lost_(node_id);
  }
}

bool FailureDetector::IsTracked(const std::string& node_id) const {
  return last_heartbeat_.count(node_id) > 0;
}

std::vector<std::string> FailureDetector::tracked() const {
  std::vector<std::string> out;
  out.reserve(last_heartbeat_.size());
  for (const auto& [id, _] : last_heartbeat_) {
    out.push_back(id);
  }
  return out;
}

void FailureDetector::Sweep() {
  Time now = owner_->cluster().loop().Now();
  std::vector<std::string> lost;
  for (const auto& [id, last] : last_heartbeat_) {
    if (now - last > timeout_ms_) {
      lost.push_back(id);
    }
  }
  for (const auto& id : lost) {
    last_heartbeat_.erase(id);
    ++lost_count_;
    on_lost_(id);
  }
}

}  // namespace ctsim
