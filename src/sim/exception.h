// Simulated Java exceptions and control-flow signals.
//
// The systems the paper tests are JVM programs; a crash-recovery bug
// typically manifests as a runtime exception (NullPointerException when a
// removed node is dereferenced, InvalidStateTransitionException from a state
// machine, IOException from a half-written file). We model them as
// SimException values thrown by mini-system code and caught at the message
// dispatch boundary, where they are logged and handed to the component's
// exception policy — exactly the observable surface the paper's oracle reads.
#ifndef SRC_SIM_EXCEPTION_H_
#define SRC_SIM_EXCEPTION_H_

#include <optional>
#include <string>
#include <utility>

namespace ctsim {

struct SimException {
  std::string type;     // e.g. "NullPointerException"
  std::string message;  // free-form detail

  SimException(std::string type_in, std::string message_in)
      : type(std::move(type_in)), message(std::move(message_in)) {}
};

// Thrown when the node executing the current handler is crashed mid-handler
// (the post-write trigger scenario): the rest of the handler must not run,
// just as the rest of a Java method does not run past kill -9.
struct NodeCrashedSignal {};

// Dereference helper for "Java reference" reads: returns the contained value
// or throws a NullPointerException, the single most common way the studied
// pre-read bugs surface (e.g. YARN-9164, Fig. 10).
template <typename T>
const T& RequireNonNull(const std::optional<T>& ref, const std::string& what) {
  if (!ref.has_value()) {
    throw SimException("NullPointerException", what);
  }
  return *ref;
}

}  // namespace ctsim

#endif  // SRC_SIM_EXCEPTION_H_
