#include "src/common/interner.h"

namespace ctcommon {

const std::string& Symbol::EmptyString() {
  static const std::string kEmpty;
  return kEmpty;
}

InternTable::InternTable() {
  // Id 0 is always the empty string, so a default-constructed Symbol is a
  // valid "absent / anonymous" token for any table.
  Intern(std::string_view());
}

Symbol InternTable::Intern(std::string_view text) {
  auto it = ids_.find(text);
  if (it != ids_.end()) {
    return Symbol(it->second, &strings_[it->second]);
  }
  const uint32_t id = static_cast<uint32_t>(strings_.size());
  strings_.emplace_back(text);
  ids_.emplace(std::string_view(strings_.back()), id);
  return Symbol(id, &strings_.back());
}

Symbol InternTable::Find(std::string_view text) const {
  auto it = ids_.find(text);
  if (it == ids_.end()) {
    return Symbol();
  }
  return Symbol(it->second, &strings_[it->second]);
}

Symbol InternTable::At(uint32_t id) const {
  if (id >= strings_.size()) {
    return Symbol();
  }
  return Symbol(id, &strings_[id]);
}

}  // namespace ctcommon
