// Lightweight invariant checking.
//
// CT_CHECK aborts the process on violated internal invariants of the tool
// itself (never used to model bugs in the systems under test — those are
// expressed with ctsim::SimException so the oracle can observe them).
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define CT_CHECK(cond)                                                               \
  do {                                                                               \
    if (!(cond)) {                                                                   \
      std::fprintf(stderr, "CT_CHECK failed at %s:%d: %s\n", __FILE__, __LINE__, #cond); \
      std::abort();                                                                  \
    }                                                                                \
  } while (0)

#define CT_CHECK_MSG(cond, msg)                                                        \
  do {                                                                                 \
    if (!(cond)) {                                                                     \
      std::fprintf(stderr, "CT_CHECK failed at %s:%d: %s (%s)\n", __FILE__, __LINE__, #cond, \
                   msg);                                                               \
      std::abort();                                                                    \
    }                                                                                  \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_
