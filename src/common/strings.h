// String utilities shared across the CrashTuner reproduction.
//
// The central piece is the brace-template formatter: logging statements carry a
// template such as "Assigned container {} on host {}" whose runtime arguments
// must be recoverable both as a concrete log instance and as a regex pattern
// ("Assigned container (.*) on host (.*)", Fig. 5b of the paper).
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ctcommon {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

// Splits and drops empty pieces.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep);

// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

// True if `text` contains `needle`.
bool Contains(std::string_view text, std::string_view needle);

// Lower-cases ASCII.
std::string ToLower(std::string_view text);

// Replaces every occurrence of `from` in `text` with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from, std::string_view to);

// Substitutes each "{}" placeholder in `tmpl` with the corresponding entry of
// `args`. Surplus placeholders are kept verbatim; surplus args are ignored.
std::string FormatBraces(std::string_view tmpl, const std::vector<std::string>& args);

// Number of "{}" placeholders in `tmpl`.
int CountPlaceholders(std::string_view tmpl);

// Splits a brace template into the literal fragments around its placeholders.
// "a {} b {} c" -> {"a ", " b ", " c"}; a template with N placeholders yields
// N+1 fragments (possibly empty).
std::vector<std::string> TemplateFragments(std::string_view tmpl);

// Attempts to parse `instance` against the brace template `tmpl`, recovering
// the values that stood in for the placeholders. Returns false on mismatch.
bool MatchTemplate(std::string_view tmpl, std::string_view instance,
                   std::vector<std::string>* values);

// Converts any value with operator<< support to a string; strings pass through.
std::string ToString(const std::string& v);
std::string ToString(const char* v);
std::string ToString(int64_t v);
std::string ToString(uint64_t v);
std::string ToString(int v);
std::string ToString(double v);

}  // namespace ctcommon

#endif  // SRC_COMMON_STRINGS_H_
