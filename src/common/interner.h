// Per-run string interning for hot-path identities.
//
// Node ids, RPC method names and payload keys are short strings that the
// simulator used to hash and compare millions of times per campaign. A
// Symbol is a 4-byte token backed by an InternTable: equality and hashing
// are integer ops, while the original string stays reachable through the
// token so the model/report boundary (logs, traces, goldens) keeps producing
// byte-identical text.
//
// Symbols are only comparable when they come from the same table. Each
// Cluster owns one table, and a cluster is the unit of one run, so the
// single-table rule holds by construction; nothing here is thread-safe, by
// design — runs never share a table across threads.
#ifndef SRC_COMMON_INTERNER_H_
#define SRC_COMMON_INTERNER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ctcommon {

class InternTable;

// Value-type token for an interned string: {dense id, pointer to the table's
// copy}. Default-constructed symbols denote the empty string (id 0, which
// every table reserves for "").
class Symbol {
 public:
  constexpr Symbol() = default;

  uint32_t id() const { return id_; }
  bool empty() const { return id_ == 0; }
  const std::string& str() const { return text_ != nullptr ? *text_ : EmptyString(); }
  const char* c_str() const { return str().c_str(); }
  size_t size() const { return str().size(); }

  // Symbols pass as strings wherever the old string-typed APIs remain (the
  // model/report boundary): the reference aliases the table's stable copy.
  operator const std::string&() const { return str(); }  // NOLINT(google-explicit-constructor)

 private:
  friend class InternTable;
  static const std::string& EmptyString();
  Symbol(uint32_t id, const std::string* text) : id_(id), text_(text) {}

  uint32_t id_ = 0;
  const std::string* text_ = nullptr;
};

// Same-table identity comparison: O(1), no character access.
inline bool operator==(Symbol a, Symbol b) { return a.id() == b.id(); }
inline bool operator!=(Symbol a, Symbol b) { return a.id() != b.id(); }
// Ordering stays *string* ordering so replacing a std::string key or sort
// with a Symbol cannot silently reorder sweeps, maps or reports.
inline bool operator<(Symbol a, Symbol b) { return a.str() < b.str(); }

// std::string's own comparison/concatenation operators are templates and do
// not deduce through Symbol's conversion; these overloads keep mixed
// expressions ("host " + m.from, id == m.to) compiling unchanged.
inline bool operator==(Symbol a, const std::string& b) { return a.str() == b; }
inline bool operator==(Symbol a, const char* b) { return a.str() == b; }
inline std::string operator+(Symbol a, const std::string& b) { return a.str() + b; }
inline std::string operator+(const std::string& a, Symbol b) { return a + b.str(); }
inline std::string operator+(Symbol a, const char* b) { return a.str() + b; }
inline std::string operator+(const char* a, Symbol b) { return a + b.str(); }

// Hash/equality functors for Symbol-keyed unordered containers. Ids are
// dense and unique per table, so the id itself is a perfect hash.
struct SymbolIdHash {
  size_t operator()(Symbol s) const { return s.id(); }
};
struct SymbolIdEq {
  bool operator()(Symbol a, Symbol b) const { return a.id() == b.id(); }
};

// Append-only intern table. Storage is a deque so interned strings never
// move; the Symbol's text pointer stays valid for the table's lifetime.
class InternTable {
 public:
  InternTable();
  InternTable(const InternTable&) = delete;
  InternTable& operator=(const InternTable&) = delete;

  // Returns the symbol for `text`, interning it on first sight.
  Symbol Intern(std::string_view text);

  // Non-creating lookup: the empty symbol when `text` was never interned
  // (indistinguishable from looking up "", which is always id 0).
  Symbol Find(std::string_view text) const;

  // The symbol for an id handed out earlier by this table.
  Symbol At(uint32_t id) const;

  size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;
  // Keys view into strings_, whose elements never move or die.
  std::unordered_map<std::string_view, uint32_t> ids_;
};

}  // namespace ctcommon

#endif  // SRC_COMMON_INTERNER_H_
