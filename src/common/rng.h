// Deterministic pseudo-random source.
//
// Every stochastic decision in the reproduction (workload shapes, random
// fault-injection schedules, sampling for the soundness probe) draws from a
// seeded Rng so that each run — and thus each reported bug — is replayable.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace ctcommon {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    std::uniform_int_distribution<uint64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t Index(uint64_t n) { return Uniform(0, n - 1); }

  // Uniform double in [0, 1).
  double Double() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  // Bernoulli draw with probability p of returning true.
  bool Chance(double p) { return Double() < p; }

  // Derives an independent child seed; used to give sub-components their own
  // streams without correlating them.
  uint64_t Fork() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ctcommon

#endif  // SRC_COMMON_RNG_H_
