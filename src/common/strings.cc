#include "src/common/strings.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ctcommon {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& piece : Split(text, sep)) {
    if (!piece.empty()) {
      out.push_back(std::move(piece));
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(pieces[i]);
  }
  return out;
}

bool Contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string ReplaceAll(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string(text);
  }
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string FormatBraces(std::string_view tmpl, const std::vector<std::string>& args) {
  std::string out;
  size_t arg = 0;
  size_t start = 0;
  while (true) {
    size_t pos = tmpl.find("{}", start);
    if (pos == std::string_view::npos || arg >= args.size()) {
      out.append(tmpl.substr(start));
      return out;
    }
    out.append(tmpl.substr(start, pos - start));
    out.append(args[arg++]);
    start = pos + 2;
  }
}

int CountPlaceholders(std::string_view tmpl) {
  int n = 0;
  size_t start = 0;
  while ((start = tmpl.find("{}", start)) != std::string_view::npos) {
    ++n;
    start += 2;
  }
  return n;
}

std::vector<std::string> TemplateFragments(std::string_view tmpl) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = tmpl.find("{}", start);
    if (pos == std::string_view::npos) {
      out.emplace_back(tmpl.substr(start));
      return out;
    }
    out.emplace_back(tmpl.substr(start, pos - start));
    start = pos + 2;
  }
}

bool MatchTemplate(std::string_view tmpl, std::string_view instance,
                   std::vector<std::string>* values) {
  std::vector<std::string> frags = TemplateFragments(tmpl);
  values->clear();
  // The instance must start with the first fragment.
  if (instance.substr(0, frags[0].size()) != frags[0]) {
    return false;
  }
  size_t pos = frags[0].size();
  for (size_t i = 1; i < frags.size(); ++i) {
    const std::string& frag = frags[i];
    size_t next;
    if (frag.empty()) {
      // A trailing empty fragment means the placeholder absorbs the rest; an
      // interior empty fragment is ambiguous and only occurs for adjacent
      // placeholders, which our logging statements never produce. Match the
      // last placeholder greedily.
      if (i + 1 != frags.size()) {
        return false;
      }
      next = instance.size();
    } else if (i + 1 == frags.size() && instance.size() >= frag.size() &&
               instance.substr(instance.size() - frag.size()) == frag) {
      // Anchor the final fragment at the end so the last value is maximal.
      next = instance.size() - frag.size();
      if (next < pos) {
        return false;
      }
    } else {
      next = instance.find(frag, pos);
      if (next == std::string_view::npos) {
        return false;
      }
    }
    values->emplace_back(instance.substr(pos, next - pos));
    pos = next + frag.size();
  }
  return pos == instance.size();
}

std::string ToString(const std::string& v) { return v; }
std::string ToString(const char* v) { return std::string(v); }
std::string ToString(int64_t v) { return std::to_string(v); }
std::string ToString(uint64_t v) { return std::to_string(v); }
std::string ToString(int v) { return std::to_string(v); }
std::string ToString(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace ctcommon
