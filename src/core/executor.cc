#include "src/core/executor.h"

#include <memory>

#include "src/common/check.h"
#include "src/obs/span.h"

namespace ctcore {

std::string RunOutcome::PrimarySymptom() const {
  if (cluster_down) {
    return "cluster down";
  }
  if (hang) {
    return "system hang";
  }
  if (failed) {
    return "job failure";
  }
  if (!uncommon_exceptions.empty()) {
    return "uncommon exception";
  }
  if (timeout_issue) {
    return "timeout";
  }
  return "ok";
}

RunOutcome Executor::Execute(WorkloadRun& run, const OracleBaseline* baseline) {
  // Route every hook the run fires to the run's own tracer: this is what lets
  // worker threads execute injection runs concurrently without sharing state.
  ctrt::ScopedRunContext bind_context(run.context());
  RunOutcome outcome;
  ctsim::Cluster& cluster = run.cluster();
  ctsim::EventLoop& loop = cluster.loop();
  const ctsim::Time start = loop.Now();
  const ctsim::Time expected = run.ExpectedDurationMs();
  const ctsim::Time timeout_deadline = start + expected * kTimeoutFactor;
  const ctsim::Time hang_deadline = start + expected * kHangFactor;

  ctobs::RunObserver* observer = &run.context().observer();
  if (observer->enabled()) {
    // Causal-flow observation: the cluster stamps posted messages with the
    // current span id and reports every delivery edge into the run's flow
    // recorder. Installed only for observed runs — with no hook the cluster
    // does no flow work at all — and passive by construction (no RNG, no
    // scheduling), so the trace hash and SystemReport never move.
    cluster.SetFlowHooks(
        [observer] { return observer->current_span_id(); },
        [observer, &loop](uint64_t flow_id, uint64_t parent_flow, uint64_t origin_span,
                          const ctsim::Message& message) {
          ctobs::FlowRecord record;
          record.id = flow_id;
          record.parent = parent_flow;
          record.origin_span = origin_span;
          record.method = message.method.str();
          record.from = message.from.str();
          record.to = message.to.str();
          record.sim_ms = loop.Now();
          observer->flows().Record(std::move(record));
        });
  }
  {
    ctobs::ScopedSpan boot(observer, &loop, "boot", "phase");
    cluster.StartAll();
  }

  bool over_timeout = false;
  {
    ctobs::ScopedSpan workload(observer, &loop, "workload", "phase");
    run.Start();
    while (!run.JobFinished() && !run.JobFailed() && !cluster.cluster_down()) {
      if (loop.Now() > hang_deadline || loop.pending_events() == 0) {
        break;
      }
      if (loop.Now() > timeout_deadline) {
        over_timeout = true;  // keep running: distinguishes timeout from hang
      }
      loop.RunOne();
    }
  }

  {
    ctobs::ScopedSpan recovery(observer, &loop, "recovery-check", "phase");
    // Grace drain: the cluster keeps running briefly after the client sees the
    // job finish, so post-completion bookkeeping (application cleanup, final
    // releases) executes and its crash points are observable.
    if (run.JobFinished() && !cluster.cluster_down()) {
      loop.RunFor(3000);
    }
  }

  outcome.virtual_duration_ms = loop.Now() - start;
  outcome.finished = run.JobFinished();
  outcome.failed = run.JobFailed();
  outcome.cluster_down = cluster.cluster_down();
  outcome.hang = !outcome.finished && !outcome.failed && !outcome.cluster_down;
  outcome.timeout_issue = outcome.finished && over_timeout;

  if (baseline != nullptr) {
    for (const auto& [type, message] : ExceptionsIn(cluster.logs())) {
      if (baseline->common_exception_types.count(type) == 0) {
        outcome.uncommon_exceptions.push_back(type + ": " + message);
      }
    }
  }

  if (observer->enabled()) {
    // Copy the simulator's native counters into the run's shard. All of these
    // are derived from virtual-time events, so the aggregated values are
    // independent of how runs were spread over worker threads.
    ctobs::MetricsShard& metrics = observer->metrics();
    metrics.Add("run.count");
    metrics.Add("events.dispatched", loop.executed_events());
    metrics.Add("events.scheduled", loop.scheduled_events());
    metrics.Add("events.cancelled", loop.cancelled_events());
    metrics.Add("events.skipped_dead_owner", loop.skipped_dead_owner_events());
    metrics.SetGauge("events.peak_pending", static_cast<int64_t>(loop.peak_pending_events()));
    metrics.SetGauge("sim.interned_symbols", static_cast<int64_t>(cluster.interner().size()));
    metrics.Add("messages.delivered", cluster.delivered_messages());
    metrics.Add("messages.dropped_dead", cluster.dropped_messages());
    metrics.Add("messages.dropped_plan", cluster.plan_dropped_messages());
    metrics.Add("messages.duplicated", cluster.duplicated_messages());
    metrics.Add("messages.delayed", cluster.delayed_messages());
    metrics.Add("messages.heartbeats", cluster.heartbeat_messages());
    metrics.Add("partition.epochs", static_cast<uint64_t>(cluster.partition_epochs()));
    metrics.Add("faults.crashes", static_cast<uint64_t>(cluster.crash_count()));
    metrics.Add("faults.shutdowns", static_cast<uint64_t>(cluster.shutdown_count()));
    metrics.SetGauge("cluster.nodes", static_cast<int64_t>(cluster.nodes().size()));
    metrics.Observe("run.virtual_ms", outcome.virtual_duration_ms);
  }
  return outcome;
}

std::vector<std::pair<std::string, std::string>> Executor::ExceptionsIn(
    const ctlog::LogStore& logs) {
  // The dispatch boundary logs exceptions through this exact statement.
  static const int kStmt = ctlog::StatementRegistry::Instance().Register(
      ctlog::Level::kError, "Uncommon exception {} : {}", "Node.dispatch");
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& instance : logs.instances()) {
    if (instance.statement_id == kStmt && instance.args.size() == 2) {
      out.emplace_back(instance.args[0], instance.args[1]);
    }
  }
  return out;
}

void Executor::AccumulateBaseline(const ctlog::LogStore& logs, OracleBaseline* baseline) {
  for (const auto& [type, message] : ExceptionsIn(logs)) {
    baseline->common_exception_types.insert(type);
  }
}

}  // namespace ctcore
