// Baseline fault-injection approaches CrashTuner is compared against (§4.2).
//
// RandomCrashInjector: profile the fault-free runtime T, then run N trials
// each crashing one randomly chosen node at a uniformly random virtual time
// in [0, T] (§4.2.1, Table 7).
//
// IoFaultInjector: enumerate dynamic IO points (call sites of public
// read*/write*/flush*/close* methods on Closeable classes, with calling
// context) and inject a crash of the executing node before and after each
// (§4.2.2, Tables 8-9).
//
// NetworkRandomInjector: the network-fault analogue of the random crash
// baseline — each trial partitions one randomly chosen node off the rest of
// the cluster at a uniformly random virtual time, healing after a uniformly
// random window. The unguided counterpart of the driver's
// InjectionMode::kNetworkFault: it shows how many blind partition trials the
// seeded message races cost without meta-info windows.
#ifndef SRC_CORE_BASELINES_H_
#define SRC_CORE_BASELINES_H_

#include <string>
#include <vector>

#include "src/core/crashtuner.h"
#include "src/core/executor.h"
#include "src/core/profiler.h"
#include "src/core/system_under_test.h"
#include "src/runtime/tracer.h"

namespace ctcore {

struct BaselineTrial {
  bool injected = false;
  int trial_index = 0;  // position in the campaign's trial order
  std::string target_node;
  RunOutcome outcome;
  // Random baseline: when/who; IO baseline: which dynamic point/side;
  // network-random baseline: when/who plus how long the cut lasted.
  ctsim::Time crash_time_ms = 0;
  ctsim::Time partition_ms = 0;
  ctrt::DynamicPoint io_point;
  bool io_before = true;
};

struct BaselineReport {
  std::string system;
  std::string approach;  // "random" / "io"
  int trials = 0;
  double virtual_hours = 0;
  std::vector<BaselineTrial> failing_trials;  // oracle-flagged
  std::vector<DetectedBug> bugs;              // triaged + deduplicated
  // IO baseline statistics (Table 8).
  int io_classes = 0;
  int io_methods = 0;
  int static_io_points = 0;
  int dynamic_io_points = 0;
};

// Both injectors fan their trials across `jobs` worker threads (campaign.h).
// Trial seeds — and for the random baseline, the pre-drawn (crash time,
// target) plans — derive from the trial index, and aggregation walks results
// in trial order, so reports are identical at any thread count.
class RandomCrashInjector {
 public:
  BaselineReport Run(const SystemUnderTest& system, int trials, uint64_t seed, int jobs = 1) const;
};

class IoFaultInjector {
 public:
  BaselineReport Run(const SystemUnderTest& system, uint64_t seed, int jobs = 1) const;
};

class NetworkRandomInjector {
 public:
  BaselineReport Run(const SystemUnderTest& system, int trials, uint64_t seed, int jobs = 1) const;
};

// Shared triage: converts failing baseline trials into deduplicated bugs
// using exception text against the system's known-bug table.
std::vector<DetectedBug> TriageBaselineBugs(const SystemUnderTest& system,
                                            const std::vector<BaselineTrial>& trials);

}  // namespace ctcore

#endif  // SRC_CORE_BASELINES_H_
