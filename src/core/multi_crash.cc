#include "src/core/multi_crash.h"

#include <map>
#include <memory>
#include <set>

#include "src/core/campaign.h"
#include "src/sim/exception.h"

namespace ctcore {

std::vector<CrashPairCandidate> EnumerateCrashPairs(const std::set<ctrt::DynamicPoint>& points,
                                                    long long max_pairs) {
  std::vector<CrashPairCandidate> pairs;
  if (max_pairs == 0) {
    return pairs;
  }
  const std::vector<ctrt::DynamicPoint> ordered(points.begin(), points.end());
  const size_t cap = max_pairs < 0 ? ordered.size() * ordered.size()
                                   : static_cast<size_t>(max_pairs);
  for (size_t i = 0; i < ordered.size() && pairs.size() < cap; ++i) {
    for (size_t j = i + 1; j < ordered.size() && pairs.size() < cap; ++j) {
      pairs.push_back({ordered[i], ordered[j]});
    }
  }
  return pairs;
}

std::vector<CrashPairCandidate> EnumerateOrderedCrashPairs(
    const std::set<ctrt::DynamicPoint>& points, long long max_pairs) {
  std::vector<CrashPairCandidate> pairs;
  if (max_pairs == 0) {
    return pairs;
  }
  const std::vector<ctrt::DynamicPoint> ordered(points.begin(), points.end());
  const size_t cap = max_pairs < 0 ? ordered.size() * ordered.size()
                                   : static_cast<size_t>(max_pairs);
  for (size_t i = 0; i < ordered.size() && pairs.size() < cap; ++i) {
    for (size_t j = 0; j < ordered.size() && pairs.size() < cap; ++j) {
      if (i == j) {
        continue;
      }
      pairs.push_back({ordered[i], ordered[j]});
    }
  }
  return pairs;
}

long long PairPartition::TotalPairs() const {
  long long total = 0;
  for (const auto& cls : classes) {
    total += cls.size;
  }
  return total;
}

std::vector<CrashPairCandidate> PairPartition::Representatives() const {
  std::vector<CrashPairCandidate> pairs;
  pairs.reserve(classes.size());
  for (const auto& cls : classes) {
    pairs.push_back(cls.representative);
  }
  return pairs;
}

PairPartition PartitionCrashPairs(const std::vector<CrashPairCandidate>& pairs,
                                  const ctanalysis::EquivalenceAnalysis& analysis) {
  PairPartition partition;
  std::map<std::string, size_t> index_by_key;
  for (const CrashPairCandidate& pair : pairs) {
    const std::string key = analysis.PairClassKey(pair.first, pair.second);
    auto [it, inserted] = index_by_key.try_emplace(key, partition.classes.size());
    if (inserted) {
      partition.classes.push_back({key, pair, 1});
    } else {
      ++partition.classes[it->second].size;
    }
  }
  return partition;
}

double PairSetCrossCheck::Recall() const {
  return profiled == 0 ? 1.0 : static_cast<double>(matched) / static_cast<double>(profiled);
}

double PairSetCrossCheck::Precision() const {
  return enumerated == 0 ? 1.0
                         : static_cast<double>(matched) / static_cast<double>(enumerated);
}

PairSetCrossCheck ComparePairSets(const std::set<ctrt::DynamicPoint>& profiled_points,
                                  const std::set<ctrt::DynamicPoint>& static_points) {
  PairSetCrossCheck check;
  const long long s = static_cast<long long>(static_points.size());
  check.enumerated = s * (s - 1) / 2;
  // Walk the profiled pairs explicitly (they are the small side) and test
  // membership in the static pair set, which needs only point membership:
  // {a, b} is statically enumerable iff both endpoints are static points.
  // Both walks are unordered, so the ratios score distinct candidates rather
  // than double-counting each one per injection order.
  for (const CrashPairCandidate& pair : EnumerateCrashPairs(profiled_points, -1)) {
    ++check.profiled;
    if (static_points.count(pair.first) > 0 && static_points.count(pair.second) > 0) {
      ++check.matched;
    } else {
      check.missed.push_back(pair);
    }
  }
  return check;
}

ctanalysis::CrashPointKind MultiCrashTester::KindOf(int point_id, std::string* location) const {
  for (const auto& point : crash_points_->points) {
    if (point.access_point_id == point_id) {
      if (location != nullptr) {
        *location = point.location;
      }
      return point.kind;
    }
  }
  return ctanalysis::CrashPointKind::kPreRead;
}

void MultiCrashTester::Inject(ctsim::Cluster& cluster, const ctlog::CustomStash& stash,
                              ctanalysis::CrashPointKind kind, const ctrt::AccessEvent& event,
                              bool* injected, std::string* target) {
  auto resolved = stash.Lookup(event.value);
  if (!resolved.has_value() || !cluster.IsAlive(*resolved)) {
    return;
  }
  *injected = true;
  *target = *resolved;
  bool killing_current = (*resolved == cluster.current_node());
  if (kind == ctanalysis::CrashPointKind::kPreRead) {
    cluster.Shutdown(*resolved);
    if (killing_current) {
      throw ctsim::NodeCrashedSignal{};
    }
    cluster.loop().RunFor(pre_read_wait_ms_);
  } else {
    cluster.Crash(*resolved);
    if (killing_current) {
      throw ctsim::NodeCrashedSignal{};
    }
  }
}

PairInjectionResult MultiCrashTester::TestPair(const ctrt::DynamicPoint& first,
                                               const ctrt::DynamicPoint& second, uint64_t seed) {
  PairInjectionResult result;
  result.first = first;
  result.second = second;
  ctanalysis::CrashPointKind first_kind = KindOf(first.point_id, &result.first_location);
  ctanalysis::CrashPointKind second_kind = KindOf(second.point_id, &result.second_location);

  auto run = system_->NewRun(system_->default_workload_size(), seed);
  ctsim::Cluster& cluster = run->cluster();

  ctlog::CustomStash stash(filter_);
  std::vector<std::unique_ptr<ctlog::LogstashAgent>> agents;
  for (const auto& node_id : cluster.node_ids()) {
    agents.push_back(std::make_unique<ctlog::LogstashAgent>(node_id, &stash));
  }
  cluster.logs().Subscribe([&agents](const ctlog::Instance& instance) {
    for (auto& agent : agents) {
      agent->OnInstance(instance);
    }
  });

  ctrt::AccessTracer& tracer = run->context().tracer();
  tracer.Reset(ctrt::TraceMode::kTrigger);
  tracer.ArmAccessTrigger(first, [&, second, second_kind](const ctrt::AccessEvent& event) {
    // Chain the second injection before delivering the first fault: if the
    // first target is the currently executing node, Inject throws and the
    // re-arm must already be in place.
    tracer.RearmAccessTrigger(second, [&, second_kind](const ctrt::AccessEvent& second_event) {
      Inject(cluster, stash, second_kind, second_event, &result.second_injected,
             &result.second_target);
    });
    Inject(cluster, stash, first_kind, event, &result.first_injected, &result.first_target);
  });

  result.outcome = Executor::Execute(*run, &baseline_);
  // The armed/re-armed trigger dies with the run's context.
  return result;
}

MultiCrashReport MultiCrashTester::TestPairs(const ProfileResult& profile,
                                             const std::vector<InjectionResult>& single_results,
                                             int max_pairs, uint64_t seed, int jobs) {
  // Enumerate the (deterministically ordered, capped) pair list up front so
  // the runs can fan out across worker threads. The shared enumerator means
  // a static-only point set feeds the quadratic phase through the very same
  // walk the profiled set does.
  return TestPairList(EnumerateCrashPairs(profile.dynamic_access_points, max_pairs),
                      single_results, seed, jobs);
}

namespace {

// Content-derived pair seed: FNV-1a over both endpoints, mixed with the base
// seed. Position-independent, so a pair runs the same simulation whether it
// sits in the exhaustive walk or alone in a representative list.
uint64_t PairSeed(uint64_t seed, const CrashPairCandidate& pair) {
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](const std::string& text) {
    for (char c : text) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
    hash ^= 0xff;
    hash *= 1099511628211ull;
  };
  mix(std::to_string(pair.first.point_id));
  mix(pair.first.stack_key);
  mix(std::to_string(pair.second.point_id));
  mix(pair.second.stack_key);
  return seed + (hash >> 1);
}

}  // namespace

MultiCrashReport MultiCrashTester::TestPairList(const std::vector<CrashPairCandidate>& pairs,
                                                const std::vector<InjectionResult>& single_results,
                                                uint64_t seed, int jobs) {
  MultiCrashReport report;
  // Failure signatures already reachable with one crash: a pair only counts
  // as "multi-only" if its signature is new.
  std::set<std::string> single_signatures;
  for (const auto& single : single_results) {
    if (single.outcome.IsBug()) {
      std::string exception = single.outcome.uncommon_exceptions.empty()
                                  ? ""
                                  : single.outcome.uncommon_exceptions.front();
      single_signatures.insert(single.outcome.PrimarySymptom() + "|" + exception);
    }
  }

  CampaignEngine engine(jobs);
  std::vector<PairInjectionResult> results =
      engine.Map(static_cast<int>(pairs.size()), [&](int i) {
        const CrashPairCandidate& task = pairs[static_cast<size_t>(i)];
        return TestPair(task.first, task.second, PairSeed(seed, task));
      });

  // Aggregate in pair order: double summation and report rows come out the
  // same at any thread count.
  for (const PairInjectionResult& result : results) {
    ++report.pairs_tested;
    report.virtual_hours +=
        static_cast<double>(result.outcome.virtual_duration_ms) / 3'600'000.0;
    if (!result.outcome.IsBug()) {
      continue;
    }
    report.failing.push_back(result);
    std::string exception = result.outcome.uncommon_exceptions.empty()
                                ? ""
                                : result.outcome.uncommon_exceptions.front();
    if (single_signatures.count(result.outcome.PrimarySymptom() + "|" + exception) == 0) {
      report.multi_only.push_back(result);
    }
  }
  return report;
}

}  // namespace ctcore
