#include "src/core/multi_crash.h"

#include <map>
#include <memory>
#include <set>

#include "src/sim/exception.h"

namespace ctcore {

ctanalysis::CrashPointKind MultiCrashTester::KindOf(int point_id, std::string* location) const {
  for (const auto& point : crash_points_->points) {
    if (point.access_point_id == point_id) {
      if (location != nullptr) {
        *location = point.location;
      }
      return point.kind;
    }
  }
  return ctanalysis::CrashPointKind::kPreRead;
}

void MultiCrashTester::Inject(ctsim::Cluster& cluster, const ctlog::CustomStash& stash,
                              ctanalysis::CrashPointKind kind, const ctrt::AccessEvent& event,
                              bool* injected, std::string* target) {
  auto resolved = stash.Lookup(event.value);
  if (!resolved.has_value() || !cluster.IsAlive(*resolved)) {
    return;
  }
  *injected = true;
  *target = *resolved;
  bool killing_current = (*resolved == cluster.current_node());
  if (kind == ctanalysis::CrashPointKind::kPreRead) {
    cluster.Shutdown(*resolved);
    if (killing_current) {
      throw ctsim::NodeCrashedSignal{};
    }
    cluster.loop().RunFor(pre_read_wait_ms_);
  } else {
    cluster.Crash(*resolved);
    if (killing_current) {
      throw ctsim::NodeCrashedSignal{};
    }
  }
}

PairInjectionResult MultiCrashTester::TestPair(const ctrt::DynamicPoint& first,
                                               const ctrt::DynamicPoint& second, uint64_t seed) {
  PairInjectionResult result;
  result.first = first;
  result.second = second;
  ctanalysis::CrashPointKind first_kind = KindOf(first.point_id, &result.first_location);
  ctanalysis::CrashPointKind second_kind = KindOf(second.point_id, &result.second_location);

  auto run = system_->NewRun(system_->default_workload_size(), seed);
  ctsim::Cluster& cluster = run->cluster();

  ctlog::CustomStash stash(filter_);
  std::vector<std::unique_ptr<ctlog::LogstashAgent>> agents;
  for (const auto& node_id : cluster.node_ids()) {
    agents.push_back(std::make_unique<ctlog::LogstashAgent>(node_id, &stash));
  }
  cluster.logs().Subscribe([&agents](const ctlog::Instance& instance) {
    for (auto& agent : agents) {
      agent->OnInstance(instance);
    }
  });

  ctrt::AccessTracer& tracer = ctrt::AccessTracer::Instance();
  tracer.Reset(ctrt::TraceMode::kTrigger);
  tracer.ArmAccessTrigger(first, [&, second, second_kind](const ctrt::AccessEvent& event) {
    // Chain the second injection before delivering the first fault: if the
    // first target is the currently executing node, Inject throws and the
    // re-arm must already be in place.
    tracer.RearmAccessTrigger(second, [&, second_kind](const ctrt::AccessEvent& second_event) {
      Inject(cluster, stash, second_kind, second_event, &result.second_injected,
             &result.second_target);
    });
    Inject(cluster, stash, first_kind, event, &result.first_injected, &result.first_target);
  });

  result.outcome = Executor::Execute(*run, &baseline_);
  tracer.Reset(ctrt::TraceMode::kOff);
  return result;
}

MultiCrashReport MultiCrashTester::TestPairs(const ProfileResult& profile,
                                             const std::vector<InjectionResult>& single_results,
                                             int max_pairs, uint64_t seed) {
  MultiCrashReport report;
  // Failure signatures already reachable with one crash: a pair only counts
  // as "multi-only" if its signature is new.
  std::set<std::string> single_signatures;
  for (const auto& single : single_results) {
    if (single.outcome.IsBug()) {
      std::string exception = single.outcome.uncommon_exceptions.empty()
                                  ? ""
                                  : single.outcome.uncommon_exceptions.front();
      single_signatures.insert(single.outcome.PrimarySymptom() + "|" + exception);
    }
  }

  std::vector<ctrt::DynamicPoint> points(profile.dynamic_access_points.begin(),
                                         profile.dynamic_access_points.end());
  uint64_t trial = 0;
  for (size_t i = 0; i < points.size() && report.pairs_tested < max_pairs; ++i) {
    for (size_t j = 0; j < points.size() && report.pairs_tested < max_pairs; ++j) {
      if (i == j) {
        continue;
      }
      PairInjectionResult result = TestPair(points[i], points[j], seed + 31ull * ++trial);
      ++report.pairs_tested;
      report.virtual_hours +=
          static_cast<double>(result.outcome.virtual_duration_ms) / 3'600'000.0;
      if (!result.outcome.IsBug()) {
        continue;
      }
      report.failing.push_back(result);
      std::string exception = result.outcome.uncommon_exceptions.empty()
                                  ? ""
                                  : result.outcome.uncommon_exceptions.front();
      if (single_signatures.count(result.outcome.PrimarySymptom() + "|" + exception) == 0) {
        report.multi_only.push_back(result);
      }
    }
  }
  return report;
}

}  // namespace ctcore
