// Parallel injection-campaign engine.
//
// Phase 2 runs one independent deterministic simulation per dynamic crash
// point (and the baselines/multi-crash extensions run one per trial/pair), so
// once runtime state is per-run (run_context.h) the campaign is embarrassingly
// parallel. CampaignEngine::Map fans indexed tasks across a fixed worker pool
// and collects results *by index*, so the output is byte-identical at any
// thread count: every task derives its seed from its index, and aggregation
// happens in index order after the pool drains.
#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ctcore {

// Resolves a jobs knob: values >= 1 are taken as-is; 0 and negatives mean
// "one worker per hardware thread".
int ResolveJobs(int jobs);

class CampaignEngine {
 public:
  explicit CampaignEngine(int jobs) : jobs_(ResolveJobs(jobs)) {}

  int jobs() const { return jobs_; }

  // Runs fn(0) .. fn(n-1), fanning across up to jobs() worker threads, and
  // returns the results indexed by task — independent of which worker ran
  // what. fn must be safe to call concurrently from several threads; its
  // result type must be default-constructible. The first exception a task
  // throws is rethrown here after the pool drains.
  template <typename Fn>
  auto Map(int n, Fn&& fn) -> std::vector<std::invoke_result_t<Fn&, int>> {
    using Result = std::invoke_result_t<Fn&, int>;
    std::vector<Result> results(static_cast<size_t>(std::max(n, 0)));
    if (n <= 0) {
      return results;
    }
    const int workers = std::min(jobs_, n);
    if (workers <= 1) {
      for (int i = 0; i < n; ++i) {
        results[static_cast<size_t>(i)] = fn(i);
      }
      return results;
    }

    PrepareSharedState();
    std::atomic<int> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mu;
    auto worker = [&] {
      for (;;) {
        const int i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n || failed.load(std::memory_order_relaxed)) {
          return;
        }
        try {
          results[static_cast<size_t>(i)] = fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (error == nullptr) {
            error = std::current_exception();
          }
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back(worker);
    }
    for (std::thread& thread : pool) {
      thread.join();
    }
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
    return results;
  }

 private:
  // Quiesces process-wide shared state before threads exist: freezes the
  // statement registry so in-run lookups of already-known statements are
  // lock-free.
  static void PrepareSharedState();

  int jobs_;
};

}  // namespace ctcore

#endif  // SRC_CORE_CAMPAIGN_H_
