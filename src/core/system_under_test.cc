#include "src/core/system_under_test.h"

namespace ctcore {

std::unique_ptr<WorkloadRun> SystemUnderTest::NewRun(int workload_size, uint64_t seed,
                                                     const ContextPrepare& prepare) const {
  auto context = std::make_unique<ctrt::RunContext>();
  if (prepare) {
    prepare(*context);
  }
  // Bind during construction: hooks fired while the deployment is being built
  // land in the run's own tracer, not in whatever context the calling thread
  // happened to carry.
  ctrt::ScopedRunContext bind(*context);
  std::unique_ptr<WorkloadRun> run = MakeRun(workload_size, seed);
  run->context_ = std::move(context);
  return run;
}

}  // namespace ctcore
