#include "src/core/crashtuner.h"

#include <chrono>
#include <map>
#include <memory>

#include "src/analysis/equivalence.h"
#include "src/common/strings.h"
#include "src/core/campaign.h"
#include "src/obs/observer.h"
#include "src/obs/span.h"

namespace ctcore {

int SystemReport::InjectionsWithFault() const {
  int count = 0;
  for (const auto& injection : injections) {
    if (injection.injected) {
      ++count;
    }
  }
  return count;
}

std::vector<DetectedBug> TriageBugs(const SystemUnderTest& system,
                                    const std::vector<InjectionResult>& injections) {
  const std::vector<KnownBug> known = system.known_bugs();

  // Deduplicate at issue granularity: same static location + same primary
  // symptom + same first uncommon exception.
  std::map<std::string, DetectedBug> by_signature;
  for (const auto& injection : injections) {
    if (!injection.injected || !injection.outcome.IsBug()) {
      continue;
    }
    // Triage before dedup: the signature of an injection that reproduces a
    // known issue is the issue id, so several dynamic points exposing the
    // same root cause collapse into one row (the "(2)" entries of Table 5).
    // First pass matches crash-point location + failure; the fallback pass
    // matches the failure alone (a crash at one point can surface a bug whose
    // window lives elsewhere).
    const ctcore::KnownBug* matched = nullptr;
    auto exceptions_match = [&](const ctcore::KnownBug& candidate) {
      if (candidate.exception_substr.empty() ||
          candidate.exception_substr == injection.outcome.PrimarySymptom()) {
        return true;
      }
      for (const auto& exception : injection.outcome.uncommon_exceptions) {
        if (ctcommon::Contains(exception, candidate.exception_substr)) {
          return true;
        }
      }
      return false;
    };
    for (const auto& candidate : known) {
      if (candidate.location_substr.empty() ||
          !ctcommon::Contains(injection.location, candidate.location_substr)) {
        continue;
      }
      if (exceptions_match(candidate)) {
        matched = &candidate;
        break;
      }
    }
    if (matched == nullptr && !injection.outcome.uncommon_exceptions.empty()) {
      for (const auto& candidate : known) {
        if (!candidate.exception_substr.empty() && exceptions_match(candidate)) {
          matched = &candidate;
          break;
        }
      }
    }
    std::string signature =
        matched != nullptr
            ? matched->bug_id
            : injection.location + "|" + injection.outcome.PrimarySymptom();
    auto [it, inserted] = by_signature.try_emplace(signature);
    DetectedBug& bug = it->second;
    if (inserted) {
      bug.location = injection.location;
      bug.scenario =
          injection.mode == InjectionMode::kNetworkFault
              ? "network-fault"
              : (injection.kind == ctanalysis::CrashPointKind::kPreRead ? "pre-read"
                                                                        : "post-write");
      bug.symptom = injection.outcome.PrimarySymptom();
      bug.sample_outcome = injection.outcome;
      if (matched != nullptr) {
        bug.bug_id = matched->bug_id;
        bug.priority = matched->priority;
        bug.status = matched->status;
        bug.symptom = matched->symptom;
        bug.metainfo = matched->metainfo;
        bug.scenario = matched->scenario;
      } else {
        bug.bug_id = "NEW-" + injection.location;
        bug.priority = "Unknown";
        bug.status = "Unreported";
      }
    }
    bug.exposing_points.push_back(injection.point);
  }

  std::vector<DetectedBug> bugs;
  bugs.reserve(by_signature.size());
  for (auto& [signature, bug] : by_signature) {
    bugs.push_back(std::move(bug));
  }
  return bugs;
}

SystemReport CrashTunerDriver::Run(const SystemUnderTest& system,
                                   const DriverOptions& options) const {
  SystemReport report;
  report.system = system.name();
  const ctmodel::ProgramModel& model = system.model();

  auto wall_start = std::chrono::steady_clock::now();

  // Driver-level phase spans are wall-only (no event loop at this level);
  // they land on the observer's Chrome-trace "driver" thread.
  ctobs::RunObserver* driver_obs =
      options.observer != nullptr ? &options.observer->driver_observer() : nullptr;
  auto driver_span = std::make_unique<ctobs::ScopedSpan>(driver_obs, nullptr, "analysis", "driver");

  // --- Phase 1a: collect logs with an uninstrumented run. -------------------
  // The run's own tracer starts in kOff; no global reset needed.
  auto log_run = system.NewRun(system.default_workload_size(), options.seed);
  Executor::Execute(*log_run, /*baseline=*/nullptr);
  std::vector<ctlog::Instance> run_logs = log_run->cluster().logs().instances();
  std::vector<std::string> hosts = log_run->cluster().config_hosts();
  log_run.reset();

  // --- Phase 1b: offline analyses. ------------------------------------------
  ctanalysis::LogAnalysis log_analysis(&model, hosts);
  report.log_result = log_analysis.Analyze(run_logs);

  ctanalysis::MetaInfoInference inference(&model);
  std::set<std::string> seed_types = report.log_result.seed_types;
  seed_types.insert(options.annotated_seed_types.begin(), options.annotated_seed_types.end());
  std::set<std::string> seed_fields = report.log_result.seed_fields;
  seed_fields.insert(options.annotated_seed_fields.begin(), options.annotated_seed_fields.end());
  report.metainfo = inference.Infer(seed_types, seed_fields);

  const bool static_mode = options.context_mode != ContextMode::kProfiled;
  ctanalysis::CrashPointOptions crash_point_options = options.crash_point_options;
  if (static_mode) {
    crash_point_options.prune_statically_unreachable = true;
  }
  ctanalysis::CrashPointAnalysis crash_analysis(&model, &report.metainfo);
  report.crash_points = crash_analysis.Identify(crash_point_options);

  report.analysis_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  driver_span.reset();  // close "analysis" before "profile" opens: spans on
                        // the driver thread must not overlap
  driver_span = std::make_unique<ctobs::ScopedSpan>(driver_obs, nullptr, "profile", "driver");

  // --- Phase 1c: dynamic crash points (profiled or enumerated). -------------
  Profiler profiler;
  switch (options.context_mode) {
    case ContextMode::kProfiled:
      report.profile =
          profiler.Profile(system, report.crash_points.PointIds(), /*io_points=*/{}, options.seed);
      break;
    case ContextMode::kStaticSeeded:
      // One instrumented run: its observations feed the cross-check below.
      report.profile = profiler.Profile(system, report.crash_points.PointIds(), /*io_points=*/{},
                                        options.seed, /*max_iterations=*/1);
      break;
    case ContextMode::kStaticOnly:
      // No instrumentation at all; the run supplies baseline/duration/logs.
      report.profile = profiler.Profile(system, /*access_points=*/{}, /*io_points=*/{},
                                        options.seed, /*max_iterations=*/1);
      break;
  }
  if (static_mode) {
    ctanalysis::CallGraph graph(model);
    ctanalysis::ContextEnumeration enumeration(&graph);
    ctanalysis::StaticContextResult contexts = enumeration.EnumerateAll(
        options.static_context_depth, options.prune_infeasible_contexts);
    report.context_check =
        ctanalysis::CompareWithProfile(contexts, report.profile.dynamic_access_points);
    std::set<ctrt::DynamicPoint> static_points;
    for (int id : report.crash_points.PointIds()) {
      const ctmodel::AccessPointDecl& point = model.access_point(id);
      if (!point.executable) {
        continue;  // catalog-only candidates carry no runtime hook to arm
      }
      auto it = contexts.contexts_by_point.find(id);
      if (it == contexts.contexts_by_point.end()) {
        if (contexts.unreachable_points.count(id) > 0) {
          ++report.static_unreachable_points;
        } else if (contexts.infeasible_points.count(id) > 0) {
          ++report.static_infeasible_points;
        }
        continue;
      }
      for (const std::string& key : it->second) {
        static_points.insert({id, key});
      }
    }
    report.static_contexts = static_cast<int>(static_points.size());
    report.static_pruned_call_strings = contexts.pruned_call_strings;
    report.profile.dynamic_access_points = std::move(static_points);
  }
  report.profile_virtual_seconds =
      static_cast<double>(report.profile.normal_duration_ms) * report.profile.iterations / 1000.0;

  // --- Phase 1d: equivalence partitioning (representative selection). -------
  // Purely static — computed from the model, the inference result and the
  // enumerated call strings, before any injection run launches.
  ctanalysis::EquivalenceAnalysis equivalence_analysis(&model, &report.metainfo);
  ctanalysis::EquivalencePartition partition;
  if (options.injection_selection != InjectionSelection::kExhaustive) {
    partition = equivalence_analysis.PartitionPoints(report.profile.dynamic_access_points);
    report.equivalence.active = true;
    report.equivalence.classes = partition.NumClasses();
    report.equivalence.members = partition.TotalMembers();
    for (const auto& cls : partition.classes) {
      report.equivalence.class_sizes.push_back(static_cast<int>(cls.members.size()));
    }
  }
  ProfileResult injection_profile = report.profile;
  if (options.injection_selection == InjectionSelection::kRepresentative) {
    injection_profile.dynamic_access_points = partition.Representatives();
  }

  // --- Phase 2: fault-injection testing. -------------------------------------
  ctlog::OnlineFilter filter = log_analysis.MakeOnlineFilter(report.log_result);
  FaultInjectionTester tester(&system, &report.crash_points, filter, report.profile.baseline,
                              report.profile.normal_duration_ms, options.pre_read_wait_ms);
  tester.set_injection_mode(options.injection_mode);
  if (options.injection_mode == InjectionMode::kNetworkFault) {
    std::map<int, ctsim::Time> windows;
    for (const auto& window : model.network_fault_windows()) {
      windows[window.point] = static_cast<ctsim::Time>(window.partition_ms);
    }
    tester.ConfigureNetworkWindows(std::move(windows), options.network_partition_ms);
  }
  tester.set_record_store(options.record_traces);
  tester.set_replay_store(options.replay_traces);
  tester.set_observer(options.observer);
  driver_span.reset();
  driver_span = std::make_unique<ctobs::ScopedSpan>(driver_obs, nullptr, "campaign", "driver");
  auto test_wall_start = std::chrono::steady_clock::now();
  report.injections = tester.TestAll(injection_profile, options.seed + 1000, options.jobs);
  report.test_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - test_wall_start).count();
  report.test_virtual_hours = static_cast<double>(tester.total_virtual_ms()) / 3'600'000.0;
  driver_span.reset();
  if (options.observer != nullptr) {
    options.observer->set_system(report.system);
    options.observer->set_jobs(ResolveJobs(options.jobs));
    options.observer->set_campaign_wall_seconds(report.test_wall_seconds);
  }
  if (report.equivalence.active) {
    report.equivalence.injected = static_cast<int>(report.injections.size());
  }
  if (options.injection_selection == InjectionSelection::kValidateRepresentative) {
    // Per-class report equivalence over the exhaustive campaign: every bug
    // signature a class member produced must also be produced by the class
    // representative, or injecting only the representative would have lost
    // it. Signatures use the triage granularity (symptom + first uncommon
    // exception) — the same notion TriageBugs dedups on.
    std::map<std::string, const InjectionResult*> injections_by_key;
    for (const auto& injection : report.injections) {
      injections_by_key[std::to_string(injection.point.point_id) + "\x1f" +
                        injection.point.stack_key] = &injection;
    }
    auto signature_of = [](const InjectionResult* injection) -> std::string {
      if (injection == nullptr || !injection->injected || !injection->outcome.IsBug()) {
        return "";
      }
      const std::string exception = injection->outcome.uncommon_exceptions.empty()
                                        ? ""
                                        : injection->outcome.uncommon_exceptions.front();
      return injection->outcome.PrimarySymptom() + "|" + exception;
    };
    auto lookup = [&](const ctrt::DynamicPoint& point) -> const InjectionResult* {
      auto it = injections_by_key.find(std::to_string(point.point_id) + "\x1f" + point.stack_key);
      return it == injections_by_key.end() ? nullptr : it->second;
    };
    for (const auto& cls : partition.classes) {
      const std::string representative_signature = signature_of(lookup(cls.representative()));
      bool mismatched = false;
      for (const auto& member : cls.members) {
        const std::string member_signature = signature_of(lookup(member));
        if (!member_signature.empty() && member_signature != representative_signature) {
          mismatched = true;
          break;
        }
      }
      if (mismatched) {
        ++report.equivalence.validation_mismatches;
        report.equivalence.mismatched_class_keys.push_back(cls.key);
      }
    }
  }

  // --- Reporting. ------------------------------------------------------------
  report.total_types = model.NumTypes();
  report.total_fields = model.NumFields();
  report.total_access_points = model.NumAccessPoints();
  report.metainfo_types = report.metainfo.NumTypes();
  report.metainfo_fields = report.metainfo.NumFields();
  report.metainfo_access_points = report.crash_points.metainfo_access_points;
  report.static_crash_points = static_cast<int>(report.crash_points.points.size());
  report.dynamic_crash_points = static_cast<int>(report.profile.dynamic_access_points.size());
  report.pruned_constructor = report.crash_points.pruned_constructor;
  report.pruned_unused = report.crash_points.pruned_unused;
  report.pruned_sanity_checked = report.crash_points.pruned_sanity_checked;

  // Campaign fingerprint: FNV-1a mix of the per-run trace hashes in
  // injection (index) order, so it is jobs-count independent like everything
  // else in the report.
  uint64_t combined = 1469598103934665603ull;
  for (const auto& injection : report.injections) {
    for (int shift = 0; shift < 64; shift += 8) {
      combined ^= (injection.trace_hash >> shift) & 0xffull;
      combined *= 1099511628211ull;
    }
  }
  report.trace_hash = report.injections.empty() ? 0 : combined;

  report.bugs = TriageBugs(system, report.injections);
  for (const auto& injection : report.injections) {
    if (injection.injected && !injection.outcome.IsBug() && injection.outcome.timeout_issue) {
      report.timeout_issues.push_back(injection);
    }
  }
  return report;
}

}  // namespace ctcore
