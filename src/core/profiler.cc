#include "src/core/profiler.h"

namespace ctcore {

ProfileResult Profiler::Profile(const SystemUnderTest& system, const std::set<int>& access_points,
                                const std::set<int>& io_points, uint64_t seed,
                                int max_iterations) const {
  ProfileResult result;

  if (max_iterations < 1) {
    max_iterations = 1;
  }
  // With nothing to instrument (the static-only mode) the run is a plain
  // observation run: the tracer stays kOff and no profiling work happens.
  const bool instrument = !access_points.empty() || !io_points.empty();
  int size = system.default_workload_size();
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    // Prepare the run's own tracer before construction so hooks fired while
    // the deployment is built are already profiled.
    auto run = system.NewRun(size, seed + static_cast<uint64_t>(iteration),
                             [&](ctrt::RunContext& context) {
                               if (!instrument) {
                                 return;
                               }
                               context.tracer().Reset(ctrt::TraceMode::kProfile);
                               context.tracer().SetProfiledPoints(access_points, io_points);
                             });
    ctrt::AccessTracer& tracer = run->context().tracer();
    RunOutcome outcome = Executor::Execute(*run, /*baseline=*/nullptr);
    Executor::AccumulateBaseline(run->cluster().logs(), &result.baseline);
    ++result.iterations;
    if (instrument) {
      ++result.instrumented_runs;
    }

    if (iteration == 0) {
      result.normal_duration_ms = outcome.virtual_duration_ms;
      result.default_run_logs = run->cluster().logs().instances();
    }

    size_t before =
        result.dynamic_access_points.size() + result.dynamic_io_points.size();
    for (const auto& [point, hits] : tracer.dynamic_access_points()) {
      result.dynamic_access_points.insert(point);
    }
    for (const auto& [point, hits] : tracer.dynamic_io_points()) {
      result.dynamic_io_points.insert(point);
    }
    size_t after = result.dynamic_access_points.size() + result.dynamic_io_points.size();
    if (iteration > 0 && after == before) {
      break;  // Fixpoint: doubling the workload found nothing new.
    }
    size *= 2;
  }

  return result;
}

}  // namespace ctcore
