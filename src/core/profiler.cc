#include "src/core/profiler.h"

namespace ctcore {

ProfileResult Profiler::Profile(const SystemUnderTest& system, const std::set<int>& access_points,
                                const std::set<int>& io_points, uint64_t seed,
                                int max_iterations) const {
  ProfileResult result;
  ctrt::AccessTracer& tracer = ctrt::AccessTracer::Instance();

  if (max_iterations < 1) {
    max_iterations = 1;
  }
  int size = system.default_workload_size();
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    tracer.Reset(ctrt::TraceMode::kProfile);
    tracer.SetProfiledPoints(access_points, io_points);

    auto run = system.NewRun(size, seed + static_cast<uint64_t>(iteration));
    RunOutcome outcome = Executor::Execute(*run, /*baseline=*/nullptr);
    Executor::AccumulateBaseline(run->cluster().logs(), &result.baseline);
    ++result.iterations;

    if (iteration == 0) {
      result.normal_duration_ms = outcome.virtual_duration_ms;
      result.default_run_logs = run->cluster().logs().instances();
    }

    size_t before =
        result.dynamic_access_points.size() + result.dynamic_io_points.size();
    for (const auto& [point, hits] : tracer.dynamic_access_points()) {
      result.dynamic_access_points.insert(point);
    }
    for (const auto& [point, hits] : tracer.dynamic_io_points()) {
      result.dynamic_io_points.insert(point);
    }
    size_t after = result.dynamic_access_points.size() + result.dynamic_io_points.size();
    if (iteration > 0 && after == before) {
      break;  // Fixpoint: doubling the workload found nothing new.
    }
    size *= 2;
  }

  tracer.Reset(ctrt::TraceMode::kOff);
  return result;
}

}  // namespace ctcore
