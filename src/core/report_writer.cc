#include "src/core/report_writer.h"

#include <sstream>

namespace ctcore {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string TraceHashHex(uint64_t hash) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

}  // namespace

std::string ReportToMarkdown(const SystemReport& report) {
  std::ostringstream out;
  out << "# CrashTuner report — " << report.system << "\n\n";
  out << "## Analysis\n\n";
  out << "| metric | total | meta-info |\n|---|---|---|\n";
  out << "| types | " << report.total_types << " | " << report.metainfo_types << " |\n";
  out << "| fields | " << report.total_fields << " | " << report.metainfo_fields << " |\n";
  out << "| access points | " << report.total_access_points << " | "
      << report.metainfo_access_points << " |\n\n";
  out << "Static crash points: " << report.static_crash_points
      << " (pruned: " << report.pruned_constructor << " constructor-only, "
      << report.pruned_unused << " unused, " << report.pruned_sanity_checked
      << " sanity-checked). Dynamic crash points: " << report.dynamic_crash_points << ".\n\n";
  if (report.static_contexts > 0) {
    out << "Static contexts in use: " << report.static_contexts << " ("
        << report.static_unreachable_points << " points unreachable, "
        << report.static_infeasible_points << " infeasible, "
        << report.static_pruned_call_strings << " call strings pruned).\n\n";
  }
  if (report.equivalence.active) {
    out << "Equivalence partition: " << report.equivalence.classes << " classes over "
        << report.equivalence.members << " dynamic points, " << report.equivalence.injected
        << " injected";
    if (report.equivalence.validation_mismatches > 0) {
      out << ", " << report.equivalence.validation_mismatches << " validation mismatch(es)";
    }
    out << ".\n\n";
  }
  if (report.fuzz.active) {
    out << "Workload fuzzing: " << report.fuzz.runs << " runs, corpus " << report.fuzz.corpus_size
        << ", coverage " << report.fuzz.coverage_pairs << " pairs (" << report.fuzz.baseline_pairs
        << " from the fixed script, " << report.fuzz.new_pairs << " fuzz-only), "
        << report.fuzz.bug_runs << " bug run(s). Fuzz trace hash: "
        << TraceHashHex(report.fuzz.trace_hash) << ".\n\n";
  }
  out << "Times: analysis " << report.analysis_wall_seconds << " s wall, profiling "
      << report.profile_virtual_seconds << " virtual s, testing " << report.test_virtual_hours
      << " virtual h (" << report.test_wall_seconds << " s wall).\n\n";
  out << "Campaign trace hash: " << TraceHashHex(report.trace_hash) << ".\n\n";
  out << "## Detected bugs\n\n";
  if (report.bugs.empty()) {
    out << "None.\n";
  } else {
    out << "| id | priority | scenario | symptom | crash point | exposing points |\n";
    out << "|---|---|---|---|---|---|\n";
    for (const auto& bug : report.bugs) {
      out << "| " << bug.bug_id << " | " << bug.priority << " | " << bug.scenario << " | "
          << bug.symptom << " | `" << bug.location << "` | " << bug.exposing_points.size()
          << " |\n";
    }
  }
  out << "\n## Timeout issues\n\n";
  if (report.timeout_issues.empty()) {
    out << "None.\n";
  } else {
    for (const auto& issue : report.timeout_issues) {
      out << "- `" << issue.location << "` finished in "
          << issue.outcome.virtual_duration_ms / 1000 << " s (slow but alive)\n";
    }
  }
  return out.str();
}

std::string ReportToJson(const SystemReport& report) {
  std::ostringstream out;
  out << "{";
  out << "\"system\":\"" << JsonEscape(report.system) << "\",";
  out << "\"totals\":{\"types\":" << report.total_types << ",\"fields\":" << report.total_fields
      << ",\"access_points\":" << report.total_access_points << "},";
  out << "\"metainfo\":{\"types\":" << report.metainfo_types
      << ",\"fields\":" << report.metainfo_fields
      << ",\"access_points\":" << report.metainfo_access_points << "},";
  out << "\"crash_points\":{\"static\":" << report.static_crash_points
      << ",\"dynamic\":" << report.dynamic_crash_points << "},";
  out << "\"pruned\":{\"constructor\":" << report.pruned_constructor
      << ",\"unused\":" << report.pruned_unused
      << ",\"sanity_checked\":" << report.pruned_sanity_checked << "},";
  out << "\"static_analysis\":{\"contexts\":" << report.static_contexts
      << ",\"unreachable_points\":" << report.static_unreachable_points
      << ",\"infeasible_points\":" << report.static_infeasible_points
      << ",\"pruned_call_strings\":" << report.static_pruned_call_strings << "},";
  out << "\"profile\":{\"iterations\":" << report.profile.iterations
      << ",\"instrumented_runs\":" << report.profile.instrumented_runs
      << ",\"dynamic_points\":" << report.profile.dynamic_access_points.size() << "},";
  out << "\"times\":{\"analysis_wall_s\":" << report.analysis_wall_seconds
      << ",\"test_wall_s\":" << report.test_wall_seconds
      << ",\"profile_virtual_s\":" << report.profile_virtual_seconds
      << ",\"test_virtual_h\":" << report.test_virtual_hours << "},";
  out << "\"trace_hash\":\"" << TraceHashHex(report.trace_hash) << "\",";
  // Emitted only for representative/validation campaigns: exhaustive reports
  // (and their checked-in goldens) serialize exactly as before.
  if (report.equivalence.active) {
    out << "\"equivalence\":{\"classes\":" << report.equivalence.classes
        << ",\"members\":" << report.equivalence.members
        << ",\"injected\":" << report.equivalence.injected << ",\"class_sizes\":[";
    for (size_t i = 0; i < report.equivalence.class_sizes.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << report.equivalence.class_sizes[i];
    }
    out << "],\"validation_mismatches\":" << report.equivalence.validation_mismatches << "},";
  }
  // Emitted only when a fuzz phase ran (--fuzz N): default reports and their
  // goldens serialize exactly as before.
  if (report.fuzz.active) {
    out << "\"fuzz\":{\"runs\":" << report.fuzz.runs
        << ",\"corpus_size\":" << report.fuzz.corpus_size
        << ",\"baseline_pairs\":" << report.fuzz.baseline_pairs
        << ",\"coverage_pairs\":" << report.fuzz.coverage_pairs
        << ",\"new_pairs\":" << report.fuzz.new_pairs
        << ",\"new_coverage_runs\":" << report.fuzz.new_coverage_runs
        << ",\"bug_runs\":" << report.fuzz.bug_runs << ",\"trace_hash\":\""
        << TraceHashHex(report.fuzz.trace_hash) << "\"},";
  }
  out << "\"bugs\":[";
  for (size_t i = 0; i < report.bugs.size(); ++i) {
    const auto& bug = report.bugs[i];
    if (i > 0) {
      out << ",";
    }
    out << "{\"id\":\"" << JsonEscape(bug.bug_id) << "\",\"priority\":\""
        << JsonEscape(bug.priority) << "\",\"scenario\":\"" << JsonEscape(bug.scenario)
        << "\",\"symptom\":\"" << JsonEscape(bug.symptom) << "\",\"location\":\""
        << JsonEscape(bug.location) << "\",\"exposing_points\":" << bug.exposing_points.size()
        << "}";
  }
  out << "],";
  out << "\"timeout_issues\":" << report.timeout_issues.size();
  out << "}";
  return out.str();
}

}  // namespace ctcore
