// End-to-end CrashTuner driver (Fig. 4).
//
// Phase 1 (locate crash points): run the workload once to collect logs →
// offline log analysis → type-based meta-info inference → static crash
// points → profiling for dynamic crash points.
// Phase 2 (test): one fault-injection run per dynamic crash point, online
// log analysis resolving accessed values to target nodes, oracle verdicts.
// The report carries everything Tables 5 and 10-12 need.
#ifndef SRC_CORE_CRASHTUNER_H_
#define SRC_CORE_CRASHTUNER_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/context_enumeration.h"
#include "src/analysis/crash_point_analysis.h"
#include "src/analysis/log_analysis.h"
#include "src/analysis/metainfo_inference.h"
#include "src/core/profiler.h"
#include "src/core/system_under_test.h"
#include "src/core/trigger.h"

namespace ctobs {
class CampaignObserver;
}  // namespace ctobs

namespace ctcore {

// One detected bug after deduplication (several dynamic points can expose the
// same issue; the paper reports at issue granularity).
struct DetectedBug {
  std::string bug_id;  // triaged upstream id, or "NEW-<location>"
  std::string priority;
  std::string scenario;  // pre-read / post-write
  std::string status;
  std::string symptom;
  std::string metainfo;
  std::string location;
  std::vector<ctrt::DynamicPoint> exposing_points;
  RunOutcome sample_outcome;
};

// Summary of the equivalence partition behind a representative or validation
// campaign (src/analysis/equivalence.h). Inactive (all zeros) under the
// default exhaustive selection, so exhaustive reports are unchanged.
struct EquivalenceSummary {
  bool active = false;
  int classes = 0;             // behavioral equivalence classes
  int members = 0;             // dynamic points partitioned
  int injected = 0;            // points actually injected this campaign
  std::vector<int> class_sizes;  // per class, in class-key order
  // kValidateRepresentative only: classes whose members contribute a bug
  // signature their representative does not (the soundness counterexamples).
  int validation_mismatches = 0;
  std::vector<std::string> mismatched_class_keys;
};

// Summary of a coverage-guided workload-fuzzing phase (src/fuzz/). Inactive
// (all zeros) unless the driver tool ran with --fuzz N, so default reports
// are unchanged byte-for-byte.
struct FuzzSummary {
  bool active = false;
  int runs = 0;               // fuzz runs executed
  int corpus_size = 0;        // workloads kept (reached new coverage)
  int baseline_pairs = 0;     // dynamic points of the fixed workload script
  int coverage_pairs = 0;     // baseline ∪ fuzz-discovered
  int new_pairs = 0;          // discovered beyond the fixed script
  int new_coverage_runs = 0;  // runs contributing >= 1 new pair
  int bug_runs = 0;           // fuzz runs with an oracle bug verdict
  // FNV mix of per-fuzz-run trace hashes in global run-index order; equal
  // hashes mean schedule-identical fuzz campaigns (any --jobs level).
  uint64_t trace_hash = 0;
};

struct SystemReport {
  std::string system;

  // Table 10 columns.
  int total_types = 0;
  int total_fields = 0;
  int total_access_points = 0;
  int metainfo_types = 0;
  int metainfo_fields = 0;
  int metainfo_access_points = 0;
  int static_crash_points = 0;
  int dynamic_crash_points = 0;

  // Table 12 columns.
  int pruned_constructor = 0;
  int pruned_unused = 0;
  int pruned_sanity_checked = 0;

  // Table 11 columns: real wall time for the analyses and for the Phase-2
  // injection campaign (which parallelizes across DriverOptions::jobs),
  // virtual cluster time for profiling/testing (the simulator equivalent of
  // testbed hours).
  double analysis_wall_seconds = 0;
  double test_wall_seconds = 0;
  double profile_virtual_seconds = 0;
  double test_virtual_hours = 0;

  // Static context enumeration (context modes other than kProfiled).
  int static_contexts = 0;            // enumerated ⟨point, context⟩ pairs in use
  int static_unreachable_points = 0;  // executable candidates with no reachable anchor
  int static_infeasible_points = 0;   // reachable anchors whose strings all pruned
  int static_pruned_call_strings = 0;  // individual strings removed by feasibility
  ctanalysis::ContextCrossCheck context_check;  // vs the profiled set (kStaticSeeded)

  // Combined FNV-1a mix of the per-injection trace hashes, in injection
  // order: a fingerprint of every event the campaign scheduled. Two reports
  // with equal trace hashes ran schedule-identical campaigns.
  uint64_t trace_hash = 0;

  EquivalenceSummary equivalence;
  FuzzSummary fuzz;

  ctanalysis::LogAnalysisResult log_result;
  ctanalysis::MetaInfoResult metainfo;
  ctanalysis::CrashPointResult crash_points;
  ProfileResult profile;
  std::vector<InjectionResult> injections;
  std::vector<DetectedBug> bugs;            // oracle-failing, deduplicated
  std::vector<InjectionResult> timeout_issues;  // §4.1.3

  int InjectionsWithFault() const;
};

// Where the driver's dynamic crash points come from (Definition 1 pairs).
//   kProfiled      workload-doubling profiling fixpoint (§3.1.3; the default)
//   kStaticSeeded  bounded call-string enumeration over the declared call
//                  graph replaces the profiled set; one instrumented run
//                  still happens and feeds the recall/precision cross-check
//   kStaticOnly    no instrumented run at all — a single tracer-off run
//                  provides baseline/duration/logs, contexts are all static
enum class ContextMode { kProfiled, kStaticSeeded, kStaticOnly };

// Which dynamic crash points Phase 2 injects at.
//   kExhaustive      every dynamic point (the paper's campaign; the default)
//   kRepresentative  partition the point set into behavioral equivalence
//                    classes (src/analysis/equivalence.h) and inject only the
//                    representative of each class; class sizes land in the
//                    report's equivalence summary
//   kValidateRepresentative
//                    inject the full set, then assert per-class report
//                    equivalence: the bug signatures contributed by a class's
//                    members must all be contributed by its representative.
//                    Violations are counted in the report — the empirical
//                    soundness measurement behind kRepresentative.
enum class InjectionSelection { kExhaustive, kRepresentative, kValidateRepresentative };

struct DriverOptions {
  uint64_t seed = 2019;
  // Worker threads for the Phase-2 injection campaign. 1 runs sequentially;
  // 0 means one per hardware thread. Any value yields the same report
  // byte-for-byte (see campaign.h).
  int jobs = 1;
  ctanalysis::CrashPointOptions crash_point_options;
  ContextMode context_mode = ContextMode::kProfiled;
  // Representative injection (--representative in the driver tools): see
  // InjectionSelection above.
  InjectionSelection injection_selection = InjectionSelection::kExhaustive;
  // Call-string bound for the static modes (the tracer's stack depth).
  int static_context_depth = 5;
  // Per-call-string feasibility prune (static modes): drop individual
  // enumerated strings no workload entry can realize — complete strings not
  // born at a feasible root, truncated strings outside the feasible roots'
  // sync closure — instead of only whole points with unreachable anchors.
  bool prune_infeasible_contexts = true;
  // Pre-read trigger wait window (§3.2.2; the paper defaults to 10 s). The
  // window must outlast failure handling for the recovery to race the read.
  ctsim::Time pre_read_wait_ms = FaultInjectionTester::kPreReadWaitMs;
  // Manual annotations (§4.1.1): extra meta-info seeds for variables the
  // logs never print (the HBASE-13546 / YARN-4502 class of misses).
  std::set<std::string> annotated_seed_types;
  std::set<std::string> annotated_seed_fields;
  // What Phase 2 does at each armed point: crash/shutdown the resolved node
  // (the paper's trigger) or partition-and-heal it (network-fault mode,
  // targeting message races). Network mode takes each point's partition
  // window from the model's declared network-fault windows, falling back to
  // network_partition_ms — which must outlast every system's failure
  // detector for the heal to race recovered state.
  InjectionMode injection_mode = InjectionMode::kCrash;
  ctsim::Time network_partition_ms = 2500;
  // Campaign trace record/replay (either may be null). With record_traces,
  // every Phase-2 run stores its event trace by injection index; with
  // replay_traces, every run is verified event-by-event against the stored
  // trace and the driver throws ctsim::TraceDivergence on any departure.
  TraceStore* record_traces = nullptr;
  const TraceStore* replay_traces = nullptr;
  // Campaign observability (may be null). When set, the driver opens
  // wall-clock spans around its own phases (analysis, profile, campaign),
  // every Phase-2 run records phase spans + metrics into it, and the driver
  // stamps system/jobs/campaign-wall metadata at the end. Observation is
  // passive: the report and its trace hash are byte-identical either way.
  ctobs::CampaignObserver* observer = nullptr;
};

class CrashTunerDriver {
 public:
  SystemReport Run(const SystemUnderTest& system,
                   const DriverOptions& options = DriverOptions()) const;
};

// Groups bug-verdict injections into DetectedBugs and triages them against
// the system's known-bug table. Exposed for tests.
std::vector<DetectedBug> TriageBugs(const SystemUnderTest& system,
                                    const std::vector<InjectionResult>& injections);

}  // namespace ctcore

#endif  // SRC_CORE_CRASHTUNER_H_
