// Drives one workload run to an oracle verdict.
//
// The executor pumps the cluster's event loop until the job finishes, fails,
// or blows through its deadlines, then classifies the outcome the way §3.2.2
// does: job failure, system hang, uncommon exceptions — plus the §4.1.3
// "timeout issue" category for jobs that do finish but take longer than
// 4x the fault-free runtime.
#ifndef SRC_CORE_EXECUTOR_H_
#define SRC_CORE_EXECUTOR_H_

#include <set>
#include <string>
#include <vector>

#include "src/core/system_under_test.h"
#include "src/logging/log_store.h"

namespace ctcore {

// Exception types observed in fault-free runs; anything outside this set is
// "uncommon" (§3.2.2 case 3).
struct OracleBaseline {
  std::set<std::string> common_exception_types;
};

struct RunOutcome {
  bool finished = false;
  bool failed = false;         // the job itself reported failure
  bool hang = false;           // never finished within the hang deadline
  bool timeout_issue = false;  // finished, but later than the timeout threshold
  bool cluster_down = false;
  std::vector<std::string> uncommon_exceptions;  // "Type: message" strings
  ctsim::Time virtual_duration_ms = 0;

  // The paper's bug verdict: job failure, hang, or uncommon exceptions.
  bool IsBug() const { return failed || hang || cluster_down || !uncommon_exceptions.empty(); }

  // Short label for reports: "job failure", "cluster down", ...
  std::string PrimarySymptom() const;
};

class Executor {
 public:
  // Timeout threshold is 4 fault-free runtimes (§4.1.3); the hang deadline
  // gives slow-but-live runs room to finish so hangs and timeout issues can
  // be told apart.
  static constexpr int kTimeoutFactor = 4;
  static constexpr int kHangFactor = 12;

  // Runs to completion and classifies. `baseline` may be null during the
  // profiling phase (no uncommon-exception classification yet).
  static RunOutcome Execute(WorkloadRun& run, const OracleBaseline* baseline);

  // Extracts the exception types+messages logged at the dispatch boundary.
  static std::vector<std::pair<std::string, std::string>> ExceptionsIn(
      const ctlog::LogStore& logs);

  // Builds the common-exception whitelist from a fault-free run's logs.
  static void AccumulateBaseline(const ctlog::LogStore& logs, OracleBaseline* baseline);
};

}  // namespace ctcore

#endif  // SRC_CORE_EXECUTOR_H_
