#include "src/core/baselines.h"

#include <map>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/core/campaign.h"
#include "src/sim/exception.h"
#include "src/sim/fault_plan.h"

namespace ctcore {

namespace {

// Fault-free calibration run: oracle baseline, normal runtime, and the node
// set random trials pick their victims from.
struct Calibration {
  OracleBaseline baseline;
  ctsim::Time normal_duration_ms = 0;
  std::vector<std::string> eligible_nodes;  // non-workload-driver nodes
};

Calibration Calibrate(const SystemUnderTest& system, uint64_t seed) {
  Calibration calibration;
  auto run = system.NewRun(system.default_workload_size(), seed);
  for (ctsim::Node* node : run->cluster().nodes()) {
    if (!node->workload_driver()) {
      calibration.eligible_nodes.push_back(node->id());
    }
  }
  RunOutcome outcome = Executor::Execute(*run, /*baseline=*/nullptr);
  calibration.normal_duration_ms = outcome.virtual_duration_ms;
  Executor::AccumulateBaseline(run->cluster().logs(), &calibration.baseline);
  return calibration;
}

}  // namespace

std::vector<DetectedBug> TriageBaselineBugs(const SystemUnderTest& system,
                                            const std::vector<BaselineTrial>& trials) {
  // Baseline triage is exception-driven: without a crash point, a failing
  // trial can only be attributed through the failure it logged. Trials that
  // match no known issue (typically master-kill unavailability, which needs
  // no crash-*recovery* bug to fail the job) stay in failing_trials but are
  // not counted as detected bugs. Issues are deduplicated by id; the hit
  // count is recorded via exposing_points (the paper's "1 bug (for 6 times)"
  // style of reporting).
  const std::vector<KnownBug> known = system.known_bugs();
  std::map<std::string, DetectedBug> by_id;
  for (const auto& trial : trials) {
    if (!trial.outcome.IsBug()) {
      continue;
    }
    const KnownBug* matched = nullptr;
    for (const auto& candidate : known) {
      if (candidate.exception_substr.empty()) {
        continue;
      }
      for (const auto& exception : trial.outcome.uncommon_exceptions) {
        if (ctcommon::Contains(exception, candidate.exception_substr)) {
          matched = &candidate;
          break;
        }
      }
      if (matched != nullptr) {
        break;
      }
    }
    if (matched == nullptr) {
      continue;
    }
    auto [it, inserted] = by_id.try_emplace(matched->bug_id);
    DetectedBug& bug = it->second;
    if (inserted) {
      bug.bug_id = matched->bug_id;
      bug.priority = matched->priority;
      bug.scenario = matched->scenario;
      bug.status = matched->status;
      bug.symptom = matched->symptom;
      bug.metainfo = matched->metainfo;
      bug.sample_outcome = trial.outcome;
    }
    bug.exposing_points.push_back(trial.io_point);  // one entry per hit
  }
  std::vector<DetectedBug> bugs;
  for (auto& [id, bug] : by_id) {
    bugs.push_back(std::move(bug));
  }
  return bugs;
}

BaselineReport RandomCrashInjector::Run(const SystemUnderTest& system, int trials, uint64_t seed,
                                        int jobs) const {
  BaselineReport report;
  report.system = system.name();
  report.approach = "random";
  report.trials = trials;

  Calibration calibration = Calibrate(system, seed);

  // Pre-draw every trial's randomness in trial order from the single stream
  // the sequential loop used, so the trials can run on any worker thread
  // without perturbing (or racing on) the generator.
  struct Plan {
    ctsim::Time crash_time_ms = 0;
    uint64_t target_index = 0;
  };
  ctcommon::Rng rng(seed ^ 0x5eed);
  std::vector<Plan> plans;
  plans.reserve(static_cast<size_t>(std::max(trials, 0)));
  for (int t = 0; t < trials; ++t) {
    Plan plan;
    plan.crash_time_ms = rng.Uniform(0, calibration.normal_duration_ms);
    plan.target_index = rng.Index(calibration.eligible_nodes.size());
    plans.push_back(plan);
  }

  CampaignEngine engine(jobs);
  std::vector<BaselineTrial> results = engine.Map(trials, [&](int t) {
    auto run = system.NewRun(system.default_workload_size(), seed + 7919ull * (t + 1));
    ctsim::Cluster& cluster = run->cluster();

    BaselineTrial trial;
    trial.trial_index = t;
    trial.crash_time_ms = plans[static_cast<size_t>(t)].crash_time_ms;
    std::vector<std::string> ids;
    for (ctsim::Node* node : cluster.nodes()) {
      if (!node->workload_driver()) {
        ids.push_back(node->id());
      }
    }
    CT_CHECK(ids.size() == calibration.eligible_nodes.size());
    trial.target_node = ids[plans[static_cast<size_t>(t)].target_index];
    trial.injected = true;
    cluster.loop().ScheduleAt(trial.crash_time_ms,
                              [&cluster, node = trial.target_node] { cluster.Crash(node); });

    trial.outcome = Executor::Execute(*run, &calibration.baseline);
    return trial;
  });

  uint64_t total_virtual_ms = calibration.normal_duration_ms;
  std::vector<BaselineTrial> failing;
  for (const BaselineTrial& trial : results) {
    total_virtual_ms += trial.outcome.virtual_duration_ms;
    if (trial.outcome.IsBug()) {
      failing.push_back(trial);
    }
  }
  report.virtual_hours = static_cast<double>(total_virtual_ms) / 3'600'000.0;
  report.failing_trials = failing;
  report.bugs = TriageBaselineBugs(system, failing);
  return report;
}

BaselineReport NetworkRandomInjector::Run(const SystemUnderTest& system, int trials,
                                          uint64_t seed, int jobs) const {
  BaselineReport report;
  report.system = system.name();
  report.approach = "network-random";
  report.trials = trials;

  Calibration calibration = Calibrate(system, seed);

  // Pre-draw (cut time, victim, window) per trial in trial order, as the
  // random crash baseline does, so any jobs count yields the same report.
  // The window is drawn blind, uniform over the fault-free runtime: without
  // meta-info the baseline knows nothing about failure-detector scales, so
  // most draws are too short to outlast an expiry or so long that recovery
  // settles before the heal — that miss rate is what the baseline measures.
  struct Plan {
    ctsim::Time cut_time_ms = 0;
    uint64_t target_index = 0;
    ctsim::Time partition_ms = 0;
  };
  ctcommon::Rng rng(seed ^ 0x6e657264);
  std::vector<Plan> plans;
  plans.reserve(static_cast<size_t>(std::max(trials, 0)));
  for (int t = 0; t < trials; ++t) {
    Plan plan;
    plan.cut_time_ms = rng.Uniform(0, calibration.normal_duration_ms);
    plan.target_index = rng.Index(calibration.eligible_nodes.size());
    plan.partition_ms = rng.Uniform(50, calibration.normal_duration_ms);
    plans.push_back(plan);
  }

  CampaignEngine engine(jobs);
  std::vector<BaselineTrial> results = engine.Map(trials, [&](int t) {
    const Plan& plan = plans[static_cast<size_t>(t)];
    auto run = system.NewRun(system.default_workload_size(), seed + 7919ull * (t + 1));
    ctsim::Cluster& cluster = run->cluster();

    BaselineTrial trial;
    trial.trial_index = t;
    trial.crash_time_ms = plan.cut_time_ms;
    trial.partition_ms = plan.partition_ms;
    std::vector<std::string> ids;
    for (ctsim::Node* node : cluster.nodes()) {
      if (!node->workload_driver()) {
        ids.push_back(node->id());
      }
    }
    CT_CHECK(ids.size() == calibration.eligible_nodes.size());
    trial.target_node = ids[plan.target_index];
    trial.injected = true;
    ctsim::FaultPlan fault_plan;
    fault_plan.partitions.push_back(
        {plan.cut_time_ms, plan.cut_time_ms + plan.partition_ms, {trial.target_node}});
    cluster.InstallFaultPlan(fault_plan);

    trial.outcome = Executor::Execute(*run, &calibration.baseline);
    return trial;
  });

  uint64_t total_virtual_ms = calibration.normal_duration_ms;
  std::vector<BaselineTrial> failing;
  for (const BaselineTrial& trial : results) {
    total_virtual_ms += trial.outcome.virtual_duration_ms;
    if (trial.outcome.IsBug()) {
      failing.push_back(trial);
    }
  }
  report.virtual_hours = static_cast<double>(total_virtual_ms) / 3'600'000.0;
  report.failing_trials = failing;
  report.bugs = TriageBaselineBugs(system, failing);
  return report;
}

BaselineReport IoFaultInjector::Run(const SystemUnderTest& system, uint64_t seed,
                                    int jobs) const {
  BaselineReport report;
  report.system = system.name();
  report.approach = "io";

  const ctmodel::ProgramModel& model = system.model();
  report.io_classes = model.NumIoClasses();
  report.io_methods = model.NumIoMethods();
  report.static_io_points = model.NumIoPoints();

  // Profile dynamic IO points.
  std::set<int> io_ids;
  for (const auto& point : model.io_points()) {
    io_ids.insert(point.id);
  }
  Profiler profiler;
  ProfileResult profile = profiler.Profile(system, /*access_points=*/{}, io_ids, seed);
  report.dynamic_io_points = static_cast<int>(profile.dynamic_io_points.size());

  // The trial list — every dynamic IO point, before and after — is
  // deterministic, so enumerate it up front and fan the runs out.
  struct IoTask {
    ctrt::DynamicPoint point;
    bool before = true;
  };
  std::vector<IoTask> tasks;
  for (const auto& point : profile.dynamic_io_points) {
    for (bool before : {true, false}) {
      tasks.push_back({point, before});
    }
  }
  report.trials = static_cast<int>(tasks.size());

  CampaignEngine engine(jobs);
  std::vector<BaselineTrial> results =
      engine.Map(static_cast<int>(tasks.size()), [&](int i) {
        const IoTask& task = tasks[static_cast<size_t>(i)];
        auto run = system.NewRun(system.default_workload_size(),
                                 seed + 104729ull * static_cast<uint64_t>(i + 1));
        ctsim::Cluster& cluster = run->cluster();

        BaselineTrial trial;
        trial.trial_index = i;
        trial.io_point = task.point;
        trial.io_before = task.before;
        ctrt::AccessTracer& tracer = run->context().tracer();
        tracer.Reset(ctrt::TraceMode::kTrigger);
        tracer.ArmIoTrigger(task.point, task.before, [&](const ctrt::AccessEvent&) {
          // The OpenStack-style baseline kills the node performing the IO.
          std::string target = cluster.current_node();
          if (target.empty() || !cluster.IsAlive(target)) {
            return;
          }
          trial.injected = true;
          trial.target_node = target;
          cluster.Crash(target);
          throw ctsim::NodeCrashedSignal{};
        });

        trial.outcome = Executor::Execute(*run, &profile.baseline);
        return trial;
      });

  uint64_t total_virtual_ms = 0;
  std::vector<BaselineTrial> failing;
  for (const BaselineTrial& trial : results) {
    total_virtual_ms += trial.outcome.virtual_duration_ms;
    if (trial.outcome.IsBug()) {
      failing.push_back(trial);
    }
  }
  report.virtual_hours = static_cast<double>(total_virtual_ms) / 3'600'000.0;
  report.failing_trials = failing;
  report.bugs = TriageBaselineBugs(system, failing);
  return report;
}

}  // namespace ctcore
