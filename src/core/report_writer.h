// Serializers for SystemReport: a human-readable markdown summary (the shape
// of the paper's per-system reporting) and a machine-readable JSON document
// for downstream tooling. Both are pure functions of the report.
#ifndef SRC_CORE_REPORT_WRITER_H_
#define SRC_CORE_REPORT_WRITER_H_

#include <string>

#include "src/core/crashtuner.h"

namespace ctcore {

// Markdown: counts (Table 10/12 rows), times (Table 11 row), detected bugs
// (Table 5 rows) and timeout issues for one system.
std::string ReportToMarkdown(const SystemReport& report);

// Minimal JSON (no external dependency): same content, stable key order.
std::string ReportToJson(const SystemReport& report);

// Escapes a string for embedding in a JSON document.
std::string JsonEscape(const std::string& text);

}  // namespace ctcore

#endif  // SRC_CORE_REPORT_WRITER_H_
