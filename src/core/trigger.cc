#include "src/core/trigger.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/core/campaign.h"
#include "src/obs/observer.h"
#include "src/obs/span.h"
#include "src/sim/exception.h"

namespace ctcore {

namespace {

// "cluster down" -> "cluster_down": metric names stay shell-friendly.
std::string MetricName(std::string text) {
  std::replace(text.begin(), text.end(), ' ', '_');
  return text;
}

}  // namespace

InjectionResult FaultInjectionTester::TestPoint(const ctrt::DynamicPoint& point,
                                                ctanalysis::CrashPointKind kind, uint64_t seed,
                                                int trace_slot) {
  InjectionResult result;
  result.point = point;
  result.kind = kind;
  result.mode = mode_;
  for (const auto& static_point : crash_points_->points) {
    if (static_point.access_point_id == point.point_id) {
      result.location = static_point.location;
      result.field_id = static_point.field_id;
      break;
    }
  }

  // Recorder before the run: the cluster holds a raw pointer to it, so it
  // must outlive the run. Every run is traced (the hash lands in the result);
  // replay mode additionally verifies each event against the stored trace.
  const ctsim::Trace* expected = nullptr;
  if (replay_store_ != nullptr) {
    expected = replay_store_->Get(trace_slot);
    if (expected == nullptr) {
      throw ctsim::TraceDivergence("replay store has no trace for injection slot " +
                                   std::to_string(trace_slot));
    }
  }
  ctsim::TraceRecorder recorder =
      expected != nullptr ? ctsim::TraceRecorder(expected) : ctsim::TraceRecorder();

  auto run = system_->NewRun(system_->default_workload_size(), seed);
  ctsim::Cluster& cluster = run->cluster();
  cluster.set_trace_recorder(&recorder);

  // Campaign observability: enable the run's observer so the phase spans the
  // executor opens, the injection span below, and the end-of-run counter copy
  // all record. Purely passive — no RNG draws, no scheduled events — so the
  // run's trace and hash are unchanged.
  ctobs::RunObserver* run_observer = &run->context().observer();
  if (observer_ != nullptr && trace_slot >= 0) {
    run_observer->Enable();
  }
  // Injection spans carry the model's vocabulary: the anchor frame of the
  // armed point, renamed by a SpanDecl when the model declares one.
  const ctmodel::ProgramModel& model = system_->model();
  std::string anchor = ctmodel::ProgramModel::ContextMethodOf(model.access_point(point.point_id));
  const ctmodel::SpanDecl* span_decl = model.FindSpanForMethod(anchor);
  const std::string injection_span_name =
      "inject:" + (span_decl != nullptr ? span_decl->name : anchor);

  // Online log analysis: one agent per node feeding the custom stash.
  ctlog::CustomStash stash(filter_);
  std::vector<std::unique_ptr<ctlog::LogstashAgent>> agents;
  {
    ctobs::ScopedSpan arm(run_observer, &cluster.loop(), "window-arm", "phase");
    for (const auto& node_id : cluster.node_ids()) {
      agents.push_back(std::make_unique<ctlog::LogstashAgent>(node_id, &stash));
    }
    cluster.logs().Subscribe([&agents](const ctlog::Instance& instance) {
      for (auto& agent : agents) {
        agent->OnInstance(instance);
      }
    });
  }

  // Control-center callback (Fig. 7): resolve the accessed value to a node
  // and inject the fault. Armed on the run's own tracer, so concurrent
  // TestPoint calls cannot clobber each other and the armed trigger cannot
  // outlive the run.
  ctrt::AccessTracer& tracer = run->context().tracer();
  tracer.Reset(ctrt::TraceMode::kTrigger);
  tracer.ArmAccessTrigger(point, [&](const ctrt::AccessEvent& event) {
    result.point_hit = true;
    result.accessed_value = event.value;
    auto target = stash.Lookup(event.value);
    if (!target.has_value()) {
      return;  // No associated node: the procedure simply returns (§3.2.2).
    }
    if (!cluster.IsAlive(*target)) {
      return;
    }
    result.injected = true;
    result.target_node = *target;
    // The span covers the fault action itself — for pre-read points that
    // includes the recovery wait window; closure is exception-safe, so a
    // NodeCrashedSignal unwinding through here still ends the span.
    ctobs::ScopedSpan inject(run_observer, &cluster.loop(), injection_span_name, "injection");
    inject.AddArg("point", std::to_string(point.point_id));
    inject.AddArg("anchor", anchor);
    inject.AddArg("target", *target);
    if (mode_ == InjectionMode::kNetworkFault) {
      // Fault-on-appearance: cut the target off for the window instead of
      // killing it. The failure detector expires it, recovery starts, then
      // the heal lets the presumed-dead node's messages race the recovered
      // state — the handler (and the target) keep running throughout.
      auto window = network_windows_.find(point.point_id);
      ctsim::Time partition_ms =
          window != network_windows_.end() ? window->second : default_partition_ms_;
      cluster.PartitionNodes({*target}, partition_ms);
      return;
    }
    bool killing_current = (*target == cluster.current_node());
    if (kind == ctanalysis::CrashPointKind::kPreRead) {
      // Graceful shutdown lets the cluster learn about the departure without
      // waiting out the failure detector; the wait window then lets recovery
      // run before the instrumented read proceeds.
      cluster.Shutdown(*target);
      if (killing_current) {
        throw ctsim::NodeCrashedSignal{};
      }
      cluster.loop().RunFor(pre_read_wait_ms_);
    } else {
      cluster.Crash(*target);
      if (killing_current) {
        throw ctsim::NodeCrashedSignal{};
      }
    }
  });

  result.outcome = Executor::Execute(*run, &baseline_);
  result.point_hit = result.point_hit || tracer.trigger_fired();
  total_virtual_ms_.fetch_add(result.outcome.virtual_duration_ms, std::memory_order_relaxed);
  recorder.FinishReplay();  // a recording longer than the run is a divergence
  result.trace_hash = recorder.trace().Hash();
  if (record_store_ != nullptr && trace_slot >= 0) {
    record_store_->Put(trace_slot, recorder.trace());
  }

  if (observer_ != nullptr && trace_slot >= 0) {
    ctobs::MetricsShard& metrics = run_observer->metrics();
    if (result.point_hit) {
      metrics.Add("injection.point_hit");
    }
    if (result.injected) {
      metrics.Add("injection.injected");
    }
    metrics.Add("outcome." + MetricName(result.outcome.PrimarySymptom()));
    if (expected != nullptr) {
      metrics.Add("runs.replayed");
    }
    metrics.Add("trace.events", recorder.trace().size());
    if (result.outcome.IsBug()) {
      // Failure dossier: the canonical signature of this failing run —
      // everything downstream dedup clustering keys on and a replay tool
      // needs to re-execute exactly this run.
      ctobs::Dossier dossier;
      dossier.system = system_->name();
      dossier.slot = trace_slot;
      dossier.seed = seed;
      dossier.failed_invariant = result.outcome.PrimarySymptom();
      if (!result.outcome.uncommon_exceptions.empty()) {
        dossier.failed_invariant += ": " + result.outcome.uncommon_exceptions.front();
      }
      if (result.injected) {
        ctobs::DossierPoint injected;
        injected.point_id = point.point_id;
        injected.call_string = point.stack_key;
        injected.target_node = result.target_node;
        injected.mode = mode_ == InjectionMode::kNetworkFault
                            ? "partition"
                            : (kind == ctanalysis::CrashPointKind::kPreRead ? "shutdown"
                                                                            : "crash");
        dossier.injected_points.push_back(std::move(injected));
      }
      dossier.recovery_phase_span =
          result.injected ? injection_span_name
                          : (result.outcome.finished ? "recovery-check" : "workload");
      char hash_prefix[16];
      std::snprintf(hash_prefix, sizeof(hash_prefix), "%08llx",
                    static_cast<unsigned long long>(result.trace_hash >> 32));
      dossier.trace_hash_prefix = hash_prefix;
      const ctsim::FaultPlan& plan = cluster.fault_plan();
      std::string fault_summary;
      auto append_part = [&fault_summary](const std::string& part) {
        if (!fault_summary.empty()) {
          fault_summary += " ";
        }
        fault_summary += part;
      };
      if (!plan.default_link.Inert() || !plan.links.empty()) {
        append_part("link-faults=" +
                    std::to_string(plan.links.size() + (plan.default_link.Inert() ? 0 : 1)));
      }
      if (cluster.partition_epochs() > 0) {
        append_part("partition-epochs=" + std::to_string(cluster.partition_epochs()));
      }
      if (!plan.timer_skew_permille.empty()) {
        append_part("timer-skew=" + std::to_string(plan.timer_skew_permille.size()));
      }
      dossier.fault_plan = fault_summary;
      dossier.workload =
          system_->workload_name() + " x" + std::to_string(system_->default_workload_size());
      observer_->AbsorbDossier(trace_slot, std::move(dossier));
    }
    observer_->AbsorbRun(trace_slot, *run_observer);
  }
  // No reset needed: the tracer — armed trigger and all — dies with the run.
  return result;
}

std::vector<InjectionResult> FaultInjectionTester::TestAll(const ProfileResult& profile,
                                                           uint64_t seed, int jobs) {
  // Static point id → kind.
  std::map<int, ctanalysis::CrashPointKind> kinds;
  for (const auto& static_point : crash_points_->points) {
    kinds[static_point.access_point_id] = static_point.kind;
  }
  struct Task {
    ctrt::DynamicPoint point;
    ctanalysis::CrashPointKind kind;
  };
  std::vector<Task> tasks;
  for (const auto& point : profile.dynamic_access_points) {
    auto it = kinds.find(point.point_id);
    if (it == kinds.end()) {
      continue;
    }
    tasks.push_back({point, it->second});
  }
  CampaignEngine engine(jobs);
  return engine.Map(static_cast<int>(tasks.size()), [&](int i) {
    const Task& task = tasks[static_cast<size_t>(i)];
    return TestPoint(task.point, task.kind, seed + static_cast<uint64_t>(i), /*trace_slot=*/i);
  });
}

}  // namespace ctcore
