// Multi-crash extension (§6 future work; PREFAIL/FATE-style multi-failure
// injection layered on meta-info crash points).
//
// The paper scopes CrashTuner to single-crash bugs and points at [23, 33]
// for bugs that need several crash events. This extension chains a second
// injection onto the same run: the first dynamic crash point fires and kills
// its target as usual; the tracer is then re-armed at a second dynamic point
// and a second node dies when it is hit. Outcomes feed the same oracle.
//
// The pair space is quadratic, so the tester takes an explicit cap and walks
// pairs in a deterministic order; bench_multicrash reports what the deeper
// search buys on the mini systems.
//
// The pair candidates come from whatever dynamic point set the driver
// produced — profiled runs in ContextMode::kProfiled, *statically enumerated*
// contexts in kStaticOnly — through one shared enumerator
// (EnumerateCrashPairs), so the static mode builds its quadratic set with no
// profiling runs and ComparePairSets can score it against the profiled set.
#ifndef SRC_CORE_MULTI_CRASH_H_
#define SRC_CORE_MULTI_CRASH_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/crash_point_analysis.h"
#include "src/analysis/equivalence.h"
#include "src/core/crashtuner.h"
#include "src/core/executor.h"
#include "src/core/profiler.h"
#include "src/core/system_under_test.h"
#include "src/logging/stash.h"
#include "src/runtime/tracer.h"

namespace ctcore {

// One ordered second-crash candidate: inject at `first`, then re-arm `second`.
struct CrashPairCandidate {
  ctrt::DynamicPoint first;
  ctrt::DynamicPoint second;

  bool operator<(const CrashPairCandidate& other) const {
    if (!(first == other.first)) {
      return first < other.first;
    }
    return second < other.second;
  }
  bool operator==(const CrashPairCandidate& other) const {
    return first == other.first && second == other.second;
  }
};

// Deterministic walk of the *unordered* pairs of a sorted dynamic point set
// (i < j), capped at `max_pairs` (negative = uncapped). The symmetric order
// (B,A) of an enumerated (A,B) is intentionally not produced: injection
// order is first-by-point-order, and counting both orders double-counted
// every candidate the precision metrics saw. Both the profiled and the
// static-only campaign draw their pair lists from here, so the two modes
// differ only in where the points came from.
std::vector<CrashPairCandidate> EnumerateCrashPairs(
    const std::set<ctrt::DynamicPoint>& points, long long max_pairs);

// The full ordered walk (i != j): both (A,B) and (B,A). This is the
// pre-dedupe exhaustive pair space; bench_representative runs it as the
// ground-truth baseline the representative pair set is scored against.
std::vector<CrashPairCandidate> EnumerateOrderedCrashPairs(
    const std::set<ctrt::DynamicPoint>& points, long long max_pairs);

// Equivalence partition of a pair list (equivalence.h): pairs grouped by
// unordered pair class key; the representative of a class is its first pair
// in walk order. Deterministic for a deterministically ordered input list.
struct PairClass {
  std::string key;
  CrashPairCandidate representative;
  int size = 0;
};

struct PairPartition {
  std::vector<PairClass> classes;  // in walk order of their representatives

  int NumClasses() const { return static_cast<int>(classes.size()); }
  long long TotalPairs() const;
  std::vector<CrashPairCandidate> Representatives() const;
};

PairPartition PartitionCrashPairs(const std::vector<CrashPairCandidate>& pairs,
                                  const ctanalysis::EquivalenceAnalysis& analysis);

// Static-vs-profiled cross-check over the *uncapped* pair sets.
struct PairSetCrossCheck {
  long long profiled = 0;    // pairs enumerable from the profiled point set
  long long matched = 0;     // of those, present in the static pair set
  long long enumerated = 0;  // pairs enumerable from the static point set
  std::vector<CrashPairCandidate> missed;  // profiled pairs the static set lacks

  // Soundness direction: every profiled pair must be statically enumerated.
  double Recall() const;
  // Fraction of statically enumerated pairs the profiler realized.
  double Precision() const;
};

PairSetCrossCheck ComparePairSets(const std::set<ctrt::DynamicPoint>& profiled_points,
                                  const std::set<ctrt::DynamicPoint>& static_points);

struct PairInjectionResult {
  ctrt::DynamicPoint first;
  ctrt::DynamicPoint second;
  std::string first_location;
  std::string second_location;
  bool first_injected = false;
  bool second_injected = false;
  std::string first_target;
  std::string second_target;
  RunOutcome outcome;
};

struct MultiCrashReport {
  int pairs_tested = 0;
  double virtual_hours = 0;
  std::vector<PairInjectionResult> failing;  // oracle-flagged pairs
  // Failing pairs whose failure does not reproduce under either single
  // injection alone — the candidates for genuine multi-crash bugs.
  std::vector<PairInjectionResult> multi_only;
};

class MultiCrashTester {
 public:
  MultiCrashTester(const SystemUnderTest* system,
                   const ctanalysis::CrashPointResult* crash_points, ctlog::OnlineFilter filter,
                   OracleBaseline baseline, ctsim::Time pre_read_wait_ms = 10'000)
      : system_(system),
        crash_points_(crash_points),
        filter_(std::move(filter)),
        baseline_(std::move(baseline)),
        pre_read_wait_ms_(pre_read_wait_ms) {}

  // Tests one ordered pair: the second point is armed after the first fault
  // lands. Safe to call concurrently: each call owns its run and tracer.
  PairInjectionResult TestPair(const ctrt::DynamicPoint& first, const ctrt::DynamicPoint& second,
                               uint64_t seed);

  // Walks the unordered pairs of the dynamic crash-point set (deterministic
  // order) up to `max_pairs` runs fanned across `jobs` worker threads
  // (campaign.h; seeds derive from pair content and aggregation is pair-index
  // ordered, so the report is identical at any thread count), comparing
  // failing pairs against the single-injection outcomes from
  // `single_results`.
  MultiCrashReport TestPairs(const ProfileResult& profile,
                             const std::vector<InjectionResult>& single_results, int max_pairs,
                             uint64_t seed, int jobs = 1);

  // Same campaign over an explicit pair list (a representative set, or the
  // ordered exhaustive walk). Each pair's seed derives from the pair itself
  // (point ids + call strings), not its list position, so the same pair runs
  // the same simulation in any list — which is what lets a representative
  // campaign be compared run-for-run against the exhaustive one.
  MultiCrashReport TestPairList(const std::vector<CrashPairCandidate>& pairs,
                                const std::vector<InjectionResult>& single_results,
                                uint64_t seed, int jobs = 1);

 private:
  ctanalysis::CrashPointKind KindOf(int point_id, std::string* location) const;
  void Inject(ctsim::Cluster& cluster, const ctlog::CustomStash& stash,
              ctanalysis::CrashPointKind kind, const ctrt::AccessEvent& event, bool* injected,
              std::string* target);

  const SystemUnderTest* system_;
  const ctanalysis::CrashPointResult* crash_points_;
  ctlog::OnlineFilter filter_;
  OracleBaseline baseline_;
  ctsim::Time pre_read_wait_ms_;
};

}  // namespace ctcore

#endif  // SRC_CORE_MULTI_CRASH_H_
