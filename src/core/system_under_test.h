// Interface every mini system implements so the CrashTuner pipeline (and the
// baseline injectors) can drive it without knowing its internals.
#ifndef SRC_CORE_SYSTEM_UNDER_TEST_H_
#define SRC_CORE_SYSTEM_UNDER_TEST_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/model/program_model.h"
#include "src/runtime/run_context.h"
#include "src/sim/cluster.h"

namespace ctcore {

// One deployment of the system plus one sized workload, ready to run. The
// run owns its cluster and its runtime context (tracer); all faults and
// oracles act through this handle, and nothing about the run survives it —
// an armed trigger dies with the run instead of leaking into the next one.
class WorkloadRun {
 public:
  virtual ~WorkloadRun() = default;

  // The run's private runtime state. Executor::Execute binds it to the
  // executing thread for the duration of the run; testers arm triggers on
  // context().tracer() before executing.
  ctrt::RunContext& context() { return *context_; }

  virtual ctsim::Cluster& cluster() = 0;

  // Schedules the workload onto the (already started) cluster.
  virtual void Start() = 0;

  // Job status, as the system's own client would report it.
  virtual bool JobFinished() const = 0;
  virtual bool JobFailed() const = 0;

  // Virtual time a fault-free run of this size is expected to take; the
  // executor uses it to size oracle deadlines.
  virtual ctsim::Time ExpectedDurationMs() const = 0;

 private:
  friend class SystemUnderTest;
  std::unique_ptr<ctrt::RunContext> context_;
};

// Post-hoc triage entry: maps an oracle-detected failure back to the upstream
// issue it reproduces (used by reports; detection never consults this).
struct KnownBug {
  std::string bug_id;       // e.g. "YARN-9164"
  std::string priority;     // Critical / Major / Trivial / Normal
  std::string scenario;     // "pre-read" / "post-write"
  std::string status;       // Fixed / Unresolved
  std::string symptom;      // Table 5 symptom text
  std::string metainfo;     // Table 5 meta-info column
  std::string location_substr;   // matches StaticCrashPoint::location
  std::string exception_substr;  // matches an uncommon-exception message
};

class SystemUnderTest {
 public:
  virtual ~SystemUnderTest() = default;

  virtual std::string name() const = 0;
  virtual std::string version() const = 0;        // Table 4 column 2
  virtual std::string workload_name() const = 0;  // Table 4 column 3

  // The static program model (types, fields, access points, log bindings).
  virtual const ctmodel::ProgramModel& model() const = 0;

  // Optional hook run against the fresh RunContext before the deployment is
  // built — e.g. the profiler switches the tracer to kProfile here so hooks
  // fired during construction are already recorded.
  using ContextPrepare = std::function<void(ctrt::RunContext&)>;

  // Builds a fresh deployment + workload bound to its own RunContext.
  // `workload_size` scales the job (the profiler doubles it until the
  // dynamic-point set stabilizes). The context is bound to the calling thread
  // while the deployment is constructed, then owned by the returned run.
  std::unique_ptr<WorkloadRun> NewRun(int workload_size, uint64_t seed,
                                      const ContextPrepare& prepare = nullptr) const;

  virtual int default_workload_size() const { return 1; }

  // Deployment scale multiplier (the --scale campaign knob). Each system
  // multiplies its replicated-role count (workers, datanodes, quorum peers,
  // region servers + regions, gossip members) and its default workload size
  // by this factor when building a run. Scale 1 is the paper's deployment and
  // every report and trace hash at scale 1 is byte-identical to the unscaled
  // code. Set it before handing the system to a driver; runs already built
  // keep the scale they were built with.
  void set_scale(int scale) { scale_ = scale < 1 ? 1 : scale; }
  int scale() const { return scale_; }

  // Triage table for report generation.
  virtual std::vector<KnownBug> known_bugs() const { return {}; }

 protected:
  // System-specific deployment factory; called by NewRun with the run's
  // context already bound to the calling thread.
  virtual std::unique_ptr<WorkloadRun> MakeRun(int workload_size, uint64_t seed) const = 0;

  // Helper for default_workload_size overrides: the paper's workload size
  // times the deployment scale, so load grows with the cluster.
  int Scaled(int base) const { return base * scale_; }

 private:
  int scale_ = 1;
};

}  // namespace ctcore

#endif  // SRC_CORE_SYSTEM_UNDER_TEST_H_
