// Interface every mini system implements so the CrashTuner pipeline (and the
// baseline injectors) can drive it without knowing its internals.
#ifndef SRC_CORE_SYSTEM_UNDER_TEST_H_
#define SRC_CORE_SYSTEM_UNDER_TEST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/model/program_model.h"
#include "src/sim/cluster.h"

namespace ctcore {

// One deployment of the system plus one sized workload, ready to run. The
// run owns its cluster; all faults and oracles act through this handle.
class WorkloadRun {
 public:
  virtual ~WorkloadRun() = default;

  virtual ctsim::Cluster& cluster() = 0;

  // Schedules the workload onto the (already started) cluster.
  virtual void Start() = 0;

  // Job status, as the system's own client would report it.
  virtual bool JobFinished() const = 0;
  virtual bool JobFailed() const = 0;

  // Virtual time a fault-free run of this size is expected to take; the
  // executor uses it to size oracle deadlines.
  virtual ctsim::Time ExpectedDurationMs() const = 0;
};

// Post-hoc triage entry: maps an oracle-detected failure back to the upstream
// issue it reproduces (used by reports; detection never consults this).
struct KnownBug {
  std::string bug_id;       // e.g. "YARN-9164"
  std::string priority;     // Critical / Major / Trivial / Normal
  std::string scenario;     // "pre-read" / "post-write"
  std::string status;       // Fixed / Unresolved
  std::string symptom;      // Table 5 symptom text
  std::string metainfo;     // Table 5 meta-info column
  std::string location_substr;   // matches StaticCrashPoint::location
  std::string exception_substr;  // matches an uncommon-exception message
};

class SystemUnderTest {
 public:
  virtual ~SystemUnderTest() = default;

  virtual std::string name() const = 0;
  virtual std::string version() const = 0;        // Table 4 column 2
  virtual std::string workload_name() const = 0;  // Table 4 column 3

  // The static program model (types, fields, access points, log bindings).
  virtual const ctmodel::ProgramModel& model() const = 0;

  // Builds a fresh deployment + workload. `workload_size` scales the job
  // (the profiler doubles it until the dynamic-point set stabilizes).
  virtual std::unique_ptr<WorkloadRun> NewRun(int workload_size, uint64_t seed) const = 0;

  virtual int default_workload_size() const { return 1; }

  // Triage table for report generation.
  virtual std::vector<KnownBug> known_bugs() const { return {}; }
};

}  // namespace ctcore

#endif  // SRC_CORE_SYSTEM_UNDER_TEST_H_
