#include "src/core/campaign.h"

#include "src/logging/statement.h"

namespace ctcore {

int ResolveJobs(int jobs) {
  if (jobs >= 1) {
    return jobs;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void CampaignEngine::PrepareSharedState() { ctlog::StatementRegistry::Instance().Freeze(); }

}  // namespace ctcore
