// Profiling phase (§3.1.3).
//
// Runs the workload fault-free with the static crash points instrumented,
// recording every executed ⟨static point, call stack⟩ pair as a dynamic
// crash point. Starting from the system's default workload size, the size is
// doubled until an iteration adds no new dynamic points (the paper observes
// convergence within 2-3 iterations). The same runs also yield the
// common-exception baseline for the oracle, the fault-free runtime used for
// deadlines, and the logs the offline log analysis mines.
#ifndef SRC_CORE_PROFILER_H_
#define SRC_CORE_PROFILER_H_

#include <set>
#include <vector>

#include "src/core/executor.h"
#include "src/core/system_under_test.h"
#include "src/logging/log_store.h"
#include "src/runtime/tracer.h"

namespace ctcore {

struct ProfileResult {
  std::set<ctrt::DynamicPoint> dynamic_access_points;
  std::set<ctrt::DynamicPoint> dynamic_io_points;
  OracleBaseline baseline;
  ctsim::Time normal_duration_ms = 0;  // fault-free runtime at default size
  int iterations = 0;
  // Runs that actually carried instrumentation (tracer in kProfile). With no
  // points to instrument the workload executes tracer-off, so a static-only
  // pipeline can prove it ran zero profiling workloads.
  int instrumented_runs = 0;
  // Logs of the default-size run, input to offline log analysis.
  std::vector<ctlog::Instance> default_run_logs;
};

class Profiler {
 public:
  static constexpr int kMaxIterations = 3;

  // `access_points` / `io_points` are the static point ids to instrument
  // (static crash points for CrashTuner, static IO points for the IO
  // baseline; either may be empty). `max_iterations` caps the workload
  // doubling; 1 yields a single observation run (the static-context modes
  // need the baseline/duration/logs but not the fixpoint).
  ProfileResult Profile(const SystemUnderTest& system, const std::set<int>& access_points,
                        const std::set<int>& io_points, uint64_t seed,
                        int max_iterations = kMaxIterations) const;
};

}  // namespace ctcore

#endif  // SRC_CORE_PROFILER_H_
