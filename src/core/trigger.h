// Fault-injection testing phase (§3.2, Fig. 7).
//
// Each dynamic crash point gets its own run: the point is armed in the
// tracer; Logstash agents stream meta-info values from every node's log into
// the CustomStash; when the armed point fires, the control-center callback
// queries the stash with the accessed runtime value to find the target node
// and injects the fault —
//   pre-read:   graceful shutdown of the target followed by a wait window so
//               the recovery machinery runs before the read proceeds;
//   post-write: abrupt crash of the target; if the target is the node
//               executing the handler, the rest of the handler dies with it;
//   network:    (InjectionMode::kNetworkFault) instead of killing the target,
//               partition it from the cluster for the declared window and
//               heal — fault-on-appearance of a meta-info value.
// The oracle then classifies the run. Every run records an event trace; its
// hash lands in the result, and a TraceStore enables campaign-level
// record/replay (replaying a stored trace re-executes the run and verifies
// every scheduled event against the recording).
#ifndef SRC_CORE_TRIGGER_H_
#define SRC_CORE_TRIGGER_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/crash_point_analysis.h"
#include "src/core/executor.h"
#include "src/core/profiler.h"
#include "src/core/system_under_test.h"
#include "src/logging/stash.h"
#include "src/runtime/tracer.h"
#include "src/sim/trace.h"

namespace ctobs {
class CampaignObserver;
}  // namespace ctobs

namespace ctcore {

// What the trigger does to the resolved target node.
enum class InjectionMode {
  kCrash,         // crash/shutdown per the point kind (the paper's trigger)
  kNetworkFault,  // transient partition + heal in the same meta-info window
};

// Thread-safe slot → trace map shared by a campaign's runs: record mode
// fills it, replay mode reads it. Slots are injection indices, so a store
// recorded at any jobs count replays at any other.
class TraceStore {
 public:
  void Put(int slot, ctsim::Trace trace) {
    std::lock_guard<std::mutex> lock(mu_);
    traces_[slot] = std::move(trace);
  }
  // Pointer stays valid until the store is destroyed or the slot overwritten.
  const ctsim::Trace* Get(int slot) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(slot);
    return it == traces_.end() ? nullptr : &it->second;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return traces_.size();
  }
  std::map<int, ctsim::Trace>& traces() { return traces_; }

 private:
  mutable std::mutex mu_;
  std::map<int, ctsim::Trace> traces_;
};

struct InjectionResult {
  ctrt::DynamicPoint point;
  ctanalysis::CrashPointKind kind = ctanalysis::CrashPointKind::kPreRead;
  InjectionMode mode = InjectionMode::kCrash;
  std::string location;      // static point location, for triage
  std::string field_id;
  bool point_hit = false;    // the armed dynamic point executed
  bool injected = false;     // a target node was resolved and killed/cut off
  std::string target_node;
  std::string accessed_value;
  uint64_t trace_hash = 0;   // FNV-1a of the run's event trace
  RunOutcome outcome;
};

class FaultInjectionTester {
 public:
  // Wait window after a pre-read shutdown (the paper defaults to 10 s).
  static constexpr ctsim::Time kPreReadWaitMs = 10'000;

  FaultInjectionTester(const SystemUnderTest* system,
                       const ctanalysis::CrashPointResult* crash_points,
                       ctlog::OnlineFilter filter, OracleBaseline baseline,
                       ctsim::Time normal_duration_ms,
                       ctsim::Time pre_read_wait_ms = kPreReadWaitMs)
      : system_(system),
        crash_points_(crash_points),
        filter_(std::move(filter)),
        baseline_(std::move(baseline)),
        normal_duration_ms_(normal_duration_ms),
        pre_read_wait_ms_(pre_read_wait_ms) {}

  // Switches the trigger between crashing the resolved target (default) and
  // partitioning it. In network mode the partition window for a point comes
  // from `windows` (point id → ms, from the model's declared network-fault
  // windows), falling back to `default_partition_ms`.
  void set_injection_mode(InjectionMode mode) { mode_ = mode; }
  void ConfigureNetworkWindows(std::map<int, ctsim::Time> windows,
                               ctsim::Time default_partition_ms) {
    network_windows_ = std::move(windows);
    default_partition_ms_ = default_partition_ms;
  }

  // Campaign-level record/replay: with a record store, each TestPoint writes
  // its trace under its slot; with a replay store, each TestPoint verifies
  // its run event-by-event against the stored trace and throws
  // ctsim::TraceDivergence on the first departure (including a missing or
  // truncated recording).
  void set_record_store(TraceStore* store) { record_store_ = store; }
  void set_replay_store(const TraceStore* store) { replay_store_ = store; }

  // Campaign observability. When set, every campaign run (trace_slot >= 0)
  // gets its RunObserver enabled — phase spans, a model-named injection span,
  // and the simulator counters — and is absorbed into the observer under its
  // injection slot after the run retires. Observation is passive: it draws no
  // random numbers and schedules no events, so results, traces and hashes
  // are bit-identical with or without it.
  void set_observer(ctobs::CampaignObserver* observer) { observer_ = observer; }

  // Tests one dynamic crash point; `kind` comes from its static point. Safe
  // to call concurrently: each call owns its run (and the run its tracer).
  // `trace_slot` keys the record/replay stores (injection index; -1 when the
  // call is outside a campaign).
  InjectionResult TestPoint(const ctrt::DynamicPoint& point, ctanalysis::CrashPointKind kind,
                            uint64_t seed, int trace_slot = -1);

  // Tests every dynamic crash point in `profile`, one run each, fanned across
  // `jobs` worker threads (see campaign.h). Seeds derive from the injection
  // index and results come back in index order, so the output is identical at
  // any thread count.
  std::vector<InjectionResult> TestAll(const ProfileResult& profile, uint64_t seed, int jobs = 1);

  // Total virtual time spent across TestPoint calls (Table 11 test column).
  ctsim::Time total_virtual_ms() const { return total_virtual_ms_.load(); }

 private:
  const SystemUnderTest* system_;
  const ctanalysis::CrashPointResult* crash_points_;
  ctlog::OnlineFilter filter_;
  OracleBaseline baseline_;
  ctsim::Time normal_duration_ms_;
  ctsim::Time pre_read_wait_ms_;
  InjectionMode mode_ = InjectionMode::kCrash;
  std::map<int, ctsim::Time> network_windows_;
  ctsim::Time default_partition_ms_ = 2500;
  TraceStore* record_store_ = nullptr;
  const TraceStore* replay_store_ = nullptr;
  ctobs::CampaignObserver* observer_ = nullptr;
  // Atomic: concurrent TestPoint calls accumulate into it. Integer addition
  // commutes, so the total is thread-count independent.
  std::atomic<ctsim::Time> total_virtual_ms_{0};
};

}  // namespace ctcore

#endif  // SRC_CORE_TRIGGER_H_
