// Fault-injection testing phase (§3.2, Fig. 7).
//
// Each dynamic crash point gets its own run: the point is armed in the
// tracer; Logstash agents stream meta-info values from every node's log into
// the CustomStash; when the armed point fires, the control-center callback
// queries the stash with the accessed runtime value to find the target node
// and injects the fault —
//   pre-read:   graceful shutdown of the target followed by a wait window so
//               the recovery machinery runs before the read proceeds;
//   post-write: abrupt crash of the target; if the target is the node
//               executing the handler, the rest of the handler dies with it.
// The oracle then classifies the run.
#ifndef SRC_CORE_TRIGGER_H_
#define SRC_CORE_TRIGGER_H_

#include <atomic>
#include <string>
#include <vector>

#include "src/analysis/crash_point_analysis.h"
#include "src/core/executor.h"
#include "src/core/profiler.h"
#include "src/core/system_under_test.h"
#include "src/logging/stash.h"
#include "src/runtime/tracer.h"

namespace ctcore {

struct InjectionResult {
  ctrt::DynamicPoint point;
  ctanalysis::CrashPointKind kind = ctanalysis::CrashPointKind::kPreRead;
  std::string location;      // static point location, for triage
  std::string field_id;
  bool point_hit = false;    // the armed dynamic point executed
  bool injected = false;     // a target node was resolved and killed
  std::string target_node;
  std::string accessed_value;
  RunOutcome outcome;
};

class FaultInjectionTester {
 public:
  // Wait window after a pre-read shutdown (the paper defaults to 10 s).
  static constexpr ctsim::Time kPreReadWaitMs = 10'000;

  FaultInjectionTester(const SystemUnderTest* system,
                       const ctanalysis::CrashPointResult* crash_points,
                       ctlog::OnlineFilter filter, OracleBaseline baseline,
                       ctsim::Time normal_duration_ms,
                       ctsim::Time pre_read_wait_ms = kPreReadWaitMs)
      : system_(system),
        crash_points_(crash_points),
        filter_(std::move(filter)),
        baseline_(std::move(baseline)),
        normal_duration_ms_(normal_duration_ms),
        pre_read_wait_ms_(pre_read_wait_ms) {}

  // Tests one dynamic crash point; `kind` comes from its static point. Safe
  // to call concurrently: each call owns its run (and the run its tracer).
  InjectionResult TestPoint(const ctrt::DynamicPoint& point, ctanalysis::CrashPointKind kind,
                            uint64_t seed);

  // Tests every dynamic crash point in `profile`, one run each, fanned across
  // `jobs` worker threads (see campaign.h). Seeds derive from the injection
  // index and results come back in index order, so the output is identical at
  // any thread count.
  std::vector<InjectionResult> TestAll(const ProfileResult& profile, uint64_t seed, int jobs = 1);

  // Total virtual time spent across TestPoint calls (Table 11 test column).
  ctsim::Time total_virtual_ms() const { return total_virtual_ms_.load(); }

 private:
  const SystemUnderTest* system_;
  const ctanalysis::CrashPointResult* crash_points_;
  ctlog::OnlineFilter filter_;
  OracleBaseline baseline_;
  ctsim::Time normal_duration_ms_;
  ctsim::Time pre_read_wait_ms_;
  // Atomic: concurrent TestPoint calls accumulate into it. Integer addition
  // commutes, so the total is thread-count independent.
  std::atomic<ctsim::Time> total_virtual_ms_{0};
};

}  // namespace ctcore

#endif  // SRC_CORE_TRIGGER_H_
