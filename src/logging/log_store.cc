#include "src/logging/log_store.h"

#include "src/common/strings.h"

namespace ctlog {

void LogStore::Append(Instance instance) {
  instances_.push_back(std::move(instance));
  const Instance& stored = instances_.back();
  for (const auto& fn : subscribers_) {
    fn(stored);
  }
}

std::vector<Instance> LogStore::ForNode(const std::string& node) const {
  std::vector<Instance> out;
  for (const auto& instance : instances_) {
    if (instance.node == node) {
      out.push_back(instance);
    }
  }
  return out;
}

std::vector<Instance> LogStore::AtLeast(Level level) const {
  std::vector<Instance> out;
  for (const auto& instance : instances_) {
    if (static_cast<int>(instance.level) <= static_cast<int>(level)) {
      out.push_back(instance);
    }
  }
  return out;
}

void LogStore::Subscribe(Subscriber fn) { subscribers_.push_back(std::move(fn)); }

void LogStore::Clear() { instances_.clear(); }

void Logger::Log(int statement_id, std::vector<std::string> args) {
  const Statement& stmt = StatementRegistry::Instance().Get(statement_id);
  Instance instance;
  instance.time_ms = now_();
  instance.node = node_;
  instance.statement_id = statement_id;
  instance.level = stmt.level;
  instance.text = ctcommon::FormatBraces(stmt.tmpl, args);
  instance.args = std::move(args);
  store_->Append(std::move(instance));
}

void Logger::AdHoc(Level level, const std::string& tmpl, std::vector<std::string> args,
                   const std::string& location) {
  int id = StatementRegistry::Instance().Register(level, tmpl, location);
  Log(id, std::move(args));
}

void Logger::Info(const std::string& tmpl, std::vector<std::string> args,
                  const std::string& location) {
  AdHoc(Level::kInfo, tmpl, std::move(args), location);
}
void Logger::Warn(const std::string& tmpl, std::vector<std::string> args,
                  const std::string& location) {
  AdHoc(Level::kWarn, tmpl, std::move(args), location);
}
void Logger::Error(const std::string& tmpl, std::vector<std::string> args,
                   const std::string& location) {
  AdHoc(Level::kError, tmpl, std::move(args), location);
}
void Logger::Fatal(const std::string& tmpl, std::vector<std::string> args,
                   const std::string& location) {
  AdHoc(Level::kFatal, tmpl, std::move(args), location);
}
void Logger::Debug(const std::string& tmpl, std::vector<std::string> args,
                   const std::string& location) {
  AdHoc(Level::kDebug, tmpl, std::move(args), location);
}

}  // namespace ctlog
