// Per-run log storage and the Logger handle nodes write through.
//
// Each simulated cluster owns one LogStore; each node gets a Logger bound to
// its node id. Instances keep both the rendered text and the raw argument
// values. Offline log analysis deliberately ignores the raw values and
// re-derives them by pattern matching (as the paper must, since it only sees
// text), but tests use the raw values as ground truth.
#ifndef SRC_LOGGING_LOG_STORE_H_
#define SRC_LOGGING_LOG_STORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/logging/statement.h"

namespace ctlog {

// One emitted log line.
struct Instance {
  uint64_t time_ms = 0;
  std::string node;  // emitting node id, e.g. "node1:42349"
  int statement_id = -1;
  Level level = Level::kInfo;
  std::string text;
  std::vector<std::string> args;
};

class LogStore {
 public:
  LogStore() = default;
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  void Append(Instance instance);

  const std::vector<Instance>& instances() const { return instances_; }

  // Instances emitted by one node, in order.
  std::vector<Instance> ForNode(const std::string& node) const;

  // Instances at `level` or more severe.
  std::vector<Instance> AtLeast(Level level) const;

  // Live subscription: Logstash-like agents register here to see each line as
  // it is written (the paper's agents watch log-file changes).
  using Subscriber = std::function<void(const Instance&)>;
  void Subscribe(Subscriber fn);

  void Clear();

 private:
  std::vector<Instance> instances_;
  std::vector<Subscriber> subscribers_;
};

// Node-side logging facade mirroring the Log4j interface names the paper keys
// on (fatal/error/warn/info/debug/trace).
class Logger {
 public:
  Logger(LogStore* store, std::string node, std::function<uint64_t()> now)
      : store_(store), node_(std::move(node)), now_(std::move(now)) {}

  // Emits an instance of a registered statement with concrete argument values.
  void Log(int statement_id, std::vector<std::string> args);

  // Convenience wrappers that register an ad-hoc statement on first use.
  void Info(const std::string& tmpl, std::vector<std::string> args = {},
            const std::string& location = "");
  void Warn(const std::string& tmpl, std::vector<std::string> args = {},
            const std::string& location = "");
  void Error(const std::string& tmpl, std::vector<std::string> args = {},
             const std::string& location = "");
  void Fatal(const std::string& tmpl, std::vector<std::string> args = {},
             const std::string& location = "");
  void Debug(const std::string& tmpl, std::vector<std::string> args = {},
             const std::string& location = "");

  const std::string& node() const { return node_; }

 private:
  void AdHoc(Level level, const std::string& tmpl, std::vector<std::string> args,
             const std::string& location);

  LogStore* store_;
  std::string node_;
  std::function<uint64_t()> now_;
};

}  // namespace ctlog

#endif  // SRC_LOGGING_LOG_STORE_H_
