#include "src/logging/statement.h"

#include <mutex>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace ctlog {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kFatal:
      return "FATAL";
    case Level::kError:
      return "ERROR";
    case Level::kWarn:
      return "WARN";
    case Level::kInfo:
      return "INFO";
    case Level::kDebug:
      return "DEBUG";
    case Level::kTrace:
      return "TRACE";
  }
  return "?";
}

StatementRegistry& StatementRegistry::Instance() {
  static StatementRegistry* registry = new StatementRegistry();
  return *registry;
}

int StatementRegistry::Register(Level level, const std::string& tmpl,
                                const std::string& location) {
  Key key = std::make_tuple(level, tmpl, location);
  // The frozen index only changes at quiescent points, so the common case —
  // re-registering a statement the models declared long ago — takes no lock.
  auto it = frozen_index_.find(key);
  if (it != frozen_index_.end()) {
    return it->second;
  }
  std::unique_lock lock(mu_);
  auto overflow_it = overflow_index_.find(key);
  if (overflow_it != overflow_index_.end()) {
    return overflow_it->second;
  }
  Statement stmt;
  stmt.id = static_cast<int>(frozen_.size() + overflow_.size());
  stmt.level = level;
  stmt.tmpl = tmpl;
  stmt.location = location;
  stmt.num_args = ctcommon::CountPlaceholders(tmpl);
  overflow_.push_back(stmt);
  overflow_index_[key] = stmt.id;
  return stmt.id;
}

const Statement& StatementRegistry::Get(int id) const {
  CT_CHECK(id >= 0);
  if (id < static_cast<int>(frozen_.size())) {
    return frozen_[id];
  }
  std::shared_lock lock(mu_);
  const size_t offset = static_cast<size_t>(id) - frozen_.size();
  CT_CHECK(offset < overflow_.size());
  // Deque references survive concurrent push_back, so the reference stays
  // valid after the lock is released.
  return overflow_[offset];
}

int StatementRegistry::size() const {
  std::shared_lock lock(mu_);
  return static_cast<int>(frozen_.size() + overflow_.size());
}

std::vector<Statement> StatementRegistry::statements() const {
  std::vector<Statement> out(frozen_.begin(), frozen_.end());
  std::shared_lock lock(mu_);
  out.insert(out.end(), overflow_.begin(), overflow_.end());
  return out;
}

void StatementRegistry::Freeze() {
  std::unique_lock lock(mu_);
  frozen_.insert(frozen_.end(), overflow_.begin(), overflow_.end());
  frozen_index_.merge(overflow_index_);
  overflow_.clear();
  overflow_index_.clear();
}

}  // namespace ctlog
