#include "src/logging/statement.h"

#include <map>
#include <tuple>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace ctlog {

const char* LevelName(Level level) {
  switch (level) {
    case Level::kFatal:
      return "FATAL";
    case Level::kError:
      return "ERROR";
    case Level::kWarn:
      return "WARN";
    case Level::kInfo:
      return "INFO";
    case Level::kDebug:
      return "DEBUG";
    case Level::kTrace:
      return "TRACE";
  }
  return "?";
}

StatementRegistry& StatementRegistry::Instance() {
  static StatementRegistry* registry = new StatementRegistry();
  return *registry;
}

int StatementRegistry::Register(Level level, const std::string& tmpl,
                                const std::string& location) {
  static std::map<std::tuple<Level, std::string, std::string>, int>* index =
      new std::map<std::tuple<Level, std::string, std::string>, int>();
  auto key = std::make_tuple(level, tmpl, location);
  auto it = index->find(key);
  if (it != index->end()) {
    return it->second;
  }
  Statement stmt;
  stmt.id = static_cast<int>(statements_.size());
  stmt.level = level;
  stmt.tmpl = tmpl;
  stmt.location = location;
  stmt.num_args = ctcommon::CountPlaceholders(tmpl);
  statements_.push_back(stmt);
  (*index)[key] = stmt.id;
  return stmt.id;
}

const Statement& StatementRegistry::Get(int id) const {
  CT_CHECK(id >= 0 && id < static_cast<int>(statements_.size()));
  return statements_[id];
}

int StatementRegistry::size() const { return static_cast<int>(statements_.size()); }

}  // namespace ctlog
