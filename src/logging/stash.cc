#include "src/logging/stash.h"

#include "src/common/strings.h"

namespace ctlog {

bool OnlineFilter::IsNodeValue(const std::string& value) const {
  if (hosts.count(value) > 0) {
    return true;
  }
  size_t colon = value.rfind(':');
  if (colon == std::string::npos) {
    return false;
  }
  std::string host = value.substr(0, colon);
  std::string port = value.substr(colon + 1);
  if (port.empty() || hosts.count(host) == 0) {
    return false;
  }
  for (char c : port) {
    if (c < '0' || c > '9') {
      return false;
    }
  }
  return true;
}

void CustomStash::Process(const std::vector<std::string>& values) {
  // Pass 1: node values join the HashSet.
  for (const auto& value : values) {
    if (filter_.IsNodeValue(value)) {
      nodes_.insert(value);
    }
  }
  // Pass 2: find the anchor node for this instance. A node value in the
  // instance wins over an earlier association, so when a recovered component
  // re-registers on a different node ("attempt_2 registered on node2") its
  // values are re-anchored to the new node.
  std::optional<std::string> anchor;
  for (const auto& value : values) {
    if (filter_.IsNodeValue(value)) {
      anchor = value;
      break;
    }
  }
  if (!anchor.has_value()) {
    for (const auto& value : values) {
      auto node = Lookup(value);
      if (node.has_value()) {
        anchor = node;
        break;
      }
    }
  }
  if (!anchor.has_value()) {
    return;  // Unassociated values are discarded.
  }
  // Pass 3: associate (or re-associate) the remaining values with the anchor.
  for (const auto& value : values) {
    if (filter_.IsNodeValue(value) || value.empty()) {
      continue;
    }
    value_to_node_[value] = *anchor;
  }
}

std::optional<std::string> CustomStash::Lookup(const std::string& value) const {
  // A value shaped like a configured node id resolves to itself; other
  // values need a log-derived association.
  if (nodes_.count(value) > 0 || filter_.IsNodeValue(value)) {
    return value;
  }
  auto it = value_to_node_.find(value);
  if (it != value_to_node_.end()) {
    return it->second;
  }
  return std::nullopt;
}

void CustomStash::Clear() {
  nodes_.clear();
  value_to_node_.clear();
}

void LogstashAgent::OnInstance(const Instance& instance) {
  if (instance.node != node_) {
    return;
  }
  const OnlineFilter& filter = stash_->filter();
  auto it = filter.metainfo_args.find(instance.statement_id);
  if (it == filter.metainfo_args.end()) {
    return;  // Nothing in this statement was classified as meta-info offline.
  }
  std::vector<std::string> values;
  for (int index : it->second) {
    if (index >= 0 && index < static_cast<int>(instance.args.size())) {
      values.push_back(instance.args[index]);
    }
  }
  if (values.empty()) {
    return;
  }
  forwarded_value_count_ += static_cast<int>(values.size());
  stash_->Process(values);
}

}  // namespace ctlog
