// Online log analysis endpoints (§3.2.1, Fig. 6).
//
// During fault-injection testing a LogstashAgent on every node watches that
// node's log stream, extracts runtime values of meta-info variables using
// filters derived by the offline analysis, and forwards them to the
// CustomStash on the control node. The stash keeps exactly the two structures
// of Fig. 6: a HashSet of node values and a HashMap from every other
// meta-info value to its associated node. The Trigger queries the stash to
// decide which node to crash when a crash point is hit.
#ifndef SRC_LOGGING_STASH_H_
#define SRC_LOGGING_STASH_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/logging/log_store.h"

namespace ctlog {

// Filter configuration produced by offline analysis. `hosts` comes from the
// cluster configuration file; `metainfo_args[stmt] = arg indices` is the
// offline-derived extractor (the paper compiles the same knowledge into
// per-type toString regexes; statement-relative indices are the equivalent
// for our structured log stream).
struct OnlineFilter {
  std::set<std::string> hosts;
  std::map<int, std::vector<int>> metainfo_args;

  // True if `value` looks like a node id: "host:port" with a configured host,
  // or a bare configured host.
  bool IsNodeValue(const std::string& value) const;
};

class CustomStash {
 public:
  explicit CustomStash(OnlineFilter filter) : filter_(std::move(filter)) {}

  // Processes the meta-info values extracted from one log instance, in FIFO
  // order: node values enter the HashSet; other values are associated to the
  // node any co-occurring value already resolves to. Values that resolve to
  // no node are discarded (§3.2.1).
  void Process(const std::vector<std::string>& values);

  // Resolves a runtime meta-info value to its node, if known. A node value
  // resolves to itself.
  std::optional<std::string> Lookup(const std::string& value) const;

  const std::set<std::string>& nodes() const { return nodes_; }
  const std::map<std::string, std::string>& value_to_node() const { return value_to_node_; }
  const OnlineFilter& filter() const { return filter_; }

  void Clear();

 private:
  OnlineFilter filter_;
  std::set<std::string> nodes_;                       // Fig. 6 HashSet
  std::map<std::string, std::string> value_to_node_;  // Fig. 6 HashMap
};

// Per-node agent: subscribes to the cluster LogStore, filters instances from
// its node, and ships extracted meta-info values to the stash. One agent per
// node mirrors the paper's deployment; the shared LogStore plays the role of
// the per-node log files.
class LogstashAgent {
 public:
  LogstashAgent(std::string node, CustomStash* stash) : node_(std::move(node)), stash_(stash) {}

  // Called for every log instance in the store; ignores other nodes' lines.
  void OnInstance(const Instance& instance);

  int forwarded_value_count() const { return forwarded_value_count_; }

 private:
  std::string node_;
  CustomStash* stash_;
  int forwarded_value_count_ = 0;
};

}  // namespace ctlog

#endif  // SRC_LOGGING_STASH_H_
