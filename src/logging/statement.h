// Logging-statement registry.
//
// The paper's log analysis (§3.1.1) starts from the *logging statements* in
// the program: call sites of Log4j/SLF4J interfaces whose format string plus
// argument list define a log pattern ("Assigned container (.*) on host (.*)").
// Our mini systems register each logging statement once, at static-init or
// model-build time, and then emit instances by statement id. This keeps the
// static view (patterns) and the dynamic view (instances) linked exactly the
// way bytecode call sites and runtime lines are linked in the original tool.
#ifndef SRC_LOGGING_STATEMENT_H_
#define SRC_LOGGING_STATEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ctlog {

enum class Level { kFatal, kError, kWarn, kInfo, kDebug, kTrace };

const char* LevelName(Level level);

// One logging statement in the program under test.
struct Statement {
  int id = -1;
  Level level = Level::kInfo;
  // Brace template, e.g. "NodeManager from {} registered as {}".
  std::string tmpl;
  // Class::method that contains the statement (for reports only).
  std::string location;
  int num_args = 0;
};

// Process-wide registry of logging statements. Statements describe static
// program structure, so a singleton mirrors the single program under test per
// process; per-run state (instances) lives in LogStore instead.
class StatementRegistry {
 public:
  static StatementRegistry& Instance();

  // Registers a statement and returns its id. Registering the same
  // (level, tmpl, location) again returns the existing id, making static
  // initialization idempotent across repeated model builds.
  int Register(Level level, const std::string& tmpl, const std::string& location);

  const Statement& Get(int id) const;
  int size() const;
  const std::vector<Statement>& statements() const { return statements_; }

 private:
  StatementRegistry() = default;
  std::vector<Statement> statements_;
};

}  // namespace ctlog

#endif  // SRC_LOGGING_STATEMENT_H_
