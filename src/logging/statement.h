// Logging-statement registry.
//
// The paper's log analysis (§3.1.1) starts from the *logging statements* in
// the program: call sites of Log4j/SLF4J interfaces whose format string plus
// argument list define a log pattern ("Assigned container (.*) on host (.*)").
// Our mini systems register each logging statement once, at static-init or
// model-build time, and then emit instances by statement id. This keeps the
// static view (patterns) and the dynamic view (instances) linked exactly the
// way bytecode call sites and runtime lines are linked in the original tool.
#ifndef SRC_LOGGING_STATEMENT_H_
#define SRC_LOGGING_STATEMENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <shared_mutex>
#include <string>
#include <tuple>
#include <vector>

namespace ctlog {

enum class Level { kFatal, kError, kWarn, kInfo, kDebug, kTrace };

const char* LevelName(Level level);

// One logging statement in the program under test.
struct Statement {
  int id = -1;
  Level level = Level::kInfo;
  // Brace template, e.g. "NodeManager from {} registered as {}".
  std::string tmpl;
  // Class::method that contains the statement (for reports only).
  std::string location;
  int num_args = 0;
};

// Process-wide registry of logging statements. Statements describe static
// program structure, so a singleton mirrors the single program under test per
// process; per-run state (instances) lives in LogStore instead.
//
// The registry is read and written from concurrent injection runs (Logger::
// AdHoc registers on the fly), so it is split into an immutable frozen table
// — lock-free to read — and a shared_mutex-guarded overflow for statements
// first seen after the last Freeze(). Ids are dense and stable: the frozen
// table holds ids [0, frozen), the overflow continues from there.
class StatementRegistry {
 public:
  static StatementRegistry& Instance();

  // Registers a statement and returns its id. Registering the same
  // (level, tmpl, location) again returns the existing id, making static
  // initialization idempotent across repeated model builds. Thread-safe.
  int Register(Level level, const std::string& tmpl, const std::string& location);

  // Thread-safe; the reference stays valid for the registry's lifetime.
  const Statement& Get(int id) const;
  int size() const;
  // Snapshot of every registered statement, ordered by id.
  std::vector<Statement> statements() const;

  // Moves the overflow into the frozen table so subsequent lookups of those
  // statements are lock-free. NOT thread-safe: callers must be at a quiescent
  // point (no concurrent Register/Get) — the campaign engine freezes before
  // fanning runs out across worker threads.
  void Freeze();

 private:
  using Key = std::tuple<Level, std::string, std::string>;

  StatementRegistry() = default;

  std::vector<Statement> frozen_;  // ids [0, frozen_.size()); immutable between Freeze()s
  std::map<Key, int> frozen_index_;
  mutable std::shared_mutex mu_;   // guards overflow_ / overflow_index_
  std::deque<Statement> overflow_;  // deque: stable references across push_back
  std::map<Key, int> overflow_index_;
};

}  // namespace ctlog

#endif  // SRC_LOGGING_STATEMENT_H_
