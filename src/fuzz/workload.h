// Fuzzed workloads: deterministic op sequences over a system's grammar.
//
// A FuzzWorkload is the unit the coverage-guided fuzzer generates, mutates,
// stores in its corpus and replays: the base workload size, the seed of the
// run that will execute it, and a canonically ordered list of grammar ops
// (each an index into the model's GrammarOpDecl table plus a firing time, a
// target ordinal and a magnitude). The textual form is the corpus wire
// format — one line per op — and parsing it is strict: any structural
// anomaly throws instead of yielding a silently different workload.
#ifndef SRC_FUZZ_WORKLOAD_H_
#define SRC_FUZZ_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ctfuzz {

// One grammar op instance. target_ordinal picks the victim among the live
// nodes matching the op's declared prefix (modulo the pool size at firing
// time), so the same op is meaningful at any --scale level; magnitude feeds
// the op's %MAG% placeholder.
struct FuzzOp {
  uint64_t time_ms = 0;     // firing time, virtual ms after the run starts
  int op_index = 0;         // index into ProgramModel::grammar_ops()
  uint32_t target_ordinal = 0;
  uint32_t magnitude = 1;

  bool operator==(const FuzzOp& other) const {
    return time_ms == other.time_ms && op_index == other.op_index &&
           target_ordinal == other.target_ordinal && magnitude == other.magnitude;
  }
  bool operator<(const FuzzOp& other) const;
};

struct FuzzWorkload {
  uint64_t run_seed = 0;   // seed of the run executing this workload
  int workload_size = 1;   // base workload size handed to NewRun
  std::vector<FuzzOp> ops;  // canonically sorted (see Canonicalize)

  // Sorts ops into the canonical order serialization relies on.
  void Canonicalize();

  // Wire format:
  //   seed <run_seed>
  //   size <workload_size>
  //   ops <count>
  //   op <time_ms> <op_index> <target_ordinal> <magnitude>   (count lines)
  std::string Serialize() const;

  // Strict parse of Serialize output; throws std::runtime_error on any
  // structural anomaly (missing header, bad op count, trailing garbage).
  static FuzzWorkload Parse(const std::string& text);

  // FNV-1a 64 over the serialized form.
  uint64_t Hash() const;

  bool operator==(const FuzzWorkload& other) const {
    return run_seed == other.run_seed && workload_size == other.workload_size &&
           ops == other.ops;
  }
};

// FNV-1a 64 over a byte string (the hash the corpus checksums use).
uint64_t FnvHash(const std::string& bytes);

}  // namespace ctfuzz

#endif  // SRC_FUZZ_WORKLOAD_H_
