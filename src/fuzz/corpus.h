// The fuzzer's corpus: workloads that reached new coverage, in admission
// order. Admission order is part of the determinism contract — workers merge
// their batch results in global run-index order, so the corpus (and hence
// every later mutation draw) is byte-identical at any --jobs level.
//
// On disk a corpus is a directory with a MANIFEST listing entry files in
// admission order; each entry file is the workload wire format followed by a
// "hash <fnv64>" checksum line. Loading is fail-loud: a missing, truncated
// or checksum-divergent entry throws naming the offending file.
#ifndef SRC_FUZZ_CORPUS_H_
#define SRC_FUZZ_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/workload.h"

namespace ctfuzz {

struct CorpusEntry {
  FuzzWorkload workload;
  uint64_t trace_hash = 0;  // trace hash of the run that admitted it
  int run_index = -1;       // global fuzz run index that produced it
  int new_keys = 0;         // coverage keys it was first to reach
};

class Corpus {
 public:
  void Add(CorpusEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<CorpusEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const CorpusEntry& operator[](size_t i) const { return entries_[i]; }

  // Writes MANIFEST + one entry-NNNN.txt per entry under dir (created if
  // needed). Overwrites any previous corpus in the directory.
  void SaveTo(const std::string& dir) const;

  // Loads a corpus saved by SaveTo. Throws std::runtime_error naming the
  // file on any missing / truncated / corrupted entry.
  static Corpus LoadFrom(const std::string& dir);

 private:
  std::vector<CorpusEntry> entries_;
};

}  // namespace ctfuzz

#endif  // SRC_FUZZ_CORPUS_H_
