#include "src/fuzz/corpus.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ctfuzz {

namespace {

std::string EntryFileName(size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "entry-%04zu.txt", index);
  return name;
}

std::string ReadWholeFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("fuzz corpus: cannot open '" + path.string() + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

void Corpus::SaveTo(const std::string& dir) const {
  const std::filesystem::path root(dir);
  std::filesystem::create_directories(root);
  std::ofstream manifest(root / "MANIFEST", std::ios::binary | std::ios::trunc);
  if (!manifest) {
    throw std::runtime_error("fuzz corpus: cannot write '" + (root / "MANIFEST").string() + "'");
  }
  manifest << "entries " << entries_.size() << "\n";
  for (size_t i = 0; i < entries_.size(); ++i) {
    const CorpusEntry& entry = entries_[i];
    const std::string file = EntryFileName(i);
    std::ostringstream body;
    body << "run " << entry.run_index << " trace " << entry.trace_hash << " new "
         << entry.new_keys << "\n";
    body << entry.workload.Serialize();
    std::ofstream out(root / file, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("fuzz corpus: cannot write '" + (root / file).string() + "'");
    }
    out << body.str();
    out << "hash " << FnvHash(body.str()) << "\n";
    manifest << file << "\n";
  }
}

Corpus Corpus::LoadFrom(const std::string& dir) {
  const std::filesystem::path root(dir);
  const std::string manifest_text = ReadWholeFile(root / "MANIFEST");
  std::istringstream manifest(manifest_text);
  std::string tag;
  size_t count = 0;
  if (!(manifest >> tag >> count) || tag != "entries") {
    throw std::runtime_error("fuzz corpus: malformed MANIFEST in '" + dir + "'");
  }
  Corpus corpus;
  for (size_t i = 0; i < count; ++i) {
    std::string file;
    if (!(manifest >> file)) {
      throw std::runtime_error("fuzz corpus: MANIFEST truncated in '" + dir + "' (" +
                               std::to_string(i) + "/" + std::to_string(count) + " entries)");
    }
    const std::filesystem::path path = root / file;
    const std::string text = ReadWholeFile(path);
    // The checksum line is the last line; everything before it is the body.
    const size_t hash_pos = text.rfind("hash ");
    if (hash_pos == std::string::npos || (hash_pos != 0 && text[hash_pos - 1] != '\n')) {
      throw std::runtime_error("fuzz corpus: missing checksum line in '" + path.string() + "'");
    }
    const std::string body = text.substr(0, hash_pos);
    std::istringstream hash_line(text.substr(hash_pos));
    uint64_t stored = 0;
    if (!(hash_line >> tag >> stored) || tag != "hash") {
      throw std::runtime_error("fuzz corpus: malformed checksum line in '" + path.string() + "'");
    }
    if (FnvHash(body) != stored) {
      throw std::runtime_error("fuzz corpus: checksum mismatch in '" + path.string() +
                               "' (corrupted or truncated entry)");
    }
    std::istringstream header_in(body);
    std::string header;
    if (!std::getline(header_in, header)) {
      throw std::runtime_error("fuzz corpus: empty entry '" + path.string() + "'");
    }
    CorpusEntry entry;
    std::istringstream fields(header);
    std::string run_tag, trace_tag, new_tag;
    if (!(fields >> run_tag >> entry.run_index >> trace_tag >> entry.trace_hash >> new_tag >>
          entry.new_keys) ||
        run_tag != "run" || trace_tag != "trace" || new_tag != "new") {
      throw std::runtime_error("fuzz corpus: malformed entry header in '" + path.string() + "'");
    }
    const size_t body_start = body.find('\n');
    try {
      entry.workload = FuzzWorkload::Parse(body.substr(body_start + 1));
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("fuzz corpus: '" + path.string() + "': " + e.what());
    }
    corpus.Add(std::move(entry));
  }
  return corpus;
}

}  // namespace ctfuzz
