#include "src/fuzz/coverage.h"

namespace ctfuzz {

std::set<CoverageKey> HarvestCoverage(const ctrt::AccessTracer& tracer) {
  std::set<CoverageKey> keys;
  for (const auto& [point, hits] : tracer.dynamic_access_points()) {
    (void)hits;
    keys.insert(CoverageKey{/*io=*/false, point});
  }
  for (const auto& [point, hits] : tracer.dynamic_io_points()) {
    (void)hits;
    keys.insert(CoverageKey{/*io=*/true, point});
  }
  return keys;
}

}  // namespace ctfuzz
