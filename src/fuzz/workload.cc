#include "src/fuzz/workload.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ctfuzz {

namespace {

constexpr uint64_t kFnvBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

// Reads one "<tag> <value>" line; throws naming the expected tag.
uint64_t ReadTagged(std::istringstream& in, const std::string& tag) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("fuzz workload: truncated before '" + tag + "' line");
  }
  std::istringstream fields(line);
  std::string got;
  uint64_t value = 0;
  if (!(fields >> got >> value) || got != tag) {
    throw std::runtime_error("fuzz workload: expected '" + tag + " <n>', got '" + line + "'");
  }
  std::string extra;
  if (fields >> extra) {
    throw std::runtime_error("fuzz workload: trailing fields on '" + tag + "' line");
  }
  return value;
}

}  // namespace

uint64_t FnvHash(const std::string& bytes) {
  uint64_t hash = kFnvBasis;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= kFnvPrime;
  }
  return hash;
}

bool FuzzOp::operator<(const FuzzOp& other) const {
  if (time_ms != other.time_ms) {
    return time_ms < other.time_ms;
  }
  if (op_index != other.op_index) {
    return op_index < other.op_index;
  }
  if (target_ordinal != other.target_ordinal) {
    return target_ordinal < other.target_ordinal;
  }
  return magnitude < other.magnitude;
}

void FuzzWorkload::Canonicalize() { std::sort(ops.begin(), ops.end()); }

std::string FuzzWorkload::Serialize() const {
  std::ostringstream out;
  out << "seed " << run_seed << "\n";
  out << "size " << workload_size << "\n";
  out << "ops " << ops.size() << "\n";
  for (const FuzzOp& op : ops) {
    out << "op " << op.time_ms << " " << op.op_index << " " << op.target_ordinal << " "
        << op.magnitude << "\n";
  }
  return out.str();
}

FuzzWorkload FuzzWorkload::Parse(const std::string& text) {
  std::istringstream in(text);
  FuzzWorkload workload;
  workload.run_seed = ReadTagged(in, "seed");
  workload.workload_size = static_cast<int>(ReadTagged(in, "size"));
  const uint64_t count = ReadTagged(in, "ops");
  for (uint64_t i = 0; i < count; ++i) {
    std::string line;
    if (!std::getline(in, line)) {
      throw std::runtime_error("fuzz workload: truncated op list (" + std::to_string(i) + "/" +
                               std::to_string(count) + " ops)");
    }
    std::istringstream fields(line);
    std::string tag;
    FuzzOp op;
    if (!(fields >> tag >> op.time_ms >> op.op_index >> op.target_ordinal >> op.magnitude) ||
        tag != "op") {
      throw std::runtime_error("fuzz workload: malformed op line '" + line + "'");
    }
    std::string extra;
    if (fields >> extra) {
      throw std::runtime_error("fuzz workload: trailing fields on op line '" + line + "'");
    }
    workload.ops.push_back(op);
  }
  std::string trailing;
  if (std::getline(in, trailing) && !trailing.empty()) {
    throw std::runtime_error("fuzz workload: trailing garbage '" + trailing + "'");
  }
  return workload;
}

uint64_t FuzzWorkload::Hash() const { return FnvHash(Serialize()); }

}  // namespace ctfuzz
