#include "src/fuzz/generator.h"

#include <algorithm>

namespace ctfuzz {

OpSequenceGenerator::OpSequenceGenerator(const ctmodel::ProgramModel* model) : model_(model) {
  for (const ctmodel::GrammarOpDecl& op : model_->grammar_ops()) {
    total_weight_ += op.weight > 0 ? op.weight : 0;
  }
}

int OpSequenceGenerator::DrawOpIndex(ctcommon::Rng& rng) const {
  const auto& ops = model_->grammar_ops();
  int ticket = static_cast<int>(rng.Uniform(1, static_cast<uint64_t>(total_weight_)));
  for (size_t i = 0; i < ops.size(); ++i) {
    const int weight = ops[i].weight > 0 ? ops[i].weight : 0;
    if (ticket <= weight) {
      return static_cast<int>(i);
    }
    ticket -= weight;
  }
  return static_cast<int>(ops.size()) - 1;  // unreachable with sane weights
}

FuzzOp OpSequenceGenerator::DrawOp(ctcommon::Rng& rng) const {
  FuzzOp op;
  op.op_index = DrawOpIndex(rng);
  const ctmodel::GrammarOpDecl& decl = model_->grammar_ops()[op.op_index];
  op.time_ms = rng.Uniform(decl.min_time_ms, decl.max_time_ms);
  op.target_ordinal = static_cast<uint32_t>(rng.Uniform(0, 7));
  op.magnitude = static_cast<uint32_t>(
      rng.Uniform(1, static_cast<uint64_t>(std::max(1, decl.max_magnitude))));
  return op;
}

FuzzWorkload OpSequenceGenerator::Generate(ctcommon::Rng& rng, int workload_size) const {
  FuzzWorkload workload;
  workload.workload_size = workload_size;
  const int count = static_cast<int>(rng.Uniform(1, 4));
  for (int i = 0; i < count; ++i) {
    workload.ops.push_back(DrawOp(rng));
  }
  workload.run_seed = rng.Fork();
  workload.Canonicalize();
  return workload;
}

FuzzWorkload OpSequenceGenerator::Mutate(const FuzzWorkload& parent, ctcommon::Rng& rng) const {
  FuzzWorkload child = parent;
  // add / drop / retime / retarget one op; single-op parents never shrink to
  // an empty sequence (a fresh Generate covers that shape already).
  const int strategy = static_cast<int>(rng.Uniform(0, 3));
  if (strategy == 0 || child.ops.empty()) {
    child.ops.push_back(DrawOp(rng));
  } else if (strategy == 1 && child.ops.size() > 1) {
    child.ops.erase(child.ops.begin() + static_cast<long>(rng.Index(child.ops.size())));
  } else if (strategy == 2) {
    FuzzOp& op = child.ops[rng.Index(child.ops.size())];
    const ctmodel::GrammarOpDecl& decl = model_->grammar_ops()[op.op_index];
    op.time_ms = rng.Uniform(decl.min_time_ms, decl.max_time_ms);
  } else {
    FuzzOp& op = child.ops[rng.Index(child.ops.size())];
    op.target_ordinal = static_cast<uint32_t>(rng.Uniform(0, 7));
    const ctmodel::GrammarOpDecl& decl = model_->grammar_ops()[op.op_index];
    op.magnitude = static_cast<uint32_t>(
        rng.Uniform(1, static_cast<uint64_t>(std::max(1, decl.max_magnitude))));
  }
  child.run_seed = rng.Fork();
  child.Canonicalize();
  return child;
}

}  // namespace ctfuzz
