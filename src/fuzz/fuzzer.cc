#include "src/fuzz/fuzzer.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/core/campaign.h"
#include "src/core/executor.h"
#include "src/fuzz/generator.h"
#include "src/sim/trace.h"

namespace ctfuzz {

namespace {

// "fuzz-ops": the generation stream is (campaign seed ^ salt) mixed with the
// global run index — disjoint by construction from the workload stream
// (raw seed) and the network stream ("net-flt" salt in the cluster).
constexpr uint64_t kFuzzSalt = 0x66757a7a2d6f7073ull;
constexpr uint64_t kFnvBasis = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t MixHash(uint64_t acc, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    acc ^= (value >> (i * 8)) & 0xff;
    acc *= kFnvPrime;
  }
  return acc;
}

std::string ReplaceAll(std::string text, const std::string& what, const std::string& with) {
  size_t pos = 0;
  while ((pos = text.find(what, pos)) != std::string::npos) {
    text.replace(pos, what.size(), with);
    pos += with.size();
  }
  return text;
}

// Live cluster members whose id starts with `prefix`, sorted — the pool a
// target ordinal indexes into (modulo its size), so ops stay meaningful at
// any --scale and membership changes resolve deterministically at fire time.
std::vector<std::string> PoolWithPrefix(const ctsim::Cluster& cluster, const std::string& prefix,
                                        bool alive_only) {
  std::vector<std::string> pool;
  for (const std::string& id : cluster.node_ids()) {
    if (id.rfind(prefix, 0) != 0) {
      continue;
    }
    if (alive_only && !cluster.IsAlive(id)) {
      continue;
    }
    pool.push_back(id);
  }
  std::sort(pool.begin(), pool.end());
  return pool;
}

void FireOp(ctsim::Cluster& cluster, const ctmodel::GrammarOpDecl& decl, const FuzzOp& op) {
  const bool node_op = decl.kind != ctmodel::GrammarOpKind::kRpc;
  const std::vector<std::string> pool =
      PoolWithPrefix(cluster, decl.target_prefix, /*alive_only=*/node_op);
  if (pool.empty()) {
    return;
  }
  const std::string& target = pool[op.target_ordinal % pool.size()];
  switch (decl.kind) {
    case ctmodel::GrammarOpKind::kCrash:
      cluster.Crash(target);
      return;
    case ctmodel::GrammarOpKind::kShutdown:
      cluster.Shutdown(target);
      return;
    case ctmodel::GrammarOpKind::kRpc:
      break;
  }
  std::string node_pick;
  if (!decl.arg_prefix.empty()) {
    const std::vector<std::string> arg_pool =
        PoolWithPrefix(cluster, decl.arg_prefix, /*alive_only=*/false);
    if (arg_pool.empty()) {
      return;
    }
    node_pick = arg_pool[op.target_ordinal % arg_pool.size()];
  }
  std::vector<std::pair<std::string, std::string>> args;
  args.reserve(decl.args.size());
  for (const auto& [key, tpl] : decl.args) {
    std::string value = ReplaceAll(tpl, "%MAG%", std::to_string(op.magnitude));
    if (value.find("%NODE%") != std::string::npos) {
      if (node_pick.empty()) {
        return;  // op wants a node argument but declared no pool for it
      }
      value = ReplaceAll(value, "%NODE%", node_pick);
    }
    args.emplace_back(key, value);
  }
  std::string verb = decl.rpc_verb;
  if (verb.empty()) {
    const size_t dot = decl.target_method.rfind('.');
    verb = dot == std::string::npos ? decl.target_method : decl.target_method.substr(dot + 1);
  }
  cluster.Post("fuzzer", target, verb, std::move(args));
}

// Schedules every op of the workload onto the run's event loop (ownerless
// events, so they fire regardless of which nodes died in the meantime).
void ScheduleOps(ctcore::WorkloadRun& run, const ctmodel::ProgramModel& model,
                 const FuzzWorkload& workload) {
  ctsim::Cluster& cluster = run.cluster();
  for (const FuzzOp& op : workload.ops) {
    if (op.op_index < 0 || op.op_index >= model.NumGrammarOps()) {
      throw std::runtime_error("fuzz workload: op index " + std::to_string(op.op_index) +
                               " out of range for model with " +
                               std::to_string(model.NumGrammarOps()) + " grammar ops");
    }
    const ctmodel::GrammarOpDecl& decl = model.grammar_ops()[op.op_index];
    cluster.loop().Schedule(op.time_ms,
                            [&cluster, &decl, op] { FireOp(cluster, decl, op); });
  }
}

struct RunRecord {
  std::set<CoverageKey> keys;
  uint64_t trace_hash = 0;
  bool is_bug = false;
};

RunRecord ExecuteOne(const ctcore::SystemUnderTest& system, const std::set<int>& access_points,
                     const std::set<int>& io_points, const FuzzWorkload& workload,
                     ctobs::CampaignObserver* observer, int slot) {
  auto prepare = [&access_points, &io_points](ctrt::RunContext& context) {
    context.tracer().Reset(ctrt::TraceMode::kProfile);
    context.tracer().SetProfiledPoints(access_points, io_points);
  };
  auto run = system.NewRun(workload.workload_size, workload.run_seed, prepare);
  ctsim::Cluster& cluster = run->cluster();
  ctsim::TraceRecorder recorder;
  cluster.set_trace_recorder(&recorder);

  ctobs::RunObserver* run_observer = &run->context().observer();
  if (observer != nullptr && slot >= 0) {
    run_observer->Enable();
  }

  ScheduleOps(*run, system.model(), workload);
  const ctcore::RunOutcome outcome = ctcore::Executor::Execute(*run, /*baseline=*/nullptr);

  RunRecord record;
  record.keys = HarvestCoverage(run->context().tracer());
  record.trace_hash = recorder.trace().Hash();
  record.is_bug = outcome.IsBug();
  if (observer != nullptr && slot >= 0) {
    ctobs::MetricsShard& metrics = run_observer->metrics();
    metrics.Add("fuzz.ops", workload.ops.size());
    metrics.Add("trace.events", recorder.trace().size());
    observer->AbsorbRun(slot, *run_observer);
  }
  return record;
}

}  // namespace

FuzzResult WorkloadFuzzer::Run(const ctcore::SystemUnderTest& system,
                               const std::set<int>& access_points,
                               const std::set<int>& io_points,
                               const std::set<CoverageKey>& baseline,
                               const FuzzOptions& options) const {
  FuzzResult result;
  for (const CoverageKey& key : baseline) {
    result.coverage.Add(key);
  }
  const OpSequenceGenerator generator(&system.model());
  if (!generator.HasGrammar() || options.budget <= 0) {
    return result;
  }
  const int workload_size =
      options.workload_size > 0 ? options.workload_size : system.default_workload_size();
  const int batch_size = options.batch_size > 0 ? options.batch_size : 8;
  ctcore::CampaignEngine engine(options.jobs);
  uint64_t trace_hash = kFnvBasis;

  struct Batched {
    FuzzWorkload workload;
    RunRecord record;
  };

  int produced = 0;
  while (produced < options.budget) {
    const int n = std::min(batch_size, options.budget - produced);
    // Generation reads the corpus as it stood at batch start: a worker's
    // finish order can never change what another run in the batch draws.
    std::vector<FuzzWorkload> snapshot;
    snapshot.reserve(result.corpus.size());
    for (const CorpusEntry& entry : result.corpus.entries()) {
      snapshot.push_back(entry.workload);
    }
    std::vector<Batched> batch = engine.Map(n, [&](int i) {
      const int g = produced + i;
      ctcommon::Rng rng(SplitMix64((options.seed ^ kFuzzSalt) + static_cast<uint64_t>(g)));
      Batched out;
      out.workload = (!snapshot.empty() && rng.Chance(0.5))
                         ? generator.Mutate(snapshot[rng.Index(snapshot.size())], rng)
                         : generator.Generate(rng, workload_size);
      const int slot = options.observer != nullptr ? options.observer_slot_base + g : -1;
      out.record =
          ExecuteOne(system, access_points, io_points, out.workload, options.observer, slot);
      return out;
    });
    // Index-ordered merge: admission order, coverage set, and the aggregate
    // hash are functions of the global run index alone.
    for (int i = 0; i < n; ++i) {
      const int g = produced + i;
      Batched& b = batch[static_cast<size_t>(i)];
      trace_hash = MixHash(trace_hash, b.record.trace_hash);
      int fresh = 0;
      for (const CoverageKey& key : b.record.keys) {
        if (result.coverage.Add(key)) {
          ++fresh;
          result.new_keys.insert(key);  // coverage started as baseline
        }
      }
      if (b.record.is_bug) {
        ++result.bug_runs;
      }
      if (fresh > 0) {
        ++result.new_coverage_runs;
        CorpusEntry entry;
        entry.workload = std::move(b.workload);
        entry.trace_hash = b.record.trace_hash;
        entry.run_index = g;
        entry.new_keys = fresh;
        result.corpus.Add(std::move(entry));
      }
      ++result.runs;
    }
    produced += n;
  }
  result.trace_hash = trace_hash;
  return result;
}

void WorkloadFuzzer::ReplayCorpus(const ctcore::SystemUnderTest& system,
                                  const std::set<int>& access_points,
                                  const std::set<int>& io_points, const Corpus& corpus) const {
  for (size_t i = 0; i < corpus.size(); ++i) {
    const CorpusEntry& entry = corpus[i];
    const RunRecord record = ExecuteOne(system, access_points, io_points, entry.workload,
                                        /*observer=*/nullptr, /*slot=*/-1);
    if (record.trace_hash != entry.trace_hash) {
      throw std::runtime_error(
          "fuzz corpus replay: entry " + std::to_string(i) + " (run " +
          std::to_string(entry.run_index) + ") diverged: recorded trace hash " +
          std::to_string(entry.trace_hash) + ", replayed " + std::to_string(record.trace_hash));
    }
  }
}

}  // namespace ctfuzz
