// Coverage-guided workload fuzzer.
//
// The fuzzer explores the space of grammar-op sequences around a system's
// fixed workload script, keeping every workload that produces a dynamic
// point (⟨access point, canonical call string⟩ pair) the coverage map has
// not seen. Execution fans across a CampaignEngine in fixed-size batches:
// each batch generates its workloads from the corpus *snapshot at batch
// start* and a per-run RNG seeded from (campaign seed ^ fuzz salt, global
// run index), then merges results in global index order — so the corpus,
// the coverage set, and the aggregate trace hash are byte-identical at any
// --jobs level.
#ifndef SRC_FUZZ_FUZZER_H_
#define SRC_FUZZ_FUZZER_H_

#include <cstdint>
#include <set>
#include <string>

#include "src/core/system_under_test.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/coverage.h"
#include "src/fuzz/workload.h"
#include "src/obs/observer.h"

namespace ctfuzz {

struct FuzzOptions {
  int budget = 0;        // total fuzz runs to execute
  uint64_t seed = 2019;  // campaign seed; the fuzz stream is seed ^ salt
  int jobs = 1;
  // Runs generated per corpus snapshot. Fixed and jobs-independent: within a
  // batch every workload derives from the same snapshot, so scheduling order
  // cannot leak into generation.
  int batch_size = 8;
  int workload_size = 0;  // 0 = the system's default workload size
  // When set, each fuzz run's spans/metrics land in slot
  // observer_slot_base + global run index (offset past Phase 2's slots).
  ctobs::CampaignObserver* observer = nullptr;
  int observer_slot_base = 0;
};

struct FuzzResult {
  Corpus corpus;
  CoverageMap coverage;            // baseline ∪ everything fuzzing reached
  std::set<CoverageKey> new_keys;  // reached by fuzzing, absent from baseline
  int runs = 0;
  int new_coverage_runs = 0;  // runs that contributed >= 1 new key
  int bug_runs = 0;           // runs whose oracle verdict was a bug
  uint64_t trace_hash = 0;    // FNV mix of per-run trace hashes, index order
};

class WorkloadFuzzer {
 public:
  // Fuzzes `system` for options.budget runs. `access_points` / `io_points`
  // restrict profiling to the driver's candidate crash points (same sets the
  // profiler uses); `baseline` pre-loads the coverage map — pass the fixed
  // script's dynamic points so "new" means "beyond the script".
  FuzzResult Run(const ctcore::SystemUnderTest& system, const std::set<int>& access_points,
                 const std::set<int>& io_points, const std::set<CoverageKey>& baseline,
                 const FuzzOptions& options) const;

  // Re-executes every corpus entry and verifies its recorded trace hash;
  // throws std::runtime_error naming the entry on any divergence.
  void ReplayCorpus(const ctcore::SystemUnderTest& system, const std::set<int>& access_points,
                    const std::set<int>& io_points, const Corpus& corpus) const;
};

}  // namespace ctfuzz

#endif  // SRC_FUZZ_FUZZER_H_
