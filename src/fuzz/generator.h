// Seeded op-sequence generation over a system's declared grammar.
//
// The generator is stateless: every draw comes from the caller's Rng, which
// the fuzzer seeds from a dedicated `seed ^ fuzz` stream mixed with the
// run's global index — generation never touches the workload or fault RNG
// streams, and the same (seed, index, corpus snapshot) always produces the
// same workload regardless of thread count.
#ifndef SRC_FUZZ_GENERATOR_H_
#define SRC_FUZZ_GENERATOR_H_

#include "src/common/rng.h"
#include "src/fuzz/workload.h"
#include "src/model/program_model.h"

namespace ctfuzz {

class OpSequenceGenerator {
 public:
  explicit OpSequenceGenerator(const ctmodel::ProgramModel* model);

  // True if the model declares at least one grammar op.
  bool HasGrammar() const { return total_weight_ > 0; }

  // Fresh workload: 1-4 weighted ops, each timed inside its declared window.
  // The run seed is drawn from the same stream (it only feeds NewRun).
  FuzzWorkload Generate(ctcommon::Rng& rng, int workload_size) const;

  // Corpus mutation: add / drop / retime / retarget one op of the parent,
  // always under a fresh run seed so the mutant is a genuinely new run.
  FuzzWorkload Mutate(const FuzzWorkload& parent, ctcommon::Rng& rng) const;

 private:
  int DrawOpIndex(ctcommon::Rng& rng) const;
  FuzzOp DrawOp(ctcommon::Rng& rng) const;

  const ctmodel::ProgramModel* model_;
  int total_weight_ = 0;
};

}  // namespace ctfuzz

#endif  // SRC_FUZZ_GENERATOR_H_
