#include "src/fuzz/fuzz_phase.h"

#include "src/obs/observer.h"
#include "src/obs/span.h"

namespace ctfuzz {

FuzzResult RunFuzzPhase(const ctcore::SystemUnderTest& system, ctcore::SystemReport* report,
                        const FuzzPhaseOptions& options) {
  FuzzResult result;
  if (options.runs <= 0) {
    return result;
  }
  ctobs::RunObserver* driver_obs =
      options.observer != nullptr ? &options.observer->driver_observer() : nullptr;
  ctobs::ScopedSpan fuzz_span(driver_obs, nullptr, "fuzz", "driver");

  // The fixed workload script's dynamic points are the coverage floor: every
  // pair fuzzing "discovers" is by construction beyond the script.
  std::set<CoverageKey> baseline;
  for (const ctrt::DynamicPoint& point : report->profile.dynamic_access_points) {
    baseline.insert(CoverageKey{/*io=*/false, point});
  }
  for (const ctrt::DynamicPoint& point : report->profile.dynamic_io_points) {
    baseline.insert(CoverageKey{/*io=*/true, point});
  }

  FuzzOptions fuzz_options;
  fuzz_options.budget = options.runs;
  fuzz_options.seed = options.seed + 2000;
  fuzz_options.jobs = options.jobs;
  fuzz_options.observer = options.observer;
  fuzz_options.observer_slot_base = static_cast<int>(report->injections.size());

  const WorkloadFuzzer fuzzer;
  result = fuzzer.Run(system, report->crash_points.PointIds(), /*io_points=*/{}, baseline,
                      fuzz_options);

  if (!options.corpus_dir.empty()) {
    result.corpus.SaveTo(options.corpus_dir);
  }

  ctcore::FuzzSummary& summary = report->fuzz;
  summary.active = true;
  summary.runs = result.runs;
  summary.corpus_size = static_cast<int>(result.corpus.size());
  summary.baseline_pairs = static_cast<int>(baseline.size());
  summary.coverage_pairs = static_cast<int>(result.coverage.size());
  summary.new_pairs = static_cast<int>(result.new_keys.size());
  summary.new_coverage_runs = result.new_coverage_runs;
  summary.bug_runs = result.bug_runs;
  summary.trace_hash = result.trace_hash;

  if (driver_obs != nullptr) {
    ctobs::MetricsShard& metrics = driver_obs->metrics();
    metrics.SetGauge("fuzz.corpus_size", static_cast<int64_t>(result.corpus.size()));
    metrics.Add("fuzz.new_coverage", static_cast<uint64_t>(result.new_keys.size()));
    metrics.Add("fuzz.runs", static_cast<uint64_t>(result.runs));
  }
  return result;
}

}  // namespace ctfuzz
