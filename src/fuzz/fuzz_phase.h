// Driver glue: runs a fuzzing phase after the CrashTuner pipeline and folds
// the result into the report's FuzzSummary.
//
// Lives in ct_fuzz (not ct_core) so the core driver keeps no dependency on
// the fuzzer; the CLI tools call RunFuzzPhase when --fuzz N is given, before
// handing the report to the writer.
#ifndef SRC_FUZZ_FUZZ_PHASE_H_
#define SRC_FUZZ_FUZZ_PHASE_H_

#include <cstdint>
#include <string>

#include "src/core/crashtuner.h"
#include "src/fuzz/fuzzer.h"

namespace ctfuzz {

struct FuzzPhaseOptions {
  int runs = 0;            // fuzz budget; 0 leaves the report untouched
  std::string corpus_dir;  // when set, the final corpus is saved here
  // Campaign seed (DriverOptions::seed). The phase fuzzes under seed + 2000,
  // keeping its runs disjoint from profiling (seed) and Phase 2 (seed+1000).
  uint64_t seed = 2019;
  int jobs = 1;
  // Same observer the driver used (may be null): the phase opens a "fuzz"
  // driver span, each run lands in a slot past Phase 2's, and corpus/coverage
  // gauges go on the driver observer's metrics.
  ctobs::CampaignObserver* observer = nullptr;
};

// Fuzzes `system` seeded by the pipeline's report: candidate points are the
// report's static crash points, baseline coverage is the fixed script's
// profiled dynamic points. Fills report->fuzz (active = true) and saves the
// corpus when corpus_dir is set. Returns the full fuzz result for callers
// that need the corpus or coverage sets (tests, bench).
FuzzResult RunFuzzPhase(const ctcore::SystemUnderTest& system, ctcore::SystemReport* report,
                        const FuzzPhaseOptions& options);

}  // namespace ctfuzz

#endif  // SRC_FUZZ_FUZZ_PHASE_H_
