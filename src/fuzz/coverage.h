// Coverage map for the workload fuzzer.
//
// A coverage key is exactly the paper's dynamic crash point — an
// ⟨access/io point id, canonical bounded call string⟩ pair as harvested from
// the runtime tracer — so "new coverage" means "a dynamic point the fixed
// workload script never produced", which is the artifact Phase 2 injects at.
#ifndef SRC_FUZZ_COVERAGE_H_
#define SRC_FUZZ_COVERAGE_H_

#include <cstddef>
#include <set>
#include <string>

#include "src/runtime/tracer.h"

namespace ctfuzz {

struct CoverageKey {
  bool io = false;  // false: meta-info access point, true: io point
  ctrt::DynamicPoint point;

  bool operator<(const CoverageKey& other) const {
    if (io != other.io) {
      return io < other.io;
    }
    return point < other.point;
  }
  bool operator==(const CoverageKey& other) const {
    return io == other.io && point == other.point;
  }
};

class CoverageMap {
 public:
  // Returns true iff the key was not already covered.
  bool Add(const CoverageKey& key) { return keys_.insert(key).second; }

  bool Contains(const CoverageKey& key) const { return keys_.count(key) > 0; }
  size_t size() const { return keys_.size(); }
  const std::set<CoverageKey>& keys() const { return keys_; }

 private:
  std::set<CoverageKey> keys_;
};

// Collects the coverage keys of a finished profiled run from its tracer.
std::set<CoverageKey> HarvestCoverage(const ctrt::AccessTracer& tracer);

}  // namespace ctfuzz

#endif  // SRC_FUZZ_COVERAGE_H_
