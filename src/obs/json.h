// Minimal recursive-descent JSON reader.
//
// Just enough to load the files this library writes back in — metrics
// snapshots for ctstat and trace files for tests. Objects preserve key
// order (vector of pairs) so diagnostics can mirror the file. Parse errors
// throw std::runtime_error with an offset.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace ctobs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array_items;
  std::vector<std::pair<std::string, JsonValue>> object_items;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // First value under `key`, or null when absent / not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Throws std::runtime_error on malformed input or trailing garbage.
JsonValue ParseJson(const std::string& text);

}  // namespace ctobs

#endif  // SRC_OBS_JSON_H_
