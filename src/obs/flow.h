// Causal message flows: which span sent which message, and which delivery
// caused which.
//
// The cluster stamps every posted message with the currently-dispatching
// flow id (the delivery being handled, 0 for a root send from a timer or
// node start) and the originating span id read off the run observer. At
// delivery time it allocates the next flow id and reports the edge here.
// Flow ids are assigned in delivery order by the deterministic event loop,
// so the recorded DAG — like every other deterministic observation — is
// byte-identical at any --jobs count.
//
// Raw records are capped per run (kMaxRecords); the aggregate counters keep
// counting past the cap so campaign-level statistics stay exact while the
// per-run memory stays bounded at scale.
#ifndef SRC_OBS_FLOW_H_
#define SRC_OBS_FLOW_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ctobs {

// One delivered message. `parent` is the flow id of the delivery whose
// handler posted this message (0 = root: a timer tick, node start, or the
// workload driver). `origin_span` is the span id open on the run observer
// when the message was posted (0 = no span open).
struct FlowRecord {
  uint64_t id = 0;
  uint64_t parent = 0;
  uint64_t origin_span = 0;
  std::string method;
  std::string from;
  std::string to;
  uint64_t sim_ms = 0;

  bool is_root() const { return parent == 0; }
};

class FlowRecorder {
 public:
  static constexpr size_t kMaxRecords = 4096;

  void Record(FlowRecord record) {
    ++messages_;
    if (record.parent == 0) {
      ++roots_;
    }
    if (record.origin_span != 0) {
      ++span_resolved_;
    }
    // Flow ids are allocated sequentially from 1 and a parent is always
    // delivered before its children, so depth is a single lookup.
    uint32_t depth = 1;
    if (record.parent != 0 && record.parent <= depth_by_id_.size()) {
      depth = depth_by_id_[record.parent - 1] + 1;
    }
    depth_by_id_.push_back(depth);
    max_depth_ = std::max<uint64_t>(max_depth_, depth);
    ++per_method_[record.method];
    if (records_.size() < kMaxRecords) {
      records_.push_back(std::move(record));
    } else {
      ++dropped_;
    }
  }

  const std::vector<FlowRecord>& records() const { return records_; }
  uint64_t messages() const { return messages_; }
  uint64_t roots() const { return roots_; }
  uint64_t span_resolved() const { return span_resolved_; }
  uint64_t max_depth() const { return max_depth_; }
  uint64_t dropped() const { return dropped_; }
  const std::map<std::string, uint64_t>& per_method() const { return per_method_; }

  // Depth of a delivered flow id (roots are depth 1); 0 for unknown ids.
  uint64_t DepthOf(uint64_t id) const {
    if (id == 0 || id > depth_by_id_.size()) {
      return 0;
    }
    return depth_by_id_[id - 1];
  }

  bool empty() const { return messages_ == 0; }

 private:
  std::vector<FlowRecord> records_;
  std::vector<uint32_t> depth_by_id_;
  std::map<std::string, uint64_t> per_method_;
  uint64_t messages_ = 0;
  uint64_t roots_ = 0;
  uint64_t span_resolved_ = 0;
  uint64_t max_depth_ = 0;
  uint64_t dropped_ = 0;
};

}  // namespace ctobs

#endif  // SRC_OBS_FLOW_H_
