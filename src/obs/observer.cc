#include "src/obs/observer.h"

#include "src/obs/chrome_trace.h"
#include "src/obs/snapshot.h"

namespace ctobs {

void CampaignObserver::AbsorbRun(int slot, const RunObserver& run) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.shard(slot) = run.metrics();
  spans_by_slot_[slot] = run.spans().events();
}

int CampaignObserver::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_.num_shards();
}

SystemMetrics CampaignObserver::Finalize() const {
  std::lock_guard<std::mutex> lock(mu_);
  SystemMetrics out;
  out.system = system_;
  out.jobs = jobs_;
  out.campaign_wall_seconds = campaign_wall_seconds_;
  out.runs = registry_.num_shards();
  out.metrics = registry_.Aggregate();
  // Fold spans into per-phase sim-time histograms, walking slots in index
  // order; wall durations go into the nondeterministic sidecar maps. Model-
  // named injection spans share one "phase.injection" histogram and keep
  // their identity as per-span counters.
  for (const auto& [slot, events] : spans_by_slot_) {
    for (const SpanEvent& event : events) {
      if (event.category == "injection") {
        out.metrics.Observe("phase.injection", event.sim_duration_ms());
        out.metrics.Add("span." + event.name);
        out.phase_wall_seconds["injection"] += event.wall_seconds();
      } else {
        out.metrics.Observe("phase." + event.name, event.sim_duration_ms());
        out.phase_wall_seconds[event.name] += event.wall_seconds();
      }
    }
  }
  for (const SpanEvent& event : driver_observer_.spans().events()) {
    out.driver_wall_seconds[event.name] += event.wall_seconds();
  }
  return out;
}

void CampaignObserver::AppendChromeTrace(ChromeTraceWriter* writer, int pid,
                                         const std::string& process_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  writer->AddProcessName(pid, process_name);
  // Driver phases on a wall axis normalized to the earliest driver span.
  const auto& driver_events = driver_observer_.spans().events();
  if (!driver_events.empty()) {
    writer->AddThreadName(pid, 0, "driver (wall)");
    uint64_t origin_ns = driver_events.front().wall_begin_ns;
    for (const SpanEvent& event : driver_events) {
      origin_ns = std::min(origin_ns, event.wall_begin_ns);
    }
    for (const SpanEvent& event : driver_events) {
      writer->AddCompleteEvent(pid, 0, event,
                               static_cast<double>(event.wall_begin_ns - origin_ns) / 1e3,
                               static_cast<double>(event.wall_end_ns - event.wall_begin_ns) /
                                   1e3);
    }
  }
  // One thread per injection slot on the virtual-time axis (deterministic).
  for (const auto& [slot, events] : spans_by_slot_) {
    const int tid = slot + 1;
    writer->AddThreadName(pid, tid, "run #" + std::to_string(slot) + " (virtual)");
    for (const SpanEvent& event : events) {
      writer->AddCompleteEvent(pid, tid, event, static_cast<double>(event.sim_begin_ms) * 1e3,
                               static_cast<double>(event.sim_duration_ms()) * 1e3);
    }
  }
}

}  // namespace ctobs
