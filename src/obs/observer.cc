#include "src/obs/observer.h"

#include <algorithm>

#include "src/obs/chrome_trace.h"
#include "src/obs/snapshot.h"

namespace ctobs {

void RunObserver::BeginSpan(SpanEvent* event) {
  event->id = ++next_span_id_;
  event->parent_id = open_spans_.empty() ? 0 : open_spans_.back().id;
  std::string path =
      open_spans_.empty() ? event->name : open_spans_.back().path + "/" + event->name;
  if (!event->component.empty()) {
    // Charge all virtual time since the previous component-span open to this
    // component: the dwell totals partition the run's clock advance across
    // the instrumented sweeps, deterministically.
    const uint64_t now = event->sim_begin_ms;
    const uint64_t delta = now >= last_dwell_mark_ms_ ? now - last_dwell_mark_ms_ : 0;
    metrics_.Add("component." + event->name + ".dwell_ms", delta);
    metrics_.Add("component." + event->name + ".events");
    last_dwell_mark_ms_ = now;
  }
  open_spans_.push_back(OpenSpan{event->id, std::move(path)});
}

void RunObserver::EndSpan(SpanEvent event) {
  std::string path = event.name;
  if (!open_spans_.empty() && open_spans_.back().id == event.id) {
    path = std::move(open_spans_.back().path);
    open_spans_.pop_back();
  }
  SpanAggregate& aggregate = span_tree_[path];
  if (aggregate.count == 0) {
    aggregate.name = event.name;
    aggregate.component = event.component;
  }
  ++aggregate.count;
  aggregate.sim_ms += event.sim_duration_ms();
  spans_.Append(std::move(event));
}

void CampaignObserver::AbsorbRun(int slot, const RunObserver& run) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsShard shard = run.metrics();
  if (run.spans().dropped() > 0) {
    shard.Add("spans.dropped", run.spans().dropped());
  }
  registry_.shard(slot) = std::move(shard);
  spans_by_slot_[slot] = run.spans().events();
  span_tree_by_slot_[slot] = run.span_tree();
  if (!run.flows().empty()) {
    flows_by_slot_[slot] = run.flows();
  }
}

void CampaignObserver::AbsorbDossier(int slot, Dossier dossier) {
  std::lock_guard<std::mutex> lock(mu_);
  dossiers_by_slot_[slot] = std::move(dossier);
}

std::vector<Dossier> CampaignObserver::dossiers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Dossier> out;
  out.reserve(dossiers_by_slot_.size());
  for (const auto& [slot, dossier] : dossiers_by_slot_) {
    out.push_back(dossier);
  }
  return out;
}

int CampaignObserver::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return registry_.num_shards();
}

SystemMetrics CampaignObserver::Finalize() const {
  std::lock_guard<std::mutex> lock(mu_);
  SystemMetrics out;
  out.system = system_;
  out.jobs = jobs_;
  out.campaign_wall_seconds = campaign_wall_seconds_;
  out.runs = registry_.num_shards();
  out.metrics = registry_.Aggregate();
  // Fold spans into per-phase sim-time histograms, walking slots in index
  // order; wall durations go into the nondeterministic sidecar maps. Model-
  // named injection spans share one "phase.injection" histogram and keep
  // their identity as per-span counters. Component spans stay out of the
  // phase histograms — they live in the span tree and the component.*
  // dwell counters instead.
  for (const auto& [slot, events] : spans_by_slot_) {
    for (const SpanEvent& event : events) {
      if (event.category == "component") {
        continue;
      }
      if (event.category == "injection") {
        out.metrics.Observe("phase.injection", event.sim_duration_ms());
        out.metrics.Add("span." + event.name);
        out.phase_wall_seconds["injection"] += event.wall_seconds();
      } else {
        out.metrics.Observe("phase." + event.name, event.sim_duration_ms());
        out.phase_wall_seconds[event.name] += event.wall_seconds();
      }
    }
  }
  // Merge per-slot span trees in slot order; the path keys give a stable
  // lexicographic order in which parents precede their children.
  std::map<std::string, SpanAggregate> merged_tree;
  for (const auto& [slot, tree] : span_tree_by_slot_) {
    for (const auto& [path, aggregate] : tree) {
      SpanAggregate& into = merged_tree[path];
      if (into.count == 0) {
        into.name = aggregate.name;
        into.component = aggregate.component;
      }
      into.count += aggregate.count;
      into.sim_ms += aggregate.sim_ms;
    }
  }
  std::map<std::string, int> index_of_path;
  for (const auto& [path, aggregate] : merged_tree) {
    SpanTreeNode node;
    node.path = path;
    node.name = aggregate.name;
    node.component = aggregate.component;
    node.count = aggregate.count;
    node.sim_ms = aggregate.sim_ms;
    if (path.size() > aggregate.name.size()) {
      const std::string parent_path =
          path.substr(0, path.size() - aggregate.name.size() - 1);
      auto found = index_of_path.find(parent_path);
      node.parent = found != index_of_path.end() ? found->second : -1;
    }
    index_of_path[path] = static_cast<int>(out.span_tree.size());
    out.span_tree.push_back(std::move(node));
  }
  // Merge flow statistics in slot order (sums and a max; order-insensitive,
  // but keep the deterministic walk anyway).
  for (const auto& [slot, flows] : flows_by_slot_) {
    out.flows.messages += flows.messages();
    out.flows.roots += flows.roots();
    out.flows.span_resolved += flows.span_resolved();
    out.flows.max_depth = std::max(out.flows.max_depth, flows.max_depth());
    out.flows.records_dropped += flows.dropped();
    for (const auto& [method, count] : flows.per_method()) {
      out.flows.per_method[method] += count;
    }
  }
  for (const SpanEvent& event : driver_observer_.spans().events()) {
    out.driver_wall_seconds[event.name] += event.wall_seconds();
  }
  return out;
}

void CampaignObserver::AppendChromeTrace(ChromeTraceWriter* writer, int pid,
                                         const std::string& process_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  writer->AddProcessName(pid, process_name);
  // Driver phases on a wall axis normalized to the earliest driver span.
  const auto& driver_events = driver_observer_.spans().events();
  if (!driver_events.empty()) {
    writer->AddThreadName(pid, 0, "driver (wall)");
    uint64_t origin_ns = driver_events.front().wall_begin_ns;
    for (const SpanEvent& event : driver_events) {
      origin_ns = std::min(origin_ns, event.wall_begin_ns);
    }
    for (const SpanEvent& event : driver_events) {
      writer->AddCompleteEvent(pid, 0, event,
                               static_cast<double>(event.wall_begin_ns - origin_ns) / 1e3,
                               static_cast<double>(event.wall_end_ns - event.wall_begin_ns) /
                                   1e3);
    }
  }
  // One thread per injection slot on the virtual-time axis (deterministic).
  for (const auto& [slot, events] : spans_by_slot_) {
    const int tid = slot + 1;
    writer->AddThreadName(pid, tid, "run #" + std::to_string(slot) + " (virtual)");
    for (const SpanEvent& event : events) {
      writer->AddCompleteEvent(pid, tid, event, static_cast<double>(event.sim_begin_ms) * 1e3,
                               static_cast<double>(event.sim_duration_ms()) * 1e3);
    }
  }
  // Perfetto flow arrows: for every retained delivery caused by another
  // retained delivery, a start event at the parent's timestamp and a finish
  // at the child's. Flow ids are sequential from 1 and recorded in order, so
  // a parent id within the retained range is always present.
  for (const auto& [slot, flows] : flows_by_slot_) {
    const int tid = slot + 1;
    for (const FlowRecord& record : flows.records()) {
      if (record.parent == 0 || record.parent > flows.records().size()) {
        continue;
      }
      const FlowRecord& parent = flows.records()[record.parent - 1];
      const uint64_t flow_id =
          (static_cast<uint64_t>(slot + 1) << 32) | record.id;
      writer->AddFlowStart(pid, tid, record.method, flow_id,
                           static_cast<double>(parent.sim_ms) * 1e3);
      writer->AddFlowFinish(pid, tid, record.method, flow_id,
                            static_cast<double>(record.sim_ms) * 1e3);
    }
  }
}

}  // namespace ctobs
