#include "src/obs/metrics.h"

#include <algorithm>

#include "src/common/check.h"

namespace ctobs {

const std::vector<uint64_t>& Histogram::DefaultBounds() {
  static const std::vector<uint64_t> kBounds = {
      1,    2,    5,     10,    20,    50,    100,    200,    500,
      1000, 2000, 5000,  10000, 20000, 50000, 100000, 200000, 500000};
  return kBounds;
}

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  CT_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CT_CHECK_MSG(bounds_[i - 1] < bounds_[i], "histogram bounds must ascend");
  }
  counts_.assign(bounds_.size() + 1, 0);
}

Histogram Histogram::FromParts(std::vector<uint64_t> bounds, std::vector<uint64_t> counts,
                               uint64_t sum, uint64_t max) {
  Histogram histogram(std::move(bounds));
  CT_CHECK_MSG(counts.size() == histogram.bounds_.size() + 1,
               "histogram counts must cover every bound plus overflow");
  histogram.counts_ = std::move(counts);
  histogram.count_ = 0;
  for (uint64_t bucket : histogram.counts_) {
    histogram.count_ += bucket;
  }
  histogram.sum_ = sum;
  histogram.max_ = max;
  return histogram;
}

void Histogram::Observe(uint64_t value) {
  // First bucket whose inclusive upper edge admits the value; everything
  // past the last bound lands in the overflow bucket.
  size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  ++counts_[bucket];
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  CT_CHECK_MSG(bounds_ == other.bounds_, "histogram merge requires identical bounds");
  for (size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the percentile sample, 1-based (nearest-rank with interpolation
  // inside the bucket that holds it).
  const double rank = p / 100.0 * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const uint64_t before = cumulative;
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double lower = i == 0 ? 0.0 : static_cast<double>(bounds_[i - 1]);
      const double upper =
          i < bounds_.size() ? static_cast<double>(bounds_[i]) : static_cast<double>(max_);
      const double fraction =
          (rank - static_cast<double>(before)) / static_cast<double>(counts_[i]);
      return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
    }
  }
  return static_cast<double>(max_);
}

void MetricsShard::Add(const std::string& name, uint64_t delta) { counters_[name] += delta; }

void MetricsShard::SetGauge(const std::string& name, int64_t value) {
  auto [it, inserted] = gauges_.try_emplace(name, value);
  if (!inserted) {
    it->second = std::max(it->second, value);
  }
}

void MetricsShard::Observe(const std::string& name, uint64_t value) {
  histograms_.try_emplace(name).first->second.Observe(value);
}

uint64_t MetricsShard::counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsShard::Merge(const MetricsShard& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    SetGauge(name, value);
  }
  for (const auto& [name, histogram] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(name, Histogram(histogram.bounds()));
    it->second.Merge(histogram);
  }
}

MetricsShard MetricsRegistry::Aggregate() const {
  MetricsShard out;
  // std::map iterates in ascending slot order: the aggregation is the
  // index-ordered fold regardless of which worker filled which slot when.
  for (const auto& [slot, shard] : shards_) {
    out.Merge(shard);
  }
  return out;
}

}  // namespace ctobs
