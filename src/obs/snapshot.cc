#include "src/obs/snapshot.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ctobs {

namespace {

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  return buffer;
}

void AppendHistogram(std::ostringstream& out, const Histogram& histogram) {
  out << "{\"bounds\":[";
  for (size_t i = 0; i < histogram.bounds().size(); ++i) {
    out << (i > 0 ? "," : "") << histogram.bounds()[i];
  }
  out << "],\"counts\":[";
  for (size_t i = 0; i < histogram.bucket_counts().size(); ++i) {
    out << (i > 0 ? "," : "") << histogram.bucket_counts()[i];
  }
  out << "],\"count\":" << histogram.count() << ",\"sum\":" << histogram.sum()
      << ",\"max\":" << histogram.max() << "}";
}

void AppendWallMap(std::ostringstream& out, const std::map<std::string, double>& seconds) {
  out << "{";
  bool first = true;
  for (const auto& [name, value] : seconds) {
    out << (first ? "" : ",") << "\"" << EscapeJson(name) << "\":" << FormatDouble(value);
    first = false;
  }
  out << "}";
}

void AppendSpanTree(std::ostringstream& out, const std::vector<SpanTreeNode>& tree) {
  out << "[";
  for (size_t i = 0; i < tree.size(); ++i) {
    const SpanTreeNode& node = tree[i];
    out << (i > 0 ? "," : "") << "{\"path\":\"" << EscapeJson(node.path) << "\",\"name\":\""
        << EscapeJson(node.name) << "\",\"component\":\"" << EscapeJson(node.component)
        << "\",\"parent\":" << node.parent << ",\"count\":" << node.count
        << ",\"sim_ms\":" << node.sim_ms << "}";
  }
  out << "]";
}

void AppendFlows(std::ostringstream& out, const FlowStats& flows) {
  out << "{\"messages\":" << flows.messages << ",\"roots\":" << flows.roots
      << ",\"span_resolved\":" << flows.span_resolved << ",\"max_depth\":" << flows.max_depth
      << ",\"records_dropped\":" << flows.records_dropped << ",\"per_method\":{";
  bool first = true;
  for (const auto& [method, count] : flows.per_method) {
    out << (first ? "" : ",") << "\"" << EscapeJson(method) << "\":" << count;
    first = false;
  }
  out << "}}";
}

void AppendSystem(std::ostringstream& out, const SystemMetrics& system, bool include_wall) {
  out << "{\"system\":\"" << EscapeJson(system.system) << "\",\"runs\":" << system.runs;
  out << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : system.metrics.counters()) {
    out << (first ? "" : ",") << "\"" << EscapeJson(name) << "\":" << value;
    first = false;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : system.metrics.gauges()) {
    out << (first ? "" : ",") << "\"" << EscapeJson(name) << "\":" << value;
    first = false;
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : system.metrics.histograms()) {
    out << (first ? "" : ",") << "\"" << EscapeJson(name) << "\":";
    AppendHistogram(out, histogram);
    first = false;
  }
  out << "},\"span_tree\":";
  AppendSpanTree(out, system.span_tree);
  out << ",\"flows\":";
  AppendFlows(out, system.flows);
  if (include_wall) {
    const double runs_per_second =
        system.campaign_wall_seconds > 0
            ? static_cast<double>(system.runs) / system.campaign_wall_seconds
            : 0.0;
    out << ",\"wall\":{\"jobs\":" << system.jobs
        << ",\"campaign_seconds\":" << FormatDouble(system.campaign_wall_seconds)
        << ",\"runs_per_second\":" << FormatDouble(runs_per_second) << ",\"phases\":";
    AppendWallMap(out, system.phase_wall_seconds);
    out << ",\"driver\":";
    AppendWallMap(out, system.driver_wall_seconds);
    out << "}";
  }
  out << "}";
}

}  // namespace

std::string MetricsSnapshot::ToJson(bool include_wall) const {
  std::ostringstream out;
  out << "{\"schema\":\"" << kSnapshotSchema << "\",\"systems\":[";
  for (size_t i = 0; i < systems.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    AppendSystem(out, systems[i], include_wall);
  }
  out << "]}";
  return out.str();
}

bool MetricsSnapshot::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson(/*include_wall=*/true) << "\n";
  return static_cast<bool>(out);
}

}  // namespace ctobs
