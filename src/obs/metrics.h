// Deterministic campaign metrics.
//
// The injection campaign is embarrassingly parallel, and so is its
// measurement: every run writes counters, gauges and fixed-bucket histograms
// into its own shard, and shards are merged strictly in slot (injection
// index) order after the pool drains — the same discipline campaign.h uses
// for results. Because every recorded value is derived from simulator events
// (virtual time, message counts), the aggregate is byte-identical at any
// --jobs count; wall-clock data is kept *outside* the shard (see
// snapshot.h) so the deterministic half of a snapshot can be diffed across
// thread counts.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ctobs {

// Fixed-bucket histogram over non-negative integer samples (virtual-time
// milliseconds, event counts). Buckets are defined by inclusive upper
// bounds: a sample lands in the first bucket whose bound is >= the sample,
// or in the implicit overflow bucket past the last bound. With bounds fixed
// at construction, Merge is associative and commutative, so shard
// aggregation order cannot change the result — we still merge in index
// order for the doubles-free invariants to extend to future fields.
class Histogram {
 public:
  // Default bounds cover the simulator's dynamic range: 1 ms phases up to
  // multi-minute hang deadlines.
  static const std::vector<uint64_t>& DefaultBounds();

  Histogram() : Histogram(DefaultBounds()) {}
  explicit Histogram(std::vector<uint64_t> bounds);

  // Rebuilds a histogram from its serialized parts (ctstat and the tests
  // read snapshots back). `counts` must have bounds.size() + 1 entries; the
  // total count is their sum (CT_CHECK on shape violations — callers that
  // consume untrusted files validate first).
  static Histogram FromParts(std::vector<uint64_t> bounds, std::vector<uint64_t> counts,
                             uint64_t sum, uint64_t max);

  void Observe(uint64_t value);
  // Requires identical bounds (CT_CHECK).
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  // One count per bound plus the trailing overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  // Linear interpolation within the bucket holding the p-th percentile
  // (p in [0,100]); the overflow bucket's upper edge is the observed max.
  // 0 when empty.
  double Percentile(double p) const;

 private:
  std::vector<uint64_t> bounds_;  // ascending, inclusive upper edges
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (overflow)
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// One worker's (one run's) worth of metrics. Counters add, gauges keep the
// maximum across merges (they record high-water marks like cluster size),
// histograms merge bucket-wise.
class MetricsShard {
 public:
  void Add(const std::string& name, uint64_t delta = 1);
  void SetGauge(const std::string& name, int64_t value);
  void Observe(const std::string& name, uint64_t value);

  uint64_t counter(const std::string& name) const;
  const std::map<std::string, uint64_t>& counters() const { return counters_; }
  const std::map<std::string, int64_t>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

  void Merge(const MetricsShard& other);
  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

 private:
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// Slot-indexed shard store for one campaign. Workers write distinct slots
// concurrently (guarded by the caller — CampaignObserver serializes the
// absorb); Aggregate merges the shards in ascending slot order.
class MetricsRegistry {
 public:
  // The shard for `slot`, created on first use.
  MetricsShard& shard(int slot) { return shards_[slot]; }
  const std::map<int, MetricsShard>& shards() const { return shards_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

  MetricsShard Aggregate() const;

 private:
  std::map<int, MetricsShard> shards_;
};

}  // namespace ctobs

#endif  // SRC_OBS_METRICS_H_
