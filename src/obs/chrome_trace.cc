#include "src/obs/chrome_trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ctobs {

namespace {

std::string EscapeJson(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatUs(double us) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f", us);
  return buffer;
}

}  // namespace

void ChromeTraceWriter::AddProcessName(int pid, const std::string& name) {
  std::ostringstream out;
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":\"" << EscapeJson(name) << "\"}}";
  events_.push_back(out.str());
}

void ChromeTraceWriter::AddThreadName(int pid, int tid, const std::string& name) {
  std::ostringstream out;
  out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"args\":{\"name\":\"" << EscapeJson(name) << "\"}}";
  events_.push_back(out.str());
}

void ChromeTraceWriter::AddCompleteEvent(int pid, int tid, const SpanEvent& event, double ts_us,
                                         double dur_us) {
  std::ostringstream out;
  out << "{\"name\":\"" << EscapeJson(event.name) << "\",\"cat\":\""
      << EscapeJson(event.category) << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
      << ",\"ts\":" << FormatUs(ts_us) << ",\"dur\":" << FormatUs(dur_us) << ",\"args\":{";
  out << "\"wall_ms\":" << FormatUs(static_cast<double>(event.wall_end_ns - event.wall_begin_ns) /
                                    1e6);
  if (event.id != 0) {
    out << ",\"span_id\":\"" << event.id << "\",\"parent_span\":\"" << event.parent_id << "\"";
  }
  if (!event.component.empty()) {
    out << ",\"component\":\"" << EscapeJson(event.component) << "\"";
  }
  for (const auto& [key, value] : event.args) {
    out << ",\"" << EscapeJson(key) << "\":\"" << EscapeJson(value) << "\"";
  }
  out << "}}";
  events_.push_back(out.str());
}

void ChromeTraceWriter::AddFlowStart(int pid, int tid, const std::string& name,
                                     uint64_t flow_id, double ts_us) {
  std::ostringstream out;
  out << "{\"name\":\"" << EscapeJson(name) << "\",\"cat\":\"flow\",\"ph\":\"s\",\"pid\":" << pid
      << ",\"tid\":" << tid << ",\"id\":" << flow_id << ",\"ts\":" << FormatUs(ts_us) << "}";
  events_.push_back(out.str());
}

void ChromeTraceWriter::AddFlowFinish(int pid, int tid, const std::string& name,
                                      uint64_t flow_id, double ts_us) {
  std::ostringstream out;
  out << "{\"name\":\"" << EscapeJson(name) << "\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\","
      << "\"pid\":" << pid << ",\"tid\":" << tid << ",\"id\":" << flow_id
      << ",\"ts\":" << FormatUs(ts_us) << "}";
  events_.push_back(out.str());
}

std::string ChromeTraceWriter::ToJson() const {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) {
      out << ",";
    }
    out << "\n" << events_[i];
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

bool ChromeTraceWriter::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson() << "\n";
  return static_cast<bool>(out);
}

}  // namespace ctobs
