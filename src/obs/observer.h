// Per-run and per-campaign observation state.
//
// A RunObserver is owned by the run's RunContext, exactly like the tracer:
// one metrics shard plus one span recorder, born disabled so profiling and
// baseline runs pay nothing. The campaign tester enables it for observed
// injection runs and, after the run retires, absorbs it into the
// CampaignObserver under the run's injection slot. Aggregation walks slots
// in index order (MetricsRegistry::Aggregate), so the deterministic half of
// the resulting snapshot is byte-identical at any --jobs count.
#ifndef SRC_OBS_OBSERVER_H_
#define SRC_OBS_OBSERVER_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ctobs {

class ChromeTraceWriter;
struct SystemMetrics;

class RunObserver {
 public:
  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }

  MetricsShard& metrics() { return metrics_; }
  const MetricsShard& metrics() const { return metrics_; }
  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }

 private:
  bool enabled_ = false;
  MetricsShard metrics_;
  SpanRecorder spans_;
};

// Collects one campaign's observation: per-slot run shards and spans, plus
// the driver's own wall-clock phase spans (analysis, profile, campaign).
// AbsorbRun is thread-safe; everything else is called from the driver
// thread before or after the campaign fan-out.
class CampaignObserver {
 public:
  CampaignObserver() { driver_observer_.Enable(); }

  // Stores the run's shard and spans under `slot` (the injection index).
  void AbsorbRun(int slot, const RunObserver& run);

  // Driver-level observer for wall-only phase spans; always enabled.
  RunObserver& driver_observer() { return driver_observer_; }

  void set_system(std::string system) { system_ = std::move(system); }
  void set_jobs(int jobs) { jobs_ = jobs; }
  void set_campaign_wall_seconds(double seconds) { campaign_wall_seconds_ = seconds; }

  const std::string& system() const { return system_; }
  int runs() const;

  // Index-ordered merge of everything absorbed: deterministic counters,
  // gauges and histograms (including per-phase sim-time histograms derived
  // from the spans) plus the wall-clock sidecar fields.
  SystemMetrics Finalize() const;

  // Emits this campaign as one Chrome-trace process: one thread per run
  // slot on the virtual-time axis, plus a driver thread on the wall axis.
  void AppendChromeTrace(ChromeTraceWriter* writer, int pid,
                         const std::string& process_name) const;

 private:
  mutable std::mutex mu_;
  MetricsRegistry registry_;
  std::map<int, std::vector<SpanEvent>> spans_by_slot_;
  RunObserver driver_observer_;
  std::string system_;
  int jobs_ = 1;
  double campaign_wall_seconds_ = 0;
};

}  // namespace ctobs

#endif  // SRC_OBS_OBSERVER_H_
