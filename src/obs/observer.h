// Per-run and per-campaign observation state.
//
// A RunObserver is owned by the run's RunContext, exactly like the tracer:
// one metrics shard, one span recorder (with the open-span stack that gives
// spans their parent ids), and one flow recorder, born disabled so profiling
// and baseline runs pay nothing. The campaign tester enables it for observed
// injection runs and, after the run retires, absorbs it into the
// CampaignObserver under the run's injection slot. Aggregation walks slots
// in index order (MetricsRegistry::Aggregate), so the deterministic half of
// the resulting snapshot is byte-identical at any --jobs count.
#ifndef SRC_OBS_OBSERVER_H_
#define SRC_OBS_OBSERVER_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/dossier.h"
#include "src/obs/flow.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace ctobs {

class ChromeTraceWriter;
struct SystemMetrics;

// Per-run aggregate of one span-tree path ("workload/quorum-broadcast"):
// exact counts and virtual-time totals, never capped (unlike raw events).
struct SpanAggregate {
  std::string name;
  std::string component;
  uint64_t count = 0;
  uint64_t sim_ms = 0;
};

class RunObserver {
 public:
  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }

  MetricsShard& metrics() { return metrics_; }
  const MetricsShard& metrics() const { return metrics_; }
  SpanRecorder& spans() { return spans_; }
  const SpanRecorder& spans() const { return spans_; }
  FlowRecorder& flows() { return flows_; }
  const FlowRecorder& flows() const { return flows_; }

  // Span hierarchy, called by ScopedSpan. BeginSpan assigns the next span id
  // and the enclosing open span as parent and pushes the open-span stack;
  // EndSpan pops it, folds the span into the path-keyed aggregate tree, and
  // appends the raw event (subject to the recorder's cap). Component spans
  // additionally attribute the virtual time elapsed since the previous
  // component-span open to `component.<name>.dwell_ms` — every millisecond
  // of clock advance is charged to the next instrumented sweep, so the
  // dwell totals partition the run's virtual time deterministically.
  void BeginSpan(SpanEvent* event);
  void EndSpan(SpanEvent event);

  // Id of the innermost open span (0 = none). This is what messages posted
  // right now get stamped with as their originating span.
  uint64_t current_span_id() const {
    return open_spans_.empty() ? 0 : open_spans_.back().id;
  }

  // Path-keyed ('/'-joined names) span aggregates; lexicographic order puts
  // every parent path strictly before its children.
  const std::map<std::string, SpanAggregate>& span_tree() const { return span_tree_; }

 private:
  struct OpenSpan {
    uint64_t id = 0;
    std::string path;
  };

  bool enabled_ = false;
  MetricsShard metrics_;
  SpanRecorder spans_;
  FlowRecorder flows_;
  uint64_t next_span_id_ = 0;
  uint64_t last_dwell_mark_ms_ = 0;
  std::vector<OpenSpan> open_spans_;
  std::map<std::string, SpanAggregate> span_tree_;
};

// Collects one campaign's observation: per-slot run shards, spans, flows and
// failure dossiers, plus the driver's own wall-clock phase spans (analysis,
// profile, campaign). AbsorbRun/AbsorbDossier are thread-safe; everything
// else is called from the driver thread before or after the campaign
// fan-out.
class CampaignObserver {
 public:
  CampaignObserver() { driver_observer_.Enable(); }

  // Stores the run's shard, spans, span tree and flows under `slot` (the
  // injection index).
  void AbsorbRun(int slot, const RunObserver& run);

  // Stores a failing run's dossier under its slot.
  void AbsorbDossier(int slot, Dossier dossier);

  // Dossiers in ascending slot order (deterministic at any --jobs).
  std::vector<Dossier> dossiers() const;

  // Driver-level observer for wall-only phase spans; always enabled.
  RunObserver& driver_observer() { return driver_observer_; }

  void set_system(std::string system) { system_ = std::move(system); }
  void set_jobs(int jobs) { jobs_ = jobs; }
  void set_campaign_wall_seconds(double seconds) { campaign_wall_seconds_ = seconds; }

  const std::string& system() const { return system_; }
  int runs() const;

  // Index-ordered merge of everything absorbed: deterministic counters,
  // gauges and histograms (including per-phase sim-time histograms derived
  // from the spans), the merged span tree and flow statistics, plus the
  // wall-clock sidecar fields.
  SystemMetrics Finalize() const;

  // Emits this campaign as one Chrome-trace process: one thread per run
  // slot on the virtual-time axis (with Perfetto flow arrows linking each
  // delivered message to the delivery that caused it), plus a driver thread
  // on the wall axis.
  void AppendChromeTrace(ChromeTraceWriter* writer, int pid,
                         const std::string& process_name) const;

 private:
  mutable std::mutex mu_;
  MetricsRegistry registry_;
  std::map<int, std::vector<SpanEvent>> spans_by_slot_;
  std::map<int, std::map<std::string, SpanAggregate>> span_tree_by_slot_;
  std::map<int, FlowRecorder> flows_by_slot_;
  std::map<int, Dossier> dossiers_by_slot_;
  RunObserver driver_observer_;
  std::string system_;
  int jobs_ = 1;
  double campaign_wall_seconds_ = 0;
};

}  // namespace ctobs

#endif  // SRC_OBS_OBSERVER_H_
