// Phase spans: named intervals on both clocks, nested into a hierarchy.
//
// A SpanEvent captures one phase of one run — boot, workload, window-arm,
// injection, recovery-check, or a component-level sweep inside a phase —
// with its extent in *virtual* time (read off the run's event loop;
// deterministic) and in *wall* time (steady_clock; nondeterministic, kept
// strictly out of every hash and deterministic snapshot section). Spans
// nest: the observer assigns ids in open order and records the id of the
// enclosing open span as the parent, so traces are navigable below run
// granularity. A span may also carry a `component` attribute (the model
// role class doing the work, e.g. "QuorumPeer"); component spans are what
// the virtual-time profiler (`ctstat --top`) attributes dwell to.
// ScopedSpan is the RAII recorder: construction opens the span, destruction
// closes it, so a span stays correct even when the body unwinds through
// NodeCrashedSignal.
#ifndef SRC_OBS_SPAN_H_
#define SRC_OBS_SPAN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ctsim {
class EventLoop;
}  // namespace ctsim

namespace ctobs {

class RunObserver;

struct SpanEvent {
  std::string name;      // "boot", "workload", "inject:<model span>", ...
  std::string category;  // "phase" | "injection" | "driver" | "component"
  std::string component;  // model role class doing the work ("" = none)
  uint64_t id = 0;         // 1-based, assigned by the observer in open order
  uint64_t parent_id = 0;  // id of the enclosing open span (0 = root)
  uint64_t sim_begin_ms = 0;
  uint64_t sim_end_ms = 0;
  // steady_clock nanoseconds; meaningful only as differences and only
  // within one process. Never hashed, never in deterministic output.
  uint64_t wall_begin_ns = 0;
  uint64_t wall_end_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;

  uint64_t sim_duration_ms() const { return sim_end_ms - sim_begin_ms; }
  double wall_seconds() const {
    return static_cast<double>(wall_end_ns - wall_begin_ns) / 1e9;
  }
};

class SpanRecorder {
 public:
  // Raw per-run events are capped; the aggregate span tree (RunObserver)
  // keeps exact counts past the cap so high-frequency component spans at
  // scale cannot blow up per-run memory.
  static constexpr size_t kMaxEvents = 4096;

  void Append(SpanEvent event) {
    if (events_.size() < kMaxEvents) {
      events_.push_back(std::move(event));
    } else {
      ++dropped_;
    }
  }
  const std::vector<SpanEvent>& events() const { return events_; }
  uint64_t dropped() const { return dropped_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<SpanEvent> events_;
  uint64_t dropped_ = 0;
};

// Opens a span on construction and records it into the observer's recorder
// on destruction. A null observer, a disabled observer, or a null loop
// (driver-level spans have no virtual clock; their sim extent stays 0..0)
// all degrade gracefully; the disabled case records nothing at all, so
// instrumented code paths cost two branches when observability is off.
class ScopedSpan {
 public:
  ScopedSpan(RunObserver* observer, const ctsim::EventLoop* loop, std::string name,
             std::string category);
  // Component-span variant: tags the span with the model role class whose
  // work it covers and feeds the observer's per-component dwell attribution.
  ScopedSpan(RunObserver* observer, const ctsim::EventLoop* loop, std::string name,
             std::string category, std::string component);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // Attaches a key/value pair to the span (visible in the Chrome trace).
  void AddArg(std::string key, std::string value);

  // Id assigned by the observer (0 when recording is off).
  uint64_t id() const { return event_.id; }

 private:
  RunObserver* observer_ = nullptr;  // null when recording is off
  const ctsim::EventLoop* loop_ = nullptr;
  SpanEvent event_;
};

}  // namespace ctobs

#endif  // SRC_OBS_SPAN_H_
