// Failure dossiers: one structured record per failing run.
//
// A dossier is the canonical failure signature — the exact fields the
// dedup/clustering roadmap item keys on and a future ctreplay consumes:
// failed invariant, injected points with their canonical call strings, the
// recovery-phase span the run died in, a trace-hash prefix, the seed, the
// fault plan, and a workload reference. It round-trips through the JSON
// reader; the seed and the hash prefix travel as strings because JSON
// numbers cannot carry a full uint64.
#ifndef SRC_OBS_DOSSIER_H_
#define SRC_OBS_DOSSIER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ctobs {

struct JsonValue;

inline constexpr char kDossierSchema[] = "crashtuner-dossier-v1";

// One injected crash/shutdown point: the paper's dynamic crash point
// ⟨access point id, canonical call string⟩ plus where and how it landed.
struct DossierPoint {
  int point_id = -1;
  std::string call_string;  // canonical call string (the tracer's stack key)
  std::string target_node;
  std::string mode;  // "crash" | "shutdown" | "partition"
};

struct Dossier {
  std::string system;
  int slot = -1;       // injection index within the campaign
  uint64_t seed = 0;   // serialized as a decimal string
  std::string failed_invariant;  // RunOutcome::PrimarySymptom, or exception text
  std::vector<DossierPoint> injected_points;
  std::string recovery_phase_span;  // span the failure surfaced in
  std::string trace_hash_prefix;    // first 8 hex digits of the trace hash
  std::string fault_plan;           // human-readable plan summary ("" = none)
  std::string workload;             // "<workload name> x<size>"

  std::string ToJson() const;

  // Parses a dossier back out of its JSON form. Throws std::runtime_error on
  // a schema mismatch or missing field, so stale v0 files fail loudly.
  static Dossier FromJson(const JsonValue& value);
  static Dossier FromJsonText(const std::string& text);
};

}  // namespace ctobs

#endif  // SRC_OBS_DOSSIER_H_
