#include "src/obs/dossier.h"

#include <cstdio>
#include <stdexcept>

#include "src/obs/json.h"

namespace ctobs {

namespace {

std::string Escape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 2);
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const JsonValue& Require(const JsonValue& value, const std::string& key) {
  const JsonValue* found = value.Find(key);
  if (found == nullptr) {
    throw std::runtime_error("dossier: missing field '" + key + "'");
  }
  return *found;
}

std::string RequireString(const JsonValue& value, const std::string& key) {
  const JsonValue& found = Require(value, key);
  if (!found.is_string()) {
    throw std::runtime_error("dossier: field '" + key + "' is not a string");
  }
  return found.string_value;
}

}  // namespace

std::string Dossier::ToJson() const {
  std::string out = "{\n";
  out += "  \"schema\": \"" + std::string(kDossierSchema) + "\",\n";
  out += "  \"system\": \"" + Escape(system) + "\",\n";
  out += "  \"slot\": " + std::to_string(slot) + ",\n";
  out += "  \"seed\": \"" + std::to_string(seed) + "\",\n";
  out += "  \"failed_invariant\": \"" + Escape(failed_invariant) + "\",\n";
  out += "  \"injected_points\": [";
  for (size_t i = 0; i < injected_points.size(); ++i) {
    const DossierPoint& point = injected_points[i];
    if (i > 0) {
      out += ",";
    }
    out += "\n    {\"point_id\": " + std::to_string(point.point_id) +
           ", \"call_string\": \"" + Escape(point.call_string) +
           "\", \"target_node\": \"" + Escape(point.target_node) +
           "\", \"mode\": \"" + Escape(point.mode) + "\"}";
  }
  out += injected_points.empty() ? "],\n" : "\n  ],\n";
  out += "  \"recovery_phase_span\": \"" + Escape(recovery_phase_span) + "\",\n";
  out += "  \"trace_hash_prefix\": \"" + Escape(trace_hash_prefix) + "\",\n";
  out += "  \"fault_plan\": \"" + Escape(fault_plan) + "\",\n";
  out += "  \"workload\": \"" + Escape(workload) + "\"\n";
  out += "}\n";
  return out;
}

Dossier Dossier::FromJson(const JsonValue& value) {
  if (!value.is_object()) {
    throw std::runtime_error("dossier: top level is not an object");
  }
  const std::string schema = RequireString(value, "schema");
  if (schema != kDossierSchema) {
    throw std::runtime_error("dossier: schema '" + schema + "' is not '" +
                             kDossierSchema + "'");
  }
  Dossier out;
  out.system = RequireString(value, "system");
  const JsonValue& slot = Require(value, "slot");
  if (!slot.is_number()) {
    throw std::runtime_error("dossier: field 'slot' is not a number");
  }
  out.slot = static_cast<int>(slot.number_value);
  out.seed = std::stoull(RequireString(value, "seed"));
  out.failed_invariant = RequireString(value, "failed_invariant");
  const JsonValue& points = Require(value, "injected_points");
  if (!points.is_array()) {
    throw std::runtime_error("dossier: field 'injected_points' is not an array");
  }
  for (const JsonValue& item : points.array_items) {
    DossierPoint point;
    const JsonValue& id = Require(item, "point_id");
    if (!id.is_number()) {
      throw std::runtime_error("dossier: point_id is not a number");
    }
    point.point_id = static_cast<int>(id.number_value);
    point.call_string = RequireString(item, "call_string");
    point.target_node = RequireString(item, "target_node");
    point.mode = RequireString(item, "mode");
    out.injected_points.push_back(std::move(point));
  }
  out.recovery_phase_span = RequireString(value, "recovery_phase_span");
  out.trace_hash_prefix = RequireString(value, "trace_hash_prefix");
  out.fault_plan = RequireString(value, "fault_plan");
  out.workload = RequireString(value, "workload");
  return out;
}

Dossier Dossier::FromJsonText(const std::string& text) {
  return FromJson(ParseJson(text));
}

}  // namespace ctobs
