#include "src/obs/json.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace ctobs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object_items) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) {
      Fail("trailing characters");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool ConsumeLiteral(const char* literal) {
    size_t len = 0;
    while (literal[len] != '\0') {
      ++len;
    }
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipSpace();
    char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue value;
        value.kind = JsonValue::Kind::kString;
        value.string_value = ParseString();
        return value;
      }
      case 't': {
        if (!ConsumeLiteral("true")) Fail("bad literal");
        JsonValue value;
        value.kind = JsonValue::Kind::kBool;
        value.bool_value = true;
        return value;
      }
      case 'f': {
        if (!ConsumeLiteral("false")) Fail("bad literal");
        JsonValue value;
        value.kind = JsonValue::Kind::kBool;
        return value;
      }
      case 'n': {
        if (!ConsumeLiteral("null")) Fail("bad literal");
        return JsonValue{};
      }
      default:
        return ParseNumber();
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipSpace();
      std::string key = ParseString();
      SkipSpace();
      Expect(':');
      value.object_items.emplace_back(std::move(key), ParseValue());
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return value;
      }
      Fail("expected ',' or '}'");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array_items.push_back(ParseValue());
      SkipSpace();
      char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return value;
      }
      Fail("expected ',' or ']'");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      char escape = text_[pos_++];
      switch (escape) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              Fail("bad \\u escape");
            }
          }
          // The writers only emit \u00xx control escapes; anything wider is
          // decoded as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          Fail("bad escape");
      }
    }
  }

  JsonValue ParseNumber() {
    size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      Fail("expected value");
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    value.number_value = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

JsonValue ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace ctobs
