#include "src/obs/span.h"

#include <chrono>

#include "src/obs/observer.h"
#include "src/sim/event_loop.h"

namespace ctobs {

namespace {

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ScopedSpan::ScopedSpan(RunObserver* observer, const ctsim::EventLoop* loop, std::string name,
                       std::string category)
    : ScopedSpan(observer, loop, std::move(name), std::move(category), std::string()) {}

ScopedSpan::ScopedSpan(RunObserver* observer, const ctsim::EventLoop* loop, std::string name,
                       std::string category, std::string component) {
  if (observer == nullptr || !observer->enabled()) {
    return;
  }
  observer_ = observer;
  loop_ = loop;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.component = std::move(component);
  event_.sim_begin_ms = loop_ != nullptr ? loop_->Now() : 0;
  event_.wall_begin_ns = WallNowNs();
  observer_->BeginSpan(&event_);
}

ScopedSpan::~ScopedSpan() {
  if (observer_ == nullptr) {
    return;
  }
  event_.sim_end_ms = loop_ != nullptr ? loop_->Now() : event_.sim_begin_ms;
  event_.wall_end_ns = WallNowNs();
  observer_->EndSpan(std::move(event_));
}

void ScopedSpan::AddArg(std::string key, std::string value) {
  if (observer_ == nullptr) {
    return;
  }
  event_.args.emplace_back(std::move(key), std::move(value));
}

}  // namespace ctobs
