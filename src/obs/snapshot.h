// Campaign metrics snapshot: the exportable form of a campaign's metrics.
//
// The snapshot is split along the determinism boundary. Everything derived
// from simulator events — counters, gauges, sim-time histograms, run counts
// — is identical at any --jobs count and serializes into the deterministic
// section; wall-clock data (per-phase wall seconds, campaign wall time,
// worker count) lives in a per-system "wall" object that
// ToJson(include_wall=false) omits entirely. campaign_test diffs the
// deterministic serialization across thread counts byte-for-byte.
#ifndef SRC_OBS_SNAPSHOT_H_
#define SRC_OBS_SNAPSHOT_H_

#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace ctobs {

inline constexpr const char* kSnapshotSchema = "crashtuner-metrics-v1";

struct SystemMetrics {
  std::string system;
  int runs = 0;           // absorbed injection runs (deterministic)
  MetricsShard metrics;   // deterministic counters/gauges/histograms

  // Wall-clock sidecar (excluded from the deterministic section).
  int jobs = 1;
  double campaign_wall_seconds = 0;
  std::map<std::string, double> phase_wall_seconds;   // run phases, summed
  std::map<std::string, double> driver_wall_seconds;  // driver phases
};

struct MetricsSnapshot {
  std::vector<SystemMetrics> systems;

  // include_wall=false yields the deterministic section only.
  std::string ToJson(bool include_wall = true) const;
  // Writes ToJson(true); returns false on IO failure.
  bool WriteFile(const std::string& path) const;
};

}  // namespace ctobs

#endif  // SRC_OBS_SNAPSHOT_H_
