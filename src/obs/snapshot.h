// Campaign metrics snapshot: the exportable form of a campaign's metrics.
//
// The snapshot is split along the determinism boundary. Everything derived
// from simulator events — counters, gauges, sim-time histograms, run counts
// — is identical at any --jobs count and serializes into the deterministic
// section; wall-clock data (per-phase wall seconds, campaign wall time,
// worker count) lives in a per-system "wall" object that
// ToJson(include_wall=false) omits entirely. campaign_test diffs the
// deterministic serialization across thread counts byte-for-byte.
#ifndef SRC_OBS_SNAPSHOT_H_
#define SRC_OBS_SNAPSHOT_H_

#include <map>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace ctobs {

inline constexpr const char* kSnapshotSchema = "crashtuner-metrics-v2";
// Superseded by v2 (span hierarchy + flow statistics); ctstat rejects it
// with a versioned error instead of misreading it.
inline constexpr const char* kSnapshotSchemaV1 = "crashtuner-metrics-v1";

// One node of the campaign-merged span tree. Nodes are ordered by their
// '/'-joined name path, which puts every parent strictly before its
// children; `parent` is the index of the parent node (-1 = root), so the
// serialized form carries the hierarchy without repeating paths.
struct SpanTreeNode {
  std::string path;       // "workload/quorum-broadcast"
  std::string name;       // last path segment
  std::string component;  // model role class ("" = plain phase span)
  int parent = -1;
  uint64_t count = 0;
  uint64_t sim_ms = 0;
};

// Campaign-merged causal-flow statistics (deterministic).
struct FlowStats {
  uint64_t messages = 0;       // delivered messages observed
  uint64_t roots = 0;          // deliveries with no causal parent
  uint64_t span_resolved = 0;  // deliveries whose origin span is known
  uint64_t max_depth = 0;      // longest causal chain (roots are depth 1)
  uint64_t records_dropped = 0;  // raw records past the per-run cap
  std::map<std::string, uint64_t> per_method;  // deliveries per RPC method
};

struct SystemMetrics {
  std::string system;
  int runs = 0;           // absorbed injection runs (deterministic)
  MetricsShard metrics;   // deterministic counters/gauges/histograms
  std::vector<SpanTreeNode> span_tree;  // deterministic
  FlowStats flows;                      // deterministic

  // Wall-clock sidecar (excluded from the deterministic section).
  int jobs = 1;
  double campaign_wall_seconds = 0;
  std::map<std::string, double> phase_wall_seconds;   // run phases, summed
  std::map<std::string, double> driver_wall_seconds;  // driver phases
};

struct MetricsSnapshot {
  std::vector<SystemMetrics> systems;

  // include_wall=false yields the deterministic section only.
  std::string ToJson(bool include_wall = true) const;
  // Writes ToJson(true); returns false on IO failure.
  bool WriteFile(const std::string& path) const;
};

}  // namespace ctobs

#endif  // SRC_OBS_SNAPSHOT_H_
