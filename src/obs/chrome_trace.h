// Chrome-trace-event export (Perfetto-loadable).
//
// Serializes campaign spans into the Trace Event Format's JSON object form
// ({"traceEvents":[...]}): one process per observed campaign/system, one
// thread per injection slot on the virtual-time axis, and a "driver" thread
// on a normalized wall axis. chrome://tracing and ui.perfetto.dev both open
// the result directly.
#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "src/obs/span.h"

namespace ctobs {

class ChromeTraceWriter {
 public:
  void AddProcessName(int pid, const std::string& name);
  void AddThreadName(int pid, int tid, const std::string& name);

  // "X" (complete) event. `ts_us`/`dur_us` are microseconds on whichever
  // axis the caller placed the thread on; `wall_ms` is attached to the args
  // for reference alongside the span's own args.
  void AddCompleteEvent(int pid, int tid, const SpanEvent& event, double ts_us,
                        double dur_us);

  // Perfetto flow arrow: a "s" (start) event at the causing slice and a
  // matching "f" (finish, bp:"e") event at the caused slice, linked by
  // `flow_id`. Perfetto draws these as arrows between the enclosing slices.
  void AddFlowStart(int pid, int tid, const std::string& name, uint64_t flow_id,
                    double ts_us);
  void AddFlowFinish(int pid, int tid, const std::string& name, uint64_t flow_id,
                     double ts_us);

  std::string ToJson() const;
  bool WriteFile(const std::string& path) const;

  size_t num_events() const { return events_.size(); }

 private:
  std::vector<std::string> events_;  // pre-serialized JSON objects
};

}  // namespace ctobs

#endif  // SRC_OBS_CHROME_TRACE_H_
