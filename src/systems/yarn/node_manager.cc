#include "src/systems/yarn/node_manager.h"

#include "src/common/strings.h"
#include "src/runtime/tracer.h"
#include "src/sim/exception.h"

namespace ctyarn {

using ctsim::Message;
using ctsim::SimException;

NodeManager::NodeManager(ctsim::Cluster* cluster, std::string id, std::string rm,
                         const YarnArtifacts* artifacts, const YarnConfig* config, JobState* job)
    : Node(cluster, std::move(id)),
      rm_(std::move(rm)),
      artifacts_(artifacts),
      config_(config),
      job_(job) {
  Handle("launchAM", [this](const Message& m) { LaunchAm(m); });
  Handle("launchContainer", [this](const Message& m) { LaunchContainer(m); });
  Handle("task.commitGranted", [this](const Message& m) { CommitGranted(m); });
  Handle("killTask", [this](const Message& m) { running_.erase(m.Arg("ta")); });
  Handle("am.registered", [this](const Message& m) { AmRegistered(m); });
  Handle("am.allocated", [this](const Message& m) { AmAllocated(m); });
  Handle("am.commitPending", [this](const Message& m) { AmCommitPending(m); });
  Handle("am.doneCommit", [this](const Message& m) { AmDoneCommit(m); });
  Handle("am.taskNodeLost", [this](const Message& m) { AmTaskNodeLost(m); });
  Handle("am.taskInitializing", [this](const Message& m) {
    if (am_ != nullptr) {
      am_->tasks[std::stoi(m.Arg("task"))].state = "INITIALIZING";
    }
  });
  Handle("am.taskStarted", [this](const Message& m) {
    if (am_ != nullptr) {
      am_->tasks[std::stoi(m.Arg("task"))].state = "RUNNING";
    }
  });
  Handle("am.taskProgress", [this](const Message& m) {
    if (am_ == nullptr) {
      return;
    }
    CT_FRAME("MRAppMaster.statusUpdate");
    const std::string& ta = m.Arg("ta");
    am_->task_progress[ta] = 50;
    // Benign post-write: killing the task's node here just reschedules the
    // attempt.
    CT_POST_WRITE(artifacts_->points.am_task_progress_write, ta);
  });
  Handle("am.nodeRemoved", [this](const Message& m) {
    if (am_ != nullptr) {
      am_->am_nodes.erase(m.Arg("node"));
    }
  });
}

void NodeManager::OnStart() {
  Send(rm_, "registerNode", {{"node", id()}, {"host", host()}});
  Every(config_->heartbeat_ms, [this] { Send(rm_, "nodeHeartbeat", {{"node", id()}}); });
}

void NodeManager::OnShutdown() {
  // The graceful path of the paper's shutdown scripts: the cluster learns of
  // the departure without waiting out the failure detector.
  Send(rm_, "unregisterNode", {{"node", id()}});
}

void NodeManager::OnHandlerException(const std::string& context, const SimException& e) {
  if (context.rfind("am.", 0) == 0) {
    // The AM JVM died; the NM daemon survives and the RM starts a new
    // attempt (MR-7178's "causing abort" path).
    if (am_ != nullptr) {
      std::string attempt = am_->attempt;
      am_.reset();
      Send(rm_, "amFailed", {{"attempt", attempt}});
    }
    return;
  }
  Abort(e.type + " in " + context + ": " + e.message);
}

void NodeManager::LaunchAm(const Message& m) {
  const std::string app = m.Arg("app");
  const std::string attempt = m.Arg("attempt");
  const int num_tasks = std::stoi(m.Arg("tasks"));
  After(config_->am_init_ms, [this, app, attempt, num_tasks] {
    am_ = std::make_unique<AmState>();
    am_->app = app;
    am_->attempt = attempt;
    am_->num_tasks = num_tasks;
    Send(rm_, "registerAM", {{"app", app}, {"attempt", attempt}});
  });
}

void NodeManager::AmRegistered(const Message& m) {
  if (am_ == nullptr || m.Arg("attempt") != am_->attempt) {
    return;
  }
  CT_FRAME("MRAppMaster.serviceStart");
  for (const auto& entry : ctcommon::SplitSkipEmpty(m.Arg("nodes"), ',')) {
    auto pieces = ctcommon::Split(entry, '=');
    if (pieces.size() == 2) {
      am_->am_nodes[pieces[0]] = std::stoi(pieces[1]);
    }
  }
  for (const auto& completed : ctcommon::SplitSkipEmpty(m.Arg("completed"), ',')) {
    int task = std::stoi(completed);
    am_->tasks[task].index = task;
    am_->tasks[task].state = "DONE";
    ++am_->completed;
  }
  for (int task = 0; task < am_->num_tasks; ++task) {
    if (am_->tasks.count(task) > 0 && am_->tasks[task].state == "DONE") {
      continue;
    }
    am_->tasks[task].index = task;
    After(config_->allocate_spacing_ms * (task + 1), [this, task] { SendAllocate(task); });
  }
  // AM heartbeat: feeds the RM's async STATUS_UPDATE queue (YARN-9194).
  std::string attempt = am_->attempt;
  Every(config_->heartbeat_ms, [this, attempt] {
    if (am_ != nullptr && am_->attempt == attempt && am_->completed < am_->num_tasks) {
      Send(rm_, "amHeartbeat", {{"app", am_->app}, {"attempt", attempt}});
    }
  });
  if (am_->completed >= am_->num_tasks) {
    // Everything was recovered as done; finish immediately.
    job_->done = true;
    Send(rm_, "finishApplication", {{"app", am_->app}});
  }
}

void NodeManager::SendAllocate(int task) {
  if (am_ == nullptr) {
    return;
  }
  TaskRecord& record = am_->tasks[task];
  if (record.state != "PENDING") {
    return;
  }
  record.state = "REQUESTED";
  Send(rm_, "allocate",
       {{"app", am_->app},
        {"attempt", am_->attempt},
        {"task", std::to_string(task)},
        {"retry", std::to_string(record.retry)}});
  // Allocation retry: a failed or lost request is re-issued.
  After(5000, [this, task] {
    if (am_ != nullptr && am_->tasks[task].state == "REQUESTED") {
      am_->tasks[task].state = "PENDING";
      SendAllocate(task);
    }
  });
}

void NodeManager::AmAllocated(const Message& m) {
  if (am_ == nullptr) {
    return;
  }
  CT_FRAME("RMContainerAllocator.assigned");
  int task = std::stoi(m.Arg("task"));
  const std::string& cid = m.Arg("cid");
  const std::string& node = m.Arg("node");
  TaskRecord& record = am_->tasks[task];
  if (record.state == "DONE" || record.state == "RUNNING" ||
      record.state == "COMMIT_PENDING") {
    return;  // stale allocation
  }
  std::string ta = TaskAttemptId(1, task, record.retry);
  log().Log(artifacts_->stmts.container_to_attempt, {cid, ta});
  am_->am_containers[ta] = cid;

  // YARN-5918 (Fig. 2): read the cached node headroom. Trunk carries the fix
  // (a check); the legacy build dereferences blindly and the AM dies with a
  // NullPointerException when the node vanished during the wait.
  CT_PRE_READ(artifacts_->points.am_node_resource_read, node);
  if (artifacts_->mode == YarnMode::kLegacy) {
    if (am_->am_nodes.find(node) == am_->am_nodes.end()) {
      throw SimException("NullPointerException", "resources of removed node " + node);
    }
  } else {
    auto it = am_->am_nodes.find(node);
    if (it == am_->am_nodes.end()) {
      log().Warn("Skipping allocation on removed node {}", {node}, "MRAppMaster.getNodeResource");
      record.state = "PENDING";
      record.retry += 1;
      After(500, [this, task] { SendAllocate(task); });
      return;
    }
  }

  record.state = "LAUNCHED";
  record.node = node;
  record.cid = cid;
  record.ta = ta;
  Send(node, "launchContainer",
       {{"cid", cid},
        {"task", std::to_string(task)},
        {"ta", ta},
        {"retry", std::to_string(record.retry)},
        {"am", id()}});
}

void NodeManager::LaunchContainer(const Message& m) {
  CT_FRAME("ContainerLaunch.launchJvm");
  int task = std::stoi(m.Arg("task"));
  int retry = std::stoi(m.Arg("retry"));
  const std::string ta = m.Arg("ta");
  const std::string cid = m.Arg("cid");
  const std::string am_node = m.Arg("am");

  std::string jvm = JvmId(1, task, retry);
  running_[ta] = TaskJvm{task, cid, am_node};
  CT_POST_WRITE(artifacts_->points.nm_jvm_record_write, jvm);
  log().Log(artifacts_->stmts.jvm_given_task, {jvm, ta});
  // Container launch log write: the IO point inside the YARN-9201 window
  // (the RM's async LAUNCHED transition is still queued).
  CT_IO_BEGIN(artifacts_->io.nm_launch_log_io);
  CT_IO_END(artifacts_->io.nm_launch_log_io);

  After(config_->task_start_delay_ms, [this, task, ta, cid, am_node] {
    if (running_.find(ta) == running_.end()) {
      return;
    }
    CT_FRAME("TaskAttemptImpl.initialize");
    Send(am_node, "am.taskInitializing", {{"task", std::to_string(task)}, {"ta", ta}});
    launched_jvms_.insert(ta);
    // MR-7178: the attempt registers itself, then spends the whole init
    // window vulnerable — a crash here aborts the AM's bookkeeping.
    CT_POST_WRITE(artifacts_->points.nm_task_init_write, ta);

    After(config_->task_init_ms, [this, task, ta, cid, am_node] {
      if (running_.find(ta) == running_.end()) {
        return;
      }
      Send(am_node, "am.taskStarted", {{"task", std::to_string(task)}, {"ta", ta}});
      After(config_->task_run_ms / 2, [this, task, ta, cid, am_node] {
        if (running_.find(ta) == running_.end()) {
          return;
        }
        Send(rm_, "containerProgress", {{"cid", cid}});
        Send(am_node, "am.taskProgress", {{"task", std::to_string(task)}, {"ta", ta}});
      });
      After(config_->task_run_ms, [this, task, ta, cid, am_node] {
        if (running_.find(ta) == running_.end()) {
          return;
        }
        Send(rm_, "containerFinishing", {{"cid", cid}});
        Send(am_node, "am.commitPending", {{"task", std::to_string(task)}, {"ta", ta}});
      });
    });
  });
}

void NodeManager::AmCommitPending(const Message& m) {
  if (am_ == nullptr) {
    return;
  }
  CT_FRAME("TaskAttemptListener.commitPending");
  int task = std::stoi(m.Arg("task"));
  const std::string& ta = m.Arg("ta");
  auto it = am_->commit.find(task);
  if (it != am_->commit.end() && it->second != ta) {
    // MR-3858 (Fig. 3): the commit slot still holds the crashed attempt, so
    // every fresh attempt flunks the check, is killed, and the job spins
    // forever. (Trunk clears the slot in AmTaskNodeLost, closing the bug.)
    log().Warn("Commit conflict for task {} attempt {}", {std::to_string(task), ta},
               "TaskAttemptListener.commitPending");
    Send(m.from, "killTask", {{"ta", ta}});
    am_->tasks[task].retry += 1;
    am_->tasks[task].state = "PENDING";
    After(500, [this, task] { SendAllocate(task); });
    return;
  }
  am_->commit[task] = ta;
  CT_POST_WRITE(artifacts_->points.am_commit_write, ta);
  am_->tasks[task].state = "COMMIT_PENDING";
  MaybeSendRelease();
  Send(m.from, "task.commitGranted", {{"task", std::to_string(task)}, {"ta", ta}});
}

void NodeManager::MaybeSendRelease() {
  if (am_ == nullptr || am_->release_sent) {
    return;
  }
  int in_commit_or_done = am_->completed;
  for (const auto& [index, record] : am_->tasks) {
    if (record.state == "COMMIT_PENDING") {
      ++in_commit_or_done;
    }
  }
  if (in_commit_or_done >= am_->num_tasks) {
    am_->release_sent = true;
    Send(rm_, "releaseUnused", {{"attempt", am_->attempt}});
  }
}

void NodeManager::CommitGranted(const Message& m) {
  CT_FRAME("FileOutputCommitter.writeOutput");
  const std::string ta = m.Arg("ta");
  auto it = running_.find(ta);
  if (it == running_.end()) {
    return;
  }
  // Task output write: the IO point between commitPending and doneCommit —
  // the MR-3858 window the IO baseline lands in on the legacy build.
  CT_IO_BEGIN(artifacts_->io.nm_task_output_io);
  CT_IO_END(artifacts_->io.nm_task_output_io);
  int task = it->second.task;
  std::string am_node = it->second.am_node;
  After(config_->commit_io_ms, [this, task, ta, am_node] {
    if (running_.find(ta) == running_.end()) {
      return;
    }
    Send(am_node, "am.doneCommit", {{"task", std::to_string(task)}, {"ta", ta}});
  });
}

void NodeManager::AmDoneCommit(const Message& m) {
  if (am_ == nullptr) {
    return;
  }
  CT_FRAME("TaskAttemptListener.done");
  int task = std::stoi(m.Arg("task"));
  const std::string& ta = m.Arg("ta");
  TaskRecord& record = am_->tasks[task];
  if (record.state == "DONE") {
    return;
  }
  // Benign armed point: the container entry survives recovery because only
  // this handler removes it.
  CT_PRE_READ(artifacts_->points.am_containers_done_read, ta);
  auto it = am_->am_containers.find(ta);
  std::string cid = it == am_->am_containers.end() ? record.cid : it->second;
  record.state = "DONE";
  ++am_->completed;
  log().Log(artifacts_->stmts.task_committed, {TaskId(1, task), ta});
  Send(rm_, "containerCompleted", {{"cid", cid}});
  if (am_->completed >= am_->num_tasks) {
    job_->done = true;
    Send(rm_, "finishApplication", {{"app", am_->app}});
  }
}

void NodeManager::AmTaskNodeLost(const Message& m) {
  if (am_ == nullptr) {
    return;
  }
  CT_FRAME("RMContainerAllocator.taskNodeLost");
  int task = std::stoi(m.Arg("task"));
  TaskRecord& record = am_->tasks[task];
  if (record.state == "DONE") {
    return;
  }
  if (record.state == "INITIALIZING") {
    // MR-7178: recovery cannot cope with an attempt that died mid-init.
    throw SimException("IllegalStateException",
                       "Shutdown during initialization causing abort of task attempt " +
                           record.ta);
  }
  if (artifacts_->mode == YarnMode::kTrunk) {
    am_->commit.erase(task);  // the MR-3858 fix
  }
  record.retry += 1;
  record.state = "PENDING";
  After(500, [this, task] { SendAllocate(task); });
}

}  // namespace ctyarn
