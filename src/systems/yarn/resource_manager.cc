#include "src/systems/yarn/resource_manager.h"

#include "src/common/strings.h"
#include "src/runtime/component_span.h"
#include "src/runtime/tracer.h"
#include "src/sim/exception.h"

namespace ctyarn {

using ctsim::Message;
using ctsim::SimException;

// How long a removal's recovery actions stay in flight — the width of the
// seeded message-race window. A stale heartbeat landing inside it hits the
// race; a later one takes the benign resync path. Sub-second-scale on
// purpose: the paper's observation is that recovery windows are narrow,
// which is why blind fault injection rarely lands in them.
constexpr ctsim::Time kRemovalRaceWindowMs = 1200;

ResourceManager::ResourceManager(ctsim::Cluster* cluster, std::string id,
                                 const YarnArtifacts* artifacts, const YarnConfig* config,
                                 JobState* job)
    : Node(cluster, std::move(id)), artifacts_(artifacts), config_(config), job_(job) {
  SetCritical();
  fd_ = std::make_unique<ctsim::FailureDetector>(
      this, config_->fd_timeout_ms, config_->fd_sweep_ms,
      [this](const std::string& node_id) { HandleNodeLost(node_id); });

  Handle("registerNode", [this](const Message& m) { RegisterNode(m); });
  Handle("nodeHeartbeat", [this](const Message& m) { NodeHeartbeat(m); });
  Handle("unregisterNode", [this](const Message& m) { fd_->NotifyLeft(m.Arg("node")); });
  Handle("submitApplication", [this](const Message& m) { SubmitApplication(m); });
  Handle("registerAM", [this](const Message& m) { RegisterAm(m); });
  Handle("allocate", [this](const Message& m) { Allocate(m); });
  Handle("containerProgress", [this](const Message& m) {
    ContainerEvent(m, "PROGRESS", artifacts_->points.rm_container_progress_read);
  });
  Handle("containerFinishing", [this](const Message& m) {
    ContainerEvent(m, "FINISHING", artifacts_->points.rm_container_finishing_read);
  });
  Handle("containerCompleted", [this](const Message& m) { ContainerCompleted(m); });
  Handle("releaseUnused", [this](const Message& m) { ReleaseUnused(m); });
  Handle("finishApplication", [this](const Message& m) { FinishApplication(m); });
  Handle("getClusterStatus", [this](const Message& m) { GetClusterStatus(m); });
  Handle("getNodeReport", [this](const Message& m) { GetNodeReport(m); });
  Handle("amFailed", [this](const Message& m) { AmFailed(m); });
  Handle("amHeartbeat", [this](const Message& m) {
    // The async dispatcher queues the status-update transition (YARN-9194).
    std::string app = m.Arg("app");
    std::string attempt = m.Arg("attempt");
    After(300, [this, app, attempt] { StatusUpdate(app, attempt); });
  });
}

void ResourceManager::OnStart() {
  fd_->Start();
  // The opportunistic allocator refreshes its candidate list from the node
  // map periodically; between a node loss and the next refresh the list is
  // stale — the YARN-9193 race window.
  Every(3000, [this] {
    ctrt::ComponentSpan pass(&this->cluster().loop(), "rm.node-list-refresh",
                             "NodesListManager");
    node_list_.clear();
    for (const auto& [node_id, scheduler_node] : nodes_) {
      node_list_.push_back(node_id);
    }
  });
}

void ResourceManager::OnHandlerException(const std::string& context, const SimException& e) {
  // A NullPointerException escaping the scheduler dispatcher kills the RM
  // (and the RM is the cluster's single point of failure: YARN-9164). The
  // state-machine exceptions (InvalidState*, ResourceLeak) are logged by the
  // dispatch boundary and tolerated, as the real RM dispatcher does.
  if (e.type == "NullPointerException") {
    Abort(e.type + " in " + context + ": " + e.message);
  }
}

void ResourceManager::RegisterNode(const Message& m) {
  CT_FRAME("ResourceTrackerService.registerNodeManager");
  const std::string& node_id = m.Arg("node");
  SchedulerNode scheduler_node;
  scheduler_node.node_id = node_id;
  scheduler_node.capacity = config_->node_capacity;
  nodes_[node_id] = scheduler_node;
  CT_POST_WRITE(artifacts_->points.rm_register_node_write, node_id);
  node_list_.push_back(node_id);
  fd_->Heartbeat(node_id);
  log().Log(artifacts_->stmts.nm_registered, {m.Arg("host"), node_id});
}

void ResourceManager::SubmitApplication(const Message& m) {
  CT_FRAME("ClientRMService.submitApplication");
  RMApp app;
  app.id = AppId(++job_counter_);
  app.state = "SUBMITTED";
  app.num_tasks = std::stoi(m.Arg("tasks"));
  apps_[app.id] = app;
  log().Log(artifacts_->stmts.app_submitted, {app.id});
  CreateAttempt(app.id);
}

void ResourceManager::CreateAttempt(const std::string& app_id) {
  CT_FRAME("RMAppAttemptImpl.storeAttempt");
  RMApp& app = apps_[app_id];
  ++app.attempt_count;
  RMAttempt attempt;
  attempt.id = AppAttemptId(job_counter_, app.attempt_count);
  attempt.app = app_id;
  attempt.state = "NEW";

  // Pick the emptiest live node for the master container.
  std::string chosen;
  int best = 1 << 30;
  for (const auto& [node_id, scheduler_node] : nodes_) {
    if (cluster().IsAlive(node_id) && scheduler_node.used < best) {
      best = scheduler_node.used;
      chosen = node_id;
    }
  }
  if (chosen.empty()) {
    app.state = "FAILED";
    job_->failed = true;
    return;
  }
  attempt.node = chosen;
  attempts_[attempt.id] = attempt;
  app.current_attempt = attempt.id;

  std::string cid = NewContainerOn(chosen, attempt.id, /*task=*/-1, /*master=*/true);
  attempts_[attempt.id].master_container = cid;
  log().Log(artifacts_->stmts.master_container, {cid, chosen, attempt.id});
  // The allocation-confirm timer audits master container bookkeeping later —
  // the YARN-9165 window.
  std::string confirm_cid = cid;
  After(config_->confirm_delay_ms, [this, confirm_cid] { ConfirmContainer(confirm_cid); });
  Send(chosen, "launchAM", {{"app", app_id},
                            {"attempt", attempt.id},
                            {"cid", cid},
                            {"tasks", std::to_string(app.num_tasks)}});
}

std::string ResourceManager::NewContainerOn(const std::string& node_id,
                                            const std::string& attempt_id, int task,
                                            bool master) {
  RMContainer container;
  container.id = ContainerId(job_counter_, apps_[attempts_[attempt_id].app].attempt_count,
                             ++next_container_);
  container.node = node_id;
  container.attempt = attempt_id;
  container.task = task;
  container.state = "ALLOCATED";
  container.master = master;
  containers_[container.id] = container;
  nodes_[node_id].used += 1;
  attempts_[attempt_id].containers.push_back(container.id);
  return container.id;
}

void ResourceManager::RegisterAm(const Message& m) {
  CT_FRAME("ApplicationMasterService.registerApplicationMaster");
  const std::string& app_id = m.Arg("app");
  const std::string& attempt_id = m.Arg("attempt");
  auto it = attempts_.find(attempt_id);
  if (it == attempts_.end()) {
    return;
  }
  it->second.initialized = true;
  it->second.state = "RUNNING";
  apps_[app_id].state = "RUNNING";
  log().Log(artifacts_->stmts.am_registered, {app_id, attempt_id, it->second.node});

  // Reply with the cluster view (node headrooms) and the tasks already
  // completed by earlier attempts (recovered from the "job history").
  std::vector<std::string> node_entries;
  for (const auto& [node_id, scheduler_node] : nodes_) {
    node_entries.push_back(node_id + "=" +
                           std::to_string(scheduler_node.capacity - scheduler_node.used));
  }
  std::vector<std::string> completed;
  for (int task : apps_[app_id].completed_tasks) {
    completed.push_back(std::to_string(task));
  }
  Send(it->second.node, "am.registered",
       {{"app", app_id},
        {"attempt", attempt_id},
        {"nodes", ctcommon::Join(node_entries, ",")},
        {"completed", ctcommon::Join(completed, ",")}});
}

void ResourceManager::Allocate(const Message& m) {
  CT_FRAME("OpportunisticAMSProcessor.allocate");
  const std::string& app_id = m.Arg("app");
  const std::string& attempt_id = m.Arg("attempt");
  int task = std::stoi(m.Arg("task"));
  // The appCache.exist sanity check of Fig. 8 line 2.
  if (apps_.find(app_id) == apps_.end() || attempts_.find(attempt_id) == attempts_.end()) {
    return;
  }

  // YARN-9238: the current attempt is read without re-validating that it is
  // still the caller's attempt. If the AM node died, recovery has already
  // replaced currentAttempt with a fresh, uninitialized attempt.
  CT_PRE_READ(artifacts_->points.rm_allocate_current_attempt, apps_[app_id].current_attempt);
  const std::string current = apps_[app_id].current_attempt;
  RMAttempt& attempt = attempts_[current];
  if (!attempt.initialized) {
    throw SimException("InvalidStateException",
                       "Calling allocate on removed application attempt " + attempt_id);
  }

  // Container placement. First-time allocations of odd tasks take the
  // opportunistic path (the "enable opportunistic" configuration the paper
  // needs for the YARN bugs): a round-robin candidate from the
  // registration-order list, which the LOST path forgets to clean — and the
  // nodes map lookup is not re-validated (YARN-9193). Re-allocations and even
  // tasks take the guaranteed path, which checks candidates properly.
  const bool opportunistic = (task % 2 == 1) && m.Arg("retry") == "0";
  std::string chosen;
  if (opportunistic) {
    CT_FRAME("OpportunisticContainerAllocator.allocateNodes");
    for (size_t i = 0; i < node_list_.size() && chosen.empty(); ++i) {
      const std::string candidate = node_list_[opportunistic_rr_++ % node_list_.size()];
      CT_PRE_READ(artifacts_->points.rm_allocate_node_candidate, candidate);
      auto it = nodes_.find(candidate);
      if (it == nodes_.end()) {
        throw SimException("InvalidStateException",
                           "Allocating container on removed node " + candidate);
      }
      if (it->second.used < it->second.capacity) {
        chosen = candidate;
      }
    }
  } else {
    CT_FRAME("CapacityScheduler.allocateGuaranteed");
    int best = 1 << 30;
    for (const std::string& candidate : node_list_) {
      // Sanity-checked read: statically pruned, dynamically tolerant. The
      // guaranteed scheduler balances load across nodes.
      CT_PRE_READ(artifacts_->points.rm_allocate_node_guarded, candidate);
      auto it = nodes_.find(candidate);
      if (it == nodes_.end()) {
        continue;
      }
      if (it->second.used < it->second.capacity && it->second.used < best) {
        best = it->second.used;
        chosen = candidate;
      }
    }
  }
  if (chosen.empty()) {
    return;  // No capacity; the AM's retry timer will re-request.
  }

  std::string cid = NewContainerOn(chosen, current, task, /*master=*/false);
  log().Log(artifacts_->stmts.assigned_container, {cid, chosen});
  // The RM persists the allocation in its state store on a separate
  // dispatcher thread; that write is a static IO point (Table 8) but is not
  // driven synchronously by this workload — killing the RM there would only
  // exercise its restart-from-state-store recovery, which is out of scope.
  // The async dispatcher processes the container-launched transition later —
  // the YARN-9201 window (failure detection can beat this queue).
  After(config_->async_dispatch_ms, [this, cid] { ProcessLaunched(cid); });
  Send(attempt.node, "am.allocated",
       {{"cid", cid}, {"node", chosen}, {"task", std::to_string(task)}, {"app", app_id}});
}

void ResourceManager::ProcessLaunched(const std::string& container_id) {
  CT_FRAME("RMContainerImpl.processLaunched");
  // YARN-9201: by the time the queued LAUNCHED transition runs, the liveness
  // monitor may already have killed the container.
  CT_PRE_READ(artifacts_->points.rm_internal_launched_read, container_id);
  auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    return;
  }
  if (it->second.state == "KILLED") {
    throw SimException("InvalidStateTransitionException",
                       "Invalid event LAUNCHED at KILLED for container " + container_id);
  }
  if (it->second.state == "ALLOCATED") {
    it->second.state = "RUNNING";
  }
}

void ResourceManager::ConfirmContainer(const std::string& container_id) {
  CT_FRAME("AbstractYarnScheduler.confirmContainer");
  // YARN-9165: the confirm timer assumes the container still exists, but the
  // LOST path erases master containers outright.
  CT_PRE_READ(artifacts_->points.rm_confirm_container, container_id);
  auto it = containers_.find(container_id);
  if (it == containers_.end()) {
    throw SimException("InvalidStateException",
                       "Scheduling the removed container " + container_id);
  }
  if (it->second.state == "ALLOCATED") {
    it->second.state = "RUNNING";
  }
}

void ResourceManager::StatusUpdate(const std::string& app_id, const std::string& attempt_id) {
  CT_FRAME("RMAppImpl.statusUpdate");
  // YARN-9194: an AM heartbeat queued a STATUS_UPDATE for the attempt that
  // sent it; if the attempt fails between enqueue and processing (the AM node
  // died), the state machine receives the event in state FAILED.
  CT_PRE_READ(artifacts_->points.rm_app_status_read, app_id);
  auto it = apps_.find(app_id);
  if (it == apps_.end()) {
    return;
  }
  auto attempt = attempts_.find(attempt_id);
  if (attempt != attempts_.end() && attempt->second.state == "FAILED") {
    throw SimException(
        "InvalidStateTransitionException",
        "Invalid event STATUS_UPDATE for current state FAILED of ApplicationAttempt " +
            attempt_id);
  }
}

void ResourceManager::ContainerEvent(const Message& m, const std::string& event, int point_id) {
  CT_FRAME("ContainerImpl.handle");
  const std::string& cid = m.Arg("cid");
  // YARN-8650: container events race with the LOST transition to KILLED.
  CT_PRE_READ(point_id, cid);
  auto it = containers_.find(cid);
  if (it == containers_.end()) {
    return;
  }
  if (it->second.state == "KILLED") {
    throw SimException("InvalidStateTransitionException", "Invalid event " + event +
                                                              " for current state KILLED of Container " +
                                                              cid);
  }
}

void ResourceManager::ContainerCompleted(const Message& m) {
  CT_FRAME("CapacityScheduler.containerCompleted");
  const std::string& cid = m.Arg("cid");
  auto it = containers_.find(cid);
  if (it == containers_.end() || it->second.state == "KILLED" ||
      it->second.state == "COMPLETED") {
    return;  // Already cleaned up by the LOST path.
  }
  if (it->second.task >= 0) {
    apps_[attempts_[it->second.attempt].app].completed_tasks.insert(it->second.task);
  }
  CompleteOnNode(cid, it->second.node);
}

void ResourceManager::CompleteOnNode(const std::string& container_id,
                                     std::string node_id) {
  CT_FRAME("AbstractYarnScheduler.completeContainer");
  // YARN-9164 (Fig. 10): getScheNode's nodes.get is promoted to this call
  // site; nothing re-checks that the node survived, and the NPE below kills
  // the RM dispatcher — cluster down.
  CT_PRE_READ(artifacts_->points.rm_complete_container_site, node_id);
  auto node_it = nodes_.find(node_id);
  if (node_it == nodes_.end()) {
    throw SimException("NullPointerException",
                       "completeContainer on removed node " + node_id);
  }
  node_it->second.used -= 1;
  if (node_it->second.used < 0) {
    // Accounting invariant: a double release leaks (negative) resources —
    // the YARN-8649 symptom.
    throw SimException("ResourceLeakException",
                       "Resource Leak due to removed container " + container_id);
  }
  auto container_it = containers_.find(container_id);
  if (container_it != containers_.end()) {
    container_it->second.state = "COMPLETED";
    auto attempt_it = attempts_.find(container_it->second.attempt);
    if (attempt_it != attempts_.end()) {
      std::erase(attempt_it->second.containers, container_id);
    }
  }
}

void ResourceManager::ReleaseUnused(const Message& m) {
  CT_FRAME("SchedulerApplicationAttempt.releaseContainers");
  const std::string& attempt_id = m.Arg("attempt");
  if (attempts_.find(attempt_id) == attempts_.end()) {
    return;
  }
  // YARN-9248: between this read and the loop below, recovery may have
  // RELEASED the attempt's containers already.
  CT_PRE_READ(artifacts_->points.rm_release_attempt_read, attempt_id);
  auto it = attempts_.find(attempt_id);
  if (it == attempts_.end()) {
    return;
  }
  std::vector<std::string> container_ids = it->second.containers;
  for (const std::string& cid : container_ids) {
    auto container_it = containers_.find(cid);
    if (container_it == containers_.end()) {
      continue;
    }
    if (container_it->second.state == "RELEASED") {
      throw SimException("InvalidStateTransitionException",
                         "Invalid event RELEASE for current state RELEASED of Container " + cid);
    }
    if (container_it->second.state == "ALLOCATED" && !container_it->second.master) {
      container_it->second.state = "RELEASED";
      nodes_[container_it->second.node].used -= 1;
    }
  }
}

void ResourceManager::FinishApplication(const Message& m) {
  CT_FRAME("RMAppImpl.finishApplication");
  const std::string& app_id = m.Arg("app");
  auto it = apps_.find(app_id);
  if (it == apps_.end() || it->second.state == "FINISHED" || it->second.state == "FINISHING") {
    return;
  }
  const std::string attempt_id = it->second.current_attempt;
  // YARN-8649: the app is read and only *then* marked FINISHING. If the AM
  // node dies in between, recovery still creates a fresh attempt (with a new
  // master container) for an application that is already finishing; the
  // cleanup below only knows about the attempt it captured, so the new
  // attempt's resources are never released.
  CT_PRE_READ(artifacts_->points.rm_finish_app_read, app_id);
  if (apps_.find(app_id) == apps_.end()) {
    return;
  }
  apps_[app_id].state = "FINISHING";
  auto attempt_it = attempts_.find(attempt_id);
  if (attempt_it != attempts_.end()) {
    std::vector<std::string> remaining = attempt_it->second.containers;
    for (const std::string& cid : remaining) {
      auto container_it = containers_.find(cid);
      if (container_it == containers_.end() || container_it->second.state == "COMPLETED") {
        continue;
      }
      CompleteOnNode(cid, container_it->second.node);
    }
    attempt_it->second.state = "FINISHED";
  }
  apps_[app_id].state = "FINISHED";
  log().Log(artifacts_->stmts.app_finished, {app_id, "FINISHED"});
  // Final accounting audit: every container of a finished application must
  // have been returned to the pool.
  for (const auto& [cid, container] : containers_) {
    auto owner = attempts_.find(container.attempt);
    if (owner != attempts_.end() && owner->second.app == app_id &&
        (container.state == "ALLOCATED" || container.state == "RUNNING")) {
      throw SimException("ResourceLeakException",
                         "Resource Leak due to removed container " + cid);
    }
  }
}

void ResourceManager::GetClusterStatus(const Message& m) {
  CT_FRAME("ClientRMService.getClusterStatus");
  for (const auto& [app_id, app] : apps_) {
    // Benign armed point: apps are never removed, so this read survives any
    // recovery (the curl workload exercises it).
    CT_PRE_READ(artifacts_->points.rm_cluster_status_read, app_id);
    auto it = apps_.find(app_id);
    if (it != apps_.end() && !m.from.empty()) {
      // Reply path elided; the query is about exercising the read.
    }
  }
}

void ResourceManager::GetNodeReport(const Message& m) {
  CT_FRAME("NodeListManager.getNodeReport");
  const std::string& node_id = m.Arg("node");
  // Promoted getScheNode site on the web path: the developer wrapped it in a
  // try/catch rather than a null check, so the static pruning keeps it, but
  // the exception never escapes — the benign dynamic point of §4.1.2.
  CT_PRE_READ(artifacts_->points.rm_node_report_site, node_id);
  try {
    auto it = nodes_.find(node_id);
    if (it == nodes_.end()) {
      throw SimException("NullPointerException", "node report for removed node " + node_id);
    }
  } catch (const SimException&) {
    log().Warn("Node report unavailable for {}", {node_id}, "NodeListManager.getNodeReport");
  }
}

void ResourceManager::AmFailed(const Message& m) {
  CT_FRAME("RMAppAttemptImpl.amFailed");
  AttemptFailed(m.Arg("attempt"));
}

void ResourceManager::NodeHeartbeat(const Message& m) {
  const std::string& node_id = m.Arg("node");
  auto removed = removed_nodes_.find(node_id);
  if (removed != removed_nodes_.end()) {
    const bool recovering =
        cluster().loop().Now() - removed->second <= kRemovalRaceWindowMs;
    removed_nodes_.erase(removed);
    if (recovering) {
      // The tracker applies a status update from a node the liveness monitor
      // already expired while the container sweep is still in flight,
      // instead of forcing a resync (YARN-9301): the re-registration race
      // only a partition that outlives the expiry and then promptly heals
      // can produce.
      throw SimException("InvalidStateTransitionException",
                         "Heartbeat from removed node " + node_id + " applied without resync");
    }
    // Recovery already settled: the stale heartbeat takes the benign resync
    // path and the node re-registers from scratch.
  }
  fd_->Heartbeat(node_id);
}

void ResourceManager::HandleNodeLost(const std::string& node_id) {
  CT_FRAME("NodesListManager.handleNodeLost");
  log().Log(artifacts_->stmts.node_lost, {node_id});
  nodes_.erase(node_id);  // note: node_list_ is NOT cleaned (YARN-9193)
  removed_nodes_[node_id] = cluster().loop().Now();

  // Sweep containers hosted on the lost node.
  std::vector<std::string> lost_masters;
  std::vector<std::string> lost_tasks;
  for (auto& [cid, container] : containers_) {
    if (container.node != node_id || container.state == "COMPLETED" ||
        container.state == "KILLED" || container.state == "RELEASED") {
      continue;
    }
    if (container.master) {
      lost_masters.push_back(cid);
    } else {
      lost_tasks.push_back(cid);
    }
  }
  for (const std::string& cid : lost_tasks) {
    RMContainer& container = containers_[cid];
    container.state = "KILLED";  // tombstone (YARN-9201 / YARN-8650 substrate)
    auto attempt_it = attempts_.find(container.attempt);
    if (attempt_it != attempts_.end()) {
      std::erase(attempt_it->second.containers, cid);
      // Tell the (possibly remote) AM so the task is rescheduled.
      if (cluster().IsAlive(attempt_it->second.node)) {
        Send(attempt_it->second.node, "am.taskNodeLost",
             {{"cid", cid}, {"task", std::to_string(container.task)}});
      }
    }
  }
  for (const std::string& cid : lost_masters) {
    std::string attempt_id = containers_[cid].attempt;
    containers_.erase(cid);  // masters are erased outright (YARN-9165 substrate)
    AttemptFailed(attempt_id);
  }
  // Update AMs' cluster views (YARN-5918 substrate: the AM-side cache loses
  // the node).
  for (const auto& [attempt_id, attempt] : attempts_) {
    if (attempt.state == "RUNNING" && cluster().IsAlive(attempt.node)) {
      Send(attempt.node, "am.nodeRemoved", {{"node", node_id}});
    }
  }
}

void ResourceManager::AttemptFailed(const std::string& attempt_id) {
  CT_FRAME("RMAppAttemptImpl.attemptFailed");
  auto it = attempts_.find(attempt_id);
  if (it == attempts_.end() || it->second.state == "FAILED" || it->second.state == "FINISHED") {
    return;
  }
  it->second.state = "FAILED";
  // Release whatever the attempt still holds (list intentionally kept:
  // YARN-8649's stale-container-list substrate).
  for (const std::string& cid : it->second.containers) {
    // The sweep completes each leftover container through the scheduler, so
    // the YARN-9164 site also fires under the attempt-failure stack — the
    // context the static enumeration predicts but the fixed script never
    // drives (it takes a node loss while an AM holds containers). The id is
    // read before the lookup: a master container erased by handleNodeLost is
    // still on the attempt's list when the sweep walks it.
    CT_FRAME("AbstractYarnScheduler.completeContainer");
    CT_PRE_READ(artifacts_->points.rm_complete_container_site, cid);
    auto container_it = containers_.find(cid);
    if (container_it == containers_.end()) {
      continue;
    }
    if (container_it->second.state == "ALLOCATED" || container_it->second.state == "RUNNING") {
      container_it->second.state = "RELEASED";
      auto node_it = nodes_.find(container_it->second.node);
      if (node_it != nodes_.end()) {
        node_it->second.used -= 1;
      }
    }
  }

  auto app_it = apps_.find(it->second.app);
  if (app_it == apps_.end() || app_it->second.state == "FINISHING" ||
      app_it->second.state == "FINISHED") {
    return;
  }
  if (app_it->second.attempt_count >= config_->max_app_attempts) {
    app_it->second.state = "FAILED";
    log().Log(artifacts_->stmts.app_finished, {app_it->second.id, "FAILED"});
    job_->failed = true;
    return;
  }
  CreateAttempt(app_it->second.id);
}

}  // namespace ctyarn
