#include "src/systems/yarn/yarn_system.h"

#include "src/systems/yarn/node_manager.h"
#include "src/systems/yarn/resource_manager.h"

namespace ctyarn {

namespace {

class YarnRun : public ctcore::WorkloadRun {
 public:
  YarnRun(const YarnSystem* system, int workload_size, uint64_t seed)
      : system_(system), workload_size_(workload_size), config_(system->config()),
        cluster_(seed) {
    // Nodes hold a pointer to the run's own scaled copy of the config, so a
    // scaled deployment never mutates the (shared, const) system object.
    config_.num_workers *= system_->scale();
    const YarnArtifacts* artifacts = &GetYarnArtifacts(system_->mode());
    const YarnConfig* config = &config_;
    rm_ = cluster_.AddNode<ResourceManager>("master:8030", artifacts, config, &job_);
    for (int i = 1; i <= config->num_workers; ++i) {
      std::string id = "node" + std::to_string(i) + ":42349";
      workers_.push_back(
          cluster_.AddNode<NodeManager>(id, std::string("master:8030"), artifacts, config, &job_));
    }
  }

  ctsim::Cluster& cluster() override { return cluster_; }

  void Start() override {
    // Client submits the WordCount job shortly after startup.
    cluster_.loop().Schedule(100, [this] {
      cluster_.Post("client", rm_->id(), "submitApplication",
                    {{"tasks", std::to_string(workload_size_)}});
    });
    // The "+curl" part of the workload: user queries via the web interface,
    // once the job is up and running.
    cluster_.loop().Schedule(20000, [this] {
      cluster_.Post("client", rm_->id(), "getClusterStatus");
      cluster_.Post("client", rm_->id(), "getNodeReport",
                    {{"node", workers_.front()->id()}});
    });
  }

  bool JobFinished() const override { return job_.done; }
  bool JobFailed() const override { return job_.failed; }
  ctsim::Time ExpectedDurationMs() const override {
    return 13000 + config_.am_init_ms + static_cast<ctsim::Time>(workload_size_) * 200;
  }

 private:
  const YarnSystem* system_;
  int workload_size_;
  YarnConfig config_;  // scaled copy; nodes point at this
  ctsim::Cluster cluster_;
  JobState job_;
  ResourceManager* rm_ = nullptr;
  std::vector<NodeManager*> workers_;
};

}  // namespace

YarnSystem::YarnSystem(YarnMode mode, YarnConfig config) : mode_(mode), config_(config) {}

const ctmodel::ProgramModel& YarnSystem::model() const { return GetYarnArtifacts(mode_).model; }

std::unique_ptr<ctcore::WorkloadRun> YarnSystem::MakeRun(int workload_size, uint64_t seed) const {
  return std::make_unique<YarnRun>(this, workload_size, seed);
}

std::vector<ctcore::KnownBug> YarnSystem::known_bugs() const {
  // The Table 5 triage table (plus the two legacy reproductions of Table 1).
  std::vector<ctcore::KnownBug> bugs = {
      // Seeded message race for network-fault mode: only a partition that
      // outlives the liveness expiry and then heals can surface it. Listed
      // first so an injection that races *and* trips a crash-window symptom
      // triages to the race.
      {"YARN-9301", "Major", "message-race", "Unresolved",
       "Heartbeat from removed node applied without resync", "NodeId",
       "AbstractYarnScheduler.addNode", "Heartbeat from removed node"},
      {"YARN-9238", "Critical", "pre-read", "Fixed",
       "Allocating containers to removed ApplicationAttempt", "ApplicationAttemptId",
       "OpportunisticAMSProcessor.allocate", "removed application attempt"},
      {"YARN-9165", "Critical", "pre-read", "Fixed", "Scheduling the removed container",
       "ContainerId", "AbstractYarnScheduler.confirmContainer", "Scheduling the removed container"},
      {"YARN-9193", "Critical", "pre-read", "Fixed", "Allocating container to removed node",
       "NodeId", "OpportunisticContainerAllocator.allocateNodes", "removed node"},
      {"YARN-9164", "Critical", "pre-read", "Fixed", "Cluster down due to using the removed node",
       "NodeId", "AbstractYarnScheduler.completeContainer", "completeContainer on removed node"},
      {"YARN-9201", "Major", "pre-read", "Fixed",
       "Invalid event for current state of ApplicationAttempt", "ContainerId",
       "RMContainerImpl.processLaunched", "Invalid event LAUNCHED"},
      {"YARN-9194", "Critical", "pre-read", "Fixed",
       "Invalid event for current state of ApplicationAttempt", "ApplicationId",
       "RMAppImpl.statusUpdate", "Invalid event STATUS_UPDATE"},
      {"YARN-8650", "Major", "pre-read", "Fixed", "Invalid event for current state of Container",
       "ContainerId", "ContainerImpl.handle", "for current state KILLED of Container"},
      {"YARN-9248", "Major", "pre-read", "Fixed", "Invalid event for current state of Container",
       "ApplicationAttemptId", "SchedulerApplicationAttempt.releaseContainers",
       "current state RELEASED of Container"},
      {"YARN-8649", "Major", "pre-read", "Fixed", "Resource Leak due to removed container",
       "ApplicationId", "RMAppImpl.finishApplication", "Resource Leak"},
      {"MR-7178", "Major", "post-write", "Unresolved",
       "Shutdown during initialization causing abort", "TaskAttemptId",
       "TaskAttemptImpl.initialize", "Shutdown during initialization"},
      // Legacy (Table 1) reproductions.
      {"YARN-5918", "Major", "pre-read", "Fixed (in trunk)",
       "NPE reading resources of removed node", "NodeId", "MRAppMaster.getNodeResource",
       "resources of removed node"},
      {"MR-3858", "Major", "post-write", "Fixed (in trunk)",
       "Commit state contaminated; job never finishes", "TaskAttemptId",
       "TaskAttemptListener.commitPending", "system hang"},
  };
  return bugs;
}

}  // namespace ctyarn
