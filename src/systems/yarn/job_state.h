// Client-visible job status shared between the YARN run harness and the
// nodes (the ApplicationMaster sets done, the ResourceManager sets failed).
#ifndef SRC_SYSTEMS_YARN_JOB_STATE_H_
#define SRC_SYSTEMS_YARN_JOB_STATE_H_

namespace ctyarn {

struct JobState {
  bool done = false;
  bool failed = false;
};

}  // namespace ctyarn

#endif  // SRC_SYSTEMS_YARN_JOB_STATE_H_
