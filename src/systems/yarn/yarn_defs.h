// Shared definitions for the mini-YARN system under test.
//
// Mini-YARN models the Hadoop2/Yarn + MapReduce stack the paper tests:
// a ResourceManager (scheduler, application/attempt/container state
// machines, liveness monitor), NodeManagers hosting containers, and a
// MapReduce ApplicationMaster running on one of the workers with the
// two-RPC commit protocol of Fig. 3. The WordCount+curl workload submits a
// job of `workload_size` map tasks and issues a status query over the web
// interface path.
//
// Two versions are modelled, mirroring how the paper evaluates trunk for new
// bugs (Table 5) but reproduces historical bugs on the releases that
// contained them (Table 1): kTrunk carries the twelve unfixed Table 5
// windows; kLegacy additionally re-opens YARN-5918 (Fig. 2) and MR-3858
// (Fig. 3), which trunk has fixed.
#ifndef SRC_SYSTEMS_YARN_YARN_DEFS_H_
#define SRC_SYSTEMS_YARN_YARN_DEFS_H_

#include <string>

#include "src/model/program_model.h"

namespace ctyarn {

enum class YarnMode { kTrunk, kLegacy };

struct YarnConfig {
  int num_workers = 3;
  int node_capacity = 4;        // containers per NodeManager
  int max_app_attempts = 3;
  // Virtual-time constants (ms).
  uint64_t heartbeat_ms = 1000;
  uint64_t fd_timeout_ms = 1500;
  uint64_t fd_sweep_ms = 250;
  // AM container launch + JVM spin-up: deliberately longer than the trigger's
  // 10 s pre-read wait so a freshly recovered attempt is still uninitialized
  // when the interrupted read resumes (the YARN-9238 / YARN-9194 windows).
  uint64_t am_init_ms = 15000;
  uint64_t async_dispatch_ms = 2500;  // RM internal event queue (YARN-9201 window)
  uint64_t task_start_delay_ms = 3000;  // container launch → task init begins
  uint64_t task_init_ms = 2000;         // MR-7178 window
  uint64_t task_run_ms = 3000;
  uint64_t commit_io_ms = 300;          // output write between the two commit RPCs
  uint64_t allocate_spacing_ms = 100;
  uint64_t confirm_delay_ms = 1200;     // allocation-confirm timer (YARN-9165)
  uint64_t status_update_ms = 2000;     // app status poller (YARN-9194)
};

// Ids of the registered logging statements (Fig. 5a).
struct YarnStatements {
  int nm_registered = -1;        // "NodeManager from {} registered as {}"
  int assigned_container = -1;   // "Assigned container {} on host {}"
  int container_to_attempt = -1; // "Assigned container {} to {}"
  int jvm_given_task = -1;       // "JVM with ID: {} given task: {}"
  int app_submitted = -1;        // "Submitted application {}"
  int master_container = -1;     // "Assigned master container {} on host {} for attempt {}"
  int am_registered = -1;        // "ApplicationMaster for application {} attempt {} registered on {}"
  int node_lost = -1;            // "Node {} LOST, removing from cluster"
  int task_committed = -1;       // "Task {} committed by attempt {}"
  int app_finished = -1;         // "Application {} finished with state {}"
};

// Ids of the executable access points, one per traced hook in the runtime
// code. Negative until the model is built.
struct YarnPoints {
  // ResourceManager.
  int rm_register_node_write = -1;      // benign post-write on nodes map
  int rm_allocate_current_attempt = -1;  // YARN-9238 pre-read
  int rm_allocate_node_candidate = -1;   // YARN-9193 pre-read (opportunistic)
  int rm_allocate_node_guarded = -1;     // guaranteed path, sanity-checked
  int rm_confirm_container = -1;         // YARN-9165 pre-read (timer)
  int rm_getschenode_read = -1;          // promoted read (YARN-9164 structure)
  int rm_complete_container_site = -1;   // promoted site: the YARN-9164 bug
  int rm_node_report_site = -1;          // promoted site: curl path, handled
  int rm_app_status_read = -1;           // YARN-9194 pre-read (timer)
  int rm_container_progress_read = -1;   // YARN-8650 pre-read (a)
  int rm_container_finishing_read = -1;  // YARN-8650 pre-read (b)
  int rm_release_attempt_read = -1;      // YARN-9248 pre-read
  int rm_finish_app_read = -1;           // YARN-8649 pre-read
  int rm_cluster_status_read = -1;       // benign pre-read (curl)
  int rm_internal_launched_read = -1;    // YARN-9201 pre-read (async queue)
  // ApplicationMaster (hosted on a NodeManager).
  int am_node_resource_read = -1;  // YARN-5918 pre-read (legacy only unguarded)
  int am_commit_write = -1;        // MR-3858 post-write (legacy only unfixed)
  int am_task_progress_write = -1;  // benign post-write
  int am_containers_done_read = -1;  // benign pre-read
  // NodeManager / task JVM.
  int nm_task_init_write = -1;   // MR-7178 post-write
  int nm_jvm_record_write = -1;  // benign post-write
};

struct YarnIoPoints {
  int nm_launch_log_io = -1;   // container-launch log write (YARN-9201 window)
  int nm_task_output_io = -1;  // task output write during commit
  int rm_state_store_io = -1;  // RM writes its state store on app transitions
};

// Model plus the id structs the runtime code needs; built once per mode.
struct YarnArtifacts {
  YarnMode mode = YarnMode::kTrunk;
  ctmodel::ProgramModel model{"Hadoop2/Yarn"};
  YarnStatements stmts;
  YarnPoints points;
  YarnIoPoints io;
};

// Returns the artifacts for `mode`; the instance is built on first use and
// cached (the program's static structure does not change between runs).
const YarnArtifacts& GetYarnArtifacts(YarnMode mode);

// Id helpers matching the Hadoop naming conventions.
std::string AppId(int job);
std::string AppAttemptId(int job, int attempt);
std::string ContainerId(int job, int attempt, int container);
std::string TaskId(int job, int task);
std::string TaskAttemptId(int job, int task, int retry);
std::string JvmId(int job, int task, int retry);

}  // namespace ctyarn

#endif  // SRC_SYSTEMS_YARN_YARN_DEFS_H_
