// SystemUnderTest adapter for mini-YARN: builds a 1-RM + N-NM cluster and
// runs the WordCount+curl workload (Table 4 row 1).
#ifndef SRC_SYSTEMS_YARN_YARN_SYSTEM_H_
#define SRC_SYSTEMS_YARN_YARN_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/system_under_test.h"
#include "src/systems/yarn/yarn_defs.h"

namespace ctyarn {

class YarnSystem : public ctcore::SystemUnderTest {
 public:
  explicit YarnSystem(YarnMode mode = YarnMode::kTrunk, YarnConfig config = YarnConfig());

  std::string name() const override { return "Hadoop2/Yarn"; }
  std::string version() const override {
    return mode_ == YarnMode::kLegacy ? "2.7.0 (legacy repro)" : "3.3.0-SNAPSHOT";
  }
  std::string workload_name() const override { return "WordCount+curl"; }
  const ctmodel::ProgramModel& model() const override;
  int default_workload_size() const override { return Scaled(3); }
  std::vector<ctcore::KnownBug> known_bugs() const override;

  YarnMode mode() const { return mode_; }
  const YarnConfig& config() const { return config_; }

 protected:
  std::unique_ptr<ctcore::WorkloadRun> MakeRun(int workload_size, uint64_t seed) const override;

 private:
  YarnMode mode_;
  YarnConfig config_;
};

}  // namespace ctyarn

#endif  // SRC_SYSTEMS_YARN_YARN_SYSTEM_H_
